#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md and docs/*.md for markdown links/images whose target is a
relative path, resolves each against the containing file's directory, and
exits nonzero listing every target that does not exist.  External links
(http/https/mailto) and pure in-page anchors (#...) are not checked —
this is a *repo-consistency* gate, not a network crawler: its job is to
catch a doc rename or move that leaves a stale cross-reference behind.

Usage: python3 scripts/check_doc_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

# [text](target), ![alt](target), and [text](target "title").  The target
# group stops at whitespace or ')' so titles are ignored; <...>-wrapped
# targets are unwrapped below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*(<[^>]*>|[^)\s]+)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: Path):
    files = []
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def strip_code(text: str) -> str:
    """Blank out fenced and inline code spans: links in code are examples,
    not navigation, and `foo(bar)` would otherwise false-positive."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path: Path, root: Path):
    dead = []
    for lineno, line in enumerate(strip_code(path.read_text()).splitlines(), 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1).strip().strip("<>")
            if not target or target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]  # drop fragment
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                dead.append((lineno, target, "escapes the repository"))
                continue
            if not resolved.exists():
                dead.append((lineno, target, "does not exist"))
    return dead


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    files = doc_files(root)
    if not files:
        print(f"check_doc_links: no markdown files found under {root}", file=sys.stderr)
        return 2

    failures = 0
    for path in files:
        for lineno, target, why in check_file(path, root):
            print(f"{path.relative_to(root)}:{lineno}: dead link '{target}' ({why})")
            failures += 1
    if failures:
        print(f"check_doc_links: {failures} dead link(s) across {len(files)} file(s)")
        return 1
    print(f"check_doc_links: OK ({len(files)} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
