// E34: the publication idiom (§1) on the runtime.
//
// Publication needs no fence: the reader's transactional dependency on the
// published flag provides the order (HBdefn's cwr edge; §5's "direct
// dependency").  The benchmark measures publish/consume throughput and
// counts payload violations (always zero) with and without a redundant
// fence, showing the fence buys nothing here -- the asymmetry with
// privatization is the §5 story.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "stm/eager.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace mtx::stm;

template <typename Stm, bool RedundantFence>
void BM_Publish(benchmark::State& state) {
  static Stm stm;
  static Cell flag(0);
  static Cell payload(0);
  static std::atomic<bool> stop{false};
  static std::atomic<std::uint64_t> violations{0};
  static std::thread consumer;
  static std::atomic<word_t> generation{0};

  if (state.thread_index() == 0) {
    stop = false;
    violations = 0;
    consumer = std::thread([] {
      word_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        word_t f = 0;
        stm.atomically([&](auto& tx) { f = tx.read(flag); });
        if (f > last_seen) {
          // Transactionally observed publication f: the plain payload must
          // already carry generation f.
          if (payload.plain_load() < f) violations.fetch_add(1);
          last_seen = f;
        }
      }
    });
  }

  for (auto _ : state) {
    const word_t g = generation.fetch_add(1) + 1;
    payload.plain_store(g);  // plain initialization
    if (RedundantFence) stm.quiesce();
    stm.atomically([&](auto& tx) { tx.write(flag, g); });  // publish
  }

  if (state.thread_index() == 0) {
    stop = true;
    consumer.join();
    state.SetLabel("violations=" + std::to_string(violations.load()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_TEMPLATE(BM_Publish, Tl2Stm, false)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Publish, Tl2Stm, true)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Publish, EagerStm, false)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Publish, EagerStm, true)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
