// E34: the publication idiom (§1) on the runtime.
//
// Publication needs no fence: the reader's transactional dependency on the
// published flag provides the order (HBdefn's cwr edge; §5's "direct
// dependency").  The benchmark measures publish/consume throughput and
// counts payload violations (always zero) with and without a redundant
// fence, showing the fence buys nothing here — the asymmetry with
// privatization is the §5 story.
//
// Benchmarks are registered per backend through the StmBackend registry.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "stm/backend.hpp"

namespace {

using namespace mtx::stm;

struct PubBench {
  std::unique_ptr<StmBackend> stm;
  bool redundant_fence = false;
  Cell flag{0};
  Cell payload{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<word_t> generation{0};

  void run(benchmark::State& state) {
    stop = false;
    violations = 0;
    std::thread consumer([this] {
      word_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        word_t f = 0;
        stm->atomically([&](auto& tx) { f = tx.read(flag); });
        if (f > last_seen) {
          // Transactionally observed publication f: the plain payload must
          // already carry generation f.
          if (payload.plain_load() < f) violations.fetch_add(1);
          last_seen = f;
        }
      }
    });

    for (auto _ : state) {
      const word_t g = generation.fetch_add(1) + 1;
      payload.plain_store(g);  // plain initialization
      if (redundant_fence) stm->quiesce();
      stm->atomically([&](auto& tx) { tx.write(flag, g); });  // publish
    }

    stop = true;
    consumer.join();
    state.SetLabel("violations=" + std::to_string(violations.load()));
    state.SetItemsProcessed(state.iterations());
  }
};

std::vector<std::unique_ptr<PubBench>> g_benches;

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : mtx::stm::backend_names()) {
    for (const bool fence : {false, true}) {
      g_benches.push_back(std::make_unique<PubBench>());
      PubBench* b = g_benches.back().get();
      b->stm = mtx::stm::make_backend(name);
      b->redundant_fence = fence;
      benchmark::RegisterBenchmark(
          ("Publish/" + name + (fence ? "/redundant_fence" : "/bare")).c_str(),
          [b](benchmark::State& st) { b->run(st); })
          ->UseRealTime();
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
