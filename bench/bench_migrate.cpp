// Live-migration bench: the cost envelope of online split/move/merge
// (src/kv/migrate.*, docs/migration.md) in two sections.
//
// 1. Plain-copy throughput: per backend, a quiet store merges one shard
//    into another and reports keys/s through the uninstrumented copy path
//    plus the privatize grace-period cost (fence_ns).  This is the number
//    the space bound buys — the copy runs at memcpy-class speed because
//    the privatized region has exactly one mutator.
//
// 2. Live move under load: per backend, worker threads run a mixed
//    put/get/rmw loop while the engine moves half of shard 0's slots to
//    another shard mid-run.  Every op stamps its latency into a per-phase
//    histogram (before / during / after the migration), so the artifact
//    records the writer stall p99 during privatize and the throughput dip
//    while the move is in flight — the two costs a serving tier actually
//    pays for a migration.  The store audit (size + value form) must pass
//    and the routing epoch must advance exactly once, or the bench exits
//    nonzero.
//
// Usage: bench_migrate [--ops N] [--keys N] [--threads N] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "campaign/report.hpp"
#include "kv/kvstore.hpp"
#include "kv/migrate.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"
#include "substrate/rng.hpp"
#include "substrate/stats.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct CopyRow {
  std::string backend;
  std::size_t keys_moved = 0, slots_moved = 0;
  std::uint64_t fence_ns = 0, copy_ns = 0, total_ns = 0;
  double keys_per_sec = 0;
};

struct LiveRow {
  std::string backend;
  double before_ops_per_sec = 0, during_ops_per_sec = 0, after_ops_per_sec = 0;
  double dip_ratio = 0;  // during / before
  std::uint64_t p99_before_ns = 0, p99_during_ns = 0, p99_after_ns = 0;
  std::size_t keys_moved = 0;
  std::uint64_t fence_ns = 0, migrate_ns = 0;
  std::uint64_t epoch_after = 0;
  bool audit_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 60000;
  std::size_t keys = 8192;
  std::size_t threads = std::min<std::size_t>(hw_threads(), 3);
  std::string out_path = "BENCH_migrate.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc)
      ops = static_cast<std::uint64_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--keys") == 0 && i + 1 < argc)
      keys = static_cast<std::size_t>(std::max(64ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  bool all_ok = true;

  // --- Copy throughput: quiet store, merge shard 0 into shard 1. ---------
  std::vector<CopyRow> copy_rows;
  Table ctable({"backend", "keys", "slots", "fence_ms", "copy_ms", "keys/s"});
  for (const std::string& backend : stm::backend_names()) {
    auto stm = stm::make_backend(backend);
    kv::KvStore::Options so;
    so.shards = 4;
    so.expected_keys = keys;
    so.snap_slots = 1;
    so.scoped_fences = true;
    kv::KvStore store(*stm, so);
    for (std::size_t k = 0; k < keys; ++k)
      store.put(static_cast<std::int64_t>(k),
                kv::value_of(static_cast<std::int64_t>(k), 0));
    kv::MigrationEngine engine(store);
    const kv::MigrateReport rep = engine.merge(0, 1);
    CopyRow row;
    row.backend = backend;
    row.keys_moved = rep.keys_moved;
    row.slots_moved = rep.slots_moved;
    row.fence_ns = rep.fence_ns;
    row.copy_ns = rep.copy_ns;
    row.total_ns = rep.total_ns;
    row.keys_per_sec = rep.copy_ns
                           ? static_cast<double>(rep.keys_moved) * 1e9 /
                                 static_cast<double>(rep.copy_ns)
                           : 0;
    all_ok = all_ok && rep.performed && store.size() == keys;
    ctable.add_row({backend, std::to_string(row.keys_moved),
                    std::to_string(row.slots_moved),
                    fixed(static_cast<double>(row.fence_ns) / 1e6, 3),
                    fixed(static_cast<double>(row.copy_ns) / 1e6, 3),
                    fixed(row.keys_per_sec, 0)});
    copy_rows.push_back(std::move(row));
  }
  std::printf("plain-copy throughput (quiet merge, shards=4, %zu keys):\n%s\n",
              keys, ctable.render().c_str());

  // --- Live move under load: phase-split latency + throughput. -----------
  std::vector<LiveRow> live_rows;
  Table ltable({"backend", "before ops/s", "during ops/s", "after ops/s",
                "dip", "p99us before", "p99us during", "keys moved"});
  for (const std::string& backend : stm::backend_names()) {
    auto stm = stm::make_backend(backend);
    kv::KvStore::Options so;
    so.shards = 4;
    so.expected_keys = keys;
    so.snap_slots = 1;
    so.scoped_fences = true;
    kv::KvStore store(*stm, so);
    for (std::size_t k = 0; k < keys; ++k)
      store.put(static_cast<std::int64_t>(k),
                kv::value_of(static_cast<std::int64_t>(k), 0));

    // phase: 0 before the migration, 1 while it runs, 2 after.
    std::atomic<int> phase{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> phase_ops[3] = {{0}, {0}, {0}};
    std::vector<LatencyHist> hists(threads * 3);
    const std::uint64_t per_thread = ops / threads;

    auto worker = [&](std::size_t tid) {
      Rng rng(0x51ULL * 2654435761ULL + tid);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const auto key = static_cast<std::int64_t>(rng.below(keys));
        const std::uint64_t t0 = now_ns();
        switch (rng.below(4)) {
          case 0:
          case 1:
            store.put(key, kv::value_of(key, static_cast<std::int64_t>(i)));
            break;
          case 2: {
            std::int64_t v;
            store.get(key, &v);
            break;
          }
          case 3:
            store.rmw(key, [key](std::int64_t old) {
              return kv::value_of(key, kv::payload_of(old) + 1);
            });
            break;
        }
        const int p = phase.load(std::memory_order_relaxed);
        hists[tid * 3 + static_cast<std::size_t>(p)].add(now_ns() - t0);
        phase_ops[p].fetch_add(1, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_relaxed);
      }
    };

    const std::uint64_t bench_t0 = now_ns();
    kv::MigrateReport rep;
    std::uint64_t t_mig_start = 0, t_mig_end = 0;
    std::thread mig([&] {
      while (done.load(std::memory_order_relaxed) < ops / 3)
        std::this_thread::yield();
      kv::MigrationEngine engine(store);
      t_mig_start = now_ns();
      phase.store(1, std::memory_order_relaxed);
      const std::size_t take =
          std::max<std::size_t>(1, store.routing().slots_of(0).size() / 2);
      rep = engine.move(0, 3, take);
      phase.store(2, std::memory_order_relaxed);
      t_mig_end = now_ns();
    });
    std::vector<std::thread> team;
    for (std::size_t t = 0; t < threads; ++t) team.emplace_back(worker, t);
    for (auto& th : team) th.join();
    mig.join();
    const std::uint64_t bench_t1 = now_ns();

    LatencyHist merged[3];
    for (std::size_t t = 0; t < threads; ++t)
      for (int p = 0; p < 3; ++p) merged[p].merge(hists[t * 3 + p]);
    const double before_s = static_cast<double>(t_mig_start - bench_t0) / 1e9;
    const double during_s = static_cast<double>(t_mig_end - t_mig_start) / 1e9;
    const double after_s = static_cast<double>(bench_t1 - t_mig_end) / 1e9;

    LiveRow row;
    row.backend = backend;
    row.before_ops_per_sec =
        before_s > 0 ? static_cast<double>(phase_ops[0].load()) / before_s : 0;
    row.during_ops_per_sec =
        during_s > 0 ? static_cast<double>(phase_ops[1].load()) / during_s : 0;
    row.after_ops_per_sec =
        after_s > 0 ? static_cast<double>(phase_ops[2].load()) / after_s : 0;
    row.dip_ratio = row.before_ops_per_sec > 0
                        ? row.during_ops_per_sec / row.before_ops_per_sec
                        : 0;
    row.p99_before_ns = merged[0].p99();
    row.p99_during_ns = merged[1].p99();
    row.p99_after_ns = merged[2].p99();
    row.keys_moved = rep.keys_moved;
    row.fence_ns = rep.fence_ns;
    row.migrate_ns = rep.total_ns;
    row.epoch_after = rep.epoch_after;

    // Post-run audit: nothing lost, every value keyed, epoch advanced once.
    bool audit = rep.performed && store.size() == keys &&
                 rep.epoch_after == rep.epoch_before + 1;
    for (std::size_t k = 0; audit && k < keys; k += 97) {
      std::int64_t v = 0;
      audit = store.get(static_cast<std::int64_t>(k), &v) &&
              kv::value_form_ok(static_cast<std::int64_t>(k), v);
    }
    row.audit_ok = audit;
    all_ok = all_ok && audit;

    ltable.add_row({backend, fixed(row.before_ops_per_sec, 0),
                    fixed(row.during_ops_per_sec, 0),
                    fixed(row.after_ops_per_sec, 0), fixed(row.dip_ratio, 2),
                    fixed(static_cast<double>(row.p99_before_ns) / 1e3, 1),
                    fixed(static_cast<double>(row.p99_during_ns) / 1e3, 1),
                    std::to_string(row.keys_moved)});
    live_rows.push_back(std::move(row));
  }
  std::printf("live move under load (%zu threads, %llu ops, move half of "
              "shard 0 -> 3):\n%s\n",
              threads, static_cast<unsigned long long>(ops),
              ltable.render().c_str());

  std::string json = "{\n";
  json += "  \"bench\": \"migrate\",\n";
  json += "  \"hw_threads\": " + std::to_string(hw_threads()) + ",\n";
  json += "  \"keys\": " + std::to_string(keys) + ",\n";
  json += "  \"ops\": " + std::to_string(ops) + ",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"copy\": [\n";
  for (std::size_t i = 0; i < copy_rows.size(); ++i) {
    const CopyRow& r = copy_rows[i];
    json += "    {\"backend\": \"" + r.backend +
            "\", \"keys_moved\": " + std::to_string(r.keys_moved) +
            ", \"slots_moved\": " + std::to_string(r.slots_moved) +
            ", \"fence_ns\": " + std::to_string(r.fence_ns) +
            ", \"copy_ns\": " + std::to_string(r.copy_ns) +
            ", \"total_ns\": " + std::to_string(r.total_ns) +
            ", \"keys_per_sec\": " + fixed(r.keys_per_sec, 1) + "}";
    json += (i + 1 < copy_rows.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"live_move\": [\n";
  for (std::size_t i = 0; i < live_rows.size(); ++i) {
    const LiveRow& r = live_rows[i];
    json += "    {\"backend\": \"" + r.backend +
            "\", \"before_ops_per_sec\": " + fixed(r.before_ops_per_sec, 1) +
            ", \"during_ops_per_sec\": " + fixed(r.during_ops_per_sec, 1) +
            ", \"after_ops_per_sec\": " + fixed(r.after_ops_per_sec, 1) +
            ", \"dip_ratio\": " + fixed(r.dip_ratio, 4) +
            ", \"p99_before_ns\": " + std::to_string(r.p99_before_ns) +
            ", \"p99_during_ns\": " + std::to_string(r.p99_during_ns) +
            ", \"p99_after_ns\": " + std::to_string(r.p99_after_ns) +
            ", \"keys_moved\": " + std::to_string(r.keys_moved) +
            ", \"fence_ns\": " + std::to_string(r.fence_ns) +
            ", \"migrate_ns\": " + std::to_string(r.migrate_ns) +
            ", \"routing_epoch_after\": " + std::to_string(r.epoch_after) +
            ", \"audit_ok\": " + (r.audit_ok ? "true" : "false") + "}";
    json += (i + 1 < live_rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  if (!mtx::campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr, "bench_migrate: failed audit or empty migration\n");
    return 1;
  }
  return 0;
}
