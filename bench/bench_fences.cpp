// E32/E33: the §6 compilation claims, measured on the hardware we have.
//
// x86-TSO realizes the strongest programmer-model variant with *no* fencing
// on plain accesses; ARMv8 needs anti-load-buffering fences, which cost the
// paper's cited 0.6%-2.5%.  We measure (a) the plain-access path at native
// speed, (b) the same path with an acquire/release discipline, and (c) with
// a full seq_cst fence per access -- (c) is the conservative stand-in for
// the ARM fencing scheme on this machine, giving the overhead *shape*
// (plain is not appreciably slowed by the cheap scheme, the full-fence
// scheme costs real percentage points).
#include <benchmark/benchmark.h>

#include <atomic>

#include "stm/tl2.hpp"

namespace {

using namespace mtx::stm;

constexpr std::size_t kCells = 4096;
std::atomic<word_t> plain_cells[kCells];

void BM_PlainAccessNative(benchmark::State& state) {
  std::size_t i = 0;
  word_t sum = 0;
  for (auto _ : state) {
    plain_cells[i % kCells].store(sum, std::memory_order_relaxed);
    sum += plain_cells[(i + 7) % kCells].load(std::memory_order_relaxed);
    ++i;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PlainAccessNative);

void BM_PlainAccessAcqRel(benchmark::State& state) {
  std::size_t i = 0;
  word_t sum = 0;
  for (auto _ : state) {
    plain_cells[i % kCells].store(sum, std::memory_order_release);
    sum += plain_cells[(i + 7) % kCells].load(std::memory_order_acquire);
    ++i;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PlainAccessAcqRel);

void BM_PlainAccessFullFence(benchmark::State& state) {
  // One seq_cst fence per access: the heavy-handed anti-load-buffering
  // scheme (ARM dmb analogue).
  std::size_t i = 0;
  word_t sum = 0;
  for (auto _ : state) {
    plain_cells[i % kCells].store(sum, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    sum += plain_cells[(i + 7) % kCells].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    ++i;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PlainAccessFullFence);

// Transaction entry/exit cost (the implicit fences around a successful
// transaction, §6): empty and tiny transactions.
void BM_EmptyTxn(benchmark::State& state) {
  static Tl2Stm stm;
  for (auto _ : state) {
    stm.atomically([](auto&) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmptyTxn);

void BM_SingleWriteTxn(benchmark::State& state) {
  static Tl2Stm stm;
  static Cell x(0);
  for (auto _ : state) {
    stm.atomically([&](auto& tx) { tx.write(x, 1); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleWriteTxn);

void BM_SingleReadTxn(benchmark::State& state) {
  static Tl2Stm stm;
  static Cell x(0);
  for (auto _ : state) {
    word_t v = 0;
    stm.atomically([&](auto& tx) { v = tx.read(x); });
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleReadTxn);

}  // namespace

BENCHMARK_MAIN();
