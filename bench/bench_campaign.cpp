// Campaign scaling benchmark: times the full-catalog verdict sweep in serial
// reference mode and in parallel (with and without per-program frontier
// splitting), checks the verdict tables agree byte-for-byte, and writes the
// BENCH_campaign.json artifact recording the speedup.
//
// Usage: bench_campaign [--threads N] [--out PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "substrate/threading.hpp"

int main(int argc, char** argv) {
  using namespace mtx;
  std::size_t threads = hw_threads();
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::max(0ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  campaign::CampaignOptions serial;
  serial.threads = 1;
  campaign::CampaignOptions parallel;
  parallel.threads = threads;
  campaign::CampaignOptions split = parallel;
  split.split_programs = true;

  std::printf("serial sweep...\n");
  const campaign::CampaignResult rs = campaign::run_campaign(serial);
  std::printf("  %.1f ms, %zu rows, %zu mismatches\n", rs.wall_ms, rs.jobs.size(),
              rs.mismatches);
  std::printf("parallel sweep (%zu threads)...\n", threads);
  const campaign::CampaignResult rp = campaign::run_campaign(parallel);
  std::printf("  %.1f ms, %zu shards\n", rp.wall_ms, rp.shard_count);
  std::printf("parallel+split sweep (%zu threads)...\n", threads);
  const campaign::CampaignResult rx = campaign::run_campaign(split);
  std::printf("  %.1f ms, %zu shards\n", rx.wall_ms, rx.shard_count);

  const bool identical = campaign::verdict_signature(rs) == campaign::verdict_signature(rp) &&
                         campaign::verdict_signature(rs) == campaign::verdict_signature(rx);
  const double speedup = rp.wall_ms > 0 ? rs.wall_ms / rp.wall_ms : 0;
  const double speedup_split = rx.wall_ms > 0 ? rs.wall_ms / rx.wall_ms : 0;
  std::printf("verdicts identical: %s\n", identical ? "yes" : "NO");
  std::printf("speedup: %.2fx (flat), %.2fx (split) on %zu threads\n", speedup,
              speedup_split, threads);

  std::string json = "{\n";
  json += "  \"bench\": \"campaign_catalog_sweep\",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"rows\": " + std::to_string(rs.jobs.size()) + ",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"serial_ms\": %.3f,\n  \"parallel_ms\": %.3f,\n"
                "  \"parallel_split_ms\": %.3f,\n  \"speedup\": %.3f,\n"
                "  \"speedup_split\": %.3f,\n",
                rs.wall_ms, rp.wall_ms, rx.wall_ms, speedup, speedup_split);
  json += buf;
  json += "  \"shards_flat\": " + std::to_string(rp.shard_count) + ",\n";
  json += "  \"shards_split\": " + std::to_string(rx.shard_count) + ",\n";
  json += "  \"verdicts_identical\": " + std::string(identical ? "true" : "false") + ",\n";
  json += "  \"mismatches\": " + std::to_string(rs.mismatches) + "\n";
  json += "}\n";
  if (!campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return identical && rs.mismatches == 0 ? 0 : 1;
}
