// Serving-tier benchmark: open-loop throughput-vs-p99 sweep over the
// loopback front end, batched vs unbatched, per backend.
//
// Usage: bench_net [--backends a,b] [--rates r1,r2,...] [--conns N]
//                  [--duration-ms N] [--keys N] [--shards N] [--snap N]
//                  [--batch N] [--mix NAME] [--poisson] [--seed N]
//                  [--no-stream] [--refresh N] [--reactors r1,r2,...]
//                  [--assert-conformance] [--assert-speedup X]
//                  [--assert-reactor-scaling X]
//                  [--assert-p99-under-ms X] [--out PATH]
//
// For every backend the sweep runs twice — server max_batch = --batch
// (per-connection transaction batching on) and max_batch = 1 (plain
// pipelining, one transaction per op) — at each offered rate, with
// streaming conformance judging the served traffic unless --no-stream.
// Latency is coordinated-omission-safe (intended-send timestamps; see
// src/net/loadgen.hpp).  BENCH_net.json reports the full curves plus the
// peak-throughput batching speedup per backend.
//
// --assert-conformance exits 1 on any non-conformant segment, ring drop,
// bad frame, client error, or malformed value.  --assert-speedup X exits 1
// unless some backend's batched peak beats its unbatched peak by >= X; on
// single-hardware-thread hosts this floor is reported but not enforced
// (the loadgen threads, server thread and checker threads all contend for
// one core, so the ratio measures scheduler noise, not batching).
// --assert-p99-under-ms X gates the LOWEST rate point's p99 per backend —
// a generous sanity floor for CI, not a performance claim.
//
// After the batching sweep, a reactor-scaling sweep runs each backend
// (batched, streaming off so checker threads don't pollute the
// measurement) at the highest offered rate for every reactor count in
// --reactors (default 1,2,4; counts above --shards are skipped), reported
// in the `reactor_scaling` JSON section.  --assert-reactor-scaling X exits
// 1 unless some backend's best multi-reactor throughput beats its
// 1-reactor throughput by >= X; on hosts with < 4 hardware threads the
// floor is reported but not enforced — there are no cores to scale onto.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/report.hpp"
#include "kv/workload.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"
#include "substrate/threading.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct PointRow {
  std::string backend;
  bool batched = false;
  double rate = 0;
  mtx::net::LoadgenResult lg;
  mtx::net::ServerStats server;
};

struct ScalePoint {
  std::string backend;
  std::size_t reactors = 0;
  double achieved = 0;
  std::uint64_t handoffs = 0;
  bool clean = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mtx;
  std::vector<std::string> backends = stm::backend_names();
  std::vector<double> rates = {4000, 8000, 16000, 32000};
  std::size_t conns = 2, keys = 2048, shards = 8, snap = 16, batch = 16,
              refresh = 4096;
  std::uint64_t duration_ms = 250, seed = 1;
  std::string mix_name = "hot", out_path = "BENCH_net.json";
  bool poisson = false, stream = true;
  bool assert_conf = false;
  double assert_speedup = 0, assert_p99_ms = 0, assert_rscale = 0;
  std::vector<std::size_t> reactor_list = {1, 2, 4};

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--backends") == 0)
      backends = split_csv(next("--backends"));
    else if (std::strcmp(argv[i], "--rates") == 0) {
      rates.clear();
      for (const std::string& r : split_csv(next("--rates")))
        rates.push_back(std::atof(r.c_str()));
    } else if (std::strcmp(argv[i], "--conns") == 0)
      conns = static_cast<std::size_t>(std::atoll(next("--conns")));
    else if (std::strcmp(argv[i], "--duration-ms") == 0)
      duration_ms = static_cast<std::uint64_t>(std::atoll(next("--duration-ms")));
    else if (std::strcmp(argv[i], "--keys") == 0)
      keys = static_cast<std::size_t>(std::atoll(next("--keys")));
    else if (std::strcmp(argv[i], "--shards") == 0)
      shards = static_cast<std::size_t>(std::atoll(next("--shards")));
    else if (std::strcmp(argv[i], "--snap") == 0)
      snap = static_cast<std::size_t>(std::atoll(next("--snap")));
    else if (std::strcmp(argv[i], "--batch") == 0)
      batch = static_cast<std::size_t>(std::atoll(next("--batch")));
    else if (std::strcmp(argv[i], "--refresh") == 0)
      refresh = static_cast<std::size_t>(std::atoll(next("--refresh")));
    else if (std::strcmp(argv[i], "--reactors") == 0) {
      reactor_list.clear();
      for (const std::string& r : split_csv(next("--reactors")))
        reactor_list.push_back(static_cast<std::size_t>(std::atoll(r.c_str())));
    }
    else if (std::strcmp(argv[i], "--mix") == 0)
      mix_name = next("--mix");
    else if (std::strcmp(argv[i], "--poisson") == 0)
      poisson = true;
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    else if (std::strcmp(argv[i], "--no-stream") == 0)
      stream = false;
    else if (std::strcmp(argv[i], "--assert-conformance") == 0)
      assert_conf = true;
    else if (std::strcmp(argv[i], "--assert-speedup") == 0)
      assert_speedup = std::atof(next("--assert-speedup"));
    else if (std::strcmp(argv[i], "--assert-reactor-scaling") == 0)
      assert_rscale = std::atof(next("--assert-reactor-scaling"));
    else if (std::strcmp(argv[i], "--assert-p99-under-ms") == 0)
      assert_p99_ms = std::atof(next("--assert-p99-under-ms"));
    else if (std::strcmp(argv[i], "--out") == 0)
      out_path = next("--out");
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const kv::Mix* mix = kv::mix_by_name(mix_name);
  if (!mix) {
    std::fprintf(stderr, "unknown mix: %s\n", mix_name.c_str());
    return 2;
  }

  std::vector<PointRow> points;
  bool conf_clean = true, p99_floor_ok = true;
  // speedup[backend] = {unbatched peak, batched peak}
  std::vector<std::pair<double, double>> peaks(backends.size(), {0, 0});

  Table table({"backend", "mode", "rate/s", "achieved/s", "p50us", "p99us",
               "segments", "NC", "drops"});
  for (std::size_t b = 0; b < backends.size(); ++b) {
    for (const bool batched : {true, false}) {
      std::unique_ptr<stm::StmBackend> stm_ptr = stm::make_backend(backends[b]);
      if (!stm_ptr) {
        std::fprintf(stderr, "unknown backend: %s\n", backends[b].c_str());
        return 2;
      }
      // One server per (backend, mode): the whole rate sweep reuses it, so
      // the stream sees one continuous served execution per configuration.
      net::ServerConfig cfg;
      cfg.store.shards = shards;
      cfg.store.preload_keys = keys;
      cfg.store.snap_keys = snap;
      cfg.reactors.max_batch = batched ? batch : 1;
      cfg.reactors.snap_refresh_every = refresh;
      cfg.stream.enabled = stream;
      net::Server server(*stm_ptr, cfg);
      std::thread server_thread([&] { server.run(); });

      for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        net::LoadgenOptions lg;
        lg.port = server.port();
        lg.connections = conns;
        lg.rate = rates[ri];
        lg.poisson = poisson;
        lg.mix = mix;
        lg.store = cfg.store;
        lg.seed = seed + ri;
        lg.ops_per_conn = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(rates[ri] *
                                          static_cast<double>(duration_ms) /
                                          1e3 /
                                          static_cast<double>(conns)));
        PointRow row;
        row.backend = backends[b];
        row.batched = batched;
        row.rate = rates[ri];
        row.lg = net::run_loadgen(lg);
        points.push_back(row);  // server stats filled after stop
        auto& peak = batched ? peaks[b].second : peaks[b].first;
        peak = std::max(peak, row.lg.achieved_per_sec);
        if (!row.lg.ok()) conf_clean = false;
        if (assert_p99_ms > 0 && ri == 0 &&
            static_cast<double>(row.lg.hist.p99()) / 1e6 > assert_p99_ms)
          p99_floor_ok = false;
      }

      server.stop();
      server_thread.join();
      const net::ServerStats ss = server.stats();
      if (!ss.ok()) conf_clean = false;
      for (auto it = points.rbegin();
           it != points.rend() && it->backend == backends[b] &&
           it->batched == batched;
           ++it) {
        it->server = ss;  // per-configuration stats, shared by its points
        table.add_row(
            {it->backend, it->batched ? "batched" : "unbatched",
             fixed(it->rate, 0), fixed(it->lg.achieved_per_sec, 0),
             fixed(static_cast<double>(it->lg.hist.p50()) / 1e3, 1),
             fixed(static_cast<double>(it->lg.hist.p99()) / 1e3, 1),
             std::to_string(ss.segments), std::to_string(ss.nonconformant),
             std::to_string(ss.ring_dropped)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  double best_speedup = 0;
  for (std::size_t b = 0; b < backends.size(); ++b) {
    const double ratio =
        peaks[b].first > 0 ? peaks[b].second / peaks[b].first : 0;
    best_speedup = std::max(best_speedup, ratio);
    std::printf("%s: peak batched %.0f/s, unbatched %.0f/s, speedup %.2fx\n",
                backends[b].c_str(), peaks[b].second, peaks[b].first, ratio);
  }

  // Reactor-scaling sweep: same store geometry, batched, streaming off,
  // saturating offered rate; only the reactor count varies.
  double max_rate = 0;
  for (const double r : rates) max_rate = std::max(max_rate, r);
  std::size_t max_reactors = 1;
  for (const std::size_t r : reactor_list)
    if (r >= 1 && r <= shards) max_reactors = std::max(max_reactors, r);
  std::vector<ScalePoint> scale_points;
  // scaling peaks per backend: {1-reactor achieved, best multi achieved}
  std::vector<std::pair<double, double>> rpeaks(backends.size(), {0, 0});
  Table rtable({"backend", "reactors", "rate/s", "achieved/s", "handoffs"});
  for (std::size_t b = 0; b < backends.size(); ++b) {
    for (const std::size_t nr : reactor_list) {
      if (nr < 1 || nr > shards) {
        std::printf("note: skipping --reactors %zu (> %zu shards)\n", nr,
                    shards);
        continue;
      }
      std::unique_ptr<stm::StmBackend> stm_ptr = stm::make_backend(backends[b]);
      if (!stm_ptr) continue;
      net::ServerConfig cfg;
      cfg.store.shards = shards;
      cfg.store.preload_keys = keys;
      cfg.store.snap_keys = snap;
      cfg.reactors.count = nr;
      cfg.reactors.max_batch = batch;
      cfg.reactors.snap_refresh_every = refresh;
      net::Server server(*stm_ptr, cfg);
      std::thread server_thread([&] { server.run(); });

      net::LoadgenOptions lg;
      lg.port = server.port();
      // Enough connections to occupy every loop (round-robin deal).
      lg.connections = std::max(conns, max_reactors);
      lg.rate = max_rate * 2;  // saturate: measure capacity, not schedule
      lg.poisson = poisson;
      lg.mix = mix;
      lg.store = cfg.store;
      lg.seed = seed;
      lg.ops_per_conn = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 lg.rate * static_cast<double>(duration_ms) / 1e3 /
                 static_cast<double>(lg.connections)));
      const net::LoadgenResult res = net::run_loadgen(lg);
      server.stop();
      server_thread.join();

      ScalePoint sp;
      sp.backend = backends[b];
      sp.reactors = nr;
      sp.achieved = res.achieved_per_sec;
      sp.handoffs = server.stats().handoffs;
      sp.clean = res.ok() && server.stats().ok();
      if (!sp.clean) conf_clean = false;
      scale_points.push_back(sp);
      if (nr == 1)
        rpeaks[b].first = std::max(rpeaks[b].first, sp.achieved);
      else
        rpeaks[b].second = std::max(rpeaks[b].second, sp.achieved);
      rtable.add_row({sp.backend, std::to_string(sp.reactors),
                      fixed(lg.rate, 0), fixed(sp.achieved, 0),
                      std::to_string(sp.handoffs)});
    }
  }
  std::printf("%s\n", rtable.render().c_str());

  double best_rscale = 0;
  for (std::size_t b = 0; b < backends.size(); ++b) {
    const double ratio =
        rpeaks[b].first > 0 ? rpeaks[b].second / rpeaks[b].first : 0;
    best_rscale = std::max(best_rscale, ratio);
    std::printf("%s: 1-reactor %.0f/s, best multi %.0f/s, scaling %.2fx\n",
                backends[b].c_str(), rpeaks[b].first, rpeaks[b].second,
                ratio);
  }

  const bool speedup_assertable = hw_threads() >= 2;
  const bool rscale_assertable = hw_threads() >= 4;
  std::string json = "{\n";
  json += "  \"bench\": \"net\",\n";
  json += "  \"hw_threads\": " + std::to_string(hw_threads()) + ",\n";
  json += "  \"mix\": \"" + mix_name + "\",\n";
  json += "  \"conns\": " + std::to_string(conns) + ",\n";
  json += "  \"keys\": " + std::to_string(keys) + ",\n";
  json += "  \"batch\": " + std::to_string(batch) + ",\n";
  json += "  \"stream\": " + std::string(stream ? "true" : "false") + ",\n";
  json += "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointRow& p = points[i];
    json += "    {\"backend\": \"" + p.backend + "\", \"batched\": " +
            (p.batched ? "true" : "false") +
            ", \"rate\": " + fixed(p.rate, 1) +
            ", \"intended\": " + std::to_string(p.lg.intended) +
            ", \"completed\": " + std::to_string(p.lg.completed) +
            ", \"errors\": " + std::to_string(p.lg.errors) +
            ", \"form_violations\": " + std::to_string(p.lg.form_violations) +
            ", \"achieved_per_sec\": " + fixed(p.lg.achieved_per_sec, 1) +
            ", \"latency\": " + p.lg.hist.to_json() +
            ", \"segments\": " + std::to_string(p.server.segments) +
            ", \"nonconformant\": " + std::to_string(p.server.nonconformant) +
            ", \"ring_dropped\": " + std::to_string(p.server.ring_dropped) +
            ", \"transactions\": " + std::to_string(p.server.batch.transactions) +
            ", \"batched_ops\": " + std::to_string(p.server.batch.ops) + "}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"peaks\": [\n";
  for (std::size_t b = 0; b < backends.size(); ++b) {
    const double ratio =
        peaks[b].first > 0 ? peaks[b].second / peaks[b].first : 0;
    json += "    {\"backend\": \"" + backends[b] +
            "\", \"batched_peak_per_sec\": " + fixed(peaks[b].second, 1) +
            ", \"unbatched_peak_per_sec\": " + fixed(peaks[b].first, 1) +
            ", \"speedup\": " + fixed(ratio, 3) + "}";
    json += (b + 1 < backends.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"reactor_scaling\": [\n";
  for (std::size_t i = 0; i < scale_points.size(); ++i) {
    const ScalePoint& p = scale_points[i];
    json += "    {\"backend\": \"" + p.backend +
            "\", \"reactors\": " + std::to_string(p.reactors) +
            ", \"achieved_per_sec\": " + fixed(p.achieved, 1) +
            ", \"handoffs\": " + std::to_string(p.handoffs) +
            ", \"clean\": " + (p.clean ? "true" : "false") + "}";
    json += (i + 1 < scale_points.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"best_speedup\": " + fixed(best_speedup, 3) + ",\n";
  json += "  \"speedup_assertable\": " +
          std::string(speedup_assertable ? "true" : "false") + ",\n";
  json += "  \"best_reactor_scaling\": " + fixed(best_rscale, 3) + ",\n";
  json += "  \"reactor_scaling_assertable\": " +
          std::string(rscale_assertable ? "true" : "false") + "\n";
  json += "}\n";
  if (!campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  int rc = 0;
  if (assert_conf && !conf_clean) {
    std::fprintf(stderr, "conformance assert failed (see %s)\n",
                 out_path.c_str());
    rc = 1;
  }
  if (assert_p99_ms > 0 && !p99_floor_ok) {
    std::fprintf(stderr, "p99 floor assert failed: lowest-rate p99 above "
                 "%.1f ms\n", assert_p99_ms);
    rc = 1;
  }
  if (assert_speedup > 0 && best_speedup < assert_speedup) {
    if (speedup_assertable) {
      std::fprintf(stderr, "speedup assert failed: best %.2fx < %.2fx\n",
                   best_speedup, assert_speedup);
      rc = 1;
    } else {
      std::printf(
          "note: single hardware thread — batching speedup %.2fx reported "
          "but the %.2fx floor is not enforced (client, server and checker "
          "threads all share one core)\n",
          best_speedup, assert_speedup);
    }
  }
  if (assert_rscale > 0 && best_rscale < assert_rscale) {
    if (rscale_assertable) {
      std::fprintf(stderr,
                   "reactor scaling assert failed: best %.2fx < %.2fx\n",
                   best_rscale, assert_rscale);
      rc = 1;
    } else {
      std::printf(
          "note: %zu hardware threads — reactor scaling %.2fx reported but "
          "the %.2fx floor is not enforced (nothing to scale onto)\n",
          hw_threads(), best_rscale, assert_rscale);
    }
  }
  return rc;
}
