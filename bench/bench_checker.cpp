// E36: cost of the axiomatic machinery itself -- consistency analysis vs
// event count, happens-before fixpoint, and whole-program enumeration of the
// key litmus shapes.
#include <benchmark/benchmark.h>

#include "litmus/catalog.hpp"
#include "litmus/graph_enum.hpp"
#include "model/consistency.hpp"

namespace {

using namespace mtx;
using namespace mtx::model;

// A chain of n committed transactions passing a token, plus plain writes:
// scales the trace size for analysis cost measurements.
Trace chain_trace(int txns) {
  Trace t = Trace::with_init(2);
  for (int i = 0; i < txns; ++i) {
    const int thread = i % 4;
    const int b = t.append(make_begin(thread));
    if (i > 0) t.append(make_read(thread, 0, i - 1, Rational(i)));
    t.append(make_write(thread, 0, i, Rational(i + 1)));
    t.append(make_commit(thread, t[static_cast<std::size_t>(b)].name));
    t.append(make_write(thread, 1, i, Rational(i + 1)));
  }
  return t;
}

void BM_Analyze(benchmark::State& state) {
  const Trace t = chain_trace(static_cast<int>(state.range(0)));
  const ModelConfig cfg = ModelConfig::programmer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(t, cfg).consistent());
  }
  state.SetLabel(std::to_string(t.size()) + " events");
}
BENCHMARK(BM_Analyze)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_HappensBeforeFixpoint(benchmark::State& state) {
  const Trace t = chain_trace(static_cast<int>(state.range(0)));
  const Relations rel = Relations::compute(t);
  const ModelConfig cfg = ModelConfig::strongest();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_hb(t, rel, cfg).count());
  }
}
BENCHMARK(BM_HappensBeforeFixpoint)->Arg(4)->Arg(8)->Arg(16);

void BM_WellFormedness(benchmark::State& state) {
  const Trace t = chain_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_wellformed(t).ok());
  }
}
BENCHMARK(BM_WellFormedness)->Arg(8)->Arg(24);

void BM_EnumerateCatalogEntry(benchmark::State& state) {
  const auto& tests = lit::catalog();
  const auto& test = tests[static_cast<std::size_t>(state.range(0))];
  const ModelConfig cfg = ModelConfig::programmer();
  std::uint64_t execs = 0;
  for (auto _ : state) {
    lit::GraphEnum e(test.program, cfg);
    const auto outcomes = e.outcomes();
    benchmark::DoNotOptimize(outcomes.size());
    execs = e.stats().consistent;
  }
  state.SetLabel(test.id + " (" + std::to_string(execs) + " consistent execs)");
}
BENCHMARK(BM_EnumerateCatalogEntry)->Arg(0)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
