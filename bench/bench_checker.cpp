// E36: cost of the axiomatic machinery itself — shared-engine consistency
// analysis vs event count (chain traces up to 512 transactions), the
// semi-naive happens-before closure, well-formedness, and the fence-bounded
// windowed conformance oracle on a long recorded workload.
//
// Standalone driver (no Google Benchmark): every case runs a fixed number
// of repetitions, reports min/mean wall time, and the whole table lands in
// the BENCH_checker.json artifact so CI tracks the checking pipeline's perf
// trajectory alongside BENCH_stm.json / BENCH_campaign.json.
//
// Usage: bench_checker [--reps N] [--out PATH] [--max-ms-256 MS]
//
// --max-ms-256 is the CI perf-smoke tripwire: exit nonzero if the 256-txn
// analyze case's *minimum* wall time exceeds the ceiling (a generous bound
// against regression, not a microbenchmark).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "model/analysis.hpp"
#include "model/consistency.hpp"
#include "record/conformance.hpp"
#include "record/workloads.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"

namespace {

using namespace mtx;
using namespace mtx::model;

// A chain of n committed transactions passing a token, plus plain writes:
// scales the trace size for analysis cost measurements.
Trace chain_trace(int txns) {
  Trace t = Trace::with_init(2);
  for (int i = 0; i < txns; ++i) {
    const int thread = i % 4;
    const int b = t.append(make_begin(thread));
    if (i > 0) t.append(make_read(thread, 0, i - 1, Rational(i)));
    t.append(make_write(thread, 0, i, Rational(i + 1)));
    t.append(make_commit(thread, t[static_cast<std::size_t>(b)].name));
    t.append(make_write(thread, 1, i, Rational(i + 1)));
  }
  return t;
}

struct Row {
  std::string name;
  std::string label;
  int reps = 0;
  double min_ms = 0;
  double mean_ms = 0;
};

Row time_case(const std::string& name, const std::string& label, int reps,
              const std::function<void()>& body) {
  Row r;
  r.name = name;
  r.label = label;
  r.reps = reps;
  double total = 0;
  double best = -1;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    total += ms;
    if (best < 0 || ms < best) best = ms;
  }
  r.min_ms = best;
  r.mean_ms = total / reps;
  return r;
}

volatile bool g_sink = false;

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::string out_path = "BENCH_checker.json";
  double max_ms_256 = 0;  // 0 = no ceiling
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::max(1, static_cast<int>(std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--max-ms-256") == 0 && i + 1 < argc)
      max_ms_256 = std::atof(argv[++i]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<Row> rows;
  const ModelConfig programmer = ModelConfig::programmer();
  const ModelConfig strongest = ModelConfig::strongest();

  // Consistency analysis: one AnalysisContext per run; relations + hb are
  // each computed once (the pre-engine checker paid them 5-7x).
  double ms_256 = -1;
  for (const int txns : {4, 16, 64, 256, 512}) {
    const Trace t = chain_trace(txns);
    Row r = time_case("analyze", std::to_string(txns) + "txn", reps, [&] {
      g_sink = analyze(t, programmer).consistent();
    });
    r.label += " (" + std::to_string(t.size()) + " events)";
    if (txns == 256) ms_256 = r.min_ms;
    rows.push_back(r);
  }

  // The happens-before fixpoint alone, under the rule-heavy config.
  for (const int txns : {16, 64, 256}) {
    const Trace t = chain_trace(txns);
    const Relations rel = Relations::compute(t);
    rows.push_back(time_case("hb_fixpoint", std::to_string(txns) + "txn", reps,
                             [&] { g_sink = compute_hb(t, rel, strongest).count() > 0; }));
  }

  // Well-formedness over precomputed relations.
  for (const int txns : {64, 512}) {
    const Trace t = chain_trace(txns);
    const Relations rel = Relations::compute(t);
    rows.push_back(time_case("wellformed", std::to_string(txns) + "txn", reps,
                             [&] { g_sink = check_wellformed(t, rel).ok(); }));
  }

  // The conformance oracle end to end: a long fence-rich recorded workload
  // judged by the windowed engine (cut at quiescence boundaries, windows
  // checked independently) — the 10^4-event regime the monolithic O(n^2)
  // relation build cannot reach.
  {
    auto stm = stm::make_backend("tl2");
    record::WorkloadOptions wo;
    wo.threads = 3;
    wo.seed = 21;
    wo.ops_per_thread = 600;
    const record::RecordedRun run =
        record::run_recorded_workload("bank_priv", *stm, wo);
    record::WindowedOptions wnd;
    record::ConformanceReport rep;
    Row r = time_case(
        "conformance_windowed",
        std::to_string(run.rec.trace.size()) + " events", reps, [&] {
          rep = record::check_conformance_windowed(
              run.rec.trace, ModelConfig::implementation(), wnd);
          g_sink = rep.ok();
        });
    r.label += ", " + std::to_string(rep.windows) + " windows";
    rows.push_back(r);

    // Incremental vs fresh contexts over the SAME window set: the chain
    // engine (word-parallel builders + forward hb closure, context carried
    // window to window — the streaming checker's inner loop) against one
    // reference AnalysisContext per window.  Verdicts are pinned identical
    // by tests; this row tracks what the incremental path buys.
    const record::WindowPlan plan = record::cut_windows(run.rec.trace, 64);
    const ModelConfig impl = ModelConfig::implementation();
    Row inc = time_case("window_chain_incremental",
                        std::to_string(plan.windows.size()) + " windows", reps,
                        [&] {
                          model::ChainedAnalysis chain(impl);
                          bool ok = true;
                          for (const record::TraceWindow& w : plan.windows)
                            ok = ok &&
                                 record::check_conformance(chain.advance(w.trace)).ok();
                          g_sink = ok;
                        });
    rows.push_back(inc);
    Row fresh = time_case("window_chain_fresh",
                          std::to_string(plan.windows.size()) + " windows", reps,
                          [&] {
                            bool ok = true;
                            for (const record::TraceWindow& w : plan.windows)
                              ok = ok && record::check_conformance(w.trace, impl).ok();
                            g_sink = ok;
                          });
    rows.push_back(fresh);
    std::printf("window chain: incremental %.3f ms vs fresh %.3f ms (%.2fx)\n",
                inc.min_ms, fresh.min_ms,
                inc.min_ms > 0 ? fresh.min_ms / inc.min_ms : 0);
  }

  Table table({"case", "label", "reps", "min ms", "mean ms"});
  for (const Row& r : rows)
    table.add_row({r.name, r.label, std::to_string(r.reps), fixed(r.min_ms, 3),
                   fixed(r.mean_ms, 3)});
  std::printf("%s\n", table.render().c_str());

  std::string json = "{\n";
  json += "  \"bench\": \"checker\",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"case\": \"" + r.name + "\", \"label\": \"" + r.label +
            "\", \"min_ms\": " + fixed(r.min_ms, 3) +
            ", \"mean_ms\": " + fixed(r.mean_ms, 3) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  if (!mtx::campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (max_ms_256 > 0 && ms_256 > max_ms_256) {
    std::fprintf(stderr,
                 "PERF SMOKE FAILURE: 256-txn analyze took %.1f ms "
                 "(ceiling %.1f ms)\n",
                 ms_256, max_ms_256);
    return 1;
  }
  return 0;
}
