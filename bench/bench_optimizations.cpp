// E26: the §5 optimizations as *runtime* ablations, plus the model-level
// soundness checker's cost.
//
// Fusion (atomic{P};atomic{Q} -> atomic{P;Q}) halves the per-transaction
// fixed cost; empty-transaction elision removes it entirely.  The model
// validated these transformations; here we measure what they buy.
#include <benchmark/benchmark.h>

#include "ltrf/optimizations.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace mtx::stm;

void BM_AdjacentTxns(benchmark::State& state) {
  static Tl2Stm stm;
  static Cell x(0), y(0);
  for (auto _ : state) {
    stm.atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
    stm.atomically([&](auto& tx) { tx.write(y, tx.read(y) + 1); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdjacentTxns);

void BM_FusedTxn(benchmark::State& state) {
  static Tl2Stm stm;
  static Cell x(0), y(0);
  for (auto _ : state) {
    stm.atomically([&](auto& tx) {
      tx.write(x, tx.read(x) + 1);
      tx.write(y, tx.read(y) + 1);
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusedTxn);

void BM_WithEmptyTxn(benchmark::State& state) {
  static Tl2Stm stm;
  static Cell x(0);
  for (auto _ : state) {
    x.plain_store(x.plain_load() + 1);
    stm.atomically([](auto&) {});  // the elidable empty transaction
    x.plain_store(x.plain_load() + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WithEmptyTxn);

void BM_EmptyTxnElided(benchmark::State& state) {
  static Cell x(0);
  for (auto _ : state) {
    x.plain_store(x.plain_load() + 1);
    x.plain_store(x.plain_load() + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmptyTxnElided);

// Model-level: cost of checking one transformation's observational
// soundness by exhaustive enumeration.
void BM_SoundnessCheck(benchmark::State& state) {
  const auto cases = mtx::ltrf::standard_cases();
  const auto& c = cases[static_cast<std::size_t>(state.range(0))];
  const auto cfg = mtx::model::ModelConfig::implementation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtx::ltrf::transformation_sound(c, cfg));
  }
  state.SetLabel(c.name);
}
BENCHMARK(BM_SoundnessCheck)->Arg(0)->Arg(3)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
