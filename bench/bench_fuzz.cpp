// Fuzz pipeline throughput: how much differential coverage a nightly minute
// buys.  Measures the three phases separately — program generation, model
// outcome enumeration, and recorded execution + conformance judgment across
// the backend registry — plus a shrinker demo on an injected fence-skip
// fault, and lands everything in the BENCH_fuzz.json artifact the nightly
// fuzz lane uploads next to its counterexamples.
//
// Standalone driver (no Google Benchmark).
//
// Usage: bench_fuzz [--programs N] [--seed S] [--sched K] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "fuzz/fuzz.hpp"
#include "stm/backend.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtx;
  int programs = 20;
  std::uint64_t seed = 1;
  fuzz::FuzzOptions fopts;
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--programs") == 0 && i + 1 < argc)
      programs = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--sched") == 0 && i + 1 < argc)
      fopts.sched_rounds = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const lit::RandomProgramParams params = campaign::default_fuzz_params();

  const auto g0 = Clock::now();
  const std::vector<lit::Program> progs =
      fuzz::fuzz_programs(seed, programs, params);
  const double gen_ms = ms_since(g0);

  const auto e0 = Clock::now();
  std::vector<fuzz::FuzzProgram> prepared;
  prepared.reserve(progs.size());
  for (std::size_t i = 0; i < progs.size(); ++i)
    prepared.push_back(fuzz::prepare_fuzz_program(
        progs[i], seed, static_cast<int>(i), fopts.enum_budget));
  const double enum_ms = ms_since(e0);

  const auto r0 = Clock::now();
  std::size_t rows = 0, violations = 0, races = 0, runs = 0;
  for (const fuzz::FuzzProgram& fp : prepared) {
    for (const std::string& b : stm::backend_names()) {
      const fuzz::FuzzRow row = fuzz::run_fuzz_job(fp, b, fopts);
      ++rows;
      runs += row.runs;
      races += row.l_races;
      if (!row.ok()) ++violations;
    }
  }
  const double run_ms = ms_since(r0);

  // Shrinker demo: inject the fence-skip fault into the first generated
  // program carrying a fence and time the minimization.
  double shrink_ms = 0;
  std::size_t shrink_attempts = 0, shrunk_stmts = 0;
  {
    fuzz::FuzzOptions faulty = fopts;
    faulty.fault_skip_fence = true;
    for (const fuzz::FuzzProgram& fp : prepared) {
      const auto s0 = Clock::now();
      const fuzz::FuzzRow row = fuzz::run_fuzz_job(fp, "sgl", faulty);
      if (!row.ok()) {
        shrink_ms = ms_since(s0);
        shrink_attempts = row.shrink_attempts;
        shrunk_stmts = row.shrunk_stmts;
        break;
      }
    }
  }

  std::printf(
      "fuzz bench: %d programs  gen %.1f ms  enum %.1f ms  run %.1f ms "
      "(%zu rows, %zu runs, %zu races, %zu violations)  shrink demo %.1f ms "
      "(%zu attempts -> %zu stmts)\n",
      programs, gen_ms, enum_ms, run_ms, rows, runs, races, violations,
      shrink_ms, shrink_attempts, shrunk_stmts);

  std::string json = "{\n";
  json += "  \"programs\": " + std::to_string(programs) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"sched_rounds\": " + std::to_string(fopts.sched_rounds) + ",\n";
  json += "  \"rows\": " + std::to_string(rows) + ",\n";
  json += "  \"runs\": " + std::to_string(runs) + ",\n";
  json += "  \"l_races\": " + std::to_string(races) + ",\n";
  json += "  \"violations\": " + std::to_string(violations) + ",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"gen_ms\": %.3f,\n  \"enum_ms\": %.3f,\n  \"run_ms\": "
                "%.3f,\n  \"shrink_demo_ms\": %.3f,\n",
                gen_ms, enum_ms, run_ms, shrink_ms);
  json += buf;
  json += "  \"shrink_demo_attempts\": " + std::to_string(shrink_attempts) +
          ",\n  \"shrink_demo_stmts\": " + std::to_string(shrunk_stmts) + "\n}\n";
  if (!campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  return violations == 0 ? 0 : 1;
}
