// E35: STM backend scaling — every registered backend (via the StmBackend
// registry, no per-backend templates) on counter workloads at 1..N threads
// in disjoint and contended regimes plus a read-mostly mix.  Expected
// shape: SGL flat or degrading with threads; TL2/eager/NOrec scale on
// disjoint data and degrade under contention, with eager paying rollback
// costs and NOrec paying its commit bottleneck.
//
// Writes the BENCH_stm.json artifact (same schema style as
// BENCH_campaign.json) so CI tracks the runtime half's perf trajectory.
//
// A second section exercises the conformance *oracle* at scale: every
// backend runs a long fence-rich recorded workload (bank_priv, ~10^4
// events) and the fence-bounded windowed checker judges it — the regime
// the monolithic whole-trace checker cannot reach.
//
// Usage: bench_stm_scaling [--threads-max N] [--ops N] [--oracle-ops N]
//                          [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "record/conformance.hpp"
#include "record/workloads.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;
using stm::Cell;
using stm::StmBackend;
using stm::word_t;

struct Row {
  std::string backend, workload;
  std::size_t threads = 0;
  std::uint64_t ops = 0;
  double ms = 0;
  double ops_per_sec = 0;
  double conflict_rate = 0;
};

// One conformance-oracle measurement: record a long run, judge it windowed.
struct OracleRow {
  std::string backend;
  std::size_t events = 0;
  std::size_t actions = 0;
  std::size_t windows = 0;
  std::size_t cuts = 0;
  bool conformant = false;
  double record_ms = 0;
  double check_ms = 0;
};

OracleRow bench_oracle(const std::string& backend, int ops) {
  using Clock = std::chrono::steady_clock;
  OracleRow row;
  row.backend = backend;
  auto stm = stm::make_backend(backend);
  record::WorkloadOptions wo;
  wo.threads = 3;
  wo.seed = 21;
  wo.ops_per_thread = ops;
  const auto t0 = Clock::now();
  const record::RecordedRun run =
      record::run_recorded_workload("bank_priv", *stm, wo);
  const auto t1 = Clock::now();
  record::ConformanceReport rep = record::check_conformance_windowed(run.rec.trace);
  const auto t2 = Clock::now();
  row.events = run.rec.meta.events;
  row.actions = run.rec.trace.size();
  row.windows = rep.windows;
  row.cuts = rep.window_cuts;
  // Opacity at the backend's declared level, as the campaign judges it:
  // zombie-prone backends (eager) are held to committed-subsystem opacity.
  const bool opq = stm->zombie_free() ? rep.opaque : rep.opaque_committed;
  row.conformant = rep.wf.ok() && rep.l_races == 0 && !rep.mixed_race &&
                   opq && run.invariant_ok;
  row.record_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.check_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  return row;
}

double run_timed(StmBackend& stm, std::size_t threads, std::uint64_t ops,
                 const std::function<void(StmBackend&, std::size_t, std::uint64_t)>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  run_team(threads, [&](std::size_t tid) { body(stm, tid, ops); });
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Row bench_workload(const std::string& backend, const std::string& workload,
                   std::size_t threads, std::uint64_t ops_per_thread) {
  auto stm = stm::make_backend(backend);
  static constexpr std::size_t kCells = 1024;
  std::vector<Cell> cells(kCells);

  std::function<void(StmBackend&, std::size_t, std::uint64_t)> body;
  if (workload == "counter_disjoint") {
    body = [&](StmBackend& s, std::size_t tid, std::uint64_t ops) {
      Cell& c = cells[tid % kCells];
      for (std::uint64_t i = 0; i < ops; ++i)
        s.atomically([&](auto& tx) { tx.write(c, tx.read(c) + 1); });
    };
  } else if (workload == "counter_contended") {
    body = [&](StmBackend& s, std::size_t, std::uint64_t ops) {
      for (std::uint64_t i = 0; i < ops; ++i)
        s.atomically([&](auto& tx) { tx.write(cells[0], tx.read(cells[0]) + 1); });
    };
  } else {  // read_mostly: 8 reads + 1 write over the array
    body = [&](StmBackend& s, std::size_t tid, std::uint64_t ops) {
      Rng rng(tid + 17);
      for (std::uint64_t i = 0; i < ops; ++i)
        s.atomically([&](auto& tx) {
          word_t sum = 0;
          for (int r = 0; r < 8; ++r)
            sum += tx.read(cells[rng.below(kCells)]);
          tx.write(cells[rng.below(kCells)], sum);
        });
    };
  }

  Row row;
  row.backend = backend;
  row.workload = workload;
  row.threads = threads;
  row.ops = ops_per_thread * threads;
  row.ms = run_timed(*stm, threads, ops_per_thread, body);
  row.ops_per_sec = row.ms > 0 ? static_cast<double>(row.ops) / (row.ms / 1e3) : 0;
  row.conflict_rate = stm->stats().conflict_rate();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads_max = std::min<std::size_t>(hw_threads(), 8);
  std::uint64_t ops = 10000;
  int oracle_ops = 600;  // ~10^4 recorded events per backend at 3 threads
  std::string out_path = "BENCH_stm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads-max") == 0 && i + 1 < argc)
      threads_max = static_cast<std::size_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc)
      ops = static_cast<std::uint64_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--oracle-ops") == 0 && i + 1 < argc)
      oracle_ops = static_cast<int>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<std::string> workloads = {"counter_disjoint",
                                              "counter_contended", "read_mostly"};
  std::vector<Row> rows;
  Table table({"backend", "workload", "threads", "ops/s", "conflict_rate"});
  for (const std::string& backend : stm::backend_names()) {
    for (const std::string& workload : workloads) {
      for (std::size_t t = 1; t <= threads_max; t *= 2) {
        Row r = bench_workload(backend, workload, t, ops);
        table.add_row({r.backend, r.workload, std::to_string(r.threads),
                       fixed(r.ops_per_sec, 0), fixed(r.conflict_rate, 3)});
        rows.push_back(std::move(r));
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<OracleRow> oracle;
  Table otable({"backend", "events", "actions", "windows", "verdict",
                "record ms", "check ms"});
  for (const std::string& backend : stm::backend_names()) {
    OracleRow r = bench_oracle(backend, oracle_ops);
    otable.add_row({r.backend, std::to_string(r.events),
                    std::to_string(r.actions), std::to_string(r.windows),
                    r.conformant ? "conformant" : "VIOLATION",
                    fixed(r.record_ms, 1), fixed(r.check_ms, 1)});
    oracle.push_back(std::move(r));
  }
  std::printf("conformance oracle (bank_priv, windowed checker):\n%s\n",
              otable.render().c_str());

  std::string json = "{\n";
  json += "  \"bench\": \"stm_scaling\",\n";
  json += "  \"hw_threads\": " + std::to_string(hw_threads()) + ",\n";
  json += "  \"threads_max\": " + std::to_string(threads_max) + ",\n";
  json += "  \"ops_per_thread\": " + std::to_string(ops) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"backend\": \"" + r.backend + "\", \"workload\": \"" +
            r.workload + "\", \"threads\": " + std::to_string(r.threads) +
            ", \"ops\": " + std::to_string(r.ops) +
            ", \"ms\": " + fixed(r.ms, 3) +
            ", \"ops_per_sec\": " + fixed(r.ops_per_sec, 1) +
            ", \"conflict_rate\": " + fixed(r.conflict_rate, 4) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"oracle_ops_per_thread\": " + std::to_string(oracle_ops) + ",\n";
  json += "  \"oracle\": [\n";
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    const OracleRow& r = oracle[i];
    json += "    {\"backend\": \"" + r.backend +
            "\", \"events\": " + std::to_string(r.events) +
            ", \"actions\": " + std::to_string(r.actions) +
            ", \"windows\": " + std::to_string(r.windows) +
            ", \"cuts\": " + std::to_string(r.cuts) +
            ", \"conformant\": " + (r.conformant ? "true" : "false") +
            ", \"record_ms\": " + fixed(r.record_ms, 3) +
            ", \"check_ms\": " + fixed(r.check_ms, 3) + "}";
    json += (i + 1 < oracle.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  if (!mtx::campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
