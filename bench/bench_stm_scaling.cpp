// E35: STM backend scaling -- TL2 (lazy) vs eager (undo-log) vs SGL
// (global lock) on counter workloads at 1..N threads, in low- and
// high-contention regimes.  The expected shape: SGL flat or degrading with
// threads; TL2/eager scale on disjoint data and degrade under contention,
// with eager paying rollback costs on conflicts.
#include <benchmark/benchmark.h>

#include <vector>

#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"
#include "substrate/rng.hpp"

namespace {

using namespace mtx::stm;

// Shared counters; each benchmark thread hammers one slot (disjoint) or slot
// zero (contended).
template <typename Stm, bool Contended>
void BM_Counter(benchmark::State& state) {
  static Stm stm;
  static std::vector<Cell> cells(64);
  if (state.thread_index() == 0)
    for (auto& c : cells) c.plain_store(0);

  const std::size_t slot =
      Contended ? 0 : static_cast<std::size_t>(state.thread_index()) % cells.size();
  for (auto _ : state) {
    stm.atomically([&](auto& tx) { tx.write(cells[slot], tx.read(cells[slot]) + 1); });
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0)
    state.SetLabel("conflict_rate=" +
                   std::to_string(stm.stats().conflict_rate()).substr(0, 5));
}

BENCHMARK_TEMPLATE(BM_Counter, Tl2Stm, false)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Counter, EagerStm, false)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Counter, NorecStm, false)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Counter, SglStm, false)->ThreadRange(1, 8)->UseRealTime();

BENCHMARK_TEMPLATE(BM_Counter, Tl2Stm, true)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Counter, EagerStm, true)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Counter, SglStm, true)->ThreadRange(1, 8)->UseRealTime();

// Read-mostly transactions over a 1K-cell array: 8 reads + 1 write.
template <typename Stm>
void BM_ReadMostly(benchmark::State& state) {
  static Stm stm;
  static std::vector<Cell> cells(1024);
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 17);
  for (auto _ : state) {
    stm.atomically([&](auto& tx) {
      word_t sum = 0;
      for (int i = 0; i < 8; ++i)
        sum += tx.read(cells[rng.below(cells.size())]);
      tx.write(cells[rng.below(cells.size())], sum);
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_ReadMostly, Tl2Stm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ReadMostly, EagerStm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ReadMostly, NorecStm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ReadMostly, SglStm)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
