// Regenerates the paper's evaluation artifact: the allowed/forbidden verdict
// of every execution figure and final-outcome claim, under every model
// configuration the paper discusses it in, plus the Example 2.3 variant
// grid.  Output is the table EXPERIMENTS.md records as paper-vs-measured.
//
// Usage: litmus_verdicts [--variants] [--threads N] [--serial]
//
// The main table runs through the campaign engine: parallel across the
// catalog by default (--serial for the single-threaded reference mode), with
// identical output either way.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.hpp"
#include "litmus/catalog.hpp"
#include "ltrf/optimizations.hpp"
#include "substrate/format.hpp"

namespace {

using namespace mtx;
using namespace mtx::lit;

const char* verdict(bool allowed) { return allowed ? "Allowed" : "Forbidden"; }

int run_main_table(std::size_t threads) {
  campaign::CampaignOptions opts;
  opts.threads = threads;
  const campaign::CampaignResult r = campaign::run_campaign(opts);
  Table table({"id", "paper", "witness", "model", "paper says", "measured", "ok"});
  for (const campaign::JobResult& j : r.jobs) {
    const VerdictRow& row = j.row;
    const LitmusTest* test = nullptr;
    for (const LitmusTest& t : catalog())
      if (t.id == row.id) test = &t;
    table.add_row({row.id, test ? test->paper_ref : "?",
                   test ? test->witness_desc : "?", row.config,
                   verdict(row.expected_allowed), verdict(row.actual_allowed),
                   row.matches() ? "yes" : "MISMATCH"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("verdict rows: %zu, mismatches: %zu (%zu threads, %.1f ms)\n",
              table.rows(), r.mismatches, r.threads_used, r.wall_ms);
  return r.mismatches == 0 ? 0 : 1;
}

int run_variant_grid() {
  // Every catalog witness under every Example 2.3 variant (informational:
  // the paper only pins down a subset; this is the full design-space grid).
  std::vector<model::ModelConfig> configs = {
      model::ModelConfig::base(), model::ModelConfig::programmer(),
      model::ModelConfig::implementation(), model::ModelConfig::strongest()};
  for (const auto& v : model::ModelConfig::example_2_3_variants())
    configs.push_back(v);

  std::vector<std::string> headers = {"id"};
  for (const auto& c : configs) headers.push_back(c.name);
  Table table(headers);
  for (const LitmusTest& t : catalog()) {
    std::vector<std::string> row = {t.id};
    for (const auto& cfg : configs) {
      const OutcomeSet set = enumerate_outcomes(t.program, cfg);
      row.push_back(set.any(t.witness) ? "A" : "F");
    }
    table.add_row(std::move(row));
  }
  std::printf("Witness verdict per model (A = allowed, F = forbidden)\n\n%s\n",
              table.render().c_str());
  return 0;
}

int run_optimization_table() {
  Table table({"transformation", "programmer", "expected", "implementation",
               "expected"});
  std::size_t mismatches = 0;
  for (const auto& c : mtx::ltrf::standard_cases()) {
    const bool sp = mtx::ltrf::transformation_sound(c, model::ModelConfig::programmer());
    const bool si =
        mtx::ltrf::transformation_sound(c, model::ModelConfig::implementation());
    table.add_row({c.name, sp ? "sound" : "UNSOUND",
                   c.sound_programmer ? "sound" : "UNSOUND",
                   si ? "sound" : "UNSOUND",
                   c.sound_implementation ? "sound" : "UNSOUND"});
    mismatches += (sp != c.sound_programmer) + (si != c.sound_implementation);
  }
  std::printf("\nS5 compiler optimizations (observational soundness)\n\n%s\n",
              table.render().c_str());
  std::printf("optimization mismatches: %zu\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool variants = false;
  std::size_t threads = 0;  // 0 = all cores
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--variants") == 0) variants = true;
    if (std::strcmp(argv[i], "--serial") == 0) threads = 1;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::max(0ll, std::atoll(argv[++i])));
  }

  int rc = run_main_table(threads);
  rc |= run_optimization_table();
  if (variants) rc |= run_variant_grid();
  return rc;
}
