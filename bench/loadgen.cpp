// Open-loop load generator CLI for the serving front end.
//
// Usage: loadgen [--host H] [--port P] [--spawn BACKEND]
//                [--conns N] [--rate OPS_PER_SEC] [--poisson]
//                [--ops N] [--mix NAME] [--keys N] [--shards N] [--snap N]
//                [--reactors N] [--batch N] [--refresh N] [--stream]
//                [--move-at N] [--move-kind split|move|merge]
//                [--move-src S] [--move-dst S]
//                [--require-hello] [--no-hello] [--seed N]
//                [--duration-ms N] [--assert] [--json PATH]
//
// Two modes:
//   --port P        drive an already-running server at --host:P.
//   --spawn BACKEND self-host: start an in-process Server on the named STM
//                   backend (ephemeral port), drive it, and report the
//                   server's own stats too — batching flushes and, with
//                   --stream, the streaming-conformance verdicts over the
//                   served traffic.  This is the CI loopback smoke mode.
//
// --rate is the aggregate intended arrival rate across --conns connections
// (open-loop: the schedule never waits for responses; latency is measured
// from the INTENDED send time, so queueing is charged, not omitted).
// --duration-ms sizes --ops from the rate when --ops is not given.
// --move-at N (spawn mode) scripts a live migration: once the owning
// reactor has executed N requests it runs --move-kind from --move-src to
// --move-dst at its quiet point, mid-load.  Bounced requests come back as
// Status::moved and the generator retries them transparently (original
// intended timestamp preserved; moved_retries reported).  --move-dst
// defaults to the lowest shard sharing --move-src's owning reactor.
// --assert exits 1 unless every response arrived, every value was
// well-formed, and (spawn mode) the server saw no bad frames, no
// non-conformant segment, and no ring drop.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "campaign/report.hpp"
#include "kv/workload.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"

int main(int argc, char** argv) {
  using namespace mtx;
  net::LoadgenOptions lg;
  net::ServerConfig cfg;  // spawn mode; cfg.store is shared with lg.store
  std::string spawn_backend, mix_name = "hot", json_path;
  std::uint64_t duration_ms = 2000;
  bool ops_given = false, do_assert = false, move_dst_given = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto count = [&](const char* flag) -> std::uint64_t {
      const long long v = std::atoll(next(flag));
      if (v < 0) {
        std::fprintf(stderr, "%s must be >= 0\n", flag);
        std::exit(2);
      }
      return static_cast<std::uint64_t>(v);
    };
    if (std::strcmp(argv[i], "--host") == 0)
      lg.host = next("--host");
    else if (std::strcmp(argv[i], "--port") == 0)
      lg.port = static_cast<std::uint16_t>(count("--port"));
    else if (std::strcmp(argv[i], "--spawn") == 0)
      spawn_backend = next("--spawn");
    else if (std::strcmp(argv[i], "--conns") == 0)
      lg.connections = static_cast<std::size_t>(count("--conns"));
    else if (std::strcmp(argv[i], "--rate") == 0)
      lg.rate = static_cast<double>(count("--rate"));
    else if (std::strcmp(argv[i], "--poisson") == 0)
      lg.poisson = true;
    else if (std::strcmp(argv[i], "--ops") == 0) {
      lg.ops_per_conn = count("--ops");
      ops_given = true;
    } else if (std::strcmp(argv[i], "--mix") == 0)
      mix_name = next("--mix");
    else if (std::strcmp(argv[i], "--keys") == 0)
      lg.store.preload_keys = static_cast<std::size_t>(count("--keys"));
    else if (std::strcmp(argv[i], "--shards") == 0)
      lg.store.shards = static_cast<std::size_t>(count("--shards"));
    else if (std::strcmp(argv[i], "--snap") == 0)
      lg.store.snap_keys = static_cast<std::size_t>(count("--snap"));
    else if (std::strcmp(argv[i], "--reactors") == 0)
      cfg.reactors.count = static_cast<std::size_t>(count("--reactors"));
    else if (std::strcmp(argv[i], "--batch") == 0)
      cfg.reactors.max_batch = static_cast<std::size_t>(count("--batch"));
    else if (std::strcmp(argv[i], "--refresh") == 0)
      cfg.reactors.snap_refresh_every =
          static_cast<std::size_t>(count("--refresh"));
    else if (std::strcmp(argv[i], "--stream") == 0)
      cfg.stream.enabled = true;
    else if (std::strcmp(argv[i], "--move-at") == 0)
      cfg.migrate.after_ops = static_cast<std::size_t>(count("--move-at"));
    else if (std::strcmp(argv[i], "--move-kind") == 0) {
      const char* name = next("--move-kind");
      if (!kv::migrate_kind_from(name, &cfg.migrate.kind)) {
        std::fprintf(stderr, "unknown --move-kind: %s\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--move-src") == 0)
      cfg.migrate.src = static_cast<std::size_t>(count("--move-src"));
    else if (std::strcmp(argv[i], "--move-dst") == 0) {
      cfg.migrate.dst = static_cast<std::size_t>(count("--move-dst"));
      move_dst_given = true;
    }
    else if (std::strcmp(argv[i], "--require-hello") == 0)
      cfg.listener.require_hello = true;
    else if (std::strcmp(argv[i], "--no-hello") == 0)
      lg.hello = false;
    else if (std::strcmp(argv[i], "--seed") == 0)
      lg.seed = count("--seed");
    else if (std::strcmp(argv[i], "--duration-ms") == 0)
      duration_ms = count("--duration-ms");
    else if (std::strcmp(argv[i], "--assert") == 0)
      do_assert = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = next("--json");
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  lg.mix = kv::mix_by_name(mix_name);
  if (!lg.mix) {
    std::fprintf(stderr, "unknown mix: %s\n", mix_name.c_str());
    return 2;
  }
  if (!ops_given) {
    // Size the run from rate x duration, split across connections.
    const double total = lg.rate * static_cast<double>(duration_ms) / 1e3;
    lg.ops_per_conn = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               total / static_cast<double>(std::max<std::size_t>(
                           1, lg.connections))));
  }

  std::unique_ptr<net::Server> server;
  std::thread server_thread;
  stm::StmBackend* backend = nullptr;
  std::unique_ptr<stm::StmBackend> backend_owned;
  if (!spawn_backend.empty()) {
    backend_owned = stm::make_backend(spawn_backend);
    if (!backend_owned) {
      std::fprintf(stderr, "unknown backend: %s\n", spawn_backend.c_str());
      return 2;
    }
    backend = backend_owned.get();
    cfg.store = lg.store;  // one geometry, both sides
    if (cfg.migrate.after_ops > 0 && !move_dst_given) {
      // Default destination: the lowest other shard on src's reactor, so
      // the scripted migration satisfies the same-owner constraint out of
      // the box (under the modulo policy that is src + reactors.count).
      for (std::size_t s = 0; s < cfg.store.shards; ++s) {
        if (s != cfg.migrate.src &&
            cfg.owner_of(s) == cfg.owner_of(cfg.migrate.src)) {
          cfg.migrate.dst = s;
          break;
        }
      }
    }
    const std::string cfg_err = cfg.validate();
    if (!cfg_err.empty()) {
      std::fprintf(stderr, "bad config: %s\n", cfg_err.c_str());
      return 2;
    }
    server = std::make_unique<net::Server>(*backend, cfg);
    server_thread = std::thread([&] { server->run(); });
    lg.port = server->port();
  } else if (lg.port == 0) {
    std::fprintf(stderr, "need --port or --spawn\n");
    return 2;
  }

  const net::LoadgenResult r = net::run_loadgen(lg);

  net::ServerStats sstats;
  if (server) {
    server->stop();
    server_thread.join();
    sstats = server->stats();
  }

  std::string json = "{\n";
  json += "  \"mix\": \"" + mix_name + "\",\n";
  if (backend) json += "  \"backend\": \"" + std::string(backend->name()) + "\",\n";
  json += "  \"conns\": " + std::to_string(lg.connections) + ",\n";
  json += "  \"rate\": " + fixed(lg.rate, 1) + ",\n";
  json += "  \"poisson\": " + std::string(lg.poisson ? "true" : "false") + ",\n";
  json += "  \"intended\": " + std::to_string(r.intended) + ",\n";
  json += "  \"sent\": " + std::to_string(r.sent) + ",\n";
  json += "  \"completed\": " + std::to_string(r.completed) + ",\n";
  json += "  \"errors\": " + std::to_string(r.errors) + ",\n";
  json += "  \"form_violations\": " + std::to_string(r.form_violations) + ",\n";
  json += "  \"moved_retries\": " + std::to_string(r.moved_retries) + ",\n";
  json += "  \"wall_ms\": " + fixed(r.wall_ms, 2) + ",\n";
  json += "  \"offered_per_sec\": " + fixed(r.offered_per_sec, 1) + ",\n";
  json += "  \"achieved_per_sec\": " + fixed(r.achieved_per_sec, 1) + ",\n";
  json += "  \"latency\": " + r.hist.to_json() + ",\n";
  json += "  \"ops\": {\"get\": " + std::to_string(r.gets) +
          ", \"snap_read\": " + std::to_string(r.snap_reads) +
          ", \"put\": " + std::to_string(r.puts) +
          ", \"insert\": " + std::to_string(r.inserts) +
          ", \"scan\": " + std::to_string(r.scans) +
          ", \"rmw\": " + std::to_string(r.rmws) + "}";
  if (server) {
    json += ",\n  \"server\": {\"reactors\": " +
            std::to_string(sstats.reactors) +
            ", \"frames\": " + std::to_string(sstats.frames) +
            ", \"bad_frames\": " + std::to_string(sstats.bad_frames) +
            ", \"handoffs\": " + std::to_string(sstats.handoffs) +
            ", \"hellos\": " + std::to_string(sstats.hellos) +
            ", \"hello_rejects\": " + std::to_string(sstats.hello_rejects) +
            ", \"transactions\": " + std::to_string(sstats.batch.transactions) +
            ", \"batched_ops\": " + std::to_string(sstats.batch.ops) +
            ", \"snap_refreshes\": " + std::to_string(sstats.snap_refreshes) +
            ", \"moved\": " + std::to_string(sstats.moved) +
            ", \"migrations\": " + std::to_string(sstats.migrations) +
            ", \"keys_migrated\": " + std::to_string(sstats.keys_migrated) +
            ", \"routing_epoch\": " + std::to_string(sstats.routing_epoch) +
            ", \"streamed\": " + (sstats.streamed ? "true" : "false") +
            ", \"segments\": " + std::to_string(sstats.segments) +
            ", \"windows\": " + std::to_string(sstats.windows) +
            ", \"nonconformant\": " + std::to_string(sstats.nonconformant) +
            ", \"ring_dropped\": " + std::to_string(sstats.ring_dropped) +
            ", \"overflow\": " + (sstats.overflow ? "true" : "false") + "}";
  }
  json += "\n}\n";
  std::fputs(json.c_str(), stdout);
  if (!json_path.empty() && !campaign::write_file(json_path, json)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }

  if (do_assert) {
    const bool client_ok = r.ok();
    const bool server_ok = !server || sstats.ok();
    // A scripted migration must actually have run: if the reactor never
    // reached --move-at the smoke test proved nothing.
    const bool migrate_ok =
        !server || cfg.migrate.after_ops == 0 || sstats.migrations > 0;
    if (!client_ok || !server_ok || !migrate_ok) {
      std::fprintf(stderr,
                   "loadgen assert failed: client %s, server %s, migrate %s\n",
                   client_ok ? "ok" : "FAIL", server_ok ? "ok" : "FAIL",
                   migrate_ok ? "ok" : "FAIL");
      return 1;
    }
  }
  return 0;
}
