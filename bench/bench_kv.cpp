// KV workload engine bench: every registered backend x every standard mix
// (YCSB A/B/C, priv_heavy, pub_heavy) x 1..N threads, reporting throughput
// and p50/p95/p99 latency from the log-scale LatencyHist — the BENCH_kv.json
// perf trajectory for the serving layer.
//
// A second, smaller section runs the sampled-conformance oracle: priv_heavy
// with recording on across all backends, reporting captured sessions,
// fence-bounded windows and the model's verdict.  Any non-conformant window
// (or failed store audit anywhere) fails the bench — CI runs this as a
// correctness smoke alongside the perf artifact.
//
// A third section measures privatization scaling: priv_heavy (sampling off)
// on the domain-aware backends at shard counts 1 and N with per-shard
// quiescence domains, plus shards=N with whole-store fences as the control.
// With scoped fences a scan quiesces only its own shard, so multi-shard
// throughput should not collapse to the single-domain baseline.
// --assert-priv-scaling turns that into a hard check (exit 1 when
// multi-shard scoped < --priv-min-ratio x single-shard); CI runs it on a
// multi-core runner.
//
// A fourth section measures the streaming conformance tax at each sampling
// level: the same priv_heavy geometry runs unchecked (no rounds — the pure
// perf path) and streaming-checked at level 1 (always-on: every round
// through the per-thread rings, segments judged concurrently) and at the CI
// sampling level (--stream-sample, default 8: every Nth round recorded and
// judged, the rest at full speed).  Each checked/unchecked throughput ratio
// lands in BENCH_kv.json's `stream_overhead`.  Checked runs must stay
// conformant with zero ring drops — an overflow poisons the bench like any
// verdict violation.  --assert-stream-overhead turns the CI-level ratio
// into a hard floor (exit 1 when checked < --stream-min-ratio x unchecked,
// default 0.5): checking at the CI sampling level may halve throughput,
// never worse.  On a single-hardware-thread host the assertion is skipped
// (reported, not enforced): with one core the ratio measures scheduler
// contention between the serving thread and the cutter/checkers, not the
// capture tax the floor is about.
//
// Usage: bench_kv [--ops N] [--threads-max N] [--keys N] [--oracle-ops N]
//                 [--scaling-shards N] [--assert-priv-scaling]
//                 [--priv-min-ratio R] [--assert-stream-overhead]
//                 [--stream-min-ratio R] [--stream-sample N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "kv/workload.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;

struct OracleRow {
  std::string backend;
  std::size_t sessions = 0, windows = 0, nonconformant = 0, actions = 0;
  bool invariant_ok = false;
  double ms = 0;
};

struct ScalingRow {
  std::string backend;
  std::size_t shards = 0;
  bool scoped = false;
  double ops_per_sec = 0;
  std::uint64_t priv_waits = 0;
};

struct StreamRow {
  std::string backend;
  std::size_t sample_every = 1;  // sampling level of the checked run
  double unchecked_ops_per_sec = 0;
  double checked_ops_per_sec = 0;
  double ratio = 0;  // checked / unchecked
  std::size_t segments = 0, windows = 0, nonconformant = 0;
  std::uint64_t ring_dropped = 0;
  std::size_t max_backlog = 0;
  bool overflow = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 20000;
  std::size_t threads_max = std::min<std::size_t>(hw_threads(), 4);
  std::size_t keys = 2048;
  std::uint64_t oracle_ops = 48;
  std::size_t scaling_shards = 4;
  bool assert_priv_scaling = false;
  double priv_min_ratio = 0.9;
  bool assert_stream_overhead = false;
  double stream_min_ratio = 0.5;
  std::size_t stream_sample = 8;  // the CI sampling level
  std::string out_path = "BENCH_kv.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc)
      ops = static_cast<std::uint64_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--threads-max") == 0 && i + 1 < argc)
      threads_max = static_cast<std::size_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--keys") == 0 && i + 1 < argc)
      keys = static_cast<std::size_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--oracle-ops") == 0 && i + 1 < argc)
      oracle_ops = static_cast<std::uint64_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--scaling-shards") == 0 && i + 1 < argc)
      scaling_shards = static_cast<std::size_t>(std::max(2ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--assert-priv-scaling") == 0)
      assert_priv_scaling = true;
    else if (std::strcmp(argv[i], "--priv-min-ratio") == 0 && i + 1 < argc)
      priv_min_ratio = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--assert-stream-overhead") == 0)
      assert_stream_overhead = true;
    else if (std::strcmp(argv[i], "--stream-min-ratio") == 0 && i + 1 < argc)
      stream_min_ratio = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--stream-sample") == 0 && i + 1 < argc)
      stream_sample = static_cast<std::size_t>(std::max(1ll, std::atoll(argv[++i])));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  bool all_ok = true;

  // Perf grid: sampling off, realistic key space.
  std::vector<kv::KvResult> rows;
  Table table({"backend", "mix", "threads", "ops/s", "p50us", "p95us", "p99us"});
  for (const std::string& backend : stm::backend_names()) {
    for (const kv::Mix& mix : kv::standard_mixes()) {
      for (std::size_t t = 1; t <= threads_max; t *= 2) {
        auto stm = stm::make_backend(backend);
        kv::KvWorkloadOptions o;
        o.threads = t;
        o.seed = 31;
        o.ops_per_thread = ops / t;  // fixed total work per row
        o.store.preload_keys = keys;
        o.store.shards = 8;
        o.store.snap_keys = 32;
        kv::KvResult r = kv::run_kv_workload(*stm, mix, o);
        all_ok = all_ok && r.invariant_ok;
        table.add_row({r.backend, r.mix, std::to_string(r.threads),
                       fixed(r.ops_per_sec, 0),
                       fixed(static_cast<double>(r.p50_ns) / 1e3, 2),
                       fixed(static_cast<double>(r.p95_ns) / 1e3, 2),
                       fixed(static_cast<double>(r.p99_ns) / 1e3, 2)});
        rows.push_back(std::move(r));
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Conformance oracle: priv_heavy with sampled recording, small geometry —
  // each recorded window's carry transaction re-writes every store cell, so
  // window count x cell count is the cost driver (fence expansion itself is
  // domain-scoped now and no longer scales with the whole key space).
  std::vector<OracleRow> oracle;
  Table otable({"backend", "sessions", "windows", "actions", "verdict", "ms"});
  for (const std::string& backend : stm::backend_names()) {
    const auto t0 = std::chrono::steady_clock::now();
    auto stm = stm::make_backend(backend);
    kv::KvWorkloadOptions o;
    o.threads = 3;
    o.seed = 47;
    o.ops_per_thread = oracle_ops;
    o.store.preload_keys = 24;
    o.store.shards = 2;
    o.store.snap_keys = 4;
    o.sample_every = 2;
    o.round_ops = 16;
    const kv::KvResult r =
        kv::run_kv_workload(*stm, *kv::mix_by_name("priv_heavy"), o);
    OracleRow row;
    row.backend = backend;
    row.sessions = r.conf.sessions;
    row.windows = r.conf.windows;
    row.nonconformant = r.conf.nonconformant;
    row.actions = r.conf.recorded_actions;
    row.invariant_ok = r.invariant_ok;
    row.ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
    all_ok = all_ok && r.invariant_ok && row.nonconformant == 0;
    otable.add_row({row.backend, std::to_string(row.sessions),
                    std::to_string(row.windows), std::to_string(row.actions),
                    row.nonconformant == 0 && row.invariant_ok ? "conformant"
                                                               : "VIOLATION",
                    fixed(row.ms, 1)});
    oracle.push_back(std::move(row));
  }
  std::printf("sampled conformance oracle (priv_heavy, windowed checker):\n%s\n",
              otable.render().c_str());

  // Privatization scaling: the tentpole claim of per-shard quiescence
  // domains.  Backends with real scoped wait paths (tl2, norec) run
  // priv_heavy at shards=1 (every scan fences everything — the pre-domain
  // worst case by construction), shards=N scoped (a scan fences only its
  // shard), and shards=N with whole-store fences (the control separating
  // domain locality from plain sharding).
  std::vector<ScalingRow> scaling;
  bool scaling_ok = true;
  Table stable({"backend", "shards", "fences", "ops/s", "priv_waits"});
  const std::size_t sthreads = std::min<std::size_t>(hw_threads(), 4);
  struct ScalingCfg {
    std::size_t shards;
    bool scoped;
  };
  for (const std::string& backend : {std::string("tl2"), std::string("norec")}) {
    double single = 0, multi = 0;
    for (const ScalingCfg& cfg : {ScalingCfg{1, true},
                                  ScalingCfg{scaling_shards, true},
                                  ScalingCfg{scaling_shards, false}}) {
      auto stm = stm::make_backend(backend);
      kv::KvWorkloadOptions o;
      o.threads = sthreads;
      o.seed = 53;
      o.ops_per_thread = ops / sthreads;
      o.store.preload_keys = keys;
      o.store.shards = cfg.shards;
      o.store.snap_keys = 32;
      o.scoped_fences = cfg.scoped;
      kv::KvResult r =
          kv::run_kv_workload(*stm, *kv::mix_by_name("priv_heavy"), o);
      all_ok = all_ok && r.invariant_ok;
      ScalingRow row;
      row.backend = backend;
      row.shards = cfg.shards;
      row.scoped = cfg.scoped;
      row.ops_per_sec = r.ops_per_sec;
      row.priv_waits = r.priv_waits;
      if (cfg.scoped && cfg.shards == 1) single = r.ops_per_sec;
      if (cfg.scoped && cfg.shards == scaling_shards) multi = r.ops_per_sec;
      stable.add_row({backend, std::to_string(cfg.shards),
                      cfg.scoped ? "scoped" : "global",
                      fixed(row.ops_per_sec, 0), std::to_string(row.priv_waits)});
      scaling.push_back(std::move(row));
    }
    // Multi-shard with scoped fences must at least hold the single-domain
    // line (on multi-core runners it should beat it; the ratio floor keeps
    // the check robust to noisy CI machines).
    if (assert_priv_scaling && multi < priv_min_ratio * single) {
      std::fprintf(stderr,
                   "priv scaling REGRESSION: %s shards=%zu scoped %.0f ops/s < "
                   "%.2f x shards=1 %.0f ops/s\n",
                   backend.c_str(), scaling_shards, multi, priv_min_ratio,
                   single);
      scaling_ok = false;
    }
  }
  std::printf("privatization scaling (priv_heavy, %zu threads):\n%s\n",
              sthreads, stable.render().c_str());

  // Streaming overhead: A/B the same geometry unchecked vs streaming-
  // checked at each sampling level (always-on, then the CI level).  The
  // unchecked run is the pure perf path (no rounds, no barriers, no
  // recording); a checked run records sampled rounds through the rings and
  // judges segments concurrently.  Checked throughput counts the run only —
  // the tail drain in finish() happens after the clock, the same convention
  // the sampled oracle uses — so the ratio isolates what capture costs the
  // serving threads: spinlocked shadow accesses, round barriers, and
  // checker-thread CPU contention.
  //
  // The A/B runs its own bounded geometry (not --keys/--ops).  The round is
  // the checker's unit of work: inside a segment, shard-scoped fences almost
  // never validate as cuts (rule (d) — concurrent traffic touches other
  // shards on both sides), so a segment is judged as one window and checker
  // cost grows superlinearly with round x threads x scan size.  Sampled-
  // scale rounds and a modest key space keep the pipeline in its
  // sustainable regime — the regime the overhead claim is about; perf-grid
  // geometry would measure checker-queue growth, not capture tax.
  std::vector<StreamRow> stream_rows;
  bool stream_ok = true;
  const bool stream_assertable = hw_threads() >= 2;
  const std::uint64_t stream_ops = std::min<std::uint64_t>(ops, 2000);
  const std::size_t stream_keys = 128;
  std::vector<std::size_t> stream_levels = {1};
  if (stream_sample > 1) stream_levels.push_back(stream_sample);
  Table strt({"backend", "sample", "unchecked ops/s", "checked ops/s", "ratio",
              "segments", "windows", "backlog", "verdict"});
  for (const std::string& backend : stm::backend_names()) {
    kv::KvWorkloadOptions o;
    o.threads = sthreads;
    o.seed = 59;
    o.ops_per_thread = stream_ops / sthreads;
    o.store.preload_keys = stream_keys;
    o.store.shards = 8;
    o.store.snap_keys = 32;
    double unchecked = 0;
    {
      auto stm = stm::make_backend(backend);
      const kv::KvResult r =
          kv::run_kv_workload(*stm, *kv::mix_by_name("priv_heavy"), o);
      all_ok = all_ok && r.invariant_ok;
      unchecked = r.ops_per_sec;
    }
    for (const std::size_t level : stream_levels) {
      StreamRow row;
      row.backend = backend;
      row.sample_every = level;
      row.unchecked_ops_per_sec = unchecked;
      auto stm = stm::make_backend(backend);
      kv::KvWorkloadOptions c = o;
      c.stream = true;
      c.round_ops = 32;
      c.stream_ring_capacity = 1u << 15;
      c.stream_sample_every = level;
      const kv::KvResult r =
          kv::run_kv_workload(*stm, *kv::mix_by_name("priv_heavy"), c);
      all_ok = all_ok && r.invariant_ok && r.conf.all_ok();
      row.checked_ops_per_sec = r.ops_per_sec;
      row.segments = r.conf.sessions;
      row.windows = r.conf.windows;
      row.nonconformant = r.conf.nonconformant;
      row.ring_dropped = r.conf.ring_dropped;
      row.max_backlog = r.conf.max_backlog;
      row.overflow = r.conf.overflow;
      row.ratio = unchecked > 0 ? row.checked_ops_per_sec / unchecked : 0;
      // The floor applies at the CI sampling level (the sparsest level run);
      // the always-on row is reported for the trajectory but not gated.
      if (assert_stream_overhead && stream_assertable &&
          level == stream_levels.back() && row.ratio < stream_min_ratio) {
        std::fprintf(stderr,
                     "stream overhead REGRESSION: %s sample=%zu checked %.0f "
                     "ops/s < %.2f x unchecked %.0f ops/s\n",
                     backend.c_str(), level, row.checked_ops_per_sec,
                     stream_min_ratio, row.unchecked_ops_per_sec);
        stream_ok = false;
      }
      strt.add_row({backend, std::to_string(level), fixed(unchecked, 0),
                    fixed(row.checked_ops_per_sec, 0), fixed(row.ratio, 2),
                    std::to_string(row.segments), std::to_string(row.windows),
                    std::to_string(row.max_backlog),
                    row.nonconformant == 0 && !row.overflow ? "conformant"
                                                            : "VIOLATION"});
      stream_rows.push_back(std::move(row));
    }
  }
  std::printf("streaming conformance overhead (priv_heavy, %zu threads):\n%s\n",
              sthreads, strt.render().c_str());
  if (assert_stream_overhead && !stream_assertable)
    std::printf(
        "note: single hardware thread — stream overhead floor reported but "
        "not enforced (the ratio would measure scheduler contention, not "
        "capture tax)\n\n");

  std::string json = "{\n";
  json += "  \"bench\": \"kv\",\n";
  json += "  \"hw_threads\": " + std::to_string(hw_threads()) + ",\n";
  json += "  \"total_ops\": " + std::to_string(ops) + ",\n";
  json += "  \"keys\": " + std::to_string(keys) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const kv::KvResult& r = rows[i];
    json += "    {\"backend\": \"" + r.backend + "\", \"mix\": \"" + r.mix +
            "\", \"threads\": " + std::to_string(r.threads) +
            ", \"ops\": " + std::to_string(r.ops) +
            ", \"ms\": " + fixed(r.wall_ms, 3) +
            ", \"ops_per_sec\": " + fixed(r.ops_per_sec, 1) +
            ", \"latency\": " + r.hist.to_json() +
            ", \"scans_completed\": " + std::to_string(r.scans_completed) +
            ", \"priv_waits\": " + std::to_string(r.priv_waits) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"oracle_ops_per_thread\": " + std::to_string(oracle_ops) + ",\n";
  json += "  \"oracle\": [\n";
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    const OracleRow& r = oracle[i];
    json += "    {\"backend\": \"" + r.backend +
            "\", \"sessions\": " + std::to_string(r.sessions) +
            ", \"windows\": " + std::to_string(r.windows) +
            ", \"nonconformant\": " + std::to_string(r.nonconformant) +
            ", \"actions\": " + std::to_string(r.actions) +
            ", \"invariant_ok\": " + (r.invariant_ok ? "true" : "false") +
            ", \"ms\": " + fixed(r.ms, 3) + "}";
    json += (i + 1 < oracle.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"priv_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    json += "    {\"backend\": \"" + r.backend +
            "\", \"shards\": " + std::to_string(r.shards) +
            ", \"scoped_fences\": " + (r.scoped ? "true" : "false") +
            ", \"ops_per_sec\": " + fixed(r.ops_per_sec, 1) +
            ", \"priv_waits\": " + std::to_string(r.priv_waits) + "}";
    json += (i + 1 < scaling.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"stream_ops\": " + std::to_string(stream_ops) + ",\n";
  json += "  \"stream_keys\": " + std::to_string(stream_keys) + ",\n";
  json += "  \"stream_ci_sample_every\": " + std::to_string(stream_sample) + ",\n";
  json += "  \"stream_overhead\": [\n";
  for (std::size_t i = 0; i < stream_rows.size(); ++i) {
    const StreamRow& r = stream_rows[i];
    json += "    {\"backend\": \"" + r.backend +
            "\", \"sample_every\": " + std::to_string(r.sample_every) +
            ", \"unchecked_ops_per_sec\": " + fixed(r.unchecked_ops_per_sec, 1) +
            ", \"checked_ops_per_sec\": " + fixed(r.checked_ops_per_sec, 1) +
            ", \"ratio\": " + fixed(r.ratio, 4) +
            ", \"segments\": " + std::to_string(r.segments) +
            ", \"windows\": " + std::to_string(r.windows) +
            ", \"nonconformant\": " + std::to_string(r.nonconformant) +
            ", \"ring_dropped\": " + std::to_string(r.ring_dropped) +
            ", \"max_backlog\": " + std::to_string(r.max_backlog) +
            ", \"overflow\": " + std::string(r.overflow ? "true" : "false") + "}";
    json += (i + 1 < stream_rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  if (!mtx::campaign::write_file(out_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr, "bench_kv: conformance violation or failed audit\n");
    return 1;
  }
  if (!scaling_ok) return 1;
  if (!stream_ok) return 1;
  return 0;
}
