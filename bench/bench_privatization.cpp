// E34: the privatization idiom on the runtime (§1 / §5).
//
// A privatizer flips a flag transactionally, then works on the privatized
// cell with plain accesses.  In the implementation model this requires a
// quiescence fence; the benchmark measures the cost of the fence as a
// function of mutator count, and the fenceless variant's *violation rate*
// under the eager backend (where in-place speculative writes make the race
// observable) -- the empirical counterpart of E01's "Allowed" verdict in the
// implementation model.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/eager.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace mtx::stm;

template <typename Stm, bool Fenced>
void BM_Privatize(benchmark::State& state) {
  static Stm stm;
  static Cell flag(0);
  static Cell data(0);
  static std::atomic<bool> stop{false};
  static std::vector<std::thread> mutators;
  static std::atomic<std::uint64_t> violations{0};

  if (state.thread_index() == 0) {
    stop = false;
    violations = 0;
    const int nmut = static_cast<int>(state.range(0));
    for (int i = 0; i < nmut; ++i) {
      mutators.emplace_back([] {
        while (!stop.load(std::memory_order_acquire)) {
          stm.atomically([&](auto& tx) {
            if (tx.read(flag) == 0) tx.write(data, tx.read(data) + 1);
          });
        }
      });
    }
  }

  for (auto _ : state) {
    stm.atomically([&](auto& tx) { tx.write(flag, 1); });
    if (Fenced) stm.quiesce();
    const word_t v = data.plain_load();
    data.plain_store(v + 1);
    if (data.plain_load() != v + 1) violations.fetch_add(1);
    stm.atomically([&](auto& tx) { tx.write(flag, 0); });
  }

  if (state.thread_index() == 0) {
    stop = true;
    for (auto& m : mutators) m.join();
    mutators.clear();
    state.SetLabel("violations=" + std::to_string(violations.load()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_TEMPLATE(BM_Privatize, Tl2Stm, true)->Arg(1)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Privatize, Tl2Stm, false)->Arg(1)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Privatize, EagerStm, true)->Arg(1)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Privatize, EagerStm, false)->Arg(1)->Arg(4)->UseRealTime();

// Raw quiescence-fence latency vs number of concurrently active (short)
// transactions.
void BM_QuiesceLatency(benchmark::State& state) {
  static Tl2Stm stm;
  static Cell cells[8];
  static std::atomic<bool> stop{false};
  static std::vector<std::thread> churn;

  if (state.thread_index() == 0) {
    stop = false;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      churn.emplace_back([i] {
        while (!stop.load(std::memory_order_acquire)) {
          stm.atomically([&](auto& tx) {
            tx.write(cells[i % 8], tx.read(cells[i % 8]) + 1);
          });
        }
      });
    }
  }
  for (auto _ : state) stm.quiesce();
  if (state.thread_index() == 0) {
    stop = true;
    for (auto& t : churn) t.join();
    churn.clear();
  }
}
BENCHMARK(BM_QuiesceLatency)->Arg(0)->Arg(2)->Arg(6)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
