// E34: the privatization idiom on the runtime (§1 / §5).
//
// A privatizer flips a flag transactionally, then works on the privatized
// cell with plain accesses.  In the implementation model this requires a
// quiescence fence; the benchmark measures the cost of the fence as a
// function of mutator count, and the fenceless variant's *violation rate*
// (observable on the eager backend, where in-place speculative writes make
// the race concrete) — the empirical counterpart of E01's "Allowed" verdict
// in the implementation model.
//
// Benchmarks are registered per backend through the StmBackend registry.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "stm/backend.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace mtx::stm;

// State for one registered privatization benchmark (backend x fenced).
struct PrivBench {
  std::unique_ptr<StmBackend> stm;
  bool fenced = false;
  Cell flag{0};
  Cell data{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  std::atomic<std::uint64_t> violations{0};

  void run(benchmark::State& state) {
    stop = false;
    violations = 0;
    const int nmut = static_cast<int>(state.range(0));
    for (int i = 0; i < nmut; ++i) {
      mutators.emplace_back([this] {
        while (!stop.load(std::memory_order_acquire)) {
          stm->atomically([&](auto& tx) {
            if (tx.read(flag) == 0) tx.write(data, tx.read(data) + 1);
          });
        }
      });
    }

    for (auto _ : state) {
      stm->atomically([&](auto& tx) { tx.write(flag, 1); });
      if (fenced) stm->quiesce();
      const word_t v = data.plain_load();
      data.plain_store(v + 1);
      if (data.plain_load() != v + 1) violations.fetch_add(1);
      stm->atomically([&](auto& tx) { tx.write(flag, 0); });
    }

    stop = true;
    for (auto& m : mutators) m.join();
    mutators.clear();
    state.SetLabel("violations=" + std::to_string(violations.load()));
    state.SetItemsProcessed(state.iterations());
  }
};

std::vector<std::unique_ptr<PrivBench>> g_benches;

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : mtx::stm::backend_names()) {
    for (const bool fenced : {true, false}) {
      g_benches.push_back(std::make_unique<PrivBench>());
      PrivBench* b = g_benches.back().get();
      b->stm = mtx::stm::make_backend(name);
      b->fenced = fenced;
      benchmark::RegisterBenchmark(
          ("Privatize/" + name + (fenced ? "/fenced" : "/unfenced")).c_str(),
          [b](benchmark::State& st) { b->run(st); })
          ->Arg(1)
          ->Arg(4)
          ->UseRealTime();
    }
  }

  // Raw quiescence-fence latency vs number of concurrently active (short)
  // transactions (TL2's epoch registry; representative of the orec family).
  static Tl2Stm qstm;
  static Cell qcells[8];
  static std::atomic<bool> qstop{false};
  static std::vector<std::thread> churn;
  benchmark::RegisterBenchmark("QuiesceLatency", [](benchmark::State& state) {
    qstop = false;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      churn.emplace_back([i] {
        while (!qstop.load(std::memory_order_acquire)) {
          qstm.atomically([&](auto& tx) {
            tx.write(qcells[i % 8], tx.read(qcells[i % 8]) + 1);
          });
        }
      });
    }
    for (auto _ : state) qstm.quiesce();
    qstop = true;
    for (auto& t : churn) t.join();
    churn.clear();
  })->Arg(0)->Arg(2)->Arg(6)->UseRealTime();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
