// E35: transactional data structures -- sorted list set, striped hash map
// and the bank workload -- across the three backends.
#include <benchmark/benchmark.h>

#include "containers/bank.hpp"
#include "containers/thash.hpp"
#include "containers/tlist.hpp"
#include "stm/eager.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"
#include "substrate/rng.hpp"

namespace {

using namespace mtx::containers;
using mtx::stm::EagerStm;
using mtx::stm::SglStm;
using mtx::stm::Tl2Stm;

constexpr std::int64_t kKeyRange = 128;

template <typename Stm>
void BM_ListMixed(benchmark::State& state) {
  static Stm stm;
  static TList<Stm>* list = [] {
    auto* l = new TList<Stm>(stm);
    for (std::int64_t k = 0; k < kKeyRange; k += 2) l->insert(k);
    return l;
  }();
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) * 7 + 3);
  for (auto _ : state) {
    const std::int64_t key = static_cast<std::int64_t>(rng.below(kKeyRange));
    switch (rng.below(10)) {
      case 0: list->insert(key); break;
      case 1: list->remove(key); break;
      default: benchmark::DoNotOptimize(list->contains(key));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_ListMixed, Tl2Stm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ListMixed, EagerStm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ListMixed, SglStm)->ThreadRange(1, 8)->UseRealTime();

template <typename Stm>
void BM_HashMixed(benchmark::State& state) {
  static Stm stm;
  static THash<Stm>* map = [] {
    auto* m = new THash<Stm>(stm, 64);
    for (std::int64_t k = 0; k < kKeyRange; k += 2) m->put(k, k);
    return m;
  }();
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) * 13 + 5);
  for (auto _ : state) {
    const std::int64_t key = static_cast<std::int64_t>(rng.below(kKeyRange));
    switch (rng.below(10)) {
      case 0: map->put(key, key); break;
      case 1: map->erase(key); break;
      default: {
        std::int64_t v;
        benchmark::DoNotOptimize(map->get(key, &v));
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_HashMixed, Tl2Stm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_HashMixed, EagerStm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_HashMixed, SglStm)->ThreadRange(1, 8)->UseRealTime();

template <typename Stm>
void BM_BankTransfers(benchmark::State& state) {
  static Stm stm;
  static Bank<Stm> bank(stm, 256, 1000);
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) * 31 + 7);
  for (auto _ : state) {
    const auto from = static_cast<std::size_t>(rng.below(bank.size()));
    const auto to = (from + 1 + static_cast<std::size_t>(rng.below(bank.size() - 1))) %
                    bank.size();
    bank.transfer(from, to, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_BankTransfers, Tl2Stm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_BankTransfers, EagerStm)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_BankTransfers, SglStm)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
