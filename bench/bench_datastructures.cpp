// E35: transactional data structures — sorted list set, striped hash map
// and the bank workload — across every registered backend, driven through
// the StmBackend registry (benchmarks are registered in a loop; adding a
// backend to the registry adds it to every family here automatically).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "containers/bank.hpp"
#include "containers/thash.hpp"
#include "containers/tlist.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"

namespace {

using namespace mtx::containers;
using mtx::stm::StmBackend;

constexpr std::int64_t kKeyRange = 128;

// Keeps every backend/container alive for the whole benchmark run.
std::vector<std::unique_ptr<StmBackend>> g_stms;
std::vector<std::unique_ptr<TList<StmBackend>>> g_lists;
std::vector<std::unique_ptr<THash<StmBackend>>> g_maps;
std::vector<std::unique_ptr<Bank<StmBackend>>> g_banks;

void list_mixed(TList<StmBackend>* list, benchmark::State& state) {
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) * 7 + 3);
  for (auto _ : state) {
    const std::int64_t key = static_cast<std::int64_t>(rng.below(kKeyRange));
    switch (rng.below(10)) {
      case 0: list->insert(key); break;
      case 1: list->remove(key); break;
      default: benchmark::DoNotOptimize(list->contains(key));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void hash_mixed(THash<StmBackend>* map, benchmark::State& state) {
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) * 13 + 5);
  for (auto _ : state) {
    const std::int64_t key = static_cast<std::int64_t>(rng.below(kKeyRange));
    switch (rng.below(10)) {
      case 0: map->put(key, key); break;
      case 1: map->erase(key); break;
      default: {
        std::int64_t v;
        benchmark::DoNotOptimize(map->get(key, &v));
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void bank_transfers(Bank<StmBackend>* bank, benchmark::State& state) {
  mtx::Rng rng(static_cast<std::uint64_t>(state.thread_index()) * 31 + 7);
  for (auto _ : state) {
    const auto from = static_cast<std::size_t>(rng.below(bank->size()));
    const auto to =
        (from + 1 + static_cast<std::size_t>(rng.below(bank->size() - 1))) %
        bank->size();
    bank->transfer(from, to, 1);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : mtx::stm::backend_names()) {
    g_stms.push_back(mtx::stm::make_backend(name));
    StmBackend* stm = g_stms.back().get();

    g_lists.push_back(std::make_unique<TList<StmBackend>>(*stm));
    TList<StmBackend>* list = g_lists.back().get();
    for (std::int64_t k = 0; k < kKeyRange; k += 2) list->insert(k);
    benchmark::RegisterBenchmark(
        ("ListMixed/" + name).c_str(),
        [list](benchmark::State& st) { list_mixed(list, st); })
        ->ThreadRange(1, 8)
        ->UseRealTime();

    g_maps.push_back(std::make_unique<THash<StmBackend>>(*stm, 64));
    THash<StmBackend>* map = g_maps.back().get();
    for (std::int64_t k = 0; k < kKeyRange; k += 2) map->put(k, k);
    benchmark::RegisterBenchmark(
        ("HashMixed/" + name).c_str(),
        [map](benchmark::State& st) { hash_mixed(map, st); })
        ->ThreadRange(1, 8)
        ->UseRealTime();

    g_banks.push_back(std::make_unique<Bank<StmBackend>>(*stm, 256, 1000));
    Bank<StmBackend>* bank = g_banks.back().get();
    benchmark::RegisterBenchmark(
        ("BankTransfers/" + name).c_str(),
        [bank](benchmark::State& st) { bank_transfers(bank, st); })
        ->ThreadRange(1, 8)
        ->UseRealTime();
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
