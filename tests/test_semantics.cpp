// ltrf::Semantics: the deduplicated trace-set view of a program, and its
// canonical keys.
#include <gtest/gtest.h>

#include <set>

#include "ltrf/semantics.hpp"

namespace mtx::ltrf {
namespace {

using lit::at;
using lit::atomic;
using lit::Program;
using lit::read;
using lit::write;
using model::ModelConfig;
using model::Trace;

Program tiny() {
  Program p;
  p.num_locs = 1;
  p.add_thread({write(at(0), 1)});
  p.add_thread({atomic({read(0, at(0))})});
  return p;
}

TEST(Semantics, TracesAreDeduplicated) {
  Semantics sem(tiny(), ModelConfig::programmer());
  const auto& traces = sem.traces();
  std::set<std::string> keys;
  for (const Trace& t : traces) EXPECT_TRUE(keys.insert(Semantics::key(t)).second);
  EXPECT_GT(traces.size(), 3u);
}

TEST(Semantics, TracesAreConsistentAndPrefixClosed) {
  Semantics sem(tiny(), ModelConfig::programmer());
  std::set<std::string> keys;
  for (const Trace& t : sem.traces()) keys.insert(Semantics::key(t));
  for (const Trace& t : sem.traces()) {
    EXPECT_TRUE(model::consistent(t, ModelConfig::programmer()));
    if (t.size() <= 3) continue;  // init only
    std::vector<bool> keep(t.size(), true);
    keep[t.size() - 1] = false;
    EXPECT_TRUE(keys.count(Semantics::key(t.subsequence(keep))));
  }
}

TEST(Semantics, KeyDistinguishesValuesAndTimestamps) {
  Trace a = Trace::with_init(1);
  a.append(model::make_write(0, 0, 1, Rational(1)));
  Trace b = Trace::with_init(1);
  b.append(model::make_write(0, 0, 2, Rational(1)));
  Trace c = Trace::with_init(1);
  c.append(model::make_write(0, 0, 1, Rational(2)));
  EXPECT_NE(Semantics::key(a), Semantics::key(b));
  EXPECT_NE(Semantics::key(a), Semantics::key(c));
  EXPECT_EQ(Semantics::key(a), Semantics::key(a));
}

TEST(Semantics, StabilityQueriesDelegate) {
  Semantics sem(tiny(), ModelConfig::programmer());
  const Trace init_only = Trace::with_init(1);
  // Only the plain writer can race; init alone is not stable for {x}
  // because the plain write and the transactional read can still race?
  // They cannot: write vs transactional read ordered? No -- plain write vs
  // txn read DO conflict; the read from init is unordered with the write.
  // Stability quantifies L-sequential extensions: extending with Wx1 then
  // the txn read of x=1 (sequential) gives no race against init actions
  // (init hb everything), and races wholly inside tau do not count.
  EXPECT_TRUE(sem.is_L_stable(init_only, model::loc_set({0}, 1)));
}

}  // namespace
}  // namespace mtx::ltrf
