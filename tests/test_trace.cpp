// Trace structure: membership (tx~), resolution states, permutation,
// subsequence, erasures, final values.
#include <gtest/gtest.h>

#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::Kind;
using model::TxnState;

TEST(Trace, WithInitShape) {
  const Trace t = Trace::with_init(3);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_TRUE(t[0].is_begin());
  EXPECT_EQ(t[0].thread, model::kInitThread);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(t[i].is_write());
    EXPECT_EQ(t[i].value, 0);
    EXPECT_EQ(t[i].ts, Rational(0));
  }
  EXPECT_TRUE(t[4].is_commit());
  EXPECT_EQ(t.num_locs(), 3);
}

TEST(Trace, MembershipAndStates) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.begin(1).r(1, 0, 1, 1).abort(1);
  b.w(2, 0, 2, 2);  // plain
  const Trace& t = b.trace();

  // init txn: indices 0..2; thread0 txn: 3..5; thread1: 6..8; plain: 9.
  EXPECT_TRUE(t.transactional(4));
  EXPECT_EQ(t.txn_of(4), 3);
  EXPECT_EQ(t.txn_of(5), 3);  // commit belongs to its txn
  EXPECT_EQ(t.txn_state(3), TxnState::Committed);
  EXPECT_EQ(t.txn_state(6), TxnState::Aborted);
  EXPECT_TRUE(t.aborted(7));
  EXPECT_TRUE(t.plain(9));
  EXPECT_TRUE(t.nonaborted(9));
  EXPECT_TRUE(t.same_txn(4, 5));
  EXPECT_FALSE(t.same_txn(4, 7));
  EXPECT_TRUE(t.same_txn(9, 9));  // plain relates to itself
}

TEST(Trace, LiveTransaction) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1);
  const Trace& t = b.trace();
  EXPECT_EQ(t.txn_state(3), TxnState::Live);
  EXPECT_TRUE(t.live(4));
  EXPECT_FALSE(t.aborted(4));
}

TEST(Trace, TxnMembersAndTouches) {
  TB b(2);
  b.begin(0).w(0, 0, 1, 1).r(0, 1, 0, 0).commit(0);
  const Trace& t = b.trace();
  const auto members = t.txn_members(4);
  EXPECT_EQ(members.size(), 4u);  // B, W, R, C
  EXPECT_TRUE(t.txn_touches(4, 0));
  EXPECT_TRUE(t.txn_touches(4, 1));
  EXPECT_EQ(t.resolution_of(4), 7);
}

// TxnLocCover is the O(1)-per-query snapshot the fence machinery (WF12,
// the happens-before seed) uses in place of txn_touches; the two must
// agree on every (transaction, location) pair, including the summary
// kAllLocs question and transactions with no accesses at all.
TEST(Trace, TxnLocCoverMatchesTxnTouches) {
  TB b(3);
  b.begin(0).w(0, 0, 1, 1).r(0, 1, 0, 0).commit(0);
  b.begin(1).r(1, 2, 0, 0).abort(1);
  b.begin(2).commit(2);  // empty transaction: touches nothing
  b.w(2, 0, 2, 2);       // plain write: no transaction row
  b.fence(1, 0);
  b.begin(1).w(1, 1, 3, 3);  // live transaction
  const Trace& t = b.trace();

  const model::TxnLocCover cover(t);
  for (std::size_t bi : t.begins()) {
    EXPECT_EQ(cover.accesses_any(bi), t.txn_accesses_any(bi)) << bi;
    EXPECT_EQ(cover.touches(bi, model::kAllLocs), t.txn_accesses_any(bi)) << bi;
    for (model::Loc x = 0; x < t.num_locs(); ++x)
      EXPECT_EQ(cover.touches(bi, x), t.txn_touches(bi, x))
          << "txn " << bi << " loc " << x;
  }
}

TEST(Trace, BeginsListsAllTransactions) {
  TB b(1);
  b.begin(0).commit(0).begin(1).abort(1);
  EXPECT_EQ(b.trace().begins().size(), 3u);  // init + two
}

TEST(Trace, PermutedPreservesNamesAndPeers) {
  TB b(1);
  b.w(0, 0, 1, 1).w(1, 0, 2, 2);
  const Trace& t = b.trace();
  std::vector<std::size_t> order = {0, 1, 2, 4, 3};  // swap the two writes
  const Trace p = t.permuted(order);
  EXPECT_EQ(p.size(), t.size());
  EXPECT_EQ(p[3].name, t[4].name);
  EXPECT_EQ(p[4].name, t[3].name);
  // Structure recomputed: init commit still resolves init begin.
  EXPECT_EQ(p.txn_state(0), TxnState::Committed);
}

TEST(Trace, SubsequenceKeepsStructure) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0).w(1, 0, 2, 2);
  const Trace& t = b.trace();
  std::vector<bool> keep(t.size(), true);
  keep[t.size() - 1] = false;  // drop the plain write
  const Trace s = t.subsequence(keep);
  EXPECT_EQ(s.size(), t.size() - 1);
  EXPECT_EQ(s.txn_state(3), TxnState::Committed);
}

TEST(Trace, WithoutAbortedErasesWholeTxn) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).abort(0).w(1, 0, 2, 2);
  const Trace erased = b.trace().without_aborted();
  // init (3 actions) + plain write
  EXPECT_EQ(erased.size(), 4u);
  for (std::size_t i = 0; i < erased.size(); ++i) EXPECT_FALSE(erased.aborted(i));
}

TEST(Trace, WithoutQFences) {
  TB b(1);
  b.fence(0, 0).w(0, 0, 1, 1).fence(1, 0);
  const Trace erased = b.trace().without_qfences();
  EXPECT_EQ(erased.size(), 4u);
  for (std::size_t i = 0; i < erased.size(); ++i)
    EXPECT_NE(erased[i].kind, Kind::QFence);
}

TEST(Trace, FinalValueIgnoresAbortedAndLive) {
  TB b(1);
  b.w(0, 0, 5, 1);                      // plain ts 1
  b.begin(1).w(1, 0, 7, 2).abort(1);    // aborted ts 2
  b.begin(2).w(2, 0, 9, 3);             // live ts 3
  const Trace& t = b.trace();
  EXPECT_EQ(t.final_value(0), 5);
  EXPECT_EQ(t.max_write_ts(0), Rational(3));  // live counts as nonaborted
}

TEST(Trace, FinalValuePicksMaxTimestampNotIndex) {
  TB b(1);
  b.w(0, 0, 5, 2).w(1, 0, 9, 1);  // later index, earlier ts
  EXPECT_EQ(b.trace().final_value(0), 5);
}

TEST(Trace, IndexOfName) {
  TB b(1);
  b.w(0, 0, 1, 1);
  const Trace& t = b.trace();
  EXPECT_EQ(t.index_of_name(t[3].name), 3);
  EXPECT_EQ(t.index_of_name(424242), -1);
}

TEST(Action, Predicates) {
  const auto w = model::make_write(0, 1, 2, Rational(3));
  EXPECT_TRUE(w.is_write());
  EXPECT_TRUE(w.is_memory_access());
  EXPECT_FALSE(w.is_boundary());
  EXPECT_TRUE(w.accesses(1));
  EXPECT_FALSE(w.accesses(0));
  const auto q = model::make_qfence(0, 1);
  EXPECT_FALSE(q.is_memory_access());
  EXPECT_FALSE(q.accesses(1));  // fences name but do not access x
  const auto c = model::make_commit(0, 7);
  EXPECT_TRUE(c.is_resolution());
  EXPECT_TRUE(c.is_boundary());
  EXPECT_EQ(c.peer, 7);
}

TEST(Action, StrIsInformative) {
  const auto w = model::make_write(2, 1, 5, Rational(3, 2), 9);
  const std::string s = w.str();
  EXPECT_NE(s.find("W"), std::string::npos);
  EXPECT_NE(s.find("3/2"), std::string::npos);
  EXPECT_NE(s.find("t2"), std::string::npos);
}

TEST(Trace, StrListsTransactions) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  const std::string s = b.trace().str();
  EXPECT_NE(s.find("committed"), std::string::npos);
}

}  // namespace
}  // namespace mtx::test
