// The serving front end: wire-codec round-trips and rejection paths, the
// per-connection transaction batcher's determinism pin (batched and
// unbatched pipelines must produce identical responses and final store
// state on every registered backend), and — the concurrency half — a real
// loopback server driven by the open-loop load generator with streaming
// conformance judging the served traffic.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "kv/kvstore.hpp"
#include "kv/workload.hpp"
#include "net/batch.hpp"
#include "net/loadgen.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"

namespace {

using namespace mtx;

// ---------------------------------------------------------------------------
// Codec round-trips.

net::Request roundtrip_request(const net::Request& in) {
  std::vector<std::uint8_t> buf;
  net::encode_request(in, buf);
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_request(buf.data(), buf.size(), &out, &consumed),
            net::Decode::ok);
  EXPECT_EQ(consumed, buf.size());
  return out;
}

net::Response roundtrip_response(const net::Response& in) {
  std::vector<std::uint8_t> buf;
  net::encode_response(in, buf);
  net::Response out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_response(buf.data(), buf.size(), &out, &consumed),
            net::Decode::ok);
  EXPECT_EQ(consumed, buf.size());
  return out;
}

TEST(NetCodec, RequestRoundTripEveryOpcode) {
  for (const net::OpCode op :
       {net::OpCode::get, net::OpCode::put, net::OpCode::insert,
        net::OpCode::scan, net::OpCode::rmw, net::OpCode::snap_read,
        net::OpCode::fence}) {
    net::Request in;
    in.op = op;
    in.key = -7'000'000'123LL;  // sign must survive the i64 encoding
    in.arg = kv::value_of(in.key, 42);
    in.shard = 3;
    const net::Request out = roundtrip_request(in);
    EXPECT_EQ(out.op, op);
    switch (op) {
      case net::OpCode::get:
      case net::OpCode::snap_read:
        EXPECT_EQ(out.key, in.key);
        break;
      case net::OpCode::put:
      case net::OpCode::insert:
      case net::OpCode::rmw:
        EXPECT_EQ(out.key, in.key);
        EXPECT_EQ(out.arg, in.arg);
        break;
      case net::OpCode::scan:
        EXPECT_EQ(out.shard, in.shard);
        break;
      default:
        break;  // fence carries no payload
    }
  }
}

TEST(NetCodec, ResponseRoundTripEveryOpcode) {
  for (const net::OpCode op :
       {net::OpCode::get, net::OpCode::put, net::OpCode::insert,
        net::OpCode::scan, net::OpCode::rmw, net::OpCode::snap_read,
        net::OpCode::fence}) {
    net::Response in;
    in.op = op;
    in.status = net::Status::ok;
    in.value = kv::value_of(9, 99);
    in.count = 17;
    in.flag = 1;
    const net::Response out = roundtrip_response(in);
    EXPECT_EQ(out.op, op);
    EXPECT_EQ(out.status, net::Status::ok);
    switch (op) {
      case net::OpCode::get:
      case net::OpCode::rmw:
      case net::OpCode::snap_read:
        EXPECT_EQ(out.value, in.value);
        break;
      case net::OpCode::put:
      case net::OpCode::insert:
        EXPECT_EQ(out.flag, in.flag);
        break;
      case net::OpCode::scan:
        EXPECT_EQ(out.count, in.count);
        EXPECT_EQ(out.value, in.value);
        EXPECT_EQ(out.flag, in.flag);
        break;
      default:
        break;
    }
  }
}

TEST(NetCodec, NonOkResponsesCarryStatusButNoPayload) {
  net::Response in;
  in.op = net::OpCode::get;
  in.status = net::Status::not_found;
  in.value = 12345;  // must NOT travel: not_found bodies are empty
  const net::Response out = roundtrip_response(in);
  EXPECT_EQ(out.status, net::Status::not_found);
  EXPECT_EQ(out.value, 0);
}

TEST(NetCodec, HelloRoundTripsAndMismatchCarriesServerVersion) {
  net::Request in;
  in.op = net::OpCode::hello;
  in.major = net::kProtoMajor;
  in.minor = 3;
  in.features = net::kFeatBatching;
  const net::Request out = roundtrip_request(in);
  EXPECT_EQ(out.op, net::OpCode::hello);
  EXPECT_EQ(out.major, net::kProtoMajor);
  EXPECT_EQ(out.minor, 3);
  EXPECT_EQ(out.features, net::kFeatBatching);

  net::Response rok;
  rok.op = net::OpCode::hello;
  rok.status = net::Status::ok;
  rok.major = net::kProtoMajor;
  rok.minor = net::kProtoMinor;
  rok.features = net::kServerFeatures;
  const net::Response rout = roundtrip_response(rok);
  EXPECT_EQ(rout.major, net::kProtoMajor);
  EXPECT_EQ(rout.features, net::kServerFeatures);

  // The one exception to "non-ok responses carry no payload": a typed
  // version_mismatch rejection still tells the client the server's version.
  net::Response rbad = rok;
  rbad.status = net::Status::version_mismatch;
  const net::Response bout = roundtrip_response(rbad);
  EXPECT_EQ(bout.status, net::Status::version_mismatch);
  EXPECT_EQ(bout.major, net::kProtoMajor);
  EXPECT_EQ(bout.features, net::kServerFeatures);

  // And version_mismatch is hello-only on the wire: any other opcode
  // claiming it is a malformed frame.
  net::Response evil;
  evil.op = net::OpCode::get;
  evil.status = net::Status::version_mismatch;
  std::vector<std::uint8_t> buf;
  net::encode_response(evil, buf);
  net::Response decoded;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_response(buf.data(), buf.size(), &decoded, &consumed),
            net::Decode::bad_frame);
}

// ---------------------------------------------------------------------------
// Layered config: validation and the shard-ownership map.

TEST(NetConfig, ValidateRejectsInconsistentCombos) {
  net::ServerConfig cfg;
  EXPECT_TRUE(cfg.validate().empty());  // defaults are consistent

  cfg.reactors.count = 8;
  cfg.store.shards = 4;
  EXPECT_FALSE(cfg.validate().empty());  // a reactor with no shards

  cfg = net::ServerConfig{};
  cfg.reactors.count = 0;
  EXPECT_FALSE(cfg.validate().empty());

  cfg = net::ServerConfig{};
  cfg.stream.enabled = true;
  cfg.stream.checkers = 0;
  EXPECT_FALSE(cfg.validate().empty());  // nobody would judge segments

  cfg = net::ServerConfig{};
  cfg.reactors.snap_refresh_every = 64;
  cfg.store.snap_keys = 0;
  EXPECT_FALSE(cfg.validate().empty());  // refresh with nothing published
}

TEST(NetConfig, ServerConstructorThrowsOnInvalidConfig) {
  auto stm = stm::make_backend("sgl");
  net::ServerConfig cfg;
  cfg.reactors.count = 8;
  cfg.store.shards = 4;
  EXPECT_THROW(net::Server(*stm, cfg), std::invalid_argument);
}

TEST(NetConfig, OwnershipPoliciesPartitionTheShards) {
  for (const net::ShardPolicy policy :
       {net::ShardPolicy::modulo, net::ShardPolicy::block}) {
    net::ServerConfig cfg;
    cfg.store.shards = 10;
    cfg.reactors.count = 3;
    cfg.reactors.policy = policy;
    std::vector<std::size_t> per_reactor(3, 0);
    for (std::size_t s = 0; s < 10; ++s) {
      const std::size_t owner = cfg.owner_of(s);
      ASSERT_LT(owner, 3u);
      ++per_reactor[owner];
      if (policy == net::ShardPolicy::modulo) {
        EXPECT_EQ(owner, s % 3);
      }
    }
    // Disjoint by construction (one owner per shard); exhaustive: every
    // reactor got at least one shard at this geometry.
    for (const std::size_t n : per_reactor) EXPECT_GE(n, 1u);
  }
}

TEST(NetCodec, BatchFrameRoundTrip) {
  net::Request in;
  in.op = net::OpCode::batch;
  for (int i = 0; i < 5; ++i) {
    net::Request sub;
    sub.op = i % 2 ? net::OpCode::put : net::OpCode::get;
    sub.key = i * 11;
    sub.arg = kv::value_of(sub.key, i);
    in.sub.push_back(sub);
  }
  const net::Request out = roundtrip_request(in);
  ASSERT_EQ(out.sub.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out.sub[static_cast<std::size_t>(i)].op, in.sub[static_cast<std::size_t>(i)].op);
    EXPECT_EQ(out.sub[static_cast<std::size_t>(i)].key, i * 11);
  }

  net::Response rin;
  rin.op = net::OpCode::batch;
  rin.status = net::Status::ok;
  for (int i = 0; i < 3; ++i) {
    net::Response sub;
    sub.op = net::OpCode::get;
    sub.status = net::Status::ok;
    sub.value = kv::value_of(i, i);
    rin.sub.push_back(sub);
  }
  const net::Response rout = roundtrip_response(rin);
  ASSERT_EQ(rout.sub.size(), 3u);
  EXPECT_EQ(rout.sub[2].value, kv::value_of(2, 2));
}

TEST(NetCodec, EveryTruncationOfAValidFrameNeedsMore) {
  net::Request in;
  in.op = net::OpCode::put;
  in.key = 5;
  in.arg = kv::value_of(5, 1);
  std::vector<std::uint8_t> buf;
  net::encode_request(in, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    net::Request out;
    std::size_t consumed = 0;
    EXPECT_EQ(net::decode_request(buf.data(), len, &out, &consumed),
              net::Decode::need_more)
        << "prefix length " << len;
  }
}

TEST(NetCodec, RejectsOversizedZeroLengthUnknownAndTrailing) {
  net::Request out;
  std::size_t consumed = 0;

  // Claimed body over kMaxFrame: reject immediately, do not buffer.
  std::vector<std::uint8_t> big = {0xff, 0xff, 0xff, 0x00};  // 16 MiB - ish
  EXPECT_EQ(net::decode_request(big.data(), big.size(), &out, &consumed),
            net::Decode::bad_frame);

  // Zero-length body: no opcode to read.
  std::vector<std::uint8_t> zero = {0, 0, 0, 0};
  EXPECT_EQ(net::decode_request(zero.data(), zero.size(), &out, &consumed),
            net::Decode::bad_frame);

  // Unknown opcode.
  std::vector<std::uint8_t> unk = {1, 0, 0, 0, 0x7f};
  EXPECT_EQ(net::decode_request(unk.data(), unk.size(), &out, &consumed),
            net::Decode::bad_frame);

  // Trailing bytes inside the frame body.
  net::Request fence;
  fence.op = net::OpCode::fence;
  std::vector<std::uint8_t> buf;
  net::encode_request(fence, buf);
  buf.push_back(0xaa);      // junk byte inside the declared body...
  buf[0] += 1;              // ...accounted for by the length prefix
  EXPECT_EQ(net::decode_request(buf.data(), buf.size(), &out, &consumed),
            net::Decode::bad_frame);
}

TEST(NetCodec, RejectsNestedBatchAndNonBatchableSubOps) {
  net::Request out;
  std::size_t consumed = 0;

  net::Request nested;
  nested.op = net::OpCode::batch;
  net::Request inner;
  inner.op = net::OpCode::batch;
  nested.sub.push_back(inner);
  std::vector<std::uint8_t> buf;
  net::encode_request(nested, buf);
  EXPECT_EQ(net::decode_request(buf.data(), buf.size(), &out, &consumed),
            net::Decode::bad_frame);

  net::Request barrier_sub;
  barrier_sub.op = net::OpCode::batch;
  net::Request scan;
  scan.op = net::OpCode::scan;
  barrier_sub.sub.push_back(scan);
  buf.clear();
  net::encode_request(barrier_sub, buf);
  EXPECT_EQ(net::decode_request(buf.data(), buf.size(), &out, &consumed),
            net::Decode::bad_frame);
}

TEST(NetCodec, PipelinedFramesDecodeBackToBack) {
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 4; ++i) {
    net::Request r;
    r.op = net::OpCode::get;
    r.key = i;
    net::encode_request(r, buf);
  }
  std::size_t off = 0;
  for (int i = 0; i < 4; ++i) {
    net::Request out;
    std::size_t consumed = 0;
    ASSERT_EQ(net::decode_request(buf.data() + off, buf.size() - off, &out,
                                  &consumed),
              net::Decode::ok);
    EXPECT_EQ(out.key, i);
    off += consumed;
  }
  EXPECT_EQ(off, buf.size());
}

// ---------------------------------------------------------------------------
// Batcher determinism pin: a pipelined request stream must produce the same
// responses and the same final store state whether the executor coalesces
// runs (max_batch = 16) or degenerates to one transaction per op
// (max_batch = 1), on every registered backend.

std::vector<net::Request> pinned_stream(std::size_t n) {
  std::vector<net::Request> reqs;
  Rng rng(0xfeedULL);
  for (std::size_t i = 0; i < n; ++i) {
    net::Request r;
    switch (rng.below(10)) {
      case 0: case 1: case 2:
        r.op = net::OpCode::get;
        r.key = static_cast<std::int64_t>(rng.below(64));
        break;
      case 3: case 4: case 5:
        r.op = net::OpCode::put;
        r.key = static_cast<std::int64_t>(rng.below(64));
        r.arg = kv::value_of(r.key, static_cast<std::int64_t>(i));
        break;
      case 6:
        r.op = net::OpCode::rmw;
        r.key = static_cast<std::int64_t>(rng.below(64));
        r.arg = 3;
        break;
      case 7:
        r.op = net::OpCode::snap_read;
        r.key = static_cast<std::int64_t>(rng.below(8));
        break;
      case 8:
        r.op = net::OpCode::scan;
        r.shard = static_cast<std::uint32_t>(rng.below(4));
        break;
      default:
        r.op = net::OpCode::batch;
        for (int j = 0; j < 4; ++j) {
          net::Request sub;
          sub.op = j % 2 ? net::OpCode::put : net::OpCode::get;
          sub.key = static_cast<std::int64_t>(rng.below(64));
          sub.arg = kv::value_of(sub.key, static_cast<std::int64_t>(j));
          r.sub.push_back(sub);
        }
        break;
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

struct PipelineRun {
  std::vector<net::Response> responses;
  std::map<std::int64_t, std::int64_t> final_state;
  net::BatchExecutor::Stats stats;
};

PipelineRun run_pipeline(const std::string& backend,
                         const std::vector<net::Request>& reqs,
                         std::size_t max_batch) {
  auto stm = stm::make_backend(backend);
  kv::KvStore::Options sopt;
  sopt.shards = 4;
  sopt.expected_keys = 128;
  sopt.snap_slots = 8;
  kv::KvStore store(*stm, sopt);
  for (std::int64_t k = 0; k < 64; ++k) store.put(k, kv::value_of(k, 0));
  std::vector<std::int64_t> snap;
  for (std::int64_t k = 0; k < 8; ++k) snap.push_back(k);
  store.publish_snapshot(snap);

  PipelineRun run;
  net::BatchExecutor exec(store, max_batch);
  // Chunks of 5 emulate socket drains; drain (rule 4) between chunks.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    exec.submit(reqs[i], run.responses);
    if (i % 5 == 4) exec.drain(run.responses);
  }
  exec.drain(run.responses);
  run.stats = exec.stats();
  for (std::int64_t k = 0; k < 64; ++k) {
    std::int64_t v = 0;
    if (store.get(k, &v)) run.final_state[k] = v;
  }
  return run;
}

bool responses_equal(const net::Response& a, const net::Response& b) {
  if (a.op != b.op || a.status != b.status || a.value != b.value ||
      a.count != b.count || a.flag != b.flag || a.sub.size() != b.sub.size())
    return false;
  for (std::size_t i = 0; i < a.sub.size(); ++i)
    if (!responses_equal(a.sub[i], b.sub[i])) return false;
  return true;
}

TEST(NetBatch, BatchedEqualsUnbatchedOnEveryBackend) {
  const std::vector<net::Request> reqs = pinned_stream(120);
  for (const std::string& backend : stm::backend_names()) {
    const PipelineRun batched = run_pipeline(backend, reqs, 16);
    const PipelineRun unbatched = run_pipeline(backend, reqs, 1);

    ASSERT_EQ(batched.responses.size(), unbatched.responses.size()) << backend;
    for (std::size_t i = 0; i < batched.responses.size(); ++i)
      EXPECT_TRUE(responses_equal(batched.responses[i], unbatched.responses[i]))
          << backend << " response " << i;
    EXPECT_EQ(batched.final_state, unbatched.final_state) << backend;

    // Same ops executed; batching must actually coalesce (fewer
    // transactions than the unbatched run) for this stream.
    EXPECT_EQ(batched.stats.ops, unbatched.stats.ops) << backend;
    EXPECT_LT(batched.stats.transactions, unbatched.stats.transactions)
        << backend;
  }
}

TEST(NetBatch, GetsJoinTheBatchAndSeeEarlierPuts) {
  auto stm = stm::make_backend("tl2");
  kv::KvStore::Options sopt;
  sopt.shards = 1;  // one shard: nothing can flush the run early
  sopt.expected_keys = 32;
  kv::KvStore store(*stm, sopt);
  store.put(1, kv::value_of(1, 0));

  net::BatchExecutor exec(store, 16);
  std::vector<net::Response> out;
  net::Request put;
  put.op = net::OpCode::put;
  put.key = 1;
  put.arg = kv::value_of(1, 77);
  exec.submit(put, out);
  net::Request get;
  get.op = net::OpCode::get;
  get.key = 1;
  exec.submit(get, out);
  EXPECT_TRUE(out.empty());  // both pending: same shard, under max_batch
  exec.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].value, kv::value_of(1, 77));  // read-your-writes
  EXPECT_EQ(exec.stats().transactions, 1u);      // one txn for both ops
}

TEST(NetBatch, ReadBarrierOpsFlushTheRunFirst) {
  auto stm = stm::make_backend("tl2");
  kv::KvStore::Options sopt;
  sopt.shards = 2;
  sopt.expected_keys = 64;
  sopt.snap_slots = 4;
  kv::KvStore store(*stm, sopt);
  for (std::int64_t k = 0; k < 16; ++k) store.put(k, kv::value_of(k, 0));
  store.publish_snapshot({0, 1, 2, 3});

  net::BatchExecutor exec(store, 16);
  std::vector<net::Response> out;
  net::Request put;
  put.op = net::OpCode::put;
  put.key = 0;
  put.arg = kv::value_of(0, 5);
  exec.submit(put, out);
  ASSERT_EQ(exec.pending(), 1u);

  net::Request scan;
  scan.op = net::OpCode::scan;
  scan.shard = 0;
  exec.submit(scan, out);
  EXPECT_EQ(exec.pending(), 0u);  // rule 3: the scan flushed the run
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].op, net::OpCode::put);   // in submission order
  EXPECT_EQ(out[1].op, net::OpCode::scan);
  EXPECT_EQ(exec.stats().flushes_barrier, 1u);
}

// ---------------------------------------------------------------------------
// Loopback plumbing: a minimal blocking wire client for pinned-byte tests.

struct WireClient {
  int fd = -1;
  std::vector<std::uint8_t> buf;
  std::size_t off = 0;

  bool connect_to(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    timeval tv{};
    tv.tv_sec = 10;  // a hung server fails the test instead of the run
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool send_all(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Decode exactly `want` responses; optionally append their raw frame
  // bytes to `raw` (the byte-identity pins compare those directly).
  bool read_responses(std::size_t want, std::vector<net::Response>* out,
                      std::vector<std::uint8_t>* raw = nullptr) {
    std::size_t got = 0;
    while (got < want) {
      net::Response resp;
      std::size_t consumed = 0;
      const net::Decode d = net::decode_response(
          buf.data() + off, buf.size() - off, &resp, &consumed);
      if (d == net::Decode::ok) {
        if (raw != nullptr) {
          raw->insert(raw->end(),
                      buf.begin() + static_cast<std::ptrdiff_t>(off),
                      buf.begin() + static_cast<std::ptrdiff_t>(off + consumed));
        }
        off += consumed;
        out->push_back(std::move(resp));
        ++got;
        continue;
      }
      if (d == net::Decode::bad_frame) return false;
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;  // EOF or timeout mid-stream
      buf.insert(buf.end(), chunk, chunk + n);
    }
    return true;
  }

  bool read_eof() {
    std::uint8_t b = 0;
    return ::recv(fd, &b, 1, 0) == 0;
  }

  ~WireClient() {
    if (fd >= 0) ::close(fd);
  }
};

// Serve the pinned request stream over a real socket with `reactors` event
// loops and return everything a determinism pin could want: the decoded
// responses, the raw response bytes, the final store state as observed via
// trailing GETs, and the server's stats.
struct ServeOutcome {
  std::vector<net::Response> resps;
  std::vector<std::uint8_t> raw;
  std::map<std::int64_t, std::int64_t> final_state;
  net::ServerStats stats;
};

ServeOutcome serve_pinned(const std::string& backend, std::size_t reactors,
                          bool stream) {
  auto stm = stm::make_backend(backend);
  net::ServerConfig cfg;
  cfg.store.shards = 4;
  cfg.store.preload_keys = 64;
  cfg.store.snap_keys = 8;
  cfg.reactors.count = reactors;
  cfg.reactors.max_batch = 8;
  cfg.stream.enabled = stream;
  cfg.stream.epoch_ops = 64;
  net::Server server(*stm, cfg);
  std::thread th([&] { server.run(); });

  ServeOutcome o;
  {
    WireClient c;
    EXPECT_TRUE(c.connect_to(server.port()));
    const std::vector<net::Request> reqs = pinned_stream(120);
    std::vector<std::uint8_t> out;
    for (const net::Request& req : reqs) net::encode_request(req, out);
    EXPECT_TRUE(c.send_all(out));
    EXPECT_TRUE(c.read_responses(reqs.size(), &o.resps, &o.raw));

    out.clear();
    for (std::int64_t k = 0; k < 64; ++k) {
      net::Request g;
      g.op = net::OpCode::get;
      g.key = k;
      net::encode_request(g, out);
    }
    EXPECT_TRUE(c.send_all(out));
    std::vector<net::Response> gets;
    EXPECT_TRUE(c.read_responses(64, &gets));
    for (std::size_t k = 0; k < gets.size(); ++k) {
      if (gets[k].status == net::Status::ok)
        o.final_state[static_cast<std::int64_t>(k)] = gets[k].value;
    }
  }
  server.stop();
  th.join();
  o.stats = server.stats();
  return o;
}

// ---------------------------------------------------------------------------
// Multi-reactor pins: N event loops must be observationally identical to
// one — same response bytes, same final state, same streaming verdicts.

TEST(NetServer, MultiReactorMatchesSingleReactorOnEveryBackend) {
  for (const std::string& backend : stm::backend_names()) {
    SCOPED_TRACE(backend);
    const ServeOutcome one = serve_pinned(backend, 1, false);
    EXPECT_EQ(one.stats.handoffs, 0u);  // sole reactor owns every shard
    for (const std::size_t nr : {std::size_t{2}, std::size_t{4}}) {
      SCOPED_TRACE(nr);
      const ServeOutcome multi = serve_pinned(backend, nr, false);
      EXPECT_EQ(multi.stats.reactors, nr);
      EXPECT_GT(multi.stats.handoffs, 0u);  // the stream straddles shards
      EXPECT_EQ(multi.raw, one.raw);        // byte-identical responses
      EXPECT_EQ(multi.final_state, one.final_state);
      EXPECT_EQ(multi.stats.bad_frames, 0u);
      EXPECT_EQ(multi.stats.ring_dropped, 0u);
      EXPECT_FALSE(multi.stats.overflow);
    }
  }
}

TEST(NetServer, PerReactorStreamVerdictsMatchSingleReactor) {
  for (const std::string& backend : stm::backend_names()) {
    SCOPED_TRACE(backend);
    const ServeOutcome one = serve_pinned(backend, 1, true);
    ASSERT_EQ(one.stats.stream_verdicts.size(), 1u);
    EXPECT_EQ(one.stats.nonconformant, 0u);

    const ServeOutcome multi = serve_pinned(backend, 4, true);
    ASSERT_EQ(multi.stats.stream_verdicts.size(), 4u);
    EXPECT_EQ(multi.stats.nonconformant, 0u);
    for (const std::string& v : multi.stats.stream_verdicts) {
      EXPECT_EQ(v, one.stats.stream_verdicts[0]);  // byte-identical verdicts
    }
    EXPECT_EQ(multi.raw, one.raw);  // streaming must not perturb serving
  }
}

TEST(NetServer, CrossShardHandoffKeepsSubmissionOrderAndReadYourWrites) {
  auto stm = stm::make_backend("tl2");
  net::ServerConfig cfg;
  cfg.store.shards = 4;
  cfg.store.preload_keys = 64;
  cfg.store.snap_keys = 4;
  cfg.reactors.count = 2;  // modulo: reactor 0 owns {0,2}, reactor 1 {1,3}
  cfg.reactors.max_batch = 4;
  net::Server server(*stm, cfg);
  std::thread th([&] { server.run(); });

  {
    WireClient c;
    ASSERT_TRUE(c.connect_to(server.port()));
    std::vector<std::uint8_t> out;
    std::size_t expect = 0;
    // Strict shard alternation: every consecutive pair crosses an
    // ownership boundary, so half the runs travel the mailbox path.
    for (std::int64_t k = 0; k < 40; ++k) {
      net::Request put;
      put.op = net::OpCode::put;
      put.key = k;
      put.arg = kv::value_of(k, 1000 + k);
      net::encode_request(put, out);
      net::Request get;
      get.op = net::OpCode::get;
      get.key = k;
      net::encode_request(get, out);
      expect += 2;
    }
    // A batch frame spanning all four shards: its sub-responses gather
    // from both reactors yet release as one in-order frame.
    net::Request batch;
    batch.op = net::OpCode::batch;
    for (std::int64_t k = 0; k < 4; ++k) {
      net::Request sub;
      sub.op = net::OpCode::get;
      sub.key = k;
      batch.sub.push_back(sub);
    }
    net::encode_request(batch, out);
    ++expect;
    net::Request fence;
    fence.op = net::OpCode::fence;
    net::encode_request(fence, out);
    ++expect;

    ASSERT_TRUE(c.send_all(out));
    std::vector<net::Response> resps;
    ASSERT_TRUE(c.read_responses(expect, &resps));

    for (std::size_t k = 0; k < 40; ++k) {
      SCOPED_TRACE(k);
      const net::Response& p = resps[2 * k];
      const net::Response& g = resps[2 * k + 1];
      EXPECT_EQ(p.op, net::OpCode::put);  // submission order held
      EXPECT_EQ(p.status, net::Status::ok);
      EXPECT_EQ(g.op, net::OpCode::get);
      EXPECT_EQ(g.status, net::Status::ok);
      // Read-your-writes across the handoff path.
      EXPECT_EQ(g.value,
                kv::value_of(static_cast<std::int64_t>(k),
                             1000 + static_cast<std::int64_t>(k)));
    }
    const net::Response& b = resps[expect - 2];
    ASSERT_EQ(b.op, net::OpCode::batch);
    ASSERT_EQ(b.sub.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(b.sub[k].status, net::Status::ok);
      EXPECT_EQ(b.sub[k].value,
                kv::value_of(static_cast<std::int64_t>(k),
                             1000 + static_cast<std::int64_t>(k)));
    }
    EXPECT_EQ(resps.back().op, net::OpCode::fence);
    EXPECT_EQ(resps.back().status, net::Status::ok);
  }

  server.stop();
  th.join();
  EXPECT_GT(server.stats().handoffs, 0u);
  EXPECT_EQ(server.stats().bad_frames, 0u);
}

// ---------------------------------------------------------------------------
// HELLO handshake: negotiation, typed rejection, and the require-hello gate.

TEST(NetServer, HelloNegotiatesAndMismatchRejectsTyped) {
  auto stm = stm::make_backend("sgl");
  net::ServerConfig cfg;
  cfg.store.shards = 2;
  cfg.store.preload_keys = 16;
  cfg.store.snap_keys = 4;
  net::Server server(*stm, cfg);
  std::thread th([&] { server.run(); });

  {
    WireClient c;  // well-versioned client: negotiated, then served
    ASSERT_TRUE(c.connect_to(server.port()));
    std::vector<std::uint8_t> out;
    net::Request h;
    h.op = net::OpCode::hello;
    h.major = net::kProtoMajor;
    h.minor = net::kProtoMinor;
    h.features = net::kFeatBatching;
    net::encode_request(h, out);
    net::Request g;
    g.op = net::OpCode::get;
    g.key = 1;
    net::encode_request(g, out);
    ASSERT_TRUE(c.send_all(out));
    std::vector<net::Response> resps;
    ASSERT_TRUE(c.read_responses(2, &resps));
    EXPECT_EQ(resps[0].op, net::OpCode::hello);
    EXPECT_EQ(resps[0].status, net::Status::ok);
    EXPECT_EQ(resps[0].major, net::kProtoMajor);
    EXPECT_EQ(resps[0].minor, net::kProtoMinor);
    EXPECT_EQ(resps[0].features, net::kServerFeatures);
    EXPECT_EQ(resps[1].op, net::OpCode::get);
    EXPECT_EQ(resps[1].status, net::Status::ok);
  }
  {
    WireClient c;  // wrong major: typed rejection, then the server hangs up
    ASSERT_TRUE(c.connect_to(server.port()));
    std::vector<std::uint8_t> out;
    net::Request h;
    h.op = net::OpCode::hello;
    h.major = net::kProtoMajor + 1;
    net::encode_request(h, out);
    net::Request g;  // pipelined behind the bad handshake: never answered
    g.op = net::OpCode::get;
    g.key = 1;
    net::encode_request(g, out);
    ASSERT_TRUE(c.send_all(out));
    std::vector<net::Response> resps;
    ASSERT_TRUE(c.read_responses(1, &resps));
    EXPECT_EQ(resps[0].op, net::OpCode::hello);
    EXPECT_EQ(resps[0].status, net::Status::version_mismatch);
    EXPECT_EQ(resps[0].major, net::kProtoMajor);  // carries the server version
    EXPECT_EQ(resps[0].features, net::kServerFeatures);
    EXPECT_TRUE(c.read_eof());
  }

  server.stop();
  th.join();
  EXPECT_EQ(server.stats().hellos, 1u);
  EXPECT_EQ(server.stats().hello_rejects, 1u);
  EXPECT_EQ(server.stats().bad_frames, 0u);
}

TEST(NetServer, RequireHelloGatesTheFirstFrame) {
  auto stm = stm::make_backend("sgl");
  net::ServerConfig cfg;
  cfg.store.shards = 2;
  cfg.store.preload_keys = 16;
  cfg.store.snap_keys = 4;
  cfg.listener.require_hello = true;
  net::Server server(*stm, cfg);
  std::thread th([&] { server.run(); });

  {
    WireClient c;  // unannounced first frame: dropped as a violation
    ASSERT_TRUE(c.connect_to(server.port()));
    std::vector<std::uint8_t> out;
    net::Request g;
    g.op = net::OpCode::get;
    g.key = 1;
    net::encode_request(g, out);
    ASSERT_TRUE(c.send_all(out));
    EXPECT_TRUE(c.read_eof());
  }
  {
    WireClient c;  // handshake first: served normally
    ASSERT_TRUE(c.connect_to(server.port()));
    std::vector<std::uint8_t> out;
    net::Request h;
    h.op = net::OpCode::hello;
    h.major = net::kProtoMajor;
    h.minor = net::kProtoMinor;
    net::encode_request(h, out);
    net::Request g;
    g.op = net::OpCode::get;
    g.key = 1;
    net::encode_request(g, out);
    ASSERT_TRUE(c.send_all(out));
    std::vector<net::Response> resps;
    ASSERT_TRUE(c.read_responses(2, &resps));
    EXPECT_EQ(resps[0].status, net::Status::ok);
    EXPECT_EQ(resps[1].status, net::Status::ok);
  }

  server.stop();
  th.join();
  EXPECT_EQ(server.stats().bad_frames, 1u);
  EXPECT_EQ(server.stats().hellos, 1u);
}

// ---------------------------------------------------------------------------
// Loopback smoke: a real server and the open-loop generator, streaming
// conformance judging the served traffic (concurrency + oracle surface).

TEST(NetServer, LoopbackServeWithStreamingConformance) {
  auto stm = stm::make_backend("tl2");
  net::ServerConfig cfg;
  cfg.store.shards = 4;
  cfg.store.preload_keys = 256;
  cfg.store.snap_keys = 8;
  cfg.reactors.count = 2;
  cfg.reactors.max_batch = 8;
  cfg.reactors.snap_refresh_every = 128;
  cfg.stream.enabled = true;
  cfg.stream.epoch_ops = 128;
  net::Server server(*stm, cfg);
  std::thread server_thread([&] { server.run(); });

  net::LoadgenOptions lg;
  lg.port = server.port();
  lg.connections = 2;
  lg.rate = 4000;
  lg.ops_per_conn = 200;
  lg.store = cfg.store;
  lg.seed = 3;
  const net::LoadgenResult r = net::run_loadgen(lg);
  server.stop();
  server_thread.join();
  const net::ServerStats& ss = server.stats();

  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.form_violations, 0u);
  EXPECT_EQ(r.completed, r.intended);
  EXPECT_EQ(ss.bad_frames, 0u);
  // The generator opens each connection with a HELLO, which the server
  // counts as a frame but the workload tallies exclude.
  EXPECT_EQ(ss.frames, r.sent + lg.connections);
  EXPECT_EQ(ss.hellos, lg.connections);
  EXPECT_EQ(ss.hello_rejects, 0u);
  EXPECT_TRUE(ss.streamed);
  EXPECT_GT(ss.segments, 0u);
  EXPECT_EQ(ss.nonconformant, 0u);
  EXPECT_EQ(ss.ring_dropped, 0u);
  EXPECT_FALSE(ss.overflow);
}

TEST(NetServer, BadFrameDropsTheConnectionAndCounts) {
  auto stm = stm::make_backend("sgl");
  net::ServerConfig cfg;
  cfg.store.shards = 2;
  cfg.store.preload_keys = 32;
  cfg.store.snap_keys = 4;
  net::Server server(*stm, cfg);
  std::thread server_thread([&] { server.run(); });

  // Raw socket: claim a body far over kMaxFrame.  The server must count
  // the violation and close the connection (we observe EOF).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::uint8_t evil[4] = {0xff, 0xff, 0xff, 0x00};
  ASSERT_EQ(::send(fd, evil, sizeof(evil), 0), 4);
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // orderly close from the server
  ::close(fd);

  server.stop();
  server_thread.join();
  EXPECT_EQ(server.stats().bad_frames, 1u);
  EXPECT_EQ(server.stats().accepted, 1u);
  EXPECT_EQ(server.stats().closed, 1u);
}

}  // namespace
