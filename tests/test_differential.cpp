// Differential model testing over randomly generated programs:
//
//   - model-strength monotonicity: every outcome allowed by a stronger
//     model (more HB rules / more anti axioms) is allowed by the weaker one:
//     outcomes(strongest) ⊆ outcomes(programmer) ⊆ outcomes(base);
//   - fence-free programs behave identically in the base and implementation
//     models (the fence machinery is inert without fences);
//   - executions produced by the graph enumerator replay as traces of the
//     DFS enumerator (the two semantics agree).
#include <gtest/gtest.h>

#include <set>

#include "litmus/graph_enum.hpp"
#include "litmus/random_program.hpp"
#include "litmus/trace_enum.hpp"

namespace mtx::lit {
namespace {

using model::ModelConfig;

std::set<Outcome> outcomes_of(const Program& p, const ModelConfig& cfg) {
  return enumerate_outcomes(p, cfg).outcomes();
}

bool subset(const std::set<Outcome>& a, const std::set<Outcome>& b) {
  for (const Outcome& o : a)
    if (!b.count(o)) return false;
  return true;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, StrengthMonotonicity) {
  Rng rng(GetParam());
  RandomProgramParams params;
  for (int i = 0; i < 6; ++i) {
    const Program p = random_program(rng, params);
    const auto base = outcomes_of(p, ModelConfig::base());
    const auto prog = outcomes_of(p, ModelConfig::programmer());
    const auto strong = outcomes_of(p, ModelConfig::strongest());
    EXPECT_TRUE(subset(strong, prog));
    EXPECT_TRUE(subset(prog, base));
    EXPECT_FALSE(base.empty());
  }
}

TEST_P(Differential, VariantsRefineBase) {
  Rng rng(GetParam() * 13 + 1);
  RandomProgramParams params;
  for (int i = 0; i < 3; ++i) {
    const Program p = random_program(rng, params);
    const auto base = outcomes_of(p, ModelConfig::base());
    for (const ModelConfig& v : ModelConfig::example_2_3_variants())
      EXPECT_TRUE(subset(outcomes_of(p, v), base)) << v.name;
  }
}

TEST_P(Differential, ImplementationEqualsBaseWithoutFences) {
  Rng rng(GetParam() * 101 + 7);
  RandomProgramParams params;
  for (int i = 0; i < 6; ++i) {
    const Program p = random_program(rng, params);  // generator emits no fences
    EXPECT_EQ(outcomes_of(p, ModelConfig::base()),
              outcomes_of(p, ModelConfig::implementation()));
  }
}

TEST_P(Differential, GraphExecutionsReplayInTraceEnum) {
  // Every consistent execution found by the graph enumerator corresponds to
  // a consistent trace of the DFS semantics: extending it must at least be
  // recognized (replay succeeds and the base trace is visited).
  Rng rng(GetParam() * 31 + 3);
  RandomProgramParams params;
  params.stmts_per_thread = 2;
  for (int i = 0; i < 3; ++i) {
    const Program p = random_program(rng, params);
    GraphEnum ge(p, ModelConfig::programmer());
    TraceEnum te(p, ModelConfig::programmer());
    std::size_t checked = 0;
    ge.for_each([&](const Execution& ex) {
      if (checked >= 5) return;  // keep DFS work bounded
      ++checked;
      bool visited = false;
      te.explore_from(ex.trace,
                      [&](const model::Trace&, const model::Analysis&,
                          std::size_t appended) {
                        if (appended == static_cast<std::size_t>(-1)) visited = true;
                        return TraceEnum::Visit::Prune;
                      });
      EXPECT_TRUE(visited) << p.name << "\n" << ex.trace.str();
    });
  }
}

TEST(RandomPrograms, GeneratorProducesVariety) {
  Rng rng(99);
  RandomProgramParams params;
  params.threads = 3;
  bool some_atomic = false, some_plain = false, some_branch = false,
       some_abort = false;
  for (int i = 0; i < 30; ++i) {
    const Program p = random_program(rng, params);
    ASSERT_EQ(p.threads.size(), 3u);
    for (const Block& b : p.threads)
      for (const Stmt& s : b) {
        if (s.kind == Stmt::Kind::Atomic) {
          some_atomic = true;
          for (const Stmt& inner : s.body) {
            some_branch |= inner.kind == Stmt::Kind::If;
            some_abort |= inner.kind == Stmt::Kind::Abort;
          }
        }
        some_plain |= s.kind == Stmt::Kind::Read || s.kind == Stmt::Kind::Write;
      }
  }
  EXPECT_TRUE(some_atomic);
  EXPECT_TRUE(some_plain);
  EXPECT_TRUE(some_branch);
  EXPECT_TRUE(some_abort);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1, 2, 3, 5, 7, 11, 13, 17));

}  // namespace
}  // namespace mtx::lit
