// L-races, mixed races, L-sequentiality, contiguity, order-preserving
// permutations (Lemma A.5 construction) and causal closure.
#include <gtest/gtest.h>

#include "model/closure.hpp"
#include "model/race.hpp"
#include "model/sequentiality.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::all_locs;
using model::analyze;
using model::Analysis;
using model::loc_set;
using model::LocSet;
using model::ModelConfig;

constexpr Loc X = 0, Y = 1;

TEST(Race, ConflictRequiresPlainSideAndWrite) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.begin(1).w(1, X, 2, 2).commit(1);
  const Trace& t = b.trace();
  const LocSet L = all_locs(t);
  // Two transactional writes: never a race.
  EXPECT_FALSE(model::l_conflict(t, 4, 7, L));
}

TEST(Race, PlainPlainReadsDoNotConflict) {
  TB b(1);
  b.w(0, X, 1, 1).r(1, X, 1, 1).r(2, X, 1, 1);
  const Trace& t = b.trace();
  EXPECT_FALSE(model::l_conflict(t, 4, 5, all_locs(t)));  // two reads
  EXPECT_TRUE(model::l_conflict(t, 3, 4, all_locs(t)));   // write vs read
}

TEST(Race, AbortedActionsNeverConflict) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).abort(0);
  b.w(1, X, 2, 2);
  const Trace& t = b.trace();
  EXPECT_FALSE(model::l_conflict(t, 4, 6, all_locs(t)));
}

TEST(Race, LocSetScopesTheRace) {
  // Racy writes on y, none on x: an {x}-analysis sees no race (spatial
  // locality, the point of LTRF).
  TB b(2);
  b.w(0, Y, 1, 1).w(1, Y, 2, 2);
  const Trace& t = b.trace();
  const Analysis an = analyze(t, ModelConfig::programmer());
  EXPECT_TRUE(model::has_l_race(t, an.hb, all_locs(t)));
  EXPECT_FALSE(model::has_l_race(t, an.hb, loc_set({X}, t.num_locs())));
}

TEST(Race, HbOrderRemovesRace) {
  // Publication: plain Wx then txn-y handshake, then txn reads x: ordered.
  TB b(2);
  b.w(0, X, 1, 1);
  b.begin(0).w(0, Y, 1, 1).commit(0);
  b.begin(1).r(1, Y, 1, 1).r(1, X, 1, 1).commit(1);
  const Trace& t = b.trace();
  const Analysis an = analyze(t, ModelConfig::base());
  EXPECT_FALSE(model::has_l_race(t, an.hb, loc_set({X}, t.num_locs())));
}

TEST(Race, PrivatizationRaceFreeOnlyWithHBww) {
  // Example 2.1's execution: the two x-writes race in the base model but
  // not under the programmer model (HBww).
  TB b(2);
  b.begin(0).r(0, Y, 0, 0).w(0, X, 1, 1).commit(0);
  b.begin(1).w(1, Y, 1, 1).commit(1).w(1, X, 2, 2);
  const Trace& t = b.trace();
  const LocSet Lx = loc_set({X}, t.num_locs());
  const Analysis base = analyze(t, ModelConfig::base());
  const Analysis prog = analyze(t, ModelConfig::programmer());
  EXPECT_TRUE(model::has_l_race(t, base.hb, Lx));
  EXPECT_FALSE(model::has_l_race(t, prog.hb, Lx));
}

TEST(Race, MixedRaceDetectsTxnWriteVsPlainWrite) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.w(1, X, 2, 2);
  const Trace& t = b.trace();
  const Analysis an = analyze(t, ModelConfig::implementation());
  EXPECT_TRUE(model::has_mixed_race(t, an.hb));
}

TEST(Race, NoMixedRaceWhenFenceOrders) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.fence(1, X);
  b.w(1, X, 2, 2);
  const Trace& t = b.trace();
  const Analysis an = analyze(t, ModelConfig::implementation());
  EXPECT_FALSE(model::has_mixed_race(t, an.hb));
}

TEST(Sequentiality, WriteWeakWhenBehindEarlierIndexLargerTs) {
  TB b(1);
  b.w(0, X, 1, 2).w(1, X, 2, 1);  // second write's ts is below the first's
  const Trace& t = b.trace();
  const LocSet L = all_locs(t);
  EXPECT_TRUE(model::is_L_sequential_action(t, 3, L));
  EXPECT_TRUE(model::is_L_weak_action(t, 4, L));
}

TEST(Sequentiality, ReadWeakWhenStale) {
  TB b(1);
  b.w(0, X, 1, 1).w(1, X, 2, 2).r(2, X, 1, 1);
  const Trace& t = b.trace();
  EXPECT_TRUE(model::is_L_weak_action(t, 5, all_locs(t)));
}

TEST(Sequentiality, BoundariesAlwaysSequential) {
  TB b(1);
  b.w(0, X, 1, 2);
  b.begin(1).commit(1);
  const Trace& t = b.trace();
  const LocSet L = all_locs(t);
  EXPECT_TRUE(model::is_L_sequential_action(t, 4, L));  // begin
  EXPECT_TRUE(model::is_L_sequential_action(t, 5, L));  // commit
}

TEST(Sequentiality, OutOfLocSetIsSequential) {
  TB b(2);
  b.w(0, Y, 1, 2).w(1, Y, 2, 1);  // weak on y
  const Trace& t = b.trace();
  EXPECT_TRUE(model::is_L_weak_action(t, 5, all_locs(t)));
  EXPECT_TRUE(model::is_L_sequential_action(t, 5, loc_set({X}, t.num_locs())));
}

TEST(Contiguity, InterleavedOpenTxnIsNotContiguous) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1);
  b.w(1, X, 2, 2);   // other thread acts inside the open txn...
  b.commit(0);       // ...and thread 0 acts again afterwards
  const Trace& t = b.trace();
  EXPECT_FALSE(model::is_contiguous(t, 3));
  EXPECT_FALSE(model::all_transactions_contiguous(t));
}

TEST(Contiguity, TrailingLiveTxnIsContiguous) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1);
  b.w(1, X, 2, 2);  // thread 0 never acts again: allowed
  const Trace& t = b.trace();
  EXPECT_TRUE(model::is_contiguous(t, 3));
}

TEST(Contiguity, ResolvedBeforeOthersActIsContiguous) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.w(1, X, 2, 2);
  EXPECT_TRUE(model::all_transactions_contiguous(b.trace()));
  EXPECT_TRUE(model::all_transactions_resolved(b.trace()));
}

TEST(Permutation, OrderPreservingPredicate) {
  TB b(1);
  b.w(0, X, 1, 1).w(1, X, 2, 2);
  const Trace& t = b.trace();
  std::vector<std::size_t> order = {0, 1, 2, 4, 3};
  const Trace p = t.permuted(order);
  EXPECT_TRUE(model::is_order_preserving_permutation(t, p));
  // Swapping two same-thread actions breaks po.
  TB c(1);
  c.w(0, X, 1, 1).w(0, X, 2, 2);
  const Trace& t2 = c.trace();
  const Trace p2 = t2.permuted({0, 1, 2, 4, 3});
  EXPECT_FALSE(model::is_order_preserving_permutation(t2, p2));
}

TEST(Permutation, LemmaA5MakesTransactionsContiguous) {
  // Interleave two committed transactions at the trace level.
  Trace u = Trace::with_init(2);
  const int ba = u.append(model::make_begin(0));
  const int bb = u.append(model::make_begin(1));
  u.append(model::make_write(0, X, 1, Rational(1)));
  u.append(model::make_write(1, Y, 1, Rational(1)));
  u.append(model::make_commit(0, u[static_cast<std::size_t>(ba)].name));
  u.append(model::make_commit(1, u[static_cast<std::size_t>(bb)].name));
  ASSERT_TRUE(model::consistent(u, ModelConfig::programmer()));
  EXPECT_FALSE(model::all_transactions_contiguous(u));

  auto perm = model::contiguous_permutation(u, ModelConfig::programmer());
  ASSERT_TRUE(perm.has_value());
  EXPECT_TRUE(model::is_order_preserving_permutation(u, *perm));
  EXPECT_TRUE(model::all_transactions_contiguous(*perm));
  EXPECT_TRUE(model::consistent(*perm, ModelConfig::programmer()));
}

TEST(Closure, CausalRemovalDropsDependents) {
  // Publication chain: Wx -> txn Wy -> txn Ry -> Rx; removing from Wx drops
  // everything causally after it but keeps it.
  TB b(2);
  b.w(0, X, 1, 1);
  b.begin(0).w(0, Y, 1, 1).commit(0);
  b.begin(1).r(1, Y, 1, 1).commit(1);
  const Trace& t = b.trace();
  const std::size_t wx = 4;
  const Trace down = model::causal_removal(t, wx, ModelConfig::programmer());
  // Keeps init + Wx itself; drops the po/cwr-successors.
  EXPECT_EQ(down.size(), 5u);
  EXPECT_TRUE(down[4].is_write());
  EXPECT_EQ(down[4].loc, X);
}

TEST(Closure, RemovalKeepsIndependentThreads) {
  TB b(2);
  b.w(0, X, 1, 1).w(1, Y, 1, 1);
  const Trace& t = b.trace();
  const Trace down = model::causal_removal(t, 4, ModelConfig::programmer());
  EXPECT_EQ(down.size(), t.size());  // nothing depends on the x write
}

TEST(Closure, RemovalDropsAntidependentTransactions) {
  // xrw successors are removed too ("future proofing" of stability).
  TB b(1);
  b.begin(0).r(0, X, 0, 0).commit(0);   // reads init x
  b.begin(1).w(1, X, 1, 1).commit(1);   // overwrites: read xrw write
  const Trace& t = b.trace();
  const std::size_t read_idx = 4;
  const Trace down = model::causal_removal(t, read_idx, ModelConfig::programmer());
  for (std::size_t i = 0; i < down.size(); ++i)
    EXPECT_FALSE(down[i].is_write() && down[i].loc == X && down[i].value == 1);
}

}  // namespace
}  // namespace mtx::test
