// §5 compiler optimizations: observational soundness of each transformation
// under the programmer and implementation models, including the known
// unsound converses.
#include <gtest/gtest.h>

#include "ltrf/optimizations.hpp"

namespace mtx::ltrf {
namespace {

using model::ModelConfig;

class OptCase : public ::testing::TestWithParam<OptimizationCase> {};

TEST_P(OptCase, ProgrammerModelSoundness) {
  const OptimizationCase& c = GetParam();
  EXPECT_EQ(transformation_sound(c, ModelConfig::programmer()), c.sound_programmer)
      << c.name;
}

TEST_P(OptCase, ImplementationModelSoundness) {
  const OptimizationCase& c = GetParam();
  EXPECT_EQ(transformation_sound(c, ModelConfig::implementation()),
            c.sound_implementation)
      << c.name;
}

std::string opt_name(const ::testing::TestParamInfo<OptimizationCase>& info) {
  std::string n = info.param.name;
  std::string out;
  for (char ch : n)
    out += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
  return out;
}

INSTANTIATE_TEST_SUITE_P(Standard, OptCase, ::testing::ValuesIn(standard_cases()),
                         opt_name);

TEST(Optimizations, CaseListCoversPaper) {
  const auto cases = standard_cases();
  EXPECT_GE(cases.size(), 8u);
  bool fusion = false, elision = false, roach = false, reorder = false;
  for (const auto& c : cases) {
    fusion |= c.name.find("fusion") != std::string::npos;
    elision |= c.name.find("elision") != std::string::npos;
    roach |= c.name.find("roach") != std::string::npos;
    reorder |= c.name.find("reorder") != std::string::npos;
  }
  EXPECT_TRUE(fusion && elision && roach && reorder);
}

TEST(Optimizations, SoundnessIsDirectional) {
  // Sanity: for the fusion case, the fused program has strictly fewer
  // behaviors; for fission, strictly more.
  for (const auto& c : standard_cases()) {
    if (c.name.rfind("fission", 0) == 0) {
      const auto before = lit::enumerate_outcomes(c.before, ModelConfig::programmer());
      const auto after = lit::enumerate_outcomes(c.after, ModelConfig::programmer());
      EXPECT_GT(after.size(), before.size());
    }
  }
}

}  // namespace
}  // namespace mtx::ltrf
