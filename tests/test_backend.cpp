// The unified StmBackend interface and registry, plus API-surface edge
// cases: TVar encode/decode round-trips (signed, bool, enum payloads),
// StmStats reset/conflict_rate corner cases, and the documented
// plain-access memory-order policy.
#include <gtest/gtest.h>

#include <limits>

#include "containers/bank.hpp"
#include "stm/backend.hpp"

namespace mtx::stm {
namespace {

TEST(BackendRegistry, NamesAndConstruction) {
  const auto& names = backend_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "tl2");
  EXPECT_EQ(names[1], "eager");
  EXPECT_EQ(names[2], "norec");
  EXPECT_EQ(names[3], "sgl");
  for (const auto& n : names) {
    auto stm = make_backend(n);
    ASSERT_NE(stm, nullptr);
    EXPECT_EQ(stm->name(), n);
  }
  EXPECT_EQ(make_backend("no-such-stm"), nullptr);
}

TEST(BackendRegistry, ErasedReadWriteCommit) {
  for (const auto& n : backend_names()) {
    SCOPED_TRACE(n);
    auto stm = make_backend(n);
    Cell x(0), y(0);
    ASSERT_TRUE(stm->atomically([&](auto& tx) {
      tx.write(x, 7);
      tx.write(y, tx.read(x) == 7 ? 9u : 1u);  // read-own-write through TxHandle
    }));
    EXPECT_EQ(x.plain_load(), 7u);
    EXPECT_EQ(y.plain_load(), 9u);
    EXPECT_EQ(stm->stats().commits.load(), 1u);
  }
}

TEST(BackendRegistry, UserAbortThroughHandle) {
  for (const auto& n : backend_names()) {
    SCOPED_TRACE(n);
    auto stm = make_backend(n);
    Cell x(1);
    const bool committed = stm->atomically([&](auto& tx) {
      tx.write(x, 2);
      tx.user_abort();
    });
    EXPECT_FALSE(committed);
    EXPECT_EQ(x.plain_load(), 1u);
    EXPECT_EQ(stm->stats().user_aborts.load(), 1u);
  }
}

TEST(BackendRegistry, QuiesceCountsFence) {
  for (const auto& n : backend_names()) {
    SCOPED_TRACE(n);
    auto stm = make_backend(n);
    stm->quiesce();
    EXPECT_EQ(stm->stats().fences.load(), 1u);
  }
}

TEST(BackendRegistry, ContainersWorkTypeErased) {
  for (const auto& n : backend_names()) {
    SCOPED_TRACE(n);
    auto stm = make_backend(n);
    containers::Bank<StmBackend> bank(*stm, 4, 25);
    bank.transfer(0, 1, 10);
    EXPECT_EQ(bank.plain_balance(0), 15);
    EXPECT_EQ(bank.plain_balance(1), 35);
    EXPECT_EQ(bank.total(), bank.expected_total());
    EXPECT_EQ(bank.audit_after_quiesce(), bank.expected_total());
  }
}

// ----- TVar round-trips (word encode/decode) ---------------------------

enum class Color : std::int8_t { Red = -1, Green = 0, Blue = 7 };

TEST(TVar, SignedRoundTrip) {
  auto stm = make_backend("tl2");
  TVar<int> v(-123);
  EXPECT_EQ(v.plain_get(), -123);
  ASSERT_TRUE(stm->atomically([&](auto& tx) { v.set(tx, v.get(tx) - 1); }));
  EXPECT_EQ(v.plain_get(), -124);

  TVar<std::int64_t> big(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(big.plain_get(), std::numeric_limits<std::int64_t>::min());
  big.plain_set(-1);
  EXPECT_EQ(big.plain_get(), -1);
}

TEST(TVar, BoolRoundTrip) {
  auto stm = make_backend("eager");
  TVar<bool> flag(false);
  EXPECT_FALSE(flag.plain_get());
  ASSERT_TRUE(stm->atomically([&](auto& tx) { flag.set(tx, !flag.get(tx)); }));
  EXPECT_TRUE(flag.plain_get());
  flag.plain_set(false);
  EXPECT_FALSE(flag.plain_get());
}

TEST(TVar, EnumRoundTrip) {
  auto stm = make_backend("sgl");
  TVar<Color> c(Color::Red);
  EXPECT_EQ(c.plain_get(), Color::Red);
  ASSERT_TRUE(stm->atomically([&](auto& tx) {
    EXPECT_EQ(c.get(tx), Color::Red);
    c.set(tx, Color::Blue);
  }));
  EXPECT_EQ(c.plain_get(), Color::Blue);
  c.plain_set(Color::Green);
  EXPECT_EQ(c.plain_get(), Color::Green);
}

// ----- StmStats edge cases ---------------------------------------------

TEST(StmStats, ConflictRateZeroAttempts) {
  StmStats s;
  EXPECT_DOUBLE_EQ(s.conflict_rate(), 0.0);  // no attempts: defined as 0
}

TEST(StmStats, ConflictRateOnlyCommits) {
  StmStats s;
  s.commits.store(10);
  EXPECT_DOUBLE_EQ(s.conflict_rate(), 0.0);
}

TEST(StmStats, ConflictRateOnlyConflicts) {
  StmStats s;
  s.conflicts.store(5);
  EXPECT_DOUBLE_EQ(s.conflict_rate(), 1.0);
}

TEST(StmStats, ResetClearsEverything) {
  StmStats s;
  s.commits.store(1);
  s.conflicts.store(2);
  s.user_aborts.store(3);
  s.fences.store(4);
  s.reset();
  EXPECT_EQ(s.commits.load(), 0u);
  EXPECT_EQ(s.conflicts.load(), 0u);
  EXPECT_EQ(s.user_aborts.load(), 0u);
  EXPECT_EQ(s.fences.load(), 0u);
  EXPECT_DOUBLE_EQ(s.conflict_rate(), 0.0);
}

// ----- plain-access memory-order policy --------------------------------

TEST(PlainOrder, DefaultIsAcqRelAndSwitchable) {
  EXPECT_EQ(plain_order(), PlainOrder::acq_rel);
  EXPECT_STREQ(plain_order_name(PlainOrder::relaxed), "relaxed");
  EXPECT_STREQ(plain_order_name(PlainOrder::acq_rel), "acq_rel");
  EXPECT_STREQ(plain_order_name(PlainOrder::seq_cst), "seq_cst");

  set_plain_order(PlainOrder::relaxed);
  EXPECT_EQ(plain_load_order(), std::memory_order_relaxed);
  EXPECT_EQ(plain_store_order(), std::memory_order_relaxed);
  Cell x;
  x.plain_store(41);
  EXPECT_EQ(x.plain_load(), 41u);

  set_plain_order(PlainOrder::seq_cst);
  EXPECT_EQ(plain_load_order(), std::memory_order_seq_cst);
  x.plain_store(42);
  EXPECT_EQ(x.plain_load(), 42u);

  set_plain_order(PlainOrder::acq_rel);  // restore the documented default
  EXPECT_EQ(plain_load_order(), std::memory_order_acquire);
  EXPECT_EQ(plain_store_order(), std::memory_order_release);
}

}  // namespace
}  // namespace mtx::stm
