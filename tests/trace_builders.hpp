// Shared helpers for building concrete traces in model-level tests.
#pragma once

#include <map>

#include "model/trace.hpp"

namespace mtx::test {

using model::Loc;
using model::Trace;
using model::Value;

// Fluent trace builder over Trace::with_init.
class TB {
 public:
  explicit TB(int locs) : t_(Trace::with_init(locs)) {}

  TB& w(int thread, Loc x, Value v, std::int64_t num, std::int64_t den = 1) {
    t_.append(model::make_write(thread, x, v, Rational(num, den)));
    return *this;
  }
  TB& r(int thread, Loc x, Value v, std::int64_t num, std::int64_t den = 1) {
    t_.append(model::make_read(thread, x, v, Rational(num, den)));
    return *this;
  }
  // Begin a transaction; remembers the begin name per thread.
  TB& begin(int thread) {
    const int idx = t_.append(model::make_begin(thread));
    open_[thread] = t_[static_cast<std::size_t>(idx)].name;
    return *this;
  }
  TB& commit(int thread) {
    t_.append(model::make_commit(thread, open_.at(thread)));
    return *this;
  }
  TB& abort(int thread) {
    t_.append(model::make_abort(thread, open_.at(thread)));
    return *this;
  }
  TB& fence(int thread, Loc x) {
    t_.append(model::make_qfence(thread, x));
    return *this;
  }
  // Summary whole-store fence <Q*>.
  TB& fence_all(int thread) {
    t_.append(model::make_qfence_all(thread));
    return *this;
  }

  Trace& trace() { return t_; }
  operator Trace&() { return t_; }

 private:
  Trace t_;
  std::map<int, int> open_;
};

}  // namespace mtx::test
