// Metatheory: Theorem 4.2 (aborted erasure), Lemma A.5 (contiguous
// permutation), Lemma 5.1 (implementation vs programmer model), Lemma A.4
// (weak actions race), exercised both on the litmus programs' enumerated
// executions and on randomized consistent traces.
#include <gtest/gtest.h>

#include "litmus/catalog.hpp"
#include "ltrf/metatheory.hpp"

namespace mtx::ltrf {
namespace {

using lit::Execution;
using lit::GraphEnum;
using model::ModelConfig;
using model::Trace;

// ---------------------------------------------------------------------------
// Randomized property sweeps.
// ---------------------------------------------------------------------------

class MetaRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetaRandom, Theorem42AbortedErasure) {
  Rng rng(GetParam());
  RandomTraceParams params;
  params.abort_percent = 50;
  const ModelConfig cfg = ModelConfig::programmer();
  for (int i = 0; i < 25; ++i) {
    const Trace t = random_consistent_trace(rng, params, cfg);
    EXPECT_TRUE(aborted_erasure_preserves_consistency(t, cfg)) << t.str();
  }
}

TEST_P(MetaRandom, Theorem42UnderImplementationModel) {
  Rng rng(GetParam() * 31 + 7);
  RandomTraceParams params;
  params.abort_percent = 50;
  params.fence_percent = 15;
  const ModelConfig cfg = ModelConfig::implementation();
  for (int i = 0; i < 25; ++i) {
    const Trace t = random_consistent_trace(rng, params, cfg);
    EXPECT_TRUE(aborted_erasure_preserves_consistency(t, cfg)) << t.str();
  }
}

TEST_P(MetaRandom, LemmaA5ContiguousPermutation) {
  Rng rng(GetParam() * 97 + 13);
  RandomTraceParams params;
  const ModelConfig cfg = ModelConfig::programmer();
  for (int i = 0; i < 25; ++i) {
    const Trace t = random_consistent_trace(rng, params, cfg);
    if (!model::all_transactions_resolved(t)) continue;
    EXPECT_TRUE(contiguous_permutation_ok(t, cfg)) << t.str();
  }
}

TEST_P(MetaRandom, Lemma51MixedRaceFreeImpliesProgrammer) {
  Rng rng(GetParam() * 131 + 3);
  RandomTraceParams params;
  params.fence_percent = 20;
  const ModelConfig impl = ModelConfig::implementation();
  for (int i = 0; i < 25; ++i) {
    const Trace t = random_consistent_trace(rng, params, impl);
    EXPECT_TRUE(lemma_5_1_holds(t)) << t.str();
  }
}

TEST_P(MetaRandom, LemmaA4WeakActionsHaveRacePartners) {
  Rng rng(GetParam() * 271 + 29);
  RandomTraceParams params;
  params.abort_percent = 30;
  const ModelConfig cfg = ModelConfig::programmer();
  for (int i = 0; i < 25; ++i) {
    const Trace t = random_consistent_trace(rng, params, cfg);
    const auto an = model::analyze(t, cfg);
    if (!an.consistent()) continue;
    const model::LocSet L = model::all_locs(t);
    for (std::size_t c = 0; c < t.size(); ++c) {
      const WeakRaceStatus status = weak_action_race_status(t, an.hb, c, L);
      // The lemma's argument: a weak action with a nonaborted offender must
      // be in a race (Coherence/Observation would otherwise fire).
      EXPECT_NE(status, WeakRaceStatus::NoRace)
          << "action " << c << " in\n"
          << t.str();
    }
  }
}

TEST_P(MetaRandom, PermutationPreservesConsistencyBothWays) {
  // Order-preserving permutations preserve derived relations, hence
  // consistency (§4 validity closure).
  Rng rng(GetParam() * 17 + 1);
  RandomTraceParams params;
  const ModelConfig cfg = ModelConfig::programmer();
  for (int i = 0; i < 15; ++i) {
    const Trace t = random_consistent_trace(rng, params, cfg);
    if (!model::all_transactions_resolved(t)) continue;
    auto perm = model::contiguous_permutation(t, cfg);
    if (!perm) continue;
    // The permuted trace must satisfy all WF rules too (WF8-11 are not
    // automatic under reordering; the Lemma A.5 construction guarantees
    // them).
    EXPECT_TRUE(model::check_wellformed(*perm).ok()) << perm->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------------------
// The same metatheorems on every execution of the paper's own programs.
// ---------------------------------------------------------------------------

TEST(MetaCatalog, Theorem42OnCatalogExecutions) {
  const ModelConfig cfg = ModelConfig::programmer();
  for (const lit::LitmusTest& t : lit::catalog()) {
    GraphEnum e(t.program, cfg);
    e.for_each([&](const Execution& ex) {
      EXPECT_TRUE(aborted_erasure_preserves_consistency(ex.trace, cfg))
          << t.id << "\n"
          << ex.trace.str();
    });
  }
}

TEST(MetaCatalog, LemmaA5OnCatalogExecutions) {
  const ModelConfig cfg = ModelConfig::programmer();
  for (const lit::LitmusTest& t : lit::catalog()) {
    GraphEnum e(t.program, cfg);
    e.for_each([&](const Execution& ex) {
      EXPECT_TRUE(contiguous_permutation_ok(ex.trace, cfg))
          << t.id << "\n"
          << ex.trace.str();
    });
  }
}

TEST(MetaCatalog, Lemma51OnCatalogExecutions) {
  for (const lit::LitmusTest& t : lit::catalog()) {
    GraphEnum e(t.program, ModelConfig::implementation());
    e.for_each([&](const Execution& ex) {
      EXPECT_TRUE(lemma_5_1_holds(ex.trace)) << t.id << "\n" << ex.trace.str();
    });
  }
}

// ---------------------------------------------------------------------------
// Generator sanity.
// ---------------------------------------------------------------------------

TEST(RandomTraces, AlwaysConsistent) {
  Rng rng(4242);
  RandomTraceParams params;
  params.fence_percent = 10;
  const ModelConfig impl = ModelConfig::implementation();
  for (int i = 0; i < 50; ++i) {
    const Trace t = random_consistent_trace(rng, params, impl);
    EXPECT_TRUE(model::consistent(t, impl));
    EXPECT_GE(t.size(), 5u);
  }
}

TEST(RandomTraces, ProducesVariety) {
  Rng rng(7);
  RandomTraceParams params;
  params.abort_percent = 40;
  const ModelConfig cfg = ModelConfig::programmer();
  bool some_abort = false, some_txn = false, some_plain = false;
  for (int i = 0; i < 40; ++i) {
    const Trace t = random_consistent_trace(rng, params, cfg);
    for (std::size_t j = 0; j < t.size(); ++j) {
      if (t[j].is_abort()) some_abort = true;
      if (t[j].is_begin() && t[j].thread != model::kInitThread) some_txn = true;
      if (t.plain(j) && t[j].is_memory_access() && t[j].thread != model::kInitThread)
        some_plain = true;
    }
  }
  EXPECT_TRUE(some_abort);
  EXPECT_TRUE(some_txn);
  EXPECT_TRUE(some_plain);
}

}  // namespace
}  // namespace mtx::ltrf
