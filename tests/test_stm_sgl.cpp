// Single-global-lock backend: trivial commit, undo on user abort, mutual
// exclusion, and the global-lock-atomicity contrast of Example 3.2.
#include <gtest/gtest.h>

#include <atomic>

#include "stm/sgl.hpp"
#include "substrate/threading.hpp"

namespace mtx::stm {
namespace {

TEST(Sgl, ReadWriteCommit) {
  SglStm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { tx.write(x, 3); }));
  EXPECT_EQ(x.plain_load(), 3u);
}

TEST(Sgl, UserAbortUndoes) {
  SglStm stm;
  Cell x(1);
  EXPECT_FALSE(stm.atomically([&](auto& tx) {
    tx.write(x, 9);
    tx.user_abort();
  }));
  EXPECT_EQ(x.plain_load(), 1u);
}

TEST(Sgl, NoConflictsEver) {
  SglStm stm;
  Cell x(0);
  for (int i = 0; i < 100; ++i)
    stm.atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
  EXPECT_EQ(stm.stats().conflicts.load(), 0u);
  EXPECT_EQ(x.plain_load(), 100u);
}

TEST(Sgl, MutualExclusionUnderContention) {
  SglStm stm;
  Cell x(0);
  constexpr int kThreads = 8, kIters = 2000;
  mtx::run_team(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i)
      stm.atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
  });
  EXPECT_EQ(x.plain_load(), static_cast<word_t>(kThreads * kIters));
}

TEST(Sgl, GlobalLockAtomicityOrdersExample32) {
  // Example 3.2: under global lock atomicity the outcome r=q=0 is
  // impossible when the plain accesses are moved inside the transactions
  // (the SGL serializes everything).  This is the semantics the paper's
  // model deliberately does NOT impose on STMs; the SGL baseline exhibits
  // it, our TL2/eager need not.
  SglStm stm;
  Cell x(0), y(0), z(0);
  std::atomic<word_t> r{0}, q{0};
  mtx::run_team(2, [&](std::size_t tid) {
    if (tid == 0) {
      stm.atomically([&](auto& tx) {
        tx.write(x, 1);
        tx.write(y, 1);
        r = tx.read(z);
      });
    } else {
      stm.atomically([&](auto& tx) {
        q = tx.read(x);
        tx.write(z, 1);
      });
    }
  });
  // One of the two transactions ran first: not both r and q can be 0 ...
  // unless thread 1 ran first (q=0) and thread 0 then read z=1 (r=1), or
  // thread 0 first (r=0) and q=1.  r==0 && q==0 is impossible.
  EXPECT_FALSE(r.load() == 0 && q.load() == 0);
}

TEST(Sgl, QuiesceIsAFullBarrier) {
  SglStm stm;
  stm.quiesce();
  EXPECT_EQ(stm.stats().fences.load(), 1u);
}

}  // namespace
}  // namespace mtx::stm
