// The runtime trace recorder and conformance pipeline: event capture from
// real STM runs, deterministic assembly into model::Traces, model-layer
// judgment (well-formedness, races, opacity), seeded single-thread replay
// determinism, and the campaign's recorded-execution job grid.
#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "model/race.hpp"
#include "model/wellformed.hpp"
#include "record/assemble.hpp"
#include "record/conformance.hpp"
#include "record/recorder.hpp"
#include "record/workloads.hpp"
#include "stm/backend.hpp"

namespace mtx::record {
namespace {

using stm::make_backend;
using stm::backend_names;

TEST(Record, AssemblesManualPlainEvents) {
  RecordSession s;
  stm::Cell x, y;
  {
    ScopedRecorder r(s, 0);
    r.rec().synthetic_begin();
    x.plain_store(7);
    y.plain_store(9);
    r.rec().synthetic_commit();
    EXPECT_EQ(x.plain_load(), 7u);
  }
  const RecordedTrace rt = assemble(s);
  // init txn (B, Wx0, Wy0, C) + setup txn (B, Wx7, Wy9, C) + plain read.
  ASSERT_EQ(rt.trace.size(), 9u);
  EXPECT_TRUE(model::wellformed(rt.trace));
  EXPECT_EQ(rt.meta.num_locs, 2);
  EXPECT_EQ(rt.meta.plain_writes, 2u);
  EXPECT_EQ(rt.meta.plain_reads, 1u);
  EXPECT_EQ(rt.meta.committed, 1u);  // the synthetic setup txn
  EXPECT_EQ(rt.meta.plain_order, "acq_rel");
  // The read is fulfilled by the store: same loc, value 7, version 1.
  const model::Action& rd = rt.trace[8];
  EXPECT_TRUE(rd.is_read());
  EXPECT_EQ(rd.value, 7);
  EXPECT_EQ(rd.ts, Rational(1));
}

TEST(Record, ErasedBackendTransactionsAssemble) {
  for (const std::string& name : backend_names()) {
    SCOPED_TRACE(name);
    auto stm = make_backend(name);
    RecordSession s;
    stm::Cell x;
    {
      ScopedRecorder r(s, 0);
      stm->atomically([&](auto& tx) { tx.write(x, 5); });
      stm->atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
    }
    const RecordedTrace rt = assemble(s);
    // init (B, Wx0, C) + (B, Wx5, C) + (B, Rx5, Wx6, C) = 10 actions.
    ASSERT_EQ(rt.trace.size(), 10u);
    const ConformanceReport rep = check_conformance(rt.trace);
    EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
    EXPECT_EQ(rep.l_races, 0u);
    EXPECT_FALSE(rep.mixed_race);
    EXPECT_TRUE(rep.opaque);
    EXPECT_TRUE(rep.consistent);
    EXPECT_EQ(x.plain_load(), 6u);
  }
}

TEST(Record, UserAbortProducesAbortAction) {
  for (const std::string& name : backend_names()) {
    SCOPED_TRACE(name);
    auto stm = make_backend(name);
    RecordSession s;
    stm::Cell x;
    {
      ScopedRecorder r(s, 0);
      stm->atomically([&](auto& tx) { tx.write(x, 3); });
      const bool committed = stm->atomically([&](auto& tx) {
        tx.write(x, 999);
        tx.user_abort();
      });
      EXPECT_FALSE(committed);
    }
    EXPECT_EQ(x.plain_load(), 3u);
    const RecordedTrace rt = assemble(s);
    EXPECT_EQ(rt.meta.aborted, 1u);
    const ConformanceReport rep = check_conformance(rt.trace);
    // Eager/SGL traces contain the rolled-back in-place write inside the
    // aborted txn; lazy backends never published it.  Either way the model
    // must accept the trace: aborted writes are invisible.
    EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
    EXPECT_TRUE(rep.opaque);
    EXPECT_EQ(rep.l_races, 0u);
  }
}

TEST(Record, UnobservedInitializationIsCaughtAsUnfulfilledRead) {
  // A cell that acquires a nonzero value outside recording breaks WF6 when
  // read — the seam exists precisely so workloads route initialization
  // through recorded writes (synthetic setup txns).
  RecordSession s;
  stm::Cell z(42);  // raw-initialized: no recorded write
  {
    ScopedRecorder r(s, 0);
    EXPECT_EQ(z.plain_load(), 42u);
  }
  const RecordedTrace rt = assemble(s);
  const model::WfReport wf = model::check_wellformed(rt.trace);
  EXPECT_FALSE(wf.ok());
  EXPECT_TRUE(wf.violates(6));
}

TEST(Record, MixedRaceIsDetected) {
  // Two threads, no transactional bridge: a plain write racing a
  // transactional write on the same location must be flagged — this is the
  // oracle's negative control.
  auto stm = make_backend("tl2");
  RecordSession s;
  stm::Cell x;
  {
    ScopedRecorder r(s, 1);
    x.plain_store(1);
  }
  {
    ScopedRecorder r(s, 2);
    stm->atomically([&](auto& tx) { tx.write(x, 2); });
  }
  const RecordedTrace rt = assemble(s);
  const ConformanceReport rep = check_conformance(rt.trace);
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
  EXPECT_TRUE(rep.mixed_race);
  EXPECT_GT(rep.l_races, 0u);
  EXPECT_FALSE(rep.ok());
}

TEST(Record, ConcurrentFencesInsideOneTxnSinkPastIt) {
  // Two fences ticketed while one transaction is open (two threads
  // quiescing concurrently against a straggler txn): assembly must
  // terminate and sink BOTH fences just past the resolution, preserving
  // their relative order — the stale-index fixpoint of an earlier draft
  // looped forever on exactly this shape.
  RecordSession s;
  stm::Cell x;
  ThreadRecorder* t1 = s.attach(1);
  ThreadRecorder* t2 = s.attach(2);
  ThreadRecorder* t3 = s.attach(3);
  t1->on_begin();
  t2->on_fence();
  t3->on_fence();
  t1->tx_publish(x, 1);
  t1->on_commit();
  const RecordedTrace rt = assemble(s);
  // init (B, Wx0, C) + txn (B, Wx1, C) + the two sunk fences.
  ASSERT_EQ(rt.trace.size(), 8u);
  EXPECT_TRUE(rt.trace[5].is_commit());
  EXPECT_TRUE(rt.trace[6].is_qfence());
  EXPECT_TRUE(rt.trace[7].is_qfence());
  EXPECT_EQ(rt.trace[6].thread, 2);
  EXPECT_EQ(rt.trace[7].thread, 3);
  EXPECT_TRUE(model::wellformed(rt.trace));
}

TEST(Record, ScopedFenceExpandsToCoveredLocationsOnly) {
  // A domain-scoped fence assembles into one <Qx> per location its domain
  // enumerates — not one per location in the store (the PR 5 perf note).
  auto stm = make_backend("tl2");
  RecordSession s;
  stm::Cell x, y;
  stm::QuiesceDomain dom;
  dom.id = stm->create_domain();
  dom.cells = [&](const stm::QuiesceDomain::CellVisitor& v) { v(x); };
  {
    ScopedRecorder r(s, 1);
    stm->atomically([&](auto& tx) {
      tx.write(x, 1);
      tx.write(y, 2);
    });
    stm->quiesce(dom);
  }
  const RecordedTrace rt = assemble(s);
  EXPECT_EQ(rt.meta.fences, 1u);
  std::size_t qfences = 0;
  for (std::size_t i = 0; i < rt.trace.size(); ++i)
    if (rt.trace[i].is_qfence()) {
      ++qfences;
      EXPECT_EQ(rt.trace[i].loc, s.loc_id(x));  // never y
    }
  EXPECT_EQ(qfences, 1u);  // an unscoped fence would expand to 2 here
  EXPECT_TRUE(model::wellformed(rt.trace));
}

TEST(Record, UnderScopedFenceIsCaughtAsMixedRaceAndInvalidCut) {
  // Negative control for the domain-annotation contract: a fence whose
  // domain does NOT cover a location the protocol actually relies on gives
  // the model no <Qc> to order through — the privatized-phase plain write
  // races the transactional write, and the fence group is rejected as a cut
  // (c is uncovered with traffic on both sides, rule (d)).
  auto stm = make_backend("tl2");
  RecordSession s;
  stm::Cell a, c;
  stm::QuiesceDomain dom;
  dom.id = stm->create_domain();
  dom.cells = [&](const stm::QuiesceDomain::CellVisitor& v) { v(a); };  // no c
  {
    ScopedRecorder r(s, 1);
    stm->atomically([&](auto& tx) { tx.write(c, 7); });
  }
  {
    ScopedRecorder r(s, 2);
    stm->quiesce(dom);
    c.plain_store(8);  // privatized-phase write the fence missed
  }
  const RecordedTrace rt = assemble(s);
  const ConformanceReport rep = check_conformance(rt.trace);
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
  EXPECT_GT(rep.l_races, 0u);
  EXPECT_TRUE(rep.mixed_race) << "under-scoped fence must not order c";
  EXPECT_FALSE(rep.ok());
  const WindowPlan plan = cut_windows(rt.trace);
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.cuts, 0u) << "cross-cut traffic on uncovered c";
  ASSERT_EQ(plan.windows.size(), 1u);
}

TEST(Record, CorrectlyScopedFenceOrdersPrivatizationAndCuts) {
  // The same protocol with the domain covering c: the expanded <Qc> orders
  // the committed write before the fencing thread's plain read (HBCQ, then
  // po out of the fence), so there is no race and the group is a valid cut.
  auto stm = make_backend("tl2");
  RecordSession s;
  stm::Cell a, c;
  stm::QuiesceDomain dom;
  dom.id = stm->create_domain();
  dom.cells = [&](const stm::QuiesceDomain::CellVisitor& v) {
    v(a);
    v(c);
  };
  {
    ScopedRecorder r(s, 1);
    stm->atomically([&](auto& tx) { tx.write(c, 7); });
  }
  {
    ScopedRecorder r(s, 2);
    stm->quiesce(dom);
    c.plain_store(8);  // same write, now ordered: commit -> <Qc> -> po
  }
  const RecordedTrace rt = assemble(s);
  const ConformanceReport rep = check_conformance(rt.trace);
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
  EXPECT_FALSE(rep.mixed_race);
  EXPECT_EQ(rep.l_races, 0u);
  EXPECT_TRUE(rep.ok());
  const WindowPlan plan = cut_windows(rt.trace);
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.cuts, 1u);
  EXPECT_EQ(plan.windows.size(), 2u);
}

TEST(Record, PartialCoverageCutValidWhenUncoveredTrafficIsOneSided) {
  // Rule (d) is one-sided: an uncovered location with all its accesses on
  // one side of the group does not invalidate the cut — which is exactly
  // why a shard-scoped KV fence still cuts windows confined to its shard.
  auto stm = make_backend("tl2");
  RecordSession s;
  stm::Cell a, b;
  stm::QuiesceDomain dom;
  dom.id = stm->create_domain();
  dom.cells = [&](const stm::QuiesceDomain::CellVisitor& v) { v(a); };  // no b
  {
    ScopedRecorder r(s, 1);
    stm->atomically([&](auto& tx) {
      tx.write(a, 1);
      tx.write(b, 2);  // b's ONLY access: pre-group
    });
  }
  {
    ScopedRecorder r(s, 2);
    stm->quiesce(dom);
    EXPECT_EQ(a.plain_load(), 1u);
  }
  const RecordedTrace rt = assemble(s);
  const ConformanceReport rep = check_conformance(rt.trace);
  EXPECT_TRUE(rep.ok()) << rep.wf.str();
  const WindowPlan plan = cut_windows(rt.trace);
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.cuts, 1u);
  EXPECT_EQ(plan.windows.size(), 2u);
}

TEST(Record, SeededSingleThreadReplayIsByteIdentical) {
  for (const std::string& name : backend_names()) {
    SCOPED_TRACE(name);
    WorkloadOptions o;
    o.threads = 1;
    o.seed = 7;
    o.ops_per_thread = 10;
    auto stm1 = make_backend(name);
    auto stm2 = make_backend(name);
    const RecordedRun a = run_recorded_workload("bank", *stm1, o);
    const RecordedRun b = run_recorded_workload("bank", *stm2, o);
    EXPECT_TRUE(a.invariant_ok);
    EXPECT_EQ(a.rec.trace.str(), b.rec.trace.str());
    EXPECT_EQ(a.rec.meta.events, b.rec.meta.events);
    EXPECT_EQ(a.rec.meta.committed, b.rec.meta.committed);
  }
}

TEST(Record, ConformanceGridAllBackendsAllWorkloads) {
  WorkloadOptions o;
  o.threads = 2;
  o.seed = 11;
  o.ops_per_thread = 6;
  for (const std::string& w : workload_names()) {
    for (const std::string& b : backend_names()) {
      SCOPED_TRACE(w + "/" + b);
      auto stm = make_backend(b);
      const RecordedRun run = run_recorded_workload(w, *stm, o);
      EXPECT_TRUE(run.invariant_ok);
      const ConformanceReport rep = check_conformance(run.rec.trace);
      EXPECT_TRUE(rep.wf.ok()) << rep.wf.str() << run.rec.trace.str();
      EXPECT_EQ(rep.l_races, 0u) << run.rec.trace.str();
      EXPECT_FALSE(rep.mixed_race);
      // Zombie-free backends are opaque including aborted readers; eager
      // (Example 3.4) may record doomed inconsistent snapshots and is only
      // held to committed-subsystem opacity.
      EXPECT_TRUE(rep.opaque_committed);
      if (stm->zombie_free()) {
        EXPECT_TRUE(rep.opaque);
      }
    }
  }
}

TEST(Record, PrivatizationWorkloadRecordsFences) {
  auto stm = make_backend("tl2");
  WorkloadOptions o;
  o.threads = 3;
  o.seed = 5;
  o.ops_per_thread = 6;
  const RecordedRun run = run_recorded_workload("bank_priv", *stm, o);
  EXPECT_TRUE(run.invariant_ok);
  EXPECT_GE(run.rec.meta.fences, 2u);
  bool has_qfence = false;
  for (std::size_t i = 0; i < run.rec.trace.size(); ++i)
    if (run.rec.trace[i].is_qfence()) has_qfence = true;
  EXPECT_TRUE(has_qfence);
  const ConformanceReport rep = check_conformance(run.rec.trace);
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
  EXPECT_FALSE(rep.wf.violates(12));
  EXPECT_EQ(rep.l_races, 0u) << run.rec.trace.str();
  EXPECT_FALSE(rep.mixed_race);
}

TEST(Record, WindowedVerdictsMatchMonolithicAcrossGrid) {
  // The fence-bounded windowed checker must agree byte-for-byte with the
  // monolithic checker on the whole backend x workload x threads grid.
  // min_window_events is forced low so fence-rich workloads really split.
  WindowedOptions wnd;
  wnd.min_window_events = 16;
  WorkloadOptions o;
  o.seed = 11;
  o.ops_per_thread = 8;
  bool saw_multi_window = false;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    o.threads = threads;
    for (const std::string& w : workload_names()) {
      for (const std::string& b : backend_names()) {
        SCOPED_TRACE(w + "/" + b + "/t" + std::to_string(threads));
        auto stm = make_backend(b);
        const RecordedRun run = run_recorded_workload(w, *stm, o);
        const ConformanceReport mono = check_conformance(run.rec.trace);
        const ConformanceReport windowed =
            check_conformance_windowed(run.rec.trace,
                                       model::ModelConfig::implementation(), wnd);
        EXPECT_EQ(windowed.verdict(), mono.verdict()) << run.rec.trace.str();
        EXPECT_EQ(windowed.actions, mono.actions);
        EXPECT_EQ(windowed.committed, mono.committed);
        EXPECT_EQ(windowed.aborted, mono.aborted);
        if (windowed.windows > 1) saw_multi_window = true;
      }
    }
  }
  // The grid must actually exercise windowing (bank_priv carries fences).
  EXPECT_TRUE(saw_multi_window);
}

TEST(Record, WindowedParallelMatchesSerial) {
  auto stm = make_backend("tl2");
  WorkloadOptions o;
  o.threads = 3;
  o.seed = 9;
  o.ops_per_thread = 40;
  const RecordedRun run = run_recorded_workload("bank_priv", *stm, o);
  WindowedOptions serial;
  serial.min_window_events = 16;
  serial.threads = 1;
  WindowedOptions parallel = serial;
  parallel.threads = 4;
  const ConformanceReport a = check_conformance_windowed(
      run.rec.trace, model::ModelConfig::implementation(), serial);
  const ConformanceReport b = check_conformance_windowed(
      run.rec.trace, model::ModelConfig::implementation(), parallel);
  EXPECT_GT(a.windows, 1u);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Record, MixedRaceStraddlingWindowCutIsStillCaught) {
  // Negative control for the window engine: an unpublished plain write
  // races a transactional write on the far side of a quiescence fence.
  // The racy access invalidates the cut (its publication chain through the
  // fence is missing), the window grows across the fence, and the race is
  // reported exactly as the monolithic checker reports it.
  model::Trace t = model::Trace::with_init(2);
  // A committed txn so the fence has honest pre-cut work to order.
  const int b1 = t.append(model::make_begin(2));
  t.append(model::make_write(2, 0, 1, Rational(1)));
  t.append(model::make_write(2, 1, 1, Rational(1)));
  t.append(model::make_commit(2, t[static_cast<std::size_t>(b1)].name));
  // Thread 1 reads the txn's value transactionally (ordering it after the
  // writer), then writes plainly and NEVER publishes: the later racing
  // access is the only unordered conflicting pair.
  const int r1 = t.append(model::make_begin(1));
  t.append(model::make_read(1, 0, 1, Rational(1)));
  t.append(model::make_commit(1, t[static_cast<std::size_t>(r1)].name));
  t.append(model::make_write(1, 0, 5, Rational(2)));
  // A full-quiescence group by thread 3.
  t.append(model::make_qfence(3, 0));
  t.append(model::make_qfence(3, 1));
  // The transactional write it races with, beginning after the fence.
  const int b2 = t.append(model::make_begin(2));
  t.append(model::make_write(2, 0, 7, Rational(3)));
  t.append(model::make_commit(2, t[static_cast<std::size_t>(b2)].name));

  const ConformanceReport mono = check_conformance(t);
  ASSERT_TRUE(mono.mixed_race);  // the seeded race is real
  ASSERT_EQ(mono.l_races, 1u);   // ...and it is exactly the straddling pair

  WindowedOptions wnd;
  wnd.min_window_events = 0;
  const ConformanceReport windowed = check_conformance_windowed(
      t, model::ModelConfig::implementation(), wnd);
  EXPECT_TRUE(windowed.mixed_race);
  EXPECT_EQ(windowed.verdict(), mono.verdict());
  // The cut was refused, not silently taken: the race never straddled
  // independently-checked windows.
  EXPECT_EQ(windowed.windows, 1u);

  // Control of the control: the same shape with the plain write properly
  // bracketed (privatized by a transactional read of the writer's value,
  // published by a commit touching the location before the fence) makes the
  // cut valid -- two windows, no race, verdicts still identical.
  model::Trace u = model::Trace::with_init(2);
  const int c1 = u.append(model::make_begin(2));
  u.append(model::make_write(2, 0, 1, Rational(1)));
  u.append(model::make_write(2, 1, 1, Rational(1)));
  u.append(model::make_commit(2, u[static_cast<std::size_t>(c1)].name));
  const int c2 = u.append(model::make_begin(1));  // privatizing read
  u.append(model::make_read(1, 0, 1, Rational(1)));
  u.append(model::make_commit(1, u[static_cast<std::size_t>(c2)].name));
  u.append(model::make_write(1, 0, 5, Rational(2)));
  const int c3 = u.append(model::make_begin(1));  // publication txn
  u.append(model::make_read(1, 0, 5, Rational(2)));
  u.append(model::make_commit(1, u[static_cast<std::size_t>(c3)].name));
  u.append(model::make_qfence(3, 0));
  u.append(model::make_qfence(3, 1));
  const int c4 = u.append(model::make_begin(2));
  u.append(model::make_read(2, 0, 5, Rational(2)));
  u.append(model::make_write(2, 0, 7, Rational(3)));
  u.append(model::make_commit(2, u[static_cast<std::size_t>(c4)].name));
  const ConformanceReport mu = check_conformance(u);
  EXPECT_EQ(mu.l_races, 0u) << u.str();
  const ConformanceReport wu = check_conformance_windowed(
      u, model::ModelConfig::implementation(), wnd);
  EXPECT_EQ(wu.windows, 2u);
  EXPECT_EQ(wu.verdict(), mu.verdict());
}

TEST(Record, LongRecordingWindowedConformance) {
  // The scaling regime: a fence-rich recording far beyond what the
  // monolithic O(n^2)-relations checker should be asked to judge.  Kept to
  // a few thousand events so debug/sanitizer CI jobs stay fast; the
  // 10^4-event runs live in bench_checker / bench_stm_scaling.
  auto stm = make_backend("tl2");
  WorkloadOptions o;
  o.threads = 3;
  o.seed = 21;
  o.ops_per_thread = 120;
  const RecordedRun run = run_recorded_workload("bank_priv", *stm, o);
  EXPECT_TRUE(run.invariant_ok);
  EXPECT_GT(run.rec.trace.size(), 2000u);
  const ConformanceReport rep = check_conformance_windowed(run.rec.trace);
  EXPECT_GT(rep.windows, 4u) << "fences did not spread across the recording";
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str();
  EXPECT_EQ(rep.l_races, 0u);
  EXPECT_FALSE(rep.mixed_race);
  EXPECT_TRUE(rep.opaque_committed);
}

TEST(Record, CampaignRecordedJobGrid) {
  campaign::CampaignOptions opts;
  opts.litmus_jobs = false;
  opts.record_jobs = true;
  opts.record_threads = {1, 2};
  opts.record_ops = 4;
  opts.threads = 1;
  const campaign::CampaignResult serial = campaign::run_campaign(opts);
  ASSERT_EQ(serial.recorded.size(),
            workload_names().size() * backend_names().size() * 2);
  EXPECT_EQ(serial.mismatches, 0u);
  for (const campaign::RecordRow& row : serial.recorded) {
    SCOPED_TRACE(row.workload + "/" + row.backend);
    EXPECT_TRUE(row.ok());
    EXPECT_TRUE(row.wellformed);
    EXPECT_TRUE(row.opaque_committed);
  }

  // Scheduling-independent surface: a parallel campaign produces the same
  // signature (committed counts are fixed by workload x seed x threads).
  campaign::CampaignOptions par = opts;
  par.threads = 4;
  const campaign::CampaignResult parallel = campaign::run_campaign(par);
  EXPECT_EQ(campaign::verdict_signature(serial),
            campaign::verdict_signature(parallel));

  // Reports carry the rows.
  const std::string json = campaign::to_json(serial, "test");
  EXPECT_NE(json.find("\"recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"bank\""), std::string::npos);
  const std::string csv = campaign::to_csv(serial);
  EXPECT_NE(csv.find("rec:bank:tl2:t1,record,conformant,conformant,yes"),
            std::string::npos);
}

}  // namespace
}  // namespace mtx::record
