// §5 suborders and the Appendix C lemmas: hbe decomposition (Lemma C.1) and
// the alternative consistency characterization (Lemma C.2), checked on
// hand-built executions and on randomized consistent traces.
#include <gtest/gtest.h>

#include "ltrf/metatheory.hpp"
#include "model/suborders.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::analyze;
using model::ModelConfig;
using model::Relations;
using model::Suborders;

constexpr Loc X = 0, Y = 1;

Trace publication_exec() {
  TB b(2);
  b.w(0, X, 1, 1);                                   // 4 plain
  b.begin(0).w(0, Y, 1, 1).commit(0);                // 5..7
  b.begin(1).r(1, Y, 1, 1).commit(1);                // 8..10
  b.r(1, X, 1, 1);                                   // 11 plain
  return b.trace();
}

TEST(Suborders, PoTClassification) {
  const Trace t = publication_exec();
  const Relations rel = Relations::compute(t);
  const Suborders s = Suborders::compute(t, rel);

  // 4 = plain Wx, 6 = txn Wy (writing txn), 9 = txn Ry (read-only txn),
  // 11 = plain Rx.
  EXPECT_TRUE(s.po_T.test(4, 6));    // plain into a writing txn action
  EXPECT_FALSE(s.po_T.test(8, 9));   // same txn: excluded
  EXPECT_FALSE(s.po_T.test(4, 9));   // different threads: no po
  EXPECT_TRUE(s.poT_.test(9, 11));   // resolved txn action to plain
  EXPECT_FALSE(s.poT_.test(4, 6));   // source not transactional
  EXPECT_FALSE(s.poRW.test(4, 6));   // write -> write
  EXPECT_TRUE(s.poCon.test(4, 4) == false);
}

TEST(Suborders, PoRWAndPoCon) {
  TB b(2);
  b.r(0, X, 0, 0).w(0, Y, 1, 1).w(0, Y, 2, 2);
  const Relations rel = Relations::compute(b.trace());
  const Suborders s = Suborders::compute(b.trace(), rel);
  EXPECT_TRUE(s.poRW.test(4, 5));   // read before write (different locs ok)
  EXPECT_TRUE(s.poCon.test(5, 6));  // conflicting same-loc writes
  EXPECT_FALSE(s.poCon.test(4, 5)); // different locations
}

TEST(Suborders, SweIsExternalOnly) {
  const Trace t = publication_exec();
  const Relations rel = Relations::compute(t);
  const Suborders s = Suborders::compute(t, rel);
  // cwr from Wy (6) to Ry (9) is cross-thread: in swe.
  EXPECT_TRUE(s.swe.test(6, 9));
  // Intra-thread cwr/cww pairs would be removed; here all tx pairs are
  // cross-thread, so swe == (cwr|cww) restricted off po.
  s.swe.for_each([&](std::size_t a, std::size_t c) { EXPECT_FALSE(rel.po.test(a, c)); });
}

TEST(Suborders, HbeCarriesCrossThreadSynchronization) {
  const Trace t = publication_exec();
  const Relations rel = Relations::compute(t);
  const Suborders s = Suborders::compute(t, rel);
  // Wx (4) hbe Rx (11): po-T ; swe ; poT-.
  EXPECT_TRUE(s.hbe.test(4, 11));
}

TEST(LemmaC1, HoldsOnPublication) { EXPECT_TRUE(model::lemma_c1_holds(publication_exec())); }

TEST(LemmaC1, HoldsWithAbortedTxns) {
  TB b(2);
  b.begin(0).w(0, X, 1, 1).abort(0);
  b.begin(1).w(1, X, 2, 2).commit(1);
  b.r(1, X, 2, 2);
  EXPECT_TRUE(model::lemma_c1_holds(b.trace()));
}

TEST(LemmaC2, AgreesOnConsistentExec) {
  const Trace t = publication_exec();
  EXPECT_TRUE(model::consistent(t, ModelConfig::implementation()));
  EXPECT_TRUE(model::alt_consistent(t));
}

TEST(LemmaC2, AgreesOnInconsistentExec) {
  TB b(1);
  b.w(0, X, 1, 1).w(0, X, 2, 2).r(0, X, 1, 1);  // stale own-thread read
  EXPECT_FALSE(model::consistent(b.trace(), ModelConfig::implementation()));
  EXPECT_FALSE(model::alt_consistent(b.trace()));
}

// Randomized agreement: Lemma C.1 and C.2 on generated consistent traces.
class SubordersRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubordersRandom, LemmaC1OnRandomTraces) {
  Rng rng(GetParam());
  ltrf::RandomTraceParams params;
  const ModelConfig impl = ModelConfig::implementation();
  for (int i = 0; i < 20; ++i) {
    const Trace t = ltrf::random_consistent_trace(rng, params, impl);
    EXPECT_TRUE(model::lemma_c1_holds(t)) << t.str();
  }
}

TEST_P(SubordersRandom, LemmaC2OnRandomTraces) {
  Rng rng(GetParam() ^ 0xabcdef);
  ltrf::RandomTraceParams params;
  const ModelConfig impl = ModelConfig::implementation();
  for (int i = 0; i < 20; ++i) {
    const Trace t = ltrf::random_consistent_trace(rng, params, impl);
    ASSERT_TRUE(model::consistent(t, impl));
    EXPECT_TRUE(model::alt_consistent(t)) << t.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubordersRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

}  // namespace
}  // namespace mtx::test
