// TL2 backend unit tests: read/write/commit semantics, read-own-write,
// user aborts, conflict detection, opacity-style validation.
#include <gtest/gtest.h>

#include "stm/tl2.hpp"

namespace mtx::stm {
namespace {

TEST(Tl2, ReadWriteCommit) {
  Tl2Stm stm;
  Cell x(0), y(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 7);
    tx.write(y, 9);
  }));
  EXPECT_EQ(x.plain_load(), 7u);
  EXPECT_EQ(y.plain_load(), 9u);
  EXPECT_EQ(stm.stats().commits.load(), 1u);
}

TEST(Tl2, ReadSeesCommittedValue) {
  Tl2Stm stm;
  Cell x(5);
  word_t seen = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) { seen = tx.read(x); }));
  EXPECT_EQ(seen, 5u);
}

TEST(Tl2, ReadOwnWrite) {
  Tl2Stm stm;
  Cell x(1);
  word_t seen = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 42);
    seen = tx.read(x);
  }));
  EXPECT_EQ(seen, 42u);
}

TEST(Tl2, LazyVersioningBuffersUntilCommit) {
  Tl2Stm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 99);
    // Lazy: shared memory unchanged while the transaction is live.
    EXPECT_EQ(x.plain_load(), 0u);
  }));
  EXPECT_EQ(x.plain_load(), 99u);
}

TEST(Tl2, UserAbortDiscardsWrites) {
  Tl2Stm stm;
  Cell x(1);
  const bool committed = stm.atomically([&](auto& tx) {
    tx.write(x, 2);
    tx.user_abort();
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(x.plain_load(), 1u);
  EXPECT_EQ(stm.stats().user_aborts.load(), 1u);
  EXPECT_EQ(stm.stats().commits.load(), 0u);
}

TEST(Tl2, WriteThenOverwriteKeepsLast) {
  Tl2Stm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 1);
    tx.write(x, 2);
    tx.write(x, 3);
  }));
  EXPECT_EQ(x.plain_load(), 3u);
}

TEST(Tl2, SequentialTransactionsSeeEachOther) {
  Tl2Stm stm;
  Cell x(0);
  for (word_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(stm.atomically([&](auto& tx) {
      const word_t v = tx.read(x);
      tx.write(x, v + 1);
    }));
  }
  EXPECT_EQ(x.plain_load(), 10u);
}

TEST(Tl2, ConflictIsRetriedToSuccess) {
  // Force a conflict by bumping the clock and the orec between begin and
  // read: simplest deterministic way is two interleaved transactions on the
  // same cell driven manually.
  Tl2Stm stm;
  Cell x(0);
  int attempts = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    ++attempts;
    if (attempts == 1) {
      // Commit a competing write mid-flight, invalidating our snapshot.
      stm.atomically([&](auto& other) { other.write(x, 5); });
    }
    const word_t v = tx.read(x);
    tx.write(x, v + 1);
  }));
  EXPECT_EQ(x.plain_load(), 6u);
  EXPECT_GE(attempts, 2);
  EXPECT_GE(stm.stats().conflicts.load(), 1u);
}

TEST(Tl2, OpacityNoStaleReadAfterCompetingCommit) {
  // A transaction that read x before a competing commit must abort when it
  // later reads y written by that commit (no inconsistent snapshot).
  Tl2Stm stm;
  Cell x(0), y(0);
  int attempts = 0;
  word_t rx = 0, ry = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    ++attempts;
    rx = tx.read(x);
    if (attempts == 1)
      stm.atomically([&](auto& other) {
        other.write(x, 1);
        other.write(y, 1);
      });
    ry = tx.read(y);
  }));
  // The first attempt must have aborted; the retry sees both or neither.
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(rx, ry);
}

TEST(Tl2, QuiesceReturnsWhenIdle) {
  Tl2Stm stm;
  stm.quiesce();  // no transactions in flight: immediate
  EXPECT_EQ(stm.stats().fences.load(), 1u);
}

TEST(Tl2, StatsStringAndReset) {
  Tl2Stm stm;
  Cell x(0);
  stm.atomically([&](auto& tx) { tx.write(x, 1); });
  EXPECT_NE(stm.stats().str().find("commits=1"), std::string::npos);
  stm.stats().reset();
  EXPECT_EQ(stm.stats().commits.load(), 0u);
}

TEST(Tl2, TVarTypedAccess) {
  Tl2Stm stm;
  TVar<int> v(41);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { v.set(tx, v.get(tx) + 1); }));
  EXPECT_EQ(v.plain_get(), 42);
  TVar<double> d(1.5);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { d.set(tx, d.get(tx) * 2.0); }));
  EXPECT_DOUBLE_EQ(d.plain_get(), 3.0);
}

TEST(OrecTable, AddressHashingIsStable) {
  OrecTable t(8);
  int a = 0, b = 0;
  EXPECT_EQ(&t.for_addr(&a), &t.for_addr(&a));
  EXPECT_EQ(t.size(), 256u);
  (void)b;
}

TEST(OrecWord, Layout) {
  EXPECT_TRUE(orec_locked(make_locked(3)));
  EXPECT_EQ(orec_owner(make_locked(3)), 3u);
  EXPECT_FALSE(orec_locked(make_version(9)));
  EXPECT_EQ(orec_version(make_version(9)), 9u);
}

TEST(GlobalClock, Monotone) {
  GlobalClock c;
  const auto t0 = c.now();
  const auto t1 = c.advance();
  EXPECT_GT(t1, t0);
  EXPECT_EQ(c.now(), t1);
}

}  // namespace
}  // namespace mtx::stm
