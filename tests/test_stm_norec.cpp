// NOrec backend unit tests: value-based validation, lazy write-back under
// the global sequence lock, opacity behavior.
#include <gtest/gtest.h>

#include "stm/norec.hpp"

namespace mtx::stm {
namespace {

TEST(Norec, ReadWriteCommit) {
  NorecStm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { tx.write(x, 5); }));
  EXPECT_EQ(x.plain_load(), 5u);
}

TEST(Norec, LazyWriteBack) {
  NorecStm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 9);
    EXPECT_EQ(x.plain_load(), 0u);  // buffered
  }));
  EXPECT_EQ(x.plain_load(), 9u);
}

TEST(Norec, ReadOwnWrite) {
  NorecStm stm;
  Cell x(1);
  word_t seen = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 7);
    seen = tx.read(x);
  }));
  EXPECT_EQ(seen, 7u);
}

TEST(Norec, UserAbortDiscards) {
  NorecStm stm;
  Cell x(3);
  EXPECT_FALSE(stm.atomically([&](auto& tx) {
    tx.write(x, 4);
    tx.user_abort();
  }));
  EXPECT_EQ(x.plain_load(), 3u);
}

TEST(Norec, SequentialIncrements) {
  NorecStm stm;
  Cell x(0);
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(stm.atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); }));
  EXPECT_EQ(x.plain_load(), 20u);
  EXPECT_EQ(stm.stats().commits.load(), 20u);
}

TEST(Norec, ValueValidationRescuesSilentRereads) {
  // A competing commit that writes the SAME value back does not abort a
  // NOrec reader (value-based validation), unlike orec-based TL2.
  NorecStm stm;
  Cell x(1), y(0);
  int attempts = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    ++attempts;
    const word_t rx = tx.read(x);
    if (attempts == 1)
      stm.atomically([&](auto& other) { other.write(x, rx); });  // same value
    (void)tx.read(y);
  }));
  EXPECT_EQ(attempts, 1);  // silent re-write: no retry needed
}

TEST(Norec, ConflictingCommitForcesRetry) {
  NorecStm stm;
  Cell x(0), y(0);
  int attempts = 0;
  word_t rx = 0, ry = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    ++attempts;
    rx = tx.read(x);
    if (attempts == 1)
      stm.atomically([&](auto& other) {
        other.write(x, 1);
        other.write(y, 1);
      });
    ry = tx.read(y);
  }));
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(rx, ry);  // consistent snapshot
}

TEST(Norec, QuiesceIdle) {
  NorecStm stm;
  stm.quiesce();
  EXPECT_EQ(stm.stats().fences.load(), 1u);
}

TEST(Norec, TVar) {
  NorecStm stm;
  TVar<int> v(10);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { v.set(tx, v.get(tx) * 4); }));
  EXPECT_EQ(v.plain_get(), 40);
}

}  // namespace
}  // namespace mtx::stm
