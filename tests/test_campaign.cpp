// Campaign engine determinism: parallel catalog sweeps must produce
// byte-identical verdicts to the serial reference path, including under
// per-program frontier splitting and dedup sharding; plus unit coverage for
// the work-stealing pool, the odometer slicing, and the GraphEnum subspace
// partition those guarantees rest on.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "litmus/catalog.hpp"
#include "ltrf/semantics.hpp"
#include "substrate/enumerate.hpp"
#include "substrate/sharded_set.hpp"
#include "substrate/threading.hpp"

namespace mtx {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignResult;

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, ParallelMapIsIndexOrdered) {
  ThreadPool pool(4);
  const std::vector<int> r = parallel_map<int>(pool, 100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(r.size(), 100u);
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_EQ(r[i], static_cast<int>(i * i));
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 50 * 64);
}

TEST(ThreadPool, WorkStealingDrainsUnbalancedLoad) {
  // One long task per queue-slot cluster; the rest tiny.  All must finish.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done, i] {
      if (i % 50 == 0) {
        volatile std::uint64_t x = 0;
        for (int k = 0; k < 2'000'000; ++k) x += static_cast<std::uint64_t>(k);
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ParallelMapRethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_map<int>(pool, 8,
                                 [](std::size_t i) -> int {
                                   if (i == 5) throw std::runtime_error("boom");
                                   return 0;
                                 }),
               std::runtime_error);
}

// --- Odometer slicing --------------------------------------------------------

TEST(ProductSlice, PartitionCoversProductExactlyOnce) {
  const std::vector<std::size_t> radices = {3, 4, 2, 5};
  std::vector<std::vector<std::size_t>> full;
  for_each_product(radices, [&](const std::vector<std::size_t>& c) {
    full.push_back(c);
    return true;
  });
  const std::uint64_t total = product_size(radices);
  ASSERT_EQ(full.size(), total);
  for (std::uint64_t chunk : {1ull, 7ull, 40ull, 1000ull}) {
    std::vector<std::vector<std::size_t>> sliced;
    for (std::uint64_t b = 0; b < total; b += chunk)
      for_each_product_slice(radices, b, b + chunk,
                             [&](const std::vector<std::size_t>& c) {
                               sliced.push_back(c);
                               return true;
                             });
    EXPECT_EQ(sliced, full) << "chunk=" << chunk;
  }
}

TEST(ProductSlice, EmptyRadixListYieldsOneTuple) {
  std::size_t calls = 0;
  for_each_product_slice({}, 0, UINT64_MAX, [&](const std::vector<std::size_t>& c) {
    EXPECT_TRUE(c.empty());
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 1u);
}

// --- Sharded dedup -----------------------------------------------------------

TEST(ShardedKeySet, ConcurrentInsertsDedupExactly) {
  ShardedKeySet set(8);
  std::atomic<int> wins{0};
  run_team(8, [&](std::size_t) {
    for (int k = 0; k < 500; ++k)
      if (set.insert("key-" + std::to_string(k))) wins.fetch_add(1);
  });
  EXPECT_EQ(wins.load(), 500);
  EXPECT_EQ(set.size(), 500u);
}

// --- GraphEnum subspace partition -------------------------------------------

TEST(GraphEnumSubspaces, PartitionReproducesOutcomesAndCounts) {
  // A couple of catalog programs with non-trivial candidate spaces.
  for (const char* id : {"E01", "E23"}) {
    const lit::LitmusTest* test = nullptr;
    for (const lit::LitmusTest& t : lit::catalog())
      if (t.id == id) test = &t;
    ASSERT_NE(test, nullptr) << id;
    const model::ModelConfig cfg = lit::config_by_name(test->expected[0].config);

    lit::GraphEnum whole(test->program, cfg);
    const lit::OutcomeSet full = whole.outcomes();
    ASSERT_FALSE(whole.stats().truncated);

    for (std::uint64_t chunk : {1ull, 3ull, 64ull}) {
      lit::OutcomeSet merged;
      lit::EnumStats stats;
      lit::GraphEnum splitter(test->program, cfg);
      for (const auto& sub : splitter.subspaces(chunk)) {
        lit::GraphEnum shard(test->program, cfg);
        shard.for_each(sub, [&](const lit::Execution& ex) {
          lit::Outcome o;
          o.mem.resize(static_cast<std::size_t>(test->program.num_locs));
          for (model::Loc x = 0; x < test->program.num_locs; ++x)
            o.mem[static_cast<std::size_t>(x)] = ex.trace.final_value(x);
          o.regs = ex.regs;
          merged.insert(std::move(o));
        });
        stats += shard.stats();
      }
      EXPECT_EQ(merged.str(), full.str()) << id << " chunk=" << chunk;
      EXPECT_EQ(stats.consistent, whole.stats().consistent) << id << " chunk=" << chunk;
      EXPECT_EQ(stats.candidates, whole.stats().candidates) << id << " chunk=" << chunk;
    }
  }
}

// --- Semantics: parallel trace enumeration ----------------------------------

TEST(SemanticsParallel, FrontierSplitMatchesSerialByteForByte) {
  ThreadPool pool(4);
  std::size_t checked = 0;
  for (const lit::LitmusTest& t : lit::catalog()) {
    if (checked >= 3) break;  // a few representative programs keep this fast
    if (t.program.threads.size() > 2) continue;
    ++checked;
    const model::ModelConfig cfg = lit::config_by_name(t.expected[0].config);
    ltrf::Semantics sem(t.program, cfg);
    const std::vector<model::Trace>& serial = sem.traces();
    for (std::size_t depth : {1u, 2u, 4u, 64u}) {
      for (std::size_t shards : {1u, 16u}) {
        ltrf::ParallelEnumOptions popts;
        popts.split_depth = depth;
        popts.dedup_shards = shards;
        ltrf::Semantics sem2(t.program, cfg);
        const std::vector<model::Trace> par = sem2.traces_parallel(pool, popts);
        ASSERT_EQ(par.size(), serial.size())
            << t.id << " depth=" << depth << " shards=" << shards;
        for (std::size_t i = 0; i < par.size(); ++i)
          EXPECT_EQ(ltrf::Semantics::key(par[i]), ltrf::Semantics::key(serial[i]))
              << t.id << " depth=" << depth << " i=" << i;
      }
    }
  }
  EXPECT_GE(checked, 1u);
}

// --- Full campaign determinism ----------------------------------------------

TEST(Campaign, ParallelSweepIsByteIdenticalToSerial) {
  CampaignOptions serial;
  serial.threads = 1;
  const CampaignResult rs = campaign::run_campaign(serial);
  EXPECT_EQ(rs.mismatches, 0u);

  CampaignOptions parallel;
  parallel.threads = 4;
  const CampaignResult rp = campaign::run_campaign(parallel);
  EXPECT_EQ(campaign::verdict_signature(rs), campaign::verdict_signature(rp));
  EXPECT_EQ(campaign::to_csv(rs), campaign::to_csv(rp));
}

TEST(Campaign, SplitProgramsSweepIsByteIdenticalToSerial) {
  CampaignOptions serial;
  serial.threads = 1;
  const CampaignResult rs = campaign::run_campaign(serial);

  CampaignOptions split;
  split.threads = 4;
  split.split_programs = true;
  split.rf_chunk = 16;  // small chunks force real sharding
  const CampaignResult rx = campaign::run_campaign(split);
  EXPECT_GT(rx.shard_count, rs.jobs.size());
  EXPECT_EQ(campaign::verdict_signature(rs), campaign::verdict_signature(rx));
  EXPECT_EQ(campaign::to_csv(rs), campaign::to_csv(rx));
}

TEST(Campaign, ReportsCarryRowsAndMetadata) {
  CampaignOptions opts;
  opts.threads = 2;
  const CampaignResult r = campaign::run_campaign(opts);
  const std::string json = campaign::to_json(r, "unit");
  EXPECT_NE(json.find("\"label\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": ["), std::string::npos);
  EXPECT_NE(json.find("\"E01\""), std::string::npos);
  const std::string csv = campaign::to_csv(r);
  // Header plus one line per row.
  std::size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, r.jobs.size() + 1);
}

}  // namespace
}  // namespace mtx
