// The differential fuzz pipeline:
//
//   - determinism pins: same fuzz seed ⇒ byte-identical programs, schedule
//     decision streams, serial executions, and campaign CSV rows;
//   - interpreter ground truth: serial SGL execution of catalog litmus
//     programs reproduces outcomes the model enumerators (GraphEnum and
//     ltrf::Semantics) allow;
//   - a healthy program × backend grid is fully conformant;
//   - an injected bug (interpreter silently skips quiescence fences) is
//     caught deterministically and auto-shrunk to a tiny reproducer;
//   - the greedy shrinker minimizes against a syntactic oracle;
//   - artifact writers refuse to clobber git-tracked paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/interpreter.hpp"
#include "fuzz/shrink.hpp"
#include "litmus/catalog.hpp"
#include "ltrf/semantics.hpp"
#include "stm/backend.hpp"

namespace mtx {
namespace {

lit::RandomProgramParams fuzz_params() {
  lit::RandomProgramParams p;
  p.fence_percent = 25;
  return p;
}

// ----- determinism pins -------------------------------------------------

TEST(FuzzDeterminism, SameSeedSamePrograms) {
  const auto a = fuzz::fuzz_programs(42, 6, fuzz_params());
  const auto b = fuzz::fuzz_programs(42, 6, fuzz_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(lit::to_source(a[i]), lit::to_source(b[i]));
  const auto c = fuzz::fuzz_programs(43, 6, fuzz_params());
  EXPECT_NE(lit::to_source(a[0]), lit::to_source(c[0]));
}

TEST(FuzzDeterminism, PerturberDecisionStreamIsSeedPure) {
  const auto a = fuzz::SchedulePerturber::decision_preview(5, 300, 30);
  const auto b = fuzz::SchedulePerturber::decision_preview(5, 300, 30);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, fuzz::SchedulePerturber::decision_preview(6, 300, 30));
  // yield_percent 0 disables perturbation entirely.
  for (std::uint8_t d : fuzz::SchedulePerturber::decision_preview(5, 100, 0))
    EXPECT_EQ(d, 0);
}

TEST(FuzzDeterminism, SerialInterpretIsReproducible) {
  const auto progs = fuzz::fuzz_programs(3, 1, fuzz_params());
  fuzz::InterpretOptions opts;
  opts.serial = true;
  opts.sched_seed = 17;
  auto stm1 = stm::make_backend("sgl");
  const auto r1 = fuzz::interpret(progs[0], *stm1, opts);
  auto stm2 = stm::make_backend("sgl");
  const auto r2 = fuzz::interpret(progs[0], *stm2, opts);
  EXPECT_EQ(r1.outcome, r2.outcome);
  EXPECT_EQ(r1.sched_decisions, r2.sched_decisions);
  EXPECT_TRUE(r1.path_ok) << r1.path_error;
}

TEST(FuzzDeterminism, CampaignFuzzCsvStable) {
  campaign::CampaignOptions opts;
  opts.litmus_jobs = false;
  opts.fuzz_count = 3;
  opts.fuzz_seed = 7;
  opts.fuzz_sched_rounds = 2;
  opts.threads = 1;
  const std::string a = campaign::to_csv(campaign::run_campaign(opts));
  const std::string b = campaign::to_csv(campaign::run_campaign(opts));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("fuzz:fz7-0:tl2"), std::string::npos);
}

// ----- interpreter ground truth -----------------------------------------

bool uses_dynamic_or_while(const lit::Block& b) {
  for (const lit::Stmt& s : b) {
    if (s.kind == lit::Stmt::Kind::While) return true;
    if ((s.kind == lit::Stmt::Kind::Read || s.kind == lit::Stmt::Kind::Write ||
         s.kind == lit::Stmt::Kind::Fence) &&
        s.loc.dynamic())
      return true;
    if (uses_dynamic_or_while(s.body) || uses_dynamic_or_while(s.else_body))
      return true;
  }
  return false;
}

TEST(FuzzInterpreter, SerialSglReproducesModelOutcomesOnCatalog) {
  // Serial execution is one specific interleaving; its outcome must be in
  // the model's allowed set, and its final memory must appear among the
  // final states of ltrf::Semantics' consistent traces.
  const auto cfg = model::ModelConfig::implementation();
  std::size_t checked = 0;
  for (const lit::LitmusTest& t : lit::catalog()) {
    if (checked >= 5) break;
    if (t.program.threads.size() > 3) continue;
    bool skip = false;
    for (const lit::Block& b : t.program.threads)
      skip = skip || uses_dynamic_or_while(b);
    if (skip) continue;

    auto stm = stm::make_backend("sgl");
    fuzz::InterpretOptions iopts;
    iopts.serial = true;
    const fuzz::InterpretResult run = fuzz::interpret(t.program, *stm, iopts);
    EXPECT_TRUE(run.path_ok) << t.id << ": " << run.path_error;

    lit::GraphEnum e(t.program, cfg);
    const lit::OutcomeSet allowed = e.outcomes();
    ASSERT_FALSE(e.stats().truncated) << t.id;
    EXPECT_TRUE(allowed.outcomes().count(run.outcome))
        << t.id << ": serial SGL outcome " << run.outcome.str()
        << " not model-allowed";

    ltrf::Semantics sem(t.program, cfg);
    bool mem_found = false;
    for (const model::Trace& tr : sem.traces()) {
      bool all = true;
      for (model::Loc x = 0; x < t.program.num_locs && all; ++x)
        all = tr.final_value(x) ==
              run.outcome.mem[static_cast<std::size_t>(x)];
      if (all) {
        mem_found = true;
        break;
      }
    }
    ASSERT_FALSE(sem.truncated()) << t.id;
    EXPECT_TRUE(mem_found)
        << t.id << ": final memory not among Semantics traces";
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

// ----- healthy grid ------------------------------------------------------

TEST(FuzzConformance, HealthyGridIsConformant) {
  const auto progs = fuzz::fuzz_programs(5, 5, fuzz_params());
  fuzz::FuzzOptions fopts;
  fopts.sched_rounds = 2;
  for (std::size_t i = 0; i < progs.size(); ++i) {
    const fuzz::FuzzProgram fp = fuzz::prepare_fuzz_program(
        progs[i], 5, static_cast<int>(i), fopts.enum_budget);
    for (const std::string& b : stm::backend_names()) {
      const fuzz::FuzzRow row = fuzz::run_fuzz_job(fp, b, fopts);
      EXPECT_TRUE(row.ok())
          << fp.id << " on " << b << " failed (" << row.failure << ")\n"
          << row.repro << "\n"
          << lit::to_source(fp.program);
      EXPECT_EQ(row.runs, 2u);
    }
  }
}

// ----- injected bug: skipped quiescence fence ---------------------------

TEST(FuzzInjectedBug, SkippedFenceIsCaughtAndShrunk) {
  // Mixed privatization-shaped program: every control path of thread 0
  // carries the fence, so an interpreter that drops fences can never match
  // a path — the bug is caught structurally on every schedule.
  lit::Program p;
  p.name = "fence_bug";
  p.num_locs = 2;
  p.add_thread({lit::atomic({lit::write(lit::at(0), 1)}), lit::qfence(0),
                lit::read(0, lit::at(1)), lit::write(lit::at(1), 2)});
  p.add_thread({lit::atomic({lit::read(0, lit::at(0)),
                             lit::write(lit::at(1), 1)}),
                lit::read(1, lit::at(0))});
  p.add_thread({lit::atomic({lit::write(lit::at(0), 2)})});

  fuzz::FuzzOptions fopts;
  fopts.fault_skip_fence = true;
  fopts.sched_rounds = 2;
  const fuzz::FuzzProgram fp =
      fuzz::prepare_fuzz_program(p, 99, 0, fopts.enum_budget);
  const fuzz::FuzzRow row = fuzz::run_fuzz_job(fp, "tl2", fopts);

  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.failure, "path");
  EXPECT_FALSE(row.repro.empty());
  // The acceptance bar: a reproducer of at most 3 threads / 8 statements.
  EXPECT_LE(row.shrunk_threads, 3u);
  EXPECT_LE(row.shrunk_stmts, 8u);
  EXPECT_NE(row.repro.find("qfence"), std::string::npos) << row.repro;
  // Greedy minimization on this bug reaches the 1-thread, 1-fence core.
  EXPECT_EQ(row.shrunk_threads, 1u);
  EXPECT_EQ(row.shrunk_stmts, 1u);
}

TEST(FuzzInjectedBug, HealthyRunOfSameProgramConforms) {
  lit::Program p;
  p.name = "fence_ok";
  p.num_locs = 2;
  p.add_thread({lit::atomic({lit::write(lit::at(0), 1)}), lit::qfence(0),
                lit::read(0, lit::at(1))});
  p.add_thread({lit::atomic({lit::read(0, lit::at(0)),
                             lit::write(lit::at(1), 1)})});
  fuzz::FuzzOptions fopts;
  const fuzz::FuzzProgram fp =
      fuzz::prepare_fuzz_program(p, 99, 1, fopts.enum_budget);
  for (const std::string& b : stm::backend_names()) {
    const fuzz::FuzzRow row = fuzz::run_fuzz_job(fp, b, fopts);
    EXPECT_TRUE(row.ok()) << b << ": " << row.failure << "\n" << row.repro;
  }
}

// ----- shrinker ----------------------------------------------------------

bool block_has_atomic_write(const lit::Block& b) {
  for (const lit::Stmt& s : b)
    if (s.kind == lit::Stmt::Kind::Atomic)
      for (const lit::Stmt& inner : s.body)
        if (inner.kind == lit::Stmt::Kind::Write) return true;
  return false;
}

TEST(FuzzShrink, GreedyMinimizesToOracleWitness) {
  Rng rng(12);
  lit::RandomProgramParams params;
  params.threads = 3;
  params.stmts_per_thread = 4;
  params.atomic_percent = 70;
  lit::Program p = lit::random_program(rng, params);
  auto oracle = [](const lit::Program& q) {
    for (const lit::Block& b : q.threads)
      if (block_has_atomic_write(b)) return true;
    return false;
  };
  ASSERT_TRUE(oracle(p));
  const fuzz::ShrinkResult sr = fuzz::shrink(p, oracle);
  EXPECT_TRUE(oracle(sr.program));
  EXPECT_EQ(sr.program.threads.size(), 1u);
  EXPECT_EQ(lit::top_level_stmts(sr.program), 1u);
  ASSERT_EQ(sr.program.threads[0][0].kind, lit::Stmt::Kind::Atomic);
  EXPECT_EQ(sr.program.threads[0][0].body.size(), 1u);
  EXPECT_GT(sr.steps, 0u);
}

TEST(FuzzShrink, KeepsMalformednessOut) {
  // A program whose only failing core contains an abort: every shrink
  // candidate must stay structurally legal (abort never escapes atomic).
  lit::Program p;
  p.num_locs = 1;
  p.add_thread({lit::write(lit::at(0), 3),
                lit::atomic({lit::write(lit::at(0), 1), lit::abort_stmt()}),
                lit::read(0, lit::at(0))});
  auto contains_abort = [](const lit::Program& q) {
    for (const lit::Block& b : q.threads)
      for (const lit::Stmt& s : b)
        if (s.kind == lit::Stmt::Kind::Atomic)
          for (const lit::Stmt& inner : s.body)
            if (inner.kind == lit::Stmt::Kind::Abort) return true;
    return false;
  };
  const fuzz::ShrinkResult sr = fuzz::shrink(p, contains_abort);
  EXPECT_TRUE(contains_abort(sr.program));
  EXPECT_EQ(lit::top_level_stmts(sr.program), 1u);
  // And the shrunk program still interprets cleanly.
  auto stm = stm::make_backend("sgl");
  fuzz::InterpretOptions iopts;
  iopts.serial = true;
  EXPECT_NO_THROW(fuzz::interpret(sr.program, *stm, iopts));
}

// ----- artifact guard ----------------------------------------------------

TEST(ArtifactGuard, RefusesTrackedPaths) {
  // tests/ lives one level below the repo root; README.md is tracked.
  const std::string here = __FILE__;
  const auto slash = here.find_last_of('/');
  ASSERT_NE(slash, std::string::npos);
  const std::string root = here.substr(0, here.find_last_of('/', slash - 1));
  const std::string readme = root + "/README.md";
  if (!campaign::is_git_tracked(readme))
    GTEST_SKIP() << "not running inside the git checkout";
  EXPECT_FALSE(campaign::write_file(readme, "clobbered\n"));
  // The refusal happens before any write: the file is intact.
  std::FILE* f = std::fopen(readme.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf).rfind("clobbered", 0), std::string::npos);
}

TEST(ArtifactGuard, UntrackedPathsStillWrite) {
  const std::string path = "test_fuzz_artifact_guard.tmp";
  EXPECT_FALSE(campaign::is_git_tracked(path));
  EXPECT_TRUE(campaign::write_file(path, "ok\n"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtx
