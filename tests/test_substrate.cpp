// Unit tests for the support library: rationals, bit relations, digraphs,
// enumeration, RNG, statistics, formatting, threading.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>

#include "substrate/bitrel.hpp"
#include "substrate/digraph.hpp"
#include "substrate/enumerate.hpp"
#include "substrate/format.hpp"
#include "substrate/rational.hpp"
#include "substrate/rng.hpp"
#include "substrate/stats.hpp"
#include "substrate/threading.hpp"

namespace mtx {
namespace {

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, MidpointStrictlyBetween) {
  const Rational a(1), b(2);
  const Rational m = Rational::midpoint(a, b);
  EXPECT_LT(a, m);
  EXPECT_LT(m, b);
  // Repeated midpoints keep fitting (density of Q).
  Rational lo = a, hi = m;
  for (int i = 0; i < 10; ++i) {
    Rational mid = Rational::midpoint(lo, hi);
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
    hi = mid;
  }
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(3, 2).str(), "3/2");
}

TEST(BitRel, SetTestCount) {
  BitRel r(70);  // cross word boundary
  EXPECT_FALSE(r.test(0, 69));
  r.set(0, 69);
  r.set(69, 0);
  EXPECT_TRUE(r.test(0, 69));
  EXPECT_EQ(r.count(), 2u);
  r.set(0, 69, false);
  EXPECT_EQ(r.count(), 1u);
}

TEST(BitRel, UnionIntersectionDifference) {
  BitRel a(4), b(4);
  a.set(0, 1);
  a.set(1, 2);
  b.set(1, 2);
  b.set(2, 3);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a - b).count(), 1u);
  EXPECT_TRUE((a - b).test(0, 1));
}

TEST(BitRel, Compose) {
  BitRel a(4), b(4);
  a.set(0, 1);
  b.set(1, 2);
  b.set(1, 3);
  const BitRel c = a.compose(b);
  EXPECT_TRUE(c.test(0, 2));
  EXPECT_TRUE(c.test(0, 3));
  EXPECT_EQ(c.count(), 2u);
}

TEST(BitRel, TransitiveClosure) {
  BitRel r(5);
  r.set(0, 1);
  r.set(1, 2);
  r.set(2, 3);
  const BitRel c = r.transitive_closure();
  EXPECT_TRUE(c.test(0, 3));
  EXPECT_FALSE(c.test(3, 0));
  EXPECT_TRUE(c.is_irreflexive());
}

TEST(BitRel, AcyclicityDetectsCycle) {
  BitRel r(3);
  r.set(0, 1);
  r.set(1, 2);
  EXPECT_TRUE(r.is_acyclic());
  r.set(2, 0);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(BitRel, AcyclicityDetectsSelfLoop) {
  BitRel r(2);
  r.set(1, 1);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(BitRel, OrRowReportsChange) {
  BitRel a(70), b(70);
  b.set(1, 0);
  b.set(1, 69);
  EXPECT_TRUE(a.or_row(0, b, 1));
  EXPECT_TRUE(a.test(0, 0));
  EXPECT_TRUE(a.test(0, 69));
  EXPECT_FALSE(a.or_row(0, b, 1));  // idempotent
  // Self-aliased OR (row into itself) is a no-op.
  EXPECT_FALSE(b.or_row(1, b, 1));
}

TEST(BitRel, ReachableFromMatchesClosureRow) {
  BitRel r(6);
  r.set(0, 1);
  r.set(1, 2);
  r.set(2, 0);  // cycle through 0
  r.set(2, 4);
  r.set(5, 4);
  const BitRel c = r.transitive_closure();
  const auto reach = r.reachable_from(0);
  std::set<std::size_t> got(reach.begin(), reach.end());
  std::set<std::size_t> want;
  for (std::size_t b = 0; b < 6; ++b)
    if (c.test(0, b)) want.insert(b);
  EXPECT_EQ(got, want);
  EXPECT_TRUE(got.count(0));  // on a cycle, a reaches itself
  EXPECT_TRUE(r.reachable_from(3).empty());
}

TEST(BitRel, SubsetAndTranspose) {
  BitRel a(3), b(3);
  a.set(0, 1);
  b.set(0, 1);
  b.set(1, 2);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.transposed().test(1, 0));
}

TEST(BitRel, TopologicalOrder) {
  BitRel r(4);
  r.set(2, 0);
  r.set(0, 1);
  r.set(1, 3);
  const auto order = r.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[3]);
  r.set(3, 2);  // cycle
  EXPECT_TRUE(r.topological_order().empty());
}

TEST(BitRel, FilteredAndRestricted) {
  BitRel r(4);
  r.set(0, 1);
  r.set(2, 3);
  const BitRel f = r.filtered([](std::size_t a, std::size_t) { return a == 0; });
  EXPECT_EQ(f.count(), 1u);
  std::vector<bool> mask = {true, true, false, false};
  EXPECT_EQ(r.restricted(mask).count(), 1u);
}

TEST(Digraph, TopoAndCycle) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.has_cycle());
  auto order = g.topo_order();
  ASSERT_TRUE(order.has_value());
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.topo_order().has_value());
}

TEST(Digraph, Sccs) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto sccs = g.sccs();
  std::size_t big = 0;
  for (const auto& c : sccs) big = std::max(big, c.size());
  EXPECT_EQ(big, 3u);
  EXPECT_EQ(sccs.size(), 3u);
}

TEST(Digraph, Reachability) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto seen = g.reachable_from(0);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
  EXPECT_FALSE(seen[0]);  // not on a cycle
}

TEST(Enumerate, ProductCoversAllTuples) {
  std::set<std::vector<std::size_t>> seen;
  for_each_product({2, 3}, [&](const std::vector<std::size_t>& c) {
    seen.insert(c);
    return true;
  });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Enumerate, EmptyRadixIsEmptyProduct) {
  int calls = 0;
  for_each_product({2, 0}, [&](const std::vector<std::size_t>&) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 0);
}

TEST(Enumerate, NoRadicesCallsOnce) {
  int calls = 0;
  for_each_product({}, [&](const std::vector<std::size_t>&) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Enumerate, EarlyStop) {
  int calls = 0;
  const bool complete = for_each_product({10}, [&](const std::vector<std::size_t>&) {
    return ++calls < 3;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(calls, 3);
}

TEST(Enumerate, Permutations) {
  int calls = 0;
  for_each_permutation(4, [&](const std::vector<std::size_t>&) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 24);
}

TEST(Enumerate, ProductSizeSaturates) {
  EXPECT_EQ(product_size({3, 4}), 12u);
  EXPECT_EQ(product_size({0, 4}), 0u);
  std::vector<std::size_t> huge(11, 1u << 20);
  EXPECT_EQ(product_size(huge), std::numeric_limits<std::uint64_t>::max());
}

TEST(Enumerate, Budget) {
  Budget b(3);
  EXPECT_TRUE(b.spend());
  EXPECT_TRUE(b.spend(2));
  EXPECT_FALSE(b.spend());
  EXPECT_TRUE(b.exhausted());
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= v == -2;
    hi |= v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, WelfordMeanVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, Histogram) {
  Histogram h(0, 10, 5);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < h.buckets(); ++b) EXPECT_EQ(h.bucket_count(b), 2u);
  h.add(-5);   // clamps low
  h.add(100);  // clamps high
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.bucket_count(4), 3u);
}

TEST(Format, TableAlignsColumns) {
  Table t({"name", "n"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("alpha | 1"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(Format, Fixed) { EXPECT_EQ(fixed(3.14159, 2), "3.14"); }

TEST(Threading, TeamRunsAllThreads) {
  std::atomic<int> sum{0};
  run_team(8, [&](std::size_t tid) { sum += static_cast<int>(tid); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(Threading, BarrierReleasesTogether) {
  constexpr std::size_t n = 4;
  SpinBarrier barrier(n);
  std::atomic<int> before{0}, after{0};
  run_team(n, [&](std::size_t) {
    before.fetch_add(1);
    barrier.arrive_and_wait();
    // Everyone must have arrived before anyone proceeds.
    EXPECT_EQ(before.load(), static_cast<int>(n));
    after.fetch_add(1);
    barrier.arrive_and_wait();
    EXPECT_EQ(after.load(), static_cast<int>(n));
  });
}

TEST(Threading, HwThreadsClamped) {
  EXPECT_GE(hw_threads(), 1u);
  EXPECT_LE(hw_threads(4), 4u);
}

TEST(LatencyHist, BucketGeometryIsContiguousAndOrdered) {
  // Every value maps into a bucket whose [lower, upper] range contains it,
  // and bucket indices are monotone in the value.
  std::size_t prev = 0;
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull, 100ull,
                          1023ull, 1024ull, 123456789ull, ~0ull}) {
    const std::size_t i = LatencyHist::bucket_of(v);
    EXPECT_LE(LatencyHist::bucket_lower(i), v) << v;
    EXPECT_GE(LatencyHist::bucket_upper(i), v) << v;
    EXPECT_GE(i, prev) << v;
    prev = i;
  }
  EXPECT_LT(LatencyHist::bucket_of(~0ull), LatencyHist::kBuckets);
  // Exact unit buckets below 2^kSubBits.
  for (std::uint64_t v = 0; v < LatencyHist::kSub; ++v)
    EXPECT_EQ(LatencyHist::bucket_of(v), v);
}

TEST(LatencyHist, QuantilesMatchSortedVectorOracle) {
  Rng rng(404);
  LatencyHist h;
  std::vector<double> oracle;
  // Latency-shaped sample: a lognormal-ish body plus a heavy tail.
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v = 100 + rng.below(10000);
    if (rng.chance(1, 50)) v *= 64;  // tail
    h.add(v);
    oracle.push_back(static_cast<double>(v));
  }
  EXPECT_EQ(h.count(), 20000u);
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = percentile(oracle, q * 100.0);
    const auto approx = static_cast<double>(h.quantile(q));
    // Log-scale buckets with 16 sub-buckets per octave bound the relative
    // error by half a sub-bucket width (~3.1%); allow 5% for interpolation
    // differences with the oracle's definition.
    EXPECT_NEAR(approx, exact, exact * 0.05) << q;
  }
  // Edge quantiles land in the min/max values' own buckets.
  EXPECT_GE(h.quantile(0.0), LatencyHist::bucket_lower(LatencyHist::bucket_of(h.min())));
  EXPECT_LE(h.quantile(0.0), LatencyHist::bucket_upper(LatencyHist::bucket_of(h.min())));
  EXPECT_LE(h.quantile(1.0), LatencyHist::bucket_upper(LatencyHist::bucket_of(h.max())));
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
  EXPECT_EQ(LatencyHist().quantile(0.5), 0u);  // empty
}

TEST(LatencyHist, MergeEqualsWholeAndTracksMinMaxMean) {
  Rng rng(77);
  LatencyHist whole, first, second;
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1 << 20);
    whole.add(v);
    (i % 2 ? first : second).add(v);
    sum += static_cast<double>(v);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), whole.count());
  EXPECT_EQ(first.min(), whole.min());
  EXPECT_EQ(first.max(), whole.max());
  for (double q : {0.25, 0.5, 0.75, 0.99})
    EXPECT_EQ(first.quantile(q), whole.quantile(q));
  EXPECT_NEAR(whole.mean(), sum / 5000.0, 1e-6);
}

TEST(LatencyHist, CountMeanMaxExactOracle) {
  // count/mean/min/max are tracked outside the bucket array, so they are
  // EXACT — pin them against hand-computed values, not bucket tolerances.
  LatencyHist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (std::uint64_t v : {7ull, 100ull, 3ull, 1000000ull, 90ull}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_NEAR(h.mean(), (7.0 + 100.0 + 3.0 + 1000000.0 + 90.0) / 5.0, 1e-9);
}

TEST(LatencyHist, ToJsonCarriesTheExactFields) {
  LatencyHist h;
  for (std::uint64_t v = 1; v <= 4; ++v) h.add(v);  // mean = 2.5, exact
  const std::string j = h.to_json();
  EXPECT_NE(j.find("\"count\": 4"), std::string::npos) << j;
  EXPECT_NE(j.find("\"mean_ns\": 2.5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"min_ns\": 1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"max_ns\": 4"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p50_ns\": " + std::to_string(h.p50())),
            std::string::npos) << j;
  EXPECT_NE(j.find("\"p95_ns\": " + std::to_string(h.p95())),
            std::string::npos) << j;
  EXPECT_NE(j.find("\"p99_ns\": " + std::to_string(h.p99())),
            std::string::npos) << j;
  // Balanced braces, object-shaped.
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(Zipfian, DeterministicPerSeedAndInRange) {
  const Zipfian z(100, 0.99);
  Rng a(12), b(12), c(13);
  std::vector<std::uint64_t> sa, sb, sc;
  for (int i = 0; i < 1000; ++i) {
    sa.push_back(z.next(a));
    sb.push_back(z.next(b));
    sc.push_back(z.next(c));
  }
  EXPECT_EQ(sa, sb);        // same seed, identical stream
  EXPECT_NE(sa, sc);        // different seed, different stream
  for (std::uint64_t r : sa) EXPECT_LT(r, 100u);
}

TEST(Zipfian, FrequenciesTrackTheExactPmf) {
  // Chi-square-ish sanity: observed rank frequencies against the exact
  // zipf(θ) pmf over the head of the distribution.  The statistic is
  // deterministic per seed, so the generous bound cannot flake.
  constexpr std::uint64_t kN = 64;
  constexpr int kDraws = 50000;
  const Zipfian z(kN, 0.99);
  Rng rng(2024);
  std::vector<std::uint64_t> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z.next(rng)];
  // Rank 0 dominates and the coarse shape is monotone.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
  EXPECT_GT(counts[0], counts[7]);
  EXPECT_GT(counts[7], counts[63]);
  EXPECT_GT(counts[0], kDraws / static_cast<int>(kN));  // far above uniform
  double chi2 = 0;
  for (std::size_t r = 0; r < 16; ++r) {
    const double expect = kDraws / std::pow(static_cast<double>(r + 1), 0.99) /
                          z.zetan();
    chi2 += (static_cast<double>(counts[r]) - expect) *
            (static_cast<double>(counts[r]) - expect) / expect;
  }
  // The Gray et al. inversion is a continuous approximation with a
  // few-percent systematic bias per rank, so the statistic sits above the
  // pure-sampling-noise range (~16 dof => ~16-30); it is deterministic per
  // seed (measured: ~103) and a broken generator lands in the thousands.
  EXPECT_LT(chi2, 150.0);
  // θ = 0 degenerates to uniform-ish: the head loses its dominance.
  const Zipfian flat(kN, 0.0);
  Rng rng2(2024);
  std::vector<std::uint64_t> fcounts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++fcounts[flat.next(rng2)];
  EXPECT_LT(fcounts[0], counts[0] / 4);
}

}  // namespace
}  // namespace mtx
