// Derived relations (§2): index/init/po/ww/wr/rw and the lifted l/x/c
// variants, checked against hand-computed figures from the paper.
#include <gtest/gtest.h>

#include "model/derived.hpp"
#include "model/happens_before.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::Relations;

TEST(Relations, BaseOrders) {
  TB b(2);
  b.w(0, 0, 1, 1).r(1, 0, 1, 1).w(1, 1, 1, 1);
  const Trace& t = b.trace();
  const Relations rel = Relations::compute(t);

  // indices: 0..3 init, 4 = Wx1(t0), 5 = Rx1(t1), 6 = Wy1(t1)
  EXPECT_TRUE(rel.index.test(4, 5));
  EXPECT_FALSE(rel.index.test(5, 4));
  EXPECT_TRUE(rel.po.test(5, 6));
  EXPECT_FALSE(rel.po.test(4, 5));  // different threads
  EXPECT_TRUE(rel.init.test(1, 4));
  EXPECT_FALSE(rel.init.test(1, 2));  // init to init: excluded
  EXPECT_TRUE(rel.ww.test(1, 4));     // init x before Wx1 by timestamp
  EXPECT_TRUE(rel.wr.test(4, 5));
}

TEST(Relations, WwFollowsTimestampsNotIndex) {
  TB b(1);
  b.w(0, 0, 2, 2).w(1, 0, 1, 1);  // index order opposite to ts order
  const Relations rel = Relations::compute(b.trace());
  EXPECT_TRUE(rel.ww.test(4, 3));
  EXPECT_FALSE(rel.ww.test(3, 4));
}

TEST(Relations, WrNeedsLocValueAndTs) {
  TB b(2);
  b.w(0, 0, 1, 1).r(1, 0, 1, 2);  // same value, wrong ts: no wr
  const Relations rel = Relations::compute(b.trace());
  EXPECT_FALSE(rel.wr.test(4, 5));
}

TEST(Relations, RwExcludesAbortedTargets) {
  // <a:Wx1> <c:Wx2 aborted> <b:Rx1> -- the paper's antidependency figure:
  // no rw edge to the aborted write.
  TB b(1);
  b.w(0, 0, 1, 1);
  b.begin(1).w(1, 0, 2, 2).abort(1);
  b.r(0, 0, 1, 1);
  const Trace& t = b.trace();
  const Relations rel = Relations::compute(t);
  const std::size_t read_idx = t.size() - 1;
  EXPECT_FALSE(rel.rw.test(read_idx, 5));  // 5 = aborted Wx2
}

TEST(Relations, RwPresentForCommittedTargets) {
  TB b(1);
  b.w(0, 0, 1, 1).w(1, 0, 2, 2).r(0, 0, 1, 1);
  const Trace& t = b.trace();
  const Relations rel = Relations::compute(t);
  EXPECT_TRUE(rel.rw.test(t.size() - 1, 4));
}

// The paper's lifted-relations figure: txn b = {Wy1, Wx1}; c reads y from
// b1; d is a plain write Wx2.
TEST(Relations, LiftingFigure) {
  TB bld(2);
  constexpr Loc X = 0, Y = 1;
  bld.begin(0).w(0, Y, 1, 1).w(0, X, 1, 1).commit(0);  // b: 4=B 5=Wy 6=Wx 7=C
  bld.begin(1).r(1, Y, 1, 1).commit(1);                // c: 8=B 9=Ry 10=C
  bld.w(2, X, 2, 2);                                   // d: 11
  const Trace& t = bld.trace();
  const Relations rel = Relations::compute(t);

  // b1 wr c but not b2 wr c ...
  EXPECT_TRUE(rel.wr.test(5, 9));
  EXPECT_FALSE(rel.wr.test(6, 9));
  // ... both hold lifted: b2 lwr c.
  EXPECT_TRUE(rel.lwr.test(6, 9));
  // b1 lww d holds (via b2 ww d), b1 ww d does not.
  EXPECT_FALSE(rel.ww.test(5, 11));
  EXPECT_TRUE(rel.lww.test(5, 11));
  // The x-variants exclude the plain d.
  EXPECT_FALSE(rel.xww.test(5, 11));
  EXPECT_FALSE(rel.xww.test(6, 11));
  // The c-variant of wr between committed txns holds.
  EXPECT_TRUE(rel.cwr.test(6, 9));
}

TEST(Relations, CVariantsExcludeAborted) {
  TB bld(1);
  bld.begin(0).w(0, 0, 1, 1).commit(0);
  bld.begin(1).r(1, 0, 1, 1).abort(1);
  const Trace& t = bld.trace();
  const Relations rel = Relations::compute(t);
  // writer committed (idx 4), reader aborted (idx 7).
  EXPECT_TRUE(rel.wr.test(4, 7));
  EXPECT_TRUE(rel.xwr.test(4, 7));
  EXPECT_FALSE(rel.cwr.test(4, 7));
}

TEST(Relations, LiftKeepsIntraTxnBasePairs) {
  TB bld(1);
  bld.begin(0).w(0, 0, 1, 1).r(0, 0, 1, 1).commit(0);
  const Trace& t = bld.trace();
  const Relations rel = Relations::compute(t);
  EXPECT_TRUE(rel.wr.test(4, 5));
  EXPECT_TRUE(rel.lwr.test(4, 5));  // first disjunct: base pair survives
  // But the same-txn pair does not lift to other members: B -> R say.
  EXPECT_FALSE(rel.lwr.test(3, 5));
}

TEST(Relations, TxEquivalenceIncludesBoundaries) {
  TB bld(1);
  bld.begin(0).w(0, 0, 1, 1).commit(0);
  const Relations rel = Relations::compute(bld.trace());
  EXPECT_TRUE(rel.tx.test(3, 5));  // begin ~ commit
  EXPECT_TRUE(rel.tx.test(4, 3));
  for (std::size_t i = 0; i < bld.trace().size(); ++i) EXPECT_TRUE(rel.tx.test(i, i));
}

// The word-parallel builder (compute_fast) and the forward-closure hb path
// (compute_hb_fast) must be exact-equivalent to the reference on *every*
// trace — including the shapes the fast paths were not designed for, where
// they must fall back rather than diverge: timestamp order against index
// order, duplicate timestamps (WF3-malformed), aborted and live txns,
// unfulfilled reads, summary fences, multi-writer value collisions.
std::vector<Trace> equivalence_zoo() {
  std::vector<Trace> zoo;
  {
    TB b(2);  // plain-only, ww backward in index order
    b.w(0, 0, 2, 2).w(1, 0, 1, 1).r(0, 0, 1, 1).w(1, 1, 3, 1);
    zoo.push_back(b.trace());
  }
  {
    TB b(1);  // duplicate timestamps: unrelated in ww either way
    b.w(0, 0, 1, 1).w(1, 0, 2, 1).r(0, 0, 1, 1);
    zoo.push_back(b.trace());
  }
  {
    TB b(2);  // committed / aborted / live txns plus plain traffic
    b.begin(0).w(0, 0, 1, 1).w(0, 1, 1, 1).commit(0);
    b.begin(1).r(1, 0, 1, 1).w(1, 0, 2, 2).abort(1);
    b.begin(2).r(2, 1, 1, 1);  // live: never resolves
    b.w(3, 0, 9, 3).r(3, 0, 9, 3);
    zoo.push_back(b.trace());
  }
  {
    TB b(3);  // fences: per-location and summary, with post-fence txns
    b.begin(0).w(0, 0, 1, 1).commit(0);
    b.fence(2, 0).fence(2, 1);
    b.begin(1).r(1, 0, 1, 1).w(1, 2, 5, 1).commit(1);
    b.fence_all(2);
    b.begin(0).w(0, 2, 6, 2).commit(0);
    zoo.push_back(b.trace());
  }
  {
    TB b(1);  // same (loc, value, ts) written twice: wr relates both writers
    b.w(0, 0, 7, 5).w(1, 0, 7, 5).r(2, 0, 7, 5).r(2, 0, 4, 9);  // last unfulfilled
    zoo.push_back(b.trace());
  }
  {
    TB b(2);  // intra-txn wr/ww pairs survive the lift's same-txn exclusion
    b.begin(0).w(0, 0, 1, 1).r(0, 0, 1, 1).w(0, 0, 2, 2).commit(0);
    b.begin(1).r(1, 0, 2, 2).commit(1);
    zoo.push_back(b.trace());
  }
  {
    TB b(1);  // committed txns whose ts order opposes index order: the hb
              // seed itself (cww) has a backward edge
    b.begin(0).w(0, 0, 2, 2).commit(0);
    b.begin(1).w(1, 0, 1, 1).commit(1);
    zoo.push_back(b.trace());
  }
  zoo.push_back(Trace{});  // empty
  return zoo;
}

TEST(Relations, FastBuilderMatchesReferenceOnZoo) {
  for (const Trace& t : equivalence_zoo()) {
    const Relations ref = Relations::compute(t);
    const Relations fast = Relations::compute_fast(t);
    EXPECT_EQ(ref.index, fast.index);
    EXPECT_EQ(ref.init, fast.init);
    EXPECT_EQ(ref.po, fast.po);
    EXPECT_EQ(ref.ww, fast.ww);
    EXPECT_EQ(ref.wr, fast.wr);
    EXPECT_EQ(ref.rw, fast.rw);
    EXPECT_EQ(ref.tx, fast.tx);
    EXPECT_EQ(ref.lww, fast.lww);
    EXPECT_EQ(ref.lwr, fast.lwr);
    EXPECT_EQ(ref.lrw, fast.lrw);
    EXPECT_EQ(ref.xww, fast.xww);
    EXPECT_EQ(ref.xwr, fast.xwr);
    EXPECT_EQ(ref.xrw, fast.xrw);
    EXPECT_EQ(ref.cww, fast.cww);
    EXPECT_EQ(ref.cwr, fast.cwr);
    EXPECT_EQ(ref.crw, fast.crw);
  }
}

TEST(Relations, FastHbMatchesReferenceOnZoo) {
  // The zoo's first trace has backward seed edges (ts against index), so
  // this also pins the fallback: compute_hb_fast must detect the
  // non-forward seed and still agree with the Warshall path.
  for (const Trace& t : equivalence_zoo()) {
    const Relations rel = Relations::compute(t);
    for (const auto& cfg :
         {model::ModelConfig::implementation(), model::ModelConfig::programmer(),
          model::ModelConfig::strongest(), model::ModelConfig::base()}) {
      EXPECT_EQ(model::compute_hb(t, rel, cfg),
                model::compute_hb_fast(t, rel, cfg))
          << cfg.name;
    }
  }
}

TEST(Relations, LiftFunctionMatchesStruct) {
  TB bld(2);
  bld.begin(0).w(0, 0, 1, 1).commit(0).r(1, 0, 1, 1);
  const Trace& t = bld.trace();
  const Relations rel = Relations::compute(t);
  EXPECT_EQ(model::lift(t, rel.wr), rel.lwr);
  EXPECT_EQ(model::lift(t, rel.ww), rel.lww);
}

}  // namespace
}  // namespace mtx::test
