// The litmus mini-language: expressions, conditions, location expressions,
// and control-path expansion (branches, bounded loops, aborts, fences).
#include <gtest/gtest.h>

#include "litmus/program.hpp"

namespace mtx::lit {
namespace {

TEST(Expr, Eval) {
  std::vector<Value> regs = {7, 3};
  EXPECT_EQ(constant(5).eval(regs), 5);
  EXPECT_EQ(reg(0).eval(regs), 7);
  EXPECT_EQ(add(1, 10).eval(regs), 13);
}

TEST(Cond, EvalConstAndReg) {
  std::vector<Value> regs = {7, 7, 9};
  EXPECT_TRUE(eq(0, 7).eval(regs));
  EXPECT_FALSE(ne(0, 7).eval(regs));
  EXPECT_TRUE(eq_reg(0, 1).eval(regs));
  EXPECT_TRUE(ne_reg(0, 2).eval(regs));
}

TEST(LocExpr, StaticAndDynamic) {
  std::vector<Value> regs = {2};
  EXPECT_EQ(at(3).eval(regs), 3);
  EXPECT_FALSE(at(3).dynamic());
  EXPECT_EQ(at(3, 0).eval(regs), 5);
  EXPECT_TRUE(at(3, 0).dynamic());
}

TEST(Paths, StraightLine) {
  const Block b = {read(0, at(0)), write(at(1), 1)};
  const auto paths = expand_paths(b);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(action_count(paths[0]), 2u);
}

TEST(Paths, IfSplitsInTwo) {
  const Block b = {read(0, at(0)), if_then(eq(0, 0), {write(at(1), 1)})};
  const auto paths = expand_paths(b);
  ASSERT_EQ(paths.size(), 2u);
  // One path has the write, one does not; both carry a guard.
  std::size_t with_write = 0;
  for (const auto& p : paths) {
    bool guard = false, write_seen = false;
    for (const auto& e : p) {
      guard |= e.kind == PEvent::Kind::Guard;
      write_seen |= e.kind == PEvent::Kind::Write;
    }
    EXPECT_TRUE(guard);
    if (write_seen) ++with_write;
  }
  EXPECT_EQ(with_write, 1u);
}

TEST(Paths, IfElseBothBranches) {
  const Block b = {read(0, at(0)),
                   if_then_else(eq(0, 0), {write(at(1), 1)}, {write(at(1), 2)})};
  EXPECT_EQ(expand_paths(b).size(), 2u);
}

TEST(Paths, AtomicBracketsBody) {
  const Block b = {atomic({write(at(0), 1), read(0, at(1))})};
  const auto paths = expand_paths(b);
  ASSERT_EQ(paths.size(), 1u);
  const Path& p = paths[0];
  EXPECT_EQ(p.front().kind, PEvent::Kind::Begin);
  EXPECT_EQ(p.back().kind, PEvent::Kind::Commit);
  EXPECT_EQ(action_count(p), 4u);
}

TEST(Paths, AbortTerminatesAtomic) {
  const Block b = {atomic({write(at(0), 1), abort_stmt(), write(at(0), 2)}),
                   write(at(1), 3)};
  const auto paths = expand_paths(b);
  ASSERT_EQ(paths.size(), 1u);
  const Path& p = paths[0];
  // Begin, W, Abort -- the second write inside the atomic is dead; the
  // write after the block survives.
  int writes = 0;
  bool abort_seen = false, commit_seen = false;
  for (const auto& e : p) {
    writes += e.kind == PEvent::Kind::Write;
    abort_seen |= e.kind == PEvent::Kind::Abort;
    commit_seen |= e.kind == PEvent::Kind::Commit;
  }
  EXPECT_EQ(writes, 2);
  EXPECT_TRUE(abort_seen);
  EXPECT_FALSE(commit_seen);
}

TEST(Paths, ConditionalAbortSplits) {
  const Block b = {
      atomic({read(0, at(0)), if_then(eq(0, 0), {write(at(0), 1), abort_stmt()})})};
  const auto paths = expand_paths(b);
  ASSERT_EQ(paths.size(), 2u);
  std::size_t aborted = 0;
  for (const auto& p : paths)
    for (const auto& e : p) aborted += e.kind == PEvent::Kind::Abort;
  EXPECT_EQ(aborted, 1u);
}

TEST(Paths, WhileBoundedUnrolling) {
  const Block b = {read(0, at(0)),
                   while_loop(ne(0, 0), {read(0, at(0))}, /*bound=*/3)};
  const auto paths = expand_paths(b);
  // 0, 1, 2, or 3 iterations.
  EXPECT_EQ(paths.size(), 4u);
}

TEST(Paths, WhileZeroBound) {
  const Block b = {while_loop(ne(0, 0), {read(0, at(0))}, 0)};
  const auto paths = expand_paths(b);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(action_count(paths[0]), 0u);  // just the exit guard
}

TEST(Paths, AbortOutsideAtomicThrows) {
  EXPECT_THROW(expand_paths({abort_stmt()}), std::invalid_argument);
}

TEST(Paths, FenceInsideAtomicThrows) {
  EXPECT_THROW(expand_paths({atomic({qfence(0)})}), std::invalid_argument);
}

TEST(Paths, NestedAtomicThrows) {
  EXPECT_THROW(expand_paths({atomic({atomic({})})}), std::invalid_argument);
}

TEST(Paths, FenceEvent) {
  const auto paths = expand_paths({qfence(2)});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0][0].kind, PEvent::Kind::Fence);
  EXPECT_EQ(paths[0][0].loc.base, 2);
}

TEST(Paths, PathStrSmoke) {
  const auto paths = expand_paths({atomic({read(0, at(0))}), write(at(1), 1)});
  EXPECT_FALSE(path_str(paths[0]).empty());
}

TEST(Program, BuilderAccumulatesThreads) {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1)}).add_thread({read(0, at(0))});
  EXPECT_EQ(p.threads.size(), 2u);
}

}  // namespace
}  // namespace mtx::lit
