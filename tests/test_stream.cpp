// The streaming conformance pipeline: lock-free ring capture (wrap-around,
// loud overflow, in-band epoch marks), segment sealing and judgment
// concurrent with execution, and the acceptance pin — streaming verdicts
// byte-identical to post-hoc windowed checking on every registered backend.
// Registered under the `concurrency` ctest label (real producer/cutter/
// checker threads), so the sanitizer CI lanes cover the rings too.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "kv/workload.hpp"
#include "record/ring.hpp"
#include "record/stream.hpp"
#include "stm/backend.hpp"

namespace mtx::record {
namespace {

Event plain_write(std::uint64_t seq, std::int32_t loc, stm::word_t value,
                  std::uint64_t version) {
  Event e;
  e.seq = seq;
  e.kind = Ev::PlainWrite;
  e.loc = loc;
  e.value = value;
  e.version = version;
  return e;
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 1u);
  EXPECT_EQ(EventRing(3).capacity(), 4u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

// FIFO across many head/tail wraps: an 8-slot ring carries 1000 events when
// pushes and partial drains interleave, and the monotone-counter indexing
// never reorders, loses, or duplicates an item.
TEST(EventRing, FifoSurvivesWraparound) {
  EventRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  std::uint64_t pushed = 0, taken = 0;
  std::vector<RingItem> out;
  while (taken < 1000) {
    while (pushed < 1000 && ring.size() < ring.capacity()) {
      ASSERT_TRUE(ring.push(plain_write(pushed + 1, 0, pushed, pushed + 1)));
      ++pushed;
    }
    out.clear();
    ring.drain(out, 3);  // partial drains keep head and tail out of phase
    for (const RingItem& it : out) {
      ASSERT_FALSE(it.is_mark);
      ASSERT_EQ(it.ev.value, taken);
      ++taken;
    }
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 0u);
}

// Overflow is drop-and-count, never overwrite and never silence: pushes
// into a full ring fail, the drop counter is sticky across drains, and the
// queued items come out untouched.
TEST(EventRing, FullRingDropsLoudly) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(ring.push(plain_write(i + 1, 0, i, i + 1)));
  EXPECT_FALSE(ring.push(plain_write(5, 0, 4, 5)));
  EXPECT_FALSE(ring.push(plain_write(6, 0, 5, 6)));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_TRUE(ring.overflowed());
  std::vector<RingItem> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].ev.value, i);
  // Slots freed: pushes succeed again, the overflow record stays.
  EXPECT_TRUE(ring.push(plain_write(7, 0, 6, 7)));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(EventRing, MarksArriveInBandAndInOrder) {
  EventRing ring(8);
  ASSERT_TRUE(ring.push(plain_write(1, 0, 10, 1)));
  ASSERT_TRUE(ring.push(plain_write(2, 0, 11, 2)));
  ring.push_mark(0);
  ASSERT_TRUE(ring.push(plain_write(3, 0, 12, 3)));
  ring.push_mark(1);
  std::vector<RingItem> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_FALSE(out[0].is_mark);
  EXPECT_FALSE(out[1].is_mark);
  ASSERT_TRUE(out[2].is_mark);
  EXPECT_EQ(out[2].epoch, 0u);
  EXPECT_FALSE(out[3].is_mark);
  ASSERT_TRUE(out[4].is_mark);
  EXPECT_EQ(out[4].epoch, 1u);
}

// Marks are the sealing protocol and must not be dropped: push_mark into a
// full ring waits for the consumer instead of failing.
TEST(EventRing, MarkWaitsForSlotInsteadOfDropping) {
  EventRing ring(2);
  ASSERT_TRUE(ring.push(plain_write(1, 0, 0, 1)));
  ASSERT_TRUE(ring.push(plain_write(2, 0, 1, 2)));
  std::vector<RingItem> freed;
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ring.drain(freed, 1);
  });
  ring.push_mark(7);  // spins until the consumer frees a slot
  consumer.join();
  std::vector<RingItem> rest;
  ring.drain(rest);
  ASSERT_EQ(freed.size() + rest.size(), 3u);
  ASSERT_TRUE(rest.back().is_mark);
  EXPECT_EQ(rest.back().epoch, 7u);
  EXPECT_EQ(ring.dropped(), 0u);
}

// Direct pipeline exercise, single producer: three epochs of backend
// transactions stream through a ring, seal into three segments (state
// carried across by the cutter's synthesized transactions), every segment
// judges conformant, and the merged verdict equals the post-hoc oracle.
TEST(Stream, SegmentsJudgeLiveAndMatchPosthoc) {
  for (const std::string& name : stm::backend_names()) {
    SCOPED_TRACE(name);
    auto stm = stm::make_backend(name);
    RecordSession s;
    StreamOptions so;
    so.ring_capacity = 64;
    so.checkers = 1;
    so.compare_posthoc = true;
    so.require_full_opacity = stm->zombie_free();
    StreamConformance sc(s, {0}, so);
    stm::Cell x, y;
    {
      ScopedRecorder r(s, 0);
      r.rec().stream_to(&sc.ring(0));
      for (std::uint64_t e = 0; e < 3; ++e) {
        stm->atomically([&](auto& tx) { tx.write(x, 5 * e + 1); });
        stm->atomically([&](auto& tx) { tx.write(y, tx.read(x) + 10); });
        r.rec().mark_epoch(e);
      }
      r.rec().flush();
    }
    const StreamReport rep = sc.finish();
    EXPECT_TRUE(rep.ok()) << rep.str();
    EXPECT_EQ(rep.segments, 3u);
    EXPECT_EQ(rep.nonconformant, 0u);
    EXPECT_FALSE(rep.overflow);
    EXPECT_GT(rep.checked_events, 0u);
    ASSERT_TRUE(rep.posthoc_checked);
    EXPECT_TRUE(rep.posthoc_match)
        << "streaming: " << rep.merged.verdict()
        << "\nposthoc:   " << rep.posthoc.verdict();
    // finish() is idempotent: the second call returns the same report.
    const StreamReport again = sc.finish();
    EXPECT_EQ(again.segments, rep.segments);
    EXPECT_EQ(again.merged.verdict(), rep.merged.verdict());
  }
}

// A ring too small for its traffic poisons the whole run — overflow is a
// failed verdict, not a quietly thinner trace — while sealing (push_mark
// cannot drop) still delivers the segment count and the failure report.
TEST(Stream, OverflowPoisonsTheRun) {
  RecordSession s;
  StreamOptions so;
  so.ring_capacity = 1;
  so.checkers = 1;
  StreamConformance sc(s, {0}, so);
  EventRing& ring = sc.ring(0);
  // Burst against a 1-slot ring: the cutter cannot keep up (it sleeps when
  // idle), so a drop lands within the first few pushes.
  for (std::uint64_t i = 1; i <= 200000 && ring.dropped() == 0; ++i)
    ring.push(plain_write(i, 0, i, i));
  ASSERT_GT(ring.dropped(), 0u);
  ring.push_mark(0);
  const StreamReport rep = sc.finish();
  EXPECT_TRUE(rep.overflow);
  EXPECT_GT(rep.ring_dropped, 0u);
  EXPECT_FALSE(rep.ok());
  EXPECT_GE(rep.segments, 1u);  // the epoch still sealed and judged
}

}  // namespace
}  // namespace mtx::record

namespace {

using namespace mtx;

kv::KvWorkloadOptions stream_opts(std::size_t threads, std::uint64_t seed) {
  kv::KvWorkloadOptions o;
  o.threads = threads;
  o.seed = seed;
  o.ops_per_thread = 48;
  o.store.preload_keys = 40;
  o.store.shards = 4;
  o.store.snap_keys = 4;
  o.stream = true;
  o.round_ops = 16;
  o.stream_compare_posthoc = true;  // every test doubles as the oracle pin
  return o;
}

// The acceptance pin: the always-on streaming pipeline and the post-hoc
// windowed checker produce byte-identical verdict signatures on the same
// execution — for every registered backend, with zero non-conformant
// segments and zero ring drops.
TEST(KvStream, StreamingVerdictMatchesPosthocOnAllBackends) {
  const kv::Mix& mix = *kv::mix_by_name("priv_heavy");
  for (const std::string& name : stm::backend_names()) {
    auto stm = stm::make_backend(name);
    const kv::KvResult r = kv::run_kv_workload(*stm, mix, stream_opts(3, 21));
    EXPECT_TRUE(r.invariant_ok) << name;
    EXPECT_TRUE(r.conf.streamed) << name;
    EXPECT_GT(r.conf.sessions, 0u) << name;
    EXPECT_GE(r.conf.windows, r.conf.sessions) << name;
    EXPECT_GT(r.conf.recorded_actions, 0u) << name;
    EXPECT_EQ(r.conf.nonconformant, 0u) << name;
    EXPECT_FALSE(r.conf.overflow) << name;
    EXPECT_EQ(r.conf.ring_dropped, 0u) << name;
    ASSERT_TRUE(r.conf.posthoc_checked) << name;
    EXPECT_TRUE(r.conf.posthoc_match) << name;
    EXPECT_TRUE(r.conf.all_ok()) << name;
  }
}

// Sampling levels: with stream_sample_every = 2 only rounds 0 and 2 of the
// three-round run are recorded (one segment each, anchored by its own state
// replay — carry synthesis is off at sparse levels), the intervening round
// runs unrecorded, and the sampled stream still judges conformant and
// byte-identical to the post-hoc check of the same captured events.
TEST(KvStream, SampledStreamingIsConformantAndMatchesPosthoc) {
  const kv::Mix& mix = *kv::mix_by_name("priv_heavy");
  for (const std::string& name : stm::backend_names()) {
    auto stm = stm::make_backend(name);
    kv::KvWorkloadOptions o = stream_opts(3, 21);
    o.stream_sample_every = 2;
    const kv::KvResult r = kv::run_kv_workload(*stm, mix, o);
    EXPECT_TRUE(r.invariant_ok) << name;
    EXPECT_TRUE(r.conf.streamed) << name;
    EXPECT_EQ(r.conf.sessions, 2u) << name;  // rounds 0 and 2 of 3
    EXPECT_EQ(r.conf.nonconformant, 0u) << name;
    EXPECT_FALSE(r.conf.overflow) << name;
    ASSERT_TRUE(r.conf.posthoc_checked) << name;
    EXPECT_TRUE(r.conf.posthoc_match) << name;
    EXPECT_TRUE(r.conf.all_ok()) << name;
  }
}

// Publication under streaming: snapshot-heavy traffic (plain reads of
// frozen values) interleaved with transactional mutators, captured through
// the rings and judged live.
TEST(KvStream, PubHeavyStreamsConformantly) {
  const kv::Mix& mix = *kv::mix_by_name("pub_heavy");
  for (const std::string& name : {std::string("tl2"), std::string("eager")}) {
    auto stm = stm::make_backend(name);
    const kv::KvResult r = kv::run_kv_workload(*stm, mix, stream_opts(3, 33));
    EXPECT_TRUE(r.invariant_ok) << name;
    EXPECT_GT(r.snap_reads, 0u) << name;
    EXPECT_EQ(r.conf.nonconformant, 0u) << name;
    EXPECT_FALSE(r.conf.overflow) << name;
    ASSERT_TRUE(r.conf.posthoc_checked) << name;
    EXPECT_TRUE(r.conf.posthoc_match) << name;
  }
}

// The quiescence registry counters surface through KvResult: privatizing
// scans drive fences, fences advance epochs, and the coalescing contract
// (advances can be far fewer than calls, but never zero once one ran)
// holds end to end.
TEST(KvStream, RegistryCountersSurfaceThroughKvResult) {
  const kv::Mix& mix = *kv::mix_by_name("priv_heavy");
  auto stm = stm::make_backend("tl2");
  const kv::KvResult r = kv::run_kv_workload(*stm, mix, stream_opts(2, 9));
  EXPECT_GT(r.scans, 0u);
  EXPECT_GT(r.fence_calls, 0u);
  EXPECT_GT(r.epoch_advances, 0u);
  EXPECT_LE(r.epoch_advances, 2 * r.fence_calls);
}

}  // namespace
