// Live shard migration: the online split/move/merge engine under real
// concurrent traffic with always-on streaming conformance (the suite's
// migration TSan surface), the bait variants' guaranteed shrunk
// counterexamples, the single-OS-thread determinism pin behind the
// campaign's migrate grid, a served-traffic move mid-load with zero
// client errors, and the shape validators guarding the quiescence-domain
// budget.  Registered under both the `concurrency` and `oracle` ctest
// labels.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fuzz/kvproto.hpp"
#include "kv/kvstore.hpp"
#include "kv/migrate.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "record/recorder.hpp"
#include "record/stream.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"

namespace {

using namespace mtx;

// The concurrent suites' per-worker op count.  Conformance analysis cost
// grows superlinearly in trace size, and TSan multiplies every recorded
// access; full-size traces would blow the sanitizer lane's per-test budget
// without adding coverage there (TSan hunts data races in the runtime, not
// model verdicts — the full-size verdict surface runs in the plain lanes).
#if defined(__SANITIZE_THREAD__)
constexpr std::uint64_t kConcurrentOps = 200;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr std::uint64_t kConcurrentOps = 200;
#else
constexpr std::uint64_t kConcurrentOps = 800;
#endif
#else
constexpr std::uint64_t kConcurrentOps = 800;
#endif

// ---------------------------------------------------------------------------
// Routing table: the addressing layer the engine re-homes.

TEST(RoutingTable, SlotsPartitionTheGridAndRehomeBumpsTheEpochOnce) {
  kv::RoutingTable rt(4);
  EXPECT_EQ(rt.epoch(), 1u);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const auto slots = rt.slots_of(s);
    covered += slots.size();
    for (std::size_t slot : slots) EXPECT_EQ(rt.owner(slot), s);
  }
  EXPECT_EQ(covered, kv::RoutingTable::kSlots);  // disjoint + exhaustive

  // Re-home shard 0's slots to shard 3: one epoch bump for the whole batch,
  // every key that routed to 0 now routes to 3, nobody else moved.
  const auto moved = rt.slots_of(0);
  const std::uint64_t e = rt.rehome(moved, 3);
  EXPECT_EQ(e, 2u);
  EXPECT_EQ(rt.epoch(), 2u);
  EXPECT_TRUE(rt.slots_of(0).empty());
  for (std::size_t slot : moved) EXPECT_EQ(rt.owner(slot), 3u);
  for (std::int64_t k = 0; k < 1000; ++k) EXPECT_NE(rt.shard_of(k), 0u);
}

TEST(StoreShape, RejectsShardCountsBeyondTheQuiesceDomainBudget) {
  kv::StoreShape shape;
  shape.shards = static_cast<std::size_t>(stm::kMaxQuiesceDomains) - 1;
  EXPECT_EQ(shape.validate(), "");  // 63 shards: last id still available
  shape.shards = static_cast<std::size_t>(stm::kMaxQuiesceDomains);
  EXPECT_NE(shape.validate().find("quiescence domain budget"),
            std::string::npos);

  // The serving tier inherits the same rejection through its composed shape.
  net::ServerConfig cfg;
  cfg.store.shards = static_cast<std::size_t>(stm::kMaxQuiesceDomains);
  EXPECT_NE(cfg.validate().find("quiescence domain budget"),
            std::string::npos);

  // And the store constructor refuses to build an over-budget shape at all.
  auto stm = stm::make_backend("tl2");
  kv::KvStore::Options o;
  o.shards = static_cast<std::size_t>(stm::kMaxQuiesceDomains);
  EXPECT_THROW(kv::KvStore(*stm, o), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The engine under real concurrency: mixed traffic on every backend while a
// migration runs, the whole run judged by the streaming conformance
// pipeline.  Zero non-conformant segments, zero ring drops, and an exact
// post-run key audit are the pass bar — this is the concurrent counterpart
// of the campaign's single-OS-thread kvproto oracle.

void run_concurrent_migration(const std::string& backend,
                              kv::MigrateKind kind) {
  SCOPED_TRACE(backend + "/" + kv::to_string(kind));
  auto stm = stm::make_backend(backend);
  ASSERT_TRUE(stm);

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kKeys = 64;
  const std::uint64_t kOps = kConcurrentOps;

  kv::KvStore::Options sopt;
  sopt.shards = 4;
  sopt.expected_keys = kKeys * 2;
  sopt.snap_slots = 1;
  sopt.scoped_fences = true;
  kv::KvStore store(*stm, sopt);
  for (std::size_t k = 0; k < kKeys; ++k)
    store.put(static_cast<std::int64_t>(k),
              kv::value_of(static_cast<std::int64_t>(k), 0));

  // One continuous stream: slot 0 carries the preload replay, slots
  // 1..kThreads the workers, the last slot the migrator.  A single epoch
  // spans the run — each producer marks after its final event, so the
  // whole concurrent execution seals as one segment (cut further at the
  // migration's interior quiescence fences).
  record::RecordSession session;
  std::vector<int> producers(kThreads + 2);
  for (std::size_t t = 0; t < producers.size(); ++t)
    producers[t] = static_cast<int>(t);
  record::StreamOptions sropts;
  sropts.ring_capacity = 1u << 16;
  sropts.checkers = 2;
  sropts.require_full_opacity = stm->zombie_free();
  record::StreamConformance stream(session, producers, sropts);

  {
    record::ScopedRecorder rec(session, 0);
    rec.rec().stream_to(&stream.ring(0));
    rec.rec().synthetic_begin();
    store.replay_state_plain();
    rec.rec().synthetic_commit();
    rec.rec().mark_epoch(0);
    rec.rec().flush();
  }

  std::atomic<std::uint64_t> ops_done{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<bool> wellformed{true};
  kv::MigrateReport rep;

  auto worker = [&](std::size_t tid) {
    record::ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    rec.rec().stream_to(&stream.ring(tid + 1));
    Rng rng(7 * 0x9e3779b9ULL + tid * 131 + 1);
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto key = static_cast<std::int64_t>(rng.below(kKeys));
      switch (rng.below(4)) {
        case 0:
          store.put(key, kv::value_of(key, static_cast<std::int64_t>(
                                               tid * 7919 + i)));
          break;
        case 1: {
          std::int64_t v = 0;
          if (store.get(key, &v) && !kv::value_form_ok(key, v))
            wellformed = false;
          break;
        }
        case 2:
          store.rmw(key, [key](std::int64_t old) {
            return kv::value_of(key, kv::payload_of(old) + 1);
          });
          break;
        case 3: {
          const auto fresh =
              static_cast<std::int64_t>(kKeys + tid * kOps + i);
          store.put(fresh, kv::value_of(fresh, static_cast<std::int64_t>(i)));
          ++inserts;
          break;
        }
      }
      ++ops_done;
    }
    rec.rec().mark_epoch(0);
    rec.rec().flush();
  };

  auto migrator = [&] {
    record::ScopedRecorder rec(session, static_cast<int>(kThreads) + 1);
    rec.rec().stream_to(&stream.ring(kThreads + 1));
    // Fire mid-traffic: wait until the workers are demonstrably running,
    // migrate while they keep going.
    while (ops_done.load(std::memory_order_relaxed) < kThreads * kOps / 4)
      std::this_thread::yield();
    kv::MigrationEngine engine(store);
    rep = engine.run(kind, 0, 3);
    rec.rec().mark_epoch(0);
    rec.rec().flush();
  };

  std::vector<std::thread> team;
  for (std::size_t t = 0; t < kThreads; ++t)
    team.emplace_back(worker, t);
  team.emplace_back(migrator);
  for (std::thread& th : team) th.join();

  const record::StreamReport sr = stream.finish();
  EXPECT_TRUE(sr.ok()) << sr.str();
  EXPECT_EQ(sr.nonconformant, 0u);
  EXPECT_EQ(sr.ring_dropped, 0u);
  EXPECT_FALSE(sr.overflow);
  EXPECT_GT(sr.segments, 0u);

  // The migration really happened and re-stamped the routing state.
  EXPECT_TRUE(rep.performed);
  EXPECT_GT(rep.slots_moved, 0u);
  EXPECT_EQ(rep.epoch_after, rep.epoch_before + 1);
  EXPECT_EQ(store.routing().epoch(), rep.epoch_after);
  if (kind == kv::MigrateKind::merge) {
    EXPECT_TRUE(store.routing().slots_of(0).empty());
  }

  // Exact post-run audit: nothing lost, nothing misrouted, nothing torn.
  EXPECT_TRUE(wellformed.load());
  EXPECT_EQ(store.size(), kKeys + inserts.load());
  for (std::size_t k = 0; k < kKeys; ++k) {
    std::int64_t v = 0;
    const auto key = static_cast<std::int64_t>(k);
    ASSERT_TRUE(store.get(key, &v)) << "key " << k << " lost";
    EXPECT_TRUE(kv::value_form_ok(key, v)) << "key " << k << " torn";
  }
}

TEST(MigrateConcurrent, SplitUnderTrafficIsConformantOnEveryBackend) {
  for (const std::string& b : stm::backend_names())
    run_concurrent_migration(b, kv::MigrateKind::split);
}

TEST(MigrateConcurrent, MoveUnderTrafficIsConformantOnEveryBackend) {
  for (const std::string& b : stm::backend_names())
    run_concurrent_migration(b, kv::MigrateKind::move);
}

TEST(MigrateConcurrent, MergeUnderTrafficIsConformantOnEveryBackend) {
  for (const std::string& b : stm::backend_names())
    run_concurrent_migration(b, kv::MigrateKind::merge);
}

// ---------------------------------------------------------------------------
// The bait catalog: every deliberately broken engine variant must trip the
// kvproto oracle with its OWN failure signature and shrink to a reproducer,
// from a fixed seed.  The real engine must stay clean on the same specs.

TEST(MigrateBaits, EveryBaitYieldsAShrunkCounterexampleFromFixedSeeds) {
  for (const std::string& kind_name : kv::migrate_kind_names()) {
    for (const std::string& bait_name : kv::migrate_bait_names()) {
      if (bait_name == "none") continue;
      SCOPED_TRACE(kind_name + "/" + bait_name);
      fuzz::KvProtoSpec spec;
      spec.backend = "tl2";
      spec.seed = 1;
      ASSERT_TRUE(kv::migrate_kind_from(kind_name, &spec.kind));
      ASSERT_TRUE(kv::migrate_bait_from(bait_name, &spec.bait));
      const fuzz::KvProtoRow row = fuzz::run_kvproto(spec);
      EXPECT_TRUE(row.violation) << "bait slipped through undetected";
      EXPECT_FALSE(row.repro.empty()) << "violation without a reproducer";
      EXPECT_TRUE(row.ok());
      // Each bait breaks a DIFFERENT obligation, so the failure class is
      // part of the contract: dropped or misplaced fences surface as a
      // recorded race, a stale routing table as a failed key audit on an
      // otherwise clean trace.
      if (bait_name == "stale_route") {
        EXPECT_EQ(row.failure, "audit");
        EXPECT_EQ(row.l_races, 0u);
        EXPECT_TRUE(row.wellformed);
      } else {
        EXPECT_EQ(row.failure, "race");
        EXPECT_GT(row.l_races, 0u);
      }
      // The shrinker made progress: no shrunk dimension exceeds the
      // original, and at least one strictly decreased.
      EXPECT_LE(row.shrunk_threads, spec.threads);
      EXPECT_LE(row.shrunk_ops, spec.ops_per_thread);
      EXPECT_LE(row.shrunk_keys, spec.keys);
      EXPECT_TRUE(row.shrunk_threads < spec.threads ||
                  row.shrunk_ops < spec.ops_per_thread ||
                  row.shrunk_keys < spec.keys);
    }
  }
}

TEST(MigrateBaits, RealEngineIsCleanOnEveryBackendAndKind) {
  for (const std::string& backend : stm::backend_names()) {
    for (const std::string& kind_name : kv::migrate_kind_names()) {
      SCOPED_TRACE(backend + "/" + kind_name);
      fuzz::KvProtoSpec spec;
      spec.backend = backend;
      ASSERT_TRUE(kv::migrate_kind_from(kind_name, &spec.kind));
      const fuzz::KvProtoRow row = fuzz::run_kvproto(spec);
      EXPECT_TRUE(row.ok());
      EXPECT_FALSE(row.violation) << row.failure;
      EXPECT_TRUE(row.performed);
      EXPECT_TRUE(row.audit_ok);
      EXPECT_EQ(row.l_races, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism pin: the kvproto oracle runs on one OS thread, so two runs of
// the same spec must agree on EVERY field — verdict, counts, shrunk spec,
// and the reproducer text byte-for-byte.  This is what makes the campaign's
// migrate verdict signature diffable across serial/parallel modes.

TEST(MigrateDeterminism, SameSpecTwiceIsByteIdentical) {
  fuzz::KvProtoSpec clean;
  clean.backend = "tl2";
  clean.kind = kv::MigrateKind::split;
  fuzz::KvProtoSpec baited = clean;
  baited.bait = kv::MigrateBait::publish_before_copy;

  for (const fuzz::KvProtoSpec& spec : {clean, baited}) {
    SCOPED_TRACE(std::string(kv::to_string(spec.kind)) + "/" +
                 kv::to_string(spec.bait));
    const fuzz::KvProtoRow a = fuzz::run_kvproto(spec);
    const fuzz::KvProtoRow b = fuzz::run_kvproto(spec);
    EXPECT_EQ(a.violation, b.violation);
    EXPECT_EQ(a.failure, b.failure);
    EXPECT_EQ(a.l_races, b.l_races);
    EXPECT_EQ(a.keys_moved, b.keys_moved);
    EXPECT_EQ(a.slots_moved, b.slots_moved);
    EXPECT_EQ(a.epoch_after, b.epoch_after);
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.actions, b.actions);
    EXPECT_EQ(a.shrunk_threads, b.shrunk_threads);
    EXPECT_EQ(a.shrunk_ops, b.shrunk_ops);
    EXPECT_EQ(a.shrunk_keys, b.shrunk_keys);
    EXPECT_EQ(a.shrink_attempts, b.shrink_attempts);
    EXPECT_EQ(a.repro, b.repro);
  }
}

// ---------------------------------------------------------------------------
// Served traffic: a scripted move mid-load through the real server, open-loop
// clients retrying `moved` transparently.  Zero client errors, zero drops,
// zero non-conformant segments — the ISSUE's acceptance smoke, in-process.

TEST(MigrateServing, LiveMoveMidLoadCompletesWithZeroClientErrors) {
  auto stm = stm::make_backend("tl2");
  net::ServerConfig cfg;
  cfg.store.shards = 4;
  cfg.store.preload_keys = 256;
  cfg.store.snap_keys = 8;
  cfg.reactors.count = 2;
  cfg.reactors.max_batch = 8;
  cfg.stream.enabled = true;
  cfg.stream.epoch_ops = 128;
  cfg.migrate.after_ops = 150;  // fire mid-run at the owning reactor's
                                // quiet point
  cfg.migrate.kind = kv::MigrateKind::move;
  cfg.migrate.src = 0;
  cfg.migrate.dst = 2;  // same owner as shard 0 under modulo with 2 reactors
  ASSERT_EQ(cfg.validate(), "");
  net::Server server(*stm, cfg);
  std::thread server_thread([&] { server.run(); });

  net::LoadgenOptions lg;
  lg.port = server.port();
  lg.connections = 2;
  lg.rate = 4000;
  lg.ops_per_conn = 300;
  lg.store = cfg.store;
  lg.seed = 5;
  const net::LoadgenResult r = net::run_loadgen(lg);
  server.stop();
  server_thread.join();
  const net::ServerStats& ss = server.stats();

  // Client side: the whole schedule completed, nothing failed, nothing
  // malformed — moved bounces were absorbed by the transparent retry.
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.form_violations, 0u);
  EXPECT_EQ(r.completed, r.intended);

  // Server side: the scripted migration ran, the routing epoch advanced,
  // and the served-traffic stream stayed conformant throughout.
  EXPECT_EQ(ss.migrations, 1u);
  EXPECT_GE(ss.routing_epoch, 2u);
  EXPECT_EQ(ss.bad_frames, 0u);
  EXPECT_EQ(ss.nonconformant, 0u);
  EXPECT_EQ(ss.ring_dropped, 0u);
  EXPECT_FALSE(ss.overflow);
  EXPECT_TRUE(ss.streamed);
  EXPECT_GT(ss.segments, 0u);
  // moved_retries on the client matches the bounces the server sent.
  EXPECT_EQ(r.moved_retries, ss.moved);
}

}  // namespace
