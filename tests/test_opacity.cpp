// Opacity of the transactional subsystem: hand-built serialization-graph
// cases, and the §2/§4 claim that consistent executions of transactional
// programs are opaque (including aborted and live transactions).
#include <gtest/gtest.h>

#include "litmus/graph_enum.hpp"
#include "model/opacity.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::ModelConfig;
using model::opaque;
using model::Relations;
using model::serialization_graph;

constexpr Loc X = 0, Y = 1;

TEST(Opacity, SequentialTransactionsOpaque) {
  TB b(2);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.begin(1).r(1, X, 1, 1).w(1, Y, 1, 1).commit(1);
  EXPECT_TRUE(opaque(b.trace()));
}

TEST(Opacity, WitnessOrderRespectsDependencies) {
  TB b(2);
  b.begin(0).w(0, X, 1, 1).commit(0);   // writer: begin at index 4
  b.begin(1).r(1, X, 1, 1).commit(1);   // reader: begin at index 7
  const Trace& t = b.trace();
  ASSERT_TRUE(t[4].is_begin());
  ASSERT_TRUE(t[7].is_begin());
  const auto g = serialization_graph(t, Relations::compute(t));
  ASSERT_TRUE(g.acyclic);
  // init, writer, reader in order.
  ASSERT_EQ(g.witness_order.size(), 3u);
  std::size_t writer_pos = 99, reader_pos = 99;
  for (std::size_t i = 0; i < g.witness_order.size(); ++i) {
    if (g.witness_order[i] == 4) writer_pos = i;
    if (g.witness_order[i] == 7) reader_pos = i;
  }
  ASSERT_NE(writer_pos, 99u);
  ASSERT_NE(reader_pos, 99u);
  EXPECT_LT(writer_pos, reader_pos);
}

TEST(Opacity, TransactionalIriwCycleDetected) {
  // The §2 opacity figure built by hand: four transactions whose xwr/xrw
  // edges form a cycle.  (The trace is not consistent -- the point is the
  // graph detects it.)
  TB b(2);
  b.begin(0).w(0, X, 1, 1).commit(0);                 // T0: begin 4
  b.begin(1).w(1, Y, 1, 1).commit(1);                 // T1: begin 7
  b.begin(2).r(2, X, 1, 1).r(2, Y, 0, 0).commit(2);   // T2: x new, y old
  b.begin(3).r(3, Y, 1, 1).r(3, X, 0, 0).commit(3);   // T3: y new, x old
  EXPECT_FALSE(opaque(b.trace()));
}

TEST(Opacity, AbortedReaderParticipates) {
  // An aborted transaction that observed an inconsistent snapshot makes the
  // graph cyclic, even though it never commits: opacity covers zombies.
  TB b(2);
  b.begin(0).w(0, X, 1, 1).w(0, Y, 1, 1).commit(0);   // atomically x=y=1
  b.begin(1).r(1, X, 1, 1).r(1, Y, 0, 0).abort(1);    // saw x new, y old
  EXPECT_FALSE(opaque(b.trace()));
}

TEST(Opacity, AbortedReaderWithConsistentSnapshotOk) {
  TB b(2);
  b.begin(0).w(0, X, 1, 1).w(0, Y, 1, 1).commit(0);
  b.begin(1).r(1, X, 1, 1).r(1, Y, 1, 1).abort(1);
  EXPECT_TRUE(opaque(b.trace()));
}

TEST(Opacity, RealTimeOrderMatters) {
  // T0 commits before T1 begins, but T1's read antidepends on T0's write:
  // T1 would have to serialize before T0 -- cycle with real time.
  TB b(1);
  b.begin(0).w(0, X, 1, 2).commit(0);
  b.begin(1).r(1, X, 0, 0).commit(1);  // reads init although T0 finished
  EXPECT_FALSE(opaque(b.trace()));
}

// Every consistent execution of purely transactional programs is opaque --
// the executable rendering of "the SC-LTRF theorem ... guarantees opacity".
TEST(Opacity, ConsistentTransactionalExecutionsAreOpaque) {
  using namespace mtx::lit;
  std::vector<Program> programs;
  {
    Program p;  // transactional IRIW
    p.num_locs = 2;
    p.add_thread({atomic({write(at(0), 1)})});
    p.add_thread({atomic({write(at(1), 1)})});
    p.add_thread({atomic({read(0, at(0)), read(1, at(1))})});
    p.add_thread({atomic({read(0, at(1)), read(1, at(0))})});
    programs.push_back(p);
  }
  {
    Program p;  // writer vs aborted reader
    p.num_locs = 2;
    p.add_thread({atomic({write(at(0), 1), write(at(1), 1)})});
    p.add_thread({atomic({read(0, at(0)), read(1, at(1)), abort_stmt()})});
    programs.push_back(p);
  }
  {
    Program p;  // incrementers
    p.num_locs = 1;
    p.add_thread({atomic({read(0, at(0)), write(at(0), add(0, 1))})});
    p.add_thread({atomic({read(0, at(0)), write(at(0), add(0, 1))})});
    programs.push_back(p);
  }
  for (const Program& p : programs) {
    GraphEnum e(p, ModelConfig::programmer());
    std::size_t n = 0;
    e.for_each([&](const Execution& ex) {
      ++n;
      EXPECT_TRUE(opaque(ex.trace)) << ex.trace.str();
    });
    EXPECT_GT(n, 0u);
  }
}

}  // namespace
}  // namespace mtx::test
