// Bounded exhaustive check of Theorem 4.1 (SC-LTRF) on small programs:
// every hypothesis instance must produce the promised sequential race
// witness.
#include <gtest/gtest.h>

#include "ltrf/theorem_sc_ltrf.hpp"

namespace mtx::ltrf {
namespace {

using lit::at;
using lit::atomic;
using lit::Program;
using lit::read;
using lit::write;
using model::ModelConfig;

TEST(ScLtrf, TwoPlainWriters) {
  Program p;
  p.name = "two-writers";
  p.num_locs = 1;
  p.add_thread({write(at(0), 1)});
  p.add_thread({write(at(0), 2)});
  Semantics sem(p, ModelConfig::programmer());
  const auto report = check_sc_ltrf(sem, model::loc_set({0}, 1));
  EXPECT_TRUE(report.holds()) << report.counterexamples << " counterexamples";
  EXPECT_GT(report.hypothesis_instances, 0u);
  EXPECT_EQ(report.witnesses_found, report.hypothesis_instances);
}

TEST(ScLtrf, PlainWriterVsReader) {
  Program p;
  p.name = "writer-reader";
  p.num_locs = 1;
  p.add_thread({write(at(0), 1)});
  p.add_thread({read(0, at(0))});
  Semantics sem(p, ModelConfig::programmer());
  const auto report = check_sc_ltrf(sem, model::loc_set({0}, 1));
  EXPECT_TRUE(report.holds());
  EXPECT_GT(report.traces_examined, 0u);
}

TEST(ScLtrf, MixedTransactionalAndPlain) {
  // The "From D to T" §4 example: x:=1; atomic{x:=2} || atomic{r:=x}.
  Program p;
  p.name = "from-d-to-t";
  p.num_locs = 1;
  p.add_thread({write(at(0), 1), atomic({write(at(0), 2)})});
  p.add_thread({atomic({read(0, at(0))})});
  Semantics sem(p, ModelConfig::programmer());
  const auto report = check_sc_ltrf(sem, model::loc_set({0}, 1));
  EXPECT_TRUE(report.holds()) << report.counterexamples << " counterexamples of "
                              << report.hypothesis_instances;
}

TEST(ScLtrf, PublicationProgramHasNoWeakSuffixOnX) {
  // In the publication program every {x}-access is ordered; hypothesis
  // instances may exist for unstable prefixes only, and all must have
  // witnesses.
  Program p;
  p.name = "publication";
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), atomic({write(at(1), 1)})});
  p.add_thread({atomic({read(0, at(1))}), read(1, at(0))});
  Semantics sem(p, ModelConfig::programmer());
  const auto report = check_sc_ltrf(sem, model::loc_set({0}, 2));
  EXPECT_TRUE(report.holds());
}

TEST(ScLtrf, SpatialLocalityIgnoresOtherLocations) {
  // Races on y do not generate {x} hypothesis instances.
  Program p;
  p.name = "spatial";
  p.num_locs = 2;
  p.add_thread({write(at(1), 1), write(at(0), 1)});
  p.add_thread({write(at(1), 2)});
  Semantics sem(p, ModelConfig::programmer());
  const auto report = check_sc_ltrf(sem, model::loc_set({0}, 2));
  EXPECT_TRUE(report.holds());
}

}  // namespace
}  // namespace mtx::ltrf
