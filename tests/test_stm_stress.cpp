// Multithreaded integration tests: atomicity invariants under contention,
// opacity under fire, and the §5 privatization / publication protocols with
// quiescence fences — run against every registered backend through the
// unified StmBackend registry (one parameterized suite, no per-backend
// template copies).
#include <gtest/gtest.h>

#include <atomic>

#include "containers/bank.hpp"
#include "stm/backend.hpp"
#include "stm/tl2.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace mtx::stm {
namespace {

std::size_t stress_threads() { return std::min<std::size_t>(hw_threads(), 8); }

class BackendStress : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<StmBackend> stm_ = make_backend(GetParam());
};

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendStress,
                         ::testing::ValuesIn(backend_names()),
                         [](const auto& info) { return info.param; });

TEST_P(BackendStress, Counter) {
  StmBackend& stm = *stm_;
  Cell x(0);
  const std::size_t threads = stress_threads();
  constexpr int kIters = 3000;
  run_team(threads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i)
      stm.atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
  });
  EXPECT_EQ(x.plain_load(), threads * kIters);
  EXPECT_EQ(stm.stats().commits.load(), threads * kIters);
}

TEST_P(BackendStress, BankConservation) {
  StmBackend& stm = *stm_;
  containers::Bank<StmBackend> bank(stm, 64, 1000);
  const std::size_t threads = stress_threads();
  run_team(threads, [&](std::size_t tid) {
    Rng rng(tid + 1);
    for (int i = 0; i < 2000; ++i) {
      const auto from = static_cast<std::size_t>(rng.below(bank.size()));
      const auto to = static_cast<std::size_t>(rng.below(bank.size()));
      bank.transfer(from, to, rng.range(1, 50));
      if (i % 128 == 0) {
        EXPECT_EQ(bank.total(), bank.expected_total());
      }
    }
  });
  EXPECT_EQ(bank.total(), bank.expected_total());
}

// Opacity under fire: two cells always updated together; every transactional
// snapshot must see them equal.
TEST_P(BackendStress, SnapshotConsistency) {
  StmBackend& stm = *stm_;
  Cell a(0), b(0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  const std::size_t threads = std::max<std::size_t>(stress_threads(), 2);
  run_team(threads, [&](std::size_t tid) {
    if (tid == 0) {
      for (int i = 1; i <= 4000; ++i)
        stm.atomically([&](auto& tx) {
          tx.write(a, static_cast<word_t>(i));
          tx.write(b, static_cast<word_t>(i));
        });
      stop = true;
      return;
    }
    while (!stop) {
      word_t ra = 0, rb = 0;
      stm.atomically([&](auto& tx) {
        ra = tx.read(a);
        rb = tx.read(b);
      });
      if (ra != rb) bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0u);
}

// The §1/§5 privatization protocol on the runtime: a thread marks a cell
// private inside a transaction, fences, then works on it with plain
// accesses; mutator threads only touch the cell inside transactions that
// re-check the flag.  The plain phase must never observe interference.
TEST_P(BackendStress, PrivatizationProtocol) {
  StmBackend& stm = *stm_;
  Cell flag(0);  // 0 = shared, 1 = privatized
  Cell data(0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  run_team(2, [&](std::size_t tid) {
    if (tid == 0) {
      // Mutators: bump data while it is shared.
      while (!stop) {
        stm.atomically([&](auto& tx) {
          if (tx.read(flag) == 0) tx.write(data, tx.read(data) + 1);
        });
      }
      return;
    }
    // Privatizer.
    for (int round = 0; round < 200; ++round) {
      stm.atomically([&](auto& tx) { tx.write(flag, 1); });
      stm.quiesce();  // drain in-flight transactions (the §5 fence)
      // Plain phase: we own data now.
      const word_t v = data.plain_load();
      data.plain_store(v + 1000);
      if (data.plain_load() != v + 1000) violations.fetch_add(1);
      data.plain_store(v);
      stm.atomically([&](auto& tx) { tx.write(flag, 0); });
    }
    stop = true;
  });
  EXPECT_EQ(violations.load(), 0u);
}

// Publication: initialize data plainly, publish via a transactional flag;
// readers that transactionally observe the flag must see the payload (no
// fence required -- the direct dependency provides order, per §5/§6).
TEST_P(BackendStress, PublicationProtocol) {
  StmBackend& stm = *stm_;
  for (int round = 0; round < 300; ++round) {
    Cell flag(0), payload(0);
    std::atomic<std::uint64_t> violations{0};
    run_team(2, [&](std::size_t tid) {
      if (tid == 0) {
        payload.plain_store(42);  // plain initialization
        stm.atomically([&](auto& tx) { tx.write(flag, 1); });
        return;
      }
      word_t f = 0;
      stm.atomically([&](auto& tx) { f = tx.read(flag); });
      if (f == 1 && payload.plain_load() != 42) violations.fetch_add(1);
    });
    ASSERT_EQ(violations.load(), 0u) << "round " << round;
  }
}

// Mixed user aborts under contention: transactions write real garbage into
// the cells and then abort half the time; the conserved sum must survive
// (this exercises the undo-log backends hard).
TEST_P(BackendStress, AbortStorm) {
  StmBackend& stm = *stm_;
  constexpr std::size_t kCells = 16;
  std::vector<Cell> cells(kCells);
  for (auto& c : cells) c.plain_store(100);
  run_team(stress_threads(), [&](std::size_t tid) {
    Rng rng(tid * 77 + 5);
    for (int i = 0; i < 1500; ++i) {
      const auto from = static_cast<std::size_t>(rng.below(kCells));
      // Pick a distinct target (from == to would double-write one cell and
      // break conservation by construction).
      const auto to = (from + 1 + static_cast<std::size_t>(rng.below(kCells - 1))) % kCells;
      const bool doomed = rng.chance(1, 2);
      stm.atomically([&](auto& tx) {
        const word_t f = tx.read(cells[from]);
        const word_t t = tx.read(cells[to]);
        tx.write(cells[from], f - 7);
        tx.write(cells[to], t + 7);
        if (doomed) tx.user_abort();  // everything above must vanish
      });
    }
  });
  word_t sum = 0;
  for (auto& c : cells) sum += c.plain_load();
  EXPECT_EQ(sum, kCells * 100);
}

// Quiescence fence actually waits: a long-running transaction must resolve
// before a concurrent fence returns.  (Backend-specific: drives Tl2Stm::Tx
// directly to hold a transaction open.)
TEST(Quiesce, FenceWaitsForInFlightTxn) {
  Tl2Stm stm;
  Cell x(0);
  std::atomic<bool> in_txn{false};
  std::atomic<bool> txn_done{false};
  std::atomic<bool> fence_done{false};

  run_team(2, [&](std::size_t tid) {
    if (tid == 0) {
      stm.atomically([&](auto& tx) {
        tx.write(x, 1);
        in_txn = true;
        // Hold the transaction open briefly.
        for (int i = 0; i < 200000; ++i) {
          if (fence_done.load()) break;  // fence must NOT finish before us
          std::atomic_signal_fence(std::memory_order_seq_cst);
        }
      });
      txn_done = true;
      return;
    }
    while (!in_txn) std::this_thread::yield();
    stm.quiesce();
    // At fence return the transaction must have resolved.
    EXPECT_TRUE(txn_done.load());
    fence_done = true;
  });
  EXPECT_TRUE(fence_done.load());
}

}  // namespace
}  // namespace mtx::stm
