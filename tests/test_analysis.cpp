// The shared analysis engine: AnalysisContext memoization (relations and
// happens-before are computed exactly once per context no matter how many
// checkers share it), agreement between the context-taking overloads and
// the historical whole-trace entry points, and the fence-bounded window
// cutter's structural behavior on hand-built traces.
#include <gtest/gtest.h>

#include "model/analysis.hpp"
#include "model/closure.hpp"
#include "model/consistency.hpp"
#include "model/opacity.hpp"
#include "model/race.hpp"
#include "model/sequentiality.hpp"
#include "model/suborders.hpp"
#include "record/assemble.hpp"
#include "record/conformance.hpp"
#include "trace_builders.hpp"

namespace mtx::model {
namespace {

using test::TB;

// A small mixed trace: two committed transactions passing a token plus a
// published plain write.
Trace sample_trace() {
  TB b(2);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.begin(1).r(1, 0, 1, 1).w(1, 0, 2, 2).commit(1);
  b.w(0, 1, 7, 1);
  return b.trace();
}

TEST(AnalysisContext, RelationsAndHbComputedExactlyOnce) {
  const Trace t = sample_trace();
  AnalysisContext ctx(t, ModelConfig::programmer());

  reset_analysis_counters();
  const Analysis a = analyze(ctx);
  EXPECT_TRUE(a.consistent());
  AnalysisCounters c = analysis_counters();
  EXPECT_EQ(c.relations_computes, 1u);
  EXPECT_EQ(c.hb_computes, 1u);

  // Every additional checker on the same context reuses the cached
  // artifacts: the counters must not move.
  (void)check_wellformed(ctx);
  (void)find_l_races(ctx, all_locs(t));
  (void)has_mixed_race(ctx);
  (void)opaque(ctx);
  (void)axioms_hold(ctx);
  (void)contiguous_permutation(ctx);
  (void)causal_removal(ctx, 2);
  (void)Suborders::compute(ctx);
  c = analysis_counters();
  EXPECT_EQ(c.relations_computes, 1u);
  EXPECT_EQ(c.hb_computes, 1u);
}

TEST(AnalysisContext, SubordersSharesOneRelationBuild) {
  // The historical suborders entry points each rebuilt relations for the
  // same trace; through a shared context the pair costs one build.
  const Trace t = sample_trace();
  AnalysisContext ctx(t, ModelConfig::implementation());
  reset_analysis_counters();
  const bool c1 = lemma_c1_holds(ctx);
  const bool c2 = alt_consistent(ctx);
  EXPECT_EQ(analysis_counters().relations_computes, 1u);
  EXPECT_EQ(analysis_counters().hb_computes, 1u);
  EXPECT_EQ(c1, lemma_c1_holds(t));
  EXPECT_EQ(c2, alt_consistent(t));
}

TEST(AnalysisContext, OverloadsAgreeWithTraceEntryPoints) {
  const Trace t = sample_trace();
  for (const ModelConfig& cfg :
       {ModelConfig::programmer(), ModelConfig::implementation(),
        ModelConfig::strongest(), ModelConfig::base()}) {
    AnalysisContext ctx(t, cfg);
    const Analysis via_ctx = analyze(ctx);
    const Analysis via_trace = analyze(t, cfg);
    EXPECT_EQ(via_ctx.consistent(), via_trace.consistent()) << cfg.name;
    EXPECT_EQ(via_ctx.hb, via_trace.hb) << cfg.name;
    EXPECT_EQ(find_l_races(ctx, all_locs(t)).size(),
              find_l_races(t, via_trace.hb, all_locs(t)).size());
    EXPECT_EQ(opaque(ctx), opaque(t));
    EXPECT_EQ(axioms_hold(ctx), axioms_hold(t, via_trace.rel, cfg));
  }
}

TEST(AnalysisContext, SemiNaiveHbMatchesKnownRaceVerdicts) {
  // The programmer model's HBww side condition orders the transactional
  // writer before the later plain read through the crw bridge; the base
  // model does not.  Both verdicts exercise the fixpoint's derived edges.
  TB b(2);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.begin(1).r(1, 0, 1, 1).w(1, 1, 5, 1).commit(1);
  b.r(1, 0, 1, 1);  // plain read of x after the reading txn
  b.w(0, 0, 9, 2);  // plain write racing (or not) with the txn write
  const Trace& t = b.trace();

  AnalysisContext base(t, ModelConfig::base());
  AnalysisContext prog(t, ModelConfig::programmer());
  // Derived-edge sanity: the programmer hb is a (possibly strict) superset.
  EXPECT_TRUE(base.hb().subset_of(prog.hb()));
}

}  // namespace
}  // namespace mtx::model

namespace mtx::record {
namespace {

using test::TB;
using model::Trace;

TEST(CutWindows, NoFencesMeansOneWindow) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  const WindowPlan plan = cut_windows(b.trace());
  EXPECT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.cuts, 0u);
  EXPECT_EQ(plan.cut_candidates, 0u);
}

TEST(CutWindows, ValidFullQuiescenceCutSplits) {
  // Thread 2 commits a txn touching x before the fence; thread 3 fences all
  // locations; thread 2 transacts on x afterwards.  No plain accesses, no
  // spanning txns: the cut is valid.
  TB b(2);
  b.begin(2).w(2, 0, 1, 1).w(2, 1, 1, 1).commit(2);
  b.fence(3, 0).fence(3, 1);
  b.begin(2).r(2, 0, 1, 1).w(2, 0, 2, 2).commit(2);
  const WindowPlan plan = cut_windows(b.trace());
  ASSERT_EQ(plan.windows.size(), 2u);
  EXPECT_EQ(plan.cuts, 1u);
  // Window 1 only accesses location 0, so the carry is sparse: one write
  // re-establishing x0's pre-cut state.  x1's state is not needed (no read
  // to fulfil, no race partner) and is not carried.
  EXPECT_EQ(plan.windows[1].carried, 1u);
  // The trace replays the read against the carry write cleanly.
  const ConformanceReport rep = check_conformance(plan.windows[1].trace);
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str() << plan.windows[1].trace.str();
  EXPECT_EQ(rep.l_races, 0u);
}

TEST(CutWindows, PartialFenceWithCrossCutUncoveredTrafficIsNoCut) {
  // A fence covering only location 0 is a cut CANDIDATE (domain-scoped
  // fences are first-class since PR 6), but location 1 — uncovered — is
  // written on both sides of the group, so nothing orders that pair across
  // the cut: rule (d) refuses it and the window grows over the conflict.
  TB b(2);
  b.begin(2).w(2, 0, 1, 1).w(2, 1, 1, 1).commit(2);
  b.fence(3, 0);  // location 1 not quiesced
  b.begin(2).w(2, 1, 2, 2).commit(2);
  const WindowPlan plan = cut_windows(b.trace());
  EXPECT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.cuts, 0u);
}

TEST(CutWindows, PartialFenceCutsWhenUncoveredTrafficIsOneSided) {
  // Same partial fence, but location 1's only access is pre-group: every
  // cross-cut conflict is on the covered location, so the cut is valid.
  TB b(2);
  b.begin(2).w(2, 0, 1, 1).w(2, 1, 1, 1).commit(2);
  b.fence(3, 0);
  b.begin(2).r(2, 0, 1, 1).w(2, 0, 2, 2).commit(2);
  const WindowPlan plan = cut_windows(b.trace());
  ASSERT_EQ(plan.windows.size(), 2u);
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.cuts, 1u);
  // The carry re-establishes only what window 1 touches: location 0.  The
  // uncovered (and unaccessed) location 1 contributes nothing to window 1's
  // judgment, so the sparse carry drops it.
  EXPECT_EQ(plan.windows[1].carried, 1u);
  const ConformanceReport rep = check_conformance(plan.windows[1].trace);
  EXPECT_TRUE(rep.wf.ok()) << rep.wf.str() << plan.windows[1].trace.str();
  EXPECT_EQ(rep.l_races, 0u);
}

TEST(CutWindows, UnpublishedPlainWriteInvalidatesCut) {
  // An unpublished plain write before the fence could race with anything
  // after it; the cut must be refused so the pair stays in one window.
  TB b(1);
  b.begin(2).w(2, 0, 1, 1).commit(2);
  b.w(1, 0, 5, 2);  // plain write by thread 1, never published
  b.fence(3, 0);
  b.begin(2).w(2, 0, 7, 3).commit(2);
  const WindowPlan plan = cut_windows(b.trace());
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.cuts, 0u);
  EXPECT_EQ(plan.windows.size(), 1u);
}

TEST(CutWindows, SpanningTransactionInvalidatesCut) {
  // A transaction open across the fence (runtime assembly sinks fences past
  // these, but seeded traces may not) makes the boundary meaningless.
  TB b(1);
  b.begin(2).w(2, 0, 1, 1);
  b.fence(3, 0);
  b.commit(2);  // resolution after the fence: the txn spans the cut
  const WindowPlan plan = cut_windows(b.trace());
  EXPECT_EQ(plan.cut_candidates, 1u);
  EXPECT_EQ(plan.windows.size(), 1u);
}

TEST(CutWindows, SummaryFenceEquivalentToPerLocationExpansion) {
  // A summary <Q*> must judge and cut exactly like the family of <Qx> it
  // abbreviates: same WF12/HBCQ/HBQB behavior, same window plan shape, same
  // verdict string.
  auto build = [](bool summary) {
    TB b(3);
    b.begin(2).w(2, 0, 1, 1).w(2, 1, 1, 1).commit(2);
    b.w(2, 2, 5, 1);  // plain write, published below
    b.begin(2).w(2, 2, 6, 2).commit(2);
    if (summary)
      b.fence_all(3);
    else
      b.fence(3, 0).fence(3, 1).fence(3, 2);
    b.begin(2).r(2, 0, 1, 1).w(2, 0, 2, 2).commit(2);
    b.begin(4).w(4, 2, 9, 3).commit(4);
    return b.trace();
  };
  const Trace expanded = build(false);
  const Trace summary = build(true);
  const WindowPlan pe = cut_windows(expanded);
  const WindowPlan ps = cut_windows(summary);
  EXPECT_EQ(pe.cuts, ps.cuts);
  ASSERT_EQ(pe.windows.size(), ps.windows.size());
  for (std::size_t k = 0; k < pe.windows.size(); ++k) {
    EXPECT_EQ(pe.windows[k].carried, ps.windows[k].carried);
    EXPECT_EQ(check_conformance(pe.windows[k].trace).verdict(),
              check_conformance(ps.windows[k].trace).verdict());
  }
  EXPECT_EQ(check_conformance(expanded).verdict(),
            check_conformance(summary).verdict());
}

TEST(CutWindows, MinWindowEventsMergesSmallWindows) {
  TB b(1);
  b.begin(2).w(2, 0, 1, 1).commit(2);
  b.fence(2, 0);
  b.begin(2).w(2, 0, 2, 2).commit(2);
  b.fence(2, 0);
  b.begin(2).w(2, 0, 3, 3).commit(2);
  EXPECT_EQ(cut_windows(b.trace(), 0).windows.size(), 3u);
  EXPECT_EQ(cut_windows(b.trace(), 1000).windows.size(), 1u);
}

}  // namespace
}  // namespace mtx::record
