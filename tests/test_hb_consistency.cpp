// Happens-before rules (HBdefn/HBtrans/HBww + variants, HBCQ/HBQB) and the
// consistency axioms, checked on hand-built traces from the paper's figures.
#include <gtest/gtest.h>

#include "model/consistency.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::analyze;
using model::Analysis;
using model::ModelConfig;

constexpr Loc X = 0, Y = 1;

// Example 2.1 privatization execution: a reads y=0 and writes x=1; b writes
// y=1; plain Wx2 po-after b, with Wx1 ww Wx2.
Trace privatization_exec() {
  TB b(2);
  b.begin(0).r(0, Y, 0, 0).w(0, X, 1, 1).commit(0);  // a: 4..7 (Wx1 = 6)
  b.begin(1).w(1, Y, 1, 1).commit(1).w(1, X, 2, 2);  // b: 8..10, plain Wx2: 11
  return b.trace();
}

TEST(HB, BaseIncludesPoCwrCww) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.begin(1).r(1, X, 1, 1).commit(1);
  const Analysis an = analyze(b.trace(), ModelConfig::base());
  // cwr lifted across the two txns: writer (4) hb reader's begin (6).
  EXPECT_TRUE(an.hb.test(4, 7));
  EXPECT_TRUE(an.hb.test(4, 6));  // lifted to the begin as well
  EXPECT_TRUE(an.hb.test(3, 4));  // po
  EXPECT_TRUE(an.hb.test(1, 8));  // init before everything
}

TEST(HB, TransitivityThroughThreads) {
  TB b(2);
  b.w(0, X, 1, 1);
  b.begin(0).w(0, Y, 1, 1).commit(0);
  b.begin(1).r(1, Y, 1, 1).commit(1);
  b.r(1, X, 1, 1);
  const Analysis an = analyze(b.trace(), ModelConfig::base());
  // Wx1 (3) hb plain read of x (last) via po;cwr;po.
  EXPECT_TRUE(an.hb.test(3, b.trace().size() - 1));
}

TEST(HBww, AddsOrderForPrivatization) {
  const Trace t = privatization_exec();
  const Analysis base = analyze(t, ModelConfig::base());
  const Analysis prog = analyze(t, ModelConfig::programmer());
  // Without HBww there is no order from Wx1 (6) to plain Wx2 (11).
  EXPECT_FALSE(base.hb.test(6, 11));
  // HBww: Wx1 lww Wx2, Wx1 crw b hb Wx2  =>  Wx1 hb Wx2.
  EXPECT_TRUE(prog.hb.test(6, 11));
  EXPECT_TRUE(prog.consistent());
}

TEST(HBww, CascadeAcrossTwoPrivatizations) {
  // The §2 cascading example: two privatization pairs chained by po on the
  // plain thread; HBww order from the first must feed the second.
  TB b(4);  // x=0, y=1, x'=2, y'=3
  b.begin(0).r(0, 1, 0, 0).w(0, 0, 1, 1).commit(0);       // a
  b.begin(1).w(1, 1, 1, 1).commit(1);                     // b
  b.begin(1).r(1, 3, 0, 0).w(1, 2, 1, 1).commit(1);       // a'
  b.begin(2).w(2, 3, 1, 1).commit(2);                     // b'
  b.w(2, 2, 2, 2);                                        // x':=2
  b.w(2, 0, 2, 2);                                        // x:=2
  const Trace& t = b.trace();
  const Analysis an = analyze(t, ModelConfig::programmer());
  ASSERT_TRUE(an.consistent());
  // init occupies 0..5; a = 6..9 with Wx1 at 8; a' = 13..16 with Wx'1 at 15.
  const std::size_t wx1 = 8;
  const std::size_t wx2 = t.size() - 1;  // plain x:=2
  const std::size_t wxp1 = 15;
  const std::size_t wxp2 = t.size() - 2;
  ASSERT_TRUE(t[wx1].is_write());
  ASSERT_TRUE(t[wxp1].is_write());
  EXPECT_TRUE(an.hb.test(wxp1, wxp2));  // first HBww application
  EXPECT_TRUE(an.hb.test(wx1, wx2));    // cascaded through the second
}

TEST(AntiWW, ForbidsReversedPrivatization) {
  // Example 2.2: a reads y=0 and writes x=2 with the *later* timestamp.
  TB b(2);
  b.begin(0).r(0, Y, 0, 0).w(0, X, 2, 2).commit(0);
  b.begin(1).w(1, Y, 1, 1).commit(1).w(1, X, 1, 1);
  const Trace& t = b.trace();
  EXPECT_TRUE(model::consistent(t, ModelConfig::base()));
  const Analysis an = analyze(t, ModelConfig::programmer());
  EXPECT_FALSE(an.anti_ww);
  EXPECT_EQ(an.failure(), "AntiWW");
  // The implementation model drops AntiWW.
  EXPECT_TRUE(model::consistent(t, ModelConfig::implementation()));
}

TEST(Causality, ForbidsLoadBuffering) {
  // r:=x;y:=1 || q:=y;x:=1 with both reads seeing 1.  Any sequencing puts
  // some read before its write in index order, violating WF8 — load
  // buffering cannot even be expressed as a trace.
  TB lb(2);
  lb.r(0, X, 1, 1).w(0, Y, 1, 1);
  lb.r(1, Y, 1, 1).w(1, X, 1, 1);
  EXPECT_FALSE(model::check_wellformed(lb.trace()).ok());
}

TEST(Coherence, RejectsWriteBehindHb) {
  // Single thread writes x=1 @2 then x=2 @1: po (hb) disagrees with ww.
  TB b(1);
  b.w(0, X, 1, 2).w(0, X, 2, 1);
  const Analysis an = analyze(b.trace(), ModelConfig::base());
  EXPECT_FALSE(an.coherence);
}

TEST(Observation, RejectsStaleReadAfterHb) {
  // w(x,1)@1, w(x,2)@2 same thread, then read x=1: po makes it stale.
  TB b(1);
  b.w(0, X, 1, 1).w(0, X, 2, 2).r(0, X, 1, 1);
  const Analysis an = analyze(b.trace(), ModelConfig::base());
  EXPECT_FALSE(an.observation);
  EXPECT_EQ(an.failure(), "Observation");
}

TEST(Observation, AbortedOverwriteIsHarmless) {
  // The §2 antidependency figure: reading 1 after an *aborted* Wx2 is fine.
  TB b(1);
  b.w(0, X, 1, 1);
  b.begin(0).w(0, X, 2, 2).abort(0);
  b.r(0, X, 1, 1);
  const Analysis an = analyze(b.trace(), ModelConfig::base());
  EXPECT_TRUE(an.consistent());
}

TEST(Consistency, StoreBufferingAllowed) {
  TB b(2);
  b.w(0, X, 1, 1).w(1, Y, 1, 1);
  b.r(0, Y, 0, 0).r(1, X, 0, 0);
  EXPECT_TRUE(model::consistent(b.trace(), ModelConfig::base()));
  EXPECT_TRUE(model::consistent(b.trace(), ModelConfig::strongest()));
}

TEST(HBCQ_HBQB, FenceOrdersAroundTouchingTxns) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);  // 3..5
  b.fence(1, X);                       // 6
  b.begin(2).r(2, X, 1, 1).commit(2);  // 7..9
  const Analysis an = analyze(b.trace(), ModelConfig::implementation());
  EXPECT_TRUE(an.hb.test(5, 6));  // HBCQ: commit hb fence
  EXPECT_TRUE(an.hb.test(6, 7));  // HBQB: fence hb later begin
  EXPECT_TRUE(an.consistent());
}

TEST(HBCQ_HBQB, FenceIgnoresUntouchedTxns) {
  TB b(2);
  b.begin(0).w(0, Y, 1, 1).commit(0);  // 4..6
  b.fence(1, X);                       // 7; fence on x, txn touches only y
  const Analysis an = analyze(b.trace(), ModelConfig::implementation());
  EXPECT_FALSE(an.hb.test(6, 7));
}

TEST(HBCQ_HBQB, ProgrammerModelIgnoresFences) {
  TB b(1);
  b.begin(0).w(0, X, 1, 1).commit(0);
  b.fence(1, X);
  const Analysis an = analyze(b.trace(), ModelConfig::programmer());
  EXPECT_FALSE(an.hb.test(5, 6));
}

TEST(Variants, PrimedRulesUseHbThenCrw) {
  // HB'ww witness (Ex 2.3): plain Wx1; txn b reads y=0; txn c writes x=2,
  // y=1, with Wx2 ww Wx1.
  TB b(2);
  b.w(0, X, 1, 2);                                    // plain Wx1 @2 (3)
  b.begin(0).r(0, Y, 0, 0).commit(0);                 // b: 4..6
  b.begin(1).w(1, X, 2, 1).w(1, Y, 1, 1).commit(1);   // c: 7..10
  const Trace& t = b.trace();
  EXPECT_TRUE(model::consistent(t, ModelConfig::programmer()));
  const Analysis an = analyze(t, ModelConfig::variant_hb_ww_p());
  EXPECT_FALSE(an.consistent());
  EXPECT_EQ(an.failure(), "Anti'WW");
}

TEST(Variants, StrongestIncludesAllSideConditions) {
  const ModelConfig s = ModelConfig::strongest();
  EXPECT_TRUE(s.hb_ww && s.hb_rw && s.hb_wr);
  EXPECT_TRUE(s.hb_ww_p && s.hb_rw_p && s.hb_wr_p);
  EXPECT_TRUE(s.anti_ww && s.anti_rw && s.anti_ww_p && s.anti_rw_p);
  EXPECT_EQ(ModelConfig::example_2_3_variants().size(), 6u);
}

TEST(Analysis, FailureNamesFirstBrokenAxiom) {
  TB b(1);
  b.w(0, X, 1, 2).w(0, X, 2, 1);
  const Analysis an = analyze(b.trace(), ModelConfig::programmer());
  EXPECT_FALSE(an.consistent());
  EXPECT_EQ(an.failure(), "Coherence");
  TB ok(1);
  ok.w(0, X, 1, 1);
  EXPECT_EQ(analyze(ok.trace(), ModelConfig::programmer()).failure(), "");
}

TEST(Analysis, HbMonotoneInEnabledRules) {
  const Trace t = privatization_exec();
  const Analysis base = analyze(t, ModelConfig::base());
  const Analysis prog = analyze(t, ModelConfig::programmer());
  const Analysis strong = analyze(t, ModelConfig::strongest());
  EXPECT_TRUE(base.hb.subset_of(prog.hb));
  EXPECT_TRUE(prog.hb.subset_of(strong.hb));
}

}  // namespace
}  // namespace mtx::test
