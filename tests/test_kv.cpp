// The sharded KV store and its workload engine: store semantics, the two
// mixed-access protocols, the deterministic single-thread pin behind the
// campaign CSV rows, and — the oracle half — sampled runtime conformance
// across every registered backend under the priv-heavy mix, which is the
// suite's TSan surface (registered under the `concurrency` ctest label).
#include <gtest/gtest.h>

#include <set>

#include "containers/thash.hpp"
#include "kv/kvstore.hpp"
#include "kv/workload.hpp"
#include "stm/backend.hpp"

namespace {

using namespace mtx;

std::unique_ptr<stm::StmBackend> tl2() { return stm::make_backend("tl2"); }

TEST(THashSizing, BucketCountConstructorAndAccessor) {
  auto stm = tl2();
  containers::THash<stm::StmBackend> small(*stm, 8);
  EXPECT_EQ(small.bucket_count(), 8u);
  containers::THash<stm::StmBackend> dflt(*stm);
  EXPECT_EQ(dflt.bucket_count(), containers::THash<stm::StmBackend>::kDefaultBuckets);
}

TEST(THashSizing, RecommendedBucketsTargetsLoadFactorTwo) {
  using TH = containers::THash<stm::StmBackend>;
  EXPECT_EQ(TH::recommended_buckets(0), TH::kDefaultBuckets / 4);
  // Power of two, and load factor at the hint stays in (1, 4].
  for (std::size_t keys : {100u, 1000u, 5000u, 100000u}) {
    const std::size_t b = TH::recommended_buckets(keys);
    EXPECT_EQ(b & (b - 1), 0u) << keys;
    EXPECT_GE(b * 4, keys / 2) << keys;
    EXPECT_LE(b, keys) << keys;
  }
  // Monotone in the hint.
  EXPECT_LE(TH::recommended_buckets(100), TH::recommended_buckets(10000));
}

TEST(KvStore, PutGetEraseRmwRouteAcrossShards) {
  auto stm = tl2();
  kv::KvStore::Options o;
  o.shards = 4;
  o.expected_keys = 64;
  kv::KvStore store(*stm, o);
  for (std::int64_t k = 0; k < 40; ++k) EXPECT_TRUE(store.put(k, k * 10));
  EXPECT_EQ(store.size(), 40u);
  EXPECT_FALSE(store.put(7, 70));  // update, not insert
  std::int64_t v = 0;
  EXPECT_TRUE(store.get(7, &v));
  EXPECT_EQ(v, 70);
  EXPECT_TRUE(store.rmw(7, [](std::int64_t old) { return old + 1; }, &v));
  EXPECT_EQ(v, 71);
  EXPECT_FALSE(store.rmw(999, [](std::int64_t old) { return old; }));
  EXPECT_TRUE(store.erase(7));
  EXPECT_FALSE(store.get(7, nullptr));
  EXPECT_EQ(store.size(), 39u);
  // Keys actually spread: no shard holds everything.
  std::set<std::size_t> used;
  for (std::int64_t k = 0; k < 40; ++k) used.insert(store.shard_of(k));
  EXPECT_GT(used.size(), 1u);
}

TEST(KvStore, PrivatizeScanSeesExactContents) {
  auto stm = tl2();
  kv::KvStore::Options o;
  o.shards = 2;
  kv::KvStore store(*stm, o);
  std::int64_t expect_sum[2] = {0, 0};
  std::size_t expect_keys[2] = {0, 0};
  for (std::int64_t k = 0; k < 30; ++k) {
    store.put(k, k + 100);
    expect_sum[store.shard_of(k)] += k + 100;
    ++expect_keys[store.shard_of(k)];
  }
  for (std::size_t s = 0; s < 2; ++s) {
    std::int64_t fn_sum = 0;
    const kv::ScanResult r =
        store.privatize_scan(s, [&](std::int64_t, std::int64_t v) { fn_sum += v; });
    EXPECT_TRUE(r.privatized);
    EXPECT_EQ(r.keys, expect_keys[s]);
    EXPECT_EQ(r.value_sum, expect_sum[s]);
    EXPECT_EQ(fn_sum, expect_sum[s]);
    EXPECT_EQ(store.stats(s).scans, 1u);
  }
  // The shard reopened: writers go through again.
  EXPECT_TRUE(store.put(1000, 1));
}

TEST(KvStore, SnapshotPublishOnceThenPlainReads) {
  auto stm = tl2();
  kv::KvStore store(*stm);
  for (std::int64_t k = 0; k < 10; ++k) store.put(k, k * 3);
  EXPECT_FALSE(store.snapshot_attach());  // nothing published yet
  EXPECT_TRUE(store.publish_snapshot({0, 1, 2, 3}));
  EXPECT_FALSE(store.publish_snapshot({4}));  // once-only
  EXPECT_TRUE(store.snapshot_attach());
  std::int64_t v = 0;
  EXPECT_TRUE(store.snapshot_read(2, &v));
  EXPECT_EQ(v, 6);
  EXPECT_FALSE(store.snapshot_read(4, &v));  // not frozen
  // Later transactional updates do not disturb the frozen value.
  store.put(2, 999);
  EXPECT_TRUE(store.snapshot_read(2, &v));
  EXPECT_EQ(v, 6);
}

TEST(KvWorkload, MixesAreWellFormed) {
  EXPECT_GE(kv::standard_mixes().size(), 5u);
  for (const kv::Mix& m : kv::standard_mixes()) {
    EXPECT_EQ(m.total_pct(), 100) << m.name;
    EXPECT_NE(kv::mix_by_name(m.name), nullptr);
  }
  EXPECT_EQ(kv::mix_by_name("nope"), nullptr);
}

kv::KvWorkloadOptions small_opts(std::size_t threads, std::uint64_t seed,
                                 bool sampled) {
  kv::KvWorkloadOptions o;
  o.threads = threads;
  o.seed = seed;
  // Fence expansion is domain-scoped now (one QFence per covered cell, not
  // one per location in the store), so scan frequency no longer forces a
  // tiny key space.  The remaining cost driver is each recorded window's
  // carry transaction re-writing O(cells) state before the O(n^2)/O(n^3)
  // model passes — geometry stays modest, not minimal.
  o.ops_per_thread = 48;
  o.store.preload_keys = 40;
  o.store.shards = 4;
  o.store.snap_keys = 4;
  if (sampled) {
    o.sample_every = 2;
    o.round_ops = 16;
  }
  return o;
}

// The campaign CSV/JSON rows only expose fields that are a pure function of
// (mix, seed, threads, ops): same-seed single-thread runs must agree on all
// of them — including final store contents via the invariant — and the op
// plan must not depend on the backend.
TEST(KvWorkload, DeterministicSingleThreadPin) {
  const kv::Mix& mix = *kv::mix_by_name("priv_heavy");
  auto s1 = stm::make_backend("tl2");
  auto s2 = stm::make_backend("tl2");
  auto s3 = stm::make_backend("sgl");
  const kv::KvResult a = kv::run_kv_workload(*s1, mix, small_opts(1, 5, false));
  const kv::KvResult b = kv::run_kv_workload(*s2, mix, small_opts(1, 5, false));
  const kv::KvResult c = kv::run_kv_workload(*s3, mix, small_opts(1, 5, false));
  for (const kv::KvResult* r : {&b, &c}) {
    EXPECT_EQ(a.ops, r->ops);
    EXPECT_EQ(a.reads, r->reads);
    EXPECT_EQ(a.updates, r->updates);
    EXPECT_EQ(a.inserts, r->inserts);
    EXPECT_EQ(a.scans, r->scans);
    EXPECT_EQ(a.rmws, r->rmws);
    EXPECT_EQ(a.snap_reads, r->snap_reads);
    EXPECT_TRUE(r->invariant_ok);
  }
  // Single thread: every scan attempt wins its privatization.
  EXPECT_EQ(a.scans_completed, a.scans);
  EXPECT_EQ(a.ops, a.reads + a.updates + a.inserts + a.scans + a.rmws + a.snap_reads);
  // A different seed reshuffles the plan.
  const kv::KvResult d = kv::run_kv_workload(*s1, mix, small_opts(1, 6, false));
  EXPECT_NE(std::make_tuple(a.reads, a.updates, a.scans),
            std::make_tuple(d.reads, d.updates, d.scans));
}

TEST(KvWorkload, OpCountsScheduleIndependentAcrossThreadedRuns) {
  const kv::Mix& mix = *kv::mix_by_name("a");
  auto s1 = stm::make_backend("norec");
  auto s2 = stm::make_backend("norec");
  const kv::KvResult a = kv::run_kv_workload(*s1, mix, small_opts(3, 9, false));
  const kv::KvResult b = kv::run_kv_workload(*s2, mix, small_opts(3, 9, false));
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_TRUE(a.invariant_ok);
  EXPECT_TRUE(b.invariant_ok);
}

// The acceptance gate: every registered backend runs the priv-heavy mix
// (privatize-scan + mutators + inserts under real threads) with sampled
// conformance on, and every captured window must pass the model's judgment.
// This is the suite's main TSan target.
TEST(KvConformance, SampledPrivHeavyConformantOnAllBackends) {
  const kv::Mix& mix = *kv::mix_by_name("priv_heavy");
  for (const std::string& name : stm::backend_names()) {
    auto stm = stm::make_backend(name);
    const kv::KvResult r = kv::run_kv_workload(*stm, mix, small_opts(3, 21, true));
    EXPECT_TRUE(r.invariant_ok) << name;
    EXPECT_GT(r.conf.sessions, 0u) << name;
    EXPECT_GE(r.conf.windows, r.conf.sessions) << name;
    EXPECT_EQ(r.conf.nonconformant, 0u) << name;
    EXPECT_GT(r.conf.recorded_actions, 0u) << name;
  }
}

// Determinism pin for the tentpole: per-shard scoped fences and whole-store
// fences must yield the SAME verdicts — identical schedule-independent op
// counts (the campaign CSV/signature surface), a passing store audit, and
// zero non-conformant windows on both settings, on every backend.  Domain
// scoping changes what a fence waits for and what its recorded QFences
// cover, never the workload semantics or the conformance outcome.
TEST(KvConformance, ScopedAndGlobalFencesAgreeOnVerdicts) {
  const kv::Mix& mix = *kv::mix_by_name("priv_heavy");
  for (const std::string& name : stm::backend_names()) {
    kv::KvWorkloadOptions scoped = small_opts(3, 21, true);
    scoped.ops_per_thread = 32;  // A/B doubles the runs (and TSan multiplies
    scoped.store.preload_keys = 24;    // them again): keep this pin's geometry lean
    kv::KvWorkloadOptions global = scoped;
    global.scoped_fences = false;
    auto s1 = stm::make_backend(name);
    auto s2 = stm::make_backend(name);
    const kv::KvResult a = kv::run_kv_workload(*s1, mix, scoped);
    const kv::KvResult b = kv::run_kv_workload(*s2, mix, global);
    EXPECT_EQ(a.ops, b.ops) << name;
    EXPECT_EQ(a.reads, b.reads) << name;
    EXPECT_EQ(a.updates, b.updates) << name;
    EXPECT_EQ(a.inserts, b.inserts) << name;
    EXPECT_EQ(a.scans, b.scans) << name;
    EXPECT_EQ(a.rmws, b.rmws) << name;
    EXPECT_EQ(a.snap_reads, b.snap_reads) << name;
    EXPECT_TRUE(a.invariant_ok) << name;
    EXPECT_TRUE(b.invariant_ok) << name;
    EXPECT_EQ(a.conf.nonconformant, 0u) << name << " (scoped)";
    EXPECT_EQ(b.conf.nonconformant, 0u) << name << " (global)";
    EXPECT_GT(a.conf.sessions, 0u) << name;
    EXPECT_GT(b.conf.sessions, 0u) << name;
  }
}

// Publication under load: snapshot-heavy traffic (plain reads of frozen
// values) interleaved with transactional mutators, judged by the model.
TEST(KvConformance, SampledPubHeavyConformant) {
  const kv::Mix& mix = *kv::mix_by_name("pub_heavy");
  for (const std::string& name : {std::string("tl2"), std::string("eager")}) {
    auto stm = stm::make_backend(name);
    const kv::KvResult r = kv::run_kv_workload(*stm, mix, small_opts(3, 33, true));
    EXPECT_TRUE(r.invariant_ok) << name;
    EXPECT_GT(r.conf.sessions, 0u) << name;
    EXPECT_EQ(r.conf.nonconformant, 0u) << name;
    EXPECT_GT(r.snap_reads, 0u) << name;
  }
}

}  // namespace
