// The reproduction table: every paper figure/example verdict, as a
// parameterized test over (catalog entry, model config) pairs, plus the
// race-freedom claims that are about executions rather than outcomes
// (Example 2.1, the Example 2.3 HBwr rows).
#include <gtest/gtest.h>

#include "litmus/catalog.hpp"
#include "model/race.hpp"

namespace mtx::lit {
namespace {

using model::ModelConfig;

struct Case {
  const LitmusTest* test;
  Expectation exp;
};

std::vector<Case> all_cases() {
  std::vector<Case> out;
  for (const LitmusTest& t : catalog())
    for (const Expectation& e : t.expected) out.push_back({&t, e});
  return out;
}

class CatalogVerdict : public ::testing::TestWithParam<Case> {};

TEST_P(CatalogVerdict, MatchesPaper) {
  const Case& c = GetParam();
  const VerdictRow row = run_verdict(*c.test, c.exp);
  EXPECT_EQ(row.actual_allowed, row.expected_allowed)
      << c.test->id << " (" << c.test->paper_ref << ") witness '"
      << c.test->witness_desc << "' under " << c.exp.config;
  EXPECT_GT(row.consistent_execs, 0u)
      << c.test->id << ": enumeration found no consistent executions at all";
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.test->id + "_" + info.param.exp.config;
  for (char& ch : n)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(Paper, CatalogVerdict, ::testing::ValuesIn(all_cases()),
                         case_name);

// ---------------------------------------------------------------------------
// Race-freedom claims (these are about executions, not final outcomes).
// ---------------------------------------------------------------------------

const LitmusTest& find_test(const std::string& id) {
  for (const LitmusTest& t : catalog())
    if (t.id == id) return t;
  throw std::runtime_error("no catalog entry " + id);
}

// Example 2.1: under the programmer model, every consistent execution of the
// privatization program is free of {x}-races (HBww orders the two writes).
TEST(RaceFreedom, PrivatizationRaceFreeUnderProgrammerModel) {
  const LitmusTest& t = find_test("E01");
  GraphEnum e(t.program, ModelConfig::programmer());
  const model::LocSet Lx = model::loc_set({0}, t.program.num_locs);
  std::size_t execs = 0;
  e.for_each([&](const Execution& ex) {
    ++execs;
    const auto an = model::analyze(ex.trace, ModelConfig::programmer());
    EXPECT_FALSE(model::has_l_race(ex.trace, an.hb, Lx)) << ex.trace.str();
  });
  EXPECT_GT(execs, 0u);
}

// ... whereas the base model leaves a race in the execution where the
// transaction read y=0 (this is exactly what HBww exists to remove).
TEST(RaceFreedom, PrivatizationRacyInBaseModel) {
  const LitmusTest& t = find_test("E01");
  GraphEnum e(t.program, ModelConfig::base());
  const model::LocSet Lx = model::loc_set({0}, t.program.num_locs);
  bool some_race = false;
  e.for_each([&](const Execution& ex) {
    const auto an = model::analyze(ex.trace, ModelConfig::base());
    if (model::has_l_race(ex.trace, an.hb, Lx)) some_race = true;
  });
  EXPECT_TRUE(some_race);
}

// Example 2.3 HBwr row: a transaction writes x, a later plain read of x
// reads it.  Under HBwr the execution is race-free; under base it races.
TEST(RaceFreedom, HBwrRowOrdersPlainReadAfterTxn) {
  Program p;
  p.num_locs = 2;  // x=0, y=1
  p.add_thread({atomic({read(0, at(1)), write(at(0), 1)}, "a")});
  p.add_thread({atomic({write(at(1), 1)}, "b"), read(0, at(0))});

  const model::LocSet Lx = model::loc_set({0}, 2);
  auto races_when_privatized = [&](const ModelConfig& cfg) {
    GraphEnum e(p, cfg);
    bool racy = false;
    e.for_each([&](const Execution& ex) {
      // Interesting executions: a read y=0 (serialized first) and the plain
      // read saw a's write.
      bool a_first = false, read_saw_1 = false;
      for (std::size_t i = 0; i < ex.trace.size(); ++i) {
        const auto& act = ex.trace[i];
        if (act.is_read() && act.loc == 1 && ex.trace.transactional(i))
          a_first = act.value == 0;
        if (act.is_read() && act.loc == 0 && ex.trace.plain(i))
          read_saw_1 = act.value == 1;
      }
      if (!(a_first && read_saw_1)) return;
      const auto an = model::analyze(ex.trace, cfg);
      racy |= model::has_l_race(ex.trace, an.hb, Lx);
    });
    return racy;
  };

  EXPECT_TRUE(races_when_privatized(ModelConfig::base()));
  EXPECT_FALSE(races_when_privatized(ModelConfig::variant_hb_wr()));
}

// Example 2.3 HB'wr row: plain write of x published into a transaction that
// reads it; HB'wr removes the race.
TEST(RaceFreedom, HBwrPrimeRowOrdersPlainWriteBeforeTxnRead) {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), atomic({read(0, at(1))}, "b")});
  p.add_thread({atomic({read(0, at(0)), write(at(1), 1)}, "c")});

  const model::LocSet Lx = model::loc_set({0}, 2);
  auto racy_publication = [&](const ModelConfig& cfg) {
    GraphEnum e(p, cfg);
    bool racy = false;
    e.for_each([&](const Execution& ex) {
      bool b_read_0 = false, c_read_1 = false;
      for (std::size_t i = 0; i < ex.trace.size(); ++i) {
        const auto& act = ex.trace[i];
        if (act.is_read() && act.loc == 1) b_read_0 = act.value == 0;
        if (act.is_read() && act.loc == 0) c_read_1 = act.value == 1;
      }
      if (!(b_read_0 && c_read_1)) return;
      const auto an = model::analyze(ex.trace, cfg);
      racy |= model::has_l_race(ex.trace, an.hb, Lx);
    });
    return racy;
  };

  EXPECT_TRUE(racy_publication(ModelConfig::base()));
  EXPECT_FALSE(racy_publication(ModelConfig::variant_hb_wr_p()));
}

// §6: the strongest variant (x86) agrees with the programmer model on every
// programmer-model catalog verdict (x86 validates the programmer model).
TEST(Compilation, StrongestRefinesProgrammerVerdicts) {
  for (const LitmusTest& t : catalog()) {
    bool has_prog = false, prog_allowed = false;
    for (const Expectation& e : t.expected)
      if (e.config == "programmer") {
        has_prog = true;
        prog_allowed = e.allowed;
      }
    if (!has_prog) continue;
    const OutcomeSet strong =
        enumerate_outcomes(t.program, ModelConfig::strongest());
    const bool strong_allowed = strong.any(t.witness);
    // Refinement: anything x86 exhibits, the programmer model allows.
    if (strong_allowed) {
      EXPECT_TRUE(prog_allowed)
          << t.id << ": strongest allows a witness the programmer model forbids";
    }
  }
}

TEST(Catalog, ConfigLookupRejectsUnknown) {
  EXPECT_THROW(config_by_name("no-such-model"), std::invalid_argument);
  EXPECT_EQ(config_by_name("programmer").name, "programmer");
}

TEST(Catalog, EveryEntryHasExpectations) {
  for (const LitmusTest& t : catalog()) {
    EXPECT_FALSE(t.expected.empty()) << t.id;
    EXPECT_FALSE(t.paper_ref.empty()) << t.id;
  }
  EXPECT_GE(catalog().size(), 25u);
}

}  // namespace
}  // namespace mtx::lit
