// QuiescenceRegistry: per-domain epoch grace periods (PR 6 tentpole).
//
// The registry's contract has three load-bearing clauses, each pinned here:
//   - a fence on domain d waits for in-flight transactions annotated d or 0,
//     and ONLY those — other domains' transactions never gate it;
//   - fence(0) waits for everything;
//   - concurrent fences arriving within one epoch coalesce onto a single
//     epoch advance (observable through fence_calls()/epoch_advances()).
//
// The blocking tests are one-sided by construction: "fence returns while X
// is in flight" hangs (and trips the ctest timeout) if the wait is too
// strong, and "fence has not returned after a grace delay" can only fail if
// the wait is too weak — a scheduler stall makes them pass, never flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "stm/quiesce.hpp"

namespace mtx::stm {
namespace {

using namespace std::chrono_literals;

TEST(QuiescenceRegistry, CreateDomainCyclesWithinRange) {
  QuiescenceRegistry reg;
  EXPECT_EQ(reg.ndomains(), 1);  // only domain 0 until someone asks
  const int first = reg.create_domain();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(reg.ndomains(), 2);
  // Exhaust the table: ids stay in [1, kMaxQuiesceDomains) and wrap.
  int last = first;
  for (int i = 1; i < 2 * (kMaxQuiesceDomains - 1); ++i) {
    last = reg.create_domain();
    EXPECT_GE(last, 1);
    EXPECT_LT(last, kMaxQuiesceDomains);
  }
  EXPECT_EQ(last, kMaxQuiesceDomains - 1);  // 2*(k-1) calls = two full cycles
  EXPECT_EQ(reg.ndomains(), kMaxQuiesceDomains);
}

TEST(QuiescenceRegistry, ClampDomainRejectsOutOfRange) {
  EXPECT_EQ(QuiescenceRegistry::clamp_domain(-3), 0);
  EXPECT_EQ(QuiescenceRegistry::clamp_domain(0), 0);
  EXPECT_EQ(QuiescenceRegistry::clamp_domain(5), 5);
  EXPECT_EQ(QuiescenceRegistry::clamp_domain(kMaxQuiesceDomains), 0);
}

TEST(QuiescenceRegistry, FenceWithNoTxnsReturnsImmediately) {
  QuiescenceRegistry reg;
  const int d = reg.create_domain();
  reg.fence();   // whole store
  reg.fence(d);  // scoped
  EXPECT_EQ(reg.fence_calls(), 2u);
}

// An in-flight transaction on domain e never gates a fence on domain d != e:
// the fence below returns while the other-domain transaction is still open.
// (This is the scaling property; if the wait were accidentally global the
// test would hang.)
TEST(QuiescenceRegistry, ScopedFenceIgnoresOtherDomainTxns) {
  QuiescenceRegistry reg;
  const int d1 = reg.create_domain();
  const int d2 = reg.create_domain();
  ASSERT_NE(d1, d2);

  std::atomic<bool> opened{false}, release{false};
  std::thread other([&] {
    DomainScope scope(d1);
    reg.begin_txn();
    opened = true;
    while (!release) std::this_thread::yield();
    reg.end_txn();
  });
  while (!opened) std::this_thread::yield();

  reg.fence(d2);  // must NOT wait for the d1 transaction
  release = true;
  other.join();
}

// A fence on d waits for in-flight domain-d transactions...
TEST(QuiescenceRegistry, ScopedFenceWaitsOwnDomainTxn) {
  QuiescenceRegistry reg;
  const int d = reg.create_domain();

  std::atomic<bool> opened{false}, release{false}, fenced{false};
  std::thread txn([&] {
    DomainScope scope(d);
    reg.begin_txn();
    opened = true;
    while (!release) std::this_thread::yield();
    reg.end_txn();
  });
  while (!opened) std::this_thread::yield();

  std::thread fencer([&] {
    reg.fence(d);
    fenced = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(fenced) << "fence(d) returned with a domain-d txn in flight";
  release = true;
  txn.join();
  fencer.join();
  EXPECT_TRUE(fenced);
}

// ...and for whole-store (domain 0) transactions, which may touch anything.
TEST(QuiescenceRegistry, ScopedFenceWaitsWholeStoreTxn) {
  QuiescenceRegistry reg;
  const int d = reg.create_domain();

  std::atomic<bool> opened{false}, release{false}, fenced{false};
  std::thread txn([&] {
    reg.begin_txn();  // tl_txn_domain defaults to 0: whole store
    opened = true;
    while (!release) std::this_thread::yield();
    reg.end_txn();
  });
  while (!opened) std::this_thread::yield();

  std::thread fencer([&] {
    reg.fence(d);
    fenced = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(fenced) << "fence(d) returned with a whole-store txn in flight";
  release = true;
  txn.join();
  fencer.join();
  EXPECT_TRUE(fenced);
}

TEST(QuiescenceRegistry, WholeStoreFenceWaitsScopedTxn) {
  QuiescenceRegistry reg;
  const int d = reg.create_domain();

  std::atomic<bool> opened{false}, release{false}, fenced{false};
  std::thread txn([&] {
    DomainScope scope(d);
    reg.begin_txn();
    opened = true;
    while (!release) std::this_thread::yield();
    reg.end_txn();
  });
  while (!opened) std::this_thread::yield();

  std::thread fencer([&] {
    reg.fence();
    fenced = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(fenced) << "fence() returned with a scoped txn in flight";
  release = true;
  txn.join();
  fencer.join();
  EXPECT_TRUE(fenced);
}

// A transaction that begins AFTER the fence's epoch advance never gates it:
// sequentially, fence -> begin -> fence(other thread's txn at new epoch)
// would deadlock under a broken comparison.  Covered by the immediate-return
// test plus this sequenced begin/end pairing.
TEST(QuiescenceRegistry, SequentialFencesAdvanceTwoEpochsEach) {
  QuiescenceRegistry reg;
  const int d = reg.create_domain();
  const std::uint64_t before = reg.epoch_advances();
  reg.fence(d);  // advances d and the global epoch: +2
  reg.fence(d);  // a later epoch: another +2 (no coalescing across epochs)
  EXPECT_EQ(reg.fence_calls(), 2u);
  EXPECT_EQ(reg.epoch_advances() - before, 4u);
}

// Concurrent fences on one domain coalesce: total advances never exceed
// 2 per call, and the counters are exact under contention.  (Whether any
// pair actually lands in the same epoch is schedule-dependent, so the
// sharper "strictly fewer" claim is not asserted.)
TEST(QuiescenceRegistry, ConcurrentFencesNeverOverAdvance) {
  QuiescenceRegistry reg;
  const int d = reg.create_domain();
  constexpr int kThreads = 4, kFences = 200;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kFences; ++i) reg.fence(d);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.fence_calls(), static_cast<std::uint64_t>(kThreads * kFences));
  EXPECT_LE(reg.epoch_advances(), 2u * kThreads * kFences);
  EXPECT_GE(reg.epoch_advances(), 2u);  // at least one full advance happened
}

}  // namespace
}  // namespace mtx::stm
