// Transactional containers: functional tests plus multithreaded
// linearizability-style checks, run over every registered backend through
// the StmBackend registry (one parameterized suite covers all runtimes).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "containers/bank.hpp"
#include "containers/thash.hpp"
#include "containers/tlist.hpp"
#include "containers/tqueue.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace mtx::containers {
namespace {

using stm::StmBackend;

class ContainerTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<StmBackend> stm_ = stm::make_backend(GetParam());
};

INSTANTIATE_TEST_SUITE_P(AllBackends, ContainerTest,
                         ::testing::ValuesIn(stm::backend_names()),
                         [](const auto& info) { return info.param; });

TEST_P(ContainerTest, ListInsertRemoveContains) {
  TList<StmBackend> list(*stm_);
  EXPECT_TRUE(list.insert(5));
  EXPECT_TRUE(list.insert(3));
  EXPECT_TRUE(list.insert(8));
  EXPECT_FALSE(list.insert(5));  // duplicate
  EXPECT_TRUE(list.contains(3));
  EXPECT_FALSE(list.contains(4));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.remove(3));
  EXPECT_FALSE(list.remove(3));
  EXPECT_FALSE(list.contains(3));
  EXPECT_EQ(list.size(), 2u);
}

TEST_P(ContainerTest, ListHandlesBoundaryKeys) {
  TList<StmBackend> list(*stm_);
  EXPECT_TRUE(list.insert(0));
  EXPECT_TRUE(list.insert(-1000));
  EXPECT_TRUE(list.insert(1000));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.contains(-1000));
}

TEST_P(ContainerTest, ConcurrentListDisjointKeys) {
  TList<StmBackend> list(*stm_);
  const std::size_t threads = std::min<std::size_t>(mtx::hw_threads(), 6);
  constexpr int kPerThread = 150;
  mtx::run_team(threads, [&](std::size_t tid) {
    for (int i = 0; i < kPerThread; ++i)
      EXPECT_TRUE(list.insert(static_cast<std::int64_t>(tid) * 10000 + i));
  });
  EXPECT_EQ(list.size(), threads * kPerThread);
}

TEST_P(ContainerTest, ConcurrentListContendedKeys) {
  TList<StmBackend> list(*stm_);
  std::atomic<int> inserted{0}, removed{0};
  const std::size_t threads = std::min<std::size_t>(mtx::hw_threads(), 6);
  mtx::run_team(threads, [&](std::size_t tid) {
    mtx::Rng rng(tid + 99);
    for (int i = 0; i < 400; ++i) {
      const std::int64_t key = static_cast<std::int64_t>(rng.below(32));
      if (rng.chance(1, 2)) {
        if (list.insert(key)) inserted.fetch_add(1);
      } else {
        if (list.remove(key)) removed.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(list.size(),
            static_cast<std::size_t>(inserted.load() - removed.load()));
}

TEST_P(ContainerTest, HashPutGetErase) {
  THash<StmBackend> map(*stm_, 16);
  EXPECT_TRUE(map.put(1, 10));
  EXPECT_TRUE(map.put(2, 20));
  EXPECT_FALSE(map.put(1, 11));  // update
  std::int64_t v = 0;
  EXPECT_TRUE(map.get(1, &v));
  EXPECT_EQ(v, 11);
  EXPECT_FALSE(map.get(3, &v));
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.size(), 1u);
}

TEST_P(ContainerTest, HashManyKeysAcrossBuckets) {
  THash<StmBackend> map(*stm_, 8);
  for (std::int64_t k = 0; k < 200; ++k) EXPECT_TRUE(map.put(k, k * k));
  EXPECT_EQ(map.size(), 200u);
  for (std::int64_t k = 0; k < 200; ++k) {
    std::int64_t v = -1;
    ASSERT_TRUE(map.get(k, &v));
    EXPECT_EQ(v, k * k);
  }
}

TEST_P(ContainerTest, ConcurrentHashMixed) {
  THash<StmBackend> map(*stm_, 32);
  const std::size_t threads = std::min<std::size_t>(mtx::hw_threads(), 6);
  mtx::run_team(threads, [&](std::size_t tid) {
    mtx::Rng rng(tid * 3 + 1);
    for (int i = 0; i < 400; ++i) {
      const std::int64_t key = static_cast<std::int64_t>(rng.below(64));
      switch (rng.below(3)) {
        case 0: map.put(key, static_cast<std::int64_t>(tid)); break;
        case 1: map.erase(key); break;
        default: {
          std::int64_t v;
          map.get(key, &v);
        }
      }
    }
  });
  // Consistency: size equals the number of distinct presently-stored keys.
  std::size_t count = 0;
  for (std::int64_t k = 0; k < 64; ++k) {
    std::int64_t v;
    if (map.get(k, &v)) ++count;
  }
  EXPECT_EQ(map.size(), count);
}

TEST_P(ContainerTest, QueueFifoOrder) {
  TQueue<StmBackend> q(*stm_, 8);
  EXPECT_EQ(q.size(), 0u);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (std::int64_t i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST_P(ContainerTest, QueueCapacityBound) {
  TQueue<StmBackend> q(*stm_, 3);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_FALSE(q.push(4));  // full
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.push(4));  // wraps
}

TEST_P(ContainerTest, QueueProducerConsumer) {
  TQueue<StmBackend> q(*stm_, 64);
  constexpr std::int64_t kItems = 2000;
  std::atomic<std::int64_t> consumed_sum{0};
  std::atomic<std::int64_t> consumed_count{0};
  mtx::run_team(2, [&](std::size_t tid) {
    if (tid == 0) {
      for (std::int64_t i = 1; i <= kItems;) {
        if (q.push(i)) ++i;
      }
    } else {
      while (consumed_count.load() < kItems) {
        if (auto v = q.pop()) {
          consumed_sum.fetch_add(*v);
          consumed_count.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(consumed_sum.load(), kItems * (kItems + 1) / 2);
}

TEST_P(ContainerTest, BankTransfersAndAudit) {
  Bank<StmBackend> bank(*stm_, 8, 50);
  bank.transfer(0, 1, 25);
  EXPECT_EQ(bank.plain_balance(0), 25);
  EXPECT_EQ(bank.plain_balance(1), 75);
  EXPECT_EQ(bank.total(), bank.expected_total());
  EXPECT_EQ(bank.audit_after_quiesce(), bank.expected_total());
}

}  // namespace
}  // namespace mtx::containers
