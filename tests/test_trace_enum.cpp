// The DFS trace enumerator: agreement with the graph enumerator on final
// outcomes, prefix-closedness of the visited set, and the §4 stability
// queries.
#include <gtest/gtest.h>

#include <set>

#include "litmus/graph_enum.hpp"
#include "litmus/trace_enum.hpp"

namespace mtx::lit {
namespace {

using model::Analysis;
using model::ModelConfig;
using model::Trace;

Program message_passing_txn() {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), atomic({write(at(1), 1)})});
  p.add_thread({atomic({read(0, at(1))}), read(1, at(0))});
  return p;
}

// Extract the final-outcome fingerprint of a complete trace (all program
// actions present).
std::string outcome_key(const Trace& t, int num_locs) {
  std::string k;
  for (int x = 0; x < num_locs; ++x) k += std::to_string(t.final_value(x)) + ",";
  return k;
}

TEST(TraceEnum, VisitsOnlyConsistentTraces) {
  TraceEnum e(message_passing_txn(), ModelConfig::programmer());
  std::size_t visited = 0;
  e.explore([&](const Trace& t, const Analysis& an, std::size_t) {
    ++visited;
    EXPECT_TRUE(an.consistent()) << t.str();
    return TraceEnum::Visit::Continue;
  });
  EXPECT_GT(visited, 10u);
  EXPECT_FALSE(e.truncated());
}

TEST(TraceEnum, FinalMemoryAgreesWithGraphEnum) {
  const Program p = message_passing_txn();
  // Graph enumerator's final-memory set.
  std::set<std::string> graph_keys;
  GraphEnum ge(p, ModelConfig::programmer());
  ge.for_each([&](const Execution& ex) {
    graph_keys.insert(outcome_key(ex.trace, p.num_locs));
  });

  // DFS complete traces: init (4) + thread0 (Wx,B,Wy,C) + thread1 (B,Ry,C,Rx)
  // = 12 actions.
  std::set<std::string> dfs_keys;
  TraceEnum te(p, ModelConfig::programmer());
  te.explore([&](const Trace& t, const Analysis&, std::size_t) {
    if (t.size() == 12u) dfs_keys.insert(outcome_key(t, p.num_locs));
    return TraceEnum::Visit::Continue;
  });
  EXPECT_EQ(graph_keys, dfs_keys);
}

TEST(TraceEnum, PrefixClosed) {
  // Every visited trace's own prefix (one action shorter) is also visited.
  TraceEnum e(message_passing_txn(), ModelConfig::programmer());
  std::set<std::string> seen;
  auto key = [](const Trace& t) {
    std::string k;
    for (std::size_t i = 0; i < t.size(); ++i) k += t[i].str();
    return k;
  };
  std::vector<Trace> all;
  e.explore([&](const Trace& t, const Analysis&, std::size_t) {
    seen.insert(key(t));
    all.push_back(t);
    return TraceEnum::Visit::Continue;
  });
  for (const Trace& t : all) {
    if (t.size() <= 6) continue;  // init only
    std::vector<bool> keep(t.size(), true);
    keep[t.size() - 1] = false;
    EXPECT_TRUE(seen.count(key(t.subsequence(keep)))) << t.str();
  }
}

TEST(TraceEnum, ExploreFromExtendsBase) {
  const Program p = message_passing_txn();
  TraceEnum e(p, ModelConfig::programmer());
  // Base: init + plain Wx1.
  Trace base = Trace::with_init(2);
  base.append(model::make_write(0, 0, 1, Rational(1)));
  std::size_t visits = 0;
  e.explore_from(base, [&](const Trace& t, const Analysis&, std::size_t appended) {
    if (appended != static_cast<std::size_t>(-1)) {
      ++visits;
      EXPECT_GT(t.size(), base.size());
    }
    return TraceEnum::Visit::Continue;
  });
  EXPECT_GT(visits, 0u);
}

TEST(TraceEnum, ExploreFromRejectsForeignTrace) {
  TraceEnum e(message_passing_txn(), ModelConfig::programmer());
  Trace bogus = Trace::with_init(2);
  bogus.append(model::make_write(0, 0, 42, Rational(1)));  // program writes 1
  std::size_t visits = 0;
  e.explore_from(bogus, [&](const Trace&, const Analysis&, std::size_t) {
    ++visits;
    return TraceEnum::Visit::Continue;
  });
  EXPECT_EQ(visits, 0u);
}

TEST(TraceEnum, StabilityPublication) {
  // After the publication handshake committed, {x} is stable: no extension
  // races on x.
  const Program p = message_passing_txn();
  TraceEnum e(p, ModelConfig::programmer());

  Trace sigma = Trace::with_init(2);
  sigma.append(model::make_write(0, 0, 1, Rational(1)));
  const int b0 = sigma.append(model::make_begin(0));
  sigma.append(model::make_write(0, 1, 1, Rational(1)));
  sigma.append(model::make_commit(0, sigma[static_cast<std::size_t>(b0)].name));
  ASSERT_TRUE(model::consistent(sigma, ModelConfig::programmer()));

  const model::LocSet Lx = model::loc_set({0}, 2);
  EXPECT_TRUE(e.is_L_stable(sigma, Lx));
  EXPECT_TRUE(e.is_transactionally_L_stable(sigma, Lx));
}

TEST(TraceEnum, InstabilityWhenPlainWriteRacesAhead) {
  // Program: two plain writers to x.  After thread 0 wrote x, thread 1's
  // write races with it: not stable for {x}.
  Program p;
  p.num_locs = 1;
  p.add_thread({write(at(0), 1)});
  p.add_thread({write(at(0), 2)});
  TraceEnum e(p, ModelConfig::programmer());

  Trace sigma = Trace::with_init(1);
  sigma.append(model::make_write(0, 0, 1, Rational(1)));
  const model::LocSet Lx = model::loc_set({0}, 1);
  EXPECT_FALSE(e.is_L_stable(sigma, Lx));
}

TEST(TraceEnum, FutureProofingViaXrw) {
  // Appendix A.1: sigma contains a transactional read of x; the program can
  // still start a transaction that overwrites x (xrw from sigma into the
  // future): L-stable but NOT transactionally L-stable.
  Program p;
  p.num_locs = 1;
  p.add_thread({write(at(0), 1), atomic({write(at(0), 2)})});
  p.add_thread({atomic({read(0, at(0))})});
  TraceEnum e(p, ModelConfig::programmer());

  // sigma: init; t0 plain Wx1; t1's txn reads x=1 and commits.
  Trace sigma = Trace::with_init(1);
  sigma.append(model::make_write(0, 0, 1, Rational(1)));
  const int b1 = sigma.append(model::make_begin(1));
  sigma.append(model::make_read(1, 0, 1, Rational(1)));
  sigma.append(model::make_commit(1, sigma[static_cast<std::size_t>(b1)].name));
  ASSERT_TRUE(model::consistent(sigma, ModelConfig::programmer()));

  const model::LocSet Lx = model::loc_set({0}, 1);
  EXPECT_FALSE(e.is_transactionally_L_stable(sigma, Lx));
}

TEST(TraceEnum, BudgetTruncates) {
  TraceEnumOptions opts;
  opts.node_budget = 5;
  TraceEnum e(message_passing_txn(), ModelConfig::programmer(), opts);
  e.explore([&](const Trace&, const Analysis&, std::size_t) {
    return TraceEnum::Visit::Continue;
  });
  EXPECT_TRUE(e.truncated());
}

TEST(TraceEnum, AllTracesDeduplicated) {
  Program p;
  p.num_locs = 1;
  p.add_thread({write(at(0), 1)});
  TraceEnum e(p, ModelConfig::programmer());
  const auto traces = e.all_traces();
  // init prefix + the write = 2 distinct traces.
  EXPECT_EQ(traces.size(), 2u);
}

}  // namespace
}  // namespace mtx::lit
