// The axiomatic execution enumerator: outcome sets of basic programs,
// value flow through registers and array indices, abort handling, fences,
// and enumeration statistics.
#include <gtest/gtest.h>

#include "litmus/graph_enum.hpp"

namespace mtx::lit {
namespace {

using model::ModelConfig;

TEST(GraphEnum, SequentialProgramSingleOutcome) {
  Program p;
  p.num_locs = 1;
  p.add_thread({write(at(0), 1), write(at(0), 2), read(0, at(0))});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  ASSERT_EQ(set.size(), 1u);
  const Outcome& o = *set.outcomes().begin();
  EXPECT_EQ(o.loc(0), 2);
  EXPECT_EQ(o.reg(0, 0), 2);
}

TEST(GraphEnum, MessagePassingPlainIsRacy) {
  // Plain MP: r(y)=1, r(x)=0 is allowed (plain wr is not in hb).
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), write(at(1), 1)});
  p.add_thread({read(0, at(1)), read(1, at(0))});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  EXPECT_TRUE(set.any([](const Outcome& o) {
    return o.reg(1, 0) == 1 && o.reg(1, 1) == 0;
  }));
}

TEST(GraphEnum, MessagePassingTransactionalIsOrdered) {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), atomic({write(at(1), 1)})});
  p.add_thread({atomic({read(0, at(1))}), read(1, at(0))});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  EXPECT_FALSE(set.any([](const Outcome& o) {
    return o.reg(1, 0) == 1 && o.reg(1, 1) == 0;
  }));
  EXPECT_TRUE(set.any([](const Outcome& o) {
    return o.reg(1, 0) == 1 && o.reg(1, 1) == 1;
  }));
}

TEST(GraphEnum, ValueFlowsThroughRegisters) {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 41), read(0, at(0)), write(at(1), add(0, 1))});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.outcomes().begin()->loc(1), 42);
}

TEST(GraphEnum, CrossThreadValueFlow) {
  // Thread 1's written value is thread 0's read + 1; thread 0 reads either
  // the init 0 or... nothing else: the dependency is one-way.
  Program p;
  p.num_locs = 2;
  p.add_thread({read(0, at(0)), write(at(1), add(0, 5))});
  p.add_thread({write(at(0), 10)});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  EXPECT_TRUE(set.any([](const Outcome& o) { return o.loc(1) == 5; }));
  EXPECT_TRUE(set.any([](const Outcome& o) { return o.loc(1) == 15; }));
}

TEST(GraphEnum, ArrayIndexingByRegister) {
  // z[r] where r is read from x: writes land on different cells.
  Program p;
  p.num_locs = 3;  // x=0, z[0]=1, z[1]=2
  p.add_thread({read(0, at(0)), write(at(1, 0), 7)});
  p.add_thread({write(at(0), 1)});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  EXPECT_TRUE(set.any([](const Outcome& o) { return o.loc(1) == 7 && o.loc(2) == 0; }));
  EXPECT_TRUE(set.any([](const Outcome& o) { return o.loc(1) == 0 && o.loc(2) == 7; }));
}

TEST(GraphEnum, OutOfRangeArrayIndexInfeasible) {
  Program p;
  p.num_locs = 2;  // z[1] would be loc 2: out of range
  p.add_thread({write(at(0), 5), read(0, at(0)), write(at(1, 0), 1)});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  EXPECT_TRUE(set.empty());
}

TEST(GraphEnum, AbortedWritesInvisible) {
  Program p;
  p.num_locs = 1;
  p.add_thread({atomic({write(at(0), 1), abort_stmt()})});
  p.add_thread({read(0, at(0))});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  EXPECT_TRUE(set.all([](const Outcome& o) { return o.reg(1, 0) == 0; }));
  EXPECT_TRUE(set.all([](const Outcome& o) { return o.loc(0) == 0; }));
}

TEST(GraphEnum, TxnReadsOwnWrite) {
  Program p;
  p.num_locs = 1;
  p.add_thread({atomic({write(at(0), 9), read(0, at(0))})});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.outcomes().begin()->reg(0, 0), 9);
}

TEST(GraphEnum, GuardsPruneInfeasibleBranches) {
  Program p;
  p.num_locs = 2;
  p.add_thread({read(0, at(0)), if_then_else(eq(0, 0), {write(at(1), 10)},
                                             {write(at(1), 20)})});
  const OutcomeSet set = enumerate_outcomes(p, ModelConfig::programmer());
  // x is always 0: only the then-branch outcome exists.
  EXPECT_TRUE(set.all([](const Outcome& o) { return o.loc(1) == 10; }));
}

TEST(GraphEnum, StatsAreAccounted) {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), read(0, at(1))});
  p.add_thread({write(at(1), 1), read(0, at(0))});
  GraphEnum e(p, ModelConfig::programmer());
  std::size_t execs = 0;
  e.for_each([&](const Execution&) { ++execs; });
  EXPECT_EQ(e.stats().consistent, execs);
  EXPECT_GT(e.stats().candidates, 0u);
  EXPECT_FALSE(e.stats().truncated);
}

TEST(GraphEnum, BudgetTruncates) {
  Program p;
  p.num_locs = 2;
  p.add_thread({write(at(0), 1), read(0, at(1))});
  p.add_thread({write(at(1), 1), read(0, at(0))});
  EnumOptions opts;
  opts.budget = 2;
  GraphEnum e(p, ModelConfig::programmer(), opts);
  e.for_each([](const Execution&) {});
  EXPECT_TRUE(e.stats().truncated);
}

TEST(GraphEnum, ExecutionTracesAreConsistent) {
  Program p;
  p.num_locs = 2;
  p.add_thread({atomic({write(at(0), 1)}), write(at(1), 1)});
  p.add_thread({atomic({read(0, at(0))}), read(1, at(1))});
  GraphEnum e(p, ModelConfig::programmer());
  std::size_t n = 0;
  e.for_each([&](const Execution& ex) {
    ++n;
    EXPECT_TRUE(model::consistent(ex.trace, ModelConfig::programmer()));
  });
  EXPECT_GT(n, 0u);
}

TEST(GraphEnum, FenceEnumerationRespectsWF12) {
  Program p;
  p.num_locs = 1;
  p.add_thread({atomic({write(at(0), 1)})});
  p.add_thread({qfence(0), read(0, at(0))});
  GraphEnum e(p, ModelConfig::implementation());
  e.for_each([&](const Execution& ex) {
    EXPECT_TRUE(model::check_wellformed(ex.trace).ok());
  });
  EXPECT_GT(e.stats().consistent, 0u);
}

}  // namespace
}  // namespace mtx::lit
