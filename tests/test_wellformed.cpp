// WF1..WF12, one positive/negative pair per condition.
#include <gtest/gtest.h>

#include "model/wellformed.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::check_wellformed;
using model::Trace;

TEST(WF, CleanTraceIsWellFormed) {
  TB b(2);
  b.begin(0).w(0, 0, 1, 1).commit(0).r(1, 0, 1, 1);
  EXPECT_TRUE(check_wellformed(b.trace()).ok());
}

TEST(WF1, MissingInitTransaction) {
  Trace t;  // no init at all
  t.append(model::make_write(0, 0, 1, Rational(1)));
  EXPECT_TRUE(check_wellformed(t).violates(1));
}

TEST(WF1, InitMustCoverAllLocations) {
  Trace t = Trace::with_init(1);
  t.append(model::make_read(0, 1, 0, Rational(0)));  // mentions loc 1
  EXPECT_TRUE(check_wellformed(t).violates(1));
}

TEST(WF1, InitThreadMayNotActLater) {
  Trace t = Trace::with_init(1);
  t.append(model::make_write(model::kInitThread, 0, 1, Rational(1)));
  EXPECT_TRUE(check_wellformed(t).violates(1));
}

TEST(WF2, DuplicateActionNames) {
  Trace t = Trace::with_init(1);
  t.append(model::make_write(0, 0, 1, Rational(1), 100));
  t.append(model::make_write(1, 0, 2, Rational(2), 100));
  EXPECT_TRUE(check_wellformed(t).violates(2));
}

TEST(WF3, DuplicateTimestampSameLocation) {
  TB b(1);
  b.w(0, 0, 1, 1).w(1, 0, 2, 1);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(3));
}

TEST(WF3, SameTimestampDifferentLocationsOk) {
  TB b(2);
  b.w(0, 0, 1, 1).w(1, 1, 2, 1);
  EXPECT_TRUE(check_wellformed(b.trace()).ok());
}

TEST(WF4, DoubleResolution) {
  Trace t = Trace::with_init(1);
  const int bidx = t.append(model::make_begin(0));
  const int bname = t[static_cast<std::size_t>(bidx)].name;
  t.append(model::make_commit(0, bname));
  t.append(model::make_abort(0, bname));
  EXPECT_TRUE(check_wellformed(t).violates(4));
}

TEST(WF4, ResolutionWithoutBegin) {
  Trace t = Trace::with_init(1);
  t.append(model::make_commit(0, 4242));
  EXPECT_TRUE(check_wellformed(t).violates(4));
}

TEST(WF5, ResolutionBeforeBeginInPo) {
  Trace t = Trace::with_init(1);
  t.append(model::make_commit(0, 100));
  t.append(model::make_begin(0, 100));
  EXPECT_TRUE(check_wellformed(t).violates(5));
}

TEST(WF5, NestedBeginIsIllFormed) {
  Trace t = Trace::with_init(1);
  const int b1 = t.append(model::make_begin(0));
  t.append(model::make_begin(0));
  t.append(model::make_commit(0, t[static_cast<std::size_t>(b1)].name));
  EXPECT_TRUE(check_wellformed(t).violates(5));
}

TEST(WF6, UnfulfilledRead) {
  TB b(1);
  b.r(0, 0, 7, 5);  // no write with value 7 at ts 5
  EXPECT_TRUE(check_wellformed(b.trace()).violates(6));
}

TEST(WF7, ReadingAbortedWriteAcrossTxns) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).abort(0);
  b.r(1, 0, 1, 1);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(7));
}

TEST(WF7, ReadingOwnLiveWriteOk) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).r(0, 0, 1, 1);
  const auto report = check_wellformed(b.trace());
  EXPECT_FALSE(report.violates(7));
}

TEST(WF8, ReadBeforeItsWriteInIndex) {
  TB b(1);
  b.r(0, 0, 1, 1).w(1, 0, 1, 1);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(8));
}

TEST(WF9, TransactionalWriteBehindCommittedWrite) {
  // A committed transactional write at ts 2 appears first; a transactional
  // write then takes ts 1 (earlier), violating WF9.
  TB b(1);
  b.begin(0).w(0, 0, 2, 2).commit(0);
  b.begin(1).w(1, 0, 1, 1).commit(1);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(9));
}

TEST(WF9, EarlierPlainWriteDoesNotConstrain) {
  // "Committed or live" are *transaction* states: an earlier plain write
  // with a larger timestamp does not violate WF9 (the race machinery, not
  // well-formedness, governs mixed-mode interleavings).
  TB b(1);
  b.w(0, 0, 2, 2);
  b.begin(1).w(1, 0, 1, 1).commit(1);
  EXPECT_FALSE(check_wellformed(b.trace()).violates(9));
}

TEST(WF9, PlainWriteMayTakeEarlierTimestamp) {
  TB b(1);
  b.begin(0).w(0, 0, 2, 2).commit(0);
  b.w(1, 0, 1, 1);  // plain write slots beneath: allowed by WF9
  EXPECT_FALSE(check_wellformed(b.trace()).violates(9));
}

TEST(WF9, EarlierAbortedWriteIgnored) {
  TB b(1);
  b.begin(0).w(0, 0, 2, 2).abort(0);
  b.begin(1).w(1, 0, 1, 1).commit(1);
  EXPECT_FALSE(check_wellformed(b.trace()).violates(9));
}

TEST(WF10, TransactionalReadStaleAfterOverwrite) {
  // a:Wx1 committed; c:Wx2 committed; then txn b reads x=1 (from a).
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.begin(1).w(1, 0, 2, 2).commit(1);
  b.begin(2).r(2, 0, 1, 1).commit(2);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(10));
}

TEST(WF10, PlainReadMayBeStale) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.begin(1).w(1, 0, 2, 2).commit(1);
  b.r(2, 0, 1, 1);  // plain read of the old value: WF10 does not apply
  EXPECT_FALSE(check_wellformed(b.trace()).violates(10));
}

TEST(WF10, PlainWriterExemptsTransactionalRead) {
  // WF10 requires the *writer* to be transactional.
  TB b(1);
  b.w(0, 0, 1, 1);
  b.w(0, 0, 2, 2);
  b.begin(1).r(1, 0, 1, 1).commit(1);
  EXPECT_FALSE(check_wellformed(b.trace()).violates(10));
}

TEST(WF11, ReadIgnoresOwnTransactionsWrite) {
  // Within one txn: write x=2 at ts 2, then read x=1 from the older plain
  // write -- forbidden: the read must see its own transaction's write.
  TB b(1);
  b.w(0, 0, 1, 1);
  b.begin(1).w(1, 0, 2, 2).r(1, 0, 1, 1).commit(1);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(11));
}

TEST(WF12, FenceInterleavedWithTouchingTxn) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1);
  b.fence(1, 0);  // txn touching x=loc0 is open
  b.commit(0);
  EXPECT_TRUE(check_wellformed(b.trace()).violates(12));
}

TEST(WF12, FenceAfterResolutionOk) {
  TB b(1);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.fence(1, 0);
  EXPECT_FALSE(check_wellformed(b.trace()).violates(12));
}

TEST(WF12, FenceOnUntouchedLocationOk) {
  TB b(2);
  b.begin(0).w(0, 0, 1, 1);
  b.fence(1, 1);  // txn does not touch loc 1
  b.commit(0);
  EXPECT_FALSE(check_wellformed(b.trace()).violates(12));
}

TEST(WF, ReportStringMentionsRule) {
  TB b(1);
  b.w(0, 0, 1, 1).w(1, 0, 2, 1);
  const auto report = check_wellformed(b.trace());
  EXPECT_NE(report.str().find("WF3"), std::string::npos);
}

}  // namespace
}  // namespace mtx::test
