// Eager (undo-log, encounter-time locking) backend unit tests, including
// the Example 3.4 behaviors: speculative values visible in place, rollback
// restores them.
#include <gtest/gtest.h>

#include "stm/eager.hpp"

namespace mtx::stm {
namespace {

TEST(Eager, ReadWriteCommit) {
  EagerStm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { tx.write(x, 11); }));
  EXPECT_EQ(x.plain_load(), 11u);
}

TEST(Eager, WritesLandInPlaceBeforeCommit) {
  // The defining property of eager versioning (Example 3.4's hazard).
  EagerStm stm;
  Cell x(0);
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 7);
    EXPECT_EQ(x.plain_load(), 7u);  // speculative value visible in place
  }));
  EXPECT_EQ(x.plain_load(), 7u);
}

TEST(Eager, UserAbortRollsBack) {
  EagerStm stm;
  Cell x(1), y(2);
  const bool committed = stm.atomically([&](auto& tx) {
    tx.write(x, 10);
    tx.write(y, 20);
    tx.user_abort();
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(x.plain_load(), 1u);
  EXPECT_EQ(y.plain_load(), 2u);
}

TEST(Eager, RollbackRestoresInReverseOrder) {
  EagerStm stm;
  Cell x(1);
  const bool committed = stm.atomically([&](auto& tx) {
    tx.write(x, 2);
    tx.write(x, 3);  // same cell twice: undo log keeps the original once
    tx.user_abort();
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(x.plain_load(), 1u);
}

TEST(Eager, ReadOwnLockedCell) {
  EagerStm stm;
  Cell x(5);
  word_t seen = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    tx.write(x, 6);
    seen = tx.read(x);  // own locked orec: read through
  }));
  EXPECT_EQ(seen, 6u);
}

TEST(Eager, SequentialIncrements) {
  EagerStm stm;
  Cell x(0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stm.atomically([&](auto& tx) {
      tx.write(x, tx.read(x) + 1);
    }));
  }
  EXPECT_EQ(x.plain_load(), 10u);
}

TEST(Eager, ReadValidationCatchesIntervening) {
  EagerStm stm;
  Cell x(0), y(0);
  int attempts = 0;
  word_t rx = 0, ry = 0;
  ASSERT_TRUE(stm.atomically([&](auto& tx) {
    ++attempts;
    rx = tx.read(x);
    if (attempts == 1)
      stm.atomically([&](auto& other) {
        other.write(x, 1);
        other.write(y, 1);
      });
    ry = tx.read(y);
  }));
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(rx, ry);  // consistent snapshot after retry
}

TEST(Eager, AbortStatsAccounted) {
  EagerStm stm;
  Cell x(0);
  stm.atomically([&](auto& tx) {
    tx.write(x, 1);
    tx.user_abort();
  });
  EXPECT_EQ(stm.stats().user_aborts.load(), 1u);
  EXPECT_EQ(stm.stats().commits.load(), 0u);
}

TEST(Eager, QuiesceIdle) {
  EagerStm stm;
  stm.quiesce();
  EXPECT_EQ(stm.stats().fences.load(), 1u);
}

TEST(Eager, TVarWorks) {
  EagerStm stm;
  TVar<long> v(100);
  ASSERT_TRUE(stm.atomically([&](auto& tx) { v.set(tx, v.get(tx) - 58); }));
  EXPECT_EQ(v.plain_get(), 42);
}

}  // namespace
}  // namespace mtx::stm
