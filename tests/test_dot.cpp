// DOT export smoke tests: structure of the emitted graph.
#include <gtest/gtest.h>

#include "model/dot.hpp"
#include "trace_builders.hpp"

namespace mtx::test {
namespace {

using model::analyze;
using model::DotOptions;
using model::ModelConfig;
using model::to_dot;

TEST(Dot, ClustersAndEdges) {
  TB b(2);
  b.begin(0).w(0, 0, 1, 1).commit(0);
  b.begin(1).r(1, 0, 1, 1).abort(1);
  b.w(2, 1, 1, 1);
  b.w(2, 0, 2, 2);  // plain overwrite: a visible (non-init) ww edge
  const Trace& t = b.trace();
  const auto an = analyze(t, ModelConfig::programmer());
  const std::string dot = to_dot(t, an);

  EXPECT_NE(dot.find("digraph execution"), std::string::npos);
  EXPECT_NE(dot.find("cluster_txn"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed; color=red"), std::string::npos);   // aborted
  EXPECT_NE(dot.find("style=solid; color=blue"), std::string::npos);   // committed
  EXPECT_NE(dot.find("label=\"wr\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"ww\""), std::string::npos);
  // init hidden by default
  EXPECT_EQ(dot.find("init"), std::string::npos);
}

TEST(Dot, OptionsControlContent) {
  TB b(1);
  b.w(0, 0, 1, 1).r(1, 0, 1, 1);
  const Trace& t = b.trace();
  const auto an = analyze(t, ModelConfig::programmer());

  DotOptions opts;
  opts.show_wr = false;
  opts.show_ww = false;
  opts.show_rw = false;
  const std::string bare = to_dot(t, an, opts);
  EXPECT_EQ(bare.find("label=\"wr\""), std::string::npos);

  opts.include_init = true;
  const std::string with_init = to_dot(t, an, opts);
  EXPECT_NE(with_init.find("init"), std::string::npos);

  opts.show_hb = true;
  const std::string with_hb = to_dot(t, an, opts);
  EXPECT_NE(with_hb.find("label=\"hb\""), std::string::npos);
}

TEST(Dot, QuotesEscaped) {
  TB b(1);
  b.w(0, 0, 1, 1);
  const auto an = analyze(b.trace(), ModelConfig::programmer());
  const std::string dot = to_dot(b.trace(), an);
  // Every emitted label is well-formed: no raw backslash-free quote inside.
  EXPECT_NE(dot.find("label=\""), std::string::npos);
}

}  // namespace
}  // namespace mtx::test
