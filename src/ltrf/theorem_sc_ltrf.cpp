#include "ltrf/theorem_sc_ltrf.hpp"

#include <map>

namespace mtx::ltrf {

namespace {

using lit::TraceEnum;
using model::Analysis;
using model::LocSet;
using model::Trace;

// act~ identity of an action as (thread, po-position within thread, kind,
// location): the same program event, possibly with a different value or
// timestamp.
struct ActId {
  int thread;
  std::size_t po_pos;
  model::Kind kind;
  model::Loc loc;
  friend bool operator==(const ActId& a, const ActId& b) {
    return a.thread == b.thread && a.po_pos == b.po_pos && a.kind == b.kind &&
           a.loc == b.loc;
  }
};

ActId act_id(const Trace& t, std::size_t i) {
  std::size_t pos = 0;
  for (std::size_t j = 0; j < i; ++j)
    if (t[j].thread == t[i].thread) ++pos;
  return ActId{t[i].thread, pos, t[i].kind, t[i].loc};
}

// Every action of t at index >= from is L-sequential in t.
bool suffix_L_sequential(const Trace& t, std::size_t from, const LocSet& L) {
  for (std::size_t i = from; i < t.size(); ++i)
    if (model::is_L_weak_action(t, i, L)) return false;
  return true;
}

// No L-race in t involving an action at index >= from.
bool suffix_race_free(const Trace& t, const BitRel& hb, std::size_t from,
                      const LocSet& L) {
  for (std::size_t b = 0; b < t.size(); ++b)
    for (std::size_t c = std::max(b + 1, from); c < t.size(); ++c)
      if (model::is_l_race(t, hb, b, c, L)) return false;
  return true;
}

}  // namespace

TheoremReport check_sc_ltrf(Semantics& sem, const LocSet& L, TheoremOptions opts) {
  TheoremReport report;
  const std::size_t init_len =
      static_cast<std::size_t>(sem.program().num_locs) + 2;

  // Memoize the expensive stability query per sigma.
  std::map<std::string, bool> stable_cache;
  auto stable = [&](const Trace& sigma) {
    const std::string k = Semantics::key(sigma);
    auto it = stable_cache.find(k);
    if (it != stable_cache.end()) return it->second;
    const bool s = sem.is_transactionally_L_stable(sigma, L);
    stable_cache.emplace(k, s);
    return s;
  };

  const std::vector<Trace>& traces = sem.traces();
  for (const Trace& full : traces) {
    if (report.traces_examined >= opts.max_traces) {
      report.truncated = true;
      break;
    }
    ++report.traces_examined;
    if (full.size() <= init_len) continue;

    // phi = last action; it must be L-weak in the full trace.
    const std::size_t phi = full.size() - 1;
    if (!model::is_L_weak_action(full, phi, L)) continue;
    const ActId phi_id = act_id(full, phi);

    // sigma tau = everything before phi.
    std::vector<bool> keep(full.size(), true);
    keep[phi] = false;
    const Trace sigma_tau = full.subsequence(keep);
    const Analysis st_an = model::analyze(sigma_tau, sem.config());
    if (!st_an.consistent()) continue;

    // All split points sigma | tau (sigma at least the initialization).
    for (std::size_t cut = init_len; cut <= sigma_tau.size(); ++cut) {
      // tau must be transactionally L-sequential in sigma tau: tau's actions
      // L-sequential, all transactions of sigma tau contiguous.
      if (!model::all_transactions_contiguous(sigma_tau)) break;
      if (!suffix_L_sequential(sigma_tau, cut, L)) continue;
      if (!suffix_race_free(sigma_tau, st_an.hb, cut, L)) continue;

      std::vector<bool> sk(sigma_tau.size(), false);
      for (std::size_t i = 0; i < cut; ++i) sk[i] = true;
      const Trace sigma = sigma_tau.subsequence(sk);
      if (!stable(sigma)) continue;

      ++report.hypothesis_instances;

      // Search for the witness: an extension sigma tau' phi' of sigma where
      // every appended action is L-sequential, all transactions remain
      // contiguous, phi' act~ phi, and (b, phi') is an L-race for some b in
      // tau' (stability of sigma guarantees the partner cannot be in sigma;
      // see Lemma A.4's proof).
      bool found = false;
      sem.enumerator().explore_from(
          sigma, [&](const Trace& t, const Analysis& an, std::size_t appended) {
            if (appended == static_cast<std::size_t>(-1))
              return TraceEnum::Visit::Continue;
            if (model::is_L_weak_action(t, appended, L))
              return TraceEnum::Visit::Prune;
            if (act_id(t, appended) == phi_id) {
              if (model::all_transactions_contiguous(t)) {
                for (std::size_t b = cut; b < appended; ++b) {
                  if (model::is_l_race(t, an.hb, b, appended, L)) {
                    found = true;
                    return TraceEnum::Visit::Stop;
                  }
                }
              }
              // This occurrence of phi' is L-sequential; its extensions
              // repeat other program events, not phi'.
              return TraceEnum::Visit::Prune;
            }
            return TraceEnum::Visit::Continue;
          });

      if (found) {
        ++report.witnesses_found;
      } else {
        ++report.counterexamples;
      }
    }
  }
  return report;
}

}  // namespace mtx::ltrf
