#include "ltrf/optimizations.hpp"

namespace mtx::ltrf {

using namespace mtx::lit;

bool transformation_sound(const OptimizationCase& c, const model::ModelConfig& cfg,
                          EnumOptions opts) {
  const OutcomeSet before = enumerate_outcomes(c.before, cfg, opts);
  const OutcomeSet after = enumerate_outcomes(c.after, cfg, opts);
  for (const Outcome& o : after.outcomes())
    if (before.outcomes().count(o) == 0) return false;
  return true;
}

namespace {

constexpr Loc X = 0, Y = 1, Z = 2;

// P write-only, Q read-only, disjoint:  x:=1; atomic{r:=y}  ~>  atomic{r:=y}; x:=1
OptimizationCase reorder_case() {
  Program before;
  before.name = "reorder-before";
  before.num_locs = 2;
  before.add_thread({write(at(X), 1), atomic({read(0, at(Y))})});
  before.add_thread({atomic({write(at(Y), 1)}), read(0, at(X))});

  Program after = before;
  after.name = "reorder-after";
  after.threads[0] = {atomic({read(0, at(Y))}), write(at(X), 1)};
  return {"reorder P;atomic{Q} -> atomic{Q};P", before, after, true, true};
}

// Roach motel: x:=1; atomic{r:=y}; z:=1  ~>  atomic{x:=1; r:=y; z:=1}
OptimizationCase roach_case() {
  Program before;
  before.name = "roach-before";
  before.num_locs = 3;
  before.add_thread({write(at(X), 1), atomic({read(0, at(Y))}), write(at(Z), 1)});
  before.add_thread({atomic({read(0, at(X)), read(1, at(Z)), write(at(Y), 1)})});

  Program after = before;
  after.name = "roach-after";
  after.threads[0] = {
      atomic({write(at(X), 1), read(0, at(Y)), write(at(Z), 1)})};
  return {"roach motel P;atomic{R};Q -> atomic{P;R;Q}", before, after, true, true};
}

// Roach motel converse: pulling accesses out of a transaction is unsound.
OptimizationCase roach_converse_case() {
  OptimizationCase c = roach_case();
  std::swap(c.before, c.after);
  c.name = "roach converse atomic{P;R;Q} -> P;atomic{R};Q";
  c.sound_programmer = false;
  c.sound_implementation = false;
  return c;
}

// Fusion: atomic{x:=1}; atomic{y:=1}  ~>  atomic{x:=1; y:=1}
OptimizationCase fusion_case() {
  Program before;
  before.name = "fusion-before";
  before.num_locs = 2;
  before.add_thread({atomic({write(at(X), 1)}), atomic({write(at(Y), 1)})});
  before.add_thread({atomic({read(0, at(X)), read(1, at(Y))})});

  Program after = before;
  after.name = "fusion-after";
  after.threads[0] = {atomic({write(at(X), 1), write(at(Y), 1)})};
  return {"fusion atomic{P};atomic{Q} -> atomic{P;Q}", before, after, true, true};
}

// Fission (the converse of fusion) is not validated: splitting exposes the
// intermediate state x=1, y=0.
OptimizationCase fission_case() {
  OptimizationCase c = fusion_case();
  std::swap(c.before, c.after);
  c.name = "fission atomic{P;Q} -> atomic{P};atomic{Q}";
  c.sound_programmer = false;
  c.sound_implementation = false;
  return c;
}

// Empty-transaction elision: x:=1; atomic{}; y:=1  ~>  x:=1; y:=1
OptimizationCase elision_case() {
  Program before;
  before.name = "elision-before";
  before.num_locs = 2;
  before.add_thread({write(at(X), 1), atomic({}), write(at(Y), 1)});
  before.add_thread({atomic({read(0, at(Y))}), read(1, at(X))});

  Program after = before;
  after.name = "elision-after";
  after.threads[0] = {write(at(X), 1), write(at(Y), 1)};
  return {"elision P;atomic{};Q -> P;Q", before, after, true, true};
}

// The (dagger) reordering of §5: "x:=2; r:=z" -> "r:=z; x:=2" after a
// transaction.  Unsound in the programmer model (HBww order through the
// privatization), sound in the implementation model (no HBww).
OptimizationCase dagger_case() {
  Program before;
  before.name = "dagger-before";
  before.num_locs = 3;
  before.add_thread({write(at(Z), 1),
                     atomic({read(0, at(Y)), if_then(eq(0, 0), {write(at(X), 1)})})});
  before.add_thread({atomic({write(at(Y), 1)}), write(at(X), 2), read(0, at(Z))});

  Program after = before;
  after.name = "dagger-after";
  after.threads[1] = {atomic({write(at(Y), 1)}), read(0, at(Z)), write(at(X), 2)};
  return {"(dagger) x:=2;r:=z -> r:=z;x:=2", before, after,
          /*sound_programmer=*/false, /*sound_implementation=*/true};
}

// LDRF-inherited restriction: a read cannot be delayed past a later write
// (r:=z; x:=1 -> x:=1; r:=z), because load buffering is forbidden.
OptimizationCase read_write_reorder_case() {
  Program before;
  before.name = "rw-reorder-before";
  before.num_locs = 2;  // X=0, Z=1
  before.add_thread({read(0, at(1)), write(at(0), 1)});
  before.add_thread({read(0, at(0)), write(at(1), 1)});

  Program after = before;
  after.name = "rw-reorder-after";
  after.threads[0] = {write(at(0), 1), read(0, at(1))};
  return {"read-write reorder r:=z;x:=1 -> x:=1;r:=z", before, after,
          /*sound_programmer=*/false, /*sound_implementation=*/false};
}

}  // namespace

std::vector<OptimizationCase> standard_cases() {
  return {reorder_case(),  roach_case(),   roach_converse_case(), fusion_case(),
          fission_case(),  elision_case(), dagger_case(),
          read_write_reorder_case()};
}

}  // namespace mtx::ltrf
