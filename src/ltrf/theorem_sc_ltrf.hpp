// Bounded exhaustive checker for Theorem 4.1 (SC-LTRF).
//
//   Fix Sigma as the semantics of a program, and sigma tau phi in Sigma with
//     - sigma transactionally L-stable,
//     - tau transactionally L-sequential in sigma tau,
//     - no L-races involving tau in sigma tau, and
//     - phi L-weak in sigma tau phi.
//   Then there are b in sigma, phi' act~ phi and sigma tau' phi' in Sigma
//   with tau' phi' transactionally L-sequential in sigma tau' phi' and
//   (b, phi') an L-race.
//
// The checker enumerates all traces of the program, identifies every
// hypothesis instance (sigma, tau, phi), and searches extensions of sigma
// for the promised witness.  A hypothesis instance with no witness is a
// counterexample to the theorem.
#pragma once

#include "ltrf/semantics.hpp"

namespace mtx::ltrf {

struct TheoremOptions {
  // Bound on traces considered as sigma-tau-phi sources.
  std::size_t max_traces = 50'000;
};

struct TheoremReport {
  std::uint64_t traces_examined = 0;
  std::uint64_t hypothesis_instances = 0;  // (sigma, tau, phi) satisfying all hypotheses
  std::uint64_t witnesses_found = 0;
  std::uint64_t counterexamples = 0;
  bool truncated = false;

  bool holds() const { return counterexamples == 0; }
};

TheoremReport check_sc_ltrf(Semantics& sem, const model::LocSet& L,
                            TheoremOptions opts = {});

}  // namespace mtx::ltrf
