// Executable checks for the paper's supporting metatheory:
//
//   Theorem 4.2   consistency is preserved by erasing aborted transactions
//   Lemma A.4     an L-weak action in a consistent trace has an earlier
//                 L-race partner (up to the aborted-write caveat; see
//                 weak_action_race_status)
//   Lemma A.5     every consistent trace with resolved transactions has an
//                 order-preserving permutation with contiguous transactions
//   Lemma 5.1     implementation-model consistency without mixed races
//                 implies programmer-model consistency (after dropping
//                 fences)
//
// plus the randomized trace generator used by the property-test suites.
#pragma once

#include "model/closure.hpp"
#include "model/consistency.hpp"
#include "model/race.hpp"
#include "model/sequentiality.hpp"
#include "substrate/rng.hpp"

namespace mtx::ltrf {

// Theorem 4.2: if t is consistent under cfg then so is t.without_aborted().
bool aborted_erasure_preserves_consistency(const model::Trace& t,
                                           const model::ModelConfig& cfg);

// Lemma A.5: contiguous_permutation(t) exists, is an order-preserving
// permutation of t, is consistent, and has contiguous transactions.
bool contiguous_permutation_ok(const model::Trace& t, const model::ModelConfig& cfg);

// Lemma 5.1: t consistent in the implementation model and mixed-race-free
// implies t.without_qfences() consistent in the programmer model.
// Returns true when the implication holds (vacuously or not).
bool lemma_5_1_holds(const model::Trace& t);

// Lemma A.4 status of an L-weak action c in a consistent trace.
enum class WeakRaceStatus {
  NotWeak,            // c is L-sequential
  HasRace,            // some earlier b with (b, c) an L-race
  AbortedOnly,        // weakness caused only by aborted writes (no partner)
  TransactionalPair,  // every nonaborted offender is transactional and c is
                      // transactional: races are excluded by definition
                      // (such configurations are constrained by WF9/WF10 and
                      // Causality via xrw instead)
  NoRace,             // a mixed (one-side-plain) nonaborted offender exists
                      // but no race — would contradict the lemma's argument
};
WeakRaceStatus weak_action_race_status(const model::Trace& t,
                                       const BitRel& hb, std::size_t c,
                                       const model::LocSet& L);

// ---------------------------------------------------------------------------
// Randomized well-formed consistent traces for property tests.
// ---------------------------------------------------------------------------

struct RandomTraceParams {
  int threads = 3;
  int locs = 3;
  int actions = 12;          // target number of non-init actions
  unsigned txn_percent = 50;    // chance a thread opens a transaction
  unsigned abort_percent = 25;  // chance an open transaction aborts
  unsigned write_percent = 55;  // writes vs reads
  unsigned fence_percent = 0;   // quiescence fences (implementation model)
};

// Builds a random consistent trace by rejection-sampled appends (mirrors the
// TraceEnum step relation).  Always returns a consistent trace; it may be
// shorter than params.actions when no consistent step exists.
model::Trace random_consistent_trace(Rng& rng, const RandomTraceParams& params,
                                     const model::ModelConfig& cfg);

}  // namespace mtx::ltrf
