// §5 compiler optimizations, validated observationally: a transformation
// P ~> Q is sound under a model when every final-state outcome of Q is
// already an outcome of P (no new behaviors).  The paper proves soundness of
//
//   reorder   P; atomic{Q} ~> atomic{Q}; P      (P write-only, Q read-only,
//                                                no conflicts)
//   roach     P; atomic{R}; Q ~> atomic{P;R;Q}  (roach motel)
//   fusion    atomic{P}; atomic{Q} ~> atomic{P;Q}
//   elision   P; atomic{}; Q ~> P; Q
//
// and notes that the converse of fusion is NOT sound, and that in the
// programmer model "x:=2; r:=z" cannot be reordered to "r:=z; x:=2"
// (the (dagger) example).
#pragma once

#include <string>
#include <vector>

#include "litmus/graph_enum.hpp"

namespace mtx::ltrf {

struct OptimizationCase {
  std::string name;
  lit::Program before;  // P
  lit::Program after;   // Q (transformed)
  bool sound_programmer = true;      // expected soundness, programmer model
  bool sound_implementation = true;  // expected soundness, implementation model
};

// Every outcome of `after` is an outcome of `before` under cfg.
bool transformation_sound(const OptimizationCase& c, const model::ModelConfig& cfg,
                          lit::EnumOptions opts = {});

// The standard battery: each §5 transformation instantiated on concrete
// programs with an adversarial observer thread, plus the known-unsound
// converses.
std::vector<OptimizationCase> standard_cases();

}  // namespace mtx::ltrf
