// Program semantics Sigma (§4) as an executable object: the set of
// consistent traces of a litmus program under a model, with the stability
// and sequentiality queries the LTRF definitions need.  Thin coordination
// layer over lit::TraceEnum.
#pragma once

#include <string>
#include <vector>

#include "litmus/trace_enum.hpp"

namespace mtx::ltrf {

class Semantics {
 public:
  Semantics(lit::Program p, model::ModelConfig cfg,
            lit::TraceEnumOptions opts = {});

  const lit::Program& program() const { return prog_; }
  const model::ModelConfig& config() const { return cfg_; }
  lit::TraceEnum& enumerator() { return enum_; }

  // All consistent traces (deduplicated by canonical key).
  const std::vector<model::Trace>& traces();

  // Canonical string key for a trace (action payloads in index order);
  // traces equal under this key are the same trace.
  static std::string key(const model::Trace& t);

  bool is_L_stable(const model::Trace& sigma, const model::LocSet& L) {
    return enum_.is_L_stable(sigma, L);
  }
  bool is_transactionally_L_stable(const model::Trace& sigma, const model::LocSet& L) {
    return enum_.is_transactionally_L_stable(sigma, L);
  }

 private:
  lit::Program prog_;
  model::ModelConfig cfg_;
  lit::TraceEnum enum_;
  bool enumerated_ = false;
  std::vector<model::Trace> traces_;
};

}  // namespace mtx::ltrf
