// Program semantics Sigma (§4) as an executable object: the set of
// consistent traces of a litmus program under a model, with the stability
// and sequentiality queries the LTRF definitions need.  Thin coordination
// layer over lit::TraceEnum.
//
// Trace sets are deduplicated through a sharded canonical-key set and
// returned in canonical-key order, so the serial and parallel enumerations
// produce byte-identical results.
#pragma once

#include <string>
#include <vector>

#include "litmus/trace_enum.hpp"
#include "substrate/sharded_set.hpp"
#include "substrate/threading.hpp"

namespace mtx::ltrf {

// Tuning for the parallel trace enumeration.
struct ParallelEnumOptions {
  // DFS depth (actions beyond the root) at which the frontier is split into
  // independently explorable subtrees.
  std::size_t split_depth = 3;
  // Shard count of the canonical-key dedup set.
  std::size_t dedup_shards = 16;
};

class Semantics {
 public:
  Semantics(lit::Program p, model::ModelConfig cfg,
            lit::TraceEnumOptions opts = {});

  const lit::Program& program() const { return prog_; }
  const model::ModelConfig& config() const { return cfg_; }
  lit::TraceEnum& enumerator() { return enum_; }

  // All consistent traces, deduplicated by canonical key and sorted in
  // canonical-key order.
  const std::vector<model::Trace>& traces();

  // Same trace set, enumerated in parallel: the DFS frontier is split at
  // shallow depth and each subtree explored as a pool task, with a sharded
  // dedup set shared across workers.  Workers inherit this Semantics'
  // TraceEnumOptions (the node budget applies per subtree, so a budgeted
  // parallel run can cover more than a budgeted serial one — truncated()
  // reports whether any part of the walk was cut).  Byte-identical to
  // traces() as long as no budget is hit.
  std::vector<model::Trace> traces_parallel(ThreadPool& pool,
                                            ParallelEnumOptions popts = {});

  // True when the most recent traces()/traces_parallel() call hit a node
  // budget anywhere and the returned set may be incomplete.
  bool truncated() const { return truncated_; }

  // Canonical string key for a trace (action payloads in index order);
  // traces equal under this key are the same trace.
  static std::string key(const model::Trace& t);

  bool is_L_stable(const model::Trace& sigma, const model::LocSet& L) {
    return enum_.is_L_stable(sigma, L);
  }
  bool is_transactionally_L_stable(const model::Trace& sigma, const model::LocSet& L) {
    return enum_.is_transactionally_L_stable(sigma, L);
  }

 private:
  lit::Program prog_;
  model::ModelConfig cfg_;
  lit::TraceEnumOptions opts_;
  lit::TraceEnum enum_;
  bool enumerated_ = false;
  bool truncated_ = false;
  std::vector<model::Trace> traces_;
};

}  // namespace mtx::ltrf
