#include "ltrf/semantics.hpp"

#include <set>

namespace mtx::ltrf {

Semantics::Semantics(lit::Program p, model::ModelConfig cfg,
                     lit::TraceEnumOptions opts)
    : prog_(std::move(p)), cfg_(std::move(cfg)), enum_(prog_, cfg_, opts) {}

std::string Semantics::key(const model::Trace& t) {
  std::string k;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const model::Action& a = t[i];
    k += std::to_string(static_cast<int>(a.kind)) + ":" +
         std::to_string(a.thread) + ":" + std::to_string(a.loc) + ":" +
         std::to_string(a.value) + ":" + a.ts.str() + ";";
  }
  return k;
}

const std::vector<model::Trace>& Semantics::traces() {
  if (enumerated_) return traces_;
  std::set<std::string> seen;
  enum_.explore([&](const model::Trace& t, const model::Analysis&, std::size_t) {
    if (seen.insert(key(t)).second) traces_.push_back(t);
    return lit::TraceEnum::Visit::Continue;
  });
  enumerated_ = true;
  return traces_;
}

}  // namespace mtx::ltrf
