#include "ltrf/semantics.hpp"

#include <algorithm>
#include <utility>

namespace mtx::ltrf {

namespace {

using Keyed = std::pair<std::string, model::Trace>;

// Canonical ordering shared by the serial and parallel paths: sort by key.
// The key determines the trace, so the order is total and the sorted vector
// is a pure function of the trace *set* — independent of discovery order.
// Keys were already computed for dedup insertion; reuse them here.
std::vector<model::Trace> sort_canonical(std::vector<Keyed>&& keyed) {
  std::sort(keyed.begin(), keyed.end(),
            [](const Keyed& a, const Keyed& b) { return a.first < b.first; });
  std::vector<model::Trace> traces;
  traces.reserve(keyed.size());
  for (Keyed& kt : keyed) traces.push_back(std::move(kt.second));
  return traces;
}

}  // namespace

Semantics::Semantics(lit::Program p, model::ModelConfig cfg,
                     lit::TraceEnumOptions opts)
    : prog_(std::move(p)), cfg_(std::move(cfg)), opts_(opts),
      enum_(prog_, cfg_, opts) {}

std::string Semantics::key(const model::Trace& t) {
  std::string k;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const model::Action& a = t[i];
    k += std::to_string(static_cast<int>(a.kind)) + ":" +
         std::to_string(a.thread) + ":" + std::to_string(a.loc) + ":" +
         std::to_string(a.value) + ":" + a.ts.str() + ";";
  }
  return k;
}

const std::vector<model::Trace>& Semantics::traces() {
  if (enumerated_) return traces_;
  ShardedKeySet seen(1);  // same dedup structure as the parallel path
  std::vector<Keyed> keyed;
  enum_.explore([&](const model::Trace& t, const model::Analysis&, std::size_t) {
    std::string k = key(t);
    if (seen.insert(k)) keyed.emplace_back(std::move(k), t);
    return lit::TraceEnum::Visit::Continue;
  });
  traces_ = sort_canonical(std::move(keyed));
  truncated_ = enum_.truncated();
  enumerated_ = true;
  return traces_;
}

std::vector<model::Trace> Semantics::traces_parallel(ThreadPool& pool,
                                                     ParallelEnumOptions popts) {
  ShardedKeySet seen(popts.dedup_shards);
  std::vector<Keyed> out;

  // Phase 1 (serial, cheap): walk the shallow prefix, collecting the cut.
  lit::TraceEnum splitter(prog_, cfg_, opts_);
  const std::vector<lit::TraceEnum::Frontier> frontier = splitter.split_frontier(
      popts.split_depth,
      [&](const model::Trace& t, const model::Analysis&, std::size_t) {
        std::string k = key(t);
        if (seen.insert(k)) out.emplace_back(std::move(k), t);
        return lit::TraceEnum::Visit::Continue;
      });

  // Phase 2: one pool task per subtree.  Each task uses its own TraceEnum
  // (the DFS state is per-instance) and collects the traces it won the
  // dedup race for; slot-indexed collection keeps the gather deterministic,
  // and the final canonical sort erases any schedule dependence left in the
  // concatenation order.
  struct SubtreeResult {
    std::vector<Keyed> found;
    bool truncated = false;
  };
  std::vector<SubtreeResult> results = parallel_map<SubtreeResult>(
      pool, frontier.size(), [&](std::size_t i) {
        lit::TraceEnum worker(prog_, cfg_, opts_);
        SubtreeResult r;
        worker.explore_subtree(
            frontier[i],
            [&](const model::Trace& t, const model::Analysis&, std::size_t) {
              std::string k = key(t);
              if (seen.insert(k)) r.found.emplace_back(std::move(k), t);
              return lit::TraceEnum::Visit::Continue;
            });
        r.truncated = worker.truncated();
        return r;
      });
  truncated_ = splitter.truncated();
  for (SubtreeResult& r : results) {
    truncated_ = truncated_ || r.truncated;
    for (Keyed& kt : r.found) out.push_back(std::move(kt));
  }

  return sort_canonical(std::move(out));
}

}  // namespace mtx::ltrf
