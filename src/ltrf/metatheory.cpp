#include "ltrf/metatheory.hpp"

#include <algorithm>
#include <vector>

namespace mtx::ltrf {

using model::Action;
using model::Analysis;
using model::Loc;
using model::ModelConfig;
using model::Trace;
using mtx::Rational;

bool aborted_erasure_preserves_consistency(const Trace& t, const ModelConfig& cfg) {
  if (!model::consistent(t, cfg)) return true;  // vacuous
  return model::consistent(t.without_aborted(), cfg);
}

bool contiguous_permutation_ok(const Trace& t, const ModelConfig& cfg) {
  if (!model::consistent(t, cfg)) return true;  // vacuous
  auto perm = model::contiguous_permutation(t, cfg);
  if (!perm) return false;
  if (!model::is_order_preserving_permutation(t, *perm)) return false;
  if (!model::all_transactions_contiguous(*perm)) return false;
  return model::consistent(*perm, cfg);
}

bool lemma_5_1_holds(const Trace& t) {
  const ModelConfig impl = ModelConfig::implementation();
  const Analysis an = model::analyze(t, impl);
  if (!an.consistent()) return true;             // vacuous
  if (model::has_mixed_race(t, an.hb)) return true;  // vacuous
  return model::consistent(t.without_qfences(), ModelConfig::programmer());
}

WeakRaceStatus weak_action_race_status(const Trace& t, const BitRel& hb,
                                       std::size_t c, const model::LocSet& L) {
  if (model::is_L_sequential_action(t, c, L)) return WeakRaceStatus::NotWeak;

  // An action of an aborted transaction can never be in an L-race
  // (L-conflict requires both sides nonaborted), so the lemma's promise
  // does not extend to it.
  if (t.aborted(c)) return WeakRaceStatus::AbortedOnly;

  // Offending earlier writes: those whose timestamps make c weak.
  bool any_nonaborted_offender = false;
  bool any_mixed_offender = false;  // at least one side plain: race possible
  bool race_found = false;
  const Action& ac = t[c];
  for (std::size_t b = 0; b < c; ++b) {
    const Action& ab = t[b];
    if (!ab.is_write() || ab.loc != ac.loc) continue;
    if (!(ac.ts < ab.ts)) continue;  // not an offender
    if (t.aborted(b)) continue;
    any_nonaborted_offender = true;
    if (t.plain(b) || t.plain(c)) any_mixed_offender = true;
    if (model::is_l_race(t, hb, b, c, L)) race_found = true;
  }
  if (race_found) return WeakRaceStatus::HasRace;
  if (!any_nonaborted_offender) return WeakRaceStatus::AbortedOnly;
  if (!any_mixed_offender) return WeakRaceStatus::TransactionalPair;
  return WeakRaceStatus::NoRace;
}

namespace {

// One random step candidate applied to a trace; returns true if the result
// stays consistent (in which case t is updated).
bool try_append(Trace& t, const Action& a, const ModelConfig& cfg) {
  Trace child = t;
  child.append(a);
  if (!model::consistent(child, cfg)) return false;
  t = std::move(child);
  return true;
}

}  // namespace

Trace random_consistent_trace(Rng& rng, const RandomTraceParams& params,
                              const ModelConfig& cfg) {
  Trace t = Trace::with_init(params.locs);
  std::vector<int> open_begin(static_cast<std::size_t>(params.threads), -1);

  int appended = 0;
  int attempts = 0;
  const int max_attempts = params.actions * 12;
  while (appended < params.actions && attempts < max_attempts) {
    ++attempts;
    const int thread = static_cast<int>(rng.below(static_cast<std::uint64_t>(params.threads)));
    const std::size_t tid = static_cast<std::size_t>(thread);
    const Loc x = static_cast<Loc>(rng.below(static_cast<std::uint64_t>(params.locs)));

    // Choose a step: open/close transactions, fence, or a memory access.
    if (open_begin[tid] < 0 && rng.chance(params.txn_percent, 100)) {
      if (try_append(t, model::make_begin(thread), cfg)) {
        open_begin[tid] = t[t.size() - 1].name;
        ++appended;
      }
      continue;
    }
    if (open_begin[tid] >= 0 && rng.chance(30, 100)) {
      const bool abort = rng.chance(params.abort_percent, 100);
      const Action a = abort ? model::make_abort(thread, open_begin[tid])
                             : model::make_commit(thread, open_begin[tid]);
      if (try_append(t, a, cfg)) {
        open_begin[tid] = -1;
        ++appended;
      }
      continue;
    }
    if (open_begin[tid] < 0 && params.fence_percent > 0 &&
        rng.chance(params.fence_percent, 100)) {
      if (try_append(t, model::make_qfence(thread, x), cfg)) ++appended;
      continue;
    }

    if (rng.chance(params.write_percent, 100)) {
      // Random timestamp slot among existing writes to x.
      std::vector<Rational> existing;
      for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].is_write() && t[i].loc == x) existing.push_back(t[i].ts);
      std::sort(existing.begin(), existing.end());
      std::vector<Rational> slots;
      for (std::size_t i = 0; i + 1 < existing.size(); ++i)
        slots.push_back(Rational::midpoint(existing[i], existing[i + 1]));
      slots.push_back((existing.empty() ? Rational(0) : existing.back()) + Rational(1));
      const Rational ts = slots[rng.below(slots.size())];
      const model::Value v = static_cast<model::Value>(rng.below(5));
      if (try_append(t, model::make_write(thread, x, v, ts), cfg)) ++appended;
    } else {
      // Random visible write to read from.
      std::vector<std::size_t> cands;
      const int open_idx =
          open_begin[tid] >= 0 ? t.index_of_name(open_begin[tid]) : -1;
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is_write() || t[i].loc != x) continue;
        if ((t.aborted(i) || t.live(i)) && t.txn_of(i) != open_idx) continue;
        cands.push_back(i);
      }
      if (cands.empty()) continue;
      const std::size_t w = cands[rng.below(cands.size())];
      if (try_append(t, model::make_read(thread, x, t[w].value, t[w].ts), cfg))
        ++appended;
    }
  }

  // Resolve any transactions still open so callers get resolved traces
  // most of the time (leave live occasionally for coverage).
  for (std::size_t tid = 0; tid < open_begin.size(); ++tid) {
    if (open_begin[tid] < 0) continue;
    if (rng.chance(80, 100)) {
      const bool abort = rng.chance(params.abort_percent, 100);
      const Action a = abort
                           ? model::make_abort(static_cast<int>(tid), open_begin[tid])
                           : model::make_commit(static_cast<int>(tid), open_begin[tid]);
      try_append(t, a, cfg);
    }
  }
  return t;
}

}  // namespace mtx::ltrf
