// Live shard migration: online split / move / merge as a composition of the
// paper's two bounded mixed-access protocols, under continuous traffic.
//
// A migration re-homes a set of routing slots (kv::RoutingTable) from a
// source shard to a destination shard in three phases:
//
//   1. PRIVATIZE both endpoints (§5 privatization, space bound): on each
//      shard, one transaction CASes priv_flag open→closed AND raises
//      mig_flag — writers gate on the former, readers on the latter — then
//      a scoped quiesce(shard.domain) runs the grace period (time bound):
//      every transaction that saw the shard open has resolved, every
//      later one re-validates its flag read and waits.  Both shards are
//      now private to the migrator.
//
//   2. PLAIN-COPY (the fast path the space bound licenses): walk the source
//      table with uninstrumented loads, plain_put each moving key into the
//      destination, plain_erase it from the source.  No STM instrumentation,
//      no aborts — just the migrator alone in a privatized region.
//
//   3. PUBLISH (snapshot-publication handoff): store the new slot owners
//      into the RoutingTable (plain atomic stores, epoch bump), then reopen
//      each shard with ONE transaction writing {mig_epoch = new epoch,
//      mig_flag = 0, priv_flag = 0}.  A blocked reader or writer re-runs its
//      gate read, which now reads-from the reopen commit — cwr∘po orders
//      everything it does after the migrator's plain copy AND after the
//      routing stores (po-before the commit in the migrator thread).  Stale
//      routing is therefore always DETECTED, never acted on: a transaction
//      that passes the gate re-checks routing and bounces `moved`.
//
// Split, move and merge are the same engine over different slot selections:
// split re-homes the upper half of the source's slots, move a chosen number
// of its slots, merge all of them (emptying the source's range).
//
// BAIT VARIANTS (MigrateBait) deliberately break one obligation each, for
// the differential fuzzer/campaign oracle — the broken engine must yield a
// counterexample (a recorded mixed race or a failed key audit) while the
// real engine yields zero:
//
//   skip_source_fence  — privatize the source WITHOUT its quiesce.  Any
//     committed pre-migration transaction on the moved range then has no
//     happens-before edge to the migrator's plain accesses (rf alone never
//     orders plain accesses in the model), so the recorded trace carries a
//     mixed race no matter how the run was scheduled.
//   publish_before_copy — reopen both shards BEFORE the copy.  The plain
//     copy is then po-AFTER the reopen commit, so gate-passing transactions
//     get no cwr ordering to it: any post-reopen access of a copied bucket
//     races the copy.
//   stale_route — do the whole dance but never update the RoutingTable.
//     The trace is fence-clean, but the moved keys now live where no route
//     points: a transactional post-run key audit fails deterministically.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "kv/kvstore.hpp"

namespace mtx::kv {

enum class MigrateKind : std::uint8_t { split, move, merge };
enum class MigrateBait : std::uint8_t {
  none,
  skip_source_fence,
  publish_before_copy,
  stale_route,
};

const char* to_string(MigrateKind k);
const char* to_string(MigrateBait b);
// Returns false for unknown names.
bool migrate_kind_from(const std::string& name, MigrateKind* out);
bool migrate_bait_from(const std::string& name, MigrateBait* out);
const std::vector<std::string>& migrate_kind_names();
const std::vector<std::string>& migrate_bait_names();

struct MigrateReport {
  bool performed = false;  // false: nothing to re-home (or src == dst)
  MigrateKind kind = MigrateKind::move;
  MigrateBait bait = MigrateBait::none;
  std::size_t src = 0, dst = 0;
  std::size_t slots_moved = 0;
  std::size_t keys_moved = 0;
  std::uint64_t epoch_before = 0;
  std::uint64_t epoch_after = 0;  // == epoch_before under stale_route
  std::uint64_t fence_ns = 0;     // privatize grace periods (both shards)
  std::uint64_t copy_ns = 0;      // plain copy phase
  std::uint64_t total_ns = 0;
};

class MigrationEngine {
 public:
  explicit MigrationEngine(KvStore& store) : store_(store) {}

  // Re-home the upper half of src's routing slots to dst.  Needs src to own
  // at least 2 slots (a 1-slot shard cannot split).
  MigrateReport split(std::size_t src, std::size_t dst,
                      MigrateBait bait = MigrateBait::none);

  // Re-home `take` of src's slots (highest first) to dst.
  MigrateReport move(std::size_t src, std::size_t dst, std::size_t take = 1,
                     MigrateBait bait = MigrateBait::none);

  // Re-home ALL of src's slots to dst, emptying src's range.
  MigrateReport merge(std::size_t src, std::size_t dst,
                      MigrateBait bait = MigrateBait::none);

  MigrateReport run(MigrateKind kind, std::size_t src, std::size_t dst,
                    MigrateBait bait = MigrateBait::none);

 private:
  MigrateReport migrate_slots(MigrateKind kind, std::size_t src,
                              std::size_t dst, std::vector<std::size_t> slots,
                              MigrateBait bait);

  KvStore& store_;
  std::mutex mu_;  // one migration at a time (slot selections must not race)
};

}  // namespace mtx::kv
