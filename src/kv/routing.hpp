// Epoch-stamped key→shard routing, factored out of KvStore::shard_of so the
// map can CHANGE while the store serves (live split/move/merge,
// src/kv/migrate.hpp).
//
// The key space is hashed onto a fixed grid of kSlots routing slots (the
// same multiplicative hash the store always used for shard routing, widened
// to a slot index); each slot names its owning shard in an atomic word.  A
// migration re-homes a set of slots to a new owner and bumps the table's
// epoch — one monotone counter that stamps every published routing state, so
// any party holding a routing decision can cheaply detect that it went
// stale (compare epochs) without diffing the map.
//
// Synchronization contract: the table itself is only atomically consistent,
// not transactional — a concurrent reader may observe the new owner of slot
// A before the new owner of slot B.  That is deliberate and safe because
// routing is only an ADDRESSING hint; correctness comes from the store's
// migration gate (KvStore re-checks routing INSIDE the flag-checked
// transaction, where the mig_flag read's cwr edge into the migration's
// reopen commit orders the check after the migrator's routing stores — see
// docs/migration.md).  Stale routing therefore surfaces as a typed `moved`
// verdict to retry, never as misplaced data.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace mtx::kv {

class RoutingTable {
 public:
  // Slot grid: 256 slots keeps re-home granularity fine enough that every
  // shard of a ≤63-shard store (the QuiescenceRegistry domain budget) owns
  // several slots, so split can halve any shard's range.
  static constexpr std::size_t kSlots = 256;

  explicit RoutingTable(std::size_t shards) : shards_(shards ? shards : 1) {
    for (std::size_t s = 0; s < kSlots; ++s)
      owners_[s].store(static_cast<std::uint32_t>(s % shards_),
                       std::memory_order_relaxed);
    epoch_.store(1, std::memory_order_release);
  }

  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  std::size_t shards() const { return shards_; }

  // Key → slot: the store's historical shard hash (a different multiplier
  // than THash's bucket hash, so routing and bucket striping stay
  // uncorrelated), widened to take the top 8 bits as the slot index.
  static std::size_t slot_of(std::int64_t key) {
    const auto h = static_cast<std::uint64_t>(key) * 0xd1b54a32d192ed03ULL;
    return static_cast<std::size_t>(h >> 56);  // kSlots = 2^8
  }

  std::size_t owner(std::size_t slot) const {
    return owners_[slot].load(std::memory_order_acquire);
  }

  std::size_t shard_of(std::int64_t key) const { return owner(slot_of(key)); }

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Slots currently owned by `shard`, ascending.
  std::vector<std::size_t> slots_of(std::size_t shard) const {
    std::vector<std::size_t> out;
    for (std::size_t s = 0; s < kSlots; ++s)
      if (owner(s) == shard) out.push_back(s);
    return out;
  }

  // Re-home `slots` to `dst` and bump the epoch once; returns the new
  // epoch.  Caller contract: one migration at a time (the migration engine
  // serializes), and the stores must be published to concurrent readers
  // through a transactional handoff (the migration reopen commit) before
  // the moved range is considered live at `dst`.
  std::uint64_t rehome(const std::vector<std::size_t>& slots, std::size_t dst) {
    for (std::size_t s : slots)
      owners_[s].store(static_cast<std::uint32_t>(dst), std::memory_order_release);
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  std::size_t shards_;
  std::atomic<std::uint32_t> owners_[kSlots];
  std::atomic<std::uint64_t> epoch_{1};
};

}  // namespace mtx::kv
