// Sharded transactional key-value store over the StmBackend registry, with
// the paper's two bounded mixed-access protocols as first-class fast paths.
//
// Layout: N shards, each an independent THash table plus a privatization
// flag, a scan-result cell, a small immutable snapshot array and its OWN
// snap_ready publication cell.  Keys route to shards by multiplicative
// hashing; all shards share ONE backend instance, but each shard owns a
// quiescence *domain* (stm::QuiesceDomain): every shard operation runs its
// transactions under the shard's domain annotation, so a privatize-scan or
// a snapshot refresh fences only its own shard — writers on other shards
// are not waited for.  Privatization bounds mixed races in SPACE (only the
// privatized shard's cells are plain-accessed) while the shard-scoped fence
// bounds them in TIME, which is exactly the paper's pitch, sharpened by
// locality.  Options::scoped_fences = false restores the conservative
// whole-store fence (the pre-domain baseline, kept for A/B verdict pins
// and benchmarks).
//
// The shard is also the store's UNIT OF OWNERSHIP.  All mutation, scan and
// snapshot entry points live on ShardHandle — a capability to exactly one
// shard, minted by KvStore::shard(i).  A caller that holds handles only for
// the shards it owns (the multi-reactor serving tier hands each reactor a
// disjoint handle set) cannot address another reactor's shard at all:
// cross-shard access is a missing-capability type error, not a runtime
// race.  The whole-store convenience API (put/get/scan/... on KvStore)
// routes keys and delegates to handles — single-owner callers keep the
// simple surface.
//
// Mixed-access protocols (and their fence obligations):
//
//   privatize-scan (§5 privatization):  a scanner transactionally CASes the
//   shard's flag open→closed (the flag READ matters: it is the hb link from
//   the previous owner's reopen commit), then quiesces — every transaction
//   that might still write the shard either committed before the fence or
//   will re-validate its flag read and abort.  The scanner now owns the
//   shard: it walks the table with plain loads and plain-writes the scan
//   result, then publishes the shard back by transactionally reopening the
//   flag.  Mutators re-check the flag inside every writing transaction (and
//   wait out closed shards), so their later writes are ordered after the
//   reopen commit by the cwr edge of that flag read.  Read-only gets skip
//   the flag entirely: they race with nothing the scanner does (plain reads
//   vs transactional reads conflict on no cell), so readers keep flowing
//   through a privatized shard — privatization here is a *writer* pause.
//
//   snapshot-read (publication):  publish_snapshot() plain-writes a chosen
//   key set's current values into per-shard snapshot slots, then publishes
//   each shard with a single transactional write of THAT SHARD's snap_ready
//   cell.  The slots are immutable from that commit on, so any thread that
//   has observed the shard's snap_ready — ShardHandle::snapshot_attach()
//   runs one transactional read, the publication pattern's handoff — may
//   read the shard's slots with pure plain loads: the paper's "plain reads
//   of published immutable values", no fence or flag on the per-read path.
//   Because the ready cell is per shard and INSIDE the shard's domain,
//   ShardHandle::refresh_snapshot re-runs the whole protocol (retract,
//   quiesce, rewrite, republish) scoped to one shard — the serving tier's
//   per-reactor quiet points refresh owned shards without ever fencing the
//   whole store on the hot path.
//
// Both protocols are auditable at runtime: under a RecordSession every
// plain access above is captured, and the sampled-conformance driver
// (src/kv/workload.hpp) feeds the captured windows to the model layer.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "containers/thash.hpp"
#include "kv/routing.hpp"
#include "stm/backend.hpp"

namespace mtx::kv {

// Canonical keyed-value form, shared by every driver of the store (the
// in-process workload engine, the network serving tier and its load
// generator): a value files its key in the high digits — value =
// key * kValueStride + payload with payload in [0, kValueStride).  Any
// reader holding a (key, value) pair can audit the pair against the key it
// was filed under, a schedule-independent correctness check that survives
// arbitrary interleaving and staleness (a stale value is still *that key's*
// value).  The wire protocol's RMW op and batch_mutate bump the payload
// modulo the stride, so the form is preserved forever — no audit ever
// degrades into "probably fine until a counter overflows the stride".
constexpr std::int64_t kValueStride = 1'000'000;

inline std::int64_t value_of(std::int64_t key, std::int64_t payload) {
  return key * kValueStride + payload % kValueStride;
}
inline std::int64_t payload_of(std::int64_t value) {
  return ((value % kValueStride) + kValueStride) % kValueStride;
}
inline bool value_form_ok(std::int64_t key, std::int64_t value) {
  return value / kValueStride == key;
}

// The store geometry every tier agrees on: shard count, preloaded
// key-space, published hot-set size.  One struct, embedded by the KV
// workload driver, the server config and the load generator, so a
// (server, client) pair is configured from ONE value instead of three
// re-declared field triples that can silently drift.
struct StoreShape {
  std::size_t shards = 8;
  std::size_t preload_keys = 1024;  // keys 0..N-1 preloaded as value_of(k, 0)
  std::size_t snap_keys = 16;       // hottest ranks published for snap reads

  // Human-readable reason the shape is unservable, "" when fine.  The shard
  // ceiling is the QuiescenceRegistry domain budget: each shard owns one
  // scoped-fence domain and ids live in [1, kMaxQuiesceDomains); a larger
  // store would silently alias domain ids and fence the wrong shards, so it
  // is rejected up front instead.
  std::string validate() const;
};

// Copyable snapshot of one shard's operation counters.
struct ShardStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t rmws = 0;
  std::uint64_t scans = 0;       // privatize-scans completed on this shard
  std::uint64_t scan_busy = 0;   // privatize attempts that found it closed
  std::uint64_t snap_reads = 0;
  std::uint64_t priv_waits = 0;  // mutator retries against a closed flag
  std::uint64_t mig_waits = 0;   // reader retries against a migrating shard
  std::uint64_t moved = 0;       // ops bounced for stale routing
};

struct ScanResult {
  bool privatized = false;  // false: another scanner already owned the shard
  std::size_t keys = 0;
  std::int64_t value_sum = 0;
};

// One decoded operation of a same-shard batch (ShardHandle::batch_mutate):
// the serving front end coalesces a run of pipelined ops from one
// connection into a single transaction, so the STM begin/commit overhead —
// and the §5 mutator flag check — amortize across the run.  Results are
// written back in place; a conflict retry re-runs the whole batch body, so
// the executor resets outputs at the top of every attempt.
struct WriteOp {
  enum class Kind : std::uint8_t {
    get,  // transactional read; applied = found, result = value
    put,  // applied = fresh insert, result = stored value
    rmw,  // form-preserving payload bump by `arg` (see kValueStride);
          // applied = key present, result = new value
  };
  Kind kind = Kind::put;
  std::int64_t key = 0;
  std::int64_t arg = 0;  // put: value to store; rmw: payload delta
  bool applied = false;
  // The key no longer routes to the shard the batch executed on (a live
  // migration re-homed it between coalescing and execution).  The op did
  // NOT run; the caller re-routes on the current table (the serving tier
  // answers Status::moved and lets the client retry).
  bool moved = false;
  std::int64_t result = 0;
};

class KvStore;

// A capability to one shard: every mutation, scan and snapshot entry point
// of the store, scoped to the shard the handle was minted for.  Handles are
// small value types (store pointer + index) — copy them freely, hand a
// reactor exactly the set it owns.  Keyed operations assert the key routes
// here; calling through the wrong handle is a routing bug, not a fallback.
class ShardHandle {
 public:
  ShardHandle() = default;

  std::size_t index() const { return idx_; }
  std::size_t bucket_count() const;
  ShardStats stats() const;

  // ----- transactional operations (writers wait out a privatized shard) ---
  //
  // All keyed ops take an optional `moved` out-flag for live-migration
  // callers: when non-null, the op re-checks the routing table INSIDE its
  // flag-checked transaction and — if the key was re-homed away from this
  // shard — sets *moved and returns without executing (return value false).
  // The in-transaction check is what makes detection sound: the migration
  // flag read is cwr-ordered after the migration's reopen commit, which is
  // po-after its routing-table stores, so a transaction that passes the
  // gate always sees post-migration routing.  Callers that pass nullptr
  // assert the pre-migration contract (key statically routes here).
  bool put(std::int64_t key, std::int64_t value, bool* moved = nullptr);
  bool get(std::int64_t key, std::int64_t* out, bool* moved = nullptr);
  bool erase(std::int64_t key, bool* moved = nullptr);
  bool rmw(std::int64_t key, const std::function<std::int64_t(std::int64_t)>& f,
           std::int64_t* out = nullptr, bool* moved = nullptr);

  // Execute `n` decoded ops — every one keyed to THIS shard — inside ONE
  // flag-checked transaction (the serving tier's per-connection batch).
  // Semantically equivalent to issuing the ops one at a time on a single
  // thread: gets observe earlier puts of the same batch (read-your-writes
  // inside the transaction).  Results land in the WriteOp entries.
  void batch_mutate(WriteOp* ops, std::size_t n);

  // ----- mixed-access fast paths ------------------------------------------

  // Privatize this shard, plain-scan it (fn(key, value) per live entry,
  // when fn is given), plain-write the value sum into the shard's scan
  // cell, publish the shard back.  Returns privatized=false without
  // scanning when another scanner holds the shard.
  ScanResult privatize_scan(
      const std::function<void(std::int64_t, std::int64_t)>& fn = nullptr);

  // The publication handoff for this shard: one transactional read of its
  // snap_ready cell (under the shard's domain).  Run it once per reading
  // thread before its first snapshot_read of this shard; every later
  // snapshot access in that thread is ordered after the publication by po
  // from this transaction.  False while nothing is published.
  bool snapshot_attach();

  // Pure plain-load read of a frozen value of this shard.  Requires a prior
  // successful snapshot_attach() in this thread (or the publishing thread
  // itself); false when the key was not frozen here.
  bool snapshot_read(std::int64_t key, std::int64_t* out);

  // Hot-key refresh, scoped to this shard: transactionally retract the
  // shard's snap_ready, quiesce THE SHARD'S DOMAIN ONLY (whole-store when
  // the store was built with scoped_fences off), plain re-write the shard's
  // slots with the CURRENT values of the keys routing here (in `keys`
  // order, front to back), re-publish with one transactional snap_ready
  // write.  Caller contract: a quiet point for THIS shard — no concurrent
  // mutator of the refreshed keys and no snapshot_read of this shard in
  // flight.  The multi-reactor serving tier satisfies it per reactor: all
  // mutations and snap reads of an owned shard execute on the owning
  // reactor thread, so between its requests the shard is quiet.  False when
  // nothing was ever published.
  bool refresh_snapshot(const std::vector<std::int64_t>& keys);

  // Re-establish this shard's cells' current values with recorded plain
  // stores (same contract as KvStore::replay_state_plain, per shard) — the
  // per-reactor streaming pipeline's state-carry anchor over exactly the
  // owned domain set.
  void replay_state_plain();

  // Cells replay_state_plain touches (trace-size planning).
  std::size_t cell_count() const;

 private:
  friend class KvStore;
  ShardHandle(KvStore* store, std::size_t idx) : store_(store), idx_(idx) {}

  KvStore* store_ = nullptr;
  std::size_t idx_ = 0;
};

class KvStore {
 public:
  struct Options {
    std::size_t shards = 8;
    // Sizing hint: per-shard bucket counts come from
    // THash::recommended_buckets(expected_keys / shards).
    std::size_t expected_keys = 1024;
    std::size_t snap_slots = 8;  // immutable snapshot capacity per shard
    // Give each shard its own quiescence domain so privatize-scan and
    // snapshot refresh fence only that shard (false = whole-store fences,
    // the pre-domain behavior).
    bool scoped_fences = true;
  };

  // Throws std::invalid_argument when the shard count exceeds the
  // QuiescenceRegistry domain budget (see StoreShape::validate).
  explicit KvStore(stm::StmBackend& stm);  // default Options
  KvStore(stm::StmBackend& stm, const Options& opt);

  stm::StmBackend& stm() { return stm_; }
  std::size_t shards() const { return shards_.size(); }

  // Current routing decision for `key` — a hint that can go stale under a
  // live migration; the keyed ops' in-transaction re-check (see
  // ShardHandle) is the authoritative gate.
  std::size_t shard_of(std::int64_t key) const;

  // The epoch-stamped routing table itself (migration engine + serving
  // tier: slot re-homing, epoch echo in `moved` responses).
  RoutingTable& routing() { return routing_; }
  const RoutingTable& routing() const { return routing_; }

  // The shard capability: all per-shard operations live on the handle.
  ShardHandle shard(std::size_t i) {
    assert(i < shards_.size());
    return ShardHandle(this, i);
  }

  std::size_t bucket_count(std::size_t shard) const;
  ShardStats stats(std::size_t shard) const;

  // ----- whole-store convenience surface (routes and delegates) -----------

  // The whole-store ops route on the current table and transparently chase
  // a concurrent migration: a `moved` verdict re-routes and retries, so
  // callers never observe the topology change.
  bool put(std::int64_t key, std::int64_t value);  // true = fresh insert
  bool get(std::int64_t key, std::int64_t* out);
  bool erase(std::int64_t key);
  bool rmw(std::int64_t key, const std::function<std::int64_t(std::int64_t)>& f,
           std::int64_t* out = nullptr);
  std::size_t size();  // transactional count, one transaction per shard

  ScanResult privatize_scan(std::size_t shard,
                            const std::function<void(std::int64_t, std::int64_t)>& fn = nullptr);

  // Freeze the CURRENT values of `keys` (at most snap_slots per shard) into
  // the immutable snapshot and publish every shard's snap_ready.  Once-only
  // for the whole store; returns false (and publishes nothing) on a second
  // call.  Caller must be in a quiet phase (no concurrent mutators of the
  // snapshotted keys).  Every shard publishes — including shards no key
  // routes to — so per-shard refresh is uniformly available afterwards.
  bool publish_snapshot(const std::vector<std::int64_t>& keys);

  // The whole-store publication handoff: ONE transaction reading every
  // shard's snap_ready cell, ordering this thread's later plain snapshot
  // loads of ANY shard after the publication.  (Single-owner callers attach
  // once here; shard-owning callers use ShardHandle::snapshot_attach per
  // owned shard instead.)  False while nothing is published.
  bool snapshot_attach();

  // Pure plain-load read of a frozen value (routes to the key's shard).
  bool snapshot_read(std::int64_t key, std::int64_t* out);

  // Refresh every shard's published hot set: per-shard scoped refreshes in
  // shard order (see ShardHandle::refresh_snapshot).  Caller contract is
  // the per-shard quiet point, for all shards at once.  False when nothing
  // was ever published.
  bool refresh_snapshot(const std::vector<std::int64_t>& keys);

  // ----- sampled-conformance support --------------------------------------

  // Re-establish every cell's current value with a recorded plain store
  // (value re-written in place).  Caller contract: every other thread is
  // paused with no transaction in flight, and the call runs inside a
  // synthetic committed transaction of an installed recorder — it becomes
  // the recording window's state-carry transaction, so mid-execution
  // windows are well-formed (reads-from resolves against the carry instead
  // of dangling on the all-zero init).  Covers unlinked nodes too: zombie
  // readers can still reach them.
  void replay_state_plain();

  // Total cells replay_state_plain touches (trace-size planning for tests).
  std::size_t cell_count() const;

 private:
  friend class ShardHandle;
  friend class MigrationEngine;  // src/kv/migrate.hpp: flag-CAS, plain copy,
                                 // reopen handoff on the endpoint shards

  struct SnapSlot {
    stm::Cell key;  // key + 1; 0 = empty slot
    stm::Cell value;
  };

  struct Shard {
    Shard(stm::StmBackend& stm, std::size_t buckets, std::size_t snap_slots)
        : table(stm, buckets), snap(snap_slots) {}
    containers::THash<stm::StmBackend> table;
    stm::Cell priv_flag;    // 0 = open, 1 = privatized
    stm::Cell scan_result;  // plain-written by the owning scanner
    // Migration gate + publication cell.  mig_flag is the READER-side gate:
    // a privatize-scan pauses only writers (readers race with nothing it
    // does), but a migration plain-WRITES table cells, so readers must be
    // excluded too — keyed reads gate on mig_flag inside their transaction
    // and wait while it is set.  mig_epoch is the routing epoch the
    // migration's reopen commit publishes (the snapshot-publication
    // handoff's ready cell): the same transaction clears both flags and
    // stamps the epoch, so any gate-passing transaction is cwr-ordered
    // after the whole migration (plain copy AND routing stores).
    stm::Cell mig_flag;     // 0 = open, 1 = a migration owns this shard
    stm::Cell mig_epoch;    // routing epoch of the last migration reopen
    std::vector<SnapSlot> snap;
    stm::Cell snap_ready;   // 0 until THIS shard's publication commits;
                            // inside the shard's domain, so refresh fences
                            // stay shard-scoped
    // The shard's quiescence domain: id 0 + null cells when scoped fences
    // are off (or the backend has no scoped wait path AND recording scope
    // is unwanted); otherwise id from create_domain() and an enumerator
    // over exactly this shard's cells.
    stm::QuiesceDomain domain;
    // Advisory "shard is closed" hint — a raw atomic, NOT a Cell, so it is
    // invisible to the STM and to recording.  Raised by a privatize owner
    // (scan or migration) once it wins the flag CAS, cleared after its
    // reopen commit.  Bounced gate-spinners park on it instead of retrying
    // transactionally; correctness still rests entirely on the
    // in-transaction flag read (the hint may be stale in either direction —
    // a stale value only delays a retry).  Parking matters for recorded
    // runs: spinners that busy-retry through the STM flood the trace with
    // back-to-back gate transactions for the whole closure, leaving no
    // point at which no transaction is open — and the assembler, which must
    // place each recorded fence after the transactions it waited out, would
    // be pushed past the owner's own plain accesses, inverting program
    // order in the recorded trace (see sink_fences in record/assemble.cpp).
    std::atomic<std::uint32_t> gate_hint{0};

    struct Counters {
      std::atomic<std::uint64_t> gets{0}, puts{0}, erases{0}, rmws{0},
          scans{0}, scan_busy{0}, snap_reads{0}, priv_waits{0}, mig_waits{0},
          moved{0};
    } counters;
  };

  // Runs fn inside one transaction once the shard's flag reads open; the
  // flag read is part of the transaction (the §5 mutator obligation).
  // Template (not std::function): this is the per-op hot path, and a
  // capturing std::function would heap-allocate on every mutation.
  template <class Fn>
  void mutate(Shard& s, Fn&& fn) {
    // Annotate the transaction with the shard's domain: it touches only this
    // shard's cells, so scoped fences on other shards need not wait for it.
    stm::DomainScope scope(s.domain.id);
    for (;;) {
      bool closed = false;
      stm_.atomically([&](stm::TxHandle& tx) {
        closed = tx.read(s.priv_flag) != 0;
        if (closed) return;
        fn(tx);
      });
      if (!closed) return;
      // The shard is privatized: its owner is mid-plain-scan.  Park until
      // the hint clears, then retry; the flag read above re-validates on
      // every retry, so the first transaction to see the reopen commit
      // proceeds (and is hb-ordered after the scanner's plain accesses
      // through that read).
      s.counters.priv_waits.fetch_add(1, std::memory_order_relaxed);
      priv_wait_pause();
      gate_park(s);
    }
  }

  static void priv_wait_pause();
  // Wait (outside any transaction) while the shard's advisory closed hint
  // is up.  Purely a retry throttle: callers always re-check the real gate
  // flag transactionally afterwards.
  static void gate_park(Shard& s);

  stm::StmBackend& stm_;
  std::vector<std::unique_ptr<Shard>> shards_;
  RoutingTable routing_;
  bool scoped_fences_ = true;
  std::atomic<bool> snap_published_{false};  // whole-store once-only latch
};

}  // namespace mtx::kv
