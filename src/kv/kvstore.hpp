// Sharded transactional key-value store over the StmBackend registry, with
// the paper's two bounded mixed-access protocols as first-class fast paths.
//
// Layout: N shards, each an independent THash table plus a privatization
// flag, a scan-result cell, and a small immutable snapshot array.  Keys
// route to shards by multiplicative hashing; all shards share ONE backend
// instance, but each shard owns a quiescence *domain* (stm::QuiesceDomain):
// every shard operation runs its transactions under the shard's domain
// annotation, so a privatize-scan fences only its own shard — writers on
// other shards are not waited for.  Privatization bounds mixed races in
// SPACE (only the privatized shard's cells are plain-accessed) while the
// now shard-scoped fence bounds them in TIME, which is exactly the paper's
// pitch, sharpened by locality.  Options::scoped_fences = false restores
// the conservative whole-store fence (the pre-domain baseline, kept for
// A/B verdict pins and benchmarks).
//
// Mixed-access protocols (and their fence obligations):
//
//   privatize-scan (§5 privatization):  a scanner transactionally CASes the
//   shard's flag open→closed (the flag READ matters: it is the hb link from
//   the previous owner's reopen commit), then quiesces — every transaction
//   that might still write the shard either committed before the fence or
//   will re-validate its flag read and abort.  The scanner now owns the
//   shard: it walks the table with plain loads and plain-writes the scan
//   result, then publishes the shard back by transactionally reopening the
//   flag.  Mutators re-check the flag inside every writing transaction (and
//   wait out closed shards), so their later writes are ordered after the
//   reopen commit by the cwr edge of that flag read.  Read-only gets skip
//   the flag entirely: they race with nothing the scanner does (plain reads
//   vs transactional reads conflict on no cell), so readers keep flowing
//   through a privatized shard — privatization here is a *writer* pause.
//
//   snapshot-read (publication):  publish_snapshot() plain-writes a chosen
//   key set's current values into per-shard snapshot slots, then publishes
//   them with a single transactional snap_ready write.  The slots are
//   immutable from that commit on (publish is once-only), so any thread
//   that has observed snap_ready — snapshot_attach() runs one transactional
//   read, the publication pattern's handoff — may read slots with pure
//   plain loads forever after: the paper's "plain reads of published
//   immutable values", no fence or flag on the per-read path at all.
//
// Both protocols are auditable at runtime: under a RecordSession every
// plain access above is captured, and the sampled-conformance driver
// (src/kv/workload.hpp) feeds the captured windows to the model layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "containers/thash.hpp"
#include "stm/backend.hpp"

namespace mtx::kv {

// Canonical keyed-value form, shared by every driver of the store (the
// in-process workload engine, the network serving tier and its load
// generator): a value files its key in the high digits — value =
// key * kValueStride + payload with payload in [0, kValueStride).  Any
// reader holding a (key, value) pair can audit the pair against the key it
// was filed under, a schedule-independent correctness check that survives
// arbitrary interleaving and staleness (a stale value is still *that key's*
// value).  The wire protocol's RMW op and KvStore::batch_mutate bump the
// payload modulo the stride, so the form is preserved forever — no audit
// ever degrades into "probably fine until a counter overflows the stride".
constexpr std::int64_t kValueStride = 1'000'000;

inline std::int64_t value_of(std::int64_t key, std::int64_t payload) {
  return key * kValueStride + payload % kValueStride;
}
inline std::int64_t payload_of(std::int64_t value) {
  return ((value % kValueStride) + kValueStride) % kValueStride;
}
inline bool value_form_ok(std::int64_t key, std::int64_t value) {
  return value / kValueStride == key;
}

// Copyable snapshot of one shard's operation counters.
struct ShardStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t rmws = 0;
  std::uint64_t scans = 0;       // privatize-scans completed on this shard
  std::uint64_t scan_busy = 0;   // privatize attempts that found it closed
  std::uint64_t snap_reads = 0;
  std::uint64_t priv_waits = 0;  // mutator retries against a closed flag
};

struct ScanResult {
  bool privatized = false;  // false: another scanner already owned the shard
  std::size_t keys = 0;
  std::int64_t value_sum = 0;
};

// One decoded operation of a same-shard batch (KvStore::batch_mutate): the
// serving front end coalesces a run of pipelined ops from one connection
// into a single transaction, so the STM begin/commit overhead — and the §5
// mutator flag check — amortize across the run.  Results are written back
// in place; a conflict retry re-runs the whole batch body, so the executor
// resets outputs at the top of every attempt.
struct WriteOp {
  enum class Kind : std::uint8_t {
    get,  // transactional read; applied = found, result = value
    put,  // applied = fresh insert, result = stored value
    rmw,  // form-preserving payload bump by `arg` (see kValueStride);
          // applied = key present, result = new value
  };
  Kind kind = Kind::put;
  std::int64_t key = 0;
  std::int64_t arg = 0;  // put: value to store; rmw: payload delta
  bool applied = false;
  std::int64_t result = 0;
};

class KvStore {
 public:
  struct Options {
    std::size_t shards = 8;
    // Sizing hint: per-shard bucket counts come from
    // THash::recommended_buckets(expected_keys / shards).
    std::size_t expected_keys = 1024;
    std::size_t snap_slots = 8;  // immutable snapshot capacity per shard
    // Give each shard its own quiescence domain so privatize-scan fences
    // only that shard (false = whole-store fences, the pre-domain behavior).
    bool scoped_fences = true;
  };

  explicit KvStore(stm::StmBackend& stm);  // default Options
  KvStore(stm::StmBackend& stm, const Options& opt);

  stm::StmBackend& stm() { return stm_; }
  std::size_t shards() const { return shards_.size(); }
  std::size_t shard_of(std::int64_t key) const;
  std::size_t bucket_count(std::size_t shard) const;
  ShardStats stats(std::size_t shard) const;

  // ----- transactional operations (writers wait out privatized shards) ----

  bool put(std::int64_t key, std::int64_t value);  // true = fresh insert
  bool get(std::int64_t key, std::int64_t* out);
  bool erase(std::int64_t key);
  // Read-modify-write in one transaction: *out gets f(old) when present.
  bool rmw(std::int64_t key, const std::function<std::int64_t(std::int64_t)>& f,
           std::int64_t* out = nullptr);
  std::size_t size();  // transactional count, one transaction per shard

  // Execute `n` decoded ops — every one keyed to shard `shard` — inside ONE
  // flag-checked transaction (the serving tier's per-connection batch), so
  // begin/commit overhead and the §5 mutator obligation amortize across the
  // run.  Semantically equivalent to issuing the ops one at a time on a
  // single thread: gets observe earlier puts of the same batch
  // (read-your-writes inside the transaction).  Results land in the WriteOp
  // entries after the call returns.
  void batch_mutate(std::size_t shard, WriteOp* ops, std::size_t n);

  // ----- mixed-access fast paths ------------------------------------------

  // Privatize shard `shard`, plain-scan it (fn(key, value) per live entry,
  // when fn is given), plain-write the value sum into the shard's scan
  // cell, publish the shard back.  Returns privatized=false without
  // scanning when another scanner holds the shard.
  ScanResult privatize_scan(std::size_t shard,
                            const std::function<void(std::int64_t, std::int64_t)>& fn = nullptr);

  // Freeze the CURRENT values of `keys` (at most snap_slots per shard) into
  // the immutable snapshot and publish it.  Once-only; returns false (and
  // publishes nothing) on a second call.  Caller must be in a quiet phase
  // (no concurrent mutators of the snapshotted keys).
  bool publish_snapshot(const std::vector<std::int64_t>& keys);

  // The publication handoff: one transactional read of snap_ready.  Run it
  // once per reading thread before its first snapshot_read; every later
  // snapshot access in that thread is ordered after the publication by
  // po from this transaction.  Returns false while nothing is published.
  bool snapshot_attach();

  // Pure plain-load read of a frozen value.  Requires a prior successful
  // snapshot_attach() in this thread; false when the key was not frozen.
  bool snapshot_read(std::int64_t key, std::int64_t* out);

  // Hot-key refresh policy: re-run the publication protocol over the
  // already-published slots.  Transactionally retract snap_ready, quiesce
  // (the retraction is globally visible and no publication-era transaction
  // is still in flight), plain re-write the slots with the keys' CURRENT
  // values, and re-publish with one transactional snap_ready write.  Caller
  // contract mirrors publish_snapshot, sharpened: a quiet point with no
  // concurrent mutator of the refreshed keys AND no snapshot_read in
  // flight — the serving front end satisfies it for free from its single
  // op-execution thread between requests.  Returns false when nothing was
  // ever published (use publish_snapshot first).
  bool refresh_snapshot(const std::vector<std::int64_t>& keys);

  // ----- sampled-conformance support --------------------------------------

  // Re-establish every cell's current value with a recorded plain store
  // (value re-written in place).  Caller contract: every other thread is
  // paused with no transaction in flight, and the call runs inside a
  // synthetic committed transaction of an installed recorder — it becomes
  // the recording window's state-carry transaction, so mid-execution
  // windows are well-formed (reads-from resolves against the carry instead
  // of dangling on the all-zero init).  Covers unlinked nodes too: zombie
  // readers can still reach them.
  void replay_state_plain();

  // Total cells replay_state_plain touches (trace-size planning for tests).
  std::size_t cell_count() const;

 private:
  struct SnapSlot {
    stm::Cell key;  // key + 1; 0 = empty slot
    stm::Cell value;
  };

  struct Shard {
    Shard(stm::StmBackend& stm, std::size_t buckets, std::size_t snap_slots)
        : table(stm, buckets), snap(snap_slots) {}
    containers::THash<stm::StmBackend> table;
    stm::Cell priv_flag;    // 0 = open, 1 = privatized
    stm::Cell scan_result;  // plain-written by the owning scanner
    std::vector<SnapSlot> snap;
    // The shard's quiescence domain: id 0 + null cells when scoped fences
    // are off (or the backend has no scoped wait path AND recording scope
    // is unwanted); otherwise id from create_domain() and an enumerator
    // over exactly this shard's cells.
    stm::QuiesceDomain domain;

    struct Counters {
      std::atomic<std::uint64_t> gets{0}, puts{0}, erases{0}, rmws{0},
          scans{0}, scan_busy{0}, snap_reads{0}, priv_waits{0};
    } counters;
  };

  // Runs fn inside one transaction once the shard's flag reads open; the
  // flag read is part of the transaction (the §5 mutator obligation).
  // Template (not std::function): this is the per-op hot path, and a
  // capturing std::function would heap-allocate on every mutation.
  template <class Fn>
  void mutate(Shard& s, Fn&& fn) {
    // Annotate the transaction with the shard's domain: it touches only this
    // shard's cells, so scoped fences on other shards need not wait for it.
    stm::DomainScope scope(s.domain.id);
    for (;;) {
      bool closed = false;
      stm_.atomically([&](stm::TxHandle& tx) {
        closed = tx.read(s.priv_flag) != 0;
        if (closed) return;
        fn(tx);
      });
      if (!closed) return;
      // The shard is privatized: its owner is mid-plain-scan.  Spin
      // politely; the flag read above re-validates on every retry, so the
      // first transaction to see the reopen commit proceeds (and is
      // hb-ordered after the scanner's plain accesses through that read).
      s.counters.priv_waits.fetch_add(1, std::memory_order_relaxed);
      priv_wait_pause();
    }
  }

  static void priv_wait_pause();

  stm::StmBackend& stm_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool scoped_fences_ = true;
  stm::Cell snap_ready_;  // 0 until publish_snapshot commits; deliberately
                          // outside every shard domain (snapshot txns are
                          // whole-store)
  std::atomic<bool> snap_published_{false};
};

}  // namespace mtx::kv
