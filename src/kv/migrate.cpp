#include "kv/migrate.hpp"

#include <chrono>
#include <utility>

namespace mtx::kv {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(MigrateKind k) {
  switch (k) {
    case MigrateKind::split: return "split";
    case MigrateKind::move: return "move";
    case MigrateKind::merge: return "merge";
  }
  return "?";
}

const char* to_string(MigrateBait b) {
  switch (b) {
    case MigrateBait::none: return "none";
    case MigrateBait::skip_source_fence: return "skip_source_fence";
    case MigrateBait::publish_before_copy: return "publish_before_copy";
    case MigrateBait::stale_route: return "stale_route";
  }
  return "?";
}

bool migrate_kind_from(const std::string& name, MigrateKind* out) {
  for (MigrateKind k :
       {MigrateKind::split, MigrateKind::move, MigrateKind::merge})
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  return false;
}

bool migrate_bait_from(const std::string& name, MigrateBait* out) {
  for (MigrateBait b :
       {MigrateBait::none, MigrateBait::skip_source_fence,
        MigrateBait::publish_before_copy, MigrateBait::stale_route})
    if (name == to_string(b)) {
      *out = b;
      return true;
    }
  return false;
}

const std::vector<std::string>& migrate_kind_names() {
  static const std::vector<std::string> names = {"split", "move", "merge"};
  return names;
}

const std::vector<std::string>& migrate_bait_names() {
  static const std::vector<std::string> names = {
      "none", "skip_source_fence", "publish_before_copy", "stale_route"};
  return names;
}

MigrateReport MigrationEngine::split(std::size_t src, std::size_t dst,
                                     MigrateBait bait) {
  return run(MigrateKind::split, src, dst, bait);
}

MigrateReport MigrationEngine::move(std::size_t src, std::size_t dst,
                                    std::size_t take, MigrateBait bait) {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::size_t> slots = store_.routing().slots_of(src);
  if (take < slots.size()) slots.erase(slots.begin(), slots.end() - take);
  return migrate_slots(MigrateKind::move, src, dst, std::move(slots), bait);
}

MigrateReport MigrationEngine::merge(std::size_t src, std::size_t dst,
                                     MigrateBait bait) {
  return run(MigrateKind::merge, src, dst, bait);
}

MigrateReport MigrationEngine::run(MigrateKind kind, std::size_t src,
                                   std::size_t dst, MigrateBait bait) {
  if (kind == MigrateKind::move) return move(src, dst, 1, bait);
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::size_t> slots = store_.routing().slots_of(src);
  if (kind == MigrateKind::split) {
    // A 1-slot shard cannot split; keep the LOWER half, re-home the upper.
    if (slots.size() < 2) slots.clear();
    else slots.erase(slots.begin(), slots.begin() + slots.size() / 2);
  }
  return migrate_slots(kind, src, dst, std::move(slots), bait);
}

MigrateReport MigrationEngine::migrate_slots(MigrateKind kind, std::size_t src,
                                             std::size_t dst,
                                             std::vector<std::size_t> slots,
                                             MigrateBait bait) {
  MigrateReport r;
  r.kind = kind;
  r.bait = bait;
  r.src = src;
  r.dst = dst;
  r.epoch_before = r.epoch_after = store_.routing().epoch();
  if (src == dst || src >= store_.shards() || dst >= store_.shards() ||
      slots.empty())
    return r;
  r.performed = true;
  r.slots_moved = slots.size();
  const std::uint64_t t0 = now_ns();

  KvStore::Shard& a = *store_.shards_[src];
  KvStore::Shard& b = *store_.shards_[dst];

  // Phase 1 — privatize an endpoint: CAS priv_flag open→closed and raise
  // mig_flag in ONE transaction (writers gate on the former, readers on the
  // latter; reading the flag rather than blind-writing it is the cwr link
  // into the previous owner's reopen), then run the scoped grace period.
  const auto close_shard = [&](KvStore::Shard& s, bool fence) {
    stm::DomainScope scope(s.domain.id);
    for (;;) {
      bool won = false;
      store_.stm_.atomically([&](stm::TxHandle& tx) {
        won = tx.read(s.priv_flag) == 0;
        if (!won) return;
        tx.write(s.priv_flag, 1);
        tx.write(s.mig_flag, 1);
      });
      if (won) break;  // a scanner (or another migration) owns it; wait
      KvStore::priv_wait_pause();
      KvStore::gate_park(s);
    }
    // Owner: raise the advisory hint so bounced workers park instead of
    // busy-retrying through the STM until reopen.  Their recorded gate
    // transactions would otherwise tile the trace gaplessly for the whole
    // closure, and the assembler could then not place the fence below
    // before this thread's own plain copy (see Shard::gate_hint).
    s.gate_hint.store(1, std::memory_order_release);
    if (!fence) return;  // the skip_source_fence bait drops this obligation
    const std::uint64_t f0 = now_ns();
    if (store_.scoped_fences_)
      store_.stm_.quiesce(s.domain);
    else
      store_.stm_.quiesce();
    r.fence_ns += now_ns() - f0;
  };

  // Phase 3 — publish an endpoint back: one transaction stamps the routing
  // epoch and clears both flags; every gate-passer is cwr-ordered after
  // this commit, hence after the plain copy and the routing stores.
  const auto reopen_shard = [&](KvStore::Shard& s) {
    stm::DomainScope scope(s.domain.id);
    store_.stm_.atomically([&](stm::TxHandle& tx) {
      tx.write(s.mig_epoch, static_cast<stm::word_t>(r.epoch_after));
      tx.write(s.mig_flag, 0);
      tx.write(s.priv_flag, 0);
    });
    s.gate_hint.store(0, std::memory_order_release);
  };

  close_shard(a, bait != MigrateBait::skip_source_fence);
  close_shard(b, true);

  // Slot membership for the copy filter.
  bool moving[RoutingTable::kSlots] = {};
  for (std::size_t s : slots) moving[s] = true;

  const auto copy_range = [&] {
    const std::uint64_t c0 = now_ns();
    // Collect first, then relink: plain_erase during for_each_plain would
    // mutate the chains under the traversal.
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    a.table.for_each_plain([&](std::int64_t k, std::int64_t v) {
      if (moving[RoutingTable::slot_of(k)]) pairs.emplace_back(k, v);
    });
    for (const auto& kv : pairs) b.table.plain_put(kv.first, kv.second);
    for (const auto& kv : pairs) a.table.plain_erase(kv.first);
    r.keys_moved = pairs.size();
    r.copy_ns = now_ns() - c0;
  };

  if (bait == MigrateBait::publish_before_copy) {
    // BROKEN ordering: routing + reopen first, copy after — the copy's
    // plain accesses end up po-after the handoff commit, unreachable by any
    // gate-passer's cwr edge.
    r.epoch_after = store_.routing().rehome(slots, dst);
    reopen_shard(b);
    reopen_shard(a);
    copy_range();
  } else {
    copy_range();
    if (bait != MigrateBait::stale_route)
      r.epoch_after = store_.routing().rehome(slots, dst);
    reopen_shard(b);
    reopen_shard(a);
  }

  r.total_ns = now_ns() - t0;
  return r;
}

}  // namespace mtx::kv
