// YCSB-style workload driver for the sharded KV store: mix descriptions
// (operation percentages + key distribution), a multi-threaded driver
// producing throughput and log-scale latency quantiles, and an opt-in
// sampled-conformance mode that records a fraction of the execution and
// has the model layer judge it — the serving layer audited online.
//
// Determinism contract: each worker draws its operation kinds, keys and
// payloads from its own Rng seeded by (seed, tid), so the PLANNED op
// stream — and therefore the per-class op counts reported in KvResult —
// is a pure function of (mix, seed, threads, ops_per_thread), independent
// of backend, scheduling, and sampling.  With threads == 1 the entire
// execution (final store contents included) is deterministic; the campaign
// CSV rows expose only these schedule-independent fields so same-seed runs
// diff clean (pinned by tests/test_kv.cpp).
//
// Sampled conformance: partial recording of a subset of threads cannot
// work — reads-from against unrecorded writes would dangle — so sampling
// is TEMPORAL: execution is split into rounds of `round_ops` per thread,
// every `sample_every`-th round runs with ALL threads recording into a
// fresh RecordSession, and each recorded window opens with a synthetic
// committed state-carry transaction (KvStore::replay_state_plain) so the
// mid-execution trace is well-formed.  Captured windows are judged with
// check_conformance_windowed after the run.
//
// Streaming conformance (`stream = true`): every sampled round is recorded,
// but instead of post-hoc assembly each thread pushes its events through a
// lock-free ring into the record::StreamConformance cutter, which seals a
// segment per round (the barrier is the quiescent epoch boundary) and
// judges it on checker threads WHILE the workload keeps running.  At the
// always-on sampling level (stream_sample_every == 1) the preload state is
// replayed once, as the first recorded transaction, and every later segment
// opens with the cutter's own synthesized sparse carry; at sparser levels
// each sampled segment is re-anchored by its own recorded state replay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kv/kvstore.hpp"
#include "substrate/rng.hpp"
#include "substrate/stats.hpp"

namespace mtx::kv {

enum class KeyDist { uniform, zipfian };

// Operation percentages (must sum to 100) plus the key distribution.
//   read      transactional get of a preloaded key
//   update    transactional put of a preloaded key (fresh value payload)
//   insert    transactional put of a brand-new key
//   scan      privatize-scan of a random shard (plain-access read path)
//   rmw       transactional read-modify-write (payload bump) of a key
//   snap      snapshot-read (plain-access read of a frozen published value)
struct Mix {
  std::string name;
  int read_pct = 0;
  int update_pct = 0;
  int insert_pct = 0;
  int scan_pct = 0;
  int rmw_pct = 0;
  int snap_pct = 0;
  KeyDist dist = KeyDist::zipfian;
  double theta = 0.99;
  // Hot-set layer: hot_pct% of key draws come from the tiny set
  // [0, hot_set) regardless of the base distribution; the rest fall through
  // to dist/theta, so a hot scenario keeps its long-tail traffic.  0 = off
  // (and then the layer consumes no Rng values — existing mixes' planned
  // op streams are bit-identical to the pre-layer driver).
  int hot_pct = 0;
  std::size_t hot_set = 16;

  int total_pct() const {
    return read_pct + update_pct + insert_pct + scan_pct + rmw_pct + snap_pct;
  }
};

// {a, b, c, priv_heavy, pub_heavy, hot}: YCSB A (50/50 read/update), B
// (95/5), C (read-only) on Zipfian keys, the two mixed-access scenarios —
// priv_heavy leans on privatize-scan, pub_heavy on snapshot-read — and the
// serving-tier scenario `hot`: 90% reads with most key draws over a tiny
// hot set layered on Zipfian, shared by the in-process driver and the
// network load generator (bench/loadgen) so both speak one hot-key
// definition.
const std::vector<Mix>& standard_mixes();
const Mix* mix_by_name(const std::string& name);

// The op classes a mix draws from — one vocabulary for the in-process
// driver, the wire protocol and the load generator.
enum class OpKind { read, update, insert, scan, rmw, snap };

// Draws the next op class from the mix percentages.  Consumes exactly one
// Rng value — part of the determinism contract above.
OpKind draw_op(Rng& rng, const Mix& mix);

// Key chooser for a mix over `space` preloaded keys: the mix's base
// distribution (Zipfian(theta) or uniform) with the hot-set layer on top.
// Immutable after construction, safe to share across threads (each caller
// supplies its own Rng).  Consumes one Rng value per draw, plus one more
// for the layer dice only when the mix's hot layer is on.
class KeyChooser {
 public:
  KeyChooser(const Mix& mix, std::size_t space);
  std::int64_t next(Rng& rng) const;

 private:
  std::optional<Zipfian> zipf_;
  std::size_t space_;
  int hot_pct_;
  std::size_t hot_set_;
};

struct KvWorkloadOptions {
  std::size_t threads = 2;
  std::uint64_t seed = 1;
  std::uint64_t ops_per_thread = 1000;
  // Store geometry (shards / preload_keys / snap_keys) — the same shape
  // struct the serving tier and load generator embed, so a paired
  // configuration is ONE value.
  StoreShape store{4, 128, 16};
  // Per-shard quiescence domains (KvStore::Options::scoped_fences).  False
  // restores whole-store fences — the A/B baseline for the determinism pin
  // that scoped and unscoped runs give identical verdicts.
  bool scoped_fences = true;

  // Sampled conformance: every sample_every-th round of round_ops per
  // thread is recorded and judged.  0 disables sampling (no rounds, no
  // barriers — the pure performance path).
  std::size_t sample_every = 0;
  std::size_t round_ops = 32;
  std::size_t window_min_events = 64;  // forwarded to the windowed checker

  // Streaming conformance: record every round into per-thread rings and
  // judge segments concurrently with execution.  Takes precedence over
  // sample_every (the two modes are mutually exclusive).
  bool stream = false;
  std::size_t stream_ring_capacity = 1u << 14;  // slots per thread ring
  std::size_t stream_checkers = 2;              // checker pool threads
  bool stream_compare_posthoc = false;  // also judge post-hoc and compare
  // Streaming sampling level: stream (record, seal, judge) only every Nth
  // round; unsampled rounds run unrecorded and barrier-free at full speed.
  // 1 = always-on.
  // With N > 1 the cutter has not seen the intervening writes, so carry
  // synthesis is off and the coordinator instead re-anchors EVERY sampled
  // segment with a fresh recorded state replay.
  std::size_t stream_sample_every = 1;
};

struct KvConformance {
  std::size_t sessions = 0;       // recorded rounds captured (or segments)
  std::size_t windows = 0;        // fence-bounded windows judged, total
  std::size_t nonconformant = 0;  // sessions whose merged verdict fails
  std::size_t recorded_actions = 0;
  bool streamed = false;          // judged by the streaming pipeline
  // Streaming capture health (zero in sampled mode).
  std::uint64_t ring_dropped = 0;
  bool overflow = false;
  std::size_t max_backlog = 0;
  // Streaming oracle (stream_compare_posthoc only).
  bool posthoc_checked = false;
  bool posthoc_match = false;
  bool all_ok() const { return nonconformant == 0 && !overflow; }
};

struct KvResult {
  std::string mix;
  std::string backend;
  std::size_t threads = 0;

  // Schedule-independent (pure function of mix/seed/threads/ops).
  std::uint64_t ops = 0;
  std::uint64_t reads = 0, updates = 0, inserts = 0, scans = 0, rmws = 0,
                snap_reads = 0;

  // Schedule-dependent measurements.
  double wall_ms = 0;
  double ops_per_sec = 0;
  std::uint64_t p50_ns = 0, p95_ns = 0, p99_ns = 0;
  LatencyHist hist;
  std::uint64_t scans_completed = 0;  // privatizations won (vs busy-skipped)
  std::uint64_t priv_waits = 0;       // mutator retries against closed shards

  bool invariant_ok = false;  // post-run transactional audit
  KvConformance conf;

  // Runtime counters (backend quiescence registry + streaming capture).
  std::uint64_t fence_calls = 0;     // QuiescenceRegistry::fence_calls
  std::uint64_t epoch_advances = 0;  // QuiescenceRegistry::epoch_advances
};

// Runs `mix` against a fresh KvStore on `stm`.  Throws std::invalid_argument
// when the mix percentages don't sum to 100.
KvResult run_kv_workload(stm::StmBackend& stm, const Mix& mix,
                         const KvWorkloadOptions& opts = {});

}  // namespace mtx::kv
