#include "kv/kvstore.hpp"

#include <cassert>
#include <stdexcept>
#include <thread>

namespace mtx::kv {

using stm::word_t;

std::string StoreShape::validate() const {
  if (shards == 0) return "store shape: shards must be >= 1";
  if (shards >= static_cast<std::size_t>(stm::kMaxQuiesceDomains))
    return "store shape: " + std::to_string(shards) +
           " shards exceeds the quiescence domain budget (ids 1.." +
           std::to_string(stm::kMaxQuiesceDomains - 1) +
           "; more shards would alias domains and fence the wrong cells)";
  return "";
}

KvStore::KvStore(stm::StmBackend& stm) : KvStore(stm, Options()) {}

KvStore::KvStore(stm::StmBackend& stm, const Options& opt)
    : stm_(stm),
      routing_(opt.shards ? opt.shards : 1),
      scoped_fences_(opt.scoped_fences) {
  const std::size_t nshards = opt.shards ? opt.shards : 1;
  {
    StoreShape shape;
    shape.shards = nshards;
    const std::string why = shape.validate();
    if (!why.empty()) throw std::invalid_argument("KvStore: " + why);
  }
  const std::size_t buckets = containers::THash<stm::StmBackend>::recommended_buckets(
      opt.expected_keys / nshards + 1);
  shards_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>(stm_, buckets, opt.snap_slots));
    if (!scoped_fences_) continue;
    Shard* sh = shards_.back().get();
    // Backends without a scoped wait path return 0 here; the fence then
    // waits whole-store but is still *recorded* as covering only this
    // shard's cells — a sound under-claim that keeps recorded traces small.
    // The enumerator walks the LIVE table, so when a migration re-homes a
    // key range the receiving shard's fence cover grows to the copied
    // nodes automatically — the domain re-covers as ranges change hands.
    sh->domain.id = stm_.create_domain();
    sh->domain.cells = [sh](const stm::QuiesceDomain::CellVisitor& visit) {
      sh->table.for_each_cell([&](stm::Cell& c) { visit(c); });
      visit(sh->priv_flag);
      visit(sh->scan_result);
      visit(sh->mig_flag);
      visit(sh->mig_epoch);
      for (SnapSlot& slot : sh->snap) {
        visit(slot.key);
        visit(slot.value);
      }
      visit(sh->snap_ready);
    };
  }
}

std::size_t KvStore::shard_of(std::int64_t key) const {
  return routing_.shard_of(key);
}

std::size_t KvStore::bucket_count(std::size_t shard) const {
  return shards_[shard]->table.bucket_count();
}

ShardStats KvStore::stats(std::size_t shard) const {
  const Shard::Counters& c = shards_[shard]->counters;
  ShardStats s;
  s.gets = c.gets.load(std::memory_order_relaxed);
  s.puts = c.puts.load(std::memory_order_relaxed);
  s.erases = c.erases.load(std::memory_order_relaxed);
  s.rmws = c.rmws.load(std::memory_order_relaxed);
  s.scans = c.scans.load(std::memory_order_relaxed);
  s.scan_busy = c.scan_busy.load(std::memory_order_relaxed);
  s.snap_reads = c.snap_reads.load(std::memory_order_relaxed);
  s.priv_waits = c.priv_waits.load(std::memory_order_relaxed);
  s.mig_waits = c.mig_waits.load(std::memory_order_relaxed);
  s.moved = c.moved.load(std::memory_order_relaxed);
  return s;
}

void KvStore::priv_wait_pause() { std::this_thread::yield(); }

void KvStore::gate_park(Shard& s) {
  while (s.gate_hint.load(std::memory_order_acquire) != 0) priv_wait_pause();
}

// ---------------------------------------------------------------------------
// ShardHandle — the per-shard capability all operations actually live on.
// ---------------------------------------------------------------------------

std::size_t ShardHandle::bucket_count() const {
  return store_->shards_[idx_]->table.bucket_count();
}

ShardStats ShardHandle::stats() const { return store_->stats(idx_); }

bool ShardHandle::put(std::int64_t key, std::int64_t value, bool* moved) {
  assert((moved || store_->shard_of(key) == idx_) &&
         "key routed through wrong handle");
  KvStore::Shard& s = *store_->shards_[idx_];
  bool fresh = false, mv = false;
  store_->mutate(s, [&](stm::TxHandle& tx) {
    fresh = false;
    mv = moved && store_->routing_.shard_of(key) != idx_;
    if (mv) return;
    fresh = s.table.put_in(tx, key, value);
  });
  if (mv) {
    *moved = true;
    s.counters.moved.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.counters.puts.fetch_add(1, std::memory_order_relaxed);
  return fresh;
}

bool ShardHandle::get(std::int64_t key, std::int64_t* out, bool* moved) {
  assert((moved || store_->shard_of(key) == idx_) &&
         "key routed through wrong handle");
  KvStore::Shard& s = *store_->shards_[idx_];
  // Readers skip the privatization flag — gets conflict with nothing a
  // scanner's plain phase does — but must gate on the MIGRATION flag: a
  // migration plain-writes the table itself, so a transactional read racing
  // it would be a mixed race.  The gate read doubles as the publication
  // handoff (cwr into the migration's reopen commit).
  stm::DomainScope scope(s.domain.id);
  bool found = false, mv = false;
  for (;;) {
    bool migrating = false;
    store_->stm_.atomically([&](stm::TxHandle& tx) {
      found = false;
      mv = false;
      migrating = tx.read(s.mig_flag) != 0;
      if (migrating) return;
      mv = moved && store_->routing_.shard_of(key) != idx_;
      if (mv) return;
      found = s.table.get_in(tx, key, out);
    });
    if (!migrating) break;
    s.counters.mig_waits.fetch_add(1, std::memory_order_relaxed);
    KvStore::priv_wait_pause();
    KvStore::gate_park(s);
  }
  if (mv) {
    *moved = true;
    s.counters.moved.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.counters.gets.fetch_add(1, std::memory_order_relaxed);
  return found;
}

bool ShardHandle::erase(std::int64_t key, bool* moved) {
  assert((moved || store_->shard_of(key) == idx_) &&
         "key routed through wrong handle");
  KvStore::Shard& s = *store_->shards_[idx_];
  bool removed = false, mv = false;
  store_->mutate(s, [&](stm::TxHandle& tx) {
    removed = false;
    mv = moved && store_->routing_.shard_of(key) != idx_;
    if (mv) return;
    removed = s.table.erase_in(tx, key);
  });
  if (mv) {
    *moved = true;
    s.counters.moved.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.counters.erases.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

bool ShardHandle::rmw(std::int64_t key,
                      const std::function<std::int64_t(std::int64_t)>& f,
                      std::int64_t* out, bool* moved) {
  assert((moved || store_->shard_of(key) == idx_) &&
         "key routed through wrong handle");
  KvStore::Shard& s = *store_->shards_[idx_];
  bool found = false, mv = false;
  store_->mutate(s, [&](stm::TxHandle& tx) {
    found = false;
    mv = moved && store_->routing_.shard_of(key) != idx_;
    if (mv) return;
    std::int64_t old = 0;
    found = s.table.get_in(tx, key, &old);
    if (!found) return;
    const std::int64_t neu = f(old);
    s.table.put_in(tx, key, neu);
    if (out) *out = neu;
  });
  if (mv) {
    *moved = true;
    s.counters.moved.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.counters.rmws.fetch_add(1, std::memory_order_relaxed);
  return found;
}

void ShardHandle::batch_mutate(WriteOp* ops, std::size_t n) {
  if (n == 0) return;
  KvStore::Shard& s = *store_->shards_[idx_];
  store_->mutate(s, [&](stm::TxHandle& tx) {
    // The whole body re-runs on a conflict abort: reset every op's outputs
    // so a retried attempt starts clean.
    for (std::size_t i = 0; i < n; ++i) {
      WriteOp& op = ops[i];
      op.applied = false;
      op.moved = false;
      op.result = 0;
      // The batch was coalesced under a routing decision that a live
      // migration may have invalidated; re-check per op inside the gated
      // transaction and bounce (not execute) ops that re-homed away.
      if (store_->routing_.shard_of(op.key) != idx_) {
        op.moved = true;
        continue;
      }
      switch (op.kind) {
        case WriteOp::Kind::get: {
          std::int64_t v = 0;
          op.applied = s.table.get_in(tx, op.key, &v);
          if (op.applied) op.result = v;
          break;
        }
        case WriteOp::Kind::put:
          op.applied = s.table.put_in(tx, op.key, op.arg);
          op.result = op.arg;
          break;
        case WriteOp::Kind::rmw: {
          std::int64_t old = 0;
          op.applied = s.table.get_in(tx, op.key, &old);
          if (!op.applied) break;
          op.result = value_of(op.key, payload_of(old) + op.arg);
          s.table.put_in(tx, op.key, op.result);
          break;
        }
      }
    }
  });
  // Tally executed ops only (bounced ones re-run elsewhere after re-route).
  std::uint64_t gets = 0, puts = 0, rmws = 0, moved = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].moved) {
      ++moved;
      continue;
    }
    switch (ops[i].kind) {
      case WriteOp::Kind::get: ++gets; break;
      case WriteOp::Kind::put: ++puts; break;
      case WriteOp::Kind::rmw: ++rmws; break;
    }
  }
  s.counters.gets.fetch_add(gets, std::memory_order_relaxed);
  s.counters.puts.fetch_add(puts, std::memory_order_relaxed);
  s.counters.rmws.fetch_add(rmws, std::memory_order_relaxed);
  s.counters.moved.fetch_add(moved, std::memory_order_relaxed);
}

ScanResult ShardHandle::privatize_scan(
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  KvStore::Shard& s = *store_->shards_[idx_];
  stm::StmBackend& stm = store_->stm_;
  ScanResult r;
  stm::DomainScope scope(s.domain.id);
  // CAS open→closed.  Reading the flag (not blind-writing it) is what links
  // this scan into the previous owner's reopen commit via cwr.
  stm.atomically([&](stm::TxHandle& tx) {
    r.privatized = tx.read(s.priv_flag) == 0;
    if (r.privatized) tx.write(s.priv_flag, 1);
  });
  if (!r.privatized) {
    s.counters.scan_busy.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  // Owner: raise the advisory hint so bounced writers park instead of
  // busy-retrying through the STM for the whole plain phase.
  s.gate_hint.store(1, std::memory_order_release);
  // Grace period: every transaction that read the flag open has now
  // resolved; any still-running writer will fail its flag validation.
  // Scoped: only this shard's domain (and whole-store transactions) gate
  // the wait, so other shards' writers keep committing.
  if (store_->scoped_fences_)
    stm.quiesce(s.domain);
  else
    stm.quiesce();
  // Plain phase: we own the shard's writers.
  s.table.for_each_plain([&](std::int64_t k, std::int64_t v) {
    ++r.keys;
    r.value_sum += v;
    if (fn) fn(k, v);
  });
  // A genuine plain write into the privatized region (the scan's product).
  s.scan_result.plain_store(static_cast<word_t>(r.value_sum));
  // Publication back: the reopen commit is the hb anchor every later
  // flag-checking mutator orders itself after.
  stm.atomically([&](stm::TxHandle& tx) { tx.write(s.priv_flag, 0); });
  s.gate_hint.store(0, std::memory_order_release);
  s.counters.scans.fetch_add(1, std::memory_order_relaxed);
  return r;
}

bool ShardHandle::snapshot_attach() {
  KvStore::Shard& s = *store_->shards_[idx_];
  stm::DomainScope scope(s.domain.id);
  word_t ready = 0;
  store_->stm_.atomically([&](stm::TxHandle& tx) { ready = tx.read(s.snap_ready); });
  return ready != 0;
}

bool ShardHandle::snapshot_read(std::int64_t key, std::int64_t* out) {
  // No routing assertion: snapshot reads are stale-tolerant by design, and
  // a live migration may re-home a key after its value was frozen here —
  // the frozen value is still *that key's* value (kValueStride audit).  A
  // re-homed key simply stops being found once this shard refreshes.
  KvStore::Shard& s = *store_->shards_[idx_];
  for (KvStore::SnapSlot& slot : s.snap) {
    const word_t k = slot.key.plain_load();
    if (k == 0) break;  // slots fill front-to-back
    if (k == static_cast<word_t>(key + 1)) {
      if (out) *out = static_cast<std::int64_t>(slot.value.plain_load());
      s.counters.snap_reads.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  s.counters.snap_reads.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool ShardHandle::refresh_snapshot(const std::vector<std::int64_t>& keys) {
  KvStore& st = *store_;
  if (!st.snap_published_.load(std::memory_order_acquire)) return false;
  KvStore::Shard& s = *st.shards_[idx_];
  // Retract THIS shard: any thread attaching to it from here on sees
  // "nothing published" until the re-publication commit below.  Other
  // shards' publications stay live throughout — a refresh never blinds
  // readers of shards it doesn't touch.
  {
    stm::DomainScope scope(s.domain.id);
    st.stm_.atomically([&](stm::TxHandle& tx) { tx.write(s.snap_ready, 0); });
  }
  // Grace period, scoped to this shard's domain: the retraction is visible
  // to every later attacher, and no transaction begun against the previous
  // publication of THIS shard is still running (attach transactions are
  // either scoped to this domain or whole-store; both gate the scoped
  // fence).  Combined with the caller's per-shard quiet-point contract (no
  // mutator of the refreshed keys, no snapshot_read of this shard in
  // flight), the shard's slots are unshared again — plain re-writes below
  // race with nothing.
  if (st.scoped_fences_)
    st.stm_.quiesce(s.domain);
  else
    st.stm_.quiesce();
  for (KvStore::SnapSlot& slot : s.snap) {
    slot.key.plain_store(0);
    slot.value.plain_store(0);
  }
  std::size_t used = 0;
  for (std::int64_t key : keys) {
    if (st.shard_of(key) != idx_) continue;   // not this shard's key
    if (used >= s.snap.size()) continue;      // shard's snapshot is full
    std::int64_t value = 0;
    bool moved = false;  // defensive: skip keys re-homed mid-refresh
    if (!get(key, &value, &moved) || moved) continue;
    s.snap[used].key.plain_store(static_cast<word_t>(key + 1));
    s.snap[used].value.plain_store(static_cast<word_t>(value));
    ++used;
  }
  // Re-publish: the same single transactional handoff as publish_snapshot.
  stm::DomainScope scope(s.domain.id);
  st.stm_.atomically([&](stm::TxHandle& tx) { tx.write(s.snap_ready, 1); });
  return true;
}

void ShardHandle::replay_state_plain() {
  KvStore::Shard& s = *store_->shards_[idx_];
  const auto replay = [](stm::Cell& c) {
    c.plain_store(c.raw().load(std::memory_order_relaxed));
  };
  s.table.for_each_cell(replay);
  replay(s.priv_flag);
  replay(s.scan_result);
  replay(s.mig_flag);
  replay(s.mig_epoch);
  for (KvStore::SnapSlot& slot : s.snap) {
    replay(slot.key);
    replay(slot.value);
  }
  replay(s.snap_ready);
}

std::size_t ShardHandle::cell_count() const {
  KvStore::Shard& s = *store_->shards_[idx_];
  std::size_t nodes = 0;
  s.table.for_each_cell([&](stm::Cell&) { ++nodes; });
  // priv_flag + scan_result + mig_flag + mig_epoch + snap_ready
  return nodes + 5 + 2 * s.snap.size();
}

// ---------------------------------------------------------------------------
// Whole-store convenience surface: route the key, delegate to the handle.
// ---------------------------------------------------------------------------

// Route on the current table and chase migrations: a `moved` verdict means
// the key re-homed between routing and execution — re-resolve and retry.
// Terminates because migrations are finite and serialized (engine mutex);
// routing for any key is eventually stable.

bool KvStore::put(std::int64_t key, std::int64_t value) {
  for (;;) {
    bool moved = false;
    const bool fresh = shard(shard_of(key)).put(key, value, &moved);
    if (!moved) return fresh;
  }
}

bool KvStore::get(std::int64_t key, std::int64_t* out) {
  for (;;) {
    bool moved = false;
    const bool found = shard(shard_of(key)).get(key, out, &moved);
    if (!moved) return found;
  }
}

bool KvStore::erase(std::int64_t key) {
  for (;;) {
    bool moved = false;
    const bool removed = shard(shard_of(key)).erase(key, &moved);
    if (!moved) return removed;
  }
}

bool KvStore::rmw(std::int64_t key,
                  const std::function<std::int64_t(std::int64_t)>& f,
                  std::int64_t* out) {
  for (;;) {
    bool moved = false;
    const bool found = shard(shard_of(key)).rmw(key, f, out, &moved);
    if (!moved) return found;
  }
}

std::size_t KvStore::size() {
  std::size_t n = 0;
  for (auto& s : shards_) {
    stm::DomainScope scope(s->domain.id);
    // Counting walks the table transactionally, so it must wait out a
    // migration that owns the shard (same reader gate as ShardHandle::get).
    for (;;) {
      bool migrating = false;
      std::size_t cnt = 0;
      stm_.atomically([&](stm::TxHandle& tx) {
        cnt = 0;
        migrating = tx.read(s->mig_flag) != 0;
        if (migrating) return;
        cnt = s->table.size_in(tx);
      });
      if (!migrating) {
        n += cnt;
        break;
      }
      s->counters.mig_waits.fetch_add(1, std::memory_order_relaxed);
      priv_wait_pause();
      gate_park(*s);
    }
  }
  return n;
}

ScanResult KvStore::privatize_scan(
    std::size_t shard_idx, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  return shard(shard_idx).privatize_scan(fn);
}

bool KvStore::publish_snapshot(const std::vector<std::int64_t>& keys) {
  bool expected = false;
  if (!snap_published_.compare_exchange_strong(expected, true)) return false;
  std::vector<std::size_t> used(shards_.size(), 0);
  for (std::int64_t key : keys) {
    Shard& s = *shards_[shard_of(key)];
    const std::size_t slot = used[shard_of(key)];
    if (slot >= s.snap.size()) continue;  // shard's snapshot is full
    std::int64_t value = 0;
    if (!get(key, &value)) continue;
    // Plain writes into not-yet-published (thus unshared) slots...
    s.snap[slot].key.plain_store(static_cast<word_t>(key + 1));
    s.snap[slot].value.plain_store(static_cast<word_t>(value));
    ++used[shard_of(key)];
  }
  // ...published per shard by one transactional ready write each: a shard's
  // slots are immutable from its commit on, and every reader orders its
  // plain loads after it through an attach's transactional read.  EVERY
  // shard publishes (even ones no key routes to), so per-shard refresh is
  // uniformly available afterwards.
  for (auto& sp : shards_) {
    Shard& s = *sp;
    stm::DomainScope scope(s.domain.id);
    stm_.atomically([&](stm::TxHandle& tx) { tx.write(s.snap_ready, 1); });
  }
  return true;
}

bool KvStore::refresh_snapshot(const std::vector<std::int64_t>& keys) {
  if (!snap_published_.load(std::memory_order_acquire)) return false;
  for (std::size_t i = 0; i < shards_.size(); ++i) shard(i).refresh_snapshot(keys);
  return true;
}

bool KvStore::snapshot_attach() {
  // ONE whole-store (unscoped) transaction reading every shard's ready
  // cell: it orders this thread's later plain snapshot loads of any shard
  // after that shard's publication, and — being unscoped — it gates every
  // shard's scoped refresh fence.
  word_t all_ready = 1;
  stm_.atomically([&](stm::TxHandle& tx) {
    all_ready = 1;
    for (auto& s : shards_)
      if (tx.read(s->snap_ready) == 0) all_ready = 0;
  });
  return all_ready != 0;
}

bool KvStore::snapshot_read(std::int64_t key, std::int64_t* out) {
  return shard(shard_of(key)).snapshot_read(key, out);
}

void KvStore::replay_state_plain() {
  for (std::size_t i = 0; i < shards_.size(); ++i) shard(i).replay_state_plain();
}

std::size_t KvStore::cell_count() const {
  std::size_t n = 0;
  for (auto& s : shards_) {
    std::size_t nodes = 0;
    s->table.for_each_cell([&](stm::Cell&) { ++nodes; });
    n += nodes + 3 + 2 * s->snap.size();
  }
  return n;
}

}  // namespace mtx::kv
