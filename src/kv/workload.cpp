#include "kv/workload.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "record/assemble.hpp"
#include "record/conformance.hpp"
#include "record/recorder.hpp"
#include "record/stream.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace mtx::kv {

namespace {

using Clock = std::chrono::steady_clock;

// Per-thread tallies of the deterministic op plan.  Values use the kv-layer
// keyed form (kv::value_of / value_form_ok): every write path preserves it,
// so scans, gets and snapshot reads audit any value they see against the
// key it was filed under — schedule-independent, shared with the serving
// tier.
struct Tally {
  std::uint64_t reads = 0, updates = 0, inserts = 0, scans = 0, rmws = 0,
                snaps = 0;
};

}  // namespace

const std::vector<Mix>& standard_mixes() {
  static const std::vector<Mix> mixes = [] {
    std::vector<Mix> v;
    // YCSB A/B/C on Zipfian(0.99) keys.
    v.push_back({"a", 50, 50, 0, 0, 0, 0, KeyDist::zipfian, 0.99});
    v.push_back({"b", 95, 5, 0, 0, 0, 0, KeyDist::zipfian, 0.99});
    v.push_back({"c", 100, 0, 0, 0, 0, 0, KeyDist::zipfian, 0.99});
    // Mixed-access scenarios: the §5 protocols under load.
    v.push_back({"priv_heavy", 40, 25, 10, 20, 5, 0, KeyDist::uniform, 0.99});
    v.push_back({"pub_heavy", 20, 10, 5, 0, 10, 55, KeyDist::zipfian, 0.99});
    // Serving-tier scenario: 90% reads, 80% of key draws over a 16-key hot
    // set layered on Zipfian — the contended cache-line shape the network
    // front end routes through the snapshot publication path.
    v.push_back({"hot", 90, 8, 0, 0, 2, 0, KeyDist::zipfian, 0.99, 80, 16});
    return v;
  }();
  return mixes;
}

OpKind draw_op(Rng& rng, const Mix& mix) {
  const std::uint64_t dice = rng.below(100);
  std::uint64_t edge = static_cast<std::uint64_t>(mix.read_pct);
  if (dice < edge) return OpKind::read;
  if (dice < (edge += static_cast<std::uint64_t>(mix.update_pct)))
    return OpKind::update;
  if (dice < (edge += static_cast<std::uint64_t>(mix.insert_pct)))
    return OpKind::insert;
  if (dice < (edge += static_cast<std::uint64_t>(mix.scan_pct)))
    return OpKind::scan;
  if (dice < (edge += static_cast<std::uint64_t>(mix.rmw_pct)))
    return OpKind::rmw;
  return OpKind::snap;
}

KeyChooser::KeyChooser(const Mix& mix, std::size_t space)
    : space_(space ? space : 1),
      hot_pct_(mix.hot_pct),
      hot_set_(std::min(std::max<std::size_t>(1, mix.hot_set), space_)) {
  if (mix.dist == KeyDist::zipfian) zipf_.emplace(space_, mix.theta);
}

std::int64_t KeyChooser::next(Rng& rng) const {
  // The layer dice is drawn only when the layer is on: mixes with
  // hot_pct == 0 keep the exact pre-layer Rng stream, so their planned op
  // counts and single-thread final states stay pinned.
  if (hot_pct_ > 0 && rng.below(100) < static_cast<std::uint64_t>(hot_pct_))
    return static_cast<std::int64_t>(rng.below(hot_set_));
  return static_cast<std::int64_t>(zipf_ ? zipf_->next(rng)
                                         : rng.below(space_));
}

const Mix* mix_by_name(const std::string& name) {
  for (const Mix& m : standard_mixes())
    if (m.name == name) return &m;
  return nullptr;
}

KvResult run_kv_workload(stm::StmBackend& stm, const Mix& mix,
                         const KvWorkloadOptions& opts) {
  if (mix.total_pct() != 100)
    throw std::invalid_argument("kv mix '" + mix.name +
                                "' percentages sum to " +
                                std::to_string(mix.total_pct()) + ", not 100");
  const std::size_t threads = std::max<std::size_t>(1, opts.threads);
  const std::size_t preload = std::max<std::size_t>(1, opts.store.preload_keys);
  const std::size_t snap_count =
      std::max<std::size_t>(1, std::min(opts.store.snap_keys, preload));
  const bool streaming = opts.stream && opts.round_ops > 0;
  const std::size_t stream_every =
      std::max<std::size_t>(1, opts.stream_sample_every);
  const bool sampling =
      !streaming && opts.sample_every > 0 && opts.round_ops > 0;
  const bool rounds_mode = sampling || streaming;

  KvResult res;
  res.mix = mix.name;
  res.backend = stm.name();
  res.threads = threads;
  res.ops = static_cast<std::uint64_t>(threads) * opts.ops_per_thread;

  KvStore::Options sopt;
  sopt.shards = opts.store.shards;
  sopt.expected_keys = preload * 2;
  sopt.snap_slots = snap_count;  // per shard: generous, so no key is dropped
  sopt.scoped_fences = opts.scoped_fences;
  KvStore store(stm, sopt);

  // Load phase (unrecorded, single-threaded): preload + publish the frozen
  // snapshot of the hottest ranks.  Everything after this point may run
  // under a recording window, whose carry transaction re-establishes this
  // state (KvStore::replay_state_plain).
  for (std::size_t k = 0; k < preload; ++k)
    store.put(static_cast<std::int64_t>(k), value_of(static_cast<std::int64_t>(k), 0));
  std::vector<std::int64_t> snap_keys(snap_count);
  for (std::size_t k = 0; k < snap_count; ++k)
    snap_keys[k] = static_cast<std::int64_t>(k);
  store.publish_snapshot(snap_keys);

  const KeyChooser chooser(mix, preload);

  const std::size_t rounds =
      rounds_mode ? (opts.ops_per_thread + opts.round_ops - 1) / opts.round_ops
                  : 1;
  const auto round_recorded = [&](std::size_t r) {
    return sampling && r % opts.sample_every == 0;
  };
  const auto stream_round = [&](std::size_t r) {
    return streaming && r % stream_every == 0;
  };

  SpinBarrier barrier(threads + 1);  // workers + coordinator (rounds modes)
  std::unique_ptr<record::RecordSession> session;  // written between barriers
  std::vector<std::unique_ptr<record::RecordSession>> sessions;

  // Streaming: one continuous session for the whole run, one ring per
  // producer (slot 0 = the coordinator's replay transaction), the cutter
  // and checker threads live for the duration of the workload.
  std::unique_ptr<record::RecordSession> stream_session;
  std::unique_ptr<record::StreamConformance> stream_conf;
  if (streaming) {
    stream_session = std::make_unique<record::RecordSession>();
    std::vector<int> producer_threads(threads + 1);
    for (std::size_t t = 0; t <= threads; ++t)
      producer_threads[t] = static_cast<int>(t);
    record::StreamOptions sropts;
    sropts.ring_capacity = opts.stream_ring_capacity;
    sropts.min_window_events = opts.window_min_events;
    sropts.checkers = opts.stream_checkers;
    // Hold segments to the backend's declared guarantee: full opacity for
    // zombie-free backends, the committed-subsystem projection otherwise
    // (mirrors the sampled-mode judging below).
    sropts.require_full_opacity = stm.zombie_free();
    sropts.compare_posthoc = opts.stream_compare_posthoc;
    // At sparser sampling levels the cutter misses the unsampled rounds'
    // writes, so its tracked state is stale: carries off, replays anchor.
    sropts.synthesize_carry = stream_every == 1;
    stream_conf = std::make_unique<record::StreamConformance>(
        *stream_session, std::move(producer_threads), sropts);
  }

  std::atomic<bool> values_wellformed{true};
  std::mutex merge_mu;
  Tally total;
  LatencyHist hist;

  auto worker = [&](std::size_t tid) {
    Rng rng(opts.seed * 0x9e3779b9ULL + tid * 131 + 1);
    Tally local;
    LatencyHist lhist;
    // Publication handoff: one transactional read of snap_ready orders all
    // of this thread's later plain snapshot loads after the publish commit.
    store.snapshot_attach();

    auto run_ops = [&](std::uint64_t first, std::uint64_t n) {
      for (std::uint64_t i = first; i < first + n; ++i) {
        const auto t0 = Clock::now();
        // Draw order (op dice, then key) is the determinism contract — the
        // shared draw_op/KeyChooser helpers consume the same Rng stream the
        // pre-shared driver did for every hot-layer-free mix.
        switch (draw_op(rng, mix)) {
          case OpKind::read: {
            const std::int64_t key = chooser.next(rng);
            std::int64_t v = 0;
            if (!store.get(key, &v) || !value_form_ok(key, v))
              values_wellformed = false;
            ++local.reads;
            break;
          }
          case OpKind::update: {
            const std::int64_t key = chooser.next(rng);
            store.put(key, value_of(key, static_cast<std::int64_t>(
                                             tid * 7919 + i)));
            ++local.updates;
            break;
          }
          case OpKind::insert: {
            // Unique fresh key per (thread, op index): deterministic, and
            // the final size() audit becomes exact.
            const auto key = static_cast<std::int64_t>(
                preload + tid * opts.ops_per_thread + i);
            store.put(key, value_of(key, static_cast<std::int64_t>(i)));
            ++local.inserts;
            break;
          }
          case OpKind::scan: {
            const std::size_t shard = rng.below(store.shards());
            store.privatize_scan(shard, [&](std::int64_t k, std::int64_t v) {
              if (!value_form_ok(k, v)) values_wellformed = false;
            });
            ++local.scans;
            break;
          }
          case OpKind::rmw: {
            const std::int64_t key = chooser.next(rng);
            store.rmw(key, [key](std::int64_t old) {
              return value_of(key, payload_of(old) + 1);
            });
            ++local.rmws;
            break;
          }
          case OpKind::snap: {
            const auto key = static_cast<std::int64_t>(rng.below(snap_count));
            std::int64_t v = 0;
            if (store.snapshot_read(key, &v) && !value_form_ok(key, v))
              values_wellformed = false;
            ++local.snaps;
            break;
          }
        }
        lhist.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 t0)
                .count()));
      }
    };

    if (!rounds_mode) {
      run_ops(0, opts.ops_per_thread);
    } else if (streaming) {
      // Always-on level: one recorder for the whole run, streaming through
      // this thread's ring.  Nothing is recorded before round 0's replay
      // (barrier B), so every recorded read resolves inside the stream.
      // Sparser levels attach a fresh recorder per sampled round instead —
      // unsampled rounds run with no observer installed at all.
      std::unique_ptr<record::ScopedRecorder> rec;
      if (stream_every == 1) {
        rec = std::make_unique<record::ScopedRecorder>(
            *stream_session, static_cast<int>(tid) + 1);
        rec->rec().stream_to(&stream_conf->ring(tid + 1));
      }
      std::uint64_t done = 0;
      std::uint64_t epoch = 0;
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::uint64_t n =
            std::min<std::uint64_t>(opts.round_ops, opts.ops_per_thread - done);
        if (stream_round(r)) {
          barrier.arrive_and_wait();  // A: round start, nothing in flight
          barrier.arrive_and_wait();  // B: the round's replay is recorded
          std::unique_ptr<record::ScopedRecorder> per_round;
          record::ThreadRecorder* tr;
          if (rec) {
            tr = &rec->rec();
          } else {
            per_round = std::make_unique<record::ScopedRecorder>(
                *stream_session, static_cast<int>(tid) + 1);
            per_round->rec().stream_to(&stream_conf->ring(tid + 1));
            tr = &per_round->rec();
          }
          // Per-segment publication handoff: hb reaches a PLAIN read only
          // through a transactional read in its own thread (cwr then po), so
          // each segment needs its own snap_ready read to order this
          // thread's plain snapshot loads after the carry transaction.
          store.snapshot_attach();
          run_ops(done, n);
          // Segment boundary: this thread's sampled-round events all precede
          // the mark; the cutter seals the epoch once every ring marked it.
          // mark_epoch flushes first, so a per-round recorder may detach
          // right after.
          tr->mark_epoch(epoch++);
          barrier.arrive_and_wait();  // C: round end, all txns resolved
        } else {
          // Unsampled round: nothing recorded, no segment sealed — and no
          // barriers either.  Only sampled-round boundaries must be
          // quiescent, so consecutive unsampled rounds run as one
          // unrecorded, unsynchronized stretch at full speed.
          run_ops(done, n);
        }
        done += n;
      }
      if (rec) rec->rec().flush();
    } else {
      std::uint64_t done = 0;
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::uint64_t n =
            std::min<std::uint64_t>(opts.round_ops, opts.ops_per_thread - done);
        barrier.arrive_and_wait();  // A: round start, nothing in flight
        if (round_recorded(r)) {
          barrier.arrive_and_wait();  // B: coordinator replayed state
          record::ScopedRecorder rec(*session, static_cast<int>(tid) + 1);
          // Re-run the publication handoff inside the window: hb reaches a
          // PLAIN read only through a transactional read in its own thread
          // (cwr then po), so each window needs its own snap_ready read to
          // order this thread's plain snapshot loads after the carry
          // transaction — exactly the paper's publication obligation.
          store.snapshot_attach();
          run_ops(done, n);
        } else {
          run_ops(done, n);
        }
        barrier.arrive_and_wait();  // C: round end, recorders detached
        done += n;
      }
    }

    std::lock_guard<std::mutex> g(merge_mu);
    total.reads += local.reads;
    total.updates += local.updates;
    total.inserts += local.inserts;
    total.scans += local.scans;
    total.rmws += local.rmws;
    total.snaps += local.snaps;
    hist.merge(lhist);
  };

  auto coordinator = [&] {
    for (std::size_t r = 0; r < rounds; ++r) {
      barrier.arrive_and_wait();  // A
      if (round_recorded(r)) {
        session = std::make_unique<record::RecordSession>();
        {
          // The window's state-carry transaction: every current value
          // re-established as one synthetic committed transaction, so the
          // window's reads resolve against it instead of the all-zero init.
          record::ScopedRecorder rec(*session, 0);
          rec.rec().synthetic_begin();
          store.replay_state_plain();
          rec.rec().synthetic_commit();
        }
        barrier.arrive_and_wait();  // B
      }
      barrier.arrive_and_wait();  // C
      if (round_recorded(r)) sessions.push_back(std::move(session));
    }
  };

  // Streaming coordinator.  At the always-on level it replays the preload
  // state ONCE, as the stream's first recorded transaction (round 0,
  // between A and B) — it both anchors segment 0's reads and teaches the
  // cutter the full store state, from which every later segment's carry is
  // synthesized.  At sparser levels carries are off, so it re-replays the
  // current state before EVERY sampled round.  Marks its (otherwise idle)
  // ring each sampled round so sealing never waits on slot 0.
  auto stream_coordinator = [&] {
    record::ScopedRecorder rec(*stream_session, 0);
    rec.rec().stream_to(&stream_conf->ring(0));
    std::uint64_t epoch = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      if (!stream_round(r)) continue;  // workers run these barrier-free
      barrier.arrive_and_wait();  // A
      if (r == 0 || stream_every > 1) {
        rec.rec().synthetic_begin();
        store.replay_state_plain();
        rec.rec().synthetic_commit();
      }
      barrier.arrive_and_wait();  // B
      rec.rec().mark_epoch(epoch++);
      barrier.arrive_and_wait();  // C
    }
    rec.rec().flush();
  };

  const auto t0 = Clock::now();
  run_team(threads + (rounds_mode ? 1 : 0), [&](std::size_t tid) {
    if (rounds_mode && tid == threads)
      streaming ? stream_coordinator() : coordinator();
    else
      worker(tid);
  });
  res.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  res.reads = total.reads;
  res.updates = total.updates;
  res.inserts = total.inserts;
  res.scans = total.scans;
  res.rmws = total.rmws;
  res.snap_reads = total.snaps;
  res.hist = hist;
  res.p50_ns = hist.p50();
  res.p95_ns = hist.p95();
  res.p99_ns = hist.p99();
  res.ops_per_sec =
      res.wall_ms > 0 ? static_cast<double>(res.ops) / (res.wall_ms / 1e3) : 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    const ShardStats st = store.stats(s);
    res.scans_completed += st.scans;
    res.priv_waits += st.priv_waits;
  }

  // Post-run transactional audit: every preloaded key present with a
  // well-formed value, the store grew by exactly the insert count, and the
  // frozen snapshot still serves the load-phase values.
  bool audit = values_wellformed.load();
  for (std::size_t k = 0; k < preload && audit; ++k) {
    std::int64_t v = 0;
    const auto key = static_cast<std::int64_t>(k);
    if (!store.get(key, &v) || !value_form_ok(key, v)) audit = false;
  }
  if (store.size() != preload + total.inserts) audit = false;
  store.snapshot_attach();
  for (std::size_t k = 0; k < snap_count && audit; ++k) {
    std::int64_t v = 0;
    const auto key = static_cast<std::int64_t>(k);
    if (!store.snapshot_read(key, &v) || v != value_of(key, 0)) audit = false;
  }
  res.invariant_ok = audit;

  // Judge the captured windows: model-layer conformance, opacity held to
  // the backend's declared guarantee (committed-subsystem for zombie-prone
  // backends, the Example 3.4 class).
  record::WindowedOptions wopts;
  wopts.min_window_events = opts.window_min_events;
  for (const auto& sess : sessions) {
    const record::RecordedTrace rec = record::assemble(*sess);
    res.conf.recorded_actions += rec.trace.size();
    const record::ConformanceReport rep = record::check_conformance_windowed(
        rec.trace, model::ModelConfig::implementation(), wopts);
    ++res.conf.sessions;
    res.conf.windows += rep.windows;
    const bool opq = stm.zombie_free() ? rep.opaque : rep.opaque_committed;
    if (!(rep.wf.ok() && rep.l_races == 0 && !rep.mixed_race && opq))
      ++res.conf.nonconformant;
  }

  // Streaming verdicts: most segments were judged while the workload ran;
  // finish() drains the tail and merges.  (Outside wall_ms, like the
  // sampled judging above, so throughput compares capture overhead only.)
  if (streaming) {
    const record::StreamReport srep = stream_conf->finish();
    res.conf.streamed = true;
    res.conf.sessions = srep.segments;
    res.conf.windows = srep.windows;
    res.conf.nonconformant = srep.nonconformant;
    res.conf.recorded_actions = srep.checked_events;
    res.conf.ring_dropped = srep.ring_dropped;
    res.conf.overflow = srep.overflow;
    res.conf.max_backlog = srep.max_backlog;
    res.conf.posthoc_checked = srep.posthoc_checked;
    res.conf.posthoc_match = srep.posthoc_match;
  }

  res.fence_calls = stm.registry().fence_calls();
  res.epoch_advances = stm.registry().epoch_advances();
  return res;
}

}  // namespace mtx::kv
