#include "campaign/campaign.hpp"

#include <chrono>
#include <optional>

#include "substrate/threading.hpp"

namespace mtx::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// One pool task: a job, optionally restricted to a GraphEnum subspace.
struct Shard {
  std::size_t job = 0;
  std::optional<lit::GraphEnum::Subspace> sub;
};

struct ShardResult {
  lit::OutcomeSet set;
  lit::EnumStats stats;
  double millis = 0;
};

// Default shard size: small enough that a single heavyweight program yields
// a few dozen shards, large enough that shard setup stays noise.
constexpr std::uint64_t kDefaultRfChunk = 2048;

}  // namespace

CampaignResult run_campaign(const CampaignOptions& opts) {
  const auto t0 = Clock::now();

  // The job list: catalog order, one job per (entry, expectation).
  struct Job {
    const lit::LitmusTest* test;
    const lit::Expectation* exp;
  };
  std::vector<Job> jobs;
  for (const lit::LitmusTest& t : lit::catalog())
    for (const lit::Expectation& e : t.expected) jobs.push_back(Job{&t, &e});

  lit::EnumOptions eopts;
  eopts.budget = opts.node_budget;
  eopts.time_budget_ms = opts.time_budget_ms;

  // Flatten to shards up front (no nested pool waits).
  std::vector<Shard> shards;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (opts.split_programs) {
      const std::uint64_t chunk = opts.rf_chunk ? opts.rf_chunk : kDefaultRfChunk;
      lit::GraphEnum splitter(jobs[j].test->program,
                              lit::config_by_name(jobs[j].exp->config), eopts);
      for (lit::GraphEnum::Subspace& s : splitter.subspaces(chunk))
        shards.push_back(Shard{j, std::move(s)});
    } else {
      shards.push_back(Shard{j, std::nullopt});
    }
  }

  auto run_shard = [&](std::size_t i) {
    const Shard& s = shards[i];
    const Job& job = jobs[s.job];
    const auto s0 = Clock::now();
    lit::GraphEnum e(job.test->program, lit::config_by_name(job.exp->config), eopts);
    ShardResult r;
    auto sink = [&](const lit::Execution& ex) {
      lit::Outcome o;
      o.mem.resize(static_cast<std::size_t>(job.test->program.num_locs));
      for (model::Loc x = 0; x < job.test->program.num_locs; ++x)
        o.mem[static_cast<std::size_t>(x)] = ex.trace.final_value(x);
      o.regs = ex.regs;
      r.set.insert(std::move(o));
    };
    if (s.sub)
      e.for_each(*s.sub, sink);
    else
      e.for_each(sink);
    r.stats = e.stats();
    r.millis = ms_since(s0);
    return r;
  };

  const std::size_t nthreads = opts.threads ? opts.threads : hw_threads();
  std::vector<ShardResult> results;
  if (nthreads <= 1) {
    results.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) results.push_back(run_shard(i));
  } else {
    ThreadPool pool(nthreads);
    results = parallel_map<ShardResult>(pool, shards.size(), run_shard);
  }

  // Fold shards into jobs, in catalog order.
  CampaignResult out;
  out.threads_used = nthreads;
  out.shard_count = shards.size();
  out.jobs.resize(jobs.size());
  std::vector<lit::OutcomeSet> sets(jobs.size());
  std::vector<lit::EnumStats> stats(jobs.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t j = shards[i].job;
    for (const lit::Outcome& o : results[i].set.outcomes()) sets[j].insert(o);
    stats[j] += results[i].stats;
    out.jobs[j].millis += results[i].millis;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    lit::VerdictRow& row = out.jobs[j].row;
    row.id = jobs[j].test->id;
    row.config = jobs[j].exp->config;
    row.expected_allowed = jobs[j].exp->allowed;
    row.actual_allowed = sets[j].any(jobs[j].test->witness);
    row.outcome_count = sets[j].size();
    row.consistent_execs = stats[j].consistent;
    out.jobs[j].truncated = stats[j].truncated;
    out.jobs[j].timed_out = stats[j].timed_out;
    if (!row.matches()) ++out.mismatches;
  }
  out.wall_ms = ms_since(t0);
  return out;
}

std::string verdict_signature(const CampaignResult& r) {
  std::string s;
  for (const JobResult& j : r.jobs) {
    s += j.row.id + "," + j.row.config + "," +
         (j.row.expected_allowed ? "A" : "F") + "," +
         (j.row.actual_allowed ? "A" : "F") + "," +
         std::to_string(j.row.outcome_count) + "," +
         std::to_string(j.row.consistent_execs) + "," +
         (j.truncated ? "T" : "-") + "\n";
  }
  return s;
}

}  // namespace mtx::campaign
