#include "campaign/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <optional>

#include <thread>

#include "campaign/report.hpp"
#include "kv/workload.hpp"
#include "model/model_config.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "record/conformance.hpp"
#include "record/workloads.hpp"
#include "stm/backend.hpp"
#include "substrate/threading.hpp"

namespace mtx::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// One pool task: a job, optionally restricted to a GraphEnum subspace.
struct Shard {
  std::size_t job = 0;
  std::optional<lit::GraphEnum::Subspace> sub;
};

struct ShardResult {
  lit::OutcomeSet set;
  lit::EnumStats stats;
  double millis = 0;
};

// Default shard size: small enough that a single heavyweight program yields
// a few dozen shards, large enough that shard setup stays noise.
constexpr std::uint64_t kDefaultRfChunk = 2048;

// One recorded-execution conformance job: run the workload on a fresh
// backend instance, assemble, judge.
RecordRow run_record_job(const std::string& workload,
                         const std::string& backend, std::size_t threads,
                         const CampaignOptions& opts) {
  const auto t0 = Clock::now();
  RecordRow row;
  row.workload = workload;
  row.backend = backend;
  row.threads = threads;

  auto stm = stm::make_backend(backend);
  record::WorkloadOptions wopts;
  wopts.threads = threads;
  wopts.seed = opts.record_seed;
  wopts.ops_per_thread = opts.record_ops;
  const record::RecordedRun run =
      record::run_recorded_workload(workload, *stm, wopts);
  record::WindowedOptions wnd;
  wnd.min_window_events = opts.record_window_min;
  const record::ConformanceReport rep =
      opts.record_windowed
          ? record::check_conformance_windowed(
                run.rec.trace, model::ModelConfig::implementation(), wnd)
          : record::check_conformance(run.rec.trace);

  row.wellformed = rep.wf.ok();
  row.l_races = rep.l_races;
  row.mixed_race = rep.mixed_race;
  row.opaque = rep.opaque;
  row.opaque_committed = rep.opaque_committed;
  row.zombie_free = stm->zombie_free();
  row.consistent = rep.consistent;
  row.invariant_ok = run.invariant_ok;
  row.actions = rep.actions;
  row.committed = rep.committed;
  row.aborted = rep.aborted;
  row.windows = rep.windows;
  row.plain_order = run.rec.meta.plain_order;
  row.millis = ms_since(t0);
  return row;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& opts) {
  const auto t0 = Clock::now();

  // The job list: catalog order, one job per (entry, expectation).
  struct Job {
    const lit::LitmusTest* test;
    const lit::Expectation* exp;
  };
  std::vector<Job> jobs;
  if (opts.litmus_jobs)
    for (const lit::LitmusTest& t : lit::catalog())
      for (const lit::Expectation& e : t.expected) jobs.push_back(Job{&t, &e});

  lit::EnumOptions eopts;
  eopts.budget = opts.node_budget;
  eopts.time_budget_ms = opts.time_budget_ms;

  // Flatten to shards up front (no nested pool waits).
  std::vector<Shard> shards;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (opts.split_programs) {
      const std::uint64_t chunk = opts.rf_chunk ? opts.rf_chunk : kDefaultRfChunk;
      lit::GraphEnum splitter(jobs[j].test->program,
                              lit::config_by_name(jobs[j].exp->config), eopts);
      for (lit::GraphEnum::Subspace& s : splitter.subspaces(chunk))
        shards.push_back(Shard{j, std::move(s)});
    } else {
      shards.push_back(Shard{j, std::nullopt});
    }
  }

  auto run_shard = [&](std::size_t i) {
    const Shard& s = shards[i];
    const Job& job = jobs[s.job];
    const auto s0 = Clock::now();
    lit::GraphEnum e(job.test->program, lit::config_by_name(job.exp->config), eopts);
    ShardResult r;
    auto sink = [&](const lit::Execution& ex) {
      lit::Outcome o;
      o.mem.resize(static_cast<std::size_t>(job.test->program.num_locs));
      for (model::Loc x = 0; x < job.test->program.num_locs; ++x)
        o.mem[static_cast<std::size_t>(x)] = ex.trace.final_value(x);
      o.regs = ex.regs;
      r.set.insert(std::move(o));
    };
    if (s.sub)
      e.for_each(*s.sub, sink);
    else
      e.for_each(sink);
    r.stats = e.stats();
    r.millis = ms_since(s0);
    return r;
  };

  const std::size_t nthreads = opts.threads ? opts.threads : hw_threads();

  // Recorded-execution conformance jobs: workload x backend x thread-count,
  // in deterministic grid order.
  struct RecordJob {
    std::string workload, backend;
    std::size_t threads;
  };
  std::vector<RecordJob> record_jobs;
  if (opts.record_jobs) {
    for (const std::string& w : record::workload_names())
      for (const std::string& b : stm::backend_names())
        for (std::size_t t : opts.record_threads)
          record_jobs.push_back({w, b, t});
  }
  auto run_record = [&](std::size_t i) {
    const RecordJob& j = record_jobs[i];
    return run_record_job(j.workload, j.backend, j.threads, opts);
  };

  // KV workload conformance jobs: mix x backend x thread-count, in
  // deterministic grid order.  Each job spawns its own worker team, so the
  // pool task is just a container for one run.
  struct KvJob {
    std::string mix, backend;
    std::size_t threads;
  };
  std::vector<KvJob> kv_grid;
  if (opts.kv_jobs) {
    for (const kv::Mix& m : kv::standard_mixes())
      for (const std::string& b : stm::backend_names())
        for (std::size_t t : opts.kv_threads) kv_grid.push_back({m.name, b, t});
  }
  auto run_kv = [&](std::size_t i) {
    const KvJob& j = kv_grid[i];
    const auto k0 = Clock::now();
    auto stm = stm::make_backend(j.backend);
    kv::KvWorkloadOptions wopts;
    wopts.threads = j.threads;
    wopts.seed = opts.kv_seed;
    wopts.ops_per_thread = opts.kv_ops;
    wopts.store.preload_keys = opts.kv_keys;
    wopts.store.shards = opts.kv_shards;
    wopts.store.snap_keys = 4;
    wopts.sample_every = opts.kv_sample_every;
    wopts.round_ops = 16;
    wopts.scoped_fences = opts.kv_scoped_fences;
    wopts.stream = opts.kv_stream;
    wopts.stream_sample_every = opts.kv_stream_sample;
    const kv::KvResult r =
        kv::run_kv_workload(*stm, *kv::mix_by_name(j.mix), wopts);
    KvRow row;
    row.mix = r.mix;
    row.backend = r.backend;
    row.threads = r.threads;
    row.ops = r.ops;
    row.reads = r.reads;
    row.updates = r.updates;
    row.inserts = r.inserts;
    row.scans = r.scans;
    row.rmws = r.rmws;
    row.snap_reads = r.snap_reads;
    row.invariant_ok = r.invariant_ok;
    row.sessions = r.conf.sessions;
    row.windows = r.conf.windows;
    row.nonconformant = r.conf.nonconformant;
    row.streamed = r.conf.streamed;
    row.overflow = r.conf.overflow;
    row.ring_dropped = r.conf.ring_dropped;
    row.max_backlog = r.conf.max_backlog;
    row.fence_calls = r.fence_calls;
    row.epoch_advances = r.epoch_advances;
    row.ops_per_sec = r.ops_per_sec;
    row.p50_ns = r.p50_ns;
    row.p95_ns = r.p95_ns;
    row.p99_ns = r.p99_ns;
    row.millis = ms_since(k0);
    return row;
  };

  // Network serving smoke jobs: backend x {batched, unbatched} x reactor
  // count, in deterministic grid order.  Each job self-hosts a loopback
  // server on an ephemeral port and drives it with the open-loop generator,
  // so jobs are independent and can share the pool.
  struct NetJob {
    std::string backend;
    bool batched;
    std::size_t reactors;
  };
  std::vector<NetJob> net_grid;
  if (opts.net_jobs) {
    for (const std::string& b : stm::backend_names())
      for (const bool batched : {true, false})
        for (const std::size_t nr : opts.net_reactors) {
          if (nr < 1 || nr > opts.net_shards) continue;  // would not validate
          net_grid.push_back({b, batched, nr});
        }
  }
  auto run_net = [&](std::size_t i) {
    const NetJob& j = net_grid[i];
    const auto n0 = Clock::now();
    NetRow row;
    row.backend = j.backend;
    row.batched = j.batched;
    row.reactors = j.reactors;

    auto stm = stm::make_backend(j.backend);
    net::ServerConfig cfg;
    cfg.store.shards = opts.net_shards;
    cfg.store.preload_keys = opts.net_keys;
    cfg.store.snap_keys = opts.net_snap;
    cfg.reactors.count = j.reactors;
    cfg.reactors.max_batch = j.batched ? opts.net_batch : 1;
    cfg.reactors.snap_refresh_every = opts.net_refresh;
    cfg.stream.enabled = true;
    net::Server server(*stm, cfg);
    std::thread server_thread([&] { server.run(); });

    net::LoadgenOptions lg;
    lg.port = server.port();
    lg.connections = opts.net_conns;
    lg.rate = opts.net_rate;
    lg.mix = kv::mix_by_name("hot");
    lg.ops_per_conn = opts.net_ops;
    lg.store = cfg.store;
    lg.seed = opts.net_seed;
    const net::LoadgenResult r = net::run_loadgen(lg);
    server.stop();
    server_thread.join();
    const net::ServerStats ss = server.stats();

    row.intended = r.intended;
    row.completed = r.completed;
    row.errors = r.errors;
    row.form_violations = r.form_violations;
    row.achieved_per_sec = r.achieved_per_sec;
    row.p99_ns = r.hist.p99();
    row.frames = ss.frames;
    row.bad_frames = ss.bad_frames;
    row.transactions = ss.batch.transactions;
    row.handoffs = ss.handoffs;
    row.segments = ss.segments;
    row.windows = ss.windows;
    row.nonconformant = ss.nonconformant;
    row.ring_dropped = ss.ring_dropped;
    row.overflow = ss.overflow;
    row.streamed = ss.streamed;
    row.millis = ms_since(n0);
    return row;
  };

  // Live-migration protocol jobs: backend x kind x threads on the real
  // engine, then backend x kind x bait.  Each job is self-contained (own
  // backend, own store, single OS thread), so the grid shares the pool.
  std::vector<fuzz::KvProtoSpec> migrate_grid;
  if (opts.migrate_jobs) {
    for (const std::string& b : stm::backend_names())
      for (const std::string& k : kv::migrate_kind_names()) {
        fuzz::KvProtoSpec spec;
        spec.backend = b;
        kv::migrate_kind_from(k, &spec.kind);
        spec.keys = opts.migrate_keys;
        spec.shards = opts.migrate_shards;
        spec.ops_per_thread = opts.migrate_ops;
        spec.seed = opts.migrate_seed;
        for (std::size_t t : opts.migrate_threads) {
          spec.threads = t;
          spec.bait = kv::MigrateBait::none;
          migrate_grid.push_back(spec);
        }
        if (opts.migrate_baits) {
          spec.threads = opts.migrate_threads.empty()
                             ? 2
                             : opts.migrate_threads.back();
          for (const std::string& bait : kv::migrate_bait_names()) {
            if (bait == "none") continue;
            kv::migrate_bait_from(bait, &spec.bait);
            migrate_grid.push_back(spec);
          }
        }
      }
  }
  auto run_migrate = [&](std::size_t i) {
    fuzz::KvProtoOptions mopts;
    mopts.shrink = opts.migrate_shrink;
    return fuzz::run_kvproto(migrate_grid[i], mopts);
  };

  // Differential fuzz jobs: generate the program batch up front (one RNG
  // stream, byte-deterministic), then prepare (model enumeration) and run
  // (program × backend) as pool tasks.
  std::vector<lit::Program> fuzz_progs;
  if (opts.fuzz_count > 0)
    fuzz_progs = fuzz::fuzz_programs(opts.fuzz_seed, opts.fuzz_count,
                                     opts.fuzz_params);
  fuzz::FuzzOptions fopts;
  fopts.sched_rounds = opts.fuzz_sched_rounds;
  fopts.shrink = opts.fuzz_shrink;
  std::vector<fuzz::FuzzProgram> fuzz_prepared;
  auto prepare_fuzz = [&](std::size_t i) {
    return fuzz::prepare_fuzz_program(fuzz_progs[i], opts.fuzz_seed,
                                      static_cast<int>(i), fopts.enum_budget);
  };
  struct FuzzJob {
    std::size_t prog;
    std::string backend;
  };
  std::vector<FuzzJob> fuzz_grid;
  for (std::size_t i = 0; i < fuzz_progs.size(); ++i)
    for (const std::string& b : stm::backend_names())
      fuzz_grid.push_back({i, b});
  // The budget covers the fuzz phase only (prepare + run), so the litmus
  // and record phases never eat into it; the anchor is set right before
  // the fuzz work starts in either execution branch.
  std::optional<Clock::time_point> fuzz_deadline;
  auto arm_fuzz_deadline = [&] {
    if (opts.fuzz_time_budget_ms)
      fuzz_deadline =
          Clock::now() + std::chrono::milliseconds(opts.fuzz_time_budget_ms);
  };
  auto run_fuzz = [&](std::size_t k) {
    const FuzzJob& j = fuzz_grid[k];
    const fuzz::FuzzProgram& fp = fuzz_prepared[j.prog];
    if (fuzz_deadline && Clock::now() > *fuzz_deadline) {
      fuzz::FuzzRow row;
      row.id = fp.id;
      row.backend = j.backend;
      row.threads = fp.program.threads.size();
      row.stmts = lit::top_level_stmts(fp.program);
      row.model_outcomes = fp.model.size();
      row.skipped = true;
      return row;
    }
    return fuzz::run_fuzz_job(fp, j.backend, fopts);
  };

  std::vector<ShardResult> results;
  std::vector<RecordRow> record_rows;
  std::vector<KvRow> kv_rows;
  std::vector<NetRow> net_rows;
  std::vector<fuzz::KvProtoRow> migrate_rows;
  std::vector<fuzz::FuzzRow> fuzz_rows;
  if (nthreads <= 1) {
    results.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) results.push_back(run_shard(i));
    record_rows.reserve(record_jobs.size());
    for (std::size_t i = 0; i < record_jobs.size(); ++i)
      record_rows.push_back(run_record(i));
    kv_rows.reserve(kv_grid.size());
    for (std::size_t i = 0; i < kv_grid.size(); ++i) kv_rows.push_back(run_kv(i));
    net_rows.reserve(net_grid.size());
    for (std::size_t i = 0; i < net_grid.size(); ++i) net_rows.push_back(run_net(i));
    migrate_rows.reserve(migrate_grid.size());
    for (std::size_t i = 0; i < migrate_grid.size(); ++i)
      migrate_rows.push_back(run_migrate(i));
    arm_fuzz_deadline();
    fuzz_prepared.reserve(fuzz_progs.size());
    for (std::size_t i = 0; i < fuzz_progs.size(); ++i)
      fuzz_prepared.push_back(prepare_fuzz(i));
    fuzz_rows.reserve(fuzz_grid.size());
    for (std::size_t k = 0; k < fuzz_grid.size(); ++k)
      fuzz_rows.push_back(run_fuzz(k));
  } else {
    ThreadPool pool(nthreads);
    results = parallel_map<ShardResult>(pool, shards.size(), run_shard);
    record_rows = parallel_map<RecordRow>(pool, record_jobs.size(), run_record);
    kv_rows = parallel_map<KvRow>(pool, kv_grid.size(), run_kv);
    net_rows = parallel_map<NetRow>(pool, net_grid.size(), run_net);
    migrate_rows =
        parallel_map<fuzz::KvProtoRow>(pool, migrate_grid.size(), run_migrate);
    arm_fuzz_deadline();
    fuzz_prepared =
        parallel_map<fuzz::FuzzProgram>(pool, fuzz_progs.size(), prepare_fuzz);
    fuzz_rows = parallel_map<fuzz::FuzzRow>(pool, fuzz_grid.size(), run_fuzz);
  }

  // Fold shards into jobs, in catalog order.
  CampaignResult out;
  out.threads_used = nthreads;
  out.shard_count = shards.size();
  out.jobs.resize(jobs.size());
  std::vector<lit::OutcomeSet> sets(jobs.size());
  std::vector<lit::EnumStats> stats(jobs.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t j = shards[i].job;
    for (const lit::Outcome& o : results[i].set.outcomes()) sets[j].insert(o);
    stats[j] += results[i].stats;
    out.jobs[j].millis += results[i].millis;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    lit::VerdictRow& row = out.jobs[j].row;
    row.id = jobs[j].test->id;
    row.config = jobs[j].exp->config;
    row.expected_allowed = jobs[j].exp->allowed;
    row.actual_allowed = sets[j].any(jobs[j].test->witness);
    row.outcome_count = sets[j].size();
    row.consistent_execs = stats[j].consistent;
    out.jobs[j].truncated = stats[j].truncated;
    out.jobs[j].timed_out = stats[j].timed_out;
    if (!row.matches()) ++out.mismatches;
  }
  out.recorded = std::move(record_rows);
  for (const RecordRow& rr : out.recorded)
    if (!rr.ok()) ++out.mismatches;
  out.kv = std::move(kv_rows);
  for (const KvRow& kr : out.kv)
    if (!kr.ok()) ++out.mismatches;
  out.net = std::move(net_rows);
  for (const NetRow& nr : out.net)
    if (!nr.ok()) ++out.mismatches;
  out.migrate = std::move(migrate_rows);
  for (const fuzz::KvProtoRow& mr : out.migrate) {
    if (!mr.ok()) ++out.mismatches;
    if (!mr.repro.empty() && !opts.fuzz_repro_dir.empty()) {
      const std::string path = opts.fuzz_repro_dir + "/migrate_" + mr.kind +
                               "_" + mr.bait + "_" + mr.backend + ".kvproto";
      if (!write_file(path, mr.repro))
        std::fprintf(stderr,
                     "failed to write migration reproducer %s (is the "
                     "directory present and writable?)\n",
                     path.c_str());
    }
  }
  out.fuzzed = std::move(fuzz_rows);
  for (const fuzz::FuzzRow& fr : out.fuzzed) {
    if (!fr.ok()) ++out.mismatches;
    if (!fr.repro.empty() && !opts.fuzz_repro_dir.empty()) {
      const std::string path =
          opts.fuzz_repro_dir + "/" + fr.id + "_" + fr.backend + ".litmus";
      if (!write_file(path, fr.repro))
        std::fprintf(stderr,
                     "failed to write fuzz reproducer %s (is the directory "
                     "present and writable?)\n",
                     path.c_str());
    }
  }
  out.wall_ms = ms_since(t0);
  return out;
}

std::string verdict_signature(const CampaignResult& r) {
  std::string s;
  for (const JobResult& j : r.jobs) {
    s += j.row.id + "," + j.row.config + "," +
         (j.row.expected_allowed ? "A" : "F") + "," +
         (j.row.actual_allowed ? "A" : "F") + "," +
         std::to_string(j.row.outcome_count) + "," +
         std::to_string(j.row.consistent_execs) + "," +
         (j.truncated ? "T" : "-") + "\n";
  }
  // Recorded rows: only fields that are schedule-independent (committed
  // txn counts are fixed by workload x seed x threads; action/abort counts
  // vary with conflict retries).
  for (const RecordRow& rr : r.recorded) {
    s += "rec:" + rr.workload + ":" + rr.backend + ":t" +
         std::to_string(rr.threads) + "," + (rr.ok() ? "C" : "V") + "," +
         std::to_string(rr.l_races) + "," + std::to_string(rr.committed) + "\n";
  }
  // KV rows: the planned op-class counts are a pure function of
  // (mix, seed, threads, ops) and the verdict must be conformant on every
  // schedule; session/window counts and throughput are omitted.
  for (const KvRow& kr : r.kv) {
    s += "kv:" + kr.mix + ":" + kr.backend + ":t" + std::to_string(kr.threads) +
         "," + (kr.ok() ? "C" : "V") + "," + std::to_string(kr.ops) + "," +
         std::to_string(kr.reads) + "/" + std::to_string(kr.updates) + "/" +
         std::to_string(kr.inserts) + "/" + std::to_string(kr.scans) + "/" +
         std::to_string(kr.rmws) + "/" + std::to_string(kr.snap_reads) + "\n";
  }
  // Net rows: the open-loop generator sends its entire schedule, so the
  // intended op count is fixed by the options and the verdict must be
  // conformant on every schedule; throughput, latency, segment and
  // transaction counts are scheduling-dependent and omitted.
  for (const NetRow& nr : r.net) {
    s += "net:" + nr.backend + ":" + (nr.batched ? "batched" : "unbatched") +
         ":r" + std::to_string(nr.reactors) + "," + (nr.ok() ? "C" : "V") +
         "," + std::to_string(nr.intended) + "\n";
  }
  // Migration protocol rows: the oracle runs on one OS thread, so EVERY
  // field is deterministic — verdict, failure class, keys moved, and the
  // shrunk spec all replay bit-for-bit.
  for (const fuzz::KvProtoRow& mr : r.migrate) {
    s += "migrate:" + mr.kind + ":" + mr.bait + ":" + mr.backend + ":t" +
         std::to_string(mr.threads) + "," + (mr.ok() ? "C" : "V") + "," +
         (mr.failure.empty() ? "clean" : mr.failure) + "," +
         std::to_string(mr.keys_moved) + ",s" +
         std::to_string(mr.shrunk_threads) + "/" +
         std::to_string(mr.shrunk_ops) + "/" + std::to_string(mr.shrunk_keys) +
         "\n";
  }
  // Fuzz rows: verdict and model outcome count are schedule-independent for
  // conformant runs (race counts are not — they vary with interleaving).
  for (const fuzz::FuzzRow& fr : r.fuzzed) {
    s += "fuzz:" + fr.id + ":" + fr.backend + "," +
         (fr.skipped ? "S" : fr.ok() ? "C" : "V") + "," +
         std::to_string(fr.model_outcomes) + "," + std::to_string(fr.runs) +
         "\n";
  }
  return s;
}

}  // namespace mtx::campaign
