// The litmus campaign engine: sweep the whole reproduction catalog across
// model configurations on all cores, with reproducible output.
//
// A campaign is a flat list of jobs — one per (catalog entry, model config)
// pair the paper pins a verdict for.  Each job's candidate space can further
// be split into GraphEnum subspaces (control-path combo x reads-from slice),
// and every (job, subspace) shard runs as one work-stealing pool task.
// Shard outcome sets merge through std::set union and rows are emitted in
// catalog order, so the verdict table is a pure function of the catalog and
// options — byte-identical between serial and parallel runs (the
// test_campaign determinism suite pins this down).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "fuzz/kvproto.hpp"
#include "litmus/catalog.hpp"

namespace mtx::campaign {

// Fuzz generator defaults: small mixed programs with fences on, so the
// implementation model's HBCQ/HBQB machinery is exercised end to end.
inline lit::RandomProgramParams default_fuzz_params() {
  lit::RandomProgramParams p;
  p.fence_percent = 20;
  return p;
}

struct CampaignOptions {
  // Worker threads; 0 = hardware concurrency, 1 = serial reference mode.
  std::size_t threads = 0;
  // Run the litmus verdict catalog (off = recorded-execution jobs only).
  bool litmus_jobs = true;
  // When true, each program's candidate space is additionally split into
  // subspaces of at most `rf_chunk` reads-from tuples (0 picks a default),
  // so a single heavyweight program parallelizes too.
  bool split_programs = false;
  std::uint64_t rf_chunk = 0;
  // Per-job enumeration budgets (per shard when splitting).  Budget hits
  // are recorded per row; see README "Determinism and truncation" for why
  // byte-identical serial/parallel reports are only claimed for
  // untruncated rows.
  std::uint64_t node_budget = 4'000'000;
  std::uint64_t time_budget_ms = 0;  // 0 = unbounded

  // ----- recorded-execution conformance jobs -----
  // When enabled, the campaign also runs every recorded workload on every
  // registered STM backend at each listed thread count, assembles the
  // recorded execution into a model::Trace, and judges it with the model
  // layer (well-formedness, L-races, mixed races, opacity).  Rows appear
  // next to the litmus verdict rows in the reports.
  bool record_jobs = false;
  std::vector<std::size_t> record_threads = {1, 4};
  int record_ops = 8;             // operations per worker thread
  std::uint64_t record_seed = 42;
  // Judge recordings with the fence-bounded windowed checker (verdicts are
  // identical to the monolithic checker on valid cuts; the windowed engine
  // just scales to far longer recordings).  Off = monolithic reference mode.
  bool record_windowed = true;
  std::size_t record_window_min = 64;  // minimum source events per window

  // ----- KV workload conformance jobs -----
  // When enabled, the campaign runs every standard KV mix (YCSB A/B/C plus
  // priv_heavy and pub_heavy) on every registered backend at each listed
  // thread count, with sampled runtime conformance on: a fraction of each
  // run's rounds is recorded and judged by the model layer.  Rows appear
  // beside the litmus/record/fuzz rows; a row with a non-conformant window
  // or a failed store audit counts as a mismatch.
  bool kv_jobs = false;
  std::vector<std::size_t> kv_threads = {1, 3};
  std::uint64_t kv_ops = 64;       // operations per worker thread
  std::uint64_t kv_seed = 11;
  std::size_t kv_keys = 32;        // preloaded key-space (kept small: each
                                   // recorded window's carry transaction
                                   // re-establishes O(cells) state, and CI
                                   // judges many grid cells)
  std::size_t kv_shards = 2;
  std::size_t kv_sample_every = 4;  // 0 = sampling off (perf-only rows)
  // Per-shard quiescence domains (the default).  False restores whole-store
  // fences — the A/B baseline: both settings must produce identical
  // verdict signatures (pinned by tests/test_kv.cpp).
  bool kv_scoped_fences = true;
  // Streaming conformance: sampled rounds captured through lock-free rings
  // and judged concurrently with the run (replaces sampling when set).
  bool kv_stream = false;
  // Streaming sampling level: 1 = always-on (every round streamed); N > 1
  // streams every Nth round, each sampled segment re-anchored by its own
  // recorded state replay.
  std::size_t kv_stream_sample = 1;

  // ----- network serving smoke jobs -----
  // When enabled, the campaign also runs a short loopback serving smoke per
  // backend, batched (max_batch = net_batch) and unbatched (max_batch = 1):
  // an in-process Server driven by the open-loop load generator on the hot
  // mix, with streaming conformance judging the served traffic.  Rows appear
  // beside the KV rows; any non-conformant segment, ring drop, bad frame,
  // client error or malformed value counts as a mismatch.
  bool net_jobs = false;
  std::size_t net_conns = 2;
  double net_rate = 2000;        // aggregate intended arrivals per second
  std::uint64_t net_ops = 128;   // per connection
  std::size_t net_keys = 256;
  std::size_t net_shards = 4;
  std::size_t net_snap = 8;
  std::size_t net_batch = 8;     // batched-mode coalescing cap
  std::size_t net_refresh = 256; // snapshot refresh cadence (requests)
  // Reactor counts to smoke per (backend, mode); entries above net_shards
  // are skipped (ServerConfig::validate would reject them).
  std::vector<std::size_t> net_reactors = {1, 2};
  std::uint64_t net_seed = 7;

  // ----- live-migration protocol jobs -----
  // When enabled, the campaign runs the kvproto oracle (fuzz/kvproto.hpp)
  // over backend x {split, move, merge} x thread-count with the REAL
  // migration engine — every row must be conformant — and, unless baits
  // are disabled, one row per backend x kind x bait variant, where the
  // row passes only if the sabotaged engine both trips the oracle AND
  // shrinks to a reproducer.  A silent bait is a detection gap and counts
  // as a mismatch like any violation.
  bool migrate_jobs = false;
  std::vector<std::size_t> migrate_threads = {1, 2};
  std::uint64_t migrate_ops = 8;
  std::size_t migrate_keys = 24;
  std::size_t migrate_shards = 4;
  std::uint64_t migrate_seed = 1;
  bool migrate_baits = true;
  bool migrate_shrink = true;

  // ----- differential fuzz jobs -----
  // When > 0, generates `fuzz_count` random litmus programs from fuzz_seed,
  // runs each on every registered backend under fuzz_sched_rounds schedule
  // seeds, and judges the recorded executions against the model (see
  // fuzz/fuzz.hpp for the conformance criteria).  Rows appear beside the
  // litmus and recorded rows; non-conformant rows count as mismatches.
  int fuzz_count = 0;
  std::uint64_t fuzz_seed = 1;
  int fuzz_sched_rounds = 2;
  bool fuzz_shrink = true;
  std::string fuzz_repro_dir;  // write shrunk reproducers here ("" = don't)
  // Wall-clock budget for the fuzz grid; jobs past the deadline report as
  // skipped rather than silently vanishing.  0 = unbounded.
  std::uint64_t fuzz_time_budget_ms = 0;
  lit::RandomProgramParams fuzz_params = default_fuzz_params();
};

// One (catalog entry, expectation) verdict plus its execution record.
struct JobResult {
  lit::VerdictRow row;
  bool truncated = false;
  bool timed_out = false;
  double millis = 0;  // wall time of this job (sum of its shards' times)
};

// One recorded-execution conformance verdict: a (workload, backend,
// thread-count) STM run judged by the model layer.
struct RecordRow {
  std::string workload;
  std::string backend;
  std::size_t threads = 0;

  bool wellformed = false;
  std::size_t l_races = 0;
  bool mixed_race = false;
  bool opaque = false;            // all txns, aborted readers included
  bool opaque_committed = false;  // committed subsystem only
  bool zombie_free = false;       // does this backend promise full opacity?
  bool consistent = false;    // §2 axioms (informational)
  bool invariant_ok = false;  // the workload's own correctness check
  std::size_t actions = 0;
  std::size_t committed = 0;  // deterministic given (workload, seed, threads)
  std::size_t aborted = 0;    // scheduling-dependent (conflict retries)
  std::size_t windows = 1;    // fence-bounded windows judged (1 = monolithic)
  std::string plain_order;

  // Conformant: the model passes the recorded execution.  Opacity is held
  // to each backend's declared guarantee: zombie-free backends must be
  // opaque including aborted readers; the eager (Example 3.4) class is
  // judged on the committed subsystem.
  bool ok() const {
    return wellformed && l_races == 0 && !mixed_race &&
           (zombie_free ? opaque : opaque_committed) && invariant_ok;
  }
  double millis = 0;
};

// One KV workload conformance verdict: a (mix, backend, thread-count) run
// of the sharded KV engine with sampled recording, judged by the model.
struct KvRow {
  std::string mix;
  std::string backend;
  std::size_t threads = 0;

  // Schedule-independent (pure function of mix x seed x threads x ops; the
  // CSV and signature surfaces expose only these).
  std::uint64_t ops = 0;
  std::uint64_t reads = 0, updates = 0, inserts = 0, scans = 0, rmws = 0,
                snap_reads = 0;
  bool invariant_ok = false;

  // Conformance verdict — sampled or streamed (sessions/windows vary with
  // scheduling; nonconformant must be 0 on every schedule).
  std::size_t sessions = 0;
  std::size_t windows = 0;
  std::size_t nonconformant = 0;
  bool streamed = false;           // judged by the streaming pipeline
  bool overflow = false;           // streaming ring drop (poisons the row)

  // Informational measurements.
  double ops_per_sec = 0;
  std::uint64_t p50_ns = 0, p95_ns = 0, p99_ns = 0;
  std::uint64_t fence_calls = 0;     // backend quiescence registry counters
  std::uint64_t epoch_advances = 0;
  std::uint64_t ring_dropped = 0;    // streaming capture health
  std::size_t max_backlog = 0;
  double millis = 0;

  bool ok() const { return nonconformant == 0 && invariant_ok && !overflow; }
};

// One loopback serving smoke verdict: a (backend, batching mode) run of the
// binary-protocol front end under open-loop load, judged by the streaming
// conformance pipeline over the served traffic.
struct NetRow {
  std::string backend;
  bool batched = false;  // max_batch > 1 vs the unbatched A/B baseline
  std::size_t reactors = 1;  // event loops serving this row

  // Schedule-independent (the open-loop generator always sends its whole
  // schedule; conformant rows complete every op).
  std::uint64_t intended = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t form_violations = 0;

  // Server-side health + streaming verdict (segment/window counts vary with
  // scheduling; nonconformant must be 0 on every schedule).
  std::uint64_t frames = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t transactions = 0;  // batching: < completed when coalescing
  std::uint64_t handoffs = 0;      // cross-reactor mailbox shipments
  std::size_t segments = 0;
  std::size_t windows = 0;
  std::size_t nonconformant = 0;
  std::uint64_t ring_dropped = 0;
  bool overflow = false;
  bool streamed = false;

  // Informational measurements.
  double achieved_per_sec = 0;
  std::uint64_t p99_ns = 0;
  double millis = 0;

  bool ok() const {
    return errors == 0 && form_violations == 0 && completed == intended &&
           bad_frames == 0 && nonconformant == 0 && ring_dropped == 0 &&
           !overflow;
  }
};

struct CampaignResult {
  std::vector<JobResult> jobs;    // catalog order, schedule-independent
  std::vector<RecordRow> recorded;  // backend x workload x threads order
  std::vector<KvRow> kv;            // mix x backend x threads grid order
  std::vector<NetRow> net;  // backend x {batched, unbatched} x reactors order
  // backend x kind x threads (bait = none), then backend x kind x bait.
  std::vector<fuzz::KvProtoRow> migrate;
  std::vector<fuzz::FuzzRow> fuzzed;  // program x backend grid order
  std::size_t mismatches = 0;     // rows where measured != paper, plus
                                  // non-conformant recorded and fuzz rows
  std::size_t threads_used = 1;
  std::size_t shard_count = 0;    // pool tasks executed
  double wall_ms = 0;
};

// Runs every catalog entry under every expected config, plus (when
// opts.record_jobs) the recorded-execution conformance grid.
CampaignResult run_campaign(const CampaignOptions& opts = {});

// Canonical signature of the verdict content (everything except timings and
// scheduling-dependent counters): two campaigns agree iff their signatures
// are byte-identical.
std::string verdict_signature(const CampaignResult& r);

}  // namespace mtx::campaign
