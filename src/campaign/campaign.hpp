// The litmus campaign engine: sweep the whole reproduction catalog across
// model configurations on all cores, with reproducible output.
//
// A campaign is a flat list of jobs — one per (catalog entry, model config)
// pair the paper pins a verdict for.  Each job's candidate space can further
// be split into GraphEnum subspaces (control-path combo x reads-from slice),
// and every (job, subspace) shard runs as one work-stealing pool task.
// Shard outcome sets merge through std::set union and rows are emitted in
// catalog order, so the verdict table is a pure function of the catalog and
// options — byte-identical between serial and parallel runs (the
// test_campaign determinism suite pins this down).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/catalog.hpp"

namespace mtx::campaign {

struct CampaignOptions {
  // Worker threads; 0 = hardware concurrency, 1 = serial reference mode.
  std::size_t threads = 0;
  // When true, each program's candidate space is additionally split into
  // subspaces of at most `rf_chunk` reads-from tuples (0 picks a default),
  // so a single heavyweight program parallelizes too.
  bool split_programs = false;
  std::uint64_t rf_chunk = 0;
  // Per-job enumeration budgets (per shard when splitting; see ISSUE on
  // truncation: a budget hit in parallel mode can differ from serial, so the
  // row records it and determinism is only claimed for untruncated rows).
  std::uint64_t node_budget = 4'000'000;
  std::uint64_t time_budget_ms = 0;  // 0 = unbounded
};

// One (catalog entry, expectation) verdict plus its execution record.
struct JobResult {
  lit::VerdictRow row;
  bool truncated = false;
  bool timed_out = false;
  double millis = 0;  // wall time of this job (sum of its shards' times)
};

struct CampaignResult {
  std::vector<JobResult> jobs;  // catalog order, schedule-independent
  std::size_t mismatches = 0;   // rows where measured != paper
  std::size_t threads_used = 1;
  std::size_t shard_count = 0;  // pool tasks executed
  double wall_ms = 0;
};

// Runs every catalog entry under every expected config.
CampaignResult run_campaign(const CampaignOptions& opts = {});

// Canonical signature of the verdict content (everything except timings):
// two campaigns agree iff their signatures are byte-identical.
std::string verdict_signature(const CampaignResult& r);

}  // namespace mtx::campaign
