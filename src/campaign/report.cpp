#include "campaign/report.hpp"

#include <cstdio>

namespace mtx::campaign {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string to_json(const CampaignResult& r, const std::string& run_label) {
  std::string s = "{\n";
  if (!run_label.empty())
    s += "  \"label\": \"" + json_escape(run_label) + "\",\n";
  s += "  \"threads\": " + std::to_string(r.threads_used) + ",\n";
  s += "  \"shards\": " + std::to_string(r.shard_count) + ",\n";
  s += "  \"wall_ms\": " + fmt_ms(r.wall_ms) + ",\n";
  s += "  \"mismatches\": " + std::to_string(r.mismatches) + ",\n";
  s += "  \"rows\": [\n";
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    const JobResult& j = r.jobs[i];
    s += "    {\"id\": \"" + json_escape(j.row.id) + "\", \"config\": \"" +
         json_escape(j.row.config) + "\", \"expected\": \"" +
         (j.row.expected_allowed ? "allowed" : "forbidden") +
         "\", \"measured\": \"" +
         (j.row.actual_allowed ? "allowed" : "forbidden") +
         "\", \"matches\": " + (j.row.matches() ? "true" : "false") +
         ", \"outcomes\": " + std::to_string(j.row.outcome_count) +
         ", \"consistent_execs\": " + std::to_string(j.row.consistent_execs) +
         ", \"truncated\": " + (j.truncated ? "true" : "false") +
         ", \"timed_out\": " + (j.timed_out ? "true" : "false") +
         ", \"ms\": " + fmt_ms(j.millis) + "}";
    s += (i + 1 < r.jobs.size()) ? ",\n" : "\n";
  }
  s += "  ],\n";
  s += "  \"recorded\": [\n";
  for (std::size_t i = 0; i < r.recorded.size(); ++i) {
    const RecordRow& rr = r.recorded[i];
    s += "    {\"workload\": \"" + json_escape(rr.workload) +
         "\", \"backend\": \"" + json_escape(rr.backend) +
         "\", \"threads\": " + std::to_string(rr.threads) +
         ", \"conformant\": " + (rr.ok() ? "true" : "false") +
         ", \"wellformed\": " + (rr.wellformed ? "true" : "false") +
         ", \"l_races\": " + std::to_string(rr.l_races) +
         ", \"mixed_race\": " + (rr.mixed_race ? "true" : "false") +
         ", \"opaque\": " + (rr.opaque ? "true" : "false") +
         ", \"opaque_committed\": " + (rr.opaque_committed ? "true" : "false") +
         ", \"zombie_free\": " + (rr.zombie_free ? "true" : "false") +
         ", \"consistent\": " + (rr.consistent ? "true" : "false") +
         ", \"invariant_ok\": " + (rr.invariant_ok ? "true" : "false") +
         ", \"actions\": " + std::to_string(rr.actions) +
         ", \"committed\": " + std::to_string(rr.committed) +
         ", \"aborted\": " + std::to_string(rr.aborted) +
         ", \"windows\": " + std::to_string(rr.windows) +
         ", \"plain_order\": \"" + json_escape(rr.plain_order) +
         "\", \"ms\": " + fmt_ms(rr.millis) + "}";
    s += (i + 1 < r.recorded.size()) ? ",\n" : "\n";
  }
  s += "  ]\n}\n";
  return s;
}

std::string to_csv(const CampaignResult& r) {
  std::string s = "id,config,expected,measured,matches,outcomes,consistent_execs,truncated\n";
  for (const JobResult& j : r.jobs) {
    s += j.row.id + "," + j.row.config + "," +
         (j.row.expected_allowed ? "allowed" : "forbidden") + "," +
         (j.row.actual_allowed ? "allowed" : "forbidden") + "," +
         (j.row.matches() ? "yes" : "no") + "," +
         std::to_string(j.row.outcome_count) + "," +
         std::to_string(j.row.consistent_execs) + "," +
         (j.truncated ? "yes" : "no") + "\n";
  }
  // Recorded-execution rows share the column shape: outcomes carries the
  // L-race count, consistent_execs the committed-transaction count (both
  // schedule-independent for conformant runs).
  for (const RecordRow& rr : r.recorded) {
    s += "rec:" + rr.workload + ":" + rr.backend + ":t" +
         std::to_string(rr.threads) + ",record,conformant," +
         (rr.ok() ? "conformant" : "violation") + "," +
         (rr.ok() ? "yes" : "no") + "," + std::to_string(rr.l_races) + "," +
         std::to_string(rr.committed) + ",no\n";
  }
  return s;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = n == contents.size() && std::fclose(f) == 0;
  if (n != contents.size()) std::fclose(f);
  return ok;
}

}  // namespace mtx::campaign
