#include "campaign/report.hpp"

#include <cstdio>

namespace mtx::campaign {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string to_json(const CampaignResult& r, const std::string& run_label) {
  std::string s = "{\n";
  if (!run_label.empty())
    s += "  \"label\": \"" + json_escape(run_label) + "\",\n";
  s += "  \"threads\": " + std::to_string(r.threads_used) + ",\n";
  s += "  \"shards\": " + std::to_string(r.shard_count) + ",\n";
  s += "  \"wall_ms\": " + fmt_ms(r.wall_ms) + ",\n";
  s += "  \"mismatches\": " + std::to_string(r.mismatches) + ",\n";
  s += "  \"rows\": [\n";
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    const JobResult& j = r.jobs[i];
    s += "    {\"id\": \"" + json_escape(j.row.id) + "\", \"config\": \"" +
         json_escape(j.row.config) + "\", \"expected\": \"" +
         (j.row.expected_allowed ? "allowed" : "forbidden") +
         "\", \"measured\": \"" +
         (j.row.actual_allowed ? "allowed" : "forbidden") +
         "\", \"matches\": " + (j.row.matches() ? "true" : "false") +
         ", \"outcomes\": " + std::to_string(j.row.outcome_count) +
         ", \"consistent_execs\": " + std::to_string(j.row.consistent_execs) +
         ", \"truncated\": " + (j.truncated ? "true" : "false") +
         ", \"timed_out\": " + (j.timed_out ? "true" : "false") +
         ", \"ms\": " + fmt_ms(j.millis) + "}";
    s += (i + 1 < r.jobs.size()) ? ",\n" : "\n";
  }
  s += "  ]\n}\n";
  return s;
}

std::string to_csv(const CampaignResult& r) {
  std::string s = "id,config,expected,measured,matches,outcomes,consistent_execs,truncated\n";
  for (const JobResult& j : r.jobs) {
    s += j.row.id + "," + j.row.config + "," +
         (j.row.expected_allowed ? "allowed" : "forbidden") + "," +
         (j.row.actual_allowed ? "allowed" : "forbidden") + "," +
         (j.row.matches() ? "yes" : "no") + "," +
         std::to_string(j.row.outcome_count) + "," +
         std::to_string(j.row.consistent_execs) + "," +
         (j.truncated ? "yes" : "no") + "\n";
  }
  return s;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = n == contents.size() && std::fclose(f) == 0;
  if (n != contents.size()) std::fclose(f);
  return ok;
}

}  // namespace mtx::campaign
