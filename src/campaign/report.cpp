#include "campaign/report.hpp"

#include <cstdio>
#include <cstdlib>

namespace mtx::campaign {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string to_json(const CampaignResult& r, const std::string& run_label) {
  std::string s = "{\n";
  if (!run_label.empty())
    s += "  \"label\": \"" + json_escape(run_label) + "\",\n";
  s += "  \"threads\": " + std::to_string(r.threads_used) + ",\n";
  s += "  \"shards\": " + std::to_string(r.shard_count) + ",\n";
  s += "  \"wall_ms\": " + fmt_ms(r.wall_ms) + ",\n";
  s += "  \"mismatches\": " + std::to_string(r.mismatches) + ",\n";
  s += "  \"rows\": [\n";
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    const JobResult& j = r.jobs[i];
    s += "    {\"id\": \"" + json_escape(j.row.id) + "\", \"config\": \"" +
         json_escape(j.row.config) + "\", \"expected\": \"" +
         (j.row.expected_allowed ? "allowed" : "forbidden") +
         "\", \"measured\": \"" +
         (j.row.actual_allowed ? "allowed" : "forbidden") +
         "\", \"matches\": " + (j.row.matches() ? "true" : "false") +
         ", \"outcomes\": " + std::to_string(j.row.outcome_count) +
         ", \"consistent_execs\": " + std::to_string(j.row.consistent_execs) +
         ", \"truncated\": " + (j.truncated ? "true" : "false") +
         ", \"timed_out\": " + (j.timed_out ? "true" : "false") +
         ", \"ms\": " + fmt_ms(j.millis) + "}";
    s += (i + 1 < r.jobs.size()) ? ",\n" : "\n";
  }
  s += "  ],\n";
  s += "  \"fuzz\": [\n";
  for (std::size_t i = 0; i < r.fuzzed.size(); ++i) {
    const fuzz::FuzzRow& fr = r.fuzzed[i];
    s += "    {\"id\": \"" + json_escape(fr.id) + "\", \"backend\": \"" +
         json_escape(fr.backend) +
         "\", \"threads\": " + std::to_string(fr.threads) +
         ", \"stmts\": " + std::to_string(fr.stmts) +
         ", \"conformant\": " + (fr.ok() ? "true" : "false") +
         ", \"skipped\": " + (fr.skipped ? "true" : "false") +
         ", \"wellformed\": " + (fr.wellformed ? "true" : "false") +
         ", \"outcome_member\": " + (fr.outcome_member ? "true" : "false") +
         ", \"path_ok\": " + (fr.path_ok ? "true" : "false") +
         ", \"opacity_ok\": " + (fr.opacity_ok ? "true" : "false") +
         ", \"opacity_checked\": " + (fr.opacity_checked ? "true" : "false") +
         ", \"zombie_regs\": " + (fr.zombie_regs ? "true" : "false") +
         ", \"mixed_interference\": " + (fr.mixed_interference ? "true" : "false") +
         ", \"model_outcomes\": " + std::to_string(fr.model_outcomes) +
         ", \"model_truncated\": " + (fr.model_truncated ? "true" : "false") +
         ", \"l_races\": " + std::to_string(fr.l_races) +
         ", \"mixed_race\": " + (fr.mixed_race ? "true" : "false") +
         ", \"runs\": " + std::to_string(fr.runs) +
         ", \"failure\": \"" + json_escape(fr.failure) +
         "\", \"fail_sched\": " + std::to_string(fr.fail_sched) +
         ", \"shrunk_threads\": " + std::to_string(fr.shrunk_threads) +
         ", \"shrunk_stmts\": " + std::to_string(fr.shrunk_stmts) +
         ", \"repro\": \"" + json_escape(fr.repro) +
         "\", \"ms\": " + fmt_ms(fr.millis) + "}";
    s += (i + 1 < r.fuzzed.size()) ? ",\n" : "\n";
  }
  s += "  ],\n";
  s += "  \"kv\": [\n";
  for (std::size_t i = 0; i < r.kv.size(); ++i) {
    const KvRow& kr = r.kv[i];
    s += "    {\"mix\": \"" + json_escape(kr.mix) + "\", \"backend\": \"" +
         json_escape(kr.backend) +
         "\", \"threads\": " + std::to_string(kr.threads) +
         ", \"conformant\": " + (kr.ok() ? "true" : "false") +
         ", \"ops\": " + std::to_string(kr.ops) +
         ", \"reads\": " + std::to_string(kr.reads) +
         ", \"updates\": " + std::to_string(kr.updates) +
         ", \"inserts\": " + std::to_string(kr.inserts) +
         ", \"scans\": " + std::to_string(kr.scans) +
         ", \"rmws\": " + std::to_string(kr.rmws) +
         ", \"snap_reads\": " + std::to_string(kr.snap_reads) +
         ", \"invariant_ok\": " + (kr.invariant_ok ? "true" : "false") +
         ", \"sessions\": " + std::to_string(kr.sessions) +
         ", \"windows\": " + std::to_string(kr.windows) +
         ", \"nonconformant\": " + std::to_string(kr.nonconformant) +
         ", \"streamed\": " + (kr.streamed ? "true" : "false") +
         ", \"overflow\": " + (kr.overflow ? "true" : "false") +
         ", \"ring_dropped\": " + std::to_string(kr.ring_dropped) +
         ", \"max_backlog\": " + std::to_string(kr.max_backlog) +
         ", \"fence_calls\": " + std::to_string(kr.fence_calls) +
         ", \"epoch_advances\": " + std::to_string(kr.epoch_advances) +
         ", \"ops_per_sec\": " + fmt_ms(kr.ops_per_sec) +
         ", \"p50_ns\": " + std::to_string(kr.p50_ns) +
         ", \"p95_ns\": " + std::to_string(kr.p95_ns) +
         ", \"p99_ns\": " + std::to_string(kr.p99_ns) +
         ", \"ms\": " + fmt_ms(kr.millis) + "}";
    s += (i + 1 < r.kv.size()) ? ",\n" : "\n";
  }
  s += "  ],\n";
  s += "  \"net\": [\n";
  for (std::size_t i = 0; i < r.net.size(); ++i) {
    const NetRow& nr = r.net[i];
    s += "    {\"backend\": \"" + json_escape(nr.backend) +
         "\", \"batched\": " + (nr.batched ? "true" : "false") +
         ", \"reactors\": " + std::to_string(nr.reactors) +
         ", \"conformant\": " + (nr.ok() ? "true" : "false") +
         ", \"intended\": " + std::to_string(nr.intended) +
         ", \"completed\": " + std::to_string(nr.completed) +
         ", \"errors\": " + std::to_string(nr.errors) +
         ", \"form_violations\": " + std::to_string(nr.form_violations) +
         ", \"frames\": " + std::to_string(nr.frames) +
         ", \"bad_frames\": " + std::to_string(nr.bad_frames) +
         ", \"transactions\": " + std::to_string(nr.transactions) +
         ", \"handoffs\": " + std::to_string(nr.handoffs) +
         ", \"segments\": " + std::to_string(nr.segments) +
         ", \"windows\": " + std::to_string(nr.windows) +
         ", \"nonconformant\": " + std::to_string(nr.nonconformant) +
         ", \"ring_dropped\": " + std::to_string(nr.ring_dropped) +
         ", \"overflow\": " + (nr.overflow ? "true" : "false") +
         ", \"streamed\": " + (nr.streamed ? "true" : "false") +
         ", \"achieved_per_sec\": " + fmt_ms(nr.achieved_per_sec) +
         ", \"p99_ns\": " + std::to_string(nr.p99_ns) +
         ", \"ms\": " + fmt_ms(nr.millis) + "}";
    s += (i + 1 < r.net.size()) ? ",\n" : "\n";
  }
  s += "  ],\n";
  s += "  \"migrate\": [\n";
  for (std::size_t i = 0; i < r.migrate.size(); ++i) {
    const fuzz::KvProtoRow& mr = r.migrate[i];
    s += "    {\"backend\": \"" + json_escape(mr.backend) +
         "\", \"kind\": \"" + json_escape(mr.kind) + "\", \"bait\": \"" +
         json_escape(mr.bait) +
         "\", \"threads\": " + std::to_string(mr.threads) +
         ", \"keys\": " + std::to_string(mr.keys) +
         ", \"shards\": " + std::to_string(mr.shards) +
         ", \"ops\": " + std::to_string(mr.ops) +
         ", \"seed\": " + std::to_string(mr.seed) +
         ", \"ok\": " + (mr.ok() ? "true" : "false") +
         ", \"performed\": " + (mr.performed ? "true" : "false") +
         ", \"slots_moved\": " + std::to_string(mr.slots_moved) +
         ", \"keys_moved\": " + std::to_string(mr.keys_moved) +
         ", \"epoch_before\": " + std::to_string(mr.epoch_before) +
         ", \"epoch_after\": " + std::to_string(mr.epoch_after) +
         ", \"wellformed\": " + (mr.wellformed ? "true" : "false") +
         ", \"l_races\": " + std::to_string(mr.l_races) +
         ", \"mixed_race\": " + (mr.mixed_race ? "true" : "false") +
         ", \"opaque_ok\": " + (mr.opaque_ok ? "true" : "false") +
         ", \"audit_ok\": " + (mr.audit_ok ? "true" : "false") +
         ", \"windows\": " + std::to_string(mr.windows) +
         ", \"actions\": " + std::to_string(mr.actions) +
         ", \"violation\": " + (mr.violation ? "true" : "false") +
         ", \"failure\": \"" + json_escape(mr.failure) +
         "\", \"shrunk_threads\": " + std::to_string(mr.shrunk_threads) +
         ", \"shrunk_ops\": " + std::to_string(mr.shrunk_ops) +
         ", \"shrunk_keys\": " + std::to_string(mr.shrunk_keys) +
         ", \"shrink_attempts\": " + std::to_string(mr.shrink_attempts) +
         ", \"repro\": \"" + json_escape(mr.repro) +
         "\", \"ms\": " + fmt_ms(mr.millis) + "}";
    s += (i + 1 < r.migrate.size()) ? ",\n" : "\n";
  }
  s += "  ],\n";
  s += "  \"recorded\": [\n";
  for (std::size_t i = 0; i < r.recorded.size(); ++i) {
    const RecordRow& rr = r.recorded[i];
    s += "    {\"workload\": \"" + json_escape(rr.workload) +
         "\", \"backend\": \"" + json_escape(rr.backend) +
         "\", \"threads\": " + std::to_string(rr.threads) +
         ", \"conformant\": " + (rr.ok() ? "true" : "false") +
         ", \"wellformed\": " + (rr.wellformed ? "true" : "false") +
         ", \"l_races\": " + std::to_string(rr.l_races) +
         ", \"mixed_race\": " + (rr.mixed_race ? "true" : "false") +
         ", \"opaque\": " + (rr.opaque ? "true" : "false") +
         ", \"opaque_committed\": " + (rr.opaque_committed ? "true" : "false") +
         ", \"zombie_free\": " + (rr.zombie_free ? "true" : "false") +
         ", \"consistent\": " + (rr.consistent ? "true" : "false") +
         ", \"invariant_ok\": " + (rr.invariant_ok ? "true" : "false") +
         ", \"actions\": " + std::to_string(rr.actions) +
         ", \"committed\": " + std::to_string(rr.committed) +
         ", \"aborted\": " + std::to_string(rr.aborted) +
         ", \"windows\": " + std::to_string(rr.windows) +
         ", \"plain_order\": \"" + json_escape(rr.plain_order) +
         "\", \"ms\": " + fmt_ms(rr.millis) + "}";
    s += (i + 1 < r.recorded.size()) ? ",\n" : "\n";
  }
  s += "  ]\n}\n";
  return s;
}

std::string to_csv(const CampaignResult& r) {
  std::string s = "id,config,expected,measured,matches,outcomes,consistent_execs,truncated\n";
  for (const JobResult& j : r.jobs) {
    s += j.row.id + "," + j.row.config + "," +
         (j.row.expected_allowed ? "allowed" : "forbidden") + "," +
         (j.row.actual_allowed ? "allowed" : "forbidden") + "," +
         (j.row.matches() ? "yes" : "no") + "," +
         std::to_string(j.row.outcome_count) + "," +
         std::to_string(j.row.consistent_execs) + "," +
         (j.truncated ? "yes" : "no") + "\n";
  }
  // Recorded-execution rows share the column shape: outcomes carries the
  // L-race count, consistent_execs the committed-transaction count (both
  // schedule-independent for conformant runs).
  for (const RecordRow& rr : r.recorded) {
    s += "rec:" + rr.workload + ":" + rr.backend + ":t" +
         std::to_string(rr.threads) + ",record,conformant," +
         (rr.ok() ? "conformant" : "violation") + "," +
         (rr.ok() ? "yes" : "no") + "," + std::to_string(rr.l_races) + "," +
         std::to_string(rr.committed) + ",no\n";
  }
  // KV rows, same column shape: outcomes carries the non-conformant count
  // (0 on every conformant schedule) and consistent_execs the planned op
  // total — both schedule-independent, so serial/parallel runs diff clean.
  for (const KvRow& kr : r.kv) {
    s += "kv:" + kr.mix + ":" + kr.backend + ":t" + std::to_string(kr.threads) +
         ",kv,conformant," + (kr.ok() ? "conformant" : "violation") + "," +
         (kr.ok() ? "yes" : "no") + "," + std::to_string(kr.nonconformant) +
         "," + std::to_string(kr.ops) + ",no\n";
  }
  // Net rows, same column shape: outcomes carries the non-conformant segment
  // count and consistent_execs the intended op total (fixed by the options;
  // the open-loop schedule always sends everything).
  for (const NetRow& nr : r.net) {
    s += "net:" + nr.backend + ":" +
         (nr.batched ? "batched" : "unbatched") + ":r" +
         std::to_string(nr.reactors) + ",net,conformant," +
         (nr.ok() ? "conformant" : "violation") + "," +
         (nr.ok() ? "yes" : "no") + "," + std::to_string(nr.nonconformant) +
         "," + std::to_string(nr.intended) + ",no\n";
  }
  // Migration protocol rows, same column shape: expected distinguishes the
  // real engine ("conformant") from baits ("violation" — the bait MUST be
  // caught); outcomes carries the L-race count and consistent_execs the
  // keys moved.  Fully deterministic: the oracle runs on one OS thread.
  for (const fuzz::KvProtoRow& mr : r.migrate) {
    s += "migrate:" + mr.kind + ":" + mr.bait + ":" + mr.backend + ":t" +
         std::to_string(mr.threads) + ",migrate," +
         (mr.baited() ? "violation" : "conformant") + "," +
         (mr.violation ? "violation" : "conformant") + "," +
         (mr.ok() ? "yes" : "no") + "," + std::to_string(mr.l_races) + "," +
         std::to_string(mr.keys_moved) + ",no\n";
  }
  // Fuzz rows, same column shape: outcomes carries the model outcome count
  // and consistent_execs the schedule rounds run — all fields here are
  // schedule-independent for conformant rows, so same-seed runs diff clean.
  for (const fuzz::FuzzRow& fr : r.fuzzed) {
    s += "fuzz:" + fr.id + ":" + fr.backend + ",fuzz,conformant," +
         (fr.skipped ? "skipped" : fr.ok() ? "conformant" : "divergent") +
         "," + (fr.ok() ? "yes" : "no") + "," +
         std::to_string(fr.model_outcomes) + "," + std::to_string(fr.runs) +
         "," + (fr.model_truncated || fr.skipped ? "yes" : "no") + "\n";
  }
  return s;
}

bool is_git_tracked(const std::string& path) {
  // Shelling out keeps this dependency-free; paths that can't be safely
  // single-quoted are treated as untracked rather than rejected.
  if (path.empty() || path.find('\'') != std::string::npos) return false;
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (base.empty()) return false;
  const std::string cmd = "git -C '" + dir + "' ls-files --error-unmatch -- '" +
                          base + "' >/dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

bool write_file(const std::string& path, const std::string& contents) {
  if (is_git_tracked(path)) {
    std::fprintf(stderr,
                 "refusing to overwrite git-tracked path %s: bench/campaign "
                 "artifacts are generated, never committed\n",
                 path.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = n == contents.size() && std::fclose(f) == 0;
  if (n != contents.size()) std::fclose(f);
  return ok;
}

}  // namespace mtx::campaign
