// Campaign reporters: render a CampaignResult as JSON (the
// BENCH_campaign.json artifact format) or CSV, and write it to disk.
// Litmus rows come out in catalog order and recorded-execution conformance
// rows in workload x backend x thread-count grid order, so reports from
// equivalent runs diff clean.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace mtx::campaign {

// Full artifact: run metadata (threads, shards, wall time, mismatches) plus
// one object per verdict row, timings included.
std::string to_json(const CampaignResult& r, const std::string& run_label = "");

// Verdict table only (no timings), one line per row — the deterministic
// surface the byte-identical tests compare.
std::string to_csv(const CampaignResult& r);

// True when `path` is a file tracked by an enclosing git repository (best
// effort: false when git, the repo, or the file is absent).
bool is_git_tracked(const std::string& path);

// Returns false on I/O failure — or, for every bench/campaign artifact
// writer, when `path` is git-tracked: generated artifacts (BENCH_*.json,
// campaign CSVs, fuzz reproducers) must never clobber committed files.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace mtx::campaign
