// Campaign reporters: render a CampaignResult as JSON (the
// BENCH_campaign.json artifact format) or CSV, and write it to disk.
// Litmus rows come out in catalog order and recorded-execution conformance
// rows in workload x backend x thread-count grid order, so reports from
// equivalent runs diff clean.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace mtx::campaign {

// Full artifact: run metadata (threads, shards, wall time, mismatches) plus
// one object per verdict row, timings included.
std::string to_json(const CampaignResult& r, const std::string& run_label = "");

// Verdict table only (no timings), one line per row — the deterministic
// surface the byte-identical tests compare.
std::string to_csv(const CampaignResult& r);

// Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace mtx::campaign
