#include "fuzz/shrink.hpp"

#include <vector>

namespace mtx::fuzz {

namespace {

using lit::Block;
using lit::Program;
using lit::Stmt;

std::size_t stmt_count(const Block& b) {
  std::size_t n = 0;
  for (const Stmt& s : b)
    n += 1 + stmt_count(s.body) + stmt_count(s.else_body);
  return n;
}

// Every accepted reduction strictly decreases this, so shrinking terminates.
std::size_t size_of(const Program& p) {
  std::size_t n = static_cast<std::size_t>(p.num_locs) + p.threads.size();
  for (const Block& b : p.threads) n += stmt_count(b);
  return n;
}

// Aborts that are NOT wrapped in a (nested) atomic — the ones that would be
// illegal if this block were spliced into non-transactional context.
bool has_unwrapped_abort(const Block& b) {
  for (const Stmt& s : b) {
    if (s.kind == Stmt::Kind::Abort) return true;
    if (s.kind == Stmt::Kind::Atomic) continue;
    if (has_unwrapped_abort(s.body) || has_unwrapped_abort(s.else_body))
      return true;
  }
  return false;
}

void remap_locs(Block& b, int from, int to) {
  for (Stmt& s : b) {
    if (s.loc.base == from) s.loc.base = to;
    remap_locs(s.body, from, to);
    remap_locs(s.else_body, from, to);
  }
}

// In-block reductions: drop a statement, flatten an if/while to its body,
// unwrap an abort-free atomic.  `in_atomic` tracks legality for splices.
void block_candidates(const Program& base, const Block& blk, bool in_atomic,
                      const std::function<Block*(Program&)>& locate,
                      std::vector<Program>& out) {
  for (std::size_t i = 0; i < blk.size(); ++i) {
    const Stmt& s = blk[i];
    {  // drop statement i
      Program c = base;
      Block* b = locate(c);
      b->erase(b->begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(c));
    }
    auto splice = [&](const Block& repl) {
      // Replacing the compound with its body must stay legal: no abort may
      // surface outside an atomic.
      if (!in_atomic && has_unwrapped_abort(repl)) return;
      Program c = base;
      Block* b = locate(c);
      Block body = repl;  // copy before erase invalidates s
      b->erase(b->begin() + static_cast<std::ptrdiff_t>(i));
      b->insert(b->begin() + static_cast<std::ptrdiff_t>(i), body.begin(),
                body.end());
      out.push_back(std::move(c));
    };
    switch (s.kind) {
      case Stmt::Kind::If:
        splice(s.body);
        if (!s.else_body.empty()) splice(s.else_body);
        break;
      case Stmt::Kind::While:
        splice(s.body);
        break;
      case Stmt::Kind::Atomic: {
        splice(s.body);  // unwrap to plain code (skipped if it has aborts)
        // Recurse into the atomic body.
        const std::size_t idx = i;
        block_candidates(
            base, s.body, /*in_atomic=*/true,
            [locate, idx](Program& c) -> Block* {
              return &(*locate(c))[idx].body;
            },
            out);
        break;
      }
      default:
        break;
    }
  }
}

std::vector<Program> candidates(const Program& p) {
  std::vector<Program> out;
  // 1. Drop a whole thread.
  if (p.threads.size() > 1) {
    for (std::size_t t = 0; t < p.threads.size(); ++t) {
      Program c = p;
      c.threads.erase(c.threads.begin() + static_cast<std::ptrdiff_t>(t));
      out.push_back(std::move(c));
    }
  }
  // 2./3. Drop or simplify statements, outermost first.
  for (std::size_t t = 0; t < p.threads.size(); ++t) {
    block_candidates(
        p, p.threads[t], /*in_atomic=*/false,
        [t](Program& c) -> Block* { return &c.threads[t]; }, out);
  }
  // 4. Merge the highest location into each lower one.
  if (p.num_locs > 1) {
    const int from = p.num_locs - 1;
    for (int to = 0; to < from; ++to) {
      Program c = p;
      for (Block& b : c.threads) remap_locs(b, from, to);
      c.num_locs = from;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const lit::Program& p,
                    const std::function<bool(const lit::Program&)>& still_fails,
                    const ShrinkOptions& opts) {
  ShrinkResult res;
  res.program = p;
  bool improved = true;
  while (improved && res.attempts < opts.max_attempts) {
    improved = false;
    for (Program& c : candidates(res.program)) {
      if (res.attempts >= opts.max_attempts) break;
      if (size_of(c) >= size_of(res.program)) continue;
      ++res.attempts;
      if (still_fails(c)) {
        res.program = std::move(c);
        ++res.steps;
        improved = true;
        break;  // restart the pass ladder on the smaller program
      }
    }
  }
  return res;
}

}  // namespace mtx::fuzz
