// The litmus-to-runtime bridge: executes a lit::Program on real threads
// against any registered StmBackend, recording the execution through a
// RecordSession so the model layer can judge it.
//
//   plain Read/Write   →  Cell::plain_load / plain_store
//   atomic { .. }      →  stm.atomically(f) with tx.read / tx.write;
//                         abort → tx.user_abort() (the block ends, control
//                         continues after the atomic, as in the paper)
//   qfence(x)          →  stm.quiesce() (the conservative all-locations
//                         fence, which soundly over-approximates <Qx>)
//   if / while         →  evaluated on the thread's concrete registers;
//                         while iterates at most `bound` times, mirroring
//                         the model's bounded unrolling
//
// Register semantics match the enumerators': each thread owns kMaxRegs
// registers starting at 0; a conflict-retried transaction attempt leaves no
// register trace (the attempt runs on a scratch copy, installed only when
// the backend returns), while an explicitly aborted attempt's reads do bind
// registers, exactly as the model's aborted-reader paths do.
//
// A seeded SchedulePerturber wraps each thread's recorder and injects
// yields / short spins at observer hook points (transaction begins, reads,
// publishes, plain accesses), so one program explores different real
// interleavings per schedule seed — deterministically seeded, so a failing
// (program, schedule-seed) pair is re-runnable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/ast.hpp"
#include "litmus/outcome.hpp"
#include "record/assemble.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"

namespace mtx::fuzz {

// Seeded schedule diversifier: delegates every TxObserver hook to the inner
// recorder, flipping a coin first at the perturbable points and yielding (or
// briefly spinning) on heads.  The decision stream is a pure function of the
// seed — the determinism pin the fuzz tests rely on.
class SchedulePerturber final : public stm::TxObserver {
 public:
  SchedulePerturber(stm::TxObserver* inner, std::uint64_t seed,
                    unsigned yield_percent)
      : inner_(inner), rng_(seed), yield_percent_(yield_percent) {}

  const std::vector<std::uint8_t>& decisions() const { return decisions_; }

  // The decision stream a perturber with this seed would produce for `n`
  // perturbable hook points (0 = run on, 1 = yield, 2 = spin).
  static std::vector<std::uint8_t> decision_preview(std::uint64_t seed,
                                                    std::size_t n,
                                                    unsigned yield_percent);

  void on_begin() override;
  void on_commit() override;
  void on_abort() override;
  void on_fence() override;
  void on_fence_scoped(const stm::QuiesceDomain& d) override;
  stm::word_t tx_read(const stm::Cell& c) override;
  void retract_read() override;
  void on_buffered_read() override;
  void tx_publish(stm::Cell& c, stm::word_t v) override;
  std::uint64_t loc_version(const stm::Cell& c) override;
  void tx_unpublish(stm::Cell& c, stm::word_t v, std::uint64_t version) override;
  stm::word_t plain_load(const stm::Cell& c) override;
  void plain_store(stm::Cell& c, stm::word_t v) override;

 private:
  void perturb();

  stm::TxObserver* inner_;
  Rng rng_;
  unsigned yield_percent_;
  std::vector<std::uint8_t> decisions_;
};

struct InterpretOptions {
  std::uint64_t sched_seed = 1;
  unsigned yield_percent = 30;   // 0 disables perturbation
  // Run the program's threads one after another on the calling thread (the
  // deterministic sequential interleaving) instead of concurrently.
  bool serial = false;
  // Fault injection for the shrinker/oracle tests: silently drop qfence
  // statements on the floor (no quiesce(), no recorded Fence event) — the
  // canonical seeded bug the campaign must catch and shrink.
  bool fault_skip_fence = false;
};

struct InterpretResult {
  lit::Outcome outcome;          // final memory + registers, model shapes
  record::RecordedTrace rec;     // the assembled recorded execution
  // Structural program-trace conformance: every thread's recorded event log
  // (conflict-retried attempts collapsed) matches a control path of its
  // source block.  Catches dropped/extra accesses, wrong cells, and skipped
  // fences deterministically, independent of scheduling.
  bool path_ok = true;
  std::string path_error;        // diagnostic when !path_ok
  // Concatenated perturber decision streams, in thread order (meaningful as
  // a determinism pin only for serial runs).
  std::vector<std::uint8_t> sched_decisions;
};

// Executes `p` against `stm` under a fresh RecordSession.  Throws
// std::invalid_argument on malformed programs (the expand_paths rules) and
// std::out_of_range when a dynamic location evaluates outside
// [0, p.num_locs).
InterpretResult interpret(const lit::Program& p, stm::StmBackend& stm,
                          const InterpretOptions& opts = {});

}  // namespace mtx::fuzz
