// Greedy counterexample minimization: given a failing litmus program and an
// oracle that re-runs the failure check, repeatedly try smaller candidate
// programs, keeping each reduction that still fails, until a fixpoint (or
// the attempt budget runs out).
//
// Reduction passes, in order (the ISSUE's ladder):
//   1. drop a whole thread;
//   2. drop a top-level statement;
//   3. shrink compound statements: drop an atomic-body statement, flatten
//      an if/while to its (non-aborting) body, unwrap a single-statement
//      fence-free/abort-free atomic to plain code;
//   4. merge locations (rewrite the highest location onto a lower one).
// Every candidate is kept structurally legal (abort only inside atomic,
// qfence only outside) so the oracle never sees a malformed program.
#pragma once

#include <cstddef>
#include <functional>

#include "litmus/ast.hpp"

namespace mtx::fuzz {

struct ShrinkOptions {
  std::size_t max_attempts = 400;  // oracle invocations
};

struct ShrinkResult {
  lit::Program program;     // the minimized program (still failing)
  std::size_t steps = 0;    // accepted reductions
  std::size_t attempts = 0; // oracle invocations spent
};

// `still_fails(q)` returns true when the bug reproduces on q.  `p` itself
// must be failing; the result is the smallest program reached greedily.
ShrinkResult shrink(const lit::Program& p,
                    const std::function<bool(const lit::Program&)>& still_fails,
                    const ShrinkOptions& opts = {});

}  // namespace mtx::fuzz
