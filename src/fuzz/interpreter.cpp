#include "fuzz/interpreter.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "litmus/program.hpp"
#include "substrate/threading.hpp"

namespace mtx::fuzz {

namespace {

using lit::Block;
using lit::Stmt;
using model::Loc;
using model::Value;

// ----- schedule perturbation -------------------------------------------

enum : std::uint8_t { kRunOn = 0, kYield = 1, kSpin = 2 };

std::uint8_t draw_decision(Rng& rng, unsigned yield_percent) {
  if (!yield_percent) return kRunOn;
  if (!rng.chance(yield_percent, 100)) return kRunOn;
  // A quarter of the perturbations are short spins (backoff-shaped delays
  // that keep the thread runnable); the rest are scheduler yields.
  return rng.chance(1, 4) ? kSpin : kYield;
}

void apply_decision(std::uint8_t d) {
  if (d == kYield) {
    std::this_thread::yield();
  } else if (d == kSpin) {
    for (int i = 0; i < 64; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
  }
}

}  // namespace

void SchedulePerturber::perturb() {
  const std::uint8_t d = draw_decision(rng_, yield_percent_);
  decisions_.push_back(d);
  apply_decision(d);
}

std::vector<std::uint8_t> SchedulePerturber::decision_preview(
    std::uint64_t seed, std::size_t n, unsigned yield_percent) {
  Rng rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(draw_decision(rng, yield_percent));
  return out;
}

void SchedulePerturber::on_begin() {
  perturb();
  inner_->on_begin();
}
void SchedulePerturber::on_commit() {
  perturb();
  inner_->on_commit();
}
void SchedulePerturber::on_abort() { inner_->on_abort(); }
void SchedulePerturber::on_fence() { inner_->on_fence(); }
// Forward the scope, never collapse to on_fence(): that would widen the
// recorded cover to all locations and over-claim what the runtime waited for.
void SchedulePerturber::on_fence_scoped(const stm::QuiesceDomain& d) {
  inner_->on_fence_scoped(d);
}
stm::word_t SchedulePerturber::tx_read(const stm::Cell& c) {
  perturb();
  return inner_->tx_read(c);
}
void SchedulePerturber::retract_read() { inner_->retract_read(); }
void SchedulePerturber::on_buffered_read() { inner_->on_buffered_read(); }
void SchedulePerturber::tx_publish(stm::Cell& c, stm::word_t v) {
  perturb();
  inner_->tx_publish(c, v);
}
std::uint64_t SchedulePerturber::loc_version(const stm::Cell& c) {
  return inner_->loc_version(c);
}
void SchedulePerturber::tx_unpublish(stm::Cell& c, stm::word_t v,
                                     std::uint64_t version) {
  inner_->tx_unpublish(c, v, version);
}
stm::word_t SchedulePerturber::plain_load(const stm::Cell& c) {
  perturb();
  return inner_->plain_load(c);
}
void SchedulePerturber::plain_store(stm::Cell& c, stm::word_t v) {
  perturb();
  inner_->plain_store(c, v);
}

// ----- static validation ------------------------------------------------

namespace {

void validate_block(const Block& b, int num_locs, bool in_atomic) {
  for (const Stmt& s : b) {
    if ((s.kind == Stmt::Kind::Read || s.kind == Stmt::Kind::Write ||
         s.kind == Stmt::Kind::Fence)) {
      // Dynamic locations would evaluate at run time, where an out-of-range
      // index inside a transaction would unwind through backend code that
      // only expects TxConflict/TxUserAbort; reject them up front (neither
      // the random generator nor the shrinker produces them).
      if (s.loc.dynamic())
        throw std::invalid_argument(
            "fuzz interpreter: dynamic (register-indexed) locations are not "
            "supported");
      if (s.loc.base < 0 || s.loc.base >= num_locs)
        throw std::invalid_argument("fuzz interpreter: location out of range");
    }
    if (s.kind == Stmt::Kind::Read && (s.reg < 0 || s.reg >= lit::kMaxRegs))
      throw std::invalid_argument("fuzz interpreter: register out of range");
    switch (s.kind) {
      case Stmt::Kind::Abort:
        if (!in_atomic) throw std::invalid_argument("abort outside atomic");
        break;
      case Stmt::Kind::Fence:
        if (in_atomic) throw std::invalid_argument("qfence inside atomic");
        break;
      case Stmt::Kind::Atomic:
        if (in_atomic) throw std::invalid_argument("nested atomic");
        validate_block(s.body, num_locs, /*in_atomic=*/true);
        break;
      case Stmt::Kind::If:
        validate_block(s.body, num_locs, in_atomic);
        validate_block(s.else_body, num_locs, in_atomic);
        break;
      case Stmt::Kind::While:
        validate_block(s.body, num_locs, in_atomic);
        break;
      default:
        break;
    }
  }
}

// ----- execution --------------------------------------------------------

struct ThreadRun {
  std::vector<Value> regs = std::vector<Value>(lit::kMaxRegs, 0);
  bool while_overrun = false;
};

struct Exec {
  const lit::Program& prog;
  std::vector<stm::Cell>& cells;
  stm::StmBackend& stm;
  const InterpretOptions& opts;

  // tx == nullptr outside transactions.
  void block(const Block& b, std::vector<Value>& regs, ThreadRun& tr,
             stm::TxHandle* tx) {
    for (const Stmt& s : b) stmt(s, regs, tr, tx);
  }

  void stmt(const Stmt& s, std::vector<Value>& regs, ThreadRun& tr,
            stm::TxHandle* tx) {
    switch (s.kind) {
      case Stmt::Kind::Read: {
        stm::Cell& c = cells[static_cast<std::size_t>(s.loc.base)];
        const stm::word_t w = tx ? tx->read(c) : c.plain_load();
        regs[static_cast<std::size_t>(s.reg)] = static_cast<Value>(w);
        break;
      }
      case Stmt::Kind::Write: {
        stm::Cell& c = cells[static_cast<std::size_t>(s.loc.base)];
        const auto w = static_cast<stm::word_t>(s.value.eval(regs));
        if (tx)
          tx->write(c, w);
        else
          c.plain_store(w);
        break;
      }
      case Stmt::Kind::Atomic: {
        // Conflict-retried attempts must leave no register trace (they do
        // not exist in the model), so each attempt runs on a scratch copy,
        // installed only once the backend returns.  The final attempt's
        // copy survives whether it committed or user-aborted: the model's
        // explicitly-aborted paths do bind registers from their reads.
        std::vector<Value> attempt;
        stm.atomically([&](stm::TxHandle& t) {
          attempt = regs;
          block(s.body, attempt, tr, &t);
        });
        regs = std::move(attempt);
        break;
      }
      case Stmt::Kind::If:
        block(s.cond.eval(regs) ? s.body : s.else_body, regs, tr, tx);
        break;
      case Stmt::Kind::While: {
        int iter = 0;
        while (iter < s.bound && s.cond.eval(regs)) {
          block(s.body, regs, tr, tx);
          ++iter;
        }
        // The model's bounded unrolling requires the loop to exit within
        // `bound` iterations (every expanded path ends with the negative
        // guard); an execution that is still looping has no model
        // counterpart and must be flagged, not silently truncated.
        if (iter == s.bound && s.cond.eval(regs)) tr.while_overrun = true;
        break;
      }
      case Stmt::Kind::Abort:
        static_cast<stm::TxHandle*>(tx)->user_abort();  // [[noreturn]] throw
        break;
      case Stmt::Kind::Fence:
        if (!opts.fault_skip_fence) stm.quiesce();
        break;
    }
  }
};

// ----- structural program-trace conformance -----------------------------
//
// A thread's recorded event log must match some control path of its source
// block, modulo runtime artifacts the model does not see:
//   - conflict-retried attempts (Begin..Abort spans) may be skipped;
//   - transactional reads served from the redo log are not recorded, so a
//     segment's recorded read set is a SUBSET of the path's;
//   - lazy backends publish each written location once at commit and eager
//     backends store per write, so a committed segment's DISTINCT written
//     locations must EQUAL the path's, while an explicitly aborted
//     segment's (eager in-place stores, later undone invisibly) need only
//     be a subset.
// Matching is structural (kinds + locations); values flow through registers
// and are judged by the model-outcome membership check instead.

struct Tok {
  enum class Kind { Plain, Atomic, Fence };
  Kind kind = Kind::Plain;
  bool is_read = false;  // Plain
  int loc = -1;          // Plain: program location (-1 = wildcard)
  bool committed = false;            // Atomic
  std::vector<int> reads, writes;    // Atomic: sorted distinct program locs
  bool has_dynamic = false;          // Atomic/Plain from a dynamic LocExpr
};

void insert_sorted(std::vector<int>& v, int x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

bool subset_of(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// Recorded events of one thread → tokens.  Returns false (with *err set) on
// a log the seam should never produce.
bool log_tokens(const std::vector<record::Event>& evs,
                const std::vector<int>& sess2prog, std::vector<Tok>& out,
                std::string* err) {
  bool in_atomic = false;
  Tok at;
  auto prog_loc = [&](std::int32_t sess) {
    return sess >= 0 && static_cast<std::size_t>(sess) < sess2prog.size()
               ? sess2prog[static_cast<std::size_t>(sess)]
               : -1;
  };
  for (const record::Event& e : evs) {
    switch (e.kind) {
      case record::Ev::Begin:
        if (in_atomic) {
          *err = "nested Begin in thread log";
          return false;
        }
        at = Tok{};
        at.kind = Tok::Kind::Atomic;
        in_atomic = true;
        break;
      case record::Ev::Commit:
      case record::Ev::Abort:
        if (!in_atomic) {
          *err = "resolution without Begin in thread log";
          return false;
        }
        at.committed = e.kind == record::Ev::Commit;
        out.push_back(at);
        in_atomic = false;
        break;
      case record::Ev::Read:
        if (!in_atomic) {
          *err = "transactional read outside a transaction";
          return false;
        }
        insert_sorted(at.reads, prog_loc(e.loc));
        break;
      case record::Ev::Write:
        if (!in_atomic) {
          *err = "transactional write outside a transaction";
          return false;
        }
        insert_sorted(at.writes, prog_loc(e.loc));
        break;
      case record::Ev::PlainRead:
      case record::Ev::PlainWrite: {
        if (in_atomic) {
          *err = "plain access inside a transaction";
          return false;
        }
        Tok t;
        t.kind = Tok::Kind::Plain;
        t.is_read = e.kind == record::Ev::PlainRead;
        t.loc = prog_loc(e.loc);
        out.push_back(t);
        break;
      }
      case record::Ev::Fence:
        if (in_atomic) {
          *err = "fence inside a transaction";
          return false;
        }
        out.push_back([] {
          Tok t;
          t.kind = Tok::Kind::Fence;
          return t;
        }());
        break;
    }
  }
  if (in_atomic) {
    *err = "unresolved transaction at end of thread log";
    return false;
  }
  return true;
}

// One expanded control path → tokens (guards carry no structure).
std::vector<Tok> path_tokens(const lit::Path& path) {
  std::vector<Tok> out;
  bool in_atomic = false;
  Tok at;
  auto add_loc = [](Tok& t, std::vector<int>& set, const lit::LocExpr& l) {
    if (l.dynamic())
      t.has_dynamic = true;
    else
      insert_sorted(set, l.base);
  };
  for (const lit::PEvent& e : path) {
    switch (e.kind) {
      case lit::PEvent::Kind::Begin:
        at = Tok{};
        at.kind = Tok::Kind::Atomic;
        in_atomic = true;
        break;
      case lit::PEvent::Kind::Commit:
      case lit::PEvent::Kind::Abort:
        at.committed = e.kind == lit::PEvent::Kind::Commit;
        out.push_back(at);
        in_atomic = false;
        break;
      case lit::PEvent::Kind::Read:
        if (in_atomic) {
          add_loc(at, at.reads, e.loc);
        } else {
          Tok t;
          t.kind = Tok::Kind::Plain;
          t.is_read = true;
          t.loc = e.loc.dynamic() ? -1 : e.loc.base;
          out.push_back(t);
        }
        break;
      case lit::PEvent::Kind::Write:
        if (in_atomic) {
          add_loc(at, at.writes, e.loc);
        } else {
          Tok t;
          t.kind = Tok::Kind::Plain;
          t.is_read = false;
          t.loc = e.loc.dynamic() ? -1 : e.loc.base;
          out.push_back(t);
        }
        break;
      case lit::PEvent::Kind::Fence: {
        Tok t;
        t.kind = Tok::Kind::Fence;
        out.push_back(t);
        break;
      }
      case lit::PEvent::Kind::Guard:
        break;
    }
  }
  return out;
}

bool tok_match(const Tok& l, const Tok& p) {
  if (l.kind != p.kind) return false;
  switch (p.kind) {
    case Tok::Kind::Fence:
      return true;
    case Tok::Kind::Plain:
      return l.is_read == p.is_read && (p.loc < 0 || p.loc == l.loc);
    case Tok::Kind::Atomic:
      if (l.committed != p.committed) return false;
      if (p.has_dynamic) return true;  // content judged by outcome membership
      if (!subset_of(l.reads, p.reads)) return false;
      return l.committed ? l.writes == p.writes : subset_of(l.writes, p.writes);
  }
  return false;
}

// Backtracking matcher with failure memoization: aborted log segments may
// either be conflict retries (skipped) or the path's own explicit aborts.
bool match_from(const std::vector<Tok>& log, std::size_t i,
                const std::vector<Tok>& path, std::size_t j,
                std::vector<std::vector<char>>& failed) {
  if (i == log.size()) return j == path.size();
  if (failed[i][j]) return false;
  bool ok = false;
  if (log[i].kind == Tok::Kind::Atomic && !log[i].committed)
    ok = match_from(log, i + 1, path, j, failed);  // conflict retry
  if (!ok && j < path.size() && tok_match(log[i], path[j]))
    ok = match_from(log, i + 1, path, j + 1, failed);
  if (!ok) failed[i][j] = 1;
  return ok;
}

std::string tok_str(const std::vector<Tok>& toks) {
  std::string s;
  for (const Tok& t : toks) {
    switch (t.kind) {
      case Tok::Kind::Fence:
        s += "Q ";
        break;
      case Tok::Kind::Plain:
        s += (t.is_read ? "r[x" : "w[x") + std::to_string(t.loc) + "] ";
        break;
      case Tok::Kind::Atomic: {
        s += t.committed ? "tx{" : "txA{";
        for (int x : t.reads) s += "R" + std::to_string(x);
        for (int x : t.writes) s += "W" + std::to_string(x);
        s += "} ";
        break;
      }
    }
  }
  return s;
}

}  // namespace

InterpretResult interpret(const lit::Program& p, stm::StmBackend& stm,
                          const InterpretOptions& opts) {
  if (p.threads.empty())
    throw std::invalid_argument("fuzz interpreter: program has no threads");
  for (const Block& b : p.threads) validate_block(b, p.num_locs, false);
  // Expanded control paths double as the malformedness check and the
  // structural conformance reference.
  std::vector<std::vector<lit::Path>> paths;
  paths.reserve(p.threads.size());
  for (const Block& b : p.threads) paths.push_back(lit::expand_paths(b));

  record::RecordSession session;
  std::vector<stm::Cell> cells(static_cast<std::size_t>(p.num_locs));
  const std::size_t nthreads = p.threads.size();

  // Recorders and perturbers are created up front (attach is thread-safe
  // and logs are single-writer), so decision streams outlive the workers.
  std::vector<record::ThreadRecorder*> recs;
  std::vector<std::unique_ptr<SchedulePerturber>> perts;
  std::vector<ThreadRun> runs(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    recs.push_back(session.attach(static_cast<int>(t)));
    perts.push_back(std::make_unique<SchedulePerturber>(
        recs.back(), opts.sched_seed + 0x9e3779b97f4a7c15ull * (t + 1),
        opts.yield_percent));
  }

  Exec exec{p, cells, stm, opts};
  auto worker = [&](std::size_t t) {
    stm::TxObserver* prev = stm::tx_observer();
    stm::set_tx_observer(perts[t].get());
    exec.block(p.threads[t], runs[t].regs, runs[t], nullptr);
    stm::set_tx_observer(prev);
  };
  if (opts.serial) {
    for (std::size_t t = 0; t < nthreads; ++t) worker(t);
  } else {
    run_team(nthreads, worker);
  }

  InterpretResult res;
  res.outcome.mem.resize(static_cast<std::size_t>(p.num_locs));
  for (std::size_t x = 0; x < res.outcome.mem.size(); ++x)
    res.outcome.mem[x] =
        static_cast<Value>(cells[x].raw().load(std::memory_order_relaxed));
  res.outcome.regs.reserve(nthreads);
  for (const ThreadRun& tr : runs) res.outcome.regs.push_back(tr.regs);
  for (const auto& pert : perts)
    res.sched_decisions.insert(res.sched_decisions.end(),
                               pert->decisions().begin(),
                               pert->decisions().end());

  // Program-loc ↔ recorded-loc translation for the structural check.
  std::vector<int> sess2prog(static_cast<std::size_t>(session.num_locs()), -1);
  for (std::size_t x = 0; x < cells.size(); ++x) {
    const int id = session.loc_id(cells[x]);
    if (id >= 0) sess2prog[static_cast<std::size_t>(id)] = static_cast<int>(x);
  }

  for (std::size_t t = 0; t < nthreads && res.path_ok; ++t) {
    if (runs[t].while_overrun) {
      res.path_ok = false;
      res.path_error = "thread " + std::to_string(t) +
                       ": while loop overran its model bound";
      break;
    }
    std::vector<Tok> log;
    std::string err;
    if (!log_tokens(recs[t]->events(), sess2prog, log, &err)) {
      res.path_ok = false;
      res.path_error = "thread " + std::to_string(t) + ": " + err;
      break;
    }
    bool matched = false;
    for (const lit::Path& path : paths[t]) {
      std::vector<Tok> ptoks = path_tokens(path);
      std::vector<std::vector<char>> failed(
          log.size() + 1, std::vector<char>(ptoks.size() + 1, 0));
      if (match_from(log, 0, ptoks, 0, failed)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      res.path_ok = false;
      res.path_error = "thread " + std::to_string(t) +
                       ": recorded log matches no control path: " + tok_str(log);
    }
  }

  res.rec = record::assemble(session);
  return res;
}

}  // namespace mtx::fuzz
