#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <chrono>

#include "litmus/graph_enum.hpp"
#include "model/model_config.hpp"
#include "record/conformance.hpp"
#include "stm/backend.hpp"

namespace mtx::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// One recorded execution judged against a precomputed model outcome set.
struct RunVerdict {
  bool wellformed = false;
  bool outcome_member = false;
  bool path_ok = false;
  bool opacity_ok = true;
  bool opacity_checked = false;
  bool zombie_regs = false;
  bool mixed_interference = false;
  std::size_t l_races = 0;
  bool mixed_race = false;
  std::string path_error;

  bool ok() const {
    return wellformed && outcome_member && path_ok && opacity_ok;
  }
  const char* failure() const {
    if (!wellformed) return "wellformed";
    if (!path_ok) return "path";
    if (!outcome_member) return "outcome";
    if (!opacity_ok) return "opacity";
    return "";
  }
};

RunVerdict judge_run(const lit::Program& p, const lit::OutcomeSet& model,
                     bool model_truncated, const std::string& backend,
                     std::uint64_t sched_seed, const FuzzOptions& opts) {
  auto stm = stm::make_backend(backend);
  InterpretOptions iopts;
  iopts.sched_seed = sched_seed;
  iopts.yield_percent = opts.yield_percent;
  iopts.fault_skip_fence = opts.fault_skip_fence;
  const InterpretResult run = interpret(p, *stm, iopts);

  const record::ConformanceReport rep =
      record::check_conformance(run.rec.trace);

  RunVerdict v;
  v.wellformed = rep.wf.ok();
  v.path_ok = run.path_ok;
  v.path_error = run.path_error;
  v.l_races = rep.l_races;
  v.mixed_race = rep.mixed_race;

  // Mixed interference: a plain access conflicting, outside happens-before,
  // with a transaction's accesses.  The paper's refinement and isolation
  // guarantees are all conditional on its absence (Lemma 5.1's hypothesis
  // and §3's anomaly catalog): under it, in-place backends can lose a plain
  // write to an undo rollback, leak a speculative value to a plain read
  // (Ex 3.4 lost update / dirty read), or break a transaction's read-own-
  // write atomicity — behaviors the model never produces.  Detected as any
  // recorded race with a transactional side (tx_races, computed by the
  // conformance pass on its shared analysis context), plus the aborted-write
  // case the race definition cannot see (aborted actions never race): an
  // aborted in-place write sharing a location with a plain access.
  const model::Trace& tr = run.rec.trace;
  bool interference = rep.tx_races > 0;
  if (!interference) {
    std::vector<bool> spec;
    for (std::size_t i = 0; i < tr.size(); ++i) {
      if (tr[i].is_write() && tr.aborted(i) && tr[i].loc >= 0) {
        if (spec.size() <= static_cast<std::size_t>(tr[i].loc))
          spec.resize(static_cast<std::size_t>(tr[i].loc) + 1, false);
        spec[static_cast<std::size_t>(tr[i].loc)] = true;
      }
    }
    for (std::size_t i = 0; i < tr.size() && !interference; ++i)
      interference = tr.plain(i) && tr[i].is_memory_access() &&
                     tr[i].loc >= 0 &&
                     static_cast<std::size_t>(tr[i].loc) < spec.size() &&
                     spec[static_cast<std::size_t>(tr[i].loc)];
  }
  v.mixed_interference = interference;

  // A mixed-interference dirty read faithfully records as a read from an
  // aborted write, which WF7 (correctly) rejects; that specific rule is
  // waived under interference.  Any other well-formedness violation is a
  // recorder invariant broken and always fails the row.
  if (!v.wellformed && interference) {
    bool only_wf7 = true;
    for (const model::WfViolation& viol : rep.wf.violations)
      only_wf7 = only_wf7 && viol.rule == 7;
    v.wellformed = only_wf7;
  }

  // Outcome refinement.  A truncated model enumeration may be missing the
  // observed outcome, so membership is only judged on complete sets; under
  // mixed interference membership is waived — flagged, not judged.
  if (model_truncated || interference) {
    v.outcome_member = true;
  } else if (model.outcomes().count(run.outcome)) {
    v.outcome_member = true;
  } else if (!stm->zombie_free()) {
    // The eager class can retain registers from an explicitly aborted
    // attempt that read an inconsistent snapshot (Example 3.4 zombies) —
    // outside its declared guarantee.  Memory (committed state) must still
    // refine the model; a mem-only match is waived, not a violation.
    for (const lit::Outcome& o : model.outcomes()) {
      if (o.mem == run.outcome.mem) {
        v.outcome_member = true;
        v.zombie_regs = true;
        break;
      }
    }
  }

  // The paper's opacity guarantees are hypotheses-conditional: only judge
  // opacity when this recorded trace is race- and interference-free.
  if (rep.l_races == 0 && !rep.mixed_race && !interference) {
    v.opacity_checked = true;
    v.opacity_ok = stm->zombie_free() ? rep.opaque : rep.opaque_committed;
  }
  return v;
}

// The whole-job oracle the shrinker re-runs: does (q, backend) still fail
// on any of the schedule rounds?
bool job_fails(const lit::Program& q, const std::string& backend,
               std::uint64_t sched_base, const FuzzOptions& opts) {
  try {
    lit::EnumOptions eopts;
    eopts.budget = opts.enum_budget;
    lit::GraphEnum e(q, model::ModelConfig::implementation(), eopts);
    const lit::OutcomeSet model = e.outcomes();
    const bool truncated = e.stats().truncated;
    for (int k = 0; k < opts.sched_rounds; ++k) {
      if (!judge_run(q, model, truncated, backend, sched_base + k, opts).ok())
        return true;
    }
  } catch (const std::exception&) {
    // A candidate the interpreter/enumerator rejects is not a reproducer.
    return false;
  }
  return false;
}

}  // namespace

std::vector<lit::Program> fuzz_programs(std::uint64_t seed, int count,
                                        const lit::RandomProgramParams& params) {
  Rng rng(seed);
  std::vector<lit::Program> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    lit::Program p = lit::random_program(rng, params);
    p.name = "fz" + std::to_string(seed) + "-" + std::to_string(i);
    out.push_back(std::move(p));
  }
  return out;
}

FuzzProgram prepare_fuzz_program(lit::Program p, std::uint64_t seed, int index,
                                 std::uint64_t enum_budget) {
  FuzzProgram fp;
  fp.id = "fz" + std::to_string(seed) + "-" + std::to_string(index);
  fp.sched_base = seed * 0x9e3779b97f4a7c15ull +
                  static_cast<std::uint64_t>(index) * 7919ull;
  lit::EnumOptions eopts;
  eopts.budget = enum_budget;
  lit::GraphEnum e(p, model::ModelConfig::implementation(), eopts);
  fp.model = e.outcomes();
  fp.model_truncated = e.stats().truncated;
  fp.program = std::move(p);
  return fp;
}

FuzzRow run_fuzz_job(const FuzzProgram& fp, const std::string& backend,
                     const FuzzOptions& opts) {
  const auto t0 = Clock::now();
  FuzzRow row;
  row.id = fp.id;
  row.backend = backend;
  row.threads = fp.program.threads.size();
  row.stmts = lit::top_level_stmts(fp.program);
  row.model_outcomes = fp.model.size();
  row.model_truncated = fp.model_truncated;
  row.wellformed = true;
  row.outcome_member = true;
  row.path_ok = true;

  const std::uint64_t sched_base = opts.use_exact_sched
                                       ? opts.exact_sched_seed
                                       : fp.sched_base + fnv1a(backend);
  const int rounds = opts.use_exact_sched ? 1 : opts.sched_rounds;
  RunVerdict first_fail;
  for (int k = 0; k < rounds; ++k) {
    const RunVerdict v = judge_run(fp.program, fp.model, fp.model_truncated,
                                   backend, sched_base + k, opts);
    ++row.runs;
    row.wellformed = row.wellformed && v.wellformed;
    row.outcome_member = row.outcome_member && v.outcome_member;
    row.path_ok = row.path_ok && v.path_ok;
    row.zombie_regs = row.zombie_regs || v.zombie_regs;
    row.mixed_interference = row.mixed_interference || v.mixed_interference;
    if (v.opacity_checked) {
      row.opacity_checked = true;
      row.opacity_ok = row.opacity_ok && v.opacity_ok;
    }
    row.l_races = std::max(row.l_races, v.l_races);
    row.mixed_race = row.mixed_race || v.mixed_race;
    if (!v.ok() && row.failure.empty()) {
      row.failure = v.failure();
      row.fail_sched = sched_base + k;
      first_fail = v;
    }
  }

  if (!row.ok() && opts.shrink) {
    ShrinkOptions sopts;
    sopts.max_attempts = opts.shrink_max_attempts;
    FuzzOptions oopts = opts;  // the oracle replays this job's exact rounds
    oopts.sched_rounds = rounds;
    const ShrinkResult sr = shrink(
        fp.program,
        [&](const lit::Program& q) {
          return job_fails(q, backend, sched_base, oopts);
        },
        sopts);
    row.shrunk_threads = sr.program.threads.size();
    row.shrunk_stmts = lit::top_level_stmts(sr.program);
    row.shrink_attempts = sr.attempts;
    row.repro = "# mtx fuzz counterexample\n# id " + row.id + " backend " +
                backend + " sched-seed " + std::to_string(row.fail_sched) +
                " failure " + row.failure + "\n# shrunk from " +
                std::to_string(row.threads) + " threads / " +
                std::to_string(row.stmts) + " top-level stmts in " +
                std::to_string(sr.attempts) + " oracle runs\n" +
                (first_fail.path_error.empty()
                     ? std::string()
                     : "# " + first_fail.path_error + "\n") +
                lit::to_source(sr.program);
  }

  row.millis = ms_since(t0);
  return row;
}

}  // namespace mtx::fuzz
