#include "fuzz/kvproto.hpp"

#include <algorithm>
#include <chrono>

#include "record/assemble.hpp"
#include "record/conformance.hpp"
#include "record/recorder.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"

namespace mtx::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

// The oracle's verdict for one execution of a spec.
struct Verdict {
  bool performed = false;
  std::size_t slots_moved = 0, keys_moved = 0;
  std::uint64_t epoch_before = 0, epoch_after = 0;
  bool wellformed = false;
  std::size_t l_races = 0;
  bool mixed_race = false;
  bool opaque_ok = false;
  bool audit_ok = false;
  std::size_t windows = 0, actions = 0;
  bool violation = false;
  std::string failure;
};

// Executes the protocol sequence once and judges it.  Everything runs on
// the calling thread; logical threads are recorder ids run back-to-back
// (see the header for why that loses no violations).
Verdict run_once(const KvProtoSpec& spec, const KvProtoOptions& opts) {
  Verdict v;
  auto stm = stm::make_backend(spec.backend);
  if (!stm) {
    v.violation = true;
    v.failure = "backend";
    return v;
  }
  const std::size_t keys = std::max<std::size_t>(1, spec.keys);
  const std::size_t shards = std::max<std::size_t>(2, spec.shards);

  kv::KvStore::Options sopt;
  sopt.shards = shards;
  sopt.expected_keys = keys * 2;
  sopt.snap_slots = 1;
  sopt.scoped_fences = true;
  kv::KvStore store(*stm, sopt);

  for (std::size_t k = 0; k < keys; ++k)
    store.put(static_cast<std::int64_t>(k),
              kv::value_of(static_cast<std::int64_t>(k), 0));

  record::RecordSession session;
  std::uint64_t inserts = 0;
  kv::MigrateReport rep;
  {
    // State carry: the recorded window opens with the whole preloaded
    // store re-established as one synthetic committed transaction, so
    // every later read resolves inside the trace.
    record::ScopedRecorder rec(session, 0);
    rec.rec().synthetic_begin();
    store.replay_state_plain();
    rec.rec().synthetic_commit();
  }
  // Phase 1: worker traffic.  The draw stream is a pure function of
  // (seed, tid), so the shrinker's candidate specs replay exactly.
  for (std::size_t tid = 0; tid < spec.threads; ++tid) {
    record::ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    Rng rng(spec.seed * 0x9e3779b9ULL + tid * 131 + 1);
    for (std::uint64_t i = 0; i < spec.ops_per_thread; ++i) {
      const auto key = static_cast<std::int64_t>(rng.below(keys));
      switch (rng.below(4)) {
        case 0:
          store.put(key, kv::value_of(key, static_cast<std::int64_t>(
                                               tid * 7919 + i)));
          break;
        case 1: {
          std::int64_t out = 0;
          store.get(key, &out);
          break;
        }
        case 2:
          store.rmw(key, [key](std::int64_t old) {
            return kv::value_of(key, kv::payload_of(old) + 1);
          });
          break;
        case 3: {
          const auto fresh = static_cast<std::int64_t>(
              keys + tid * spec.ops_per_thread + i);
          store.put(fresh, kv::value_of(fresh, static_cast<std::int64_t>(i)));
          ++inserts;
          break;
        }
      }
    }
  }
  // The migration, recorded from its own logical thread: its close/reopen
  // transactions, its (possibly sabotaged) fences, and its plain copy all
  // land in the trace the checker judges.
  {
    record::ScopedRecorder rec(session,
                               static_cast<int>(spec.threads) + 1);
    kv::MigrationEngine engine(store);
    if (spec.kind == kv::MigrateKind::move) {
      // A 1-slot move can land on a keyless slot (nothing copied, nothing
      // for a bait to lose).  Size the take so the moved suffix includes
      // the highest key-bearing slot the source owns — deterministic, and
      // still a partial move rather than a merge whenever keys exist.
      bool has_key[kv::RoutingTable::kSlots] = {};
      for (std::size_t k = 0; k < keys; ++k)
        has_key[kv::RoutingTable::slot_of(static_cast<std::int64_t>(k))] =
            true;
      const std::vector<std::size_t> slots = store.routing().slots_of(0);
      std::size_t take = 1;
      for (std::size_t i = slots.size(); i-- > 0;) {
        if (has_key[slots[i]]) {
          take = slots.size() - i;
          break;
        }
      }
      rep = engine.move(0, shards - 1, take, spec.bait);
    } else {
      rep = engine.run(spec.kind, 0, shards - 1, spec.bait);
    }
  }
  v.performed = rep.performed;
  v.slots_moved = rep.slots_moved;
  v.keys_moved = rep.keys_moved;
  v.epoch_before = rep.epoch_before;
  v.epoch_after = rep.epoch_after;
  // Phase 3: the prober sweeps every preloaded key transactionally — its
  // gate reads take the cwr edge from the reopen commits, so against the
  // real engine everything it touches is ordered after the copy; against
  // publish_before_copy exactly this sweep exposes the race.
  {
    record::ScopedRecorder rec(session,
                               static_cast<int>(spec.threads) + 2);
    for (std::size_t k = 0; k < keys; ++k) {
      std::int64_t out = 0;
      store.get(static_cast<std::int64_t>(k), &out);
    }
  }

  const record::RecordedTrace trace = record::assemble(session);
  record::WindowedOptions wopts;
  wopts.min_window_events = opts.window_min_events;
  const record::ConformanceReport conf = record::check_conformance_windowed(
      trace.trace, model::ModelConfig::implementation(), wopts);
  v.wellformed = conf.wf.ok();
  v.l_races = conf.l_races;
  v.mixed_race = conf.mixed_race;
  v.opaque_ok = stm->zombie_free() ? conf.opaque : conf.opaque_committed;
  v.windows = conf.windows;
  v.actions = conf.actions;

  // Transactional key audit (unrecorded): every key findable through the
  // CURRENT routing with a well-formed value, and the store grew by
  // exactly the insert count.  stale_route leaves the trace clean and
  // fails here instead.
  bool audit = store.size() == keys + inserts;
  for (std::size_t k = 0; k < keys && audit; ++k) {
    std::int64_t out = 0;
    const auto key = static_cast<std::int64_t>(k);
    if (!store.get(key, &out) || !kv::value_form_ok(key, out)) audit = false;
  }
  v.audit_ok = audit;

  if (!v.wellformed)
    v.failure = "wellformed";
  else if (v.l_races > 0 || v.mixed_race)
    v.failure = "race";
  else if (!v.opaque_ok)
    v.failure = "opacity";
  else if (!v.audit_ok)
    v.failure = "audit";
  v.violation = !v.failure.empty();
  return v;
}

}  // namespace

std::string kvproto_repro(const KvProtoSpec& spec, const std::string& failure) {
  std::string s;
  s += "# kvproto reproducer: live-migration protocol violation (" + failure +
       ")\n";
  s += "# Deterministic: replaying this spec through fuzz::run_kvproto\n";
  s += "# reproduces the verdict bit-for-bit on any schedule (the sequence\n";
  s += "# runs on one OS thread; the violation is trace-structural).\n";
  s += "backend " + spec.backend + "\n";
  s += "kind " + std::string(kv::to_string(spec.kind)) + "\n";
  s += "bait " + std::string(kv::to_string(spec.bait)) + "\n";
  s += "threads " + std::to_string(spec.threads) + "\n";
  s += "ops " + std::to_string(spec.ops_per_thread) + "\n";
  s += "keys " + std::to_string(spec.keys) + "\n";
  s += "shards " + std::to_string(spec.shards) + "\n";
  s += "seed " + std::to_string(spec.seed) + "\n";
  s += "failure " + failure + "\n";
  return s;
}

KvProtoRow run_kvproto(const KvProtoSpec& spec, const KvProtoOptions& opts) {
  const auto t0 = Clock::now();
  KvProtoRow row;
  row.backend = spec.backend;
  row.kind = kv::to_string(spec.kind);
  row.bait = kv::to_string(spec.bait);
  row.threads = spec.threads;
  row.keys = spec.keys;
  row.shards = spec.shards;
  row.ops = spec.ops_per_thread;
  row.seed = spec.seed;

  const Verdict v = run_once(spec, opts);
  row.performed = v.performed;
  row.slots_moved = v.slots_moved;
  row.keys_moved = v.keys_moved;
  row.epoch_before = v.epoch_before;
  row.epoch_after = v.epoch_after;
  row.wellformed = v.wellformed;
  row.l_races = v.l_races;
  row.mixed_race = v.mixed_race;
  row.opaque_ok = v.opaque_ok;
  row.audit_ok = v.audit_ok;
  row.windows = v.windows;
  row.actions = v.actions;
  row.violation = v.violation;
  row.failure = v.failure;

  if (v.violation && opts.shrink) {
    // Greedy minimization: accept a candidate only when it still violates
    // with the SAME failure class, so a shrink step can never trade one
    // bug for another.  Exact, because the oracle is deterministic.
    KvProtoSpec cur = spec;
    std::size_t attempts = 0;
    bool progressed = true;
    while (progressed && attempts < opts.shrink_max_attempts) {
      progressed = false;
      auto try_spec = [&](KvProtoSpec cand) {
        if (attempts >= opts.shrink_max_attempts) return;
        ++attempts;
        const Verdict cv = run_once(cand, opts);
        if (cv.violation && cv.failure == v.failure) {
          cur = cand;
          progressed = true;
        }
      };
      if (cur.threads > 0) {
        KvProtoSpec c = cur;
        c.threads = cur.threads / 2;
        try_spec(c);
      }
      if (!progressed && cur.threads > 0) {
        KvProtoSpec c = cur;
        c.threads -= 1;
        try_spec(c);
      }
      if (cur.ops_per_thread > 1) {
        KvProtoSpec c = cur;
        c.ops_per_thread = cur.ops_per_thread / 2;
        try_spec(c);
      }
      if (cur.keys > 1) {
        KvProtoSpec c = cur;
        c.keys = cur.keys / 2;
        try_spec(c);
      }
      if (!progressed && cur.keys > 1) {
        KvProtoSpec c = cur;
        c.keys -= 1;
        try_spec(c);
      }
    }
    row.shrunk_threads = cur.threads;
    row.shrunk_ops = cur.ops_per_thread;
    row.shrunk_keys = cur.keys;
    row.shrink_attempts = attempts;
    row.repro = kvproto_repro(cur, v.failure);
  }

  row.millis =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return row;
}

}  // namespace mtx::fuzz
