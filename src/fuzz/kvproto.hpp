// KV protocol-sequence fuzzing: the live-migration engine run inside a
// recorded execution and judged by the model layer, with deliberately
// broken bait variants that must each yield a minimized reproducer.
//
// One kvproto job replays a deterministic protocol sequence on a fresh
// store — preload, a few logical worker threads of mixed traffic, one
// migration (split / move / merge, optionally sabotaged by a
// kv::MigrateBait), then a prober thread sweeping every key — all under
// one RecordSession.  The assembled trace is judged by the windowed
// conformance checker and a post-run transactional key audit.
//
// The whole sequence executes on ONE OS thread: each logical thread is a
// separate ScopedRecorder id run to completion before the next starts.
// That is sound because the violations the baits plant are
// SCHEDULE-INDEPENDENT — the paper's model gives plain accesses
// happens-before only through fences and cwr∘po, never through real-time
// order or reads-from alone:
//
//   skip_source_fence  — the source shard's quiesce is dropped, so every
//     committed transaction that touched the source (the state-carry
//     replay included) is hb-unordered with the migrator's plain copy of
//     it: the trace carries a race however the phases interleave in time.
//   publish_before_copy — the shards reopen before the copy, so the plain
//     copy is po-AFTER the reopen commit and the prober's gate read
//     (cwr from that commit) orders nothing: its transactional reads of
//     the copied buckets race the copy's plain writes.
//   stale_route — fences and copy are correct but the RoutingTable never
//     learns: the trace is clean, and the transactional key audit fails
//     instead (moved keys live where no route points).
//
// Determinism makes the greedy shrinker exact: a violating spec is
// re-judged after each candidate reduction (fewer threads, fewer ops,
// fewer keys), and the shrunk spec's reproducer text re-runs bit-for-bit.
// The real engine (bait = none) must be conformant on every backend —
// that grid row is the campaign's acceptance gate for the migration
// subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "kv/migrate.hpp"

namespace mtx::fuzz {

// One protocol-sequence job, fully naming its deterministic execution.
struct KvProtoSpec {
  std::string backend = "tl2";
  std::size_t threads = 2;  // phase-1 logical worker threads
  std::size_t keys = 24;    // preloaded key space [0, keys)
  std::size_t shards = 4;   // >= 2 (src = 0, dst = shards - 1)
  std::uint64_t ops_per_thread = 8;
  std::uint64_t seed = 1;
  kv::MigrateKind kind = kv::MigrateKind::move;
  kv::MigrateBait bait = kv::MigrateBait::none;
};

struct KvProtoOptions {
  bool shrink = true;
  std::size_t shrink_max_attempts = 64;
  std::size_t window_min_events = 64;  // forwarded to the windowed checker
};

struct KvProtoRow {
  // Spec echo (reports and the verdict signature key on these).
  std::string backend;
  std::string kind, bait;
  std::size_t threads = 0, keys = 0, shards = 0;
  std::uint64_t ops = 0, seed = 0;

  // Migration outcome (deterministic: single-OS-thread execution).
  bool performed = false;
  std::size_t slots_moved = 0, keys_moved = 0;
  std::uint64_t epoch_before = 0, epoch_after = 0;

  // Verdict.
  bool wellformed = false;
  std::size_t l_races = 0;
  bool mixed_race = false;
  bool opaque_ok = false;  // held to the backend's declared guarantee
  bool audit_ok = false;   // transactional key audit (routing vs placement)
  std::size_t windows = 0, actions = 0;
  bool violation = false;
  std::string failure;  // "race" / "audit" / "wellformed" / "opacity"

  // Shrink payload (violating rows only).
  std::string repro;
  std::size_t shrunk_threads = 0, shrunk_keys = 0;
  std::uint64_t shrunk_ops = 0;
  std::size_t shrink_attempts = 0;

  double millis = 0;

  bool baited() const { return bait != "none"; }
  // Real-engine rows must be clean; bait rows must both trip the oracle
  // AND carry a minimized reproducer — a bait that fails silently is a
  // detection gap, not a pass.
  bool ok() const {
    return baited() ? (violation && !repro.empty()) : !violation;
  }
};

// Runs the job (constructing its own backend from spec.backend), judges
// it, and on violation shrinks the spec to a minimal reproducer.
KvProtoRow run_kvproto(const KvProtoSpec& spec, const KvProtoOptions& opts = {});

// The self-contained reproducer text a violating row carries.
std::string kvproto_repro(const KvProtoSpec& spec, const std::string& failure);

}  // namespace mtx::fuzz
