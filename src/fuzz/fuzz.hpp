// Differential fuzz jobs: random litmus programs executed on real STM
// backends and judged against the model.
//
// One fuzz job = (generated program, backend).  The program's model-allowed
// outcome set is enumerated once (implementation model: the runtime has
// quiescence fences); the program then runs `sched_rounds` times on the
// backend under distinct schedule-perturbation seeds, each run recorded and
// judged.  A run conforms when
//
//   1. the recorded trace is well-formed (WF1..WF12);
//   2. its final state (memory + registers) is a model-allowed outcome —
//      the runtime, which is strictly stronger than the paper's weak model,
//      must refine it;
//   3. each thread's recorded log structurally matches a control path of
//      its source block (catches dropped fences/accesses deterministically);
//   4. when the recorded trace is race-free, the backend's declared opacity
//      level holds (the paper's bounded-races theorems promise nothing for
//      racy traces, and random programs race on purpose — races are
//      reported, not judged).
//
// Refinement (1 + 2) is judged modulo *mixed interference* — a plain access
// racing with a transaction's accesses, or touching an aborted in-place
// write's location.  That is precisely the hypothesis the paper's
// guarantees carry (Lemma 5.1, the §3 anomaly catalog): under it, real
// backends legitimately produce lost updates, dirty reads and broken
// read-own-write atomicity the model never shows.  Affected rows waive WF7
// dirty-read violations and outcome membership but are flagged
// (mixed_interference), never silently dropped; a second flagged waiver
// covers register state from explicitly aborted zombie snapshots on
// non-zombie-free backends (memory must still match).
//
// On any violation the shrinker greedily minimizes the program, re-running
// this oracle at each step, and the row carries a self-contained litmus
// reproducer plus the seed that found it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/interpreter.hpp"
#include "fuzz/shrink.hpp"
#include "litmus/outcome.hpp"
#include "litmus/random_program.hpp"

namespace mtx::fuzz {

struct FuzzOptions {
  int sched_rounds = 2;            // perturbation seeds per (program, backend)
  unsigned yield_percent = 30;
  std::uint64_t enum_budget = 2'000'000;  // model enumeration node budget
  bool shrink = true;
  std::size_t shrink_max_attempts = 300;
  // Fault injection (tests / shrinker demos): interpreter drops fences.
  bool fault_skip_fence = false;
  // Exact replay: run a single round at precisely this schedule seed (the
  // fail_sched a counterexample header prints), bypassing the derived
  // sched_base + backend-salt + round scheme.
  bool use_exact_sched = false;
  std::uint64_t exact_sched_seed = 0;
};

// A generated program with its model-side work precomputed, shared across
// the backend × schedule grid.
struct FuzzProgram {
  lit::Program program;
  std::string id;                // "fz<seed>-<index>"
  std::uint64_t sched_base = 0;  // schedule seeds are sched_base + round
  lit::OutcomeSet model;         // implementation-model outcomes
  bool model_truncated = false;  // enumeration hit the node budget
};

struct FuzzRow {
  std::string id;
  std::string backend;
  std::size_t threads = 0;  // program shape, for reports
  std::size_t stmts = 0;    // top-level statements

  bool wellformed = false;
  bool outcome_member = false;
  bool path_ok = false;
  bool opacity_ok = true;        // only meaningful when opacity_checked
  bool opacity_checked = false;  // some round was race-free
  bool zombie_regs = false;      // eager-class divergence waived (mem matched)
  // Refinement judged only modulo mixed interference: a plain access
  // racing with (or touching the aborted speculative state of) a
  // transaction voids the model's guarantees (Lemma 5.1's hypothesis, the
  // Ex 3.4 anomaly class), so WF7 dirty reads and outcome membership are
  // waived — and flagged here — when it occurs.
  bool mixed_interference = false;
  std::size_t model_outcomes = 0;
  bool model_truncated = false;
  std::size_t l_races = 0;  // max over rounds — informational
  bool mixed_race = false;  // informational
  std::size_t runs = 0;
  bool skipped = false;  // fuzz time budget hit before this job ran

  // Violation payload: a self-contained reproducer (empty when conformant).
  std::string repro;
  std::string failure;  // "path" / "outcome" / "wellformed" / "opacity"
  std::uint64_t fail_sched = 0;
  std::size_t shrunk_threads = 0;
  std::size_t shrunk_stmts = 0;
  std::size_t shrink_attempts = 0;

  double millis = 0;

  bool ok() const {
    return skipped ||
           (wellformed && outcome_member && path_ok && opacity_ok);
  }
};

// Deterministic program batch: `count` programs drawn from one RNG stream
// seeded with `seed` (byte-identical across runs — the determinism pin).
std::vector<lit::Program> fuzz_programs(std::uint64_t seed, int count,
                                        const lit::RandomProgramParams& params);

// Enumerates the model outcome set; `index` names the program and salts the
// schedule-seed base.
FuzzProgram prepare_fuzz_program(lit::Program p, std::uint64_t seed, int index,
                                 std::uint64_t enum_budget);

// Runs the (program, backend) job: sched_rounds recorded executions, the
// conformance judgment, and (on violation) the shrinker.
FuzzRow run_fuzz_job(const FuzzProgram& fp, const std::string& backend,
                     const FuzzOptions& opts = {});

}  // namespace mtx::fuzz
