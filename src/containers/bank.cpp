#include "containers/bank.hpp"

#include "stm/backend.hpp"
#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"

namespace mtx::containers {
template class Bank<stm::Tl2Stm>;
template class Bank<stm::EagerStm>;
template class Bank<stm::NorecStm>;
template class Bank<stm::SglStm>;
// The type-erased registry path (harnesses, benches, recorded workloads).
template class Bank<stm::StmBackend>;
}  // namespace mtx::containers
