// Sorted linked-list set over the transactional API — the canonical STM
// data structure benchmark.  Keys are int64; nodes are traversed via
// transactional reads of the next-pointers, so lookups serialize correctly
// against concurrent inserts/removes on any backend.
//
// Memory reclamation: removed nodes are retired, not freed, until the list
// is destroyed (readers of a doomed transaction may still traverse them;
// retirement makes that safe without an epoch reclaimer).
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "stm/api.hpp"

namespace mtx::containers {

using stm::Cell;
using stm::word_t;

template <class Stm>
class TList {
 public:
  explicit TList(Stm& stm) : stm_(stm) {
    head_ = new_node(std::numeric_limits<std::int64_t>::min());
    tail_ = new_node(std::numeric_limits<std::int64_t>::max());
    head_->next.plain_store(encode(tail_));
  }

  ~TList() {
    std::lock_guard<std::mutex> g(nodes_mu_);
    for (Node* n : nodes_) delete n;
  }

  TList(const TList&) = delete;
  TList& operator=(const TList&) = delete;

  bool insert(std::int64_t key) {
    bool inserted = false;
    stm_.atomically([&](auto& tx) {
      inserted = false;
      auto [prev, cur] = locate(tx, key);
      if (node_key(cur) == key) return;
      Node* fresh = new_node(key);
      fresh->next.plain_store(encode(cur));
      tx.write(prev->next, encode(fresh));
      inserted = true;
    });
    return inserted;
  }

  bool remove(std::int64_t key) {
    bool removed = false;
    stm_.atomically([&](auto& tx) {
      removed = false;
      auto [prev, cur] = locate(tx, key);
      if (node_key(cur) != key) return;
      const word_t nxt = tx.read(cur->next);
      tx.write(prev->next, nxt);
      removed = true;
    });
    return removed;
  }

  bool contains(std::int64_t key) {
    bool found = false;
    stm_.atomically([&](auto& tx) {
      auto [prev, cur] = locate(tx, key);
      (void)prev;
      found = node_key(cur) == key;
    });
    return found;
  }

  // Transactional size (linear traversal).
  std::size_t size() {
    std::size_t n = 0;
    stm_.atomically([&](auto& tx) {
      n = 0;
      Node* cur = decode(tx.read(head_->next));
      while (cur != tail_) {
        ++n;
        cur = decode(tx.read(cur->next));
      }
    });
    return n;
  }

 private:
  struct Node {
    // The key is written through plain_store (not Cell's raw constructor)
    // so a recording session sees the initializing write and later key
    // reads have a fulfilling write in the assembled trace.
    explicit Node(std::int64_t k) { key.plain_store(static_cast<word_t>(k)); }
    Cell key;
    Cell next;
  };

  static word_t encode(Node* n) { return reinterpret_cast<word_t>(n); }
  static Node* decode(word_t w) { return reinterpret_cast<Node*>(w); }
  static std::int64_t node_key(Node* n) {
    return static_cast<std::int64_t>(n->key.plain_load());
  }

  Node* new_node(std::int64_t key) {
    Node* n = new Node(key);
    std::lock_guard<std::mutex> g(nodes_mu_);
    nodes_.push_back(n);
    return n;
  }

  // Returns (prev, cur) with prev->key < key <= cur->key.
  template <typename Tx>
  std::pair<Node*, Node*> locate(Tx& tx, std::int64_t key) {
    Node* prev = head_;
    Node* cur = decode(tx.read(head_->next));
    while (node_key(cur) < key) {
      prev = cur;
      cur = decode(tx.read(cur->next));
    }
    return {prev, cur};
  }

  Stm& stm_;
  Node* head_;
  Node* tail_;
  std::mutex nodes_mu_;
  std::vector<Node*> nodes_;
};

}  // namespace mtx::containers
