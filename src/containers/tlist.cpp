#include "containers/tlist.hpp"

#include "stm/backend.hpp"
#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"

// Anchor the template for the three backends so interface breakage is caught
// at library build time rather than first use.
namespace mtx::containers {
template class TList<stm::Tl2Stm>;
template class TList<stm::EagerStm>;
template class TList<stm::NorecStm>;
template class TList<stm::SglStm>;
// The type-erased registry path (harnesses, benches, recorded workloads).
template class TList<stm::StmBackend>;
}  // namespace mtx::containers
