#include "containers/tqueue.hpp"

#include "stm/backend.hpp"
#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"

namespace mtx::containers {
template class TQueue<stm::Tl2Stm>;
template class TQueue<stm::EagerStm>;
template class TQueue<stm::NorecStm>;
template class TQueue<stm::SglStm>;
// The type-erased registry path (harnesses, benches, recorded workloads).
template class TQueue<stm::StmBackend>;
}  // namespace mtx::containers
