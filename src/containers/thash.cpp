#include "containers/thash.hpp"

#include "stm/backend.hpp"
#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"

namespace mtx::containers {
template class THash<stm::Tl2Stm>;
template class THash<stm::EagerStm>;
template class THash<stm::NorecStm>;
template class THash<stm::SglStm>;
// The type-erased registry path (harnesses, benches, recorded workloads).
template class THash<stm::StmBackend>;
}  // namespace mtx::containers
