#include "containers/thash.hpp"

#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"

namespace mtx::containers {
template class THash<stm::Tl2Stm>;
template class THash<stm::EagerStm>;
template class THash<stm::NorecStm>;
template class THash<stm::SglStm>;
}  // namespace mtx::containers
