// The bank-account workload: concurrent transfers must conserve the total
// balance — the classic whole-system atomicity check for an STM, and the
// natural host for the privatization idiom (audit an account privately
// after marking it closed).
#pragma once

#include <cstdint>
#include <vector>

#include "stm/api.hpp"

namespace mtx::containers {

template <class Stm>
class Bank {
 public:
  Bank(Stm& stm, std::size_t accounts, std::int64_t initial_balance)
      : stm_(stm), accounts_(accounts), initial_total_(static_cast<std::int64_t>(
                                            accounts) * initial_balance) {
    for (auto& a : accounts_) a.plain_store(static_cast<stm::word_t>(initial_balance));
  }

  Bank(const Bank&) = delete;
  Bank& operator=(const Bank&) = delete;

  std::size_t size() const { return accounts_.size(); }
  std::int64_t expected_total() const { return initial_total_; }

  // Transfer amount between two accounts (may drive a balance negative;
  // conservation is the invariant, not solvency).
  void transfer(std::size_t from, std::size_t to, std::int64_t amount) {
    if (from == to) return;  // self-transfer would double-apply the delta
    stm_.atomically([&](auto& tx) {
      const auto f = static_cast<std::int64_t>(tx.read(accounts_[from]));
      const auto t = static_cast<std::int64_t>(tx.read(accounts_[to]));
      tx.write(accounts_[from], static_cast<stm::word_t>(f - amount));
      tx.write(accounts_[to], static_cast<stm::word_t>(t + amount));
    });
  }

  // Transactional snapshot of the total balance.
  std::int64_t total() {
    std::int64_t sum = 0;
    stm_.atomically([&](auto& tx) {
      sum = 0;
      for (auto& a : accounts_) sum += static_cast<std::int64_t>(tx.read(a));
    });
    return sum;
  }

  // Privatization-style audit: after a quiescence fence, in-flight
  // transactions have drained and a *plain* (nontransactional) sweep of the
  // accounts is safe -- the §5 idiom.  Without the fence this read would be
  // a mixed race against concurrent commits.
  std::int64_t audit_after_quiesce() {
    stm_.quiesce();
    std::int64_t sum = 0;
    for (auto& a : accounts_) sum += static_cast<std::int64_t>(a.plain_load());
    return sum;
  }

  std::int64_t plain_balance(std::size_t i) const {
    return static_cast<std::int64_t>(accounts_[i].plain_load());
  }

  // Raw cell access for workload generators that drive their own
  // transactions over the account array.
  stm::Cell& account(std::size_t i) { return accounts_[i]; }

 private:
  Stm& stm_;
  std::vector<stm::Cell> accounts_;
  std::int64_t initial_total_;
};

}  // namespace mtx::containers
