// Bounded transactional FIFO queue: a ring buffer whose head/tail indices
// and slots are transactional cells.  push/pop are small transactions with
// head/tail conflicts only, a good contention microbenchmark.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stm/api.hpp"

namespace mtx::containers {

template <class Stm>
class TQueue {
 public:
  TQueue(Stm& stm, std::size_t capacity = 1024)
      : stm_(stm), slots_(capacity ? capacity : 1) {}

  TQueue(const TQueue&) = delete;
  TQueue& operator=(const TQueue&) = delete;

  // Returns false when full.
  bool push(std::int64_t v) {
    bool ok = false;
    stm_.atomically([&](auto& tx) {
      const stm::word_t head = tx.read(head_);
      const stm::word_t tail = tx.read(tail_);
      if (tail - head >= slots_.size()) {
        ok = false;
        return;
      }
      tx.write(slots_[tail % slots_.size()], static_cast<stm::word_t>(v));
      tx.write(tail_, tail + 1);
      ok = true;
    });
    return ok;
  }

  // Empty optional when the queue is empty.
  std::optional<std::int64_t> pop() {
    std::optional<std::int64_t> out;
    stm_.atomically([&](auto& tx) {
      out.reset();
      const stm::word_t head = tx.read(head_);
      const stm::word_t tail = tx.read(tail_);
      if (head == tail) return;
      out = static_cast<std::int64_t>(tx.read(slots_[head % slots_.size()]));
      tx.write(head_, head + 1);
    });
    return out;
  }

  std::size_t size() {
    std::size_t n = 0;
    stm_.atomically([&](auto& tx) {
      n = static_cast<std::size_t>(tx.read(tail_) - tx.read(head_));
    });
    return n;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  Stm& stm_;
  stm::Cell head_;
  stm::Cell tail_;
  std::vector<stm::Cell> slots_;
};

}  // namespace mtx::containers
