// Striped transactional hash map: fixed bucket array of sorted chains.
// Operations on different buckets conflict only through the STM's orec
// hashing, so the map scales where the single list cannot.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "stm/api.hpp"

namespace mtx::containers {

template <class Stm>
class THash {
 public:
  THash(Stm& stm, std::size_t buckets = 64)
      : stm_(stm), heads_(buckets ? buckets : 1) {}

  ~THash() {
    std::lock_guard<std::mutex> g(nodes_mu_);
    for (Node* n : nodes_) delete n;
  }

  THash(const THash&) = delete;
  THash& operator=(const THash&) = delete;

  // Inserts or updates; returns true when the key was new.
  bool put(std::int64_t key, std::int64_t value) {
    bool fresh = false;
    stm_.atomically([&](auto& tx) {
      fresh = false;
      stm::Cell& head = heads_[bucket(key)];
      Node* prev = nullptr;
      Node* cur = decode(tx.read(head));
      while (cur && cur->key < key) {
        prev = cur;
        cur = decode(tx.read(cur->next));
      }
      if (cur && cur->key == key) {
        tx.write(cur->value, static_cast<stm::word_t>(value));
        return;
      }
      Node* fresh_node = new_node(key, value);
      fresh_node->next.plain_store(encode(cur));
      if (prev)
        tx.write(prev->next, encode(fresh_node));
      else
        tx.write(head, encode(fresh_node));
      fresh = true;
    });
    return fresh;
  }

  // Returns true and sets *out when present.
  bool get(std::int64_t key, std::int64_t* out) {
    bool found = false;
    stm_.atomically([&](auto& tx) {
      found = false;
      Node* cur = decode(tx.read(heads_[bucket(key)]));
      while (cur && cur->key < key) cur = decode(tx.read(cur->next));
      if (cur && cur->key == key) {
        if (out) *out = static_cast<std::int64_t>(tx.read(cur->value));
        found = true;
      }
    });
    return found;
  }

  bool erase(std::int64_t key) {
    bool removed = false;
    stm_.atomically([&](auto& tx) {
      removed = false;
      stm::Cell& head = heads_[bucket(key)];
      Node* prev = nullptr;
      Node* cur = decode(tx.read(head));
      while (cur && cur->key < key) {
        prev = cur;
        cur = decode(tx.read(cur->next));
      }
      if (!cur || cur->key != key) return;
      const stm::word_t nxt = tx.read(cur->next);
      if (prev)
        tx.write(prev->next, nxt);
      else
        tx.write(head, nxt);
      removed = true;
    });
    return removed;
  }

  std::size_t size() {
    std::size_t n = 0;
    stm_.atomically([&](auto& tx) {
      n = 0;
      for (stm::Cell& head : heads_) {
        Node* cur = decode(tx.read(head));
        while (cur) {
          ++n;
          cur = decode(tx.read(cur->next));
        }
      }
    });
    return n;
  }

 private:
  struct Node {
    // The value cell is initialized through plain_store so recording
    // sessions observe the write (see TList::Node).
    Node(std::int64_t k, std::int64_t v) : key(k) {
      value.plain_store(static_cast<stm::word_t>(v));
    }
    const std::int64_t key;
    stm::Cell value;
    stm::Cell next;
  };

  static stm::word_t encode(Node* n) { return reinterpret_cast<stm::word_t>(n); }
  static Node* decode(stm::word_t w) { return reinterpret_cast<Node*>(w); }

  std::size_t bucket(std::int64_t key) const {
    auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 33) % heads_.size();
  }

  Node* new_node(std::int64_t key, std::int64_t value) {
    Node* n = new Node(key, value);
    std::lock_guard<std::mutex> g(nodes_mu_);
    nodes_.push_back(n);
    return n;
  }

  Stm& stm_;
  std::vector<stm::Cell> heads_;
  std::mutex nodes_mu_;
  std::vector<Node*> nodes_;
};

}  // namespace mtx::containers
