// Striped transactional hash map: fixed bucket array of sorted chains.
// Operations on different buckets conflict only through the STM's orec
// hashing, so the map scales where the single list cannot.
//
// Sizing: the bucket array is fixed at construction (`bucket_count`); there
// is no rehashing, so chains grow linearly once the load factor passes ~2.
// Callers that know their key volume up front should size with
// `recommended_buckets(expected_keys)` instead of taking the seed default —
// the KV shards (src/kv/kvstore.hpp) do exactly that.
//
// Every operation also exists in a txn-parameterized `*_in(tx, ...)` form so
// callers can compose a map operation with their own transactional state
// (e.g. a privatization flag read) inside ONE atomic block — the wrapper
// forms simply run the `_in` body under a fresh transaction.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "stm/api.hpp"

namespace mtx::containers {

template <class Stm>
class THash {
 public:
  static constexpr std::size_t kDefaultBuckets = 64;

  THash(Stm& stm, std::size_t bucket_count = kDefaultBuckets)
      : stm_(stm), heads_(bucket_count ? bucket_count : 1) {}

  ~THash() {
    std::lock_guard<std::mutex> g(nodes_mu_);
    for (Node* n : nodes_) delete n;
  }

  THash(const THash&) = delete;
  THash& operator=(const THash&) = delete;

  std::size_t bucket_count() const { return heads_.size(); }

  // Power-of-two bucket count targeting a load factor of ~2 at
  // `expected_keys`, clamped to [kDefaultBuckets/4, 2^20]: small tables keep
  // a floor so orec striping still spreads, huge hints stay bounded.
  static std::size_t recommended_buckets(std::size_t expected_keys) {
    const std::size_t target = expected_keys / 2;
    std::size_t b = kDefaultBuckets / 4;
    while (b < target && b < (std::size_t{1} << 20)) b <<= 1;
    return b;
  }

  // ----- txn-parameterized operations ------------------------------------

  // Inserts or updates; returns true when the key was new.
  template <class Tx>
  bool put_in(Tx& tx, std::int64_t key, std::int64_t value) {
    stm::Cell& head = heads_[bucket(key)];
    Node* prev = nullptr;
    Node* cur = decode(tx.read(head));
    while (cur && cur->key < key) {
      prev = cur;
      cur = decode(tx.read(cur->next));
    }
    if (cur && cur->key == key) {
      tx.write(cur->value, static_cast<stm::word_t>(value));
      return false;
    }
    Node* fresh_node = new_node(key, value);
    fresh_node->next.plain_store(encode(cur));
    if (prev)
      tx.write(prev->next, encode(fresh_node));
    else
      tx.write(head, encode(fresh_node));
    return true;
  }

  // Returns true and sets *out when present.
  template <class Tx>
  bool get_in(Tx& tx, std::int64_t key, std::int64_t* out) {
    Node* cur = decode(tx.read(heads_[bucket(key)]));
    while (cur && cur->key < key) cur = decode(tx.read(cur->next));
    if (cur && cur->key == key) {
      if (out) *out = static_cast<std::int64_t>(tx.read(cur->value));
      return true;
    }
    return false;
  }

  template <class Tx>
  bool erase_in(Tx& tx, std::int64_t key) {
    stm::Cell& head = heads_[bucket(key)];
    Node* prev = nullptr;
    Node* cur = decode(tx.read(head));
    while (cur && cur->key < key) {
      prev = cur;
      cur = decode(tx.read(cur->next));
    }
    if (!cur || cur->key != key) return false;
    const stm::word_t nxt = tx.read(cur->next);
    if (prev)
      tx.write(prev->next, nxt);
    else
      tx.write(head, nxt);
    return true;
  }

  // ----- single-transaction wrappers -------------------------------------

  bool put(std::int64_t key, std::int64_t value) {
    bool fresh = false;
    stm_.atomically([&](auto& tx) { fresh = put_in(tx, key, value); });
    return fresh;
  }

  bool get(std::int64_t key, std::int64_t* out) {
    bool found = false;
    stm_.atomically([&](auto& tx) { found = get_in(tx, key, out); });
    return found;
  }

  bool erase(std::int64_t key) {
    bool removed = false;
    stm_.atomically([&](auto& tx) { removed = erase_in(tx, key); });
    return removed;
  }

  // Entry count inside the caller's transaction (composes with a migration
  // flag read the way the other `_in` forms do).
  template <class Tx>
  std::size_t size_in(Tx& tx) {
    std::size_t n = 0;
    for (stm::Cell& head : heads_) {
      Node* cur = decode(tx.read(head));
      while (cur) {
        ++n;
        cur = decode(tx.read(cur->next));
      }
    }
    return n;
  }

  std::size_t size() {
    std::size_t n = 0;
    stm_.atomically([&](auto& tx) { n = size_in(tx); });
    return n;
  }

  // ----- plain (nontransactional) access ---------------------------------
  //
  // Both traversals use Cell::plain_load/plain_store only, so they are the
  // paper's ordinary accesses: legal ONLY while the caller owns the table —
  // after a privatizing flag write plus quiescence fence (the KV
  // privatize-scan), or while every other thread is provably quiescent (the
  // sampled-conformance state replay).  Under a recording session every
  // access is captured, so protocol mistakes surface as model races.

  // fn(key, value) for every live entry, bucket-major, keys ascending within
  // a bucket.
  template <class Fn>
  void for_each_plain(Fn&& fn) {
    for (stm::Cell& head : heads_) {
      Node* cur = decode(head.plain_load());
      while (cur) {
        fn(cur->key, static_cast<std::int64_t>(cur->value.plain_load()));
        cur = decode(cur->next.plain_load());
      }
    }
  }

  // Plain-access insert-or-update: the uninstrumented copy path a migration
  // uses after privatizing BOTH endpoint shards (writers fenced out by the
  // flag-CAS + quiesce, readers by the migration flag).  Same chain
  // discipline as put_in — sorted position, fresh node's own cells
  // initialized before the link store — so a recorded copy is a faithful
  // plain-write image of the transactional insert.  Returns true when the
  // key was new.
  bool plain_put(std::int64_t key, std::int64_t value) {
    stm::Cell& head = heads_[bucket(key)];
    Node* prev = nullptr;
    Node* cur = decode(head.plain_load());
    while (cur && cur->key < key) {
      prev = cur;
      cur = decode(cur->next.plain_load());
    }
    if (cur && cur->key == key) {
      cur->value.plain_store(static_cast<stm::word_t>(value));
      return false;
    }
    Node* fresh_node = new_node(key, value);
    fresh_node->next.plain_store(encode(cur));
    if (prev)
      prev->next.plain_store(encode(fresh_node));
    else
      head.plain_store(encode(fresh_node));
    return true;
  }

  // Plain-access unlink (the migration source's post-copy erase).  The node
  // stays allocated and enumerable (for_each_cell) — a doomed zombie reader
  // may still dereference it.  Returns true when the key was present.
  bool plain_erase(std::int64_t key) {
    stm::Cell& head = heads_[bucket(key)];
    Node* prev = nullptr;
    Node* cur = decode(head.plain_load());
    while (cur && cur->key < key) {
      prev = cur;
      cur = decode(cur->next.plain_load());
    }
    if (!cur || cur->key != key) return false;
    const stm::word_t nxt = cur->next.plain_load();
    if (prev)
      prev->next.plain_store(nxt);
    else
      head.plain_store(nxt);
    return true;
  }

  // fn(cell) for every Cell the table has ever allocated: bucket heads plus
  // the value/next cells of every node, INCLUDING unlinked (erased) ones —
  // a doomed zombie reader can still dereference an unlinked node, so a
  // state replay that skipped them would leave dangling reads-from.
  template <class Fn>
  void for_each_cell(Fn&& fn) {
    for (stm::Cell& head : heads_) fn(head);
    std::lock_guard<std::mutex> g(nodes_mu_);
    for (Node* n : nodes_) {
      fn(n->value);
      fn(n->next);
    }
  }

 private:
  struct Node {
    // The value cell is initialized through plain_store so recording
    // sessions observe the write (see TList::Node).
    Node(std::int64_t k, std::int64_t v) : key(k) {
      value.plain_store(static_cast<stm::word_t>(v));
    }
    const std::int64_t key;
    stm::Cell value;
    stm::Cell next;
  };

  static stm::word_t encode(Node* n) { return reinterpret_cast<stm::word_t>(n); }
  static Node* decode(stm::word_t w) { return reinterpret_cast<Node*>(w); }

  std::size_t bucket(std::int64_t key) const {
    auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 33) % heads_.size();
  }

  Node* new_node(std::int64_t key, std::int64_t value) {
    Node* n = new Node(key, value);
    std::lock_guard<std::mutex> g(nodes_mu_);
    nodes_.push_back(n);
    return n;
  }

  Stm& stm_;
  std::vector<stm::Cell> heads_;
  std::mutex nodes_mu_;
  std::vector<Node*> nodes_;
};

}  // namespace mtx::containers
