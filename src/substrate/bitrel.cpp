#include "substrate/bitrel.hpp"

#include <cassert>
#include <stdexcept>

namespace mtx {

namespace {

// C++17 stand-ins for std::popcount / std::countr_zero (<bit> is C++20).
inline int popcount64(std::uint64_t w) { return __builtin_popcountll(w); }
inline int ctz64(std::uint64_t w) { return __builtin_ctzll(w); }

}  // namespace

BitRel::BitRel(std::size_t n)
    : n_(n), words_per_row_((n + 63) / 64), bits_(n * words_per_row_, 0) {}

void BitRel::set(std::size_t a, std::size_t b, bool v) {
  assert(a < n_ && b < n_);
  const std::uint64_t mask = std::uint64_t{1} << (b % 64);
  if (v) {
    bits_[word_index(a, b)] |= mask;
  } else {
    bits_[word_index(a, b)] &= ~mask;
  }
}

bool BitRel::test(std::size_t a, std::size_t b) const {
  assert(a < n_ && b < n_);
  return (bits_[word_index(a, b)] >> (b % 64)) & 1;
}

std::size_t BitRel::count() const {
  std::size_t c = 0;
  for (std::uint64_t w : bits_) c += static_cast<std::size_t>(popcount64(w));
  return c;
}

BitRel& BitRel::operator|=(const BitRel& o) {
  if (n_ != o.n_) throw std::invalid_argument("BitRel size mismatch");
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= o.bits_[i];
  return *this;
}

BitRel& BitRel::operator&=(const BitRel& o) {
  if (n_ != o.n_) throw std::invalid_argument("BitRel size mismatch");
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= o.bits_[i];
  return *this;
}

BitRel& BitRel::operator-=(const BitRel& o) {
  if (n_ != o.n_) throw std::invalid_argument("BitRel size mismatch");
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~o.bits_[i];
  return *this;
}

BitRel BitRel::compose(const BitRel& o) const {
  if (n_ != o.n_) throw std::invalid_argument("BitRel size mismatch");
  BitRel r(n_);
  for (std::size_t a = 0; a < n_; ++a) {
    std::uint64_t* out = &r.bits_[a * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t row = bits_[a * words_per_row_ + w];
      while (row) {
        const std::size_t b = w * 64 + static_cast<std::size_t>(ctz64(row));
        row &= row - 1;
        const std::uint64_t* brow = &o.bits_[b * words_per_row_];
        for (std::size_t w2 = 0; w2 < words_per_row_; ++w2) out[w2] |= brow[w2];
      }
    }
  }
  return r;
}

BitRel BitRel::transposed() const {
  BitRel r(n_);
  for (std::size_t a = 0; a < n_; ++a) {
    const std::uint64_t abit = std::uint64_t{1} << (a % 64);
    const std::size_t aword = a / 64;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t row = bits_[a * words_per_row_ + w];
      while (row) {
        const std::size_t b = w * 64 + static_cast<std::size_t>(ctz64(row));
        row &= row - 1;
        r.bits_[b * words_per_row_ + aword] |= abit;
      }
    }
  }
  return r;
}

void BitRel::set_range(std::size_t a, std::size_t lo, std::size_t hi) {
  assert(a < n_ && hi <= n_);
  if (lo >= hi) return;
  std::uint64_t* row = &bits_[a * words_per_row_];
  const std::size_t wlo = lo / 64, whi = (hi - 1) / 64;
  const std::uint64_t first = ~std::uint64_t{0} << (lo % 64);
  const std::uint64_t last = ~std::uint64_t{0} >> (63 - (hi - 1) % 64);
  if (wlo == whi) {
    row[wlo] |= first & last;
    return;
  }
  row[wlo] |= first;
  for (std::size_t w = wlo + 1; w < whi; ++w) row[w] = ~std::uint64_t{0};
  row[whi] |= last;
}

bool BitRel::or_row(std::size_t into, const BitRel& src, std::size_t from) {
  if (n_ != src.n_) throw std::invalid_argument("BitRel size mismatch");
  std::uint64_t* dst = &bits_[into * words_per_row_];
  const std::uint64_t* s = &src.bits_[from * src.words_per_row_];
  std::uint64_t changed = 0;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    changed |= s[w] & ~dst[w];
    dst[w] |= s[w];
  }
  return changed != 0;
}

std::vector<std::size_t> BitRel::reachable_from(std::size_t a) const {
  // Accumulate the reachable set as a row bitmask; the frontier holds nodes
  // whose successor rows have not been absorbed yet.
  std::vector<std::uint64_t> seen(words_per_row_, 0);
  std::vector<std::size_t> frontier = successors(a);
  for (std::size_t b : frontier) seen[b / 64] |= std::uint64_t{1} << (b % 64);
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t b : frontier) {
      const std::uint64_t* row = &bits_[b * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        std::uint64_t fresh = row[w] & ~seen[w];
        seen[w] |= row[w];
        while (fresh) {
          next.push_back(w * 64 + static_cast<std::size_t>(ctz64(fresh)));
          fresh &= fresh - 1;
        }
      }
    }
    frontier = std::move(next);
  }
  std::vector<std::size_t> out;  // ascending by construction
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t word = seen[w];
    while (word) {
      out.push_back(w * 64 + static_cast<std::size_t>(ctz64(word)));
      word &= word - 1;
    }
  }
  return out;
}

BitRel BitRel::transitive_closure() const {
  BitRel r = *this;
  // Warshall: for each pivot k, every row that reaches k absorbs k's row.
  for (std::size_t k = 0; k < n_; ++k) {
    const std::uint64_t* krow = &r.bits_[k * words_per_row_];
    for (std::size_t a = 0; a < n_; ++a) {
      if (!r.test(a, k)) continue;
      std::uint64_t* arow = &r.bits_[a * words_per_row_];
      for (std::size_t w = 0; w < words_per_row_; ++w) arow[w] |= krow[w];
    }
  }
  return r;
}

bool BitRel::is_irreflexive() const {
  for (std::size_t a = 0; a < n_; ++a)
    if (test(a, a)) return false;
  return true;
}

bool BitRel::is_acyclic() const {
  // Kahn: repeatedly strip zero-indegree nodes; a cycle survives iff some
  // node is never stripped.  Self-loops never reach indegree zero, so they
  // are caught too (matching closure().is_irreflexive()).
  std::vector<std::size_t> indeg(n_, 0);
  for_each([&](std::size_t, std::size_t b) { ++indeg[b]; });
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n_; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  std::size_t stripped = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    ++stripped;
    for (std::size_t s : successors(v))
      if (--indeg[s] == 0) ready.push_back(s);
  }
  return stripped == n_;
}

bool BitRel::subset_of(const BitRel& o) const {
  if (n_ != o.n_) throw std::invalid_argument("BitRel size mismatch");
  for (std::size_t i = 0; i < bits_.size(); ++i)
    if (bits_[i] & ~o.bits_[i]) return false;
  return true;
}

BitRel BitRel::filtered(
    const std::function<bool(std::size_t, std::size_t)>& keep) const {
  BitRel r(n_);
  for_each([&](std::size_t a, std::size_t b) {
    if (keep(a, b)) r.set(a, b);
  });
  return r;
}

BitRel BitRel::restricted(const std::vector<bool>& mask) const {
  return filtered([&](std::size_t a, std::size_t b) { return mask[a] && mask[b]; });
}

void BitRel::for_each(
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t row = bits_[a * words_per_row_ + w];
      while (row) {
        const std::size_t b = w * 64 + static_cast<std::size_t>(ctz64(row));
        row &= row - 1;
        fn(a, b);
      }
    }
  }
}

std::vector<std::size_t> BitRel::successors(std::size_t a) const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t row = bits_[a * words_per_row_ + w];
    while (row) {
      out.push_back(w * 64 + static_cast<std::size_t>(ctz64(row)));
      row &= row - 1;
    }
  }
  return out;
}

std::vector<std::size_t> BitRel::topological_order() const {
  std::vector<std::size_t> indeg(n_, 0);
  for_each([&](std::size_t, std::size_t b) { ++indeg[b]; });
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n_; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  std::vector<std::size_t> order;
  order.reserve(n_);
  // Pop smallest-index-first so the order is deterministic.
  while (!ready.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i)
      if (ready[i] < ready[best]) best = i;
    const std::size_t v = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    order.push_back(v);
    for (std::size_t s : successors(v))
      if (--indeg[s] == 0) ready.push_back(s);
  }
  if (order.size() != n_) return {};
  return order;
}

std::string BitRel::str() const {
  std::string s = "{";
  bool first = true;
  for_each([&](std::size_t a, std::size_t b) {
    if (!first) s += ",";
    first = false;
    s += "(" + std::to_string(a) + "," + std::to_string(b) + ")";
  });
  return s + "}";
}

}  // namespace mtx
