// Combinatorial enumeration helpers for the litmus-execution enumerators:
// cartesian products (odometer), permutations, and an exploration budget so
// exhaustive checks stay bounded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

namespace mtx {

// Calls fn(choice) for every tuple in the cartesian product
// {0..radices[0]-1} x ... x {0..radices[k-1]-1}.  A radix of 0 makes the
// product empty.  Returns false if fn ever returned false (early stop).
bool for_each_product(const std::vector<std::size_t>& radices,
                      const std::function<bool(const std::vector<std::size_t>&)>& fn);

// Calls fn(perm) for every permutation of {0..n-1}.  Returns false on early
// stop.
bool for_each_permutation(std::size_t n,
                          const std::function<bool(const std::vector<std::size_t>&)>& fn);

// Total number of tuples in the product, saturating at max().
std::uint64_t product_size(const std::vector<std::size_t>& radices);

// Calls fn(choice) for tuples number `begin` (inclusive) to `end` (exclusive)
// of the product, in the same order as for_each_product (index 0 varies
// fastest).  Tuple numbering is the mixed-radix value of the choice vector,
// so a partition of [0, product_size) into slices visits every tuple exactly
// once — the frontier split the parallel enumerators rely on.  Returns false
// on early stop.
bool for_each_product_slice(const std::vector<std::size_t>& radices,
                            std::uint64_t begin, std::uint64_t end,
                            const std::function<bool(const std::vector<std::size_t>&)>& fn);

// A simple decrementing budget for bounded exhaustive exploration.  Each
// spend() consumes one unit; exhausted() turns true once the budget is gone,
// after which callers are expected to bail out and report truncation.
class Budget {
 public:
  explicit Budget(std::uint64_t units) : left_(units) {}
  bool spend(std::uint64_t units = 1) {
    if (left_ < units) {
      left_ = 0;
      exhausted_ = true;
      return false;
    }
    left_ -= units;
    return true;
  }
  bool exhausted() const { return exhausted_; }
  std::uint64_t remaining() const { return left_; }

 private:
  std::uint64_t left_;
  bool exhausted_ = false;
};

}  // namespace mtx
