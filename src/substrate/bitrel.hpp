// Dense binary relations over {0..n-1} as bit matrices.
//
// All derived relations of the paper (po, ww, wr, rw, the lifted l/x/c
// variants, and happens-before) are finite relations over the events of a
// trace.  Litmus traces have tens of events, so an n x n bit matrix with
// word-parallel row operations makes closures and compositions effectively
// free, and keeps the axiomatic checker simple and obviously correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mtx {

class BitRel {
 public:
  BitRel() : n_(0), words_per_row_(0) {}
  explicit BitRel(std::size_t n);

  std::size_t size() const { return n_; }

  void set(std::size_t a, std::size_t b, bool v = true);
  bool test(std::size_t a, std::size_t b) const;

  // Number of related pairs.
  std::size_t count() const;
  bool empty() const { return count() == 0; }

  // In-place union / intersection / difference.  Sizes must match.
  BitRel& operator|=(const BitRel& o);
  BitRel& operator&=(const BitRel& o);
  BitRel& operator-=(const BitRel& o);
  friend BitRel operator|(BitRel a, const BitRel& b) { return a |= b; }
  friend BitRel operator&(BitRel a, const BitRel& b) { return a &= b; }
  friend BitRel operator-(BitRel a, const BitRel& b) { return a -= b; }
  friend bool operator==(const BitRel& a, const BitRel& b) {
    return a.n_ == b.n_ && a.bits_ == b.bits_;
  }

  // Relational composition: (a,c) in result iff exists b with (a,b) in this
  // and (b,c) in o.
  BitRel compose(const BitRel& o) const;

  BitRel transposed() const;

  // ORs row `from` of `src` into row `into` of this relation (row = successor
  // set).  Returns true iff any new bit appeared.  `src` may alias *this.
  // This is the word-parallel primitive the semi-naive happens-before
  // closure repropagates newly-derived edges with.
  bool or_row(std::size_t into, const BitRel& src, std::size_t from);

  // Raw word access to row `a` (row_words() words of 64 bits each, column b
  // at word b/64, bit b%64; tail bits beyond n are zero and must stay so).
  // The word-parallel relation builders (Relations::compute_fast) construct
  // rows from precomputed masks through these instead of per-pair set().
  std::size_t row_words() const { return words_per_row_; }
  std::uint64_t* row(std::size_t a) { return &bits_[a * words_per_row_]; }
  const std::uint64_t* row(std::size_t a) const { return &bits_[a * words_per_row_]; }

  // Sets bits [lo, hi) of row a.
  void set_range(std::size_t a, std::size_t lo, std::size_t hi);

  // Single-source reachability: all b with a ->+ b (a itself only if it lies
  // on a cycle), in ascending order.  BFS over bit rows: O(reachable * n/64)
  // instead of the whole-relation closure.
  std::vector<std::size_t> reachable_from(std::size_t a) const;

  // Reflexive-free transitive closure (Warshall over bit rows).
  BitRel transitive_closure() const;

  bool is_irreflexive() const;
  // Acyclic iff no directed cycle: Kahn's algorithm over the edge list,
  // O(V + E) -- no closure materialized.
  bool is_acyclic() const;

  // True if every pair of this is also a pair of o.
  bool subset_of(const BitRel& o) const;

  // Keep only pairs (a,b) with keep(a,b).
  BitRel filtered(const std::function<bool(std::size_t, std::size_t)>& keep) const;

  // Restrict both endpoints to elements flagged in mask (mask.size()==n).
  BitRel restricted(const std::vector<bool>& mask) const;

  // Calls fn(a,b) for every related pair.
  void for_each(const std::function<void(std::size_t, std::size_t)>& fn) const;

  // Successors of a as indices.
  std::vector<std::size_t> successors(std::size_t a) const;

  // A topological order of the relation viewed as a DAG, or empty if cyclic.
  std::vector<std::size_t> topological_order() const;

  std::string str() const;  // "{(0,1),(2,3)}" for debugging

 private:
  std::size_t word_index(std::size_t a, std::size_t b) const {
    return a * words_per_row_ + b / 64;
  }
  std::size_t n_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace mtx
