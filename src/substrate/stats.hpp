// Streaming and batch statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mtx {

// Welford online mean/variance.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample by linear interpolation; p in [0,100].
double percentile(std::vector<double> sample, double p);

// Fixed-bucket log-scale latency histogram over the full uint64 range
// (nanoseconds by convention).  Values below 2^kSubBits land in exact
// unit-width buckets; above that, each power-of-two octave is split into
// 2^kSubBits geometric sub-buckets, so the quantile error is bounded by
// half a sub-bucket width — a relative error of at most 1/2^(kSubBits+1)
// (~3.1%), independent of magnitude.  The bucket array is a plain vector
// of counters, so histograms from different threads merge by addition and
// quantile queries are a single cumulative walk; this is the workload
// driver's per-thread latency sink (see src/kv/workload.hpp).
class LatencyHist {
 public:
  static constexpr std::size_t kSubBits = 4;                 // 16 sub-buckets
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBuckets = (64 - kSubBits) * kSub + kSub;

  LatencyHist() : counts_(kBuckets, 0) {}

  void add(std::uint64_t v);
  void merge(const LatencyHist& other);

  std::uint64_t count() const { return total_; }
  std::uint64_t min() const { return total_ ? min_ : 0; }
  std::uint64_t max() const { return total_ ? max_ : 0; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  // Value at quantile q in [0, 1] (nearest-rank over the bucket counts,
  // reported as the bucket midpoint).  0 when empty.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p95() const { return quantile(0.95); }
  std::uint64_t p99() const { return quantile(0.99); }

  // JSON object fragment — count, mean, min/max and the standard quantiles
  // (nanosecond fields) — one dump shared by every reporter (bench_kv,
  // bench_net, the network load generator), so artifact field names never
  // drift between benchmarks.
  std::string to_json() const;

  // Bucket geometry (exposed for the oracle tests).
  static std::size_t bucket_of(std::uint64_t v);
  static std::uint64_t bucket_lower(std::size_t i);
  static std::uint64_t bucket_upper(std::size_t i);  // inclusive

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mtx
