// Streaming and batch statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mtx {

// Welford online mean/variance.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample by linear interpolation; p in [0,100].
double percentile(std::vector<double> sample, double p);

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mtx
