// Sparse directed-graph utilities used by the enumerators: cycle detection,
// topological sort, strongly connected components.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace mtx {

class Digraph {
 public:
  explicit Digraph(std::size_t n) : adj_(n) {}

  std::size_t size() const { return adj_.size(); }
  void add_edge(std::size_t a, std::size_t b) { adj_[a].push_back(b); }
  const std::vector<std::size_t>& successors(std::size_t a) const { return adj_[a]; }

  bool has_cycle() const;

  // Kahn topological order (lowest-index-first among ready nodes, so the
  // result is deterministic); nullopt when cyclic.
  std::optional<std::vector<std::size_t>> topo_order() const;

  // Tarjan SCCs; components are emitted in reverse topological order.
  std::vector<std::vector<std::size_t>> sccs() const;

  // Nodes reachable from `from` (excluding `from` itself unless on a cycle).
  std::vector<bool> reachable_from(std::size_t from) const;

 private:
  std::vector<std::vector<std::size_t>> adj_;
};

}  // namespace mtx
