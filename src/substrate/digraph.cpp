#include "substrate/digraph.hpp"

#include <algorithm>

namespace mtx {

bool Digraph::has_cycle() const { return !topo_order().has_value(); }

std::optional<std::vector<std::size_t>> Digraph::topo_order() const {
  const std::size_t n = adj_.size();
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b : adj_[a]) ++indeg[b];
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    const std::size_t v = *it;
    ready.erase(it);
    order.push_back(v);
    for (std::size_t s : adj_[v])
      if (--indeg[s] == 0) ready.push_back(s);
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

namespace {

struct TarjanState {
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<int> index, low;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> out;
  int counter = 0;

  explicit TarjanState(const std::vector<std::vector<std::size_t>>& a)
      : adj(a), index(a.size(), -1), low(a.size(), 0), on_stack(a.size(), false) {}

  void visit(std::size_t v) {
    // Iterative Tarjan to avoid deep recursion on long chains.
    struct Frame {
      std::size_t v;
      std::size_t next_child;
    };
    std::vector<Frame> frames{{v, 0}};
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_child < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.next_child++];
        if (index[w] == -1) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<std::size_t> comp;
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == f.v) break;
          }
          out.push_back(std::move(comp));
        }
        const std::size_t child = f.v;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().v] = std::min(low[frames.back().v], low[child]);
      }
    }
  }
};

}  // namespace

std::vector<std::vector<std::size_t>> Digraph::sccs() const {
  TarjanState st(adj_);
  for (std::size_t v = 0; v < adj_.size(); ++v)
    if (st.index[v] == -1) st.visit(v);
  return st.out;
}

std::vector<bool> Digraph::reachable_from(std::size_t from) const {
  std::vector<bool> seen(adj_.size(), false);
  std::vector<std::size_t> work;
  for (std::size_t s : adj_[from])
    if (!seen[s]) {
      seen[s] = true;
      work.push_back(s);
    }
  while (!work.empty()) {
    const std::size_t v = work.back();
    work.pop_back();
    for (std::size_t s : adj_[v])
      if (!seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
  }
  return seen;
}

}  // namespace mtx
