// Generic fixed-slot single-producer / single-consumer ring — the
// cross-reactor mailbox primitive of the serving tier.
//
// Same design as record::EventRing (monotone uint64 head/tail counters,
// power-of-two slot count so position arithmetic is one mask, producer and
// consumer indices on separate cache lines), generalized over the item type
// and with MOVE semantics: mailbox items own heap state (a shipped batch
// run carries its WriteOp vector), so slots are moved in on push and moved
// out on drain rather than copied.
//
// Unlike EventRing there is no drop path: a mailbox item is a request some
// connection is owed a response for, so losing one silently would wedge
// that connection forever.  push() spins for a slot when the ring is
// momentarily full — the consumer is another live reactor draining its
// mailboxes every loop iteration, so the wait is bounded by one drain
// pass — and try_push() is the non-blocking probe for callers that can
// park the item elsewhere.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mtx {

template <class T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity = 1u << 10) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Producer: move `v` into the ring; false (item untouched) when full.
  bool try_push(T& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= slots_.size())
      return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Producer: move `v` into the ring, spinning while full (see header).
  void push(T v) {
    while (!try_push(v)) {}
  }

  // Consumer: move at most `max` items out into `out` (appended).
  std::size_t drain(std::vector<T>& out,
                    std::size_t max = static_cast<std::size_t>(-1)) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    std::size_t n = static_cast<std::size_t>(t - h);
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(std::move(slots_[(h + i) & mask_]));
    head_.store(h + n, std::memory_order_release);
    return n;
  }

  // Approximate backlog (exact when the producer is quiescent).
  std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer
};

}  // namespace mtx
