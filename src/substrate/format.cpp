#include "substrate/format.hpp"

#include <algorithm>
#include <cstdio>

namespace mtx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out += cell;
      out.append(width[c] - cell.size(), ' ');
      if (c + 1 < headers_.size()) out += " | ";
    }
    out += "\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c], '-');
    if (c + 1 < headers_.size()) out += "-+-";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    out += digits[i];
    const std::size_t left = len - 1 - i;
    if (left > 0 && left % 3 == 0) out += ',';
  }
  return out;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace mtx
