// Sharded string-key dedup set for parallel enumeration.
//
// Canonical trace keys arrive from many worker threads at once; a single
// mutex-guarded std::set would serialize them.  Keys hash to one of S
// independently locked shards, so concurrent inserts only contend when they
// land in the same shard.  Membership is a pure function of the key set, so
// the deduplicated result is schedule-independent — the property the
// campaign determinism tests pin down.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace mtx {

class ShardedKeySet {
 public:
  explicit ShardedKeySet(std::size_t shards = 16) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  // True iff the key was newly inserted (first caller wins).
  bool insert(const std::string& key) {
    Shard& s = *shards_[std::hash<std::string>{}(key) % shards_.size()];
    std::lock_guard<std::mutex> lk(s.m);
    return s.keys.insert(key).second;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->m);
      n += s->keys.size();
    }
    return n;
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex m;
    std::unordered_set<std::string> keys;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mtx
