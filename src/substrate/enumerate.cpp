#include "substrate/enumerate.hpp"

#include <algorithm>
#include <limits>

namespace mtx {

bool for_each_product(const std::vector<std::size_t>& radices,
                      const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  for (std::size_t r : radices)
    if (r == 0) return true;  // empty product: vacuously complete
  std::vector<std::size_t> choice(radices.size(), 0);
  for (;;) {
    if (!fn(choice)) return false;
    std::size_t i = 0;
    while (i < radices.size()) {
      if (++choice[i] < radices[i]) break;
      choice[i] = 0;
      ++i;
    }
    if (i == radices.size()) return true;
  }
}

bool for_each_permutation(std::size_t n,
                          const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    if (!fn(perm)) return false;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return true;
}

bool for_each_product_slice(const std::vector<std::size_t>& radices,
                            std::uint64_t begin, std::uint64_t end,
                            const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  const std::uint64_t total = product_size(radices);
  if (begin >= total || begin >= end) return true;
  end = std::min(end, total);
  // Decode `begin` into mixed-radix digits (digit 0 least significant).
  std::vector<std::size_t> choice(radices.size(), 0);
  std::uint64_t rem = begin;
  for (std::size_t i = 0; i < radices.size(); ++i) {
    choice[i] = static_cast<std::size_t>(rem % radices[i]);
    rem /= radices[i];
  }
  for (std::uint64_t k = begin; k < end; ++k) {
    if (!fn(choice)) return false;
    std::size_t i = 0;
    while (i < radices.size()) {
      if (++choice[i] < radices[i]) break;
      choice[i] = 0;
      ++i;
    }
  }
  return true;
}

std::uint64_t product_size(const std::vector<std::size_t>& radices) {
  std::uint64_t total = 1;
  for (std::size_t r : radices) {
    if (r == 0) return 0;
    if (total > std::numeric_limits<std::uint64_t>::max() / r)
      return std::numeric_limits<std::uint64_t>::max();
    total *= r;
  }
  return total;
}

}  // namespace mtx
