#include "substrate/enumerate.hpp"

#include <algorithm>
#include <limits>

namespace mtx {

bool for_each_product(const std::vector<std::size_t>& radices,
                      const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  for (std::size_t r : radices)
    if (r == 0) return true;  // empty product: vacuously complete
  std::vector<std::size_t> choice(radices.size(), 0);
  for (;;) {
    if (!fn(choice)) return false;
    std::size_t i = 0;
    while (i < radices.size()) {
      if (++choice[i] < radices[i]) break;
      choice[i] = 0;
      ++i;
    }
    if (i == radices.size()) return true;
  }
}

bool for_each_permutation(std::size_t n,
                          const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    if (!fn(perm)) return false;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return true;
}

std::uint64_t product_size(const std::vector<std::size_t>& radices) {
  std::uint64_t total = 1;
  for (std::size_t r : radices) {
    if (r == 0) return 0;
    if (total > std::numeric_limits<std::uint64_t>::max() / r)
      return std::numeric_limits<std::uint64_t>::max();
    total *= r;
  }
  return total;
}

}  // namespace mtx
