#include "substrate/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace mtx {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  return below(den) < num;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Zipfian::Zipfian(std::uint64_t n, double theta)
    : n_(n ? n : 1), theta_(theta) {
  if (theta_ < 0.0 || theta_ >= 1.0) throw std::invalid_argument("Zipfian: theta must be in [0, 1)");
  zetan_ = 0.0;
  for (std::uint64_t i = 1; i <= n_; ++i)
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  const double zeta2 = n_ >= 2 ? 1.0 + std::pow(0.5, theta_) : zetan_;
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

std::uint64_t Zipfian::next(Rng& rng) const {
  const double u = rng.uniform01();
  if (n_ == 1) return 0;
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const auto r = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return r >= n_ ? n_ - 1 : r;
}

}  // namespace mtx
