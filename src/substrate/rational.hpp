// Exact rational arithmetic for timestamps.
//
// The paper models write timestamps as rationals (Q) so that a new timestamp
// can always be inserted strictly between two existing ones (needed, e.g., by
// Lemma A.6, which delays the timestamp of a write while keeping the rest of
// the coherence order fixed).  This is a small value type: int64 numerator
// and denominator kept in lowest terms with a positive denominator.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mtx {

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const { return Rational(-num_, den_); }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  // Exact three-way comparison: negative / zero / positive like strcmp.
  // (Written out as relational operators to stay within C++17.)
  friend int compare(const Rational& a, const Rational& b);
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
  friend bool operator<(const Rational& a, const Rational& b) { return compare(a, b) < 0; }
  friend bool operator>(const Rational& a, const Rational& b) { return compare(a, b) > 0; }
  friend bool operator<=(const Rational& a, const Rational& b) { return compare(a, b) <= 0; }
  friend bool operator>=(const Rational& a, const Rational& b) { return compare(a, b) >= 0; }

  // The midpoint (a+b)/2: always strictly between distinct a and b.
  static Rational midpoint(const Rational& a, const Rational& b);

  std::string str() const;

 private:
  void normalize();
  std::int64_t num_;
  std::int64_t den_;  // > 0 invariant
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace mtx
