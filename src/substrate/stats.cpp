#include "substrate/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mtx {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (p <= 0) return sample.front();
  if (p >= 100) return sample.back();
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  double frac = span > 0 ? (x - lo_) / span : 0.0;
  frac = std::clamp(frac, 0.0, 1.0);
  std::size_t i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
  ++total_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double span = hi_ - lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b0 = lo_ + span * static_cast<double>(i) / static_cast<double>(counts_.size());
    char label[64];
    std::snprintf(label, sizeof label, "%10.3g | ", b0);
    out += label;
    const std::size_t bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                                 static_cast<double>(width));
    out.append(bar, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace mtx
