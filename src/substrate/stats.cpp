#include "substrate/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mtx {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (p <= 0) return sample.front();
  if (p >= 100) return sample.back();
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

std::size_t LatencyHist::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<std::size_t>(v);
  const unsigned bw = 64u - static_cast<unsigned>(__builtin_clzll(v));
  const unsigned shift = bw - 1 - static_cast<unsigned>(kSubBits);
  const std::size_t sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
  return (static_cast<std::size_t>(bw) - kSubBits) * kSub + sub;
}

std::uint64_t LatencyHist::bucket_lower(std::size_t i) {
  if (i < kSub) return i;
  const std::size_t g = i / kSub;       // == bit width minus kSubBits
  const std::size_t sub = i % kSub;
  return (kSub + sub) << (g - 1);
}

std::uint64_t LatencyHist::bucket_upper(std::size_t i) {
  if (i < kSub) return i;
  const std::size_t g = i / kSub;
  return bucket_lower(i) + ((std::uint64_t{1} << (g - 1)) - 1);
}

void LatencyHist::add(std::uint64_t v) {
  if (total_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++counts_[bucket_of(v)];
  ++total_;
  sum_ += static_cast<double>(v);
}

void LatencyHist::merge(const LatencyHist& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

std::uint64_t LatencyHist::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the value whose cumulative count first exceeds the rank.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > rank) {
      const std::uint64_t lo = bucket_lower(i);
      const std::uint64_t hi = bucket_upper(i);
      return lo + (hi - lo) / 2;
    }
  }
  return max_;
}

std::string LatencyHist::to_json() const {
  char mean_buf[32];
  std::snprintf(mean_buf, sizeof(mean_buf), "%.1f", mean());
  return "{\"count\": " + std::to_string(count()) +
         ", \"mean_ns\": " + mean_buf +
         ", \"min_ns\": " + std::to_string(min()) +
         ", \"max_ns\": " + std::to_string(max()) +
         ", \"p50_ns\": " + std::to_string(p50()) +
         ", \"p95_ns\": " + std::to_string(p95()) +
         ", \"p99_ns\": " + std::to_string(p99()) + "}";
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  double frac = span > 0 ? (x - lo_) / span : 0.0;
  frac = std::clamp(frac, 0.0, 1.0);
  std::size_t i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
  ++total_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double span = hi_ - lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b0 = lo_ + span * static_cast<double>(i) / static_cast<double>(counts_.size());
    char label[64];
    std::snprintf(label, sizeof label, "%10.3g | ", b0);
    out += label;
    const std::size_t bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                                 static_cast<double>(width));
    out.append(bar, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace mtx
