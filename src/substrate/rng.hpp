// Deterministic PRNG (splitmix64 seeding + xoshiro256**) for the randomized
// property tests and benchmark workload generators.  Deterministic seeding
// makes every test failure reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace mtx {

std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  // Uniform in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n);

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  double uniform01();

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mtx
