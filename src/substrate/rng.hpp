// Deterministic PRNG (splitmix64 seeding + xoshiro256**) for the randomized
// property tests and benchmark workload generators.  Deterministic seeding
// makes every test failure reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace mtx {

std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  // Uniform in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n);

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  double uniform01();

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

// Zipfian(θ) key-rank distribution over [0, n) — the YCSB hot-key model
// (Gray et al.'s rejection-free inversion).  Rank 0 is the hottest key and
// frequencies fall off as 1/(rank+1)^θ; θ→0 degenerates to uniform and the
// YCSB default is θ = 0.99.  Construction is O(n) (the zeta(n, θ) prefix
// sum); draws are O(1) and consume exactly one Rng value, so the stream of
// ranks is a pure function of the seed — two generators fed same-seeded
// Rngs produce identical sequences (pinned by tests/test_substrate.cpp).
// The generator itself is immutable after construction: one instance can be
// shared by any number of threads, each drawing through its own Rng.
class Zipfian {
 public:
  // Requires n >= 1 and θ in [0, 1).
  explicit Zipfian(std::uint64_t n, double theta = 0.99);

  // Rank in [0, n); 0 is the most frequent.
  std::uint64_t next(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }
  // zeta(n, θ): exposed so tests can compute the exact pmf.
  double zetan() const { return zetan_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

}  // namespace mtx
