#include "substrate/rational.hpp"

#include <cassert>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace mtx {

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) throw std::invalid_argument("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::invalid_argument("Rational: divide by zero");
  return Rational(num_ * o.den_, den_ * o.num_);
}

int compare(const Rational& a, const Rational& b) {
  // Cross-multiply; operands in this codebase are tiny (timestamps of litmus
  // traces), so int64 overflow is not a practical concern, but use __int128
  // to keep the comparison exact regardless.
  const __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
  const __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

Rational Rational::midpoint(const Rational& a, const Rational& b) {
  return (a + b) / Rational(2);
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.str();
}

}  // namespace mtx
