// Text-table rendering used by the litmus-verdict harness and benchmark
// summaries so the reproduction output reads like the paper's figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mtx {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  // Render with aligned columns, a header underline, and "| " separators.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience numeric formatting.
std::string with_commas(std::uint64_t n);
std::string fixed(double v, int decimals);

}  // namespace mtx
