// Thread coordination for stress tests and benchmarks: a spinning barrier
// (so threads release together without kernel wakeup jitter) and a ThreadTeam
// that runs one function per thread and joins.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace mtx {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties)
      : parties_(parties), waiting_(0), generation_(0) {}

  // Blocks (spinning) until all parties arrive.
  void arrive_and_wait();

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_;
  std::atomic<std::uint64_t> generation_;
};

// Runs fn(tid) on `threads` std::threads and joins them all.  Exceptions from
// workers terminate (tests should not throw across threads).
void run_team(std::size_t threads, const std::function<void(std::size_t)>& fn);

// Hardware concurrency clamped to [1, cap].
std::size_t hw_threads(std::size_t cap = 64);

}  // namespace mtx
