// Thread coordination: a spinning barrier (so stress-test threads release
// together without kernel wakeup jitter), a ThreadTeam that runs one function
// per thread and joins, and a work-stealing ThreadPool with deterministic
// result collection (parallel_map) for the litmus campaign engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mtx {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties)
      : parties_(parties), waiting_(0), generation_(0) {}

  // Blocks (spinning) until all parties arrive.
  void arrive_and_wait();

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_;
  std::atomic<std::uint64_t> generation_;
};

// Runs fn(tid) on `threads` std::threads and joins them all.  Exceptions from
// workers terminate (tests should not throw across threads).
void run_team(std::size_t threads, const std::function<void(std::size_t)>& fn);

// Hardware concurrency clamped to [1, cap].
std::size_t hw_threads(std::size_t cap = 64);

// Work-stealing thread pool.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (depth-first,
// cache-friendly) and steals FIFO from victims (breadth-first, so stolen
// units are the big shallow subtrees).  Deques are mutex-guarded — the work
// units here (exploring an enumeration subtree, checking one litmus verdict)
// are milliseconds to seconds, so queue overhead is noise and the simple
// scheme stays ThreadSanitizer-clean.
//
// Scheduling is nondeterministic; determinism is recovered at collection
// time: parallel_map writes result i of task i into slot i, so the output
// vector is a pure function of the inputs regardless of interleaving.
class ThreadPool {
 public:
  // 0 → hw_threads().  The pool always has at least one worker.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task.  Tasks must not throw (use parallel_map for exception
  // capture).  May be called from worker threads (nested submission).
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished running.
  void wait_idle();

 private:
  struct Queue {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> pending_{0};  // submitted, not yet finished
  std::atomic<std::size_t> queued_{0};   // sitting in a deque, not yet popped
  std::atomic<bool> stop_{false};
  std::mutex wake_m_;
  std::condition_variable wake_cv_;   // workers wait here when starved
  std::mutex idle_m_;
  std::condition_variable idle_cv_;   // wait_idle waits here
};

// Runs fn(0..n-1) on the pool and returns {fn(0), ..., fn(n-1)} in index
// order — the deterministic collection primitive.  The first exception any
// task throws is rethrown on the caller after all tasks finish.  Must not be
// called from inside a pool task (wait_idle would deadlock on nesting).
template <typename R>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t n,
                            const std::function<R(std::size_t)>& fn) {
  static_assert(!std::is_same<R, bool>::value,
                "std::vector<bool> bit-packs: concurrent slot writes would "
                "race on shared bytes; collect char/int instead");
  std::vector<R> results(n);
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&results, &errors, &fn, i] {
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

}  // namespace mtx
