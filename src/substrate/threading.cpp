#include "substrate/threading.hpp"

#include <algorithm>

namespace mtx {

void SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    waiting_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  while (generation_.load(std::memory_order_acquire) == gen) {
    // spin; yield occasionally to be oversubscription-friendly
    std::this_thread::yield();
  }
}

void run_team(std::size_t threads, const std::function<void(std::size_t)>& fn) {
  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) team.emplace_back(fn, t);
  for (auto& th : team) th.join();
}

std::size_t hw_threads(std::size_t cap) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw ? hw : 1, 1, cap);
}

}  // namespace mtx
