#include "substrate/threading.hpp"

#include <algorithm>
#include <chrono>

namespace mtx {

void SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    waiting_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  while (generation_.load(std::memory_order_acquire) == gen) {
    // spin; yield occasionally to be oversubscription-friendly
    std::this_thread::yield();
  }
}

void run_team(std::size_t threads, const std::function<void(std::size_t)>& fn) {
  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) team.emplace_back(fn, t);
  for (auto& th : team) th.join();
}

std::size_t hw_threads(std::size_t cap) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw ? hw : 1, 1, cap);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads ? threads : hw_threads();
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    // Store + notify under the wake mutex, like submit(): a notify landing
    // between a worker's predicate check and its sleep would be lost and
    // shutdown would stall on the wait_for backstop.
    std::lock_guard<std::mutex> lk(wake_m_);
    stop_.store(true, std::memory_order_release);
    wake_cv_.notify_all();
  }
  for (auto& th : workers_) th.join();
}

void ThreadPool::submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t home =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lk(queues_[home]->m);
    queues_[home]->q.push_back(std::move(task));
    // Count while still holding the queue lock: a worker that pops this task
    // first would otherwise decrement queued_ through zero.
    queued_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Notify under the wake mutex so the increment cannot slip between a
  // starved worker's predicate check and its sleep (lost wakeup).
  std::lock_guard<std::mutex> lk(wake_m_);
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own queue: LIFO.
  {
    Queue& mine = *queues_[self];
    std::lock_guard<std::mutex> lk(mine.m);
    if (!mine.q.empty()) {
      out = std::move(mine.q.back());
      mine.q.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal sweep: FIFO from each victim, starting after self.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.front());
      victim.q.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(idle_m_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_m_);
    if (stop_.load(std::memory_order_acquire)) return;
    // Bounded wait as a belt-and-braces backstop; the queued_ predicate plus
    // submit's locked notify make lost wakeups impossible in the first place.
    wake_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(idle_m_);
  idle_cv_.wait(lk, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

}  // namespace mtx
