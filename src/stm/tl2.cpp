#include "stm/tl2.hpp"

#include <thread>

namespace mtx::stm {

void backoff_pause(unsigned attempt) {
  if (attempt < 4) return;
  if (attempt < 10) {
    for (unsigned i = 0; i < (1u << std::min(attempt, 16u)); ++i)
      __builtin_ia32_pause();
    return;
  }
  std::this_thread::yield();
}

word_t Tl2Stm::Tx::read(const Cell& cell) {
  TxObserver* obs = tx_observer();
  // Read-own-write.
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it)
    if (it->cell == &cell) {
      if (obs) obs->on_buffered_read();
      return it->value;
    }

  std::atomic<word_t>& orec = stm_.orecs_.for_addr(&cell);
  for (;;) {
    const word_t v1 = orec.load(std::memory_order_acquire);
    const word_t val = obs ? obs->tx_read(cell)
                           : cell.raw().load(std::memory_order_acquire);
    const word_t v2 = orec.load(std::memory_order_acquire);
    if (v1 != v2) {  // torn: a commit raced us, resample
      if (obs) obs->retract_read();
      continue;
    }
    if (orec_locked(v1) || orec_version(v1) > rv_) {
      if (obs) obs->retract_read();
      throw TxConflict{};
    }
    reads_.push_back({&orec, v1});
    return val;
  }
}

void Tl2Stm::Tx::write(Cell& cell, word_t v) {
  for (auto& w : writes_) {
    if (w.cell == &cell) {
      w.value = v;
      return;
    }
  }
  writes_.push_back({&cell, v});
}

void Tl2Stm::Tx::commit() {
  TxObserver* obs = tx_observer();
  if (writes_.empty()) {
    // Read-only: the read set was validated incrementally against rv.
    if (obs) obs->on_commit();
    finished_ = true;
    stm_.registry_.end_txn();
    return;
  }

  // Lock the write set in a canonical order (by orec address) to avoid
  // deadlock between concurrent committers.
  std::vector<std::atomic<word_t>*> locks;
  locks.reserve(writes_.size());
  for (const WriteEntry& w : writes_) locks.push_back(&stm_.orecs_.for_addr(w.cell));
  std::sort(locks.begin(), locks.end());
  locks.erase(std::unique(locks.begin(), locks.end()), locks.end());

  std::vector<std::pair<std::atomic<word_t>*, word_t>> held;
  held.reserve(locks.size());
  auto release_held = [&]() {
    for (auto& [orec, old] : held) orec->store(old, std::memory_order_release);
  };

  for (std::atomic<word_t>* orec : locks) {
    word_t cur = orec->load(std::memory_order_acquire);
    bool locked = false;
    for (int spin = 0; spin < 64; ++spin) {
      if (orec_locked(cur)) {
        cur = orec->load(std::memory_order_acquire);
        continue;
      }
      if (orec_version(cur) > rv_) break;  // newer than our snapshot
      if (orec->compare_exchange_weak(cur, make_locked(1), std::memory_order_acq_rel)) {
        locked = true;
        break;
      }
    }
    if (!locked) {
      release_held();
      throw TxConflict{};
    }
    held.emplace_back(orec, cur);
  }

  const int nd = stm_.registry_.ndomains();
  const word_t wv = stm_.clocks_.advance(domain_, nd);

  // Validate the read set unless no other commit intervened.  With a single
  // clock, wv == rv+1 proves exactly that; with sharded clocks two
  // committers in different domains can both draw rv+1 (versions are unique
  // only per domain), so the shortcut is sound only when no domains exist.
  if (nd > 1 || rv_ + 1 != wv) {
    for (const ReadEntry& r : reads_) {
      const word_t cur = r.orec->load(std::memory_order_acquire);
      bool owned = false;
      for (auto& [orec, old] : held)
        if (orec == r.orec && old == r.seen) owned = true;
      if (!owned && cur != r.seen) {
        release_held();
        throw TxConflict{};
      }
    }
  }

  // Publish the redo log, then release the orecs at the new version.
  for (const WriteEntry& w : writes_) {
    if (obs)
      obs->tx_publish(*w.cell, w.value);
    else
      w.cell->raw().store(w.value, std::memory_order_release);
  }
  for (auto& [orec, old] : held)
    orec->store(make_version(wv), std::memory_order_release);

  if (obs) obs->on_commit();
  finished_ = true;
  stm_.registry_.end_txn();
}

void Tl2Stm::Tx::rollback() {
  // Lazy versioning: nothing was published; just clear and deregister.
  if (TxObserver* obs = tx_observer()) obs->on_abort();
  writes_.clear();
  reads_.clear();
  finished_ = true;
  stm_.registry_.end_txn();
}

}  // namespace mtx::stm
