// TL2-style lazy-versioning STM (the class of STMs in Example 3.5).
//
//   - Writes are buffered in a redo log until commit.
//   - Reads validate against the version clock sampled at begin (rv): seeing
//     an orec version newer than rv, or a locked orec, aborts — this
//     post-validation gives opacity (no zombie ever observes an inconsistent
//     snapshot).
//   - Commit: lock the write-set orecs, advance the clock to wv, re-validate
//     the read set, publish the redo log, release orecs at version wv.
//
// The version clock is sharded per quiescence domain (DomainClocks): a
// transaction annotated with domain d commits by advancing d's clock to one
// past the max of all clocks, so committers in disjoint domains stop
// contending on one counter while every published version stays globally
// comparable (see clock.hpp).  A domain-d transaction samples rv from its
// own domain's clock on the first attempt — cheap, and sufficient when the
// last writer of its cells was a domain-d committer — and escalates to the
// max over all clocks on retry, which restores progress when a whole-store
// (domain 0) transaction wrote the cells and only bumped its own clock.
//
// Mixed-mode behavior matches §5's implementation model: a transactional
// commit is synchronized with transactions it has a direct dependency with,
// but plain accesses racing with buffered writes need a quiescence fence
// (Tl2Stm::quiesce) for privatization.  quiesce(domain) waits only for
// transactions annotated with that domain (plus whole-store ones).
#pragma once

#include <algorithm>
#include <vector>

#include "stm/api.hpp"
#include "stm/clock.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

class Tl2Stm {
 public:
  Tl2Stm() = default;

  class Tx {
   public:
    explicit Tx(Tl2Stm& stm, unsigned attempt = 0)
        : stm_(stm), domain_(QuiescenceRegistry::clamp_domain(tl_txn_domain)) {
      const int nd = stm_.registry_.ndomains();
      // Domain-annotated first attempts read only their own clock; retries
      // and whole-store transactions pay the max scan (see header comment).
      rv_ = (domain_ == 0 || attempt > 0) ? stm_.clocks_.max_now(nd)
                                          : stm_.clocks_.now(domain_);
      stm_.registry_.begin_txn();
      if (TxObserver* obs = tx_observer()) obs->on_begin();
    }
    ~Tx() {
      if (!finished_) stm_.registry_.end_txn();
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    word_t read(const Cell& cell);
    void write(Cell& cell, word_t v);
    [[noreturn]] void user_abort() { throw TxUserAbort{}; }

    // Internal: called by atomically().
    void commit();
    void rollback();

   private:
    struct WriteEntry {
      Cell* cell;
      word_t value;
    };
    struct ReadEntry {
      std::atomic<word_t>* orec;
      word_t seen;
    };

    Tl2Stm& stm_;
    int domain_;
    word_t rv_;
    std::vector<WriteEntry> writes_;
    std::vector<ReadEntry> reads_;
    bool finished_ = false;

    friend class Tl2Stm;
  };

  template <typename F>
  bool atomically(F&& f) {
    for (unsigned attempt = 0;; ++attempt) {
      Tx tx(*this, attempt);
      try {
        f(tx);
        tx.commit();
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return true;
      } catch (const TxConflict&) {
        tx.rollback();
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        backoff_pause(attempt);
      } catch (const TxUserAbort&) {
        tx.rollback();
        stats_.user_aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }

  // Whole-store quiescence fence: waits for every in-flight transaction
  // (HBCQ/HBQB over all locations).
  void quiesce() {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence();
    if (TxObserver* obs = tx_observer()) obs->on_fence();
  }

  // Scoped quiescence fence: waits only for transactions annotated with
  // d's domain (plus whole-store ones); recorded as covering d's cells.
  void quiesce(const QuiesceDomain& d) {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence(d.id);
    if (TxObserver* obs = tx_observer()) obs->on_fence_scoped(d);
  }

  int create_domain() { return registry_.create_domain(); }

  StmStats& stats() { return stats_; }
  QuiescenceRegistry& registry() { return registry_; }

 private:
  DomainClocks clocks_;
  OrecTable orecs_;
  QuiescenceRegistry registry_;
  StmStats stats_;
};

}  // namespace mtx::stm
