// TL2-style lazy-versioning STM (the class of STMs in Example 3.5).
//
//   - Writes are buffered in a redo log until commit.
//   - Reads validate against the global version clock sampled at begin
//     (rv): seeing an orec version newer than rv, or a locked orec, aborts —
//     this post-validation gives opacity (no zombie ever observes an
//     inconsistent snapshot).
//   - Commit: lock the write-set orecs, advance the clock to wv, re-validate
//     the read set, publish the redo log, release orecs at version wv.
//
// Mixed-mode behavior matches §5's implementation model: a transactional
// commit is synchronized with transactions it has a direct dependency with,
// but plain accesses racing with buffered writes need a quiescence fence
// (Tl2Stm::quiesce) for privatization.
#pragma once

#include <algorithm>
#include <vector>

#include "stm/api.hpp"
#include "stm/clock.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

class Tl2Stm {
 public:
  Tl2Stm() : registry_(clock_) {}

  class Tx {
   public:
    explicit Tx(Tl2Stm& stm) : stm_(stm), rv_(stm.clock_.now()) {
      stm_.registry_.begin_txn();
      if (TxObserver* obs = tx_observer()) obs->on_begin();
    }
    ~Tx() {
      if (!finished_) stm_.registry_.end_txn();
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    word_t read(const Cell& cell);
    void write(Cell& cell, word_t v);
    [[noreturn]] void user_abort() { throw TxUserAbort{}; }

    // Internal: called by atomically().
    void commit();
    void rollback();

   private:
    struct WriteEntry {
      Cell* cell;
      word_t value;
    };
    struct ReadEntry {
      std::atomic<word_t>* orec;
      word_t seen;
    };

    Tl2Stm& stm_;
    word_t rv_;
    std::vector<WriteEntry> writes_;
    std::vector<ReadEntry> reads_;
    bool finished_ = false;

    friend class Tl2Stm;
  };

  template <typename F>
  bool atomically(F&& f) {
    for (unsigned attempt = 0;; ++attempt) {
      Tx tx(*this);
      try {
        f(tx);
        tx.commit();
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return true;
      } catch (const TxConflict&) {
        tx.rollback();
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        backoff_pause(attempt);
      } catch (const TxUserAbort&) {
        tx.rollback();
        stats_.user_aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }

  // Quiescence fence: waits for every in-flight transaction (HBCQ/HBQB).
  void quiesce() {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence();
    if (TxObserver* obs = tx_observer()) obs->on_fence();
  }

  StmStats& stats() { return stats_; }
  GlobalClock& clock() { return clock_; }

 private:
  GlobalClock clock_;
  OrecTable orecs_;
  QuiescenceRegistry registry_;
  StmStats stats_;
};

}  // namespace mtx::stm
