#include "stm/orec.hpp"

// OrecTable is header-only; this translation unit anchors the library target
// and provides a home for future non-inline helpers.
namespace mtx::stm {}
