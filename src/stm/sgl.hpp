// Single-global-lock STM: every transaction takes one mutex.  This gives
// "global lock atomicity" — the semantics Example 3.2 shows the paper's
// model deliberately does NOT require — and serves as the performance
// baseline every STM paper compares against.
//
// An undo log supports the explicit `abort` statement.
#pragma once

#include <mutex>
#include <vector>

#include "stm/api.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

class SglStm {
 public:
  SglStm() = default;

  class Tx {
   public:
    explicit Tx(SglStm& stm) : stm_(stm), lock_(stm.mu_) {
      stm_.registry_.begin_txn();
      if (TxObserver* obs = tx_observer()) obs->on_begin();
    }
    ~Tx() {
      if (!finished_) rollback();
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    word_t read(const Cell& cell) {
      if (TxObserver* obs = tx_observer()) return obs->tx_read(cell);
      return cell.raw().load(std::memory_order_acquire);
    }
    void write(Cell& cell, word_t v) {
      TxObserver* obs = tx_observer();
      undo_.push_back({&cell, cell.raw().load(std::memory_order_relaxed),
                       obs ? obs->loc_version(cell) : 0});
      if (obs)
        obs->tx_publish(cell, v);
      else
        cell.raw().store(v, std::memory_order_release);
    }
    [[noreturn]] void user_abort() { throw TxUserAbort{}; }

    void commit() {
      if (TxObserver* obs = tx_observer()) obs->on_commit();
      finished_ = true;
      stm_.registry_.end_txn();
    }
    void rollback() {
      TxObserver* obs = tx_observer();
      for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        if (obs)
          obs->tx_unpublish(*it->cell, it->old_value, it->rec_version);
        else
          it->cell->raw().store(it->old_value, std::memory_order_release);
      }
      undo_.clear();
      if (obs) obs->on_abort();
      finished_ = true;
      stm_.registry_.end_txn();
    }

   private:
    struct UndoEntry {
      Cell* cell;
      word_t old_value;
      std::uint64_t rec_version;  // see EagerStm::Tx::UndoEntry
    };
    SglStm& stm_;
    std::unique_lock<std::mutex> lock_;
    std::vector<UndoEntry> undo_;
    bool finished_ = false;
  };

  template <typename F>
  bool atomically(F&& f) {
    Tx tx(*this);
    try {
      f(tx);
      tx.commit();
      stats_.commits.fetch_add(1, std::memory_order_relaxed);
      return true;
    } catch (const TxUserAbort&) {
      tx.rollback();
      stats_.user_aborts.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // SGL transactions cannot conflict: no TxConflict path.
  }

  // With a global lock, taking and releasing the lock is a full fence.
  void quiesce() {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    { std::lock_guard<std::mutex> g(mu_); }
    if (TxObserver* obs = tx_observer()) obs->on_fence();
  }

  // Scoped quiescence: the global lock is already a whole-store fence, so
  // the wait is unscoped; the observer still sees the caller's scope so
  // recorded traces only claim ordering for the fenced cells.
  void quiesce(const QuiesceDomain& d) {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    { std::lock_guard<std::mutex> g(mu_); }
    if (TxObserver* obs = tx_observer()) obs->on_fence_scoped(d);
  }

  // No scoped wait path: every caller shares the whole-store domain.
  int create_domain() { return 0; }

  StmStats& stats() { return stats_; }

  QuiescenceRegistry& registry() { return registry_; }

 private:
  std::mutex mu_;
  QuiescenceRegistry registry_;
  StmStats stats_;
};

}  // namespace mtx::stm
