#include "stm/stats.hpp"

namespace mtx::stm {

void StmStats::reset() {
  commits.store(0, std::memory_order_relaxed);
  conflicts.store(0, std::memory_order_relaxed);
  user_aborts.store(0, std::memory_order_relaxed);
  fences.store(0, std::memory_order_relaxed);
}

std::string StmStats::str() const {
  return "commits=" + std::to_string(commits.load()) +
         " conflicts=" + std::to_string(conflicts.load()) +
         " user_aborts=" + std::to_string(user_aborts.load()) +
         " fences=" + std::to_string(fences.load());
}

double StmStats::conflict_rate() const {
  const double c = static_cast<double>(commits.load());
  const double a = static_cast<double>(conflicts.load());
  const double total = c + a;
  return total > 0 ? a / total : 0.0;
}

}  // namespace mtx::stm
