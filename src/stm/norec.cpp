#include "stm/norec.hpp"

namespace mtx::stm {

bool NorecStm::Tx::seq_moved() const {
  if (domain_ != 0)
    return stm_.seqs_[domain_].load(std::memory_order_acquire) != snapshot_;
  for (int i = 0; i < nd_; ++i)
    if (stm_.seqs_[i].load(std::memory_order_acquire) !=
        snaps_[static_cast<std::size_t>(i)])
      return true;
  return false;
}

void NorecStm::Tx::check_read_values() const {
  for (const ReadEntry& r : reads_)
    if (r.cell->raw().load(std::memory_order_acquire) != r.value)
      throw TxConflict{};
}

void NorecStm::Tx::revalidate() {
  for (;;) {
    if (domain_ != 0) {
      const word_t s = stm_.wait_unlocked(domain_);
      check_read_values();
      if (stm_.seqs_[domain_].load(std::memory_order_acquire) == s) {
        snapshot_ = s;
        return;
      }
    } else {
      for (int i = 0; i < nd_; ++i)
        snaps_[static_cast<std::size_t>(i)] = stm_.wait_unlocked(i);
      check_read_values();
      if (!seq_moved()) return;
    }
    // A commit slipped in mid-validation; try again.
  }
}

word_t NorecStm::Tx::read(const Cell& cell) {
  TxObserver* obs = tx_observer();
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it)
    if (it->cell == &cell) {
      if (obs) obs->on_buffered_read();
      return it->value;
    }

  word_t v = obs ? obs->tx_read(cell)
                 : cell.raw().load(std::memory_order_acquire);
  // If the watched part of the heap moved since our snapshot, the value we
  // just read may be inconsistent with earlier reads: revalidate by value
  // and resample.
  while (seq_moved()) {
    if (obs) obs->retract_read();
    revalidate();
    v = obs ? obs->tx_read(cell)
            : cell.raw().load(std::memory_order_acquire);
  }
  reads_.push_back({&cell, v});
  return v;
}

void NorecStm::Tx::write(Cell& cell, word_t v) {
  for (auto& w : writes_) {
    if (w.cell == &cell) {
      w.value = v;
      return;
    }
  }
  writes_.push_back({&cell, v});
}

void NorecStm::Tx::commit_scoped(TxObserver* obs) {
  // Acquire our domain's sequence lock at our snapshot; on failure someone
  // committed into the domain (a domain peer or a whole-store committer —
  // both bump this lock), so revalidate and retry from the new snapshot.
  word_t expect = snapshot_;
  while (!stm_.seqs_[domain_].compare_exchange_weak(
      expect, expect + 1, std::memory_order_acq_rel)) {
    revalidate();
    expect = snapshot_;
  }
  for (const WriteEntry& w : writes_) {
    if (obs)
      obs->tx_publish(*w.cell, w.value);
    else
      w.cell->raw().store(w.value, std::memory_order_release);
  }
  stm_.seqs_[domain_].store(snapshot_ + 2, std::memory_order_release);
}

void NorecStm::Tx::commit_global(TxObserver* obs) {
  // Lock the whole store: domain 0 first (CAS from our snapshot, the classic
  // NOrec acquire), then every active domain lock in index order.  Domain
  // committers only ever hold their own lock and never block while holding
  // it, so the ordered sweep cannot deadlock.
  word_t expect = snaps_[0];
  while (!stm_.seqs_[0].compare_exchange_weak(expect, expect + 1,
                                              std::memory_order_acq_rel)) {
    revalidate();
    expect = snaps_[0];
  }
  std::vector<word_t> held(static_cast<std::size_t>(nd_), 0);
  held[0] = snaps_[0];
  bool domain_moved = false;
  for (int i = 1; i < nd_; ++i) {
    for (;;) {
      word_t cur = stm_.seqs_[i].load(std::memory_order_acquire);
      if ((cur & 1) != 0) continue;  // a domain committer is writing back
      if (stm_.seqs_[i].compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_acq_rel)) {
        held[static_cast<std::size_t>(i)] = cur;
        if (cur != snaps_[static_cast<std::size_t>(i)]) domain_moved = true;
        break;
      }
    }
  }
  // Holding domain 0 since our snapshot rules out other whole-store commits,
  // but a *domain* commit may have slipped in between our snapshot of its
  // lock and acquiring it; if any did, revalidate by value under the locks.
  if (domain_moved) {
    try {
      check_read_values();
    } catch (...) {
      // Nothing was written: restore every lock to its pre-acquire value so
      // readers see no spurious movement.
      for (int i = nd_ - 1; i >= 0; --i)
        stm_.seqs_[i].store(held[static_cast<std::size_t>(i)],
                            std::memory_order_release);
      throw;
    }
  }
  for (const WriteEntry& w : writes_) {
    if (obs)
      obs->tx_publish(*w.cell, w.value);
    else
      w.cell->raw().store(w.value, std::memory_order_release);
  }
  // Bump every held lock: domain readers watch only their own lock and must
  // observe that the store moved under them.
  for (int i = nd_ - 1; i >= 0; --i)
    stm_.seqs_[i].store(held[static_cast<std::size_t>(i)] + 2,
                        std::memory_order_release);
}

void NorecStm::Tx::commit() {
  TxObserver* obs = tx_observer();
  if (!writes_.empty()) {
    if (domain_ != 0)
      commit_scoped(obs);
    else
      commit_global(obs);
  }
  if (obs) obs->on_commit();
  finished_ = true;
  stm_.registry_.end_txn();
}

void NorecStm::Tx::rollback() {
  if (TxObserver* obs = tx_observer()) obs->on_abort();
  reads_.clear();
  writes_.clear();
  finished_ = true;
  stm_.registry_.end_txn();
}

}  // namespace mtx::stm
