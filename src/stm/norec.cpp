#include "stm/norec.hpp"

namespace mtx::stm {

word_t NorecStm::Tx::revalidate() {
  for (;;) {
    const word_t s = stm_.wait_unlocked();
    for (const ReadEntry& r : reads_)
      if (r.cell->raw().load(std::memory_order_acquire) != r.value)
        throw TxConflict{};
    if (stm_.seq_.load(std::memory_order_acquire) == s) return s;
    // A commit slipped in mid-validation; try again.
  }
}

word_t NorecStm::Tx::read(const Cell& cell) {
  TxObserver* obs = tx_observer();
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it)
    if (it->cell == &cell) {
      if (obs) obs->on_buffered_read();
      return it->value;
    }

  word_t v = obs ? obs->tx_read(cell)
                 : cell.raw().load(std::memory_order_acquire);
  // If the heap moved since our snapshot, the value we just read may be
  // inconsistent with earlier reads: revalidate by value and resample.
  while (stm_.seq_.load(std::memory_order_acquire) != snapshot_) {
    if (obs) obs->retract_read();
    snapshot_ = revalidate();
    v = obs ? obs->tx_read(cell)
            : cell.raw().load(std::memory_order_acquire);
  }
  reads_.push_back({&cell, v});
  return v;
}

void NorecStm::Tx::write(Cell& cell, word_t v) {
  for (auto& w : writes_) {
    if (w.cell == &cell) {
      w.value = v;
      return;
    }
  }
  writes_.push_back({&cell, v});
}

void NorecStm::Tx::commit() {
  TxObserver* obs = tx_observer();
  if (writes_.empty()) {
    if (obs) obs->on_commit();
    finished_ = true;
    stm_.registry_.end_txn();
    return;
  }
  // Acquire the sequence lock at our snapshot; on failure someone committed,
  // so revalidate and retry from the new snapshot.
  word_t expect = snapshot_;
  while (!stm_.seq_.compare_exchange_weak(expect, expect + 1,
                                          std::memory_order_acq_rel)) {
    snapshot_ = revalidate();
    expect = snapshot_;
  }
  for (const WriteEntry& w : writes_) {
    if (obs)
      obs->tx_publish(*w.cell, w.value);
    else
      w.cell->raw().store(w.value, std::memory_order_release);
  }
  stm_.seq_.store(snapshot_ + 2, std::memory_order_release);

  if (obs) obs->on_commit();
  finished_ = true;
  stm_.registry_.end_txn();
}

void NorecStm::Tx::rollback() {
  if (TxObserver* obs = tx_observer()) obs->on_abort();
  reads_.clear();
  writes_.clear();
  finished_ = true;
  stm_.registry_.end_txn();
}

}  // namespace mtx::stm
