#include "stm/clock.hpp"

namespace mtx::stm {}
