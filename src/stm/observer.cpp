#include "stm/observer.hpp"

namespace mtx::stm {

const char* plain_order_name(PlainOrder m) {
  switch (m) {
    case PlainOrder::relaxed: return "relaxed";
    case PlainOrder::acq_rel: return "acq_rel";
    case PlainOrder::seq_cst: return "seq_cst";
  }
  return "?";
}

}  // namespace mtx::stm
