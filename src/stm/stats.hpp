// Commit/abort statistics shared by all STM backends.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace mtx::stm {

struct StmStats {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> conflicts{0};     // retried aborts
  std::atomic<std::uint64_t> user_aborts{0};   // explicit aborts (no retry)
  std::atomic<std::uint64_t> fences{0};        // quiescence fences

  void reset();
  std::string str() const;

  // Abort ratio over all attempts, in [0,1].
  double conflict_rate() const;
};

}  // namespace mtx::stm
