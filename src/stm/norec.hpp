// NOrec-style STM: no ownership records at all.  A single global sequence
// lock versions the whole heap; reads are validated *by value* against the
// read set whenever the sequence number moves, writes are buffered and
// published under the lock.
//
// This is the third major design point in the lazy/eager/global-lock space
// the paper's §3 surveys: like TL2 it is lazy (Example 3.5's class), but its
// commit is globally serialized, so it sits between TL2 and SGL on the
// scaling axis -- cheap reads and zero per-location metadata against a
// commit bottleneck.  Value-based validation also gives it TL2-equivalent
// opacity.
#pragma once

#include <vector>

#include "stm/api.hpp"
#include "stm/clock.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

class NorecStm {
 public:
  NorecStm() : registry_(clock_) {}

  class Tx {
   public:
    explicit Tx(NorecStm& stm) : stm_(stm) {
      snapshot_ = stm_.wait_unlocked();
      stm_.registry_.begin_txn();
      if (TxObserver* obs = tx_observer()) obs->on_begin();
    }
    ~Tx() {
      if (!finished_) stm_.registry_.end_txn();
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    word_t read(const Cell& cell);
    void write(Cell& cell, word_t v);
    [[noreturn]] void user_abort() { throw TxUserAbort{}; }

    void commit();
    void rollback();

   private:
    struct ReadEntry {
      const Cell* cell;
      word_t value;
    };
    struct WriteEntry {
      Cell* cell;
      word_t value;
    };

    // Re-reads the read set and compares values; returns the sequence
    // number the snapshot is now valid at, or throws TxConflict.
    word_t revalidate();

    NorecStm& stm_;
    word_t snapshot_;
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
    bool finished_ = false;

    friend class NorecStm;
  };

  template <typename F>
  bool atomically(F&& f) {
    for (unsigned attempt = 0;; ++attempt) {
      Tx tx(*this);
      try {
        f(tx);
        tx.commit();
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return true;
      } catch (const TxConflict&) {
        tx.rollback();
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        backoff_pause(attempt);
      } catch (const TxUserAbort&) {
        tx.rollback();
        stats_.user_aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }

  void quiesce() {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence();
    if (TxObserver* obs = tx_observer()) obs->on_fence();
  }

  StmStats& stats() { return stats_; }

 private:
  // Spin until the sequence lock is even (no committer in the write-back
  // phase) and return its value.
  word_t wait_unlocked() const {
    for (;;) {
      const word_t s = seq_.load(std::memory_order_acquire);
      if ((s & 1) == 0) return s;
    }
  }

  std::atomic<word_t> seq_{0};  // even: unlocked; odd: write-back in progress
  GlobalClock clock_;
  QuiescenceRegistry registry_;
  StmStats stats_;
};

}  // namespace mtx::stm
