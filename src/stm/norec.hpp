// NOrec-style STM: no ownership records at all.  A sequence lock versions
// the heap; reads are validated *by value* against the read set whenever the
// sequence number moves, writes are buffered and published under the lock.
//
// This is the third major design point in the lazy/eager/global-lock space
// the paper's §3 surveys: like TL2 it is lazy (Example 3.5's class), but its
// commit is serialized, so it sits between TL2 and SGL on the scaling axis
// -- cheap reads and zero per-location metadata against a commit bottleneck.
// Value-based validation also gives it TL2-equivalent opacity.
//
// The sequence lock is sharded per quiescence domain: a transaction
// annotated with domain d watches (and its commit acquires) only d's
// sequence lock, so committers in disjoint domains stop serializing against
// each other.  Whole-store (domain 0) transactions watch every active
// sequence lock; a whole-store commit acquires them all in index order
// (deadlock-free — domain committers hold only their own lock and never
// block while holding it), value-revalidates if any domain lock moved since
// its snapshot, writes back, and bumps every held lock so that domain
// readers — who watch only their own lock — still observe the commit.
#pragma once

#include <vector>

#include "stm/api.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

class NorecStm {
 public:
  NorecStm() = default;

  class Tx {
   public:
    explicit Tx(NorecStm& stm)
        : stm_(stm), domain_(QuiescenceRegistry::clamp_domain(tl_txn_domain)) {
      if (domain_ == 0) {
        nd_ = stm_.registry_.ndomains();
        snaps_.resize(static_cast<std::size_t>(nd_));
        for (int i = 0; i < nd_; ++i)
          snaps_[static_cast<std::size_t>(i)] = stm_.wait_unlocked(i);
      } else {
        snapshot_ = stm_.wait_unlocked(domain_);
      }
      stm_.registry_.begin_txn();
      if (TxObserver* obs = tx_observer()) obs->on_begin();
    }
    ~Tx() {
      if (!finished_) stm_.registry_.end_txn();
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    word_t read(const Cell& cell);
    void write(Cell& cell, word_t v);
    [[noreturn]] void user_abort() { throw TxUserAbort{}; }

    void commit();
    void rollback();

   private:
    struct ReadEntry {
      const Cell* cell;
      word_t value;
    };
    struct WriteEntry {
      Cell* cell;
      word_t value;
    };

    // Has any sequence lock this transaction watches moved off its snapshot?
    bool seq_moved() const;

    // Re-reads the read set and compares values; refreshes the snapshot(s)
    // the transaction is now valid at, or throws TxConflict.
    void revalidate();

    // Throws TxConflict unless every read still has its recorded value.
    void check_read_values() const;

    void commit_scoped(TxObserver* obs);
    void commit_global(TxObserver* obs);

    NorecStm& stm_;
    int domain_;
    int nd_ = 1;
    word_t snapshot_ = 0;         // domain_ > 0: snapshot of seqs_[domain_]
    std::vector<word_t> snaps_;   // domain_ == 0: snapshot of seqs_[0..nd_)
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
    bool finished_ = false;

    friend class NorecStm;
  };

  template <typename F>
  bool atomically(F&& f) {
    for (unsigned attempt = 0;; ++attempt) {
      Tx tx(*this);
      try {
        f(tx);
        tx.commit();
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return true;
      } catch (const TxConflict&) {
        tx.rollback();
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        backoff_pause(attempt);
      } catch (const TxUserAbort&) {
        tx.rollback();
        stats_.user_aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }

  void quiesce() {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence();
    if (TxObserver* obs = tx_observer()) obs->on_fence();
  }

  void quiesce(const QuiesceDomain& d) {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence(d.id);
    if (TxObserver* obs = tx_observer()) obs->on_fence_scoped(d);
  }

  int create_domain() { return registry_.create_domain(); }

  StmStats& stats() { return stats_; }
  QuiescenceRegistry& registry() { return registry_; }

 private:
  // Spin until domain's sequence lock is even (no committer in the
  // write-back phase) and return its value.
  word_t wait_unlocked(int domain) const {
    for (;;) {
      const word_t s = seqs_[domain].load(std::memory_order_acquire);
      if ((s & 1) == 0) return s;
    }
  }

  // even: unlocked; odd: write-back in progress
  std::atomic<word_t> seqs_[kMaxQuiesceDomains] = {};
  QuiescenceRegistry registry_;
  StmStats stats_;
};

}  // namespace mtx::stm
