// The runtime recording seam.
//
// A TxObserver installed in a thread-local slot sees every event the paper's
// trace model cares about: transaction begins/commits/aborts, the *actual*
// memory accesses (transactional reads, commit-time publishes, eager
// in-place writes and their undo stores, plain loads/stores), and quiescence
// fences.  The observer performs the memory access itself, so the recording
// layer can make (access, event) atomic per location — the property that
// lets src/record/ reconstruct exact reads-from and coherence orders.
//
// With no observer installed (the default), every hook collapses to a
// thread-local pointer load and a predictable branch; the fast paths are
// otherwise unchanged.
//
// This header also owns the plain-access memory-order policy.  The paper's
// "plain" accesses are ordinary unordered loads/stores; the repo's historical
// default is acquire/release, which is silently *stronger* than the model
// requires (it can hide reorderings a weaker mapping would allow).  The
// policy is now an explicit, documented process-wide choice:
//
//   PlainOrder::relaxed   the faithful mapping of the paper's plain accesses
//   PlainOrder::acq_rel   the historical default (loads acquire, stores
//                         release) — kept as default so existing behavior
//                         and benchmarks are unchanged
//   PlainOrder::seq_cst   the conservative fully-fenced mapping (§6's ARM
//                         stand-in in bench_fences)
//
// The recorder notes the mode in effect in the trace metadata, so a recorded
// execution documents which mapping it ran under.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/orec.hpp"

namespace mtx::stm {

class Cell;
struct QuiesceDomain;

class TxObserver {
 public:
  virtual ~TxObserver() = default;

  // Transaction lifecycle on the current thread.
  virtual void on_begin() = 0;
  virtual void on_commit() = 0;
  virtual void on_abort() = 0;

  // Whole-store quiescence fence completed on the current thread.
  virtual void on_fence() = 0;

  // Domain-scoped quiescence fence completed on the current thread.  The
  // runtime only waited for transactions that can touch d's locations, so
  // the recorder must claim QFence ordering for *at most* d's cells (falling
  // back to on_fence() here would over-claim and is deliberately not the
  // default — every observer decides explicitly).  Wrapping observers must
  // forward this hook, not collapse it to on_fence().
  virtual void on_fence_scoped(const QuiesceDomain& d) = 0;

  // Transactional read: perform the load and log a Read event.  Backends
  // whose read protocol can resample (TL2/eager orec sandwich, NOrec value
  // validation) retract the event before retrying.
  virtual word_t tx_read(const Cell& c) = 0;
  virtual void retract_read() = 0;

  // A transactional read served from the transaction's own redo log — no
  // memory access happens, so no event is logged, only counted.
  virtual void on_buffered_read() = 0;

  // Transactional write reaching shared memory (commit-time publish for lazy
  // backends, encounter-time store for eager ones): perform the store and
  // log a Write event.
  virtual void tx_publish(Cell& c, word_t v) = 0;

  // Current write version of the cell's location (0 = initial).  Eager
  // backends sample this when they log an undo entry.
  virtual std::uint64_t loc_version(const Cell& c) = 0;

  // Undo store of an eager/undo-log rollback: perform the store and restore
  // the location's version to `version` (sampled by loc_version when the
  // undo entry was logged) WITHOUT logging an event — in the model, aborted
  // writes are invisible and rolling them back is not itself a write.
  virtual void tx_unpublish(Cell& c, word_t v, std::uint64_t version) = 0;

  // Plain (nontransactional API) accesses; these go through Cell::plain_*.
  virtual word_t plain_load(const Cell& c) = 0;
  virtual void plain_store(Cell& c, word_t v) = 0;
};

// Thread-local observer slot.  Null (the default) means "not recording".
inline thread_local TxObserver* tl_tx_observer = nullptr;

inline TxObserver* tx_observer() { return tl_tx_observer; }
inline void set_tx_observer(TxObserver* o) { tl_tx_observer = o; }

// ----- plain-access memory-order policy --------------------------------

enum class PlainOrder : std::uint8_t { relaxed, acq_rel, seq_cst };

namespace detail {
// Process-wide policy; relaxed accesses suffice for the policy variable
// itself (switching it mid-run is a test-harness affair).  Inline so the
// hot plain_load/plain_store paths fold to one relaxed load + switch with
// no out-of-line call.
inline std::atomic<std::uint8_t> g_plain_order{
    static_cast<std::uint8_t>(PlainOrder::acq_rel)};
}  // namespace detail

inline PlainOrder plain_order() {
  return static_cast<PlainOrder>(
      detail::g_plain_order.load(std::memory_order_relaxed));
}

inline void set_plain_order(PlainOrder m) {
  detail::g_plain_order.store(static_cast<std::uint8_t>(m),
                              std::memory_order_relaxed);
}

const char* plain_order_name(PlainOrder m);

// The std::memory_order a plain load/store uses under the current policy.
inline std::memory_order plain_load_order() {
  switch (plain_order()) {
    case PlainOrder::relaxed: return std::memory_order_relaxed;
    case PlainOrder::seq_cst: return std::memory_order_seq_cst;
    case PlainOrder::acq_rel: break;
  }
  return std::memory_order_acquire;
}

inline std::memory_order plain_store_order() {
  switch (plain_order()) {
    case PlainOrder::relaxed: return std::memory_order_relaxed;
    case PlainOrder::seq_cst: return std::memory_order_seq_cst;
    case PlainOrder::acq_rel: break;
  }
  return std::memory_order_release;
}

}  // namespace mtx::stm
