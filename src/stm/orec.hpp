// Ownership records (orecs): per-address versioned write-locks, the shared
// metadata of both STM backends.
//
// Layout of an orec word:
//   bit 0      lock bit
//   bits 63..1 when unlocked: version (the global-clock time of the last
//              commit that wrote under this orec)
//              when locked:   owner transaction id
//
// Addresses hash onto a fixed-size table, so independent cells may share an
// orec (false conflicts are benign: they can only cause aborts, never
// inconsistent reads).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace mtx::stm {

using word_t = std::uint64_t;

inline constexpr word_t kLockBit = 1;

inline bool orec_locked(word_t v) { return (v & kLockBit) != 0; }
inline word_t orec_version(word_t v) { return v >> 1; }
inline word_t orec_owner(word_t v) { return v >> 1; }
inline word_t make_locked(word_t owner) { return (owner << 1) | kLockBit; }
inline word_t make_version(word_t version) { return version << 1; }

class OrecTable {
 public:
  explicit OrecTable(std::size_t log2_size = 16)
      : mask_((std::size_t{1} << log2_size) - 1),
        orecs_(std::size_t{1} << log2_size) {
    for (auto& o : orecs_) o.store(make_version(0), std::memory_order_relaxed);
  }

  std::atomic<word_t>& for_addr(const void* p) {
    // Mix the address; cells are word-aligned so drop the low 3 bits first.
    auto bits = reinterpret_cast<std::uintptr_t>(p) >> 3;
    bits ^= bits >> 17;
    bits *= 0x9e3779b97f4a7c15ULL;
    bits ^= bits >> 29;
    return orecs_[bits & mask_];
  }

  std::size_t size() const { return orecs_.size(); }

 private:
  std::size_t mask_;
  std::vector<std::atomic<word_t>> orecs_;
};

}  // namespace mtx::stm
