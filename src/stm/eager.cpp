#include "stm/eager.hpp"

namespace mtx::stm {

EagerStm::Tx::Tx(EagerStm& stm)
    : stm_(stm), id_(stm.next_id_.fetch_add(1, std::memory_order_relaxed)) {
  stm_.registry_.begin_txn();
  if (TxObserver* obs = tx_observer()) obs->on_begin();
}

bool EagerStm::Tx::owns(const std::atomic<word_t>* orec) const {
  for (const OwnedOrec& o : owned_)
    if (o.orec == orec) return true;
  return false;
}

word_t EagerStm::Tx::read(const Cell& cell) {
  TxObserver* obs = tx_observer();
  std::atomic<word_t>& orec = stm_.orecs_.for_addr(&cell);
  for (;;) {
    const word_t v1 = orec.load(std::memory_order_acquire);
    if (orec_locked(v1)) {
      if (orec_owner(v1) == id_)
        return obs ? obs->tx_read(cell)
                   : cell.raw().load(std::memory_order_acquire);
      throw TxConflict{};  // requester aborts; backoff happens in the retry loop
    }
    const word_t val = obs ? obs->tx_read(cell)
                           : cell.raw().load(std::memory_order_acquire);
    const word_t v2 = orec.load(std::memory_order_acquire);
    if (v1 != v2) {
      if (obs) obs->retract_read();
      continue;
    }
    reads_.push_back({&orec, v1});
    return val;
  }
}

void EagerStm::Tx::write(Cell& cell, word_t v) {
  TxObserver* obs = tx_observer();
  std::atomic<word_t>& orec = stm_.orecs_.for_addr(&cell);
  word_t cur = orec.load(std::memory_order_acquire);
  if (!(orec_locked(cur) && orec_owner(cur) == id_)) {
    for (;;) {
      if (orec_locked(cur)) throw TxConflict{};  // owned by someone else
      if (orec.compare_exchange_weak(cur, make_locked(id_),
                                     std::memory_order_acq_rel))
        break;
    }
    owned_.push_back({&orec, cur});
  }
  // Log the old value once per cell, then update in place (eager).
  bool logged = false;
  for (const UndoEntry& u : undo_)
    if (u.cell == &cell) logged = true;
  if (!logged)
    undo_.push_back({&cell, cell.raw().load(std::memory_order_acquire),
                     obs ? obs->loc_version(cell) : 0});
  if (obs)
    obs->tx_publish(cell, v);
  else
    cell.raw().store(v, std::memory_order_release);
}

void EagerStm::Tx::commit() {
  // Validate reads: versions unchanged, or the orec is ours.
  for (const ReadEntry& r : reads_) {
    const word_t cur = r.orec->load(std::memory_order_acquire);
    if (cur == r.seen) continue;
    if (orec_locked(cur) && orec_owner(cur) == id_) {
      // We locked it after reading; the pre-lock version must match.
      bool ok = false;
      for (const OwnedOrec& o : owned_)
        if (o.orec == r.orec && o.old_version == r.seen) ok = true;
      if (ok) continue;
    }
    throw TxConflict{};
  }

  const word_t wv = stm_.clock_.advance();
  for (const OwnedOrec& o : owned_)
    o.orec->store(make_version(wv), std::memory_order_release);

  if (TxObserver* obs = tx_observer()) obs->on_commit();
  finished_ = true;
  stm_.registry_.end_txn();
}

void EagerStm::Tx::rollback() {
  TxObserver* obs = tx_observer();
  // Undo in reverse order, then release orecs at their old versions.
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    if (obs)
      obs->tx_unpublish(*it->cell, it->old_value, it->rec_version);
    else
      it->cell->raw().store(it->old_value, std::memory_order_release);
  }
  for (const OwnedOrec& o : owned_)
    o.orec->store(o.old_version, std::memory_order_release);
  owned_.clear();
  undo_.clear();
  reads_.clear();
  if (obs) obs->on_abort();
  finished_ = true;
  stm_.registry_.end_txn();
}

}  // namespace mtx::stm
