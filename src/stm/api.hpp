// Common STM API surface.
//
//   Tl2Stm / EagerStm / SglStm   backend objects (shared metadata)
//   Stm::Tx                      a transaction handle: read/write/user_abort
//   stm.atomically(f)            run f(tx) as an isolated transaction,
//                                retrying on conflict; returns false when
//                                the program aborted explicitly (the paper's
//                                `abort` statement ends the block)
//   stm.quiesce()                quiescence fence (§5): waits for all
//                                in-flight transactions
//   TVar<T>                      typed word-sized transactional variable
//
// Shared memory cells are std::atomic<word_t>; plain (nontransactional)
// accesses go straight through Cell::plain_load / plain_store, exactly the
// mixed-mode access the paper studies.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "stm/orec.hpp"

namespace mtx::stm {

// Thrown internally when a transaction must retry (conflict).
struct TxConflict {};

// Thrown by Tx::user_abort(): the transaction aborts and the block ends.
struct TxUserAbort {};

// A shared memory cell.  Transactional backends access it through a Tx;
// plain code uses plain_load/plain_store (acquire/release to model the
// ordinary accesses of the paper's traces).
class Cell {
 public:
  Cell() : w_(0) {}
  explicit Cell(word_t v) : w_(v) {}

  word_t plain_load() const { return w_.load(std::memory_order_acquire); }
  void plain_store(word_t v) { w_.store(v, std::memory_order_release); }

  std::atomic<word_t>& raw() { return w_; }
  const std::atomic<word_t>& raw() const { return w_; }

 private:
  std::atomic<word_t> w_;
};

// Exponential backoff for conflict retries.
void backoff_pause(unsigned attempt);

// Typed transactional variable over a Cell; T must fit in a word.
template <typename T>
class TVar {
  static_assert(sizeof(T) <= sizeof(word_t));
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  TVar() = default;
  explicit TVar(T v) { cell_.plain_store(encode(v)); }

  template <typename Tx>
  T get(Tx& tx) const {
    return decode(tx.read(cell_));
  }

  template <typename Tx>
  void set(Tx& tx, T v) {
    tx.write(const_cast<Cell&>(cell_), encode(v));
  }

  T plain_get() const { return decode(cell_.plain_load()); }
  void plain_set(T v) { cell_.plain_store(encode(v)); }

  Cell& cell() { return cell_; }

 private:
  static word_t encode(T v) {
    word_t w = 0;
    __builtin_memcpy(&w, &v, sizeof(T));
    return w;
  }
  static T decode(word_t w) {
    T v;
    __builtin_memcpy(&v, &w, sizeof(T));
    return v;
  }
  Cell cell_;
};

}  // namespace mtx::stm
