// Common STM API surface.
//
//   Tl2Stm / EagerStm / SglStm   backend objects (shared metadata)
//   Stm::Tx                      a transaction handle: read/write/user_abort
//   stm.atomically(f)            run f(tx) as an isolated transaction,
//                                retrying on conflict; returns false when
//                                the program aborted explicitly (the paper's
//                                `abort` statement ends the block)
//   stm.quiesce()                quiescence fence (§5): waits for all
//                                in-flight transactions
//   TVar<T>                      typed word-sized transactional variable
//
// Shared memory cells are std::atomic<word_t>; plain (nontransactional)
// accesses go straight through Cell::plain_load / plain_store, exactly the
// mixed-mode access the paper studies.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "stm/observer.hpp"
#include "stm/orec.hpp"

namespace mtx::stm {

// Thrown internally when a transaction must retry (conflict).
struct TxConflict {};

// Thrown by Tx::user_abort(): the transaction aborts and the block ends.
struct TxUserAbort {};

// A shared memory cell.  Transactional backends access it through a Tx;
// plain code uses plain_load/plain_store — the paper's ordinary
// (nontransactional) accesses.
//
// Memory order of plain accesses is a documented process-wide choice
// (see PlainOrder in stm/observer.hpp): the default acq_rel mapping is
// deliberately kept — it is what every existing test and benchmark ran
// under — even though it is stronger than the paper's plain accesses;
// set_plain_order(PlainOrder::relaxed) selects the faithful mapping.  When
// a TxObserver is installed (recording mode), plain accesses are routed
// through it so recorded traces include them, tagged with the mode.
class Cell {
 public:
  Cell() : w_(0) {}
  explicit Cell(word_t v) : w_(v) {}

  word_t plain_load() const {
    if (TxObserver* o = tx_observer()) return o->plain_load(*this);
    return w_.load(plain_load_order());
  }
  void plain_store(word_t v) {
    if (TxObserver* o = tx_observer()) {
      o->plain_store(*this, v);
      return;
    }
    w_.store(v, plain_store_order());
  }

  std::atomic<word_t>& raw() { return w_; }
  const std::atomic<word_t>& raw() const { return w_; }

 private:
  std::atomic<word_t> w_;
};

// Exponential backoff for conflict retries.
void backoff_pause(unsigned attempt);

// Typed transactional variable over a Cell; T must fit in a word.
template <typename T>
class TVar {
  static_assert(sizeof(T) <= sizeof(word_t));
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  TVar() = default;
  explicit TVar(T v) { cell_.plain_store(encode(v)); }

  template <typename Tx>
  T get(Tx& tx) const {
    return decode(tx.read(cell_));
  }

  template <typename Tx>
  void set(Tx& tx, T v) {
    tx.write(const_cast<Cell&>(cell_), encode(v));
  }

  T plain_get() const { return decode(cell_.plain_load()); }
  void plain_set(T v) { cell_.plain_store(encode(v)); }

  Cell& cell() { return cell_; }

 private:
  static word_t encode(T v) {
    word_t w = 0;
    __builtin_memcpy(&w, &v, sizeof(T));
    return w;
  }
  static T decode(word_t w) {
    T v;
    __builtin_memcpy(&v, &w, sizeof(T));
    return v;
  }
  Cell cell_;
};

}  // namespace mtx::stm
