// Quiescence fences (§5).
//
// The implementation model orders a fence after every transaction that
// committed before it (HBCQ) and before every later transaction touching the
// fenced location (HBQB).  The classic realization is an epoch grace period:
// the fence waits until every transaction that was active when the fence
// started has resolved.  We implement the conservative all-locations variant
// (a fence on x waits for all in-flight transactions), which soundly
// over-approximates per-location fences.
//
// Each transaction publishes its start epoch in a per-thread slot at begin
// and clears it at resolution; fence() advances the clock and spins until no
// slot holds an epoch older than the fence's.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "stm/clock.hpp"

namespace mtx::stm {

class QuiescenceRegistry {
 public:
  static constexpr std::size_t kMaxThreads = 128;

  explicit QuiescenceRegistry(GlobalClock& clock) : clock_(clock) {
    for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  }

  // Publish that this thread has a transaction in flight.
  void begin_txn() {
    slot().store(clock_.now(), std::memory_order_release);
  }

  void end_txn() { slot().store(0, std::memory_order_release); }

  // Wait for every transaction active at the time of the call to resolve.
  void fence() {
    const std::uint64_t cutoff = clock_.advance();
    for (auto& s : slots_) {
      for (;;) {
        const std::uint64_t e = s.load(std::memory_order_acquire);
        if (e == 0 || e >= cutoff) break;
        std::this_thread::yield();
      }
    }
  }

 private:
  std::atomic<std::uint64_t>& slot();

  GlobalClock& clock_;
  std::atomic<std::uint64_t> slots_[kMaxThreads];
  std::atomic<std::size_t> next_slot_{0};
};

}  // namespace mtx::stm
