// Quiescence fences (§5), scoped to location-set domains.
//
// The implementation model orders a fence after every transaction that
// committed before it (HBCQ) and before every later transaction touching the
// fenced location (HBQB).  The classic realization is an epoch grace period:
// the fence waits until every transaction that was active when the fence
// started has resolved.
//
// PR 6 de-globalizes the grace period.  The store is partitioned into
// *quiescence domains* (domain 0 is the whole store); a transaction annotates
// itself with the single domain whose locations it accesses (via DomainScope;
// unannotated transactions are domain 0 and may touch anything), and a fence
// on domain d waits only for
//
//   - in-flight transactions annotated d, and
//   - in-flight domain-0 (whole-store) transactions,
//
// because only those can have touched d's locations.  Transactions annotated
// with some other domain e != d are ignored — that is the scaling win: a
// privatize-scan of one KV shard no longer stalls writers on every other
// shard.
//
// Protocol.  Each domain has an epoch counter (starting at 1).  begin_txn
// publishes (epoch_of(my domain), my domain) in a per-thread slot; end_txn
// clears it.  fence(d) advances d's epoch and domain 0's epoch by ONE from
// the value it observed on arrival and waits until no slot holds an older
// epoch of d or of domain 0.  Any transaction that could have read the
// caller's pre-fence state (e.g. an open privatization flag) must have
// published an epoch older than the fence's cutoff, so it is waited out;
// a transaction that begins after the advance re-reads shared state and
// sees the caller's writes.
//
// Coalescing.  The advance is a compare-exchange from the *arrival* epoch:
// when several fences on the same domain arrive within one epoch, exactly one
// CAS wins and they all share the same cutoff (arrival + 1) — one epoch
// advance, one shared grace period.  A fence that arrives after the advance
// observes the newer epoch and computes its own, later cutoff; coalescing
// onto the older in-flight grace period would be unsound (a transaction that
// began before that fence's arrival could be missed).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

namespace mtx::stm {

class Cell;

// Domains an STM instance can discriminate between.  Domain ids returned by
// create_domain() cycle within [1, kMaxQuiesceDomains); when more domains are
// requested than exist, two shards sharing an id merely wait for each other —
// conservative, never unsound.
inline constexpr int kMaxQuiesceDomains = 64;

// The domain the current thread's *next* transactions belong to.  0 = whole
// store.  The annotation is a promise: a transaction begun under domain d > 0
// accesses only locations owned by d.  Breaking the promise breaks the fence
// guarantee for d (see the under-scoped-fence negative control in
// tests/test_record.cpp).
inline thread_local int tl_txn_domain = 0;

// RAII domain annotation for a lexical region of transactions.
class DomainScope {
 public:
  explicit DomainScope(int domain) : prev_(tl_txn_domain) {
    tl_txn_domain = domain;
  }
  ~DomainScope() { tl_txn_domain = prev_; }
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  int prev_;
};

// A quiescence domain handle: the id the runtime waits on, plus an optional
// enumerator of the cells the domain owns.  The enumerator exists for the
// *recording* layer — a recorded scoped fence claims QFence ordering only for
// the enumerated cells, so the model never credits the fence with more than
// the caller scoped it to.  A null enumerator with id 0 means "whole store"
// (recorded as an all-locations fence); a null enumerator with id != 0 is
// recorded as covering nothing (sound: the model just gets no edges from it).
struct QuiesceDomain {
  using CellVisitor = std::function<void(const Cell&)>;
  using CellEnumerator = std::function<void(const CellVisitor&)>;

  int id = 0;
  CellEnumerator cells;  // may be null
};

class QuiescenceRegistry {
 public:
  static constexpr std::size_t kMaxThreads = 128;

  QuiescenceRegistry() {
    for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
    for (auto& e : epochs_) e.store(1, std::memory_order_relaxed);
  }

  // Allocate a domain id.  Ids cycle within [1, kMaxQuiesceDomains) once the
  // table is full (sharing is conservative, not unsound).
  int create_domain() {
    const int n = domain_seq_.fetch_add(1, std::memory_order_relaxed);
    return 1 + (n % (kMaxQuiesceDomains - 1));
  }

  // Number of domain slots in use (including domain 0); the upper bound for
  // cross-domain scans in the backends.
  int ndomains() const {
    const int n = domain_seq_.load(std::memory_order_acquire);
    return n >= kMaxQuiesceDomains - 1 ? kMaxQuiesceDomains : n + 1;
  }

  // Publish that this thread has a transaction in flight, annotated with the
  // current thread's domain.
  void begin_txn() {
    const int d = clamp_domain(tl_txn_domain);
    const std::uint64_t e = epochs_[d].load(std::memory_order_acquire);
    slot().store(pack(e, d), std::memory_order_release);
  }

  void end_txn() { slot().store(0, std::memory_order_release); }

  // Grace period for domain d: wait for every in-flight transaction
  // annotated d — plus every whole-store (domain 0) transaction — that was
  // active at the time of the call.  fence(0) waits for everything.
  void fence(int domain);

  // Whole-store fence (the conservative §5 variant).
  void fence() { fence(0); }

  // Observability for the coalescing contract: how many fence() calls ran vs
  // how many epoch advances they performed (fences arriving within one epoch
  // share one advance, so advances <= 2 * fences and can be far fewer).
  std::uint64_t fence_calls() const {
    return fence_calls_.load(std::memory_order_acquire);
  }
  std::uint64_t epoch_advances() const {
    return epoch_advances_.load(std::memory_order_acquire);
  }

  static int clamp_domain(int d) {
    return (d > 0 && d < kMaxQuiesceDomains) ? d : 0;
  }

 private:
  // Slot word: epoch in the high bits, domain in the low 6.  0 = idle.
  static constexpr std::uint64_t kDomainBits = 6;
  static_assert((1 << kDomainBits) >= kMaxQuiesceDomains);

  static std::uint64_t pack(std::uint64_t epoch, int domain) {
    return (epoch << kDomainBits) | static_cast<std::uint64_t>(domain);
  }
  static std::uint64_t slot_epoch(std::uint64_t s) { return s >> kDomainBits; }
  static int slot_domain(std::uint64_t s) {
    return static_cast<int>(s & ((std::uint64_t{1} << kDomainBits) - 1));
  }

  // Advance domain d's epoch one past its arrival value and return the
  // cutoff; concurrent fences arriving in the same epoch coalesce (one CAS
  // winner, shared cutoff).
  std::uint64_t advance_epoch(int d);

  std::atomic<std::uint64_t>& slot();

  std::atomic<std::uint64_t> slots_[kMaxThreads];
  std::atomic<std::uint64_t> epochs_[kMaxQuiesceDomains];
  std::atomic<int> domain_seq_{0};
  std::atomic<std::uint64_t> fence_calls_{0};
  std::atomic<std::uint64_t> epoch_advances_{0};
};

}  // namespace mtx::stm
