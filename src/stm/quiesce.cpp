#include "stm/quiesce.hpp"

#include <atomic>
#include <stdexcept>

namespace mtx::stm {

namespace {

// Global slot allocator with reuse: each live OS thread holds one slot index
// for its lifetime (RAII), releasing it at thread exit so long test runs
// that create transient threads never exhaust the table.
std::atomic<bool> slot_taken[QuiescenceRegistry::kMaxThreads];

struct SlotHolder {
  std::size_t idx = 0;
  SlotHolder() {
    for (int attempt = 0;; ++attempt) {
      for (std::size_t i = 0; i < QuiescenceRegistry::kMaxThreads; ++i) {
        bool expected = false;
        if (slot_taken[i].compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
          idx = i;
          return;
        }
      }
      if (attempt > 1000)
        throw std::runtime_error(
            "QuiescenceRegistry: more than kMaxThreads concurrent threads");
      std::this_thread::yield();
    }
  }
  ~SlotHolder() { slot_taken[idx].store(false, std::memory_order_release); }
};

std::size_t my_thread_index() {
  thread_local SlotHolder holder;
  return holder.idx;
}

}  // namespace

std::atomic<std::uint64_t>& QuiescenceRegistry::slot() {
  // One dedicated slot per live OS thread.  Sharing a slot between two live
  // threads would let a later begin_txn overwrite an in-flight older epoch
  // and break the grace-period guarantee; the allocator above prevents it.
  return slots_[my_thread_index()];
}

}  // namespace mtx::stm
