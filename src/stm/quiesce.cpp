#include "stm/quiesce.hpp"

#include <atomic>
#include <stdexcept>

namespace mtx::stm {

namespace {

// Global slot allocator with reuse: each live OS thread holds one slot index
// for its lifetime (RAII), releasing it at thread exit so long test runs
// that create transient threads never exhaust the table.
std::atomic<bool> slot_taken[QuiescenceRegistry::kMaxThreads];

struct SlotHolder {
  std::size_t idx = 0;
  SlotHolder() {
    for (int attempt = 0;; ++attempt) {
      for (std::size_t i = 0; i < QuiescenceRegistry::kMaxThreads; ++i) {
        bool expected = false;
        if (slot_taken[i].compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
          idx = i;
          return;
        }
      }
      if (attempt > 1000)
        throw std::runtime_error(
            "QuiescenceRegistry: more than kMaxThreads concurrent threads");
      std::this_thread::yield();
    }
  }
  ~SlotHolder() { slot_taken[idx].store(false, std::memory_order_release); }
};

std::size_t my_thread_index() {
  thread_local SlotHolder holder;
  return holder.idx;
}

}  // namespace

std::atomic<std::uint64_t>& QuiescenceRegistry::slot() {
  // One dedicated slot per live OS thread.  Sharing a slot between two live
  // threads would let a later begin_txn overwrite an in-flight older epoch
  // and break the grace-period guarantee; the allocator above prevents it.
  return slots_[my_thread_index()];
}

std::uint64_t QuiescenceRegistry::advance_epoch(int d) {
  std::uint64_t arrival = epochs_[d].load(std::memory_order_acquire);
  const std::uint64_t cutoff = arrival + 1;
  // One winner per epoch: a failed CAS means a concurrent fence that arrived
  // in the same epoch already advanced it to (at least) our cutoff, and we
  // share its grace period.  A fence arriving *after* the advance reads the
  // new epoch and computes a strictly later cutoff of its own — it must,
  // because a transaction may have begun (at the new epoch) before that
  // fence's caller flipped its privatization flag.
  if (epochs_[d].compare_exchange_strong(arrival, cutoff,
                                         std::memory_order_acq_rel))
    epoch_advances_.fetch_add(1, std::memory_order_relaxed);
  return cutoff;
}

void QuiescenceRegistry::fence(int domain) {
  fence_calls_.fetch_add(1, std::memory_order_relaxed);
  const int d = clamp_domain(domain);

  if (d == 0) {
    // Whole-store fence: advance every active domain's epoch and wait for
    // every in-flight transaction, whatever its annotation.
    const int nd = ndomains();
    std::uint64_t cutoff[kMaxQuiesceDomains];
    for (int i = 0; i < nd; ++i) cutoff[i] = advance_epoch(i);
    for (auto& s : slots_) {
      for (;;) {
        const std::uint64_t v = s.load(std::memory_order_acquire);
        if (v == 0) break;
        const int sd = slot_domain(v);
        if (sd >= nd || slot_epoch(v) >= cutoff[sd]) break;
        std::this_thread::yield();
      }
    }
    return;
  }

  // Scoped fence: only transactions annotated with this domain — or with the
  // whole store (domain 0) — can have touched this domain's locations, so
  // only those gate the grace period.  Transactions on other domains run on.
  const std::uint64_t cut_d = advance_epoch(d);
  const std::uint64_t cut_g = advance_epoch(0);
  for (auto& s : slots_) {
    for (;;) {
      const std::uint64_t v = s.load(std::memory_order_acquire);
      if (v == 0) break;
      const int sd = slot_domain(v);
      const bool blocks = (sd == d && slot_epoch(v) < cut_d) ||
                          (sd == 0 && slot_epoch(v) < cut_g);
      if (!blocks) break;
      std::this_thread::yield();
    }
  }
}

}  // namespace mtx::stm
