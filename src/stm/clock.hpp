// The global version clock (TL2-style).  Commit operations advance it; read
// validation compares orec versions against the value sampled at transaction
// begin.  The clock also serves as the epoch source for quiescence fences.
#pragma once

#include <atomic>
#include <cstdint>

namespace mtx::stm {

class GlobalClock {
 public:
  GlobalClock() : now_(1) {}

  std::uint64_t now() const { return now_.load(std::memory_order_acquire); }

  // Advance and return the new time.
  std::uint64_t advance() {
    return now_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace mtx::stm
