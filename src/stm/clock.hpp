// Version clocks (TL2-style).  Commit operations advance a clock; read
// validation compares orec versions against the value sampled at transaction
// begin.
//
// GlobalClock is the classic single counter.  DomainClocks shards it per
// quiescence domain so committers in different domains stop contending on
// one cache line, while keeping every published version *globally*
// comparable: an advance of domain d's clock goes to one past the maximum of
// ALL clocks ("advance-to-max", i.e. Lamport-clock style).  That invariant is
// what lets a shared orec table keep working unchanged — any commit that
// happens after a reader sampled its rv publishes a version strictly greater
// than that rv, whichever domains the two are in, so hash collisions between
// domains stay benign (false aborts only, never a missed conflict).
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/quiesce.hpp"

namespace mtx::stm {

class GlobalClock {
 public:
  GlobalClock() : now_(1) {}

  std::uint64_t now() const { return now_.load(std::memory_order_acquire); }

  // Advance and return the new time.
  std::uint64_t advance() {
    return now_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  std::atomic<std::uint64_t> now_;
};

// One clock per quiescence domain (index 0 = whole store).  `ndomains` in
// the calls below bounds the scan: pass QuiescenceRegistry::ndomains() so
// only clocks of domains actually in use are visited.
class DomainClocks {
 public:
  DomainClocks() {
    for (auto& c : clocks_) c.store(1, std::memory_order_relaxed);
  }

  std::uint64_t now(int domain) const {
    return clocks_[domain].load(std::memory_order_acquire);
  }

  // The max over all active clocks: a globally valid read version.  Missing
  // a domain created concurrently with this scan is benign — the result is
  // merely smaller, which can only cause false aborts.
  std::uint64_t max_now(int ndomains) const {
    std::uint64_t m = 0;
    for (int i = 0; i < ndomains; ++i) {
      const std::uint64_t v = clocks_[i].load(std::memory_order_acquire);
      if (v > m) m = v;
    }
    return m;
  }

  // Commit time for a domain-d writer: one past the maximum of all clocks,
  // stored into d's clock.  Every commit therefore publishes a version
  // strictly greater than anything any reader anywhere could have sampled
  // before it — the global-comparability invariant above.
  std::uint64_t advance(int domain, int ndomains) {
    for (;;) {
      const std::uint64_t m = max_now(ndomains);
      std::uint64_t cur = clocks_[domain].load(std::memory_order_acquire);
      const std::uint64_t target = (m > cur ? m : cur) + 1;
      if (clocks_[domain].compare_exchange_weak(cur, target,
                                                std::memory_order_acq_rel))
        return target;
    }
  }

 private:
  std::atomic<std::uint64_t> clocks_[kMaxQuiesceDomains];
};

}  // namespace mtx::stm
