// The unified STM backend interface and name-keyed registry.
//
// The four runtimes (Tl2Stm, EagerStm, NorecStm, SglStm) share a duck-typed
// surface — atomically(f), quiesce(), stats() — but were only reachable
// through per-backend template instantiations, so every harness, bench and
// test grew four copies of the same driver.  StmBackend erases the type:
//
//   for (const std::string& name : backend_names()) {
//     auto stm = make_backend(name);
//     stm->atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
//     stm->quiesce();
//   }
//
// The virtual-dispatch cost is one indirect call per transactional
// read/write — uniform across backends, so relative comparisons (the whole
// point of iterating backends) are unaffected.  Code that needs the native
// zero-overhead path still instantiates the concrete types directly; the
// containers remain templates and work with both (Bank<Tl2Stm> and
// Bank<StmBackend> alike).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stm/api.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

// Type-erased transaction handle: what an atomically() block sees.
class TxHandle {
 public:
  virtual word_t read(const Cell& cell) = 0;
  virtual void write(Cell& cell, word_t v) = 0;
  [[noreturn]] void user_abort() { throw TxUserAbort{}; }

 protected:
  ~TxHandle() = default;
};

// Type-erased STM backend.  Satisfies the same duck-typed concept the
// concrete backends do, so `template <class Stm>` code accepts it.
class StmBackend {
 public:
  virtual ~StmBackend() = default;
  StmBackend() = default;
  StmBackend(const StmBackend&) = delete;
  StmBackend& operator=(const StmBackend&) = delete;

  virtual const std::string& name() const = 0;
  virtual void quiesce() = 0;

  // Domain-scoped quiescence (§5 fence restricted to one location set).
  // Backends without a scoped wait path (eager, sgl) fall back to the
  // whole-store grace period but still record the caller's scope.
  virtual void quiesce(const QuiesceDomain& d) = 0;

  // Allocate a quiescence domain for this backend; 0 means the backend has
  // no scoped wait path and the caller shares the whole-store domain.
  // Transactions annotate themselves with a domain via stm::DomainScope.
  virtual int create_domain() = 0;

  virtual StmStats& stats() = 0;

  // The backend's quiescence registry — read-only observability (fence call
  // and epoch-advance counters) for workload reports; every backend owns
  // one even when its wait path ignores domain scoping.
  virtual QuiescenceRegistry& registry() = 0;

  // Does this backend keep even *live* transactions on consistent
  // snapshots (no zombies)?  TL2 (clock validation), NOrec (value
  // revalidation) and SGL (mutual exclusion) do; eager encounter-time
  // locking validates reads only individually, so a doomed transaction can
  // observe an inconsistent snapshot before commit-time validation aborts
  // it — the Example 3.4 class.  Zombie readers participate in the model's
  // opacity graph (aborted transactions included), so recorded executions
  // of non-zombie-free backends are only held to committed-subsystem
  // opacity by the conformance checkers.
  virtual bool zombie_free() const = 0;

  // Runs f(tx) as an isolated transaction, retrying on conflict; returns
  // false when the block ended via user_abort.
  template <typename F>
  bool atomically(F&& f) {
    return atomically_erased([&](TxHandle& tx) { f(tx); });
  }

 protected:
  virtual bool atomically_erased(const std::function<void(TxHandle&)>& f) = 0;
};

// Wraps a concrete backend behind the StmBackend interface.
template <class Stm>
class BackendAdapter final : public StmBackend {
 public:
  // zombie_free is a semantic claim about Stm, stated explicitly at
  // registration (no default — a new backend's author must decide which
  // opacity level the conformance checkers hold it to).
  BackendAdapter(std::string name, bool zombie_free)
      : name_(std::move(name)), zombie_free_(zombie_free) {}

  const std::string& name() const override { return name_; }
  void quiesce() override { stm_.quiesce(); }
  void quiesce(const QuiesceDomain& d) override { stm_.quiesce(d); }
  int create_domain() override { return stm_.create_domain(); }
  StmStats& stats() override { return stm_.stats(); }
  QuiescenceRegistry& registry() override { return stm_.registry(); }
  bool zombie_free() const override { return zombie_free_; }

  // Escape hatch to the concrete backend (native-path benchmarking).
  Stm& native() { return stm_; }

 protected:
  bool atomically_erased(const std::function<void(TxHandle&)>& f) override {
    return stm_.atomically([&](typename Stm::Tx& tx) {
      Handle h(tx);
      f(h);
    });
  }

 private:
  struct Handle final : TxHandle {
    explicit Handle(typename Stm::Tx& t) : tx(t) {}
    word_t read(const Cell& c) override { return tx.read(c); }
    void write(Cell& c, word_t v) override { tx.write(c, v); }
    typename Stm::Tx& tx;
  };

  std::string name_;
  bool zombie_free_;
  Stm stm_;
};

// ----- registry --------------------------------------------------------

// Registered backend names, in canonical report order:
// {"tl2", "eager", "norec", "sgl"}.
const std::vector<std::string>& backend_names();

// Fresh instance of the named backend; nullptr for unknown names.
std::unique_ptr<StmBackend> make_backend(const std::string& name);

}  // namespace mtx::stm
