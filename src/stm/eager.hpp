// Eager-versioning (undo-log) STM with encounter-time locking — the class
// of STMs in Example 3.4.
//
//   - A write acquires the orec at encounter time, logs the old value, and
//     updates memory in place; aborts roll the log back.
//   - A read from an orec locked by another transaction aborts (simple
//     requester-aborts contention management + randomized backoff).
//   - Commit validates the read set and releases orecs at a new version.
//
// Because speculative values live in shared memory, plain accesses can
// observe them — exactly the speculative-lost-update hazard of Example 3.4.
// Privatization therefore needs EagerStm::quiesce, as in §5.
#pragma once

#include <vector>

#include "stm/api.hpp"
#include "stm/clock.hpp"
#include "stm/quiesce.hpp"
#include "stm/stats.hpp"

namespace mtx::stm {

class EagerStm {
 public:
  EagerStm() = default;

  class Tx {
   public:
    explicit Tx(EagerStm& stm);
    ~Tx() {
      if (!finished_) rollback();
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    word_t read(const Cell& cell);
    void write(Cell& cell, word_t v);
    [[noreturn]] void user_abort() { throw TxUserAbort{}; }

    void commit();
    void rollback();

   private:
    struct OwnedOrec {
      std::atomic<word_t>* orec;
      word_t old_version;  // unlocked value to restore on abort
    };
    struct UndoEntry {
      Cell* cell;
      word_t old_value;
      // Recording mode: the location's write version before this txn's
      // first in-place store, restored on rollback (aborted writes are
      // invisible in the model, so the undo store is not itself an event).
      std::uint64_t rec_version;
    };
    struct ReadEntry {
      std::atomic<word_t>* orec;
      word_t seen;
    };

    bool owns(const std::atomic<word_t>* orec) const;

    EagerStm& stm_;
    word_t id_;
    std::vector<OwnedOrec> owned_;
    std::vector<UndoEntry> undo_;
    std::vector<ReadEntry> reads_;
    bool finished_ = false;

    friend class EagerStm;
  };

  template <typename F>
  bool atomically(F&& f) {
    for (unsigned attempt = 0;; ++attempt) {
      Tx tx(*this);
      try {
        f(tx);
        tx.commit();
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return true;
      } catch (const TxConflict&) {
        tx.rollback();
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        backoff_pause(attempt);
      } catch (const TxUserAbort&) {
        tx.rollback();
        stats_.user_aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }

  void quiesce() {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence();
    if (TxObserver* obs = tx_observer()) obs->on_fence();
  }

  // Scoped quiescence: eager has no per-domain wait path, so it falls back
  // to the (trivially correct) whole-store grace period — but still reports
  // the caller's scope to the observer, so recorded traces only claim QFence
  // ordering for the cells the caller fenced.
  void quiesce(const QuiesceDomain& d) {
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    registry_.fence();
    if (TxObserver* obs = tx_observer()) obs->on_fence_scoped(d);
  }

  // No scoped wait path: every caller shares the whole-store domain.
  int create_domain() { return 0; }

  StmStats& stats() { return stats_; }

  QuiescenceRegistry& registry() { return registry_; }

 private:
  GlobalClock clock_;
  OrecTable orecs_;
  QuiescenceRegistry registry_;
  StmStats stats_;
  std::atomic<word_t> next_id_{1};
};

}  // namespace mtx::stm
