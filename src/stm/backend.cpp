#include "stm/backend.hpp"

#include "stm/eager.hpp"
#include "stm/norec.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"

namespace mtx::stm {

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = {"tl2", "eager", "norec", "sgl"};
  return names;
}

std::unique_ptr<StmBackend> make_backend(const std::string& name) {
  if (name == "tl2")
    return std::make_unique<BackendAdapter<Tl2Stm>>(name, /*zombie_free=*/true);
  if (name == "eager")  // encounter-time locking: doomed txns can see
                        // inconsistent snapshots (Example 3.4)
    return std::make_unique<BackendAdapter<EagerStm>>(name, /*zombie_free=*/false);
  if (name == "norec")
    return std::make_unique<BackendAdapter<NorecStm>>(name, /*zombie_free=*/true);
  if (name == "sgl")
    return std::make_unique<BackendAdapter<SglStm>>(name, /*zombie_free=*/true);
  return nullptr;
}

}  // namespace mtx::stm
