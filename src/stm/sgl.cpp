#include "stm/sgl.hpp"

namespace mtx::stm {}
