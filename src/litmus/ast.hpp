// A small concurrent language for the paper's litmus programs:
//
//   stmt ::= r := [loc]            plain/transactional read
//          | [loc] := e            plain/transactional write
//          | atomic { stmt* }      isolated transaction
//          | if (c) {..} else {..}
//          | while (c) {..}        bounded unrolling
//          | abort                 (inside atomic only)
//          | qfence(x)             quiescence fence (implementation model)
//
// Locations may be register-indexed arrays (z[r], as in Example 3.5).
// Expressions and conditions range over per-thread registers.
#pragma once

#include <string>
#include <vector>

#include "model/action.hpp"

namespace mtx::lit {

using model::Loc;
using model::Thread;
using model::Value;

inline constexpr int kMaxRegs = 8;

struct Expr {
  enum class Kind { Const, Reg, AddConst };
  Kind kind = Kind::Const;
  Value k = 0;   // Const payload / addend
  int reg = -1;  // Reg payload

  Value eval(const std::vector<Value>& regs) const;
};

Expr constant(Value v);
Expr reg(int r);
Expr add(int r, Value k);  // regs[r] + k

struct Cond {
  enum class Kind { Eq, Ne };
  Kind kind = Kind::Eq;
  int reg = 0;
  Value k = 0;
  int reg2 = -1;  // when >= 0, compare regs[reg] against regs[reg2] not k

  bool eval(const std::vector<Value>& regs) const;
};

Cond eq(int r, Value v);
Cond ne(int r, Value v);
Cond eq_reg(int r, int r2);
Cond ne_reg(int r, int r2);

// A location: a static cell, or base + regs[reg] for array indexing.
struct LocExpr {
  Loc base = 0;
  int reg = -1;

  bool dynamic() const { return reg >= 0; }
  Loc eval(const std::vector<Value>& regs) const;
};

LocExpr at(Loc x);
LocExpr at(Loc base, int index_reg);

struct Stmt;
using Block = std::vector<Stmt>;

struct Stmt {
  enum class Kind { Read, Write, Atomic, If, While, Abort, Fence };
  Kind kind = Kind::Read;

  int reg = -1;        // Read target
  LocExpr loc;         // Read/Write/Fence location
  Expr value;          // Write payload
  Block body;          // Atomic/If-then/While body
  Block else_body;     // If
  Cond cond;           // If/While
  int bound = 2;       // While unroll bound
  std::string label;   // Atomic label (for diagnostics)
};

Stmt read(int r, LocExpr l);
Stmt write(LocExpr l, Expr v);
Stmt write(LocExpr l, Value v);
Stmt atomic(Block body, std::string label = "");
Stmt if_then(Cond c, Block then_b);
Stmt if_then_else(Cond c, Block then_b, Block else_b);
Stmt while_loop(Cond c, Block body, int bound);
Stmt abort_stmt();
Stmt qfence(Loc x);

struct Program {
  std::string name;
  int num_locs = 0;
  std::vector<Block> threads;

  Program& add_thread(Block b) {
    threads.push_back(std::move(b));
    return *this;
  }
};

// Renders a program as self-contained litmus source (the reproducer format
// the fuzz shrinker emits).  Purely textual — byte-identical programs print
// byte-identically, which is what the fuzz determinism pins compare.
std::string to_source(const Program& p);

// Total top-level statements across all threads (the size metric the fuzz
// shrinker minimizes).
std::size_t top_level_stmts(const Program& p);

}  // namespace mtx::lit
