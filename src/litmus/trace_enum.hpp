// DFS trace enumerator.
//
// Where GraphEnum enumerates complete executions, TraceEnum walks the set of
// *traces* of a program: every consistent interleaved prefix, including
// traces with live (unresolved) transactions.  This is the program semantics
// Sigma of §4, which the LTRF definitions (L-stability, transactional
// L-stability, the SC-LTRF theorem) quantify over.
//
// The walk appends one action at a time, choosing for reads a fulfilling
// write already in the trace (reads cannot see the future, WF8) and for
// writes a timestamp slot among the existing same-location timestamps
// (rational timestamps always leave room).  Every node is checked for
// well-formedness and consistency; inconsistent prefixes are pruned, which
// is sound because all the axioms are monotone in the trace extension
// ordering.
#pragma once

#include <cstdint>
#include <functional>

#include "litmus/ast.hpp"
#include "litmus/program.hpp"
#include "model/consistency.hpp"
#include "model/race.hpp"
#include "model/sequentiality.hpp"

namespace mtx::lit {

struct TraceEnumOptions {
  std::uint64_t node_budget = 2'000'000;
};

class TraceEnum {
 public:
  enum class Visit {
    Continue,  // keep exploring extensions of this trace
    Prune,     // do not extend this trace (siblings continue)
    Stop,      // abandon the whole exploration
  };

  // Called for every consistent trace visited.  `appended` is the index of
  // the action just appended (SIZE_MAX for the exploration root).  The same
  // trace may be visited more than once when control paths share prefixes.
  using Visitor = std::function<Visit(const model::Trace&, const model::Analysis&,
                                      std::size_t appended)>;

  TraceEnum(Program p, model::ModelConfig cfg, TraceEnumOptions opts = {});

  // Per-thread execution cursor (public so frontier nodes can be handed to
  // another TraceEnum instance for parallel subtree exploration).
  struct ThreadState {
    std::size_t path = 0;  // chosen control path
    std::size_t pos = 0;   // next event within the path
    std::vector<Value> regs = std::vector<Value>(kMaxRegs, 0);
    int open_begin_name = -1;  // name of the open transaction's begin
  };

  // A node of the DFS whose subtree has not been explored: enough state to
  // resume exploration without replaying the prefix.
  struct Frontier {
    model::Trace trace;
    std::vector<ThreadState> states;
  };

  // Explore all consistent traces from the initial state.
  void explore(const Visitor& v);

  // Splits the DFS at depth `depth` (actions appended beyond the per-combo
  // root): every consistent node strictly shallower than the cut — and every
  // frontier node itself — is reported to `prefix`, and the nodes exactly at
  // the cut come back as independently explorable subtrees.  Together,
  // prefix visits + explore_subtree over every returned frontier node visit
  // exactly the traces explore() visits (modulo node-budget truncation,
  // which is per-call here).  Prune/Stop from `prefix` behave as in
  // explore().
  std::vector<Frontier> split_frontier(std::size_t depth, const Visitor& prefix);

  // Explores the strict extensions of a frontier node (the node itself was
  // already visited by split_frontier's prefix visitor).  Resets this
  // enumerator's node budget; instances are cheap, so parallel callers give
  // each worker its own TraceEnum.
  void explore_subtree(const Frontier& f, const Visitor& v);

  // Explore all consistent extensions of `base` (which must be a trace of
  // this program; otherwise nothing is visited).
  void explore_from(const model::Trace& base, const Visitor& v);

  // Convenience: collect all complete+partial traces (may contain
  // duplicates across control paths).
  std::vector<model::Trace> all_traces();

  // §4: sigma is L-stable iff no L-sequential extension tau has an L-race
  // between an action of tau and an action of sigma.
  bool is_L_stable(const model::Trace& sigma, const model::LocSet& L);

  // §4: transactionally L-stable: L-stable, all transactions contiguous and
  // resolved, and no extension contains a transactional action phi touching
  // L with psi xrw phi for some psi in sigma ("future proofing").
  bool is_transactionally_L_stable(const model::Trace& sigma, const model::LocSet& L);

  bool truncated() const { return truncated_; }

 private:
  void dfs(model::Trace& trace, std::vector<ThreadState>& st, const Visitor& v,
           bool& stop);
  bool try_child(model::Trace trace, std::vector<ThreadState> st,
                 const Visitor& v, bool& stop);

  // Replays `base` under the given path combination; returns the thread
  // states, or nothing when the combination cannot produce `base`.
  bool replay(const model::Trace& base, std::vector<ThreadState>& st) const;

  Program prog_;
  model::ModelConfig cfg_;
  TraceEnumOptions opts_;
  std::vector<std::vector<Path>> paths_;
  std::uint64_t nodes_left_ = 0;
  bool truncated_ = false;
  // Frontier-split mode: when set, nodes reaching `cutoff_size_` are handed
  // to this sink instead of being recursed into.
  std::vector<Frontier>* frontier_out_ = nullptr;
  std::size_t cutoff_size_ = 0;
};

}  // namespace mtx::lit
