#include "litmus/program.hpp"

#include <stdexcept>

namespace mtx::lit {

namespace {

PEvent guard_event(const Cond& c, bool expected) {
  PEvent e;
  e.kind = PEvent::Kind::Guard;
  e.cond = c;
  e.expected = expected;
  return e;
}

// A partially expanded path.  `aborting` is set while an abort is
// propagating: it swallows the remaining statements of the *enclosing
// atomic block* only — the Atomic expansion closes it off, so statements
// after the atomic block still run.
struct Partial {
  Path events;
  bool aborting = false;
};

// Expands a block into paths.  `in_atomic` governs legality of abort/fence.
std::vector<Partial> expand_block(const Block& block, bool in_atomic);

std::vector<Partial> concat_each(const std::vector<Partial>& prefixes,
                                 const std::vector<Partial>& suffixes) {
  std::vector<Partial> out;
  out.reserve(prefixes.size() * suffixes.size());
  for (const Partial& pre : prefixes) {
    if (pre.aborting) {
      // An aborting path swallows the rest of the enclosing block.
      out.push_back(pre);
      continue;
    }
    for (const Partial& suf : suffixes) {
      Partial p = pre;
      p.events.insert(p.events.end(), suf.events.begin(), suf.events.end());
      p.aborting = suf.aborting;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Partial> expand_stmt(const Stmt& s, bool in_atomic) {
  switch (s.kind) {
    case Stmt::Kind::Read: {
      PEvent e;
      e.kind = PEvent::Kind::Read;
      e.reg = s.reg;
      e.loc = s.loc;
      return {{{e}, false}};
    }
    case Stmt::Kind::Write: {
      PEvent e;
      e.kind = PEvent::Kind::Write;
      e.loc = s.loc;
      e.value = s.value;
      return {{{e}, false}};
    }
    case Stmt::Kind::Abort: {
      if (!in_atomic) throw std::invalid_argument("abort outside atomic");
      PEvent e;
      e.kind = PEvent::Kind::Abort;
      return {{{e}, true}};
    }
    case Stmt::Kind::Fence: {
      if (in_atomic) throw std::invalid_argument("qfence inside atomic");
      PEvent e;
      e.kind = PEvent::Kind::Fence;
      e.loc = s.loc;
      return {{{e}, false}};
    }
    case Stmt::Kind::Atomic: {
      if (in_atomic) throw std::invalid_argument("nested atomic");
      std::vector<Partial> out;
      for (const Partial& body : expand_block(s.body, /*in_atomic=*/true)) {
        Partial p;
        PEvent b;
        b.kind = PEvent::Kind::Begin;
        p.events.push_back(b);
        p.events.insert(p.events.end(), body.events.begin(), body.events.end());
        // Abort, if present, already ends the transaction; otherwise commit.
        // Either way the atomic block is over: control continues after it.
        if (!body.aborting) {
          PEvent c;
          c.kind = PEvent::Kind::Commit;
          p.events.push_back(c);
        }
        p.aborting = false;
        out.push_back(std::move(p));
      }
      return out;
    }
    case Stmt::Kind::If: {
      std::vector<Partial> out;
      for (Partial p : expand_block(s.body, in_atomic)) {
        p.events.insert(p.events.begin(), guard_event(s.cond, true));
        out.push_back(std::move(p));
      }
      // expand_block({}) yields one empty path, so an absent else branch
      // still contributes the negative-guard path.
      for (Partial p : expand_block(s.else_body, in_atomic)) {
        p.events.insert(p.events.begin(), guard_event(s.cond, false));
        out.push_back(std::move(p));
      }
      return out;
    }
    case Stmt::Kind::While: {
      // 0..bound iterations; the loop must exit (bounded model), so each
      // path ends with the negative guard.
      std::vector<Partial> out;
      const std::vector<Partial> body = expand_block(s.body, in_atomic);
      std::vector<Partial> prefixes = {{}};
      for (int iter = 0; iter <= s.bound; ++iter) {
        for (const Partial& pre : prefixes) {
          if (pre.aborting) {
            out.push_back(pre);
            continue;
          }
          Partial done = pre;
          done.events.push_back(guard_event(s.cond, false));
          out.push_back(std::move(done));
        }
        if (iter == s.bound) break;
        std::vector<Partial> next;
        for (const Partial& pre : prefixes) {
          if (pre.aborting) continue;
          for (const Partial& b : body) {
            Partial p = pre;
            p.events.push_back(guard_event(s.cond, true));
            p.events.insert(p.events.end(), b.events.begin(), b.events.end());
            p.aborting = b.aborting;
            next.push_back(std::move(p));
          }
        }
        prefixes = std::move(next);
        if (prefixes.empty()) break;
      }
      return out;
    }
  }
  return {{}};
}

std::vector<Partial> expand_block(const Block& block, bool in_atomic) {
  std::vector<Partial> acc = {{}};
  for (const Stmt& s : block) acc = concat_each(acc, expand_stmt(s, in_atomic));
  return acc;
}

}  // namespace

std::vector<Path> expand_paths(const Block& block) {
  std::vector<Path> out;
  for (Partial& p : expand_block(block, /*in_atomic=*/false))
    out.push_back(std::move(p.events));
  return out;
}

std::size_t action_count(const Path& p) {
  std::size_t n = 0;
  for (const PEvent& e : p)
    if (e.is_action()) ++n;
  return n;
}

std::string path_str(const Path& p) {
  std::string out;
  for (const PEvent& e : p) {
    switch (e.kind) {
      case PEvent::Kind::Read:
        out += "R(r" + std::to_string(e.reg) + ",x" + std::to_string(e.loc.base) + ") ";
        break;
      case PEvent::Kind::Write:
        out += "W(x" + std::to_string(e.loc.base) + ") ";
        break;
      case PEvent::Kind::Begin: out += "B "; break;
      case PEvent::Kind::Commit: out += "C "; break;
      case PEvent::Kind::Abort: out += "A "; break;
      case PEvent::Kind::Fence: out += "Q(x" + std::to_string(e.loc.base) + ") "; break;
      case PEvent::Kind::Guard:
        out += std::string("G(") + (e.expected ? "+" : "-") + ") ";
        break;
    }
  }
  return out;
}

}  // namespace mtx::lit
