#include "litmus/outcome.hpp"

namespace mtx::lit {

std::string Outcome::str() const {
  std::string s = "mem[";
  for (std::size_t x = 0; x < mem.size(); ++x) {
    if (x) s += ",";
    s += std::to_string(mem[x]);
  }
  s += "]";
  for (std::size_t t = 0; t < regs.size(); ++t) {
    s += " t" + std::to_string(t) + "(";
    for (std::size_t r = 0; r < regs[t].size(); ++r) {
      if (r) s += ",";
      s += std::to_string(regs[t][r]);
    }
    s += ")";
  }
  return s;
}

bool OutcomeSet::any(const std::function<bool(const Outcome&)>& pred) const {
  for (const Outcome& o : outcomes_)
    if (pred(o)) return true;
  return false;
}

bool OutcomeSet::all(const std::function<bool(const Outcome&)>& pred) const {
  for (const Outcome& o : outcomes_)
    if (!pred(o)) return false;
  return true;
}

std::string OutcomeSet::str() const {
  std::string s;
  for (const Outcome& o : outcomes_) s += o.str() + "\n";
  return s;
}

}  // namespace mtx::lit
