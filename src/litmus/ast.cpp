#include "litmus/ast.hpp"

#include <cassert>

namespace mtx::lit {

Value Expr::eval(const std::vector<Value>& regs) const {
  switch (kind) {
    case Kind::Const: return k;
    case Kind::Reg: return regs[static_cast<std::size_t>(reg)];
    case Kind::AddConst: return regs[static_cast<std::size_t>(reg)] + k;
  }
  return 0;
}

Expr constant(Value v) {
  Expr e;
  e.kind = Expr::Kind::Const;
  e.k = v;
  return e;
}

Expr reg(int r) {
  Expr e;
  e.kind = Expr::Kind::Reg;
  e.reg = r;
  return e;
}

Expr add(int r, Value k) {
  Expr e;
  e.kind = Expr::Kind::AddConst;
  e.reg = r;
  e.k = k;
  return e;
}

bool Cond::eval(const std::vector<Value>& regs) const {
  const Value v = regs[static_cast<std::size_t>(reg)];
  const Value rhs = reg2 >= 0 ? regs[static_cast<std::size_t>(reg2)] : k;
  return kind == Kind::Eq ? v == rhs : v != rhs;
}

Cond eq(int r, Value v) {
  Cond c;
  c.kind = Cond::Kind::Eq;
  c.reg = r;
  c.k = v;
  return c;
}

Cond ne(int r, Value v) {
  Cond c;
  c.kind = Cond::Kind::Ne;
  c.reg = r;
  c.k = v;
  return c;
}

Cond eq_reg(int r, int r2) {
  Cond c;
  c.kind = Cond::Kind::Eq;
  c.reg = r;
  c.reg2 = r2;
  return c;
}

Cond ne_reg(int r, int r2) {
  Cond c;
  c.kind = Cond::Kind::Ne;
  c.reg = r;
  c.reg2 = r2;
  return c;
}

Loc LocExpr::eval(const std::vector<Value>& regs) const {
  if (reg < 0) return base;
  return base + static_cast<Loc>(regs[static_cast<std::size_t>(reg)]);
}

LocExpr at(Loc x) {
  LocExpr l;
  l.base = x;
  return l;
}

LocExpr at(Loc base, int index_reg) {
  LocExpr l;
  l.base = base;
  l.reg = index_reg;
  return l;
}

Stmt read(int r, LocExpr l) {
  Stmt s;
  s.kind = Stmt::Kind::Read;
  s.reg = r;
  s.loc = l;
  return s;
}

Stmt write(LocExpr l, Expr v) {
  Stmt s;
  s.kind = Stmt::Kind::Write;
  s.loc = l;
  s.value = v;
  return s;
}

Stmt write(LocExpr l, Value v) { return write(l, constant(v)); }

Stmt atomic(Block body, std::string label) {
  Stmt s;
  s.kind = Stmt::Kind::Atomic;
  s.body = std::move(body);
  s.label = std::move(label);
  return s;
}

Stmt if_then(Cond c, Block then_b) {
  Stmt s;
  s.kind = Stmt::Kind::If;
  s.cond = c;
  s.body = std::move(then_b);
  return s;
}

Stmt if_then_else(Cond c, Block then_b, Block else_b) {
  Stmt s = if_then(c, std::move(then_b));
  s.else_body = std::move(else_b);
  return s;
}

Stmt while_loop(Cond c, Block body, int bound) {
  Stmt s;
  s.kind = Stmt::Kind::While;
  s.cond = c;
  s.body = std::move(body);
  s.bound = bound;
  return s;
}

Stmt abort_stmt() {
  Stmt s;
  s.kind = Stmt::Kind::Abort;
  return s;
}

Stmt qfence(Loc x) {
  Stmt s;
  s.kind = Stmt::Kind::Fence;
  s.loc = at(x);
  return s;
}

}  // namespace mtx::lit
