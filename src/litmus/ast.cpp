#include "litmus/ast.hpp"

#include <cassert>

namespace mtx::lit {

Value Expr::eval(const std::vector<Value>& regs) const {
  switch (kind) {
    case Kind::Const: return k;
    case Kind::Reg: return regs[static_cast<std::size_t>(reg)];
    case Kind::AddConst: return regs[static_cast<std::size_t>(reg)] + k;
  }
  return 0;
}

Expr constant(Value v) {
  Expr e;
  e.kind = Expr::Kind::Const;
  e.k = v;
  return e;
}

Expr reg(int r) {
  Expr e;
  e.kind = Expr::Kind::Reg;
  e.reg = r;
  return e;
}

Expr add(int r, Value k) {
  Expr e;
  e.kind = Expr::Kind::AddConst;
  e.reg = r;
  e.k = k;
  return e;
}

bool Cond::eval(const std::vector<Value>& regs) const {
  const Value v = regs[static_cast<std::size_t>(reg)];
  const Value rhs = reg2 >= 0 ? regs[static_cast<std::size_t>(reg2)] : k;
  return kind == Kind::Eq ? v == rhs : v != rhs;
}

Cond eq(int r, Value v) {
  Cond c;
  c.kind = Cond::Kind::Eq;
  c.reg = r;
  c.k = v;
  return c;
}

Cond ne(int r, Value v) {
  Cond c;
  c.kind = Cond::Kind::Ne;
  c.reg = r;
  c.k = v;
  return c;
}

Cond eq_reg(int r, int r2) {
  Cond c;
  c.kind = Cond::Kind::Eq;
  c.reg = r;
  c.reg2 = r2;
  return c;
}

Cond ne_reg(int r, int r2) {
  Cond c;
  c.kind = Cond::Kind::Ne;
  c.reg = r;
  c.reg2 = r2;
  return c;
}

Loc LocExpr::eval(const std::vector<Value>& regs) const {
  if (reg < 0) return base;
  return base + static_cast<Loc>(regs[static_cast<std::size_t>(reg)]);
}

LocExpr at(Loc x) {
  LocExpr l;
  l.base = x;
  return l;
}

LocExpr at(Loc base, int index_reg) {
  LocExpr l;
  l.base = base;
  l.reg = index_reg;
  return l;
}

Stmt read(int r, LocExpr l) {
  Stmt s;
  s.kind = Stmt::Kind::Read;
  s.reg = r;
  s.loc = l;
  return s;
}

Stmt write(LocExpr l, Expr v) {
  Stmt s;
  s.kind = Stmt::Kind::Write;
  s.loc = l;
  s.value = v;
  return s;
}

Stmt write(LocExpr l, Value v) { return write(l, constant(v)); }

Stmt atomic(Block body, std::string label) {
  Stmt s;
  s.kind = Stmt::Kind::Atomic;
  s.body = std::move(body);
  s.label = std::move(label);
  return s;
}

Stmt if_then(Cond c, Block then_b) {
  Stmt s;
  s.kind = Stmt::Kind::If;
  s.cond = c;
  s.body = std::move(then_b);
  return s;
}

Stmt if_then_else(Cond c, Block then_b, Block else_b) {
  Stmt s = if_then(c, std::move(then_b));
  s.else_body = std::move(else_b);
  return s;
}

Stmt while_loop(Cond c, Block body, int bound) {
  Stmt s;
  s.kind = Stmt::Kind::While;
  s.cond = c;
  s.body = std::move(body);
  s.bound = bound;
  return s;
}

Stmt abort_stmt() {
  Stmt s;
  s.kind = Stmt::Kind::Abort;
  return s;
}

Stmt qfence(Loc x) {
  Stmt s;
  s.kind = Stmt::Kind::Fence;
  s.loc = at(x);
  return s;
}

namespace {

std::string loc_src(const LocExpr& l) {
  std::string s = "x" + std::to_string(l.base);
  if (l.dynamic()) s += "[r" + std::to_string(l.reg) + "]";
  return s;
}

std::string expr_src(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Const: return std::to_string(e.k);
    case Expr::Kind::Reg: return "r" + std::to_string(e.reg);
    case Expr::Kind::AddConst:
      return "r" + std::to_string(e.reg) + "+" + std::to_string(e.k);
  }
  return "?";
}

std::string cond_src(const Cond& c) {
  std::string rhs = c.reg2 >= 0 ? "r" + std::to_string(c.reg2) : std::to_string(c.k);
  return "r" + std::to_string(c.reg) +
         (c.kind == Cond::Kind::Eq ? " == " : " != ") + rhs;
}

void block_src(const Block& b, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Stmt& s : b) {
    switch (s.kind) {
      case Stmt::Kind::Read:
        out += pad + "r" + std::to_string(s.reg) + " := [" + loc_src(s.loc) + "]\n";
        break;
      case Stmt::Kind::Write:
        out += pad + "[" + loc_src(s.loc) + "] := " + expr_src(s.value) + "\n";
        break;
      case Stmt::Kind::Atomic:
        out += pad + "atomic {\n";
        block_src(s.body, indent + 1, out);
        out += pad + "}\n";
        break;
      case Stmt::Kind::If:
        out += pad + "if (" + cond_src(s.cond) + ") {\n";
        block_src(s.body, indent + 1, out);
        if (!s.else_body.empty()) {
          out += pad + "} else {\n";
          block_src(s.else_body, indent + 1, out);
        }
        out += pad + "}\n";
        break;
      case Stmt::Kind::While:
        out += pad + "while (" + cond_src(s.cond) + ") bound " +
               std::to_string(s.bound) + " {\n";
        block_src(s.body, indent + 1, out);
        out += pad + "}\n";
        break;
      case Stmt::Kind::Abort:
        out += pad + "abort\n";
        break;
      case Stmt::Kind::Fence:
        out += pad + "qfence " + loc_src(s.loc) + "\n";
        break;
    }
  }
}

}  // namespace

std::string to_source(const Program& p) {
  std::string out = "program " + (p.name.empty() ? std::string("anon") : p.name) +
                    "\nlocs " + std::to_string(p.num_locs) + "\n";
  for (std::size_t t = 0; t < p.threads.size(); ++t) {
    out += "thread " + std::to_string(t) + " {\n";
    block_src(p.threads[t], 1, out);
    out += "}\n";
  }
  return out;
}

std::size_t top_level_stmts(const Program& p) {
  std::size_t n = 0;
  for (const Block& b : p.threads) n += b.size();
  return n;
}

}  // namespace mtx::lit
