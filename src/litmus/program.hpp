// Control-path expansion: each thread's statement block expands into the
// finite set of straight-line paths through its branches and bounded loops.
// A path is a sequence of primitive events; Guard events record the branch
// conditions that must evaluate a particular way for the path to be taken
// (checked later, once reads-from choices fix register values).
#pragma once

#include <string>
#include <vector>

#include "litmus/ast.hpp"

namespace mtx::lit {

struct PEvent {
  enum class Kind { Read, Write, Begin, Commit, Abort, Fence, Guard };
  Kind kind = Kind::Guard;

  int reg = -1;       // Read target
  LocExpr loc;        // Read/Write/Fence
  Expr value;         // Write
  Cond cond;          // Guard condition ...
  bool expected = true;  // ... and the branch direction taken

  bool is_action() const { return kind != Kind::Guard; }
};

using Path = std::vector<PEvent>;

// All control paths through a thread's block.  Throws std::invalid_argument
// on malformed programs (abort outside atomic, fence inside atomic, nested
// atomic).
std::vector<Path> expand_paths(const Block& block);

// Number of non-Guard events in a path.
std::size_t action_count(const Path& p);

std::string path_str(const Path& p);

}  // namespace mtx::lit
