// The reproduction catalog: every execution diagram / final-outcome claim in
// the paper, encoded as a litmus program with a witness predicate and the
// expected allowed/forbidden verdict under each model configuration the
// paper evaluates it in.  DESIGN.md maps entries (E01..E30) to paper
// sections; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "litmus/graph_enum.hpp"
#include "model/model_config.hpp"

namespace mtx::lit {

struct Expectation {
  std::string config;  // ModelConfig name
  bool allowed;
};

struct LitmusTest {
  std::string id;            // "E01"
  std::string paper_ref;     // "S1 privatization"
  std::string witness_desc;  // human-readable witness
  Program program;
  std::function<bool(const Outcome&)> witness;
  std::vector<Expectation> expected;
};

const std::vector<LitmusTest>& catalog();

// Look up a preset ModelConfig by its name() (base / programmer /
// implementation / strongest(x86) / the six Example 2.3 variants).
model::ModelConfig config_by_name(const std::string& name);

struct VerdictRow {
  std::string id;
  std::string config;
  bool expected_allowed = false;
  bool actual_allowed = false;
  std::uint64_t outcome_count = 0;
  std::uint64_t consistent_execs = 0;
  bool matches() const { return expected_allowed == actual_allowed; }
};

// Runs one catalog entry under one of its expected configs.
VerdictRow run_verdict(const LitmusTest& test, const Expectation& exp,
                       EnumOptions opts = {});

// Runs the whole catalog; returns all rows.
std::vector<VerdictRow> run_catalog(EnumOptions opts = {});

}  // namespace mtx::lit
