// Final-state outcomes of litmus executions: the final value of every
// location (over committed/plain writes) plus every thread's final register
// file.  OutcomeSet is the set of outcomes of all consistent executions of a
// program under a model; verdicts ("allowed"/"forbidden") are queries on it.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "model/action.hpp"

namespace mtx::lit {

using model::Value;

struct Outcome {
  std::vector<Value> mem;                // [loc]
  std::vector<std::vector<Value>> regs;  // [thread][reg]

  friend bool operator==(const Outcome& a, const Outcome& b) {
    return a.mem == b.mem && a.regs == b.regs;
  }
  friend bool operator<(const Outcome& a, const Outcome& b) {
    if (a.mem != b.mem) return a.mem < b.mem;
    return a.regs < b.regs;
  }

  Value reg(std::size_t thread, std::size_t r) const { return regs[thread][r]; }
  Value loc(std::size_t x) const { return mem[x]; }

  std::string str() const;
};

class OutcomeSet {
 public:
  void insert(Outcome o) { outcomes_.insert(std::move(o)); }
  std::size_t size() const { return outcomes_.size(); }
  bool empty() const { return outcomes_.empty(); }

  bool any(const std::function<bool(const Outcome&)>& pred) const;
  bool all(const std::function<bool(const Outcome&)>& pred) const;

  const std::set<Outcome>& outcomes() const { return outcomes_; }

  std::string str() const;

 private:
  std::set<Outcome> outcomes_;
};

}  // namespace mtx::lit
