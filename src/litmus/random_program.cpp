#include "litmus/random_program.hpp"

namespace mtx::lit {

namespace {

Stmt random_access(Rng& rng, const RandomProgramParams& p, int& next_reg) {
  const Loc x = static_cast<Loc>(rng.below(static_cast<std::uint64_t>(p.locs)));
  if (rng.chance(1, 2) && next_reg < kMaxRegs) {
    return read(next_reg++, at(x));
  }
  return write(at(x), static_cast<Value>(1 + rng.below(3)));
}

}  // namespace

Program random_program(Rng& rng, const RandomProgramParams& p) {
  Program prog;
  prog.name = "random";
  prog.num_locs = p.locs;

  for (int t = 0; t < p.threads; ++t) {
    Block thread_block;
    int next_reg = 0;
    for (int s = 0; s < p.stmts_per_thread; ++s) {
      if (p.fence_percent && rng.chance(p.fence_percent, 100)) {
        thread_block.push_back(
            qfence(static_cast<Loc>(rng.below(static_cast<std::uint64_t>(p.locs)))));
      } else if (rng.chance(p.atomic_percent, 100)) {
        Block body;
        const int body_len = 1 + static_cast<int>(rng.below(
                                     static_cast<std::uint64_t>(p.max_atomic_body)));
        for (int i = 0; i < body_len; ++i) {
          if (next_reg > 0 && rng.chance(p.branch_percent, 100)) {
            const int guard_reg = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(next_reg)));
            Block then_b = {random_access(rng, p, next_reg)};
            body.push_back(if_then(eq(guard_reg, 0), std::move(then_b)));
          } else {
            body.push_back(random_access(rng, p, next_reg));
          }
        }
        if (rng.chance(p.abort_percent, 100)) body.push_back(abort_stmt());
        thread_block.push_back(atomic(std::move(body)));
      } else if (next_reg > 0 && rng.chance(p.branch_percent, 100)) {
        const int guard_reg =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(next_reg)));
        Block then_b = {random_access(rng, p, next_reg)};
        thread_block.push_back(if_then(ne(guard_reg, 0), std::move(then_b)));
      } else {
        thread_block.push_back(random_access(rng, p, next_reg));
      }
    }
    prog.add_thread(std::move(thread_block));
  }
  return prog;
}

}  // namespace mtx::lit
