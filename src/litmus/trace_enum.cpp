#include "litmus/trace_enum.hpp"

#include <algorithm>

#include "substrate/enumerate.hpp"

namespace mtx::lit {

using model::Action;
using model::Analysis;
using model::Loc;
using model::Trace;
using mtx::Rational;

namespace {

// Candidate timestamps for a new write to x: strictly between existing
// same-location stamps, or after the last one.  (Slots before the initial
// write's 0 are omitted: Coherence rejects them against init anyway.)
std::vector<Rational> ts_slots(const Trace& t, Loc x) {
  std::vector<Rational> existing;
  for (std::size_t i = 0; i < t.size(); ++i)
    if (t[i].is_write() && t[i].loc == x) existing.push_back(t[i].ts);
  std::sort(existing.begin(), existing.end());
  std::vector<Rational> slots;
  if (existing.empty()) {
    slots.push_back(Rational(1));
    return slots;
  }
  for (std::size_t i = 0; i + 1 < existing.size(); ++i)
    slots.push_back(Rational::midpoint(existing[i], existing[i + 1]));
  slots.push_back(existing.back() + Rational(1));
  return slots;
}

}  // namespace

TraceEnum::TraceEnum(Program p, model::ModelConfig cfg, TraceEnumOptions opts)
    : prog_(std::move(p)), cfg_(std::move(cfg)), opts_(opts) {
  paths_.reserve(prog_.threads.size());
  for (const Block& b : prog_.threads) paths_.push_back(expand_paths(b));
}

bool TraceEnum::try_child(Trace trace, std::vector<ThreadState> st,
                          const Visitor& v, bool& stop) {
  if (nodes_left_ == 0) {
    truncated_ = true;
    stop = true;
    return false;
  }
  --nodes_left_;
  const Analysis a = model::analyze(trace, cfg_);
  if (!a.consistent()) return false;
  switch (v(trace, a, trace.size() - 1)) {
    case Visit::Stop:
      stop = true;
      return false;
    case Visit::Prune:
      return true;
    case Visit::Continue:
      break;
  }
  if (frontier_out_ != nullptr && trace.size() >= cutoff_size_) {
    frontier_out_->push_back(Frontier{std::move(trace), std::move(st)});
    return true;
  }
  dfs(trace, st, v, stop);
  return true;
}

void TraceEnum::dfs(Trace& trace, std::vector<ThreadState>& st, const Visitor& v,
                    bool& stop) {
  for (std::size_t t = 0; t < st.size() && !stop; ++t) {
    ThreadState& ts = st[t];
    const Path& path = paths_[t][ts.path];

    // Consume guards to find the next action; a failed guard blocks this
    // thread in this control path (the sibling path covers the other
    // branch).
    std::size_t pos = ts.pos;
    bool blocked = false;
    while (pos < path.size() && path[pos].kind == PEvent::Kind::Guard) {
      if (path[pos].cond.eval(ts.regs) != path[pos].expected) {
        blocked = true;
        break;
      }
      ++pos;
    }
    if (blocked || pos >= path.size()) continue;
    const PEvent& e = path[pos];

    auto child_state = [&](std::size_t new_pos) {
      std::vector<ThreadState> ns = st;
      ns[t].pos = new_pos;
      return ns;
    };

    switch (e.kind) {
      case PEvent::Kind::Read: {
        const Loc x = e.loc.eval(ts.regs);
        if (x < 0 || x >= prog_.num_locs) break;
        // Candidate fulfilling writes already in the trace.
        const int open_idx =
            ts.open_begin_name >= 0 ? trace.index_of_name(ts.open_begin_name) : -1;
        for (std::size_t w = 0; w < trace.size(); ++w) {
          if (!trace[w].is_write() || trace[w].loc != x) continue;
          // WF7: aborted/live writers only visible within their own txn.
          if ((trace.aborted(w) || trace.live(w)) &&
              trace.txn_of(w) != open_idx)
            continue;
          Trace child = trace;
          child.append(model::make_read(static_cast<int>(t), x, trace[w].value,
                                        trace[w].ts));
          std::vector<ThreadState> ns = child_state(pos + 1);
          ns[t].regs[static_cast<std::size_t>(e.reg)] = trace[w].value;
          if (!try_child(std::move(child), std::move(ns), v, stop) && stop) return;
        }
        break;
      }
      case PEvent::Kind::Write: {
        const Loc x = e.loc.eval(ts.regs);
        if (x < 0 || x >= prog_.num_locs) break;
        const Value val = e.value.eval(ts.regs);
        for (const Rational& slot : ts_slots(trace, x)) {
          Trace child = trace;
          child.append(model::make_write(static_cast<int>(t), x, val, slot));
          if (!try_child(std::move(child), child_state(pos + 1), v, stop) && stop)
            return;
        }
        break;
      }
      case PEvent::Kind::Begin: {
        Trace child = trace;
        const int idx = child.append(model::make_begin(static_cast<int>(t)));
        std::vector<ThreadState> ns = child_state(pos + 1);
        ns[t].open_begin_name = child[static_cast<std::size_t>(idx)].name;
        if (!try_child(std::move(child), std::move(ns), v, stop) && stop) return;
        break;
      }
      case PEvent::Kind::Commit:
      case PEvent::Kind::Abort: {
        Trace child = trace;
        if (e.kind == PEvent::Kind::Commit)
          child.append(model::make_commit(static_cast<int>(t), ts.open_begin_name));
        else
          child.append(model::make_abort(static_cast<int>(t), ts.open_begin_name));
        std::vector<ThreadState> ns = child_state(pos + 1);
        ns[t].open_begin_name = -1;
        if (!try_child(std::move(child), std::move(ns), v, stop) && stop) return;
        break;
      }
      case PEvent::Kind::Fence: {
        Trace child = trace;
        child.append(model::make_qfence(static_cast<int>(t), e.loc.base));
        if (!try_child(std::move(child), child_state(pos + 1), v, stop) && stop)
          return;
        break;
      }
      case PEvent::Kind::Guard:
        break;
    }
  }
}

void TraceEnum::explore(const Visitor& v) {
  nodes_left_ = opts_.node_budget;
  truncated_ = false;
  std::vector<std::size_t> radices;
  for (const auto& ps : paths_) radices.push_back(ps.size());
  bool stop = false;
  for_each_product(radices, [&](const std::vector<std::size_t>& combo) {
    Trace trace = Trace::with_init(prog_.num_locs);
    std::vector<ThreadState> st(prog_.threads.size());
    for (std::size_t t = 0; t < st.size(); ++t) st[t].path = combo[t];
    const Analysis a = model::analyze(trace, cfg_);
    switch (v(trace, a, static_cast<std::size_t>(-1))) {
      case Visit::Stop: return false;
      case Visit::Prune: return true;
      case Visit::Continue: break;
    }
    dfs(trace, st, v, stop);
    return !stop;
  });
}

std::vector<TraceEnum::Frontier> TraceEnum::split_frontier(std::size_t depth,
                                                           const Visitor& prefix) {
  std::vector<Frontier> out;
  frontier_out_ = &out;
  cutoff_size_ = static_cast<std::size_t>(prog_.num_locs) + 2 +
                 std::max<std::size_t>(depth, 1);
  explore(prefix);  // try_child diverts nodes at the cutoff into `out`
  frontier_out_ = nullptr;
  return out;
}

void TraceEnum::explore_subtree(const Frontier& f, const Visitor& v) {
  nodes_left_ = opts_.node_budget;
  truncated_ = false;
  frontier_out_ = nullptr;
  bool stop = false;
  Trace trace = f.trace;
  std::vector<ThreadState> st = f.states;
  dfs(trace, st, v, stop);
}

bool TraceEnum::replay(const Trace& base, std::vector<ThreadState>& st) const {
  const std::size_t init_len = static_cast<std::size_t>(prog_.num_locs) + 2;
  if (base.size() < init_len) return false;
  for (std::size_t i = init_len; i < base.size(); ++i) {
    const Action& a = base[i];
    const std::size_t t = static_cast<std::size_t>(a.thread);
    if (t >= st.size()) return false;
    ThreadState& ts = st[t];
    const Path& path = paths_[t][ts.path];
    // Consume guards.
    while (ts.pos < path.size() && path[ts.pos].kind == PEvent::Kind::Guard) {
      if (path[ts.pos].cond.eval(ts.regs) != path[ts.pos].expected) return false;
      ++ts.pos;
    }
    if (ts.pos >= path.size()) return false;
    const PEvent& e = path[ts.pos];
    switch (a.kind) {
      case model::Kind::Read:
        if (e.kind != PEvent::Kind::Read || e.loc.eval(ts.regs) != a.loc)
          return false;
        ts.regs[static_cast<std::size_t>(e.reg)] = a.value;
        break;
      case model::Kind::Write:
        if (e.kind != PEvent::Kind::Write || e.loc.eval(ts.regs) != a.loc ||
            e.value.eval(ts.regs) != a.value)
          return false;
        break;
      case model::Kind::Begin:
        if (e.kind != PEvent::Kind::Begin) return false;
        ts.open_begin_name = a.name;
        break;
      case model::Kind::Commit:
        if (e.kind != PEvent::Kind::Commit || a.peer != ts.open_begin_name)
          return false;
        ts.open_begin_name = -1;
        break;
      case model::Kind::Abort:
        if (e.kind != PEvent::Kind::Abort || a.peer != ts.open_begin_name)
          return false;
        ts.open_begin_name = -1;
        break;
      case model::Kind::QFence:
        if (e.kind != PEvent::Kind::Fence || e.loc.base != a.loc) return false;
        break;
    }
    ++ts.pos;
  }
  return true;
}

void TraceEnum::explore_from(const Trace& base, const Visitor& v) {
  nodes_left_ = opts_.node_budget;
  truncated_ = false;
  std::vector<std::size_t> radices;
  for (const auto& ps : paths_) radices.push_back(ps.size());
  bool stop = false;
  for_each_product(radices, [&](const std::vector<std::size_t>& combo) {
    std::vector<ThreadState> st(prog_.threads.size());
    for (std::size_t t = 0; t < st.size(); ++t) st[t].path = combo[t];
    if (!replay(base, st)) return true;  // base unreachable on this combo
    Trace trace = base;
    const Analysis a = model::analyze(trace, cfg_);
    if (!a.consistent()) return true;
    switch (v(trace, a, static_cast<std::size_t>(-1))) {
      case Visit::Stop: return false;
      case Visit::Prune: return true;
      case Visit::Continue: break;
    }
    dfs(trace, st, v, stop);
    return !stop;
  });
}

std::vector<Trace> TraceEnum::all_traces() {
  std::vector<Trace> out;
  explore([&](const Trace& t, const Analysis&, std::size_t) {
    out.push_back(t);
    return Visit::Continue;
  });
  return out;
}

bool TraceEnum::is_L_stable(const Trace& sigma, const model::LocSet& L) {
  const std::size_t base_len = sigma.size();
  bool stable = true;
  explore_from(sigma, [&](const Trace& t, const Analysis& an, std::size_t appended) {
    if (appended == static_cast<std::size_t>(-1)) return Visit::Continue;
    // Stability quantifies over L-sequential extensions only; an L-weak
    // action ends consideration of this branch (its extensions contain it
    // too).  L-sequentiality of an action never changes as the trace grows,
    // so pruning at the first weak action is sound.
    if (model::is_L_weak_action(t, appended, L)) return Visit::Prune;
    for (std::size_t a = 0; a < base_len; ++a) {
      if (model::is_l_race(t, an.hb, a, appended, L)) {
        stable = false;
        return Visit::Stop;
      }
    }
    return Visit::Continue;
  });
  return stable;
}

bool TraceEnum::is_transactionally_L_stable(const Trace& sigma,
                                            const model::LocSet& L) {
  if (!model::all_transactions_contiguous(sigma)) return false;
  if (!model::all_transactions_resolved(sigma)) return false;
  if (!is_L_stable(sigma, L)) return false;

  // Future-proofing: no extension may contain a transactional action phi
  // touching L with an xrw antidependency between phi and some psi in
  // sigma, in either direction.  psi xrw phi: a new conflicting
  // transactional write would have to serialize before resolution of
  // sigma's reads.  phi xrw psi: a new transactional read antidepends on a
  // write inside sigma, so linearizing it sequentially would require
  // removing sigma's transaction (Example A.1's forbidden decomposition).
  const std::size_t base_len = sigma.size();
  bool ok = true;
  explore_from(sigma, [&](const Trace& t, const Analysis& an, std::size_t appended) {
    if (appended == static_cast<std::size_t>(-1)) return Visit::Continue;
    if (t.transactional(appended) && model::touches_locset(t[appended], L)) {
      for (std::size_t psi = 0; psi < base_len; ++psi) {
        if (an.rel.xrw.test(psi, appended) || an.rel.xrw.test(appended, psi)) {
          ok = false;
          return Visit::Stop;
        }
      }
    }
    return Visit::Continue;
  });
  return ok;
}

}  // namespace mtx::lit
