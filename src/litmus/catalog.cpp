#include "litmus/catalog.hpp"

#include <stdexcept>

namespace mtx::lit {

namespace {

using model::ModelConfig;

constexpr bool kAllowed = true;
constexpr bool kForbidden = false;

Expectation exp_(const char* cfg, bool allowed) { return Expectation{cfg, allowed}; }

// Shorthand for the four standard configurations sharing one verdict.
std::vector<Expectation> everywhere(bool allowed) {
  return {exp_("base", allowed), exp_("programmer", allowed),
          exp_("implementation", allowed), exp_("strongest(x86)", allowed)};
}

// ---------------------------------------------------------------------------
// Program builders.  Location conventions are per-program; registers are
// per-thread r0..r7.
// ---------------------------------------------------------------------------

// S1 privatization:  atomic_a{ if !y then x:=1 }  ||  atomic_b{ y:=1 }; x:=2
Program privatization(bool fenced) {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = fenced ? "privatization+Q" : "privatization";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)), if_then(eq(0, 0), {write(at(X), 1)})}, "a")});
  Block t1 = {atomic({write(at(Y), 1)}, "b")};
  if (fenced) t1.push_back(qfence(X));
  t1.push_back(write(at(X), 2));
  p.add_thread(std::move(t1));
  return p;
}

// S1 publication:  x:=1; atomic_a{ y:=1 } || atomic_b{ z:=2; if y then z:=x }
Program publication() {
  constexpr Loc X = 0, Y = 1, Z = 2;
  Program p;
  p.name = "publication";
  p.num_locs = 3;
  p.add_thread({write(at(X), 1), atomic({write(at(Y), 1)}, "a")});
  p.add_thread({atomic({write(at(Z), 2), read(0, at(Y)),
                        if_then(ne(0, 0), {read(1, at(X)), write(at(Z), reg(1))})},
                       "b")});
  return p;
}

// S1 IRIW with racy writes to z interposed between the transactional reads.
Program iriw_racy_z() {
  constexpr Loc X = 0, Y = 1, Z = 2;
  Program p;
  p.name = "IRIW+z";
  p.num_locs = 3;
  p.add_thread({atomic({write(at(X), 1)})});
  p.add_thread({atomic({write(at(Y), 1)})});
  p.add_thread({atomic({read(0, at(X))}), write(at(Z), 1), atomic({read(1, at(Y))})});
  p.add_thread({atomic({read(0, at(Y))}), write(at(Z), 2), atomic({read(1, at(X))})});
  return p;
}

// Example 2.2: atomic_a{ if !y then x:=2 } || atomic_b{ y:=1 }; x:=1
Program example_2_2() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "ex2.2";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)), if_then(eq(0, 0), {write(at(X), 2)})}, "a")});
  p.add_thread({atomic({write(at(Y), 1)}, "b"), write(at(X), 1)});
  return p;
}

// Plain load buffering.
Program load_buffering() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "LB";
  p.num_locs = 2;
  p.add_thread({read(0, at(X)), write(at(Y), 1)});
  p.add_thread({read(0, at(Y)), write(at(X), 1)});
  return p;
}

// Plain store buffering.
Program store_buffering() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "SB";
  p.num_locs = 2;
  p.add_thread({write(at(X), 1), read(0, at(Y))});
  p.add_thread({write(at(Y), 1), read(0, at(X))});
  return p;
}

// S2 aborted-read publication (the xwr-vs-cwr figure).
Program aborted_read_publication() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "aborted-read-pub";
  p.num_locs = 2;
  p.add_thread({atomic({write(at(X), 1), write(at(Y), 1)}, "a")});
  p.add_thread({atomic({read(0, at(Y)), abort_stmt()}, "c"), read(1, at(X))});
  return p;
}

// S2 transactional IRIW (the opacity figure); abort_readers makes thread 2's
// reading transaction abort, which must not weaken the verdict.
Program transactional_iriw(bool abort_readers) {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = abort_readers ? "tx-IRIW-aborted" : "tx-IRIW";
  p.num_locs = 2;
  p.add_thread({atomic({write(at(X), 1)})});
  p.add_thread({atomic({write(at(Y), 1)})});
  Block t2 = {atomic(abort_readers
                         ? Block{read(0, at(X)), read(1, at(Y)), abort_stmt()}
                         : Block{read(0, at(X)), read(1, at(Y))})};
  p.add_thread(std::move(t2));
  p.add_thread({atomic({read(0, at(Y)), read(1, at(X))})});
  return p;
}

// S2 plain 2+2W figure.
Program two_plus_two_w() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "2+2W";
  p.num_locs = 2;
  p.add_thread({write(at(X), 2), write(at(Y), 1)});
  p.add_thread({write(at(Y), 2), write(at(X), 1)});
  return p;
}

// S2 coherence figures: forbidden (stronger than Java) and allowed (CSE).
// The y accesses are singleton transactions (the figure's cwr edge): they
// play the role of the volatile in the original LDRF example.
Program coherence_java() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "coherence-java";
  p.num_locs = 2;
  p.add_thread({write(at(X), 1), atomic({write(at(Y), 1)})});
  p.add_thread({write(at(X), 2), atomic({read(0, at(Y))}), read(1, at(X)),
                read(2, at(X))});
  return p;
}

Program coherence_cse() {
  constexpr Loc X = 0;
  Program p;
  p.name = "coherence-cse";
  p.num_locs = 1;
  p.add_thread({write(at(X), 1), write(at(X), 2)});
  p.add_thread({read(0, at(X)), read(1, at(X)), read(2, at(X))});
  return p;
}

// Example 2.3 HBww/AntiWW row with the unconditional read+write body:
// atomic_a{ r:=y; x:=1 } || atomic_b{ y:=1 }; x:=2.
Program hb_ww_row() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "hbww-row";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)), write(at(X), 1)}, "a")});
  p.add_thread({atomic({write(at(Y), 1)}, "b"), write(at(X), 2)});
  return p;
}

// Example 2.3 HBrw/AntiRW row, reversed for the anti axiom: the transaction
// writes x, the privatizing thread then reads it plainly.
Program anti_rw_program() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "anti-rw";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)), write(at(X), 1)}, "a")});
  p.add_thread({atomic({write(at(Y), 1)}, "b"), read(0, at(X))});
  return p;
}

// Example 2.3 HB'ww/Anti'WW row: x:=1; atomic_b{ r:=y } || atomic_c{ x:=2; y:=1 }
Program anti_ww_prime_program() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "anti-ww'";
  p.num_locs = 2;
  p.add_thread({write(at(X), 1), atomic({read(0, at(Y))}, "b")});
  p.add_thread({atomic({write(at(X), 2), write(at(Y), 1)}, "c")});
  return p;
}

// Example 3.1 (== Example 2.3 HB'rw row): publication by antidependency.
Program ex3_1_pub_antidep() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "ex3.1";
  p.num_locs = 2;
  p.add_thread({write(at(X), 1), atomic({read(0, at(Y))}, "a")});
  p.add_thread({atomic({read(0, at(X)), write(at(Y), 1)}, "b")});
  return p;
}

// Example 3.2: no global lock atomicity.
Program ex3_2_no_gla() {
  constexpr Loc X = 0, Y = 1, Z = 2;
  Program p;
  p.name = "ex3.2";
  p.num_locs = 3;
  p.add_thread({write(at(X), 1), atomic({write(at(Y), 1)}, "a"), read(0, at(Z))});
  p.add_thread({atomic({read(0, at(X)), write(at(Z), 1)}, "b")});
  return p;
}

// Example 3.3: benign racy publication (forbidden by our model).
Program ex3_3_racy_pub() {
  constexpr Loc X = 0, Y = 1, Q = 2;
  Program p;
  p.name = "ex3.3";
  p.num_locs = 3;
  p.add_thread({write(at(X), 1), atomic({write(at(Y), 1)}, "a")});
  p.add_thread({write(at(Q), 2),
                atomic({read(0, at(X)), read(1, at(Y)),
                        if_then(ne(1, 0), {write(at(Q), reg(0))})},
                       "b")});
  return p;
}

// Example 3.4: eager versioning / speculative lost update.
Program ex3_4_eager() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "ex3.4";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)),
                        if_then(eq(0, 0), {write(at(X), 1), abort_stmt()})},
                       "a"),
                atomic({read(1, at(Y)), if_then(eq(1, 0), {write(at(X), 1)})}, "b"),
                read(2, at(X))});
  p.add_thread({write(at(X), 2), write(at(Y), 1), read(0, at(X))});
  return p;
}

// Example 3.5: lazy versioning with an array z indexed by the privatized
// value.  Locations: X=0, z[0]=1 (the only reachable cell: 42 is guarded).
Program ex3_5_lazy() {
  constexpr Loc X = 0, Z = 1;
  Program p;
  p.name = "ex3.5";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(X)), write(at(X), 42)}, "a"),
                read(1, at(Z, 0)), read(2, at(Z, 0)), write(at(Z, 0), 0)});
  p.add_thread({atomic({read(0, at(X)),
                        if_then(ne(0, 42), {read(1, at(Z, 0)),
                                            write(at(Z, 0), add(1, 1))})},
                       "b")});
  return p;
}

// S1 temporal locality, scaled to enumeration size: two threads race on x
// then bump a transactional flag F; a reader that transactionally observes
// F == 2 is past the races and must see a single coherent x.
Program temporal_guard() {
  constexpr Loc X = 0, F = 1;
  Program p;
  p.name = "temporal-guard";
  p.num_locs = 2;
  p.add_thread({write(at(X), 1), atomic({read(0, at(F)), write(at(F), add(0, 1))})});
  p.add_thread({write(at(X), 2), atomic({read(0, at(F)), write(at(F), add(0, 1))})});
  p.add_thread({atomic({read(0, at(F))}),
                if_then(eq(0, 2), {read(1, at(X)), read(2, at(X))})});
  return p;
}

// S4 doomed transaction with the actual while loop (bounded): if a reads
// y=0, it spins on x; exiting the loop with x=1 would make it a doomed
// zombie, which consistency forbids.
Program doomed_while() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "doomed-while";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)),
                        if_then(eq(0, 0),
                                {while_loop(ne(1, 1), {read(1, at(X))}, 2)})},
                       "a")});
  p.add_thread({atomic({write(at(Y), 1)}, "b"), write(at(X), 1)});
  return p;
}

// S4 doomed transaction, encoded through the read that would doom it.
Program doomed() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "doomed";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)), if_then(eq(0, 0), {read(1, at(X))})}, "a")});
  p.add_thread({atomic({write(at(Y), 1)}, "b"), write(at(X), 1)});
  return p;
}

// S4 worked LDRF example (temporal/spatial locality).
Program ldrf_worked() {
  constexpr Loc X = 0, Y = 1, F = 2, Z = 3;
  Program p;
  p.name = "ldrf-worked";
  p.num_locs = 4;
  p.add_thread({write(at(X), 1), write(at(Y), 1), atomic({write(at(F), 1)}, "a"),
                write(at(Z), 1)});
  p.add_thread({write(at(Y), 2), atomic({read(0, at(F))}, "b"), write(at(Z), 2),
                if_then(ne(0, 0),
                        {read(1, at(X)), read(2, at(Y)), read(3, at(Y))})});
  return p;
}

// S5 (dagger) and its (invalid) reordering.
Program dagger(bool reordered) {
  constexpr Loc X = 0, Y = 1, Z = 2;
  Program p;
  p.name = reordered ? "dagger-reordered" : "dagger";
  p.num_locs = 3;
  p.add_thread({write(at(Z), 1),
                atomic({read(0, at(Y)), if_then(eq(0, 0), {write(at(X), 1)})}, "a")});
  if (reordered) {
    p.add_thread({atomic({write(at(Y), 1)}, "b"), read(0, at(Z)), write(at(X), 2)});
  } else {
    p.add_thread({atomic({write(at(Y), 1)}, "b"), write(at(X), 2), read(0, at(Z))});
  }
  return p;
}

// Appendix D.1: opaque writes.
Program d1_opaque_writes() {
  constexpr Loc X = 0;
  Program p;
  p.name = "D.1";
  p.num_locs = 1;
  p.add_thread({atomic({write(at(X), 1), abort_stmt()}, "a")});
  p.add_thread({atomic({read(0, at(X))}, "b")});
  return p;
}

// Appendix D.2: race-free speculation.
Program d2_speculation() {
  constexpr Loc X = 0, Y = 1, Z = 2;
  Program p;
  p.name = "D.2";
  p.num_locs = 3;
  p.add_thread({atomic({read(0, at(X)), write(at(X), add(0, 1)), read(1, at(Y)),
                        write(at(Y), add(1, 1))},
                       "a")});
  p.add_thread({atomic({read(0, at(X)), read(1, at(Y)),
                        if_then(ne_reg(0, 1), {write(at(Z), 1), abort_stmt()})},
                       "b")});
  p.add_thread({write(at(Z), 2), read(0, at(Z))});
  return p;
}

// Appendix D.3: dirty reads.
Program d3_dirty_reads() {
  constexpr Loc X = 0, Y = 1;
  Program p;
  p.name = "D.3";
  p.num_locs = 2;
  p.add_thread({atomic({read(0, at(Y)),
                        if_then(eq(0, 0), {write(at(X), 1), abort_stmt()})},
                       "a"),
                atomic({read(1, at(Y)), if_then(eq(1, 0), {write(at(X), 1)})}, "b")});
  p.add_thread({read(0, at(X)), if_then(eq(0, 1), {write(at(Y), 1)})});
  return p;
}

// Appendix D.4: no overlapped writes; z[] published through x.
// Locations: X=0, Y=1, z[0]=2, z[1]=3.
Program d4_no_overlap() {
  constexpr Loc X = 0, Y = 1, Z = 2;
  Program p;
  p.name = "D.4";
  p.num_locs = 4;
  p.add_thread({atomic({write(at(Y), 1), read(0, at(Y)), write(at(Z, 0), 1),
                        write(at(X), 1)},
                       "a")});
  p.add_thread({atomic({read(0, at(X))}, "b"),
                if_then(ne(0, 0), {read(1, at(Z, 0))})});
  return p;
}

std::vector<LitmusTest> build_catalog() {
  std::vector<LitmusTest> v;

  v.push_back({"E01", "S1/Ex2.1 privatization", "final x == 1",
               privatization(false),
               [](const Outcome& o) { return o.loc(0) == 1; },
               {exp_("base", kAllowed), exp_("programmer", kForbidden),
                exp_("implementation", kAllowed), exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E02", "S1 publication", "final z == 0", publication(),
               [](const Outcome& o) { return o.loc(2) == 0; },
               everywhere(kForbidden)});

  v.push_back({"E03", "S1 IRIW with racy z", "r1=1,r2=0,q1=1,q2=0",
               iriw_racy_z(),
               [](const Outcome& o) {
                 return o.reg(2, 0) == 1 && o.reg(2, 1) == 0 && o.reg(3, 0) == 1 &&
                        o.reg(3, 1) == 0;
               },
               everywhere(kForbidden)});

  v.push_back({"E06", "Ex2.2 reversed privatization", "a read y=0 and final x == 2",
               example_2_2(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.loc(0) == 2; },
               {exp_("base", kAllowed), exp_("programmer", kForbidden),
                exp_("implementation", kAllowed), exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E07", "S2 load buffering", "r=1 and q=1", load_buffering(),
               [](const Outcome& o) { return o.reg(0, 0) == 1 && o.reg(1, 0) == 1; },
               everywhere(kForbidden)});

  v.push_back({"E08", "S2 store buffering", "r=0 and q=0", store_buffering(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(1, 0) == 0; },
               everywhere(kAllowed)});

  v.push_back({"E09", "S2 publication through aborted read", "r=1 and q=0",
               aborted_read_publication(),
               [](const Outcome& o) { return o.reg(1, 0) == 1 && o.reg(1, 1) == 0; },
               everywhere(kAllowed)});

  v.push_back({"E10", "S2 transactional IRIW (opacity)", "1,0 / 1,0",
               transactional_iriw(false),
               [](const Outcome& o) {
                 return o.reg(2, 0) == 1 && o.reg(2, 1) == 0 && o.reg(3, 0) == 1 &&
                        o.reg(3, 1) == 0;
               },
               everywhere(kForbidden)});

  v.push_back({"E10b", "S2 transactional IRIW, aborted reader", "1,0 / 1,0",
               transactional_iriw(true),
               [](const Outcome& o) {
                 return o.reg(2, 0) == 1 && o.reg(2, 1) == 0 && o.reg(3, 0) == 1 &&
                        o.reg(3, 1) == 0;
               },
               everywhere(kForbidden)});

  v.push_back({"E11", "S2 2+2W", "final x == 2 and y == 2", two_plus_two_w(),
               [](const Outcome& o) { return o.loc(0) == 2 && o.loc(1) == 2; },
               everywhere(kAllowed)});

  v.push_back({"E12a", "S2 coherence (stronger than Java)", "reads y=1; x=2 then x=1",
               coherence_java(),
               [](const Outcome& o) {
                 return o.reg(1, 0) == 1 && o.reg(1, 1) == 2 && o.reg(1, 2) == 1;
               },
               everywhere(kForbidden)});

  v.push_back({"E12b", "S2 coherence (CSE-friendly)", "reads x=2,1,2",
               coherence_cse(),
               [](const Outcome& o) {
                 return o.reg(1, 0) == 2 && o.reg(1, 1) == 1 && o.reg(1, 2) == 2;
               },
               everywhere(kAllowed)});

  v.push_back({"E13ww", "Ex2.3 AntiWW row (unconditional)",
               "a read y=0 and final x == 1", hb_ww_row(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.loc(0) == 1; },
               {exp_("base", kAllowed), exp_("programmer", kForbidden),
                exp_("HBww+AntiWW", kForbidden), exp_("implementation", kAllowed),
                exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E13rw", "Ex2.3 AntiRW row", "a read y=0 and plain q=x reads 0",
               anti_rw_program(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(1, 0) == 0; },
               {exp_("base", kAllowed), exp_("programmer", kAllowed),
                exp_("HBrw+AntiRW", kForbidden), exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E13wwp", "Ex2.3 Anti'WW row", "b read y=0 and final x == 1",
               anti_ww_prime_program(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.loc(0) == 1; },
               {exp_("base", kAllowed), exp_("programmer", kAllowed),
                exp_("HB'ww+Anti'WW", kForbidden),
                exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E14", "Ex3.1 no publication by antidependency", "r=0 and q=0",
               ex3_1_pub_antidep(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(1, 0) == 0; },
               {exp_("base", kAllowed), exp_("programmer", kAllowed),
                exp_("implementation", kAllowed), exp_("HB'rw+Anti'RW", kForbidden),
                exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E15", "Ex3.2 no global lock atomicity", "r=0 and q=0",
               ex3_2_no_gla(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(1, 0) == 0; },
               {exp_("base", kAllowed), exp_("programmer", kAllowed),
                exp_("implementation", kAllowed), exp_("strongest(x86)", kAllowed)}});

  v.push_back({"E16", "Ex3.3 benign racy publication", "final q == 0",
               ex3_3_racy_pub(),
               [](const Outcome& o) { return o.loc(2) == 0; },
               everywhere(kForbidden)});

  v.push_back({"E17a", "Ex3.4 speculative lost update", "plain q=x reads 0",
               ex3_4_eager(),
               [](const Outcome& o) { return o.reg(1, 0) == 0; },
               everywhere(kForbidden)});

  v.push_back({"E17b", "Ex3.4 allowed execution 1", "r=0 and q=2", ex3_4_eager(),
               [](const Outcome& o) { return o.reg(0, 2) == 0 && o.reg(1, 0) == 2; },
               everywhere(kAllowed)});

  v.push_back({"E17c", "Ex3.4 allowed execution 2", "r=2", ex3_4_eager(),
               [](const Outcome& o) { return o.reg(0, 2) == 2; },
               everywhere(kAllowed)});

  v.push_back({"E18a", "Ex3.5 lazy versioning", "r1 != r2", ex3_5_lazy(),
               [](const Outcome& o) { return o.reg(0, 1) != o.reg(0, 2); },
               {exp_("base", kAllowed), exp_("programmer", kAllowed),
                exp_("implementation", kAllowed), exp_("HBrw+AntiRW", kForbidden),
                exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E18b", "Ex3.5 lazy versioning", "final z[0] != 0", ex3_5_lazy(),
               [](const Outcome& o) { return o.loc(1) != 0; },
               {exp_("base", kAllowed), exp_("programmer", kForbidden),
                exp_("implementation", kAllowed), exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E19a", "S4 LDRF worked example", "read F=1 then x=0", ldrf_worked(),
               [](const Outcome& o) { return o.reg(1, 0) == 1 && o.reg(1, 1) == 0; },
               everywhere(kForbidden)});

  v.push_back({"E19b", "S4 LDRF worked example", "read F=1, y reads differ",
               ldrf_worked(),
               [](const Outcome& o) {
                 return o.reg(1, 0) == 1 && o.reg(1, 2) != o.reg(1, 3);
               },
               everywhere(kForbidden)});

  v.push_back({"E04", "S1 temporal locality (scaled)", "F=2 observed, x reads differ",
               temporal_guard(),
               [](const Outcome& o) {
                 return o.reg(2, 0) == 2 && o.reg(2, 1) != o.reg(2, 2);
               },
               everywhere(kForbidden)});

  v.push_back({"E04b", "S1 temporal locality (scaled)", "F=2 observed, x reads 0",
               temporal_guard(),
               [](const Outcome& o) { return o.reg(2, 0) == 2 && o.reg(2, 1) == 0; },
               everywhere(kForbidden)});

  v.push_back({"E20", "S4 doomed transaction", "a reads y=0 then x=1", doomed(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(0, 1) == 1; },
               everywhere(kForbidden)});

  v.push_back({"E20b", "S4 doomed transaction (while loop)",
               "a reads y=0, loop exits with x=1", doomed_while(),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(0, 1) == 1; },
               everywhere(kForbidden)});

  v.push_back({"E23", "S5 (dagger)", "a read y=0 and plain r=z reads 0",
               dagger(false),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(1, 0) == 0; },
               {exp_("base", kAllowed), exp_("programmer", kForbidden),
                exp_("implementation", kAllowed), exp_("strongest(x86)", kForbidden)}});

  v.push_back({"E23b", "S5 (dagger) reordered", "a read y=0 and plain r=z reads 0",
               dagger(true),
               [](const Outcome& o) { return o.reg(0, 0) == 0 && o.reg(1, 0) == 0; },
               everywhere(kAllowed)});

  v.push_back({"E27", "App D.1 opaque writes", "r == 1", d1_opaque_writes(),
               [](const Outcome& o) { return o.reg(1, 0) == 1; },
               everywhere(kForbidden)});

  v.push_back({"E28", "App D.2 race-free speculation", "r != 2", d2_speculation(),
               [](const Outcome& o) { return o.reg(2, 0) != 2; },
               everywhere(kForbidden)});

  v.push_back({"E29", "App D.3 dirty reads", "final x == 0 and y == 1",
               d3_dirty_reads(),
               [](const Outcome& o) { return o.loc(0) == 0 && o.loc(1) == 1; },
               everywhere(kForbidden)});

  v.push_back({"E30", "App D.4 no overlapped writes", "q = 1 and r = z[1] reads 0",
               d4_no_overlap(),
               [](const Outcome& o) { return o.reg(1, 0) == 1 && o.reg(1, 1) == 0; },
               everywhere(kForbidden)});

  v.push_back({"E34a", "S5 privatization with quiescence fence", "final x == 1",
               privatization(true),
               [](const Outcome& o) { return o.loc(0) == 1; },
               {exp_("implementation", kForbidden)}});

  return v;
}

}  // namespace

const std::vector<LitmusTest>& catalog() {
  static const std::vector<LitmusTest> tests = build_catalog();
  return tests;
}

ModelConfig config_by_name(const std::string& name) {
  const std::vector<ModelConfig> all = {
      ModelConfig::base(),           ModelConfig::programmer(),
      ModelConfig::implementation(), ModelConfig::strongest(),
      ModelConfig::variant_hb_ww(),  ModelConfig::variant_hb_rw(),
      ModelConfig::variant_hb_wr(),  ModelConfig::variant_hb_ww_p(),
      ModelConfig::variant_hb_rw_p(), ModelConfig::variant_hb_wr_p()};
  for (const ModelConfig& c : all)
    if (c.name == name) return c;
  throw std::invalid_argument("unknown model config: " + name);
}

VerdictRow run_verdict(const LitmusTest& test, const Expectation& exp,
                       EnumOptions opts) {
  GraphEnum e(test.program, config_by_name(exp.config), opts);
  const OutcomeSet set = e.outcomes();
  VerdictRow row;
  row.id = test.id;
  row.config = exp.config;
  row.expected_allowed = exp.allowed;
  row.actual_allowed = set.any(test.witness);
  row.outcome_count = set.size();
  row.consistent_execs = e.stats().consistent;
  return row;
}

std::vector<VerdictRow> run_catalog(EnumOptions opts) {
  std::vector<VerdictRow> rows;
  for (const LitmusTest& t : catalog())
    for (const Expectation& exp : t.expected) rows.push_back(run_verdict(t, exp, opts));
  return rows;
}

}  // namespace mtx::lit
