// Axiomatic execution enumerator.
//
// For a litmus program, enumerates every candidate execution:
//   control paths  x  reads-from choices  x  per-location coherence orders
//   x  fence/transaction orderings (WF12),
// resolves values by a replay fixpoint (locations may be register-indexed,
// so the value flow can cross threads through reads-from), constructs a
// concrete trace via a WF8-WF11-respecting linearization, and keeps the
// executions that are well-formed and consistent under the chosen model.
//
// This is the engine behind every allowed/forbidden verdict reproduced from
// the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "litmus/ast.hpp"
#include "litmus/outcome.hpp"
#include "litmus/program.hpp"
#include "model/consistency.hpp"

namespace mtx::lit {

struct EnumOptions {
  // Upper bound on candidate executions examined (pre-consistency).
  std::uint64_t budget = 4'000'000;
};

struct Execution {
  model::Trace trace;
  std::vector<std::vector<Value>> regs;  // final registers per thread
};

struct EnumStats {
  std::uint64_t candidates = 0;   // (path, rf, co, fence) tuples examined
  std::uint64_t infeasible = 0;   // failed replay (guards/locs/cyclic values)
  std::uint64_t unlinearizable = 0;  // no WF-respecting index order
  std::uint64_t inconsistent = 0;    // failed WF or an axiom
  std::uint64_t consistent = 0;
  bool truncated = false;
};

class GraphEnum {
 public:
  GraphEnum(Program p, model::ModelConfig cfg, EnumOptions opts = {});

  // Calls fn for every consistent execution found.
  void for_each(const std::function<void(const Execution&)>& fn);

  // Deduplicated final-state outcomes of all consistent executions.
  OutcomeSet outcomes();

  const EnumStats& stats() const { return stats_; }

 private:
  Program prog_;
  model::ModelConfig cfg_;
  EnumOptions opts_;
  EnumStats stats_;
};

// One-call helper.
OutcomeSet enumerate_outcomes(const Program& p, const model::ModelConfig& cfg,
                              EnumOptions opts = {});

}  // namespace mtx::lit
