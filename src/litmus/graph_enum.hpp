// Axiomatic execution enumerator.
//
// For a litmus program, enumerates every candidate execution:
//   control paths  x  reads-from choices  x  per-location coherence orders
//   x  fence/transaction orderings (WF12),
// resolves values by a replay fixpoint (locations may be register-indexed,
// so the value flow can cross threads through reads-from), constructs a
// concrete trace via a WF8-WF11-respecting linearization, and keeps the
// executions that are well-formed and consistent under the chosen model.
//
// This is the engine behind every allowed/forbidden verdict reproduced from
// the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "litmus/ast.hpp"
#include "litmus/outcome.hpp"
#include "litmus/program.hpp"
#include "model/consistency.hpp"

namespace mtx::lit {

struct EnumOptions {
  // Upper bound on candidate executions examined (pre-consistency).
  std::uint64_t budget = 4'000'000;
  // Wall-clock bound per enumeration call; 0 means unbounded.  Checked
  // periodically, so overrun is at most one check interval.  A timed-out
  // enumeration reports truncated=true and timed_out=true in its stats.
  std::uint64_t time_budget_ms = 0;
};

struct Execution {
  model::Trace trace;
  std::vector<std::vector<Value>> regs;  // final registers per thread
};

struct EnumStats {
  std::uint64_t candidates = 0;   // (path, rf, co, fence) tuples examined
  std::uint64_t infeasible = 0;   // failed replay (guards/locs/cyclic values)
  std::uint64_t unlinearizable = 0;  // no WF-respecting index order
  std::uint64_t inconsistent = 0;    // failed WF or an axiom
  std::uint64_t consistent = 0;
  bool truncated = false;
  bool timed_out = false;

  // Merge counters from a sibling shard of the same enumeration space.
  EnumStats& operator+=(const EnumStats& o) {
    candidates += o.candidates;
    infeasible += o.infeasible;
    unlinearizable += o.unlinearizable;
    inconsistent += o.inconsistent;
    consistent += o.consistent;
    truncated = truncated || o.truncated;
    timed_out = timed_out || o.timed_out;
    return *this;
  }
};

class GraphEnum {
 public:
  GraphEnum(Program p, model::ModelConfig cfg, EnumOptions opts = {});

  // An independently enumerable slice of the candidate space: one control
  // path combination, restricted to reads-from tuples [rf_begin, rf_end) in
  // odometer order.  Disjoint subspaces cover disjoint candidates, so a
  // partition of the rf range enumerates the combo's space exactly once —
  // the frontier split the parallel campaign fans out over.
  struct Subspace {
    std::vector<std::size_t> combo;
    std::uint64_t rf_begin = 0;
    std::uint64_t rf_end = UINT64_MAX;
  };

  // Calls fn for every consistent execution found.
  void for_each(const std::function<void(const Execution&)>& fn);

  // Calls fn for every consistent execution inside one subspace.
  void for_each(const Subspace& sub, const std::function<void(const Execution&)>& fn);

  // Partitions the whole candidate space into subspaces of at most
  // `max_rf_chunk` reads-from tuples each (at least one per path combo).
  std::vector<Subspace> subspaces(std::uint64_t max_rf_chunk) const;

  // Deduplicated final-state outcomes of all consistent executions.
  OutcomeSet outcomes();

  const EnumStats& stats() const { return stats_; }

 private:
  void enumerate(const Subspace* restrict_to,
                 const std::function<void(const Execution&)>& fn);

  Program prog_;
  model::ModelConfig cfg_;
  EnumOptions opts_;
  EnumStats stats_;
};

// One-call helper.
OutcomeSet enumerate_outcomes(const Program& p, const model::ModelConfig& cfg,
                              EnumOptions opts = {});

}  // namespace mtx::lit
