// Random litmus-program generator for differential model testing: small
// programs over a few locations mixing plain accesses, transactions,
// conditional branches and occasional aborts.  Deterministic per seed.
#pragma once

#include "litmus/ast.hpp"
#include "substrate/rng.hpp"

namespace mtx::lit {

struct RandomProgramParams {
  int threads = 2;
  int locs = 2;
  int stmts_per_thread = 3;     // top-level statements
  unsigned atomic_percent = 45;  // top-level statement is an atomic block
  unsigned abort_percent = 15;   // an atomic block ends with abort
  unsigned branch_percent = 20;  // a body statement is an if on a prior read
  int max_atomic_body = 3;
  // A top-level statement is a quiescence fence.  Defaults to 0 — and the
  // fence draw is skipped entirely at 0 — so the RNG stream (and therefore
  // every program the existing seeded differential tests generate) is
  // unchanged; the runtime fuzz campaign turns fences on to exercise the
  // implementation model's HBCQ/HBQB machinery end to end.
  unsigned fence_percent = 0;
};

Program random_program(Rng& rng, const RandomProgramParams& params);

}  // namespace mtx::lit
