#include "litmus/graph_enum.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "substrate/digraph.hpp"
#include "substrate/enumerate.hpp"

namespace mtx::lit {

namespace {

using model::Action;
using model::kInitThread;
using model::Loc;
using model::ModelConfig;
using model::Trace;
using mtx::Rational;

// A concrete event of a candidate execution.  Ids are global: the init
// transaction's events come first (begin, one write per location, commit),
// then thread events in (thread, path position) order.
struct Event {
  int id = -1;
  int thread = kInitThread;
  PEvent::Kind kind = PEvent::Kind::Begin;

  // Static template (program events).
  LocExpr locx;
  Expr valuex;
  int reg = -1;

  // Transaction structure, known statically from the path shape.
  int txn_begin = -1;   // event id of enclosing begin (self for B/C/A)
  bool txn_aborted = false;

  // Resolved during replay.
  Loc loc = -1;
  Value value = 0;
  bool resolved = false;

  // Coherence position -> timestamp (writes), or the writer's ts (reads).
  Rational ts{0};

  bool is_write() const { return kind == PEvent::Kind::Write; }
  bool is_read() const { return kind == PEvent::Kind::Read; }
  bool plain() const { return txn_begin < 0; }
  bool nonaborted_writer() const { return plain() || !txn_aborted; }
};

struct Candidate {
  std::vector<Event> events;                   // all events, id-indexed
  std::vector<std::vector<int>> thread_events; // program event ids per thread
  std::vector<std::vector<PEvent>> guards_before;  // guards preceding event k of thread
  std::vector<std::vector<PEvent>> trailing_guards;  // guards after last action
  std::vector<int> reads;                      // event ids of reads
  std::vector<int> writes;                     // event ids of all writes (incl init)
  int num_locs = 0;
  int init_commit_id = 0;
};

// Instantiate events for a path combination.
Candidate build_candidate(const Program& prog,
                          const std::vector<std::vector<Path>>& paths,
                          const std::vector<std::size_t>& combo) {
  Candidate c;
  c.num_locs = prog.num_locs;
  int next_id = 0;

  // Init transaction events.
  {
    Event b;
    b.id = next_id++;
    b.kind = PEvent::Kind::Begin;
    b.txn_begin = b.id;
    b.resolved = true;
    c.events.push_back(b);
    for (Loc x = 0; x < prog.num_locs; ++x) {
      Event w;
      w.id = next_id++;
      w.kind = PEvent::Kind::Write;
      w.txn_begin = b.id;
      w.loc = x;
      w.value = 0;
      w.ts = Rational(0);
      w.resolved = true;
      c.events.push_back(w);
      c.writes.push_back(w.id);
    }
    Event e;
    e.id = next_id++;
    e.kind = PEvent::Kind::Commit;
    e.txn_begin = b.id;
    e.resolved = true;
    c.init_commit_id = e.id;
    c.events.push_back(e);
  }

  c.thread_events.resize(prog.threads.size());
  c.guards_before.resize(0);

  for (std::size_t t = 0; t < prog.threads.size(); ++t) {
    const Path& path = paths[t][combo[t]];
    int open_begin = -1;
    bool open_aborted = false;
    // Determine, per begin, whether the txn aborts (path is linear).
    std::vector<PEvent> pending_guards;
    std::vector<std::vector<PEvent>> guards_for_thread;
    for (const PEvent& pe : path) {
      if (pe.kind == PEvent::Kind::Guard) {
        pending_guards.push_back(pe);
        continue;
      }
      Event e;
      e.id = next_id++;
      e.thread = static_cast<int>(t);
      e.kind = pe.kind;
      e.locx = pe.loc;
      e.valuex = pe.value;
      e.reg = pe.reg;
      switch (pe.kind) {
        case PEvent::Kind::Begin: {
          e.txn_begin = e.id;
          open_begin = e.id;
          // Scan forward in the path: does this atomic end in Abort?
          open_aborted = false;
          {
            int depth = 0;
            bool found = false;
            for (const PEvent& q : path) {
              if (&q <= &pe) continue;
              if (q.kind == PEvent::Kind::Begin) ++depth;
              if (q.kind == PEvent::Kind::Commit || q.kind == PEvent::Kind::Abort) {
                if (depth == 0) {
                  open_aborted = q.kind == PEvent::Kind::Abort;
                  found = true;
                  break;
                }
                --depth;
              }
            }
            (void)found;
          }
          e.txn_aborted = open_aborted;
          break;
        }
        case PEvent::Kind::Commit:
        case PEvent::Kind::Abort:
          e.txn_begin = open_begin;
          e.txn_aborted = open_aborted;
          open_begin = -1;
          break;
        case PEvent::Kind::Fence:
          e.txn_begin = -1;
          break;
        default:
          e.txn_begin = open_begin;
          e.txn_aborted = open_begin >= 0 && open_aborted;
          break;
      }
      c.events.push_back(e);
      c.thread_events[t].push_back(e.id);
      guards_for_thread.push_back(pending_guards);
      pending_guards.clear();
      if (e.is_read()) c.reads.push_back(e.id);
      if (e.is_write()) c.writes.push_back(e.id);
    }
    c.guards_before.insert(c.guards_before.end(), guards_for_thread.begin(),
                           guards_for_thread.end());
    c.trailing_guards.push_back(pending_guards);
  }
  return c;
}

// Per-thread guard lists are stored flat in candidate build order; recover
// them by walking thread_events in the same order.
struct GuardIndex {
  // guards_before[k] corresponds to the k-th program event appended overall.
  const Candidate& c;
  std::vector<std::vector<const std::vector<PEvent>*>> per_thread;

  explicit GuardIndex(const Candidate& cand) : c(cand) {
    per_thread.resize(c.thread_events.size());
    std::size_t flat = 0;
    for (std::size_t t = 0; t < c.thread_events.size(); ++t)
      for (std::size_t k = 0; k < c.thread_events[t].size(); ++k)
        per_thread[t].push_back(&c.guards_before[flat++]);
  }
};

// Replay all threads, resolving locations and values given an rf choice.
// Returns final register files, or nullopt if infeasible.
std::optional<std::vector<std::vector<Value>>> replay(
    Candidate& c, const std::vector<int>& rf, const GuardIndex& gi) {
  const std::size_t nthreads = c.thread_events.size();
  std::vector<std::vector<Value>> regs(nthreads, std::vector<Value>(kMaxRegs, 0));
  std::vector<std::size_t> pc(nthreads, 0);

  // Map read event id -> its index in c.reads for rf lookup.
  auto writer_of = [&](int read_id) -> Event& {
    for (std::size_t i = 0; i < c.reads.size(); ++i)
      if (c.reads[i] == read_id) return c.events[static_cast<std::size_t>(rf[i])];
    std::abort();
  };

  bool progress = true;
  std::size_t done = 0;
  std::size_t total = 0;
  for (auto& te : c.thread_events) total += te.size();

  while (progress && done < total) {
    progress = false;
    for (std::size_t t = 0; t < nthreads; ++t) {
      while (pc[t] < c.thread_events[t].size()) {
        Event& e = c.events[static_cast<std::size_t>(c.thread_events[t][pc[t]])];
        // Guards preceding this event.
        for (const PEvent& g : *gi.per_thread[t][pc[t]])
          if (g.cond.eval(regs[t]) != g.expected) return std::nullopt;
        if (e.is_read()) {
          Event& w = writer_of(e.id);
          if (!w.resolved) break;  // wait for the writer's value
          e.loc = e.locx.eval(regs[t]);
          if (w.loc != e.loc) return std::nullopt;  // rf loc mismatch
          e.value = w.value;
          regs[t][static_cast<std::size_t>(e.reg)] = e.value;
        } else if (e.is_write()) {
          e.loc = e.locx.eval(regs[t]);
          e.value = e.valuex.eval(regs[t]);
        } else if (e.kind == PEvent::Kind::Fence) {
          e.loc = e.locx.eval(regs[t]);
        }
        if (e.loc >= c.num_locs && (e.is_read() || e.is_write()))
          return std::nullopt;  // out-of-range array index
        e.resolved = true;
        ++pc[t];
        ++done;
        progress = true;
      }
    }
  }
  if (done < total) return std::nullopt;  // cyclic value dependency
  // Trailing guards (after the last action of each thread).
  for (std::size_t t = 0; t < nthreads; ++t)
    for (const PEvent& g : c.trailing_guards[t])
      if (g.cond.eval(regs[t]) != g.expected) return std::nullopt;
  return regs;
}

// Build the WF-constraint digraph and return a linearization of the program
// events (init events excluded; they come first by construction), or
// nullopt if none exists.
std::optional<std::vector<int>> linearize(const Candidate& c,
                                          const std::vector<int>& rf,
                                          const std::vector<std::size_t>& fence_choice,
                                          const std::vector<std::pair<int, int>>& fence_pairs) {
  const std::size_t n = c.events.size();
  Digraph g(n);

  // Init transaction before every program event.
  for (std::size_t i = static_cast<std::size_t>(c.init_commit_id) + 1; i < n; ++i)
    g.add_edge(static_cast<std::size_t>(c.init_commit_id), i);
  for (int i = 0; i < c.init_commit_id; ++i)
    g.add_edge(static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1));

  // Program order.
  for (const auto& te : c.thread_events)
    for (std::size_t k = 0; k + 1 < te.size(); ++k)
      g.add_edge(static_cast<std::size_t>(te[k]), static_cast<std::size_t>(te[k + 1]));

  // WF8: writers precede their readers.
  for (std::size_t i = 0; i < c.reads.size(); ++i)
    g.add_edge(static_cast<std::size_t>(rf[i]), static_cast<std::size_t>(c.reads[i]));

  auto ww = [&](const Event& a, const Event& b) {
    return a.is_write() && b.is_write() && a.loc == b.loc && a.ts < b.ts;
  };

  for (int wid : c.writes) {
    const Event& b = c.events[static_cast<std::size_t>(wid)];
    if (b.thread == kInitThread || b.txn_begin < 0 || b.txn_aborted) continue;
    // WF9: nonaborted transactional write b must precede any
    // committed-or-live transactional write c with b ww c (plain and
    // aborted writes are unconstrained).
    for (int cid : c.writes) {
      if (cid == wid) continue;
      const Event& cw = c.events[static_cast<std::size_t>(cid)];
      if (cw.txn_begin < 0 || cw.txn_aborted) continue;
      if (ww(b, cw)) g.add_edge(static_cast<std::size_t>(wid), static_cast<std::size_t>(cid));
    }
  }

  for (std::size_t i = 0; i < c.reads.size(); ++i) {
    const Event& b = c.events[static_cast<std::size_t>(c.reads[i])];
    const Event& a = c.events[static_cast<std::size_t>(rf[i])];
    if (b.txn_begin < 0) continue;
    for (int cid : c.writes) {
      if (cid == a.id) continue;
      const Event& cw = c.events[static_cast<std::size_t>(cid)];
      if (!ww(a, cw)) continue;
      // WF10: if the writer is transactional, b precedes every
      // committed-or-live transactional overwrite of its source.
      if (a.txn_begin >= 0 && cw.txn_begin >= 0 && !cw.txn_aborted)
        g.add_edge(static_cast<std::size_t>(b.id), static_cast<std::size_t>(cid));
      // WF11: b precedes same-transaction overwrites of its source.
      if (cw.txn_begin >= 0 && cw.txn_begin == b.txn_begin)
        g.add_edge(static_cast<std::size_t>(b.id), static_cast<std::size_t>(cid));
    }
  }

  // WF12 fence choices: fence before the txn's begin, or after its
  // resolution.
  for (std::size_t k = 0; k < fence_pairs.size(); ++k) {
    const auto [fence_id, begin_id] = fence_pairs[k];
    // Find the resolution event of this begin.
    int res_id = -1;
    for (const Event& e : c.events)
      if ((e.kind == PEvent::Kind::Commit || e.kind == PEvent::Kind::Abort) &&
          e.txn_begin == begin_id)
        res_id = e.id;
    if (fence_choice[k] == 0 && res_id >= 0) {
      g.add_edge(static_cast<std::size_t>(res_id), static_cast<std::size_t>(fence_id));
    } else {
      g.add_edge(static_cast<std::size_t>(fence_id), static_cast<std::size_t>(begin_id));
    }
  }

  auto order = g.topo_order();
  if (!order) return std::nullopt;
  std::vector<int> program_order;
  for (std::size_t v : *order)
    if (static_cast<int>(v) > c.init_commit_id) program_order.push_back(static_cast<int>(v));
  return program_order;
}

Trace build_trace(const Candidate& c, const std::vector<int>& order) {
  Trace t = Trace::with_init(c.num_locs);
  for (int id : order) {
    const Event& e = c.events[static_cast<std::size_t>(id)];
    switch (e.kind) {
      case PEvent::Kind::Read:
        t.append(model::make_read(e.thread, e.loc, e.value, e.ts, e.id));
        break;
      case PEvent::Kind::Write:
        t.append(model::make_write(e.thread, e.loc, e.value, e.ts, e.id));
        break;
      case PEvent::Kind::Begin:
        t.append(model::make_begin(e.thread, e.id));
        break;
      case PEvent::Kind::Commit:
        t.append(model::make_commit(e.thread, e.txn_begin, e.id));
        break;
      case PEvent::Kind::Abort:
        t.append(model::make_abort(e.thread, e.txn_begin, e.id));
        break;
      case PEvent::Kind::Fence:
        t.append(model::make_qfence(e.thread, e.loc, e.id));
        break;
      case PEvent::Kind::Guard:
        break;
    }
  }
  return t;
}

// rf candidates per read: any write that is statically compatible.
std::vector<std::vector<int>> rf_candidate_ids(const Candidate& base) {
  std::vector<std::vector<int>> rf_candidates;
  for (int rid : base.reads) {
    const Event& r = base.events[static_cast<std::size_t>(rid)];
    std::vector<int> cands;
    for (int wid : base.writes) {
      const Event& w = base.events[static_cast<std::size_t>(wid)];
      // Static location filter (dynamic locations checked in replay).
      if (!w.locx.dynamic() && !r.locx.dynamic() && w.thread != kInitThread &&
          w.locx.base != r.locx.base)
        continue;
      // WF7 visibility: an aborted writer is readable only within its own
      // transaction.  (All paths end resolved, so there is no live case.)
      if (w.txn_begin >= 0 && w.txn_aborted && w.txn_begin != r.txn_begin) continue;
      cands.push_back(wid);
    }
    rf_candidates.push_back(std::move(cands));
  }
  return rf_candidates;
}

}  // namespace

GraphEnum::GraphEnum(Program p, model::ModelConfig cfg, EnumOptions opts)
    : prog_(std::move(p)), cfg_(std::move(cfg)), opts_(opts) {}

void GraphEnum::for_each(const std::function<void(const Execution&)>& fn) {
  enumerate(nullptr, fn);
}

void GraphEnum::for_each(const Subspace& sub,
                         const std::function<void(const Execution&)>& fn) {
  enumerate(&sub, fn);
}

std::vector<GraphEnum::Subspace> GraphEnum::subspaces(std::uint64_t max_rf_chunk) const {
  if (max_rf_chunk == 0) max_rf_chunk = 1;
  std::vector<std::vector<Path>> paths;
  paths.reserve(prog_.threads.size());
  for (const Block& b : prog_.threads) paths.push_back(expand_paths(b));
  std::vector<std::size_t> combo_radices;
  for (const auto& ps : paths) combo_radices.push_back(ps.size());

  // Shards past the node budget would only enumerate candidates the budget
  // rejects, so cap the shard count per combo and let an oversized final
  // shard absorb the (truncated-anyway) remainder.  This keeps subspaces()
  // itself O(budget/chunk) even when the rf product saturates uint64.
  const std::uint64_t max_shards =
      std::max<std::uint64_t>(1, (opts_.budget + max_rf_chunk - 1) / max_rf_chunk);

  std::vector<Subspace> out;
  for_each_product(combo_radices, [&](const std::vector<std::size_t>& combo) {
    const Candidate base = build_candidate(prog_, paths, combo);
    std::vector<std::size_t> rf_radices;
    for (const auto& cands : rf_candidate_ids(base)) rf_radices.push_back(cands.size());
    const std::uint64_t total = product_size(rf_radices);
    std::uint64_t begin = 0;
    for (std::uint64_t s = 0; begin < total; ++s) {
      const std::uint64_t end =
          s + 1 >= max_shards ? total : std::min(total, begin + max_rf_chunk);
      out.push_back(Subspace{combo, begin, end});
      begin = end;
    }
    return true;
  });
  return out;
}

void GraphEnum::enumerate(const Subspace* restrict_to,
                          const std::function<void(const Execution&)>& fn) {
  std::vector<std::vector<Path>> paths;
  paths.reserve(prog_.threads.size());
  for (const Block& b : prog_.threads) paths.push_back(expand_paths(b));

  std::vector<std::size_t> combo_radices;
  for (const auto& ps : paths) combo_radices.push_back(ps.size());

  Budget budget(opts_.budget);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t time_checks = 0;
  // Deadline poll, amortized: only every 1024th call looks at the clock.
  auto out_of_time = [&]() -> bool {
    if (opts_.time_budget_ms == 0) return false;
    if ((time_checks++ & 1023) != 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    return static_cast<std::uint64_t>(elapsed.count()) >= opts_.time_budget_ms;
  };
  bool aborted = false;

  auto run_combo = [&](const std::vector<std::size_t>& combo,
                       std::uint64_t rf_begin, std::uint64_t rf_end) {
    Candidate base = build_candidate(prog_, paths, combo);
    const GuardIndex gi(base);

    const std::vector<std::vector<int>> rf_candidates = rf_candidate_ids(base);
    std::vector<std::size_t> rf_radices;
    for (const auto& cands : rf_candidates) rf_radices.push_back(cands.size());

    for_each_product_slice(rf_radices, rf_begin, rf_end,
                           [&](const std::vector<std::size_t>& rf_choice) {
      Candidate cand = base;
      std::vector<int> rf(rf_choice.size());
      for (std::size_t i = 0; i < rf_choice.size(); ++i)
        rf[i] = rf_candidates[i][rf_choice[i]];

      if (!budget.spend()) {
        stats_.truncated = true;
        aborted = true;
        return false;
      }
      if (out_of_time()) {
        stats_.truncated = true;
        stats_.timed_out = true;
        aborted = true;
        return false;
      }
      ++stats_.candidates;

      auto regs = replay(cand, rf, gi);
      if (!regs) {
        ++stats_.infeasible;
        return true;
      }

      // Group program writes by resolved location for coherence enumeration.
      std::vector<std::vector<int>> by_loc(static_cast<std::size_t>(cand.num_locs));
      for (int wid : cand.writes) {
        const Event& w = cand.events[static_cast<std::size_t>(wid)];
        if (w.thread == kInitThread) continue;
        by_loc[static_cast<std::size_t>(w.loc)].push_back(wid);
      }

      // Fence/transaction ordering decisions.
      std::vector<std::pair<int, int>> fence_pairs;
      for (const Event& f : cand.events) {
        if (f.kind != PEvent::Kind::Fence) continue;
        for (const Event& b : cand.events) {
          if (b.kind != PEvent::Kind::Begin || b.thread == kInitThread) continue;
          // Does this transaction touch the fence's location?
          bool touches = false;
          for (const Event& m : cand.events)
            if (m.txn_begin == b.id && (m.is_read() || m.is_write()) && m.loc == f.loc)
              touches = true;
          if (touches) fence_pairs.emplace_back(f.id, b.id);
        }
      }

      // Odometer over per-location write permutations and fence choices.
      // Encode each location's coherence order as a permutation index.
      std::vector<std::size_t> co_radices;
      std::vector<std::vector<std::vector<int>>> co_perms(by_loc.size());
      for (std::size_t x = 0; x < by_loc.size(); ++x) {
        std::vector<std::vector<int>> perms;
        std::vector<int> ids = by_loc[x];
        std::sort(ids.begin(), ids.end());
        do {
          perms.push_back(ids);
        } while (std::next_permutation(ids.begin(), ids.end()));
        co_radices.push_back(perms.size());
        co_perms[x] = std::move(perms);
      }
      std::vector<std::size_t> fence_radices(fence_pairs.size(), 2);

      std::vector<std::size_t> radices = co_radices;
      radices.insert(radices.end(), fence_radices.begin(), fence_radices.end());

      for_each_product(radices, [&](const std::vector<std::size_t>& choice) {
        if (!budget.spend()) {
          stats_.truncated = true;
          aborted = true;
          return false;
        }
        if (out_of_time()) {
          stats_.truncated = true;
          stats_.timed_out = true;
          aborted = true;
          return false;
        }
        ++stats_.candidates;

        // Assign timestamps from coherence positions.
        for (std::size_t x = 0; x < by_loc.size(); ++x) {
          const auto& perm = co_perms[x][choice[x]];
          for (std::size_t k = 0; k < perm.size(); ++k)
            cand.events[static_cast<std::size_t>(perm[k])].ts =
                Rational(static_cast<std::int64_t>(k) + 1);
        }
        for (std::size_t i = 0; i < cand.reads.size(); ++i) {
          Event& r = cand.events[static_cast<std::size_t>(cand.reads[i])];
          r.ts = cand.events[static_cast<std::size_t>(rf[i])].ts;
        }

        std::vector<std::size_t> fence_choice(choice.begin() +
                                                  static_cast<std::ptrdiff_t>(co_radices.size()),
                                              choice.end());
        auto order = linearize(cand, rf, fence_choice, fence_pairs);
        if (!order) {
          ++stats_.unlinearizable;
          return true;
        }
        Trace t = build_trace(cand, *order);
        if (!model::consistent(t, cfg_)) {
          ++stats_.inconsistent;
          return true;
        }
        ++stats_.consistent;
        fn(Execution{std::move(t), *regs});
        return true;
      });
      return !aborted;
    });
  };

  if (restrict_to != nullptr) {
    run_combo(restrict_to->combo, restrict_to->rf_begin, restrict_to->rf_end);
    return;
  }
  for_each_product(combo_radices, [&](const std::vector<std::size_t>& combo) {
    run_combo(combo, 0, UINT64_MAX);
    return !aborted;
  });
}

OutcomeSet GraphEnum::outcomes() {
  OutcomeSet set;
  for_each([&](const Execution& e) {
    Outcome o;
    o.mem.resize(static_cast<std::size_t>(prog_.num_locs));
    for (Loc x = 0; x < prog_.num_locs; ++x)
      o.mem[static_cast<std::size_t>(x)] = e.trace.final_value(x);
    o.regs = e.regs;
    set.insert(std::move(o));
  });
  return set;
}

OutcomeSet enumerate_outcomes(const Program& p, const model::ModelConfig& cfg,
                              EnumOptions opts) {
  GraphEnum e(p, cfg, opts);
  return e.outcomes();
}

}  // namespace mtx::lit
