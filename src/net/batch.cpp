#include "net/batch.hpp"

namespace mtx::net {

kv::WriteOp run_op(const Request& req) {
  kv::WriteOp op;
  op.key = req.key;
  switch (req.op) {
    case OpCode::get:
      op.kind = kv::WriteOp::Kind::get;
      break;
    case OpCode::put:
    case OpCode::insert:
      op.kind = kv::WriteOp::Kind::put;
      op.arg = req.arg;
      break;
    case OpCode::rmw:
      op.kind = kv::WriteOp::Kind::rmw;
      op.arg = req.arg;
      break;
    default:
      break;  // unreachable: only batchable ops are coalesced
  }
  return op;
}

Response run_response(const kv::WriteOp& op, OpCode code,
                      std::uint64_t routing_epoch) {
  Response r;
  r.op = code;
  if (op.moved) {
    // The op did not execute: a live migration re-homed its key after the
    // run was coalesced.  Echo the current routing epoch so the client can
    // observe the routing state advance across its retry.
    r.status = Status::moved;
    r.epoch = routing_epoch;
    return r;
  }
  switch (op.kind) {
    case kv::WriteOp::Kind::get:
      r.status = op.applied ? Status::ok : Status::not_found;
      r.value = op.result;
      break;
    case kv::WriteOp::Kind::put:
      r.status = Status::ok;
      r.flag = op.applied ? 1 : 0;  // fresh insert
      break;
    case kv::WriteOp::Kind::rmw:
      r.status = op.applied ? Status::ok : Status::not_found;
      r.value = op.result;
      break;
  }
  return r;
}

// ---------------------------------------------------------------------------
// RunCoalescer
// ---------------------------------------------------------------------------

RunCoalescer::RunCoalescer(std::size_t max_batch)
    : max_batch_(max_batch ? max_batch : 1) {
  cur_.ops.reserve(max_batch_);
  cur_.codes.reserve(max_batch_);
}

void RunCoalescer::emit(std::vector<Run>& out) {
  out.push_back(std::move(cur_));
  cur_ = Run{};
  cur_.ops.reserve(max_batch_);
  cur_.codes.reserve(max_batch_);
}

void RunCoalescer::add(const Request& req, std::size_t shard,
                       std::vector<Run>& out) {
  if (!cur_.ops.empty() && shard != cur_.shard) {
    ++stats_.flushes_shard;
    emit(out);  // rule 1: the run is same-shard by construction
  }
  cur_.shard = shard;
  cur_.ops.push_back(run_op(req));
  cur_.codes.push_back(req.op);
  ++stats_.ops;
  if (cur_.ops.size() >= max_batch_) {
    ++stats_.flushes_full;
    emit(out);  // rule 2
  }
}

void RunCoalescer::flush_barrier(std::vector<Run>& out) {
  if (cur_.ops.empty()) return;
  ++stats_.flushes_barrier;
  emit(out);
}

void RunCoalescer::flush_drain(std::vector<Run>& out) {
  if (cur_.ops.empty()) return;
  ++stats_.flushes_drain;
  emit(out);
}

// ---------------------------------------------------------------------------
// BatchExecutor
// ---------------------------------------------------------------------------

BatchExecutor::BatchExecutor(kv::KvStore& store, std::size_t max_batch)
    : store_(store), coalescer_(max_batch) {}

void BatchExecutor::execute(std::vector<Run>& runs,
                            std::vector<Response>& out) {
  for (Run& run : runs) {
    store_.shard(run.shard).batch_mutate(run.ops.data(), run.ops.size());
    ++coalescer_.stats().transactions;
    for (std::size_t i = 0; i < run.ops.size(); ++i) {
      // The inline executor is its own client: chase a migration here (like
      // the whole-store convenience ops) instead of surfacing moved.
      while (run.ops[i].moved) {
        const std::size_t to = store_.shard_of(run.ops[i].key);
        store_.shard(to).batch_mutate(&run.ops[i], 1);
        ++coalescer_.stats().transactions;
      }
      out.push_back(run_response(run.ops[i], run.codes[i]));
    }
  }
  runs.clear();
}

Response BatchExecutor::execute_barrier(const Request& req) {
  Response r;
  r.op = req.op;
  switch (req.op) {
    case OpCode::scan: {
      if (req.shard >= store_.shards()) {
        r.status = Status::error;
        break;
      }
      const kv::ScanResult sr = store_.shard(req.shard).privatize_scan();
      r.status = Status::ok;
      r.count = sr.keys;
      r.value = sr.value_sum;
      r.flag = sr.privatized ? 1 : 0;
      break;
    }
    case OpCode::snap_read: {
      // Publication handoff once per connection: one transactional read of
      // the ready cells orders all of this executor's later plain slot
      // loads after the publish (or refresh) commit.
      if (!snap_attached_) snap_attached_ = store_.snapshot_attach();
      std::int64_t v = 0;
      if (snap_attached_ && store_.snapshot_read(req.key, &v)) {
        r.status = Status::ok;
        r.value = v;
      } else {
        r.status = Status::not_found;
      }
      break;
    }
    case OpCode::fence:
      store_.stm().quiesce();
      r.status = Status::ok;
      break;
    default:
      r.status = Status::error;
      break;
  }
  ++coalescer_.stats().ops;
  return r;
}

void BatchExecutor::submit(const Request& req, std::vector<Response>& out) {
  switch (req.op) {
    case OpCode::get:
    case OpCode::put:
    case OpCode::insert:
    case OpCode::rmw:
      coalescer_.add(req, store_.shard_of(req.key), scratch_);
      execute(scratch_, out);
      return;
    case OpCode::batch: {
      // The frame is its own transaction-boundary contract: earlier
      // pipelined ops commit first (rule 3 applies to the frame as a
      // whole), then the frame's sub-ops run through the same coalescer
      // and flush at frame end — a same-shard batch frame is exactly one
      // transaction.
      coalescer_.flush_barrier(scratch_);
      execute(scratch_, out);
      Response r;
      r.op = OpCode::batch;
      r.status = Status::ok;
      for (const Request& s : req.sub) submit(s, r.sub);
      coalescer_.flush_drain(scratch_);
      execute(scratch_, r.sub);
      out.push_back(std::move(r));
      return;
    }
    case OpCode::scan:
    case OpCode::snap_read:
    case OpCode::fence:
      // Rule 3: read-barrier ops leave the transactional world — commit the
      // pending run before the barrier so it bounds everything submitted.
      coalescer_.flush_barrier(scratch_);
      execute(scratch_, out);
      out.push_back(execute_barrier(req));
      return;
    case OpCode::hello: {
      // A handshake reaching the executor (compat path: HELLO accepted at
      // any point) is answered from the codec constants — it touches no
      // store state and joins no batch (but, like any non-batchable frame,
      // it does not reorder past pending ops).
      coalescer_.flush_barrier(scratch_);
      execute(scratch_, out);
      Response r;
      r.op = OpCode::hello;
      r.major = kProtoMajor;
      r.minor = kProtoMinor;
      r.features = kServerFeatures;
      r.status = req.major == kProtoMajor ? Status::ok
                                          : Status::version_mismatch;
      ++coalescer_.stats().ops;
      out.push_back(std::move(r));
      return;
    }
  }
}

void BatchExecutor::drain(std::vector<Response>& out) {
  coalescer_.flush_drain(scratch_);
  execute(scratch_, out);
}

}  // namespace mtx::net
