#include "net/batch.hpp"

namespace mtx::net {

namespace {

kv::WriteOp to_write_op(const Request& req) {
  kv::WriteOp op;
  op.key = req.key;
  switch (req.op) {
    case OpCode::get:
      op.kind = kv::WriteOp::Kind::get;
      break;
    case OpCode::put:
    case OpCode::insert:
      op.kind = kv::WriteOp::Kind::put;
      op.arg = req.arg;
      break;
    case OpCode::rmw:
      op.kind = kv::WriteOp::Kind::rmw;
      op.arg = req.arg;
      break;
    default:
      break;  // unreachable: only batchable ops are enqueued
  }
  return op;
}

Response to_response(const kv::WriteOp& op, OpCode code) {
  Response r;
  r.op = code;
  switch (op.kind) {
    case kv::WriteOp::Kind::get:
      r.status = op.applied ? Status::ok : Status::not_found;
      r.value = op.result;
      break;
    case kv::WriteOp::Kind::put:
      r.status = Status::ok;
      r.flag = op.applied ? 1 : 0;  // fresh insert
      break;
    case kv::WriteOp::Kind::rmw:
      r.status = op.applied ? Status::ok : Status::not_found;
      r.value = op.result;
      break;
  }
  return r;
}

}  // namespace

BatchExecutor::BatchExecutor(kv::KvStore& store, std::size_t max_batch)
    : store_(store), max_batch_(max_batch ? max_batch : 1) {
  pending_.reserve(max_batch_);
  pending_codes_.reserve(max_batch_);
}

void BatchExecutor::flush(std::vector<Response>& out) {
  if (pending_.empty()) return;
  store_.batch_mutate(pending_shard_, pending_.data(), pending_.size());
  ++stats_.transactions;
  for (std::size_t i = 0; i < pending_.size(); ++i)
    out.push_back(to_response(pending_[i], pending_codes_[i]));
  pending_.clear();
  pending_codes_.clear();
}

void BatchExecutor::enqueue(const Request& req, std::vector<Response>& out) {
  const std::size_t shard = store_.shard_of(req.key);
  if (!pending_.empty() && shard != pending_shard_) {
    ++stats_.flushes_shard;
    flush(out);  // rule 1: the run is same-shard by construction
  }
  pending_shard_ = shard;
  pending_.push_back(to_write_op(req));
  pending_codes_.push_back(req.op);
  ++stats_.ops;
  if (pending_.size() >= max_batch_) {
    ++stats_.flushes_full;
    flush(out);  // rule 2
  }
}

Response BatchExecutor::execute_barrier(const Request& req) {
  Response r;
  r.op = req.op;
  switch (req.op) {
    case OpCode::scan: {
      if (req.shard >= store_.shards()) {
        r.status = Status::error;
        break;
      }
      const kv::ScanResult sr = store_.privatize_scan(req.shard);
      r.status = Status::ok;
      r.count = sr.keys;
      r.value = sr.value_sum;
      r.flag = sr.privatized ? 1 : 0;
      break;
    }
    case OpCode::snap_read: {
      // Publication handoff once per connection: one transactional read of
      // snap_ready orders all of this executor's later plain slot loads
      // after the publish (or refresh) commit.
      if (!snap_attached_) snap_attached_ = store_.snapshot_attach();
      std::int64_t v = 0;
      if (snap_attached_ && store_.snapshot_read(req.key, &v)) {
        r.status = Status::ok;
        r.value = v;
      } else {
        r.status = Status::not_found;
      }
      break;
    }
    case OpCode::fence:
      store_.stm().quiesce();
      r.status = Status::ok;
      break;
    default:
      r.status = Status::error;
      break;
  }
  ++stats_.ops;
  return r;
}

void BatchExecutor::submit(const Request& req, std::vector<Response>& out) {
  switch (req.op) {
    case OpCode::get:
    case OpCode::put:
    case OpCode::insert:
    case OpCode::rmw:
      enqueue(req, out);
      return;
    case OpCode::batch: {
      // The frame is its own transaction-boundary contract: earlier
      // pipelined ops commit first (rule 3 applies to the frame as a
      // whole), then the frame's sub-ops run through the same coalescer
      // and flush at frame end — a same-shard batch frame is exactly one
      // transaction.
      if (!pending_.empty()) {
        ++stats_.flushes_barrier;
        flush(out);
      }
      Response r;
      r.op = OpCode::batch;
      r.status = Status::ok;
      for (const Request& s : req.sub) submit(s, r.sub);
      if (!pending_.empty()) {
        ++stats_.flushes_drain;
        flush(r.sub);
      }
      out.push_back(std::move(r));
      return;
    }
    case OpCode::scan:
    case OpCode::snap_read:
    case OpCode::fence:
      // Rule 3: read-barrier ops leave the transactional world — commit the
      // pending run before the barrier so it bounds everything submitted.
      if (!pending_.empty()) {
        ++stats_.flushes_barrier;
        flush(out);
      }
      out.push_back(execute_barrier(req));
      return;
  }
}

void BatchExecutor::drain(std::vector<Response>& out) {
  if (pending_.empty()) return;
  ++stats_.flushes_drain;
  flush(out);
}

}  // namespace mtx::net
