#include "net/protocol.hpp"

namespace mtx::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// Bounded little-endian reader over one frame body.  `fail` latches: a
// short read poisons everything after it, so decoders check once at the
// end — truncated-inside-the-body and trailing-garbage both land in
// bad_frame (the length prefix already promised the full body).
struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  bool fail = false;

  std::uint8_t u8() {
    if (left < 1) return fail = true, 0;
    --left;
    return *p++;
  }
  std::uint16_t u16() {
    if (left < 2) return fail = true, 0;
    std::uint16_t v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2, left -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (left < 4) return fail = true, 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4, left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (left < 8) return fail = true, 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8, left -= 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
};

bool valid_op(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(OpCode::get) &&
         op <= static_cast<std::uint8_t>(OpCode::hello);
}

bool batchable(OpCode op) {
  return op == OpCode::get || op == OpCode::put || op == OpCode::insert ||
         op == OpCode::rmw;
}

void encode_request_body(const Request& req, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(req.op));
  switch (req.op) {
    case OpCode::get:
    case OpCode::snap_read:
      put_i64(out, req.key);
      break;
    case OpCode::put:
    case OpCode::insert:
      put_i64(out, req.key);
      put_i64(out, req.arg);
      break;
    case OpCode::rmw:
      put_i64(out, req.key);
      put_i64(out, req.arg);
      break;
    case OpCode::scan:
      put_u32(out, req.shard);
      break;
    case OpCode::fence:
      break;
    case OpCode::hello:
      put_u16(out, req.major);
      put_u16(out, req.minor);
      put_u32(out, req.features);
      break;
    case OpCode::batch:
      put_u16(out, static_cast<std::uint16_t>(req.sub.size()));
      for (const Request& s : req.sub) encode_request_body(s, out);
      break;
  }
}

bool decode_request_body(Reader& r, Request* out, bool nested) {
  const std::uint8_t raw = r.u8();
  if (r.fail || !valid_op(raw)) return false;
  out->op = static_cast<OpCode>(raw);
  switch (out->op) {
    case OpCode::get:
    case OpCode::snap_read:
      out->key = r.i64();
      break;
    case OpCode::put:
    case OpCode::insert:
    case OpCode::rmw:
      out->key = r.i64();
      out->arg = r.i64();
      break;
    case OpCode::scan:
      out->shard = r.u32();
      break;
    case OpCode::fence:
      break;
    case OpCode::hello:
      if (nested) return false;  // a handshake inside a batch is nonsense
      out->major = r.u16();
      out->minor = r.u16();
      out->features = r.u32();
      break;
    case OpCode::batch: {
      if (nested) return false;  // one level only
      const std::uint16_t n = r.u16();
      if (r.fail || n > kMaxBatchOps) return false;
      out->sub.resize(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        if (!decode_request_body(r, &out->sub[i], /*nested=*/true))
          return false;
        if (!batchable(out->sub[i].op)) return false;
      }
      break;
    }
  }
  return !r.fail;
}

// Does a response of this (op, status) carry a payload?  Non-ok responses
// are bare opcode+status — except BATCH (the sub list is the result), a
// HELLO version_mismatch, whose payload (the server's version) is the very
// thing the client needs to act on the error, and `moved` (handled before
// this check: its payload is the routing epoch, uniform across ops).
bool response_has_payload(OpCode op, Status st) {
  if (st == Status::ok || op == OpCode::batch) return true;
  return op == OpCode::hello && st == Status::version_mismatch;
}

void encode_response_body(const Response& resp, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(resp.op));
  out.push_back(static_cast<std::uint8_t>(resp.status));
  if (resp.status == Status::moved) {
    // Uniform moved payload, whatever the keyed op: the routing epoch.
    put_u64(out, resp.epoch);
    return;
  }
  if (!response_has_payload(resp.op, resp.status)) return;
  switch (resp.op) {
    case OpCode::get:
    case OpCode::rmw:
    case OpCode::snap_read:
      put_i64(out, resp.value);
      break;
    case OpCode::put:
    case OpCode::insert:
      out.push_back(resp.flag);
      break;
    case OpCode::scan:
      put_u64(out, resp.count);
      put_i64(out, resp.value);
      out.push_back(resp.flag);
      break;
    case OpCode::fence:
      break;
    case OpCode::hello:
      put_u16(out, resp.major);
      put_u16(out, resp.minor);
      put_u32(out, resp.features);
      break;
    case OpCode::batch:
      put_u16(out, static_cast<std::uint16_t>(resp.sub.size()));
      for (const Response& s : resp.sub) encode_response_body(s, out);
      break;
  }
}

bool decode_response_body(Reader& r, Response* out, bool nested) {
  const std::uint8_t raw = r.u8();
  if (r.fail || !valid_op(raw)) return false;
  out->op = static_cast<OpCode>(raw);
  const std::uint8_t st = r.u8();
  if (r.fail || st > static_cast<std::uint8_t>(Status::moved)) return false;
  out->status = static_cast<Status>(st);
  // version_mismatch is a HELLO-only status.
  if (out->status == Status::version_mismatch && out->op != OpCode::hello)
    return false;
  // moved is a keyed-table-op-only status (exactly the batchable set), and
  // its payload is always the u64 routing epoch.
  if (out->status == Status::moved) {
    if (!batchable(out->op)) return false;
    out->epoch = r.u64();
    return !r.fail;
  }
  if (!response_has_payload(out->op, out->status)) return true;
  switch (out->op) {
    case OpCode::get:
    case OpCode::rmw:
    case OpCode::snap_read:
      out->value = r.i64();
      break;
    case OpCode::put:
    case OpCode::insert:
      out->flag = r.u8();
      break;
    case OpCode::scan:
      out->count = r.u64();
      out->value = r.i64();
      out->flag = r.u8();
      break;
    case OpCode::fence:
      break;
    case OpCode::hello:
      if (nested) return false;
      out->major = r.u16();
      out->minor = r.u16();
      out->features = r.u32();
      break;
    case OpCode::batch: {
      if (nested) return false;
      const std::uint16_t n = r.u16();
      if (r.fail || n > kMaxBatchOps) return false;
      out->sub.resize(n);
      for (std::uint16_t i = 0; i < n; ++i)
        if (!decode_response_body(r, &out->sub[i], /*nested=*/true))
          return false;
      break;
    }
  }
  return !r.fail;
}

// Shared frame walk: length prefix, size bound, exact-body decode.
template <class Body, class Decoder>
Decode decode_frame(const std::uint8_t* data, std::size_t len, Body* out,
                    std::size_t* consumed, Decoder&& body_decoder) {
  if (len < 4) return Decode::need_more;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  if (body_len == 0 || body_len > kMaxFrame) return Decode::bad_frame;
  if (len < 4 + static_cast<std::size_t>(body_len)) return Decode::need_more;
  Reader r{data + 4, body_len};
  *out = Body{};
  if (!body_decoder(r, out) || r.left != 0) return Decode::bad_frame;
  *consumed = 4 + static_cast<std::size_t>(body_len);
  return Decode::ok;
}

template <class Body, class Encoder>
void encode_frame(const Body& body, std::vector<std::uint8_t>& out,
                  Encoder&& body_encoder) {
  const std::size_t prefix_at = out.size();
  put_u32(out, 0);  // patched below
  body_encoder(body, out);
  const std::size_t body_len = out.size() - prefix_at - 4;
  for (int i = 0; i < 4; ++i)
    out[prefix_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
}

}  // namespace

void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  encode_frame(req, out, [](const Request& r, std::vector<std::uint8_t>& o) {
    encode_request_body(r, o);
  });
}

void encode_response(const Response& resp, std::vector<std::uint8_t>& out) {
  encode_frame(resp, out, [](const Response& r, std::vector<std::uint8_t>& o) {
    encode_response_body(r, o);
  });
}

Decode decode_request(const std::uint8_t* data, std::size_t len, Request* out,
                      std::size_t* consumed) {
  return decode_frame(data, len, out, consumed, [](Reader& r, Request* o) {
    return decode_request_body(r, o, /*nested=*/false);
  });
}

Decode decode_response(const std::uint8_t* data, std::size_t len,
                       Response* out, std::size_t* consumed) {
  return decode_frame(data, len, out, consumed, [](Reader& r, Response* o) {
    return decode_response_body(r, o, /*nested=*/false);
  });
}

}  // namespace mtx::net
