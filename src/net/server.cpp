#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "record/recorder.hpp"
#include "record/stream.hpp"
#include "substrate/spsc.hpp"

namespace mtx::net {

namespace {

constexpr std::size_t kReadChunk = 4096;
constexpr std::size_t kMailSlots = 4096;  // per directed reactor pair

void poke(int fd) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

}  // namespace

// One cross-reactor work item: a coalesced same-shard Run, or a barrier op
// (SCAN / SNAP_READ) addressed to a foreign shard.  The run is the handoff
// unit, so cross-reactor traffic amortizes its transaction exactly like
// local traffic.
struct Handoff {
  enum class Kind : std::uint8_t { run, scan, snap_read };
  Kind kind = Kind::run;
  std::uint64_t conn = 0;        // connection id on the origin reactor
  std::uint64_t slot = 0;        // first pending slot (or the BATCH frame's)
  std::int32_t sub_base = -1;    // >= 0: index into the frame's sub responses
  std::size_t shard = 0;         // run / scan
  std::int64_t key = 0;          // snap_read
  std::vector<kv::WriteOp> ops;  // run
  std::vector<OpCode> codes;     // run
};

struct HandoffReply {
  std::uint64_t conn = 0;
  std::uint64_t slot = 0;
  std::int32_t sub_base = -1;
  std::vector<Response> resps;
};

// One slot of a connection's in-order response queue.  Responses release
// strictly from the front: a slot with waiting > 0 (cross-shard work in
// flight) holds everything behind it back, so submission order survives
// arbitrary reactor interleaving.
struct Pending {
  Response resp;
  std::uint32_t waiting = 0;
  bool fence = false;  // run the whole-store quiesce when it reaches the front
};

struct RConn {
  explicit RConn(std::size_t max_batch) : coal(max_batch) {}
  int fd = -1;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> in;
  std::size_t in_off = 0;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  bool want_write = false;
  bool hello_done = false;
  bool kill = false;  // flush what's owed, then close (handshake rejection)
  bool gone = false;  // socket retired; responses are dropped
  RunCoalescer coal;
  std::deque<Pending> pend;
  std::uint64_t front_slot = 0;  // slot id of pend.front()

  std::uint64_t next_slot() const { return front_slot + pend.size(); }
};

struct Server::Reactor {
  Server* srv = nullptr;
  std::size_t idx = 0;
  int epfd = -1;
  int wakefd = -1;
  std::thread thread;

  SpscRing<int> incoming{256};  // acceptor → reactor: fresh sockets
  // Directed SPSC rings, indexed by the PRODUCING reactor.
  std::vector<std::unique_ptr<SpscRing<Handoff>>> mail_in;
  std::vector<std::unique_ptr<SpscRing<HandoffReply>>> reply_in;
  // Local overflow queues (per target) for when a ring is momentarily
  // full: items flush FIFO ahead of new pushes, so per-(origin, owner)
  // order is preserved and a full ring can never deadlock two reactors
  // pushing at each other.
  std::vector<std::deque<Handoff>> mail_out;
  std::vector<std::deque<HandoffReply>> reply_out;

  std::vector<std::size_t> owned;       // shard indices this reactor owns
  std::vector<kv::ShardHandle> handle;  // [shard]; valid iff owns[shard]
  std::vector<char> owns;               // [shard]
  std::vector<char> attached;           // [shard] publication-handoff memo

  std::unordered_map<std::uint64_t, std::unique_ptr<RConn>> conns;
  std::uint64_t next_conn = 1;  // epoll data.u64 0 is the wake eventfd
  std::uint64_t since_refresh = 0;
  std::uint64_t since_epoch = 0;
  std::uint64_t next_epoch = 0;
  std::uint64_t exec_total = 0;  // lifetime executed requests (migration
                                 // trigger; never reset)
  bool migrated = false;         // scripted migration already ran here
  bool settled = false;

  // Per-reactor stats, summed into ServerStats after join.
  std::uint64_t closed = 0, bad_frames = 0, frames = 0, snap_refreshes = 0,
                handoffs = 0, hellos = 0, hello_rejects = 0, moved_sent = 0,
                migrations = 0, keys_migrated = 0;
  BatchStats batch;

  // Streaming: the per-reactor pipeline over the owned domain set.
  std::unique_ptr<record::RecordSession> session;
  std::unique_ptr<record::StreamConformance> conf;
  std::unique_ptr<record::ScopedRecorder> rec;
  bool streamed = false;
  record::StreamReport report;
  std::string verdict;

  // Scratch (reused across iterations).
  std::vector<Run> runs;
  std::vector<Handoff> mail_tmp;
  std::vector<HandoffReply> reply_tmp;
  std::vector<int> fd_tmp;
};

Server::Server(stm::StmBackend& stm, const ServerConfig& cfg)
    : stm_(stm), cfg_(cfg) {
  const std::string err = cfg_.validate();
  if (!err.empty())
    throw std::invalid_argument("net: inconsistent ServerConfig: " + err);

  kv::KvStore::Options sopt;
  sopt.shards = cfg_.store.shards;
  sopt.expected_keys = cfg_.store.preload_keys * 2;
  sopt.snap_slots = std::max<std::size_t>(1, cfg_.store.snap_keys);
  store_ = std::make_unique<kv::KvStore>(stm_, sopt);
  migrator_ = std::make_unique<kv::MigrationEngine>(*store_);

  // Preload + publish the hot set, mirroring the in-process driver's load
  // phase: keys 0..N-1 hold value_of(k, 0); the snap_keys hottest ranks are
  // frozen into the per-shard snapshot slots.
  for (std::size_t k = 0; k < cfg_.store.preload_keys; ++k)
    store_->put(static_cast<std::int64_t>(k),
                kv::value_of(static_cast<std::int64_t>(k), 0));
  const std::size_t snap_n = std::max<std::size_t>(
      1, std::min(cfg_.store.snap_keys, cfg_.store.preload_keys));
  snap_keys_.resize(snap_n);
  for (std::size_t k = 0; k < snap_n; ++k)
    snap_keys_[k] = static_cast<std::int64_t>(k);
  store_->publish_snapshot(snap_keys_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw std::runtime_error("net: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.listener.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, cfg_.listener.backlog) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("net: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("net: eventfd() failed");
  }

  // Reactors: ownership map, mailboxes and wake fds built up front, so
  // every cross-reactor address is valid the moment run() spawns threads.
  const std::size_t R = cfg_.reactors.count;
  reactors_.reserve(R);
  for (std::size_t r = 0; r < R; ++r) {
    auto rx = std::make_unique<Reactor>();
    rx->srv = this;
    rx->idx = r;
    rx->wakefd = ::eventfd(0, EFD_NONBLOCK);
    rx->mail_in.resize(R);
    rx->reply_in.resize(R);
    for (std::size_t f = 0; f < R; ++f) {
      rx->mail_in[f] = std::make_unique<SpscRing<Handoff>>(kMailSlots);
      rx->reply_in[f] = std::make_unique<SpscRing<HandoffReply>>(kMailSlots);
    }
    rx->mail_out.resize(R);
    rx->reply_out.resize(R);
    rx->owns.assign(cfg_.store.shards, 0);
    rx->attached.assign(cfg_.store.shards, 0);
    rx->handle.resize(cfg_.store.shards);
    for (std::size_t s = 0; s < cfg_.store.shards; ++s)
      if (cfg_.owner_of(s) == r) {
        rx->owns[s] = 1;
        rx->owned.push_back(s);
        rx->handle[s] = store_->shard(s);
      }
    reactors_.push_back(std::move(rx));
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (accept_epoll_ >= 0) ::close(accept_epoll_);
  for (auto& rx : reactors_) {
    if (!rx) continue;
    if (rx->wakefd >= 0) ::close(rx->wakefd);
    if (rx->epfd >= 0) ::close(rx->epfd);
    for (auto& [id, c] : rx->conns)
      if (c && c->fd >= 0) ::close(c->fd);
  }
}

void Server::stop() {
  // Signal-safe poke; the acceptor reads shutdown from the event itself.
  poke(wake_fd_);
}

void Server::reactor_main(Reactor& r) {
  r.epfd = ::epoll_create1(0);
  const bool degraded = r.epfd < 0;  // cannot poll sockets; still must
                                     // service mailboxes and settle
  if (!degraded) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;
    ::epoll_ctl(r.epfd, EPOLL_CTL_ADD, r.wakefd, &ev);
  }

  if (cfg_.stream.enabled) {
    r.session = std::make_unique<record::RecordSession>();
    record::StreamOptions so;
    so.ring_capacity = cfg_.stream.ring_capacity;
    so.min_window_events = cfg_.stream.window_min_events;
    so.checkers = cfg_.stream.checkers;
    so.require_full_opacity = stm_.zombie_free();
    // One continuous recording per reactor: the cutter sees every access
    // from the anchor on, so later segments' carries can be synthesized.
    so.synthesize_carry = true;
    r.conf = std::make_unique<record::StreamConformance>(
        *r.session, std::vector<int>{0}, so);
    r.rec = std::make_unique<record::ScopedRecorder>(*r.session, /*thread=*/0);
    r.rec->rec().stream_to(&r.conf->ring(0));
    // State-carry anchor over exactly the owned domain set: this reactor's
    // shards replayed as the stream's first committed transaction.  With
    // shard ownership the reactors' traces are location-disjoint, which is
    // what makes per-reactor judging sound.
    r.rec->rec().synthetic_begin();
    for (std::size_t s : r.owned) r.handle[s].replay_state_plain();
    r.rec->rec().synthetic_commit();
  }

  // Initial publication handoff for every owned shard: one transactional
  // ready read each, the hb anchor for this thread's plain snapshot loads.
  for (std::size_t s : r.owned)
    r.attached[s] = r.handle[s].snapshot_attach() ? 1 : 0;

  auto update_epoll = [&](RConn& c) {
    epoll_event ev{};
    ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
    ev.data.u64 = c.id;
    ::epoll_ctl(r.epfd, EPOLL_CTL_MOD, c.fd, &ev);
  };

  auto retire_socket = [&](RConn& c) {
    if (c.fd < 0) return;
    ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    c.gone = true;
  };

  // Destroys the conn once nothing is owed; returns true when destroyed.
  auto destroy_if_done = [&](RConn& c) -> bool {
    if (!c.gone || !c.pend.empty()) return false;
    const BatchStats& b = c.coal.stats();
    r.batch.ops += b.ops;
    r.batch.transactions += b.transactions;
    r.batch.flushes_shard += b.flushes_shard;
    r.batch.flushes_full += b.flushes_full;
    r.batch.flushes_barrier += b.flushes_barrier;
    r.batch.flushes_drain += b.flushes_drain;
    ++r.closed;
    r.conns.erase(c.id);
    return true;
  };

  auto flush_writes = [&](RConn& c) -> bool {  // false = peer vanished
    if (c.gone) {
      c.out.clear();
      c.out_off = 0;
      return true;
    }
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          c.want_write = true;
          update_epoll(c);
        }
        return true;
      }
      return false;
    }
    c.out.clear();
    c.out_off = 0;
    if (c.want_write) {
      c.want_write = false;
      update_epoll(c);
    }
    return true;
  };

  // Release ready responses from the queue front, in submission order; a
  // fence slot executes its whole-store quiesce exactly when everything
  // submitted before it has resolved.
  auto pump = [&](RConn& c) {
    while (!c.pend.empty()) {
      Pending& p = c.pend.front();
      if (p.waiting > 0) break;
      if (p.fence) {
        stm_.quiesce();
        p.fence = false;
      }
      if (!c.gone) encode_response(p.resp, c.out);
      c.pend.pop_front();
      ++c.front_slot;
    }
    if (!c.out.empty()) {
      if (!flush_writes(c)) retire_socket(c);
    }
    if (c.kill && !c.gone && c.pend.empty() && c.out.empty())
      retire_socket(c);  // handshake rejection: the reply is out, hang up
  };

  auto pending_at = [&](RConn& c, std::uint64_t slot) -> Pending& {
    return c.pend[static_cast<std::size_t>(slot - c.front_slot)];
  };

  // FIFO outboxes: ring full never blocks (and never reorders) — parked
  // items flush ahead of new ones each iteration.
  auto flush_mail_out = [&](std::size_t to) {
    auto& q = r.mail_out[to];
    auto& ring = *reactors_[to]->mail_in[r.idx];
    bool sent = false;
    while (!q.empty() && ring.try_push(q.front())) {
      q.pop_front();
      sent = true;
    }
    if (sent) poke(reactors_[to]->wakefd);
  };
  auto flush_reply_out = [&](std::size_t to) {
    auto& q = r.reply_out[to];
    auto& ring = *reactors_[to]->reply_in[r.idx];
    bool sent = false;
    while (!q.empty() && ring.try_push(q.front())) {
      q.pop_front();
      sent = true;
    }
    if (sent) poke(reactors_[to]->wakefd);
  };
  auto outboxes_empty = [&]() {
    for (std::size_t t = 0; t < reactors_.size(); ++t)
      if (!r.mail_out[t].empty() || !r.reply_out[t].empty()) return false;
    return true;
  };

  auto ship = [&](std::size_t owner, Handoff h) {
    r.mail_out[owner].push_back(std::move(h));
    flush_mail_out(owner);
    ++r.handoffs;
  };

  auto exec_scan = [&](std::size_t shard) {
    Response resp;
    resp.op = OpCode::scan;
    const kv::ScanResult sr = r.handle[shard].privatize_scan();
    resp.status = Status::ok;
    resp.count = sr.keys;
    resp.value = sr.value_sum;
    resp.flag = sr.privatized ? 1 : 0;
    return resp;
  };

  auto exec_snap = [&](std::size_t shard, std::int64_t key) {
    Response resp;
    resp.op = OpCode::snap_read;
    // Per-shard publication handoff, memoized per reactor: all snapshot
    // reads of an owned shard happen on this thread, so one transactional
    // ready read covers them (and stays valid across this thread's own
    // refreshes by program order).
    if (!r.attached[shard])
      r.attached[shard] = r.handle[shard].snapshot_attach() ? 1 : 0;
    std::int64_t v = 0;
    if (r.attached[shard] && r.handle[shard].snapshot_read(key, &v)) {
      resp.status = Status::ok;
      resp.value = v;
    } else {
      resp.status = Status::not_found;
    }
    return resp;
  };

  // Dispatch coalesced runs at top level: owned runs execute inline (one
  // transaction each); foreign runs ship to their owner, leaving one
  // placeholder slot per op.
  auto dispatch_top = [&](RConn& c) {
    for (Run& run : r.runs) {
      if (r.owns[run.shard]) {
        r.handle[run.shard].batch_mutate(run.ops.data(), run.ops.size());
        ++r.batch.transactions;
        for (std::size_t i = 0; i < run.ops.size(); ++i) {
          if (run.ops[i].moved) ++r.moved_sent;
          Pending p;
          p.resp = run_response(run.ops[i], run.codes[i],
                                store_->routing().epoch());
          c.pend.push_back(std::move(p));
        }
      } else {
        Handoff h;
        h.kind = Handoff::Kind::run;
        h.conn = c.id;
        h.slot = c.next_slot();
        h.shard = run.shard;
        h.ops = std::move(run.ops);
        h.codes = std::move(run.codes);
        const std::size_t n = h.ops.size();
        for (std::size_t i = 0; i < n; ++i) {
          Pending p;
          p.waiting = 1;
          c.pend.push_back(std::move(p));
        }
        ship(cfg_.owner_of(run.shard), std::move(h));
      }
    }
    r.runs.clear();
  };

  // Dispatch runs of a BATCH frame into the frame's sub-response array.
  auto dispatch_frame = [&](RConn& c, std::uint64_t frame_slot,
                            std::size_t& pos) {
    for (Run& run : r.runs) {
      Pending& f = pending_at(c, frame_slot);
      if (r.owns[run.shard]) {
        r.handle[run.shard].batch_mutate(run.ops.data(), run.ops.size());
        ++r.batch.transactions;
        for (std::size_t i = 0; i < run.ops.size(); ++i) {
          if (run.ops[i].moved) ++r.moved_sent;
          f.resp.sub[pos + i] = run_response(run.ops[i], run.codes[i],
                                             store_->routing().epoch());
        }
        pos += run.ops.size();
      } else {
        Handoff h;
        h.kind = Handoff::Kind::run;
        h.conn = c.id;
        h.slot = frame_slot;
        h.sub_base = static_cast<std::int32_t>(pos);
        h.shard = run.shard;
        h.ops = std::move(run.ops);
        h.codes = std::move(run.codes);
        pos += h.ops.size();
        ++f.waiting;
        ship(cfg_.owner_of(run.shard), std::move(h));
      }
    }
    r.runs.clear();
  };

  auto process = [&](RConn& c, Request& req) {
    switch (req.op) {
      case OpCode::get:
      case OpCode::put:
      case OpCode::insert:
      case OpCode::rmw:
        c.coal.add(req, store_->shard_of(req.key), r.runs);
        dispatch_top(c);
        return;
      case OpCode::batch: {
        c.coal.flush_barrier(r.runs);
        dispatch_top(c);
        Pending f;
        f.resp.op = OpCode::batch;
        f.resp.status = Status::ok;
        f.resp.sub.resize(req.sub.size());
        f.waiting = 1;  // construction hold: released after every sub is
                        // dispatched, so a half-built frame never releases
        const std::uint64_t frame_slot = c.next_slot();
        c.pend.push_back(std::move(f));
        std::size_t pos = 0;
        for (const Request& s : req.sub) {
          c.coal.add(s, store_->shard_of(s.key), r.runs);
          dispatch_frame(c, frame_slot, pos);
        }
        c.coal.flush_drain(r.runs);
        dispatch_frame(c, frame_slot, pos);
        --pending_at(c, frame_slot).waiting;
        return;
      }
      case OpCode::scan: {
        c.coal.flush_barrier(r.runs);
        dispatch_top(c);
        ++c.coal.stats().ops;
        Pending p;
        if (req.shard >= store_->shards()) {
          p.resp.op = OpCode::scan;
          p.resp.status = Status::error;
        } else if (r.owns[req.shard]) {
          p.resp = exec_scan(req.shard);
        } else {
          Handoff h;
          h.kind = Handoff::Kind::scan;
          h.conn = c.id;
          h.slot = c.next_slot();
          h.shard = req.shard;
          p.waiting = 1;
          c.pend.push_back(std::move(p));
          ship(cfg_.owner_of(req.shard), std::move(h));
          return;
        }
        c.pend.push_back(std::move(p));
        return;
      }
      case OpCode::snap_read: {
        c.coal.flush_barrier(r.runs);
        dispatch_top(c);
        ++c.coal.stats().ops;
        const std::size_t shard = store_->shard_of(req.key);
        Pending p;
        if (r.owns[shard]) {
          p.resp = exec_snap(shard, req.key);
          c.pend.push_back(std::move(p));
        } else {
          Handoff h;
          h.kind = Handoff::Kind::snap_read;
          h.conn = c.id;
          h.slot = c.next_slot();
          h.shard = shard;
          h.key = req.key;
          p.waiting = 1;
          c.pend.push_back(std::move(p));
          ship(cfg_.owner_of(shard), std::move(h));
        }
        return;
      }
      case OpCode::fence: {
        c.coal.flush_barrier(r.runs);
        dispatch_top(c);
        ++c.coal.stats().ops;
        Pending p;
        p.resp.op = OpCode::fence;
        p.resp.status = Status::ok;
        p.fence = true;  // executes at the queue front: everything the
                         // connection submitted first has resolved by then
        c.pend.push_back(std::move(p));
        return;
      }
      case OpCode::hello: {
        c.coal.flush_barrier(r.runs);
        dispatch_top(c);
        ++c.coal.stats().ops;
        Pending p;
        p.resp.op = OpCode::hello;
        p.resp.major = kProtoMajor;
        p.resp.minor = kProtoMinor;
        p.resp.features = kServerFeatures;
        if (req.major == kProtoMajor) {
          p.resp.status = Status::ok;
          c.hello_done = true;
          ++r.hellos;
        } else {
          // Typed rejection carrying the server's version, then hang up.
          p.resp.status = Status::version_mismatch;
          c.kill = true;
          ++r.hello_rejects;
        }
        c.pend.push_back(std::move(p));
        return;
      }
    }
  };

  auto handle_readable = [&](RConn& c) -> bool {
    // Drain the socket fully (edge-ish batching even under level-triggered
    // epoll: the more pipelined frames one drain yields, the longer the
    // same-shard runs the coalescer can build).
    for (;;) {
      const std::size_t old = c.in.size();
      c.in.resize(old + kReadChunk);
      const ssize_t n = ::recv(c.fd, c.in.data() + old, kReadChunk, 0);
      if (n > 0) {
        c.in.resize(old + static_cast<std::size_t>(n));
        continue;
      }
      c.in.resize(old);
      if (n == 0) return false;  // orderly shutdown from the peer
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }

    for (;;) {
      Request req;
      std::size_t consumed = 0;
      const Decode d = decode_request(c.in.data() + c.in_off,
                                      c.in.size() - c.in_off, &req, &consumed);
      if (d == Decode::need_more) break;
      if (d == Decode::bad_frame) {
        ++r.bad_frames;
        return false;
      }
      if (cfg_.listener.require_hello && !c.hello_done &&
          req.op != OpCode::hello) {
        // The listener demands a handshake first; anything else is a
        // protocol violation, same as a malformed frame.
        ++r.bad_frames;
        return false;
      }
      c.in_off += consumed;
      ++r.frames;
      ++r.since_refresh;
      ++r.since_epoch;
      ++r.exec_total;
      process(c, req);
      if (c.kill) break;  // handshake rejected: drop the rest of the input
    }

    if (c.in_off > 0 && c.in_off == c.in.size()) {
      c.in.clear();
      c.in_off = 0;
    } else if (c.in_off > kReadChunk) {
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(c.in_off));
      c.in_off = 0;
    }

    // Rule 4: the pipeline is drained — no more frames to coalesce with,
    // and every submitted op is owed its response now.
    c.coal.flush_drain(r.runs);
    dispatch_top(c);
    pump(c);
    return true;
  };

  // Commit owed work, hang up, keep the husk until cross-shard replies
  // land (their responses are dropped), then destroy.
  auto drop_conn = [&](RConn& c) {
    c.coal.flush_drain(r.runs);
    dispatch_top(c);
    retire_socket(c);
    pump(c);
    destroy_if_done(c);
  };

  auto service_mail = [&] {
    for (std::size_t from = 0; from < reactors_.size(); ++from) {
      auto& ring = *r.mail_in[from];
      if (ring.empty()) continue;
      r.mail_tmp.clear();
      ring.drain(r.mail_tmp);
      for (Handoff& h : r.mail_tmp) {
        HandoffReply rep;
        rep.conn = h.conn;
        rep.slot = h.slot;
        rep.sub_base = h.sub_base;
        switch (h.kind) {
          case Handoff::Kind::run:
            r.handle[h.shard].batch_mutate(h.ops.data(), h.ops.size());
            ++r.batch.transactions;
            rep.resps.reserve(h.ops.size());
            for (std::size_t i = 0; i < h.ops.size(); ++i) {
              if (h.ops[i].moved) ++r.moved_sent;
              rep.resps.push_back(run_response(h.ops[i], h.codes[i],
                                               store_->routing().epoch()));
            }
            r.since_refresh += h.ops.size();
            r.since_epoch += h.ops.size();
            r.exec_total += h.ops.size();
            break;
          case Handoff::Kind::scan:
            rep.resps.push_back(exec_scan(h.shard));
            ++r.since_refresh;
            ++r.since_epoch;
            ++r.exec_total;
            break;
          case Handoff::Kind::snap_read:
            rep.resps.push_back(exec_snap(h.shard, h.key));
            ++r.since_refresh;
            ++r.since_epoch;
            ++r.exec_total;
            break;
        }
        r.reply_out[from].push_back(std::move(rep));
      }
      flush_reply_out(from);
    }
  };

  auto service_replies = [&] {
    for (std::size_t from = 0; from < reactors_.size(); ++from) {
      auto& ring = *r.reply_in[from];
      if (ring.empty()) continue;
      r.reply_tmp.clear();
      ring.drain(r.reply_tmp);
      for (HandoffReply& rep : r.reply_tmp) {
        auto it = r.conns.find(rep.conn);
        if (it == r.conns.end()) continue;
        RConn& c = *it->second;
        if (rep.sub_base >= 0) {
          Pending& f = pending_at(c, rep.slot);
          for (std::size_t i = 0; i < rep.resps.size(); ++i)
            f.resp.sub[static_cast<std::size_t>(rep.sub_base) + i] =
                std::move(rep.resps[i]);
          --f.waiting;
        } else {
          for (std::size_t i = 0; i < rep.resps.size(); ++i) {
            Pending& p = pending_at(c, rep.slot + i);
            p.resp = std::move(rep.resps[i]);
            p.waiting = 0;
          }
        }
        pump(c);
        destroy_if_done(c);
      }
    }
  };

  bool stopped_conns = false;
  epoll_event events[64];
  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    int n = 0;
    if (!degraded) {
      const int timeout = (stopping || !outboxes_empty()) ? 2 : -1;
      n = ::epoll_wait(r.epfd, events, 64, timeout);
      if (n < 0) n = 0;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == 0) {
        std::uint64_t buf = 0;
        while (::read(r.wakefd, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto it = r.conns.find(id);
      if (it == r.conns.end()) continue;
      RConn& c = *it->second;
      if (c.fd < 0) continue;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = flush_writes(c);
        if (alive) pump(c);  // a kill conn closes once its reply is out
      }
      if (alive && c.fd >= 0 && (events[i].events & EPOLLIN))
        alive = handle_readable(c);
      if (!alive) {
        drop_conn(c);
        continue;
      }
      destroy_if_done(c);
    }

    // Adopt freshly dealt sockets.
    if (!r.incoming.empty()) {
      r.fd_tmp.clear();
      r.incoming.drain(r.fd_tmp);
      for (int fd : r.fd_tmp) {
        if (degraded || stopping) {
          ::close(fd);
          ++r.closed;
          continue;
        }
        auto c = std::make_unique<RConn>(cfg_.reactors.max_batch);
        c->fd = fd;
        c->id = r.next_conn++;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = c->id;
        if (::epoll_ctl(r.epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
          ::close(fd);
          ++r.closed;
          continue;
        }
        r.conns.emplace(c->id, std::move(c));
      }
    }

    // Cross-reactor traffic, then retry anything parked in the outboxes.
    service_mail();
    service_replies();
    for (std::size_t t = 0; t < reactors_.size(); ++t) {
      flush_mail_out(t);
      flush_reply_out(t);
    }

    // Quiet-point periodic work: this thread runs every mutation and
    // snapshot read of its owned shards, so between requests each owned
    // shard satisfies the per-shard refresh contract.
    if (cfg_.reactors.snap_refresh_every != 0 &&
        r.since_refresh >= cfg_.reactors.snap_refresh_every) {
      r.since_refresh = 0;
      for (std::size_t s : r.owned)
        if (r.handle[s].refresh_snapshot(snap_keys_)) ++r.snap_refreshes;
    }
    // Scripted live migration, run once at the owning reactor's quiet point
    // (validate() pinned both endpoints to one owner — this thread — so the
    // engine's plain copy lands in THIS reactor's recording stream and its
    // scoped fences cover only domains this reactor owns).  Concurrent
    // traffic keeps flowing: foreign reactors only see the routing table
    // flip, and requests already routed to the source bounce Status::moved.
    if (cfg_.migrate.after_ops != 0 && !r.migrated &&
        r.owns[cfg_.migrate.src] && r.exec_total >= cfg_.migrate.after_ops) {
      r.migrated = true;
      const kv::MigrateReport mr =
          migrator_->run(cfg_.migrate.kind, cfg_.migrate.src, cfg_.migrate.dst);
      if (mr.performed) {
        ++r.migrations;
        r.keys_migrated += mr.keys_moved;
      }
    }
    if (r.rec && r.since_epoch >= cfg_.stream.epoch_ops) {
      r.since_epoch = 0;
      // Segment boundary: everything this reactor executed so far precedes
      // the mark, and the single producer ring lets the cutter seal
      // immediately.  The new segment opens with a synthesized carry, and
      // hb reaches a plain snapshot load only through a transactional read
      // in its own thread — so re-run the publication handoff per owned
      // shard, exactly like the in-process driver's per-round re-attach.
      r.rec->rec().mark_epoch(r.next_epoch++);
      for (std::size_t s : r.owned)
        r.attached[s] = r.handle[s].snapshot_attach() ? 1 : 0;
    }

    if (!stopping) continue;

    if (!stopped_conns) {
      stopped_conns = true;
      // Commit every connection's pending work and hang up; conns with
      // cross-shard work in flight linger until the replies land.
      std::vector<std::uint64_t> ids;
      ids.reserve(r.conns.size());
      for (auto& [id, c] : r.conns) ids.push_back(id);
      for (std::uint64_t id : ids) {
        auto it = r.conns.find(id);
        if (it != r.conns.end()) drop_conn(*it->second);
      }
    }
    if (!r.settled && r.conns.empty() && outboxes_empty()) {
      r.settled = true;
      settled_.fetch_add(1, std::memory_order_acq_rel);
      for (auto& other : reactors_) poke(other->wakefd);
    }
    if (settled_.load(std::memory_order_acquire) == reactors_.size()) {
      // Every reactor has resolved its own connections, so no new
      // handoffs or replies can be produced; drain what's left and leave.
      bool idle = outboxes_empty();
      for (std::size_t f = 0; idle && f < reactors_.size(); ++f)
        if (!r.mail_in[f]->empty() || !r.reply_in[f]->empty()) idle = false;
      if (idle) break;
    }
  }

  if (r.rec) {
    // Seal the tail: everything after the last mark becomes the final
    // segment at finish().
    r.rec->rec().flush();
    r.rec.reset();  // detach before finish joins the checkers
    r.report = r.conf->finish();
    r.streamed = true;
    r.verdict = r.report.merged.verdict();
  }

  if (r.epfd >= 0) {
    ::close(r.epfd);
    r.epfd = -1;
  }
}

void Server::run() {
  accept_epoll_ = ::epoll_create1(0);
  if (accept_epoll_ < 0) throw std::runtime_error("net: epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(accept_epoll_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(accept_epoll_, EPOLL_CTL_ADD, wake_fd_, &ev);

  for (auto& rx : reactors_) {
    Reactor* rp = rx.get();
    rp->thread = std::thread([this, rp] { reactor_main(*rp); });
  }

  std::size_t rr = 0;
  bool running = true;
  epoll_event events[16];
  while (running) {
    const int n = ::epoll_wait(accept_epoll_, events, 16, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == wake_fd_) {
        running = false;
        continue;
      }
      if (events[i].data.fd != listen_fd_) continue;
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) break;  // EAGAIN or transient error: back to the loop
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Reactor& tgt = *reactors_[rr];
        rr = (rr + 1) % reactors_.size();
        tgt.incoming.push(fd);
        poke(tgt.wakefd);
        ++stats_.accepted;
      }
    }
  }

  stopping_.store(true, std::memory_order_release);
  for (auto& rx : reactors_) poke(rx->wakefd);
  for (auto& rx : reactors_)
    if (rx->thread.joinable()) rx->thread.join();

  stats_.reactors = reactors_.size();
  for (auto& rx : reactors_) {
    stats_.closed += rx->closed;
    stats_.bad_frames += rx->bad_frames;
    stats_.frames += rx->frames;
    stats_.snap_refreshes += rx->snap_refreshes;
    stats_.handoffs += rx->handoffs;
    stats_.hellos += rx->hellos;
    stats_.hello_rejects += rx->hello_rejects;
    stats_.moved += rx->moved_sent;
    stats_.migrations += rx->migrations;
    stats_.keys_migrated += rx->keys_migrated;
    stats_.batch.ops += rx->batch.ops;
    stats_.batch.transactions += rx->batch.transactions;
    stats_.batch.flushes_shard += rx->batch.flushes_shard;
    stats_.batch.flushes_full += rx->batch.flushes_full;
    stats_.batch.flushes_barrier += rx->batch.flushes_barrier;
    stats_.batch.flushes_drain += rx->batch.flushes_drain;
    if (rx->streamed) {
      stats_.streamed = true;
      stats_.segments += rx->report.segments;
      stats_.windows += rx->report.windows;
      stats_.nonconformant += rx->report.nonconformant;
      stats_.ring_dropped += rx->report.ring_dropped;
      stats_.overflow = stats_.overflow || rx->report.overflow;
      stats_.max_backlog = std::max(stats_.max_backlog, rx->report.max_backlog);
      stats_.stream_verdicts.push_back(rx->verdict);
    }
  }
  stats_.routing_epoch = store_->routing().epoch();

  ::close(accept_epoll_);
  accept_epoll_ = -1;
}

}  // namespace mtx::net
