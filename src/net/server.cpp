#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "record/recorder.hpp"
#include "record/stream.hpp"

namespace mtx::net {

namespace {

constexpr std::size_t kReadChunk = 4096;

}  // namespace

struct Server::Conn {
  Conn(kv::KvStore& store, std::size_t max_batch, int fd_)
      : fd(fd_), exec(store, max_batch) {}
  int fd;
  std::vector<std::uint8_t> in;
  std::size_t in_off = 0;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  bool want_write = false;
  BatchExecutor exec;
};

// The one-producer streaming pipeline: the loop thread records into ring 0,
// the cutter seals a segment at every epoch mark, checker threads judge
// while the loop keeps serving.
struct Server::StreamState {
  record::RecordSession session;
  std::unique_ptr<record::StreamConformance> conf;
  std::unique_ptr<record::ScopedRecorder> rec;
};

Server::Server(stm::StmBackend& stm, const ServerOptions& opt)
    : stm_(stm), opt_(opt) {
  kv::KvStore::Options sopt;
  sopt.shards = opt_.shards ? opt_.shards : 1;
  sopt.expected_keys = opt_.preload_keys * 2;
  sopt.snap_slots = std::max<std::size_t>(1, opt_.snap_keys);
  std::unique_ptr<kv::KvStore> store =
      std::make_unique<kv::KvStore>(stm_, sopt);

  // Preload + publish the hot set, mirroring the in-process driver's load
  // phase: keys 0..N-1 hold value_of(k, 0); the snap_keys hottest ranks are
  // frozen into the per-shard snapshot slots.
  for (std::size_t k = 0; k < opt_.preload_keys; ++k)
    store->put(static_cast<std::int64_t>(k),
               kv::value_of(static_cast<std::int64_t>(k), 0));
  const std::size_t snap_n =
      std::max<std::size_t>(1, std::min(opt_.snap_keys, opt_.preload_keys));
  snap_keys_.resize(snap_n);
  for (std::size_t k = 0; k < snap_n; ++k)
    snap_keys_[k] = static_cast<std::int64_t>(k);
  store->publish_snapshot(snap_keys_);
  store_ = std::move(store);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw std::runtime_error("net: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("net: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("net: eventfd() failed");
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  for (auto& c : conns_)
    if (c && c->fd >= 0) ::close(c->fd);
}

void Server::stop() {
  const std::uint64_t one = 1;
  // Signal-safe poke; the loop reads running=false from the event itself.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::update_epoll(Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error: back to the loop
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.push_back(std::make_unique<Conn>(*store_, opt_.max_batch, fd));
    ++stats_.accepted;
  }
}

bool Server::flush_writes(Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        update_epoll(c);
      }
      return true;
    }
    return false;  // peer vanished
  }
  c.out.clear();
  c.out_off = 0;
  if (c.want_write) {
    c.want_write = false;
    update_epoll(c);
  }
  return true;
}

bool Server::handle_readable(Conn& c) {
  // Drain the socket fully (edge-ish batching even under level-triggered
  // epoll: the more pipelined frames one drain yields, the longer the
  // same-shard runs the executor can coalesce).
  for (;;) {
    const std::size_t old = c.in.size();
    c.in.resize(old + kReadChunk);
    const ssize_t n = ::recv(c.fd, c.in.data() + old, kReadChunk, 0);
    if (n > 0) {
      c.in.resize(old + static_cast<std::size_t>(n));
      continue;
    }
    c.in.resize(old);
    if (n == 0) return false;  // orderly shutdown from the peer
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }

  std::vector<Response> responses;
  for (;;) {
    Request req;
    std::size_t consumed = 0;
    const Decode d = decode_request(c.in.data() + c.in_off,
                                    c.in.size() - c.in_off, &req, &consumed);
    if (d == Decode::need_more) break;
    if (d == Decode::bad_frame) {
      ++stats_.bad_frames;
      return false;
    }
    c.in_off += consumed;
    ++stats_.frames;
    ++requests_since_refresh_;
    ++requests_since_epoch_;
    c.exec.submit(req, responses);
  }
  // Rule 4: the pipeline is drained — no more frames to coalesce with, and
  // every submitted op is owed its response now.
  c.exec.drain(responses);

  if (c.in_off > 0 && c.in_off == c.in.size()) {
    c.in.clear();
    c.in_off = 0;
  } else if (c.in_off > kReadChunk) {
    c.in.erase(c.in.begin(),
               c.in.begin() + static_cast<std::ptrdiff_t>(c.in_off));
    c.in_off = 0;
  }

  for (const Response& r : responses) encode_response(r, c.out);
  return flush_writes(c);
}

void Server::close_conn(std::size_t idx) {
  Conn& c = *conns_[idx];
  std::vector<Response> tail;
  c.exec.drain(tail);  // commit pending work; the peer is gone, drop replies
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  c.fd = -1;
  const BatchExecutor::Stats& b = c.exec.stats();
  stats_.batch.ops += b.ops;
  stats_.batch.transactions += b.transactions;
  stats_.batch.flushes_shard += b.flushes_shard;
  stats_.batch.flushes_full += b.flushes_full;
  stats_.batch.flushes_barrier += b.flushes_barrier;
  stats_.batch.flushes_drain += b.flushes_drain;
  ++stats_.closed;
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void Server::maybe_refresh_snapshot() {
  if (opt_.snap_refresh_every == 0 ||
      requests_since_refresh_ < opt_.snap_refresh_every)
    return;
  requests_since_refresh_ = 0;
  // Between requests on the only op-execution thread: the refresh's
  // quiet-point contract (no mutator, no snapshot read in flight) holds by
  // construction.
  if (store_->refresh_snapshot(snap_keys_)) ++stats_.snap_refreshes;
}

void Server::maybe_mark_epoch() {
  if (!stream_ || requests_since_epoch_ < opt_.stream_epoch_ops) return;
  requests_since_epoch_ = 0;
  // Segment boundary: everything served so far precedes the mark, and the
  // single producer ring means the cutter can seal immediately.
  stream_->rec->rec().mark_epoch(next_epoch_++);
  // Per-segment publication handoff: the new segment opens with a
  // synthesized carry transaction, and hb reaches a plain snapshot load
  // only through a transactional read in its own thread — so every segment
  // needs its own snap_ready read, exactly like the in-process driver's
  // per-round re-attach.  (Connections' BatchExecutors attach once and
  // memoize; this loop-thread read covers all of them — same thread.)
  store_->snapshot_attach();
}

void Server::run() {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) throw std::runtime_error("net: epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (opt_.stream) {
    stream_ = std::make_unique<StreamState>();
    record::StreamOptions sropts;
    sropts.ring_capacity = opt_.stream_ring_capacity;
    sropts.min_window_events = opt_.stream_window_min_events;
    sropts.checkers = opt_.stream_checkers;
    sropts.require_full_opacity = stm_.zombie_free();
    // One continuous recording: the cutter sees every access from the
    // anchor on, so later segments' carries can be synthesized.
    sropts.synthesize_carry = true;
    stream_->conf = std::make_unique<record::StreamConformance>(
        stream_->session, std::vector<int>{0}, sropts);
    stream_->rec = std::make_unique<record::ScopedRecorder>(stream_->session,
                                                            /*thread=*/0);
    stream_->rec->rec().stream_to(&stream_->conf->ring(0));
    // State-carry anchor: the preloaded store replayed as the stream's
    // first committed transaction, so segment 0's reads resolve in-stream.
    stream_->rec->rec().synthetic_begin();
    store_->replay_state_plain();
    stream_->rec->rec().synthetic_commit();
  }

  bool running = true;
  epoll_event events[32];
  while (running) {
    const int n = ::epoll_wait(epoll_fd_, events, 32, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        running = false;
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      std::size_t idx = conns_.size();
      for (std::size_t j = 0; j < conns_.size(); ++j)
        if (conns_[j]->fd == fd) {
          idx = j;
          break;
        }
      if (idx == conns_.size()) continue;  // closed earlier this wake
      Conn& c = *conns_[idx];
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (events[i].events & EPOLLOUT)) alive = flush_writes(c);
      if (alive && (events[i].events & EPOLLIN)) alive = handle_readable(c);
      if (!alive) close_conn(idx);
    }
    maybe_refresh_snapshot();
    maybe_mark_epoch();
  }

  while (!conns_.empty()) close_conn(conns_.size() - 1);

  if (stream_) {
    // Seal the tail: everything after the last mark becomes the final
    // segment at finish().
    stream_->rec->rec().flush();
    stream_->rec.reset();  // detach before finish joins the checkers
    const record::StreamReport rep = stream_->conf->finish();
    stats_.streamed = true;
    stats_.segments = rep.segments;
    stats_.windows = rep.windows;
    stats_.nonconformant = rep.nonconformant;
    stats_.ring_dropped = rep.ring_dropped;
    stats_.overflow = rep.overflow;
    stats_.max_backlog = rep.max_backlog;
  }

  ::close(epoll_fd_);
  epoll_fd_ = -1;
}

}  // namespace mtx::net
