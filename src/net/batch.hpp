// Per-connection transaction batching: the serving tier's perf lever.
//
// A pipelined connection delivers runs of consecutive requests; the
// coalescer collects the batchable ones (GET/PUT/INSERT/RMW) that route to
// the SAME shard into one pending run, to be executed as a single
// flag-checked transaction (ShardHandle::batch_mutate), so per-op STM
// begin/commit overhead — and the §5 mutator flag obligation — amortize
// across the run.  GETs join the transaction rather than flushing it: they
// observe earlier puts of the same batch (read-your-writes), which is
// exactly what executing the pipeline one-op-per-transaction would have
// returned on this connection.
//
// Flush rules (why a batch never spans a fence): the pending run flushes
//   1. when the next batchable op routes to a different shard,
//   2. when the run reaches max_batch,
//   3. BEFORE any read-barrier op — SCAN, SNAP_READ and FENCE leave the
//      transactional world (privatize-scan quiesces the shard, snapshot
//      reads are plain loads of published slots, FENCE is an explicit
//      whole-store quiesce).  A batch spanning one would reorder its own
//      writes relative to the barrier: the scan's plain phase must observe
//      every op the connection issued before the SCAN, and a fence must
//      bound everything already submitted — so the batch commits first,
//      then the barrier runs.  BATCH frames also flush first (the frame is
//      its own transaction boundary contract).
//   4. at end-of-readable-input (the event loop drained the socket: no
//      more pipeline to coalesce with, responses are owed) and on close.
//
// Responses are emitted strictly in submission order: batchable ops'
// responses appear when their run flushes, and every non-batchable op
// flushes the run first, so no response ever overtakes another.
//
// max_batch = 1 degenerates to unbatched pipelining — the A/B baseline the
// benchmark compares against.
//
// The layer is split in two so the multi-reactor server can route runs it
// does NOT own:
//   RunCoalescer   — pure batching policy: requests in, same-shard Runs
//                    out, no execution.  A reactor executes an owned Run on
//                    the owning ShardHandle and ships a non-owned Run to
//                    its owner's mailbox intact — the run is the handoff
//                    unit, so cross-reactor traffic batches exactly like
//                    local traffic.
//   BatchExecutor  — the single-owner composition (coalesce + execute
//                    inline on the store), used by direct in-process
//                    drivers and the executor-level tests.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/kvstore.hpp"
#include "net/protocol.hpp"

namespace mtx::net {

// Flush-rule and op tallies, aggregated per connection (and across
// connections into ServerStats).
struct BatchStats {
  std::uint64_t ops = 0;          // requests executed (batch subs counted)
  std::uint64_t transactions = 0; // atomically blocks issued for them
  std::uint64_t flushes_shard = 0;   // rule 1
  std::uint64_t flushes_full = 0;    // rule 2
  std::uint64_t flushes_barrier = 0; // rule 3
  std::uint64_t flushes_drain = 0;   // rule 4
};

// One coalesced same-shard run: the unit of execution (one transaction via
// ShardHandle::batch_mutate) and of cross-reactor handoff.  `codes` keeps
// the wire opcodes (INSERT vs PUT vs GET) the responses must echo.
struct Run {
  std::size_t shard = 0;
  std::vector<kv::WriteOp> ops;
  std::vector<OpCode> codes;
};

// Request → store op for the batchable opcodes (GET/PUT/INSERT/RMW).
kv::WriteOp run_op(const Request& req);
// Executed store op → wire response echoing `code`.  A bounced op
// (op.moved, live migration) becomes Status::moved carrying
// `routing_epoch` — pass the store's current epoch when serving migrations,
// 0 is fine for fixed-topology callers.
Response run_response(const kv::WriteOp& op, OpCode code,
                      std::uint64_t routing_epoch = 0);

// The batching policy alone: accumulates batchable requests, emits
// same-shard Runs per the flush rules above.  Counts ops and flush reasons
// in stats(); the executing side bumps stats().transactions when a run
// actually lands.
class RunCoalescer {
 public:
  explicit RunCoalescer(std::size_t max_batch);

  // Append a batchable request routed to `shard`; any runs the flush rules
  // emit (0, 1 — or 2: a shard switch followed by max_batch == 1) are
  // appended to `out` in submission order.
  void add(const Request& req, std::size_t shard, std::vector<Run>& out);

  // Rule 3 / rule 4 flushes (no-ops while nothing is pending).
  void flush_barrier(std::vector<Run>& out);
  void flush_drain(std::vector<Run>& out);

  std::size_t pending() const { return cur_.ops.size(); }
  BatchStats& stats() { return stats_; }
  const BatchStats& stats() const { return stats_; }

 private:
  void emit(std::vector<Run>& out);

  std::size_t max_batch_;
  Run cur_;
  BatchStats stats_;
};

// Coalesce + execute inline: the single-owner front end over one store.
class BatchExecutor {
 public:
  using Stats = BatchStats;

  BatchExecutor(kv::KvStore& store, std::size_t max_batch);

  // Submit one decoded request; completed responses (zero or more — a
  // batchable op may stay pending) are appended to `out` in submission
  // order.
  void submit(const Request& req, std::vector<Response>& out);

  // Rule 4: drain the pending run (end of readable input / close).
  void drain(std::vector<Response>& out);

  std::size_t pending() const { return coalescer_.pending(); }
  const Stats& stats() const { return coalescer_.stats(); }

 private:
  void execute(std::vector<Run>& runs, std::vector<Response>& out);
  Response execute_barrier(const Request& req);

  kv::KvStore& store_;
  RunCoalescer coalescer_;
  std::vector<Run> scratch_;
  bool snap_attached_ = false;
};

}  // namespace mtx::net
