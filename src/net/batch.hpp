// Per-connection transaction batching: the serving tier's perf lever.
//
// A pipelined connection delivers runs of consecutive requests; the batcher
// coalesces the batchable ones (GET/PUT/INSERT/RMW) that route to the SAME
// shard into one pending run and executes the run as a single flag-checked
// transaction (KvStore::batch_mutate), so per-op STM begin/commit overhead
// — and the §5 mutator flag obligation — amortize across the run.  GETs
// join the transaction rather than flushing it: they observe earlier puts
// of the same batch (read-your-writes), which is exactly what executing the
// pipeline one-op-per-transaction would have returned on this connection.
//
// Flush rules (why a batch never spans a fence): the pending run flushes
//   1. when the next batchable op routes to a different shard,
//   2. when the run reaches max_batch,
//   3. BEFORE any read-barrier op — SCAN, SNAP_READ and FENCE leave the
//      transactional world (privatize-scan quiesces the shard, snapshot
//      reads are plain loads of published slots, FENCE is an explicit
//      whole-store quiesce).  A batch spanning one would reorder its own
//      writes relative to the barrier: the scan's plain phase must observe
//      every op the connection issued before the SCAN, and a fence must
//      bound everything already submitted — so the batch commits first,
//      then the barrier runs.  BATCH frames also flush first (the frame is
//      its own transaction boundary contract).
//   4. at end-of-readable-input (the event loop drained the socket: no
//      more pipeline to coalesce with, responses are owed) and on close.
//
// Responses are emitted strictly in submission order: batchable ops'
// responses appear when their run flushes, and every non-batchable op
// flushes the run first, so no response ever overtakes another.
//
// max_batch = 1 degenerates to unbatched pipelining — the A/B baseline the
// benchmark compares against.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/kvstore.hpp"
#include "net/protocol.hpp"

namespace mtx::net {

class BatchExecutor {
 public:
  struct Stats {
    std::uint64_t ops = 0;          // requests executed (batch subs counted)
    std::uint64_t transactions = 0; // atomically blocks issued for them
    std::uint64_t flushes_shard = 0;   // rule 1
    std::uint64_t flushes_full = 0;    // rule 2
    std::uint64_t flushes_barrier = 0; // rule 3
    std::uint64_t flushes_drain = 0;   // rule 4
  };

  BatchExecutor(kv::KvStore& store, std::size_t max_batch);

  // Submit one decoded request; completed responses (zero or more — a
  // batchable op may stay pending) are appended to `out` in submission
  // order.
  void submit(const Request& req, std::vector<Response>& out);

  // Rule 4: drain the pending run (end of readable input / close).
  void drain(std::vector<Response>& out);

  std::size_t pending() const { return pending_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  void flush(std::vector<Response>& out);
  void enqueue(const Request& req, std::vector<Response>& out);
  Response execute_barrier(const Request& req);

  kv::KvStore& store_;
  std::size_t max_batch_;
  std::size_t pending_shard_ = 0;
  std::vector<kv::WriteOp> pending_;
  std::vector<OpCode> pending_codes_;  // INSERT vs PUT vs GET, for responses
  bool snap_attached_ = false;
  Stats stats_;
};

}  // namespace mtx::net
